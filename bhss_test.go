package bhss

import (
	"bytes"
	"math"
	"testing"
)

func TestPublicRoundTrip(t *testing.T) {
	cfg := DefaultConfig(0xfeed)
	tx, err := NewTransmitter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rx, err := NewReceiver(cfg)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("public api round trip")
	burst, err := tx.EncodeFrame(payload)
	if err != nil {
		t.Fatal(err)
	}
	got, stats, err := rx.DecodeBurst(burst.Samples)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("payload mismatch")
	}
	if len(stats.Hops) == 0 {
		t.Fatal("missing hop diagnostics")
	}
}

func TestSimLinkCleanChannel(t *testing.T) {
	link, err := NewSimLink(DefaultConfig(7), ChannelModel{NoiseVar: 0.01, Seed: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	plr, err := link.Run([]byte("clean"), 10)
	if err != nil {
		t.Fatal(err)
	}
	if plr != 0 {
		t.Fatalf("clean-channel PLR %v", plr)
	}
}

func TestSimLinkHoppingBeatsFixedUnderJamming(t *testing.T) {
	jammed := func(pattern Pattern, bws []float64) float64 {
		cfg := DefaultConfig(11)
		cfg.Pattern = pattern
		if bws != nil {
			cfg.Bandwidths = bws
		}
		jam, err := NewBandlimitedJammer(2.5, 20, 20, 3) // matched to 2.5 MHz, 13 dB up
		if err != nil {
			t.Fatal(err)
		}
		link, err := NewSimLink(cfg, ChannelModel{NoiseVar: 0.01, Seed: 5}, jam)
		if err != nil {
			t.Fatal(err)
		}
		plr, err := link.Run([]byte("x"), 16)
		if err != nil {
			t.Fatal(err)
		}
		return plr
	}
	fixedPLR := jammed(FixedPattern, []float64{2.5})
	hopPLR := jammed(ParabolicPattern, nil)
	if fixedPLR < 0.9 {
		t.Fatalf("fixed matched link PLR %v, want ~1", fixedPLR)
	}
	if hopPLR > 0.6 {
		t.Fatalf("hopping link PLR %v, want well below the fixed link", hopPLR)
	}
}

func TestSimLinkValidation(t *testing.T) {
	if _, err := NewSimLink(DefaultConfig(1), ChannelModel{NoiseVar: -1}, nil); err == nil {
		t.Fatal("negative noise should error")
	}
	if _, err := NewSimLink(Config{}, ChannelModel{}, nil); err == nil {
		t.Fatal("invalid config should error")
	}
	link, _ := NewSimLink(DefaultConfig(1), ChannelModel{NoiseVar: 0.01}, nil)
	if _, err := link.Run(nil, 0); err == nil {
		t.Fatal("zero frames should error")
	}
}

func TestOptimizeMaximinDistribution(t *testing.T) {
	d, err := OptimizeMaximinDistribution(DefaultBandwidths(), 100, 2000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	// Edge-heavy, as the paper's parabolic pattern.
	edges := d.Probs[0] + d.Probs[len(d.Probs)-1]
	if edges < 0.25 {
		t.Fatalf("optimized distribution not edge-heavy: %v", d.Probs)
	}
}

func TestSNRImprovementBound(t *testing.T) {
	// Matched bandwidths: no improvement possible.
	if g := SNRImprovementBound(100, 0.01, 1, 1); g != 1 {
		t.Fatalf("matched γ = %v", g)
	}
	// Big offsets approach the jammer power.
	g := SNRImprovementBound(100, 0.01, 1, 0.001)
	if math.Abs(10*math.Log10(g)-20) > 1 {
		t.Fatalf("asymptotic γ = %v dB, want ~20", 10*math.Log10(g))
	}
}

func TestJammerConstructors(t *testing.T) {
	if _, err := NewBandlimitedJammer(30, 20, 1, 1); err == nil {
		t.Fatal("bandwidth above the sample rate should error")
	}
	dist, err := NewDistribution(LinearPattern, DefaultBandwidths())
	if err != nil {
		t.Fatal(err)
	}
	j, err := NewHoppingJammer(dist, 20, 1024, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if j.Power() != 2 {
		t.Fatalf("power %v", j.Power())
	}
	r, err := NewReactiveJammer(128, 512, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.PowerBudget != 1 {
		t.Fatal("reactive jammer power")
	}
}

func TestBestResponseBandwidth(t *testing.T) {
	// A narrow edge jammer: the best response maximizes the offset.
	bw, err := BestResponseBandwidth(DefaultBandwidths(), 0.15625, 100)
	if err != nil {
		t.Fatal(err)
	}
	if bw != 10 {
		t.Fatalf("best response %v, want 10", bw)
	}
	// A matched-to-max jammer: park at the bottom.
	bw, _ = BestResponseBandwidth(DefaultBandwidths(), 10, 100)
	if bw != 0.15625 {
		t.Fatalf("best response %v, want 0.15625", bw)
	}
	if _, err := BestResponseBandwidth(nil, 1, 100); err == nil {
		t.Fatal("empty set should error")
	}
}

func TestEstimateOccupiedBandwidthMHz(t *testing.T) {
	jam, err := NewBandlimitedJammer(2.5, 20, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	est, err := EstimateOccupiedBandwidthMHz(jam.Emit(1<<15), 20)
	if err != nil {
		t.Fatal(err)
	}
	if est < 1.5 || est > 4 {
		t.Fatalf("estimated %v MHz for a 2.5 MHz jammer", est)
	}
	if _, err := EstimateOccupiedBandwidthMHz(make([]complex128, 4), 20); err == nil {
		t.Fatal("tiny capture should error")
	}
}
