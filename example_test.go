package bhss_test

import (
	"fmt"

	"bhss"
)

// The minimal BHSS link: both ends constructed from the same configuration
// (the pre-shared secret), one frame over a perfect channel.
func Example() {
	cfg := bhss.DefaultConfig(0x5eed)
	tx, err := bhss.NewTransmitter(cfg)
	if err != nil {
		panic(err)
	}
	rx, err := bhss.NewReceiver(cfg)
	if err != nil {
		panic(err)
	}
	burst, err := tx.EncodeFrame([]byte("hello, hopping world"))
	if err != nil {
		panic(err)
	}
	payload, _, err := rx.DecodeBurst(burst.Samples)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%s\n", payload)
	// Output: hello, hopping world
}

// A jammed link: a narrow-band jammer 13 dB above the signal sits inside
// every hop of this restricted set, and the receiver's excision filter
// removes it before despreading on each one.
func ExampleNewSimLink() {
	cfg := bhss.DefaultConfig(42)
	cfg.Pattern = bhss.LinearPattern
	cfg.Bandwidths = []float64{10, 5, 2.5, 1.25} // keep a wide offset to the jammer

	jam, err := bhss.NewBandlimitedJammer(0.15625, 20, 20, 1)
	if err != nil {
		panic(err)
	}
	link, err := bhss.NewSimLink(cfg, bhss.ChannelModel{NoiseVar: 0.01, Seed: 9}, jam)
	if err != nil {
		panic(err)
	}
	payload, stats, err := link.Send([]byte("through the jamming"))
	if err == nil {
		fmt.Printf("delivered %q over %d hops\n", payload, len(stats.Hops))
	} else {
		fmt.Println("frame lost:", err)
	}
	// Output: delivered "through the jamming" over 14 hops
}

// Inspect the ideal-filter SNR improvement bound of the paper's Figure 7.
func ExampleSNRImprovementBound() {
	// A jammer 20 dB above the signal, one tenth of its bandwidth: the
	// excision filter recovers almost the full jammer power.
	gamma := bhss.SNRImprovementBound(100, 0.01, 1.0, 0.1)
	fmt.Printf("%.1f\n", gamma)
	// Output: 89.1
}
