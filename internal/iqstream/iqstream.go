// Package iqstream moves complex baseband samples between processes: a
// compact binary block format over any io.Reader/Writer (typically TCP),
// plus the virtual-air hub that replaces the paper's coax-and-T-connector
// testbed (Figure 12). Transmitter, jammer and receiver each connect to the
// hub as network clients; the hub sums their sample streams with per-port
// gain, adds the channel's AWGN and broadcasts the mixture to receivers —
// sample-synchronous, like the physical combiner.
package iqstream

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// Magic opens every sample block.
var Magic = [4]byte{'I', 'Q', 'S', '1'}

// MaxBlock bounds the per-block sample count (16 MiB of payload).
const MaxBlock = 1 << 21

// Errors returned by the block codec.
var (
	ErrBadMagic  = errors.New("iqstream: bad block magic")
	ErrTooLarge  = errors.New("iqstream: block exceeds MaxBlock samples")
	ErrShortRead = errors.New("iqstream: truncated block")
)

// Writer serializes sample blocks to an underlying stream. It is not safe
// for concurrent use.
type Writer struct {
	w   *bufio.Writer
	buf []byte
}

// NewWriter returns a block writer over w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w)}
}

// WriteBlock writes one block of samples (as float32 I/Q pairs) and flushes.
func (w *Writer) WriteBlock(samples []complex128) error {
	if err := w.writeBlockBuffered(samples); err != nil {
		return err
	}
	return w.w.Flush()
}

// writeBlockBuffered writes one block into the underlying buffered writer
// without flushing. Batched fan-out (the hub's receiver writers) queues
// several blocks and pays one Flush for all of them.
func (w *Writer) writeBlockBuffered(samples []complex128) error {
	if len(samples) > MaxBlock {
		return ErrTooLarge
	}
	need := 8 + len(samples)*8
	if cap(w.buf) < need {
		w.buf = make([]byte, need)
	}
	buf := w.buf[:need]
	copy(buf[:4], Magic[:])
	binary.LittleEndian.PutUint32(buf[4:8], uint32(len(samples)))
	for i, s := range samples {
		binary.LittleEndian.PutUint32(buf[8+i*8:], math.Float32bits(float32(real(s))))
		binary.LittleEndian.PutUint32(buf[12+i*8:], math.Float32bits(float32(imag(s))))
	}
	_, err := w.w.Write(buf)
	return err
}

// Flush forces buffered block bytes onto the underlying stream.
func (w *Writer) Flush() error { return w.w.Flush() }

// Reader deserializes sample blocks from an underlying stream. It is not
// safe for concurrent use.
type Reader struct {
	r   *bufio.Reader
	buf []byte
}

// NewReader returns a block reader over r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReader(r)}
}

// ReadBlock reads the next block. io.EOF is returned unwrapped at a clean
// block boundary.
func (r *Reader) ReadBlock() ([]complex128, error) {
	var header [8]byte
	if _, err := io.ReadFull(r.r, header[:1]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("iqstream: %w", err)
	}
	if _, err := io.ReadFull(r.r, header[1:]); err != nil {
		return nil, ErrShortRead
	}
	if header[0] != Magic[0] || header[1] != Magic[1] || header[2] != Magic[2] || header[3] != Magic[3] {
		return nil, ErrBadMagic
	}
	n := binary.LittleEndian.Uint32(header[4:8])
	if n > MaxBlock {
		return nil, ErrTooLarge
	}
	need := int(n) * 8
	if cap(r.buf) < need {
		r.buf = make([]byte, need)
	}
	buf := r.buf[:need]
	if _, err := io.ReadFull(r.r, buf); err != nil {
		return nil, ErrShortRead
	}
	out := make([]complex128, n)
	for i := range out {
		re := math.Float32frombits(binary.LittleEndian.Uint32(buf[i*8:]))
		im := math.Float32frombits(binary.LittleEndian.Uint32(buf[i*8+4:]))
		out[i] = complex(float64(re), float64(im))
	}
	return out, nil
}
