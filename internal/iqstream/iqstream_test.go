package iqstream

import (
	"bytes"
	"errors"
	"io"
	"math"
	"testing"
	"time"

	"bhss/internal/core"
	"bhss/internal/dsp"
)

func TestBlockRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	blocks := [][]complex128{
		{},
		{1 + 2i},
		{0.5, -0.25i, 3 - 4i, 0},
	}
	for _, b := range blocks {
		if err := w.WriteBlock(b); err != nil {
			t.Fatal(err)
		}
	}
	r := NewReader(&buf)
	for i, want := range blocks {
		got, err := r.ReadBlock()
		if err != nil {
			t.Fatalf("block %d: %v", i, err)
		}
		if len(got) != len(want) {
			t.Fatalf("block %d: %d samples, want %d", i, len(got), len(want))
		}
		for k := range want {
			if d := got[k] - want[k]; math.Hypot(real(d), imag(d)) > 1e-6 {
				t.Fatalf("block %d sample %d: %v != %v", i, k, got[k], want[k])
			}
		}
	}
	if _, err := r.ReadBlock(); err != io.EOF {
		t.Fatalf("expected io.EOF, got %v", err)
	}
}

func TestBlockRejectsOversize(t *testing.T) {
	w := NewWriter(io.Discard)
	if err := w.WriteBlock(make([]complex128, MaxBlock+1)); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
}

func TestReaderBadMagic(t *testing.T) {
	r := NewReader(bytes.NewReader([]byte("XXXX\x01\x00\x00\x00garbage!")))
	if _, err := r.ReadBlock(); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
}

func TestReaderTruncated(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteBlock([]complex128{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	r := NewReader(bytes.NewReader(data[:len(data)-4]))
	if _, err := r.ReadBlock(); !errors.Is(err, ErrShortRead) {
		t.Fatalf("err = %v, want ErrShortRead", err)
	}
}

func startHub(t *testing.T, cfg HubConfig) *Hub {
	t.Helper()
	h, err := NewHub("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	go h.Serve()
	t.Cleanup(func() { h.Close() })
	return h
}

// recvN collects at least n samples from a receiver client.
func recvN(t *testing.T, c *Client, n int) []complex128 {
	t.Helper()
	var out []complex128
	deadline := time.Now().Add(10 * time.Second)
	if err := c.SetRecvDeadline(deadline); err != nil {
		t.Fatal(err)
	}
	defer c.SetRecvDeadline(time.Time{})
	for len(out) < n {
		blk, err := c.Recv()
		if err != nil {
			t.Fatalf("recv after %d of %d samples: %v", len(out), n, err)
		}
		out = append(out, blk...)
	}
	return out[:n]
}

func TestHubMixesTwoTransmitters(t *testing.T) {
	h := startHub(t, HubConfig{BlockSize: 256})
	addr := h.Addr().String()

	rx, err := DialRx(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer rx.Close()
	tx1, err := DialTx(addr, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer tx1.Close()
	tx2, err := DialTx(addr, -20) // amplitude 0.1
	if err != nil {
		t.Fatal(err)
	}
	defer tx2.Close()

	a := make([]complex128, 256)
	b := make([]complex128, 256)
	for i := range a {
		a[i] = 1
		b[i] = 1i
	}
	if err := tx1.Send(a); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Send(b); err != nil {
		t.Fatal(err)
	}
	got := recvN(t, rx, 256)
	// Mixed = a + 0.1*b within a couple of blocks; the two sends may land
	// in different mixing blocks, so integrate: total energy received must
	// match the sum of both bursts.
	var sumI, sumQ float64
	for _, v := range got {
		sumI += real(v)
		sumQ += imag(v)
	}
	// tx1 contributes 256 on I; tx2 contributes 25.6 on Q. If they landed
	// in separate blocks we need to read further.
	if math.Abs(sumI-256) > 1 {
		more := recvN(t, rx, 256)
		for _, v := range more {
			sumI += real(v)
			sumQ += imag(v)
		}
	}
	if math.Abs(sumI-256) > 1 || math.Abs(sumQ-25.6) > 1 {
		t.Fatalf("mixed sums I=%v Q=%v, want 256 / 25.6", sumI, sumQ)
	}
}

func TestHubAddsNoise(t *testing.T) {
	h := startHub(t, HubConfig{BlockSize: 1024, NoiseVar: 0.25, Seed: 7})
	addr := h.Addr().String()
	rx, err := DialRx(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer rx.Close()
	tx, err := DialTx(addr, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer tx.Close()
	if err := tx.Send(make([]complex128, 1<<14)); err != nil { // silence
		t.Fatal(err)
	}
	got := recvN(t, rx, 1<<14)
	if p := dsp.Power(got); math.Abs(p-0.25)/0.25 > 0.1 {
		t.Fatalf("noise floor %v, want 0.25", p)
	}
}

func TestHubRejectsBadHandshake(t *testing.T) {
	h := startHub(t, HubConfig{BlockSize: 64})
	if _, err := dial(h.Addr().String(), "HELLO world"); err == nil {
		t.Fatal("bad handshake should be rejected")
	}
	if _, err := dial(h.Addr().String(), "IQHUB spectator"); err == nil {
		t.Fatal("unknown role should be rejected")
	}
}

func TestHubConfigValidation(t *testing.T) {
	if _, err := NewHub("127.0.0.1:0", HubConfig{NoiseVar: -1}); err == nil {
		t.Fatal("negative noise should be rejected")
	}
	if _, err := NewHub("127.0.0.1:0", HubConfig{BlockSize: MaxBlock + 1}); err == nil {
		t.Fatal("oversized block should be rejected")
	}
}

// End to end: a full BHSS frame through the hub over real TCP, decoded on
// the receive side — the networked equivalent of the coax testbed.
func TestBHSSBurstThroughHub(t *testing.T) {
	h := startHub(t, HubConfig{BlockSize: 2048, NoiseVar: 0.001, Seed: 3})
	addr := h.Addr().String()

	rx, err := DialRx(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer rx.Close()
	tx, err := DialTx(addr, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer tx.Close()

	cfg := core.DefaultConfig(99)
	cfg.Sync = core.PreambleSync // burst position in the stream is unknown
	sender, err := core.NewTransmitter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	receiver, err := core.NewReceiver(cfg)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("over the wire, over the air")
	burst, err := sender.EncodeFrame(payload)
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Send(burst.Samples); err != nil {
		t.Fatal(err)
	}
	// Collect the mixed stream covering the whole burst. The hub emits
	// ceil(len/block) blocks, so exactly len samples are always
	// available; asking for more than the ceil-padding would block.
	capture := recvN(t, rx, len(burst.Samples))
	got, stats, err := receiver.DecodeBurst(capture)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload mismatch: %q", got)
	}
	if stats.AcquisitionOffset != 0 {
		t.Fatalf("odd acquisition offset %d", stats.AcquisitionOffset)
	}
}

func TestFloat32QuantizationSmall(t *testing.T) {
	// The wire format stores float32; round-trip error must be tiny
	// relative to the signal.
	var buf bytes.Buffer
	w := NewWriter(&buf)
	x := make([]complex128, 1000)
	for i := range x {
		x[i] = complex(math.Sin(float64(i)*0.1), math.Cos(float64(i)*0.17))
	}
	if err := w.WriteBlock(x); err != nil {
		t.Fatal(err)
	}
	got, err := NewReader(&buf).ReadBlock()
	if err != nil {
		t.Fatal(err)
	}
	diff := make([]complex128, len(x))
	for i := range x {
		diff[i] = got[i] - x[i]
	}
	if snr := dsp.Power(x) / dsp.Power(diff); snr < 1e12 {
		t.Fatalf("quantization SNR %v too low", snr)
	}
}
