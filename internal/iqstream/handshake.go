package iqstream

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// The hub handshake is one text line, answered with "OK\n" or "ERR ...\n":
//
//	IQHUB tx [<gain_db>] [LINK <id>] [TAG <tag>]
//	IQHUB jam [<gain_db>] [LINK <id>] [TAG <tag>]
//	IQHUB rx [LINK <id>] [EXCL <tag>]
//
// LINK selects the session the peer joins; omitting it joins link 0, so the
// legacy single-link lines ("IQHUB tx 3.5", "IQHUB rx") keep their exact
// meaning. TAG labels a transmitter's contribution within its link; a
// receiver naming that tag with EXCL gets the link's mix with the tagged
// contribution subtracted — how a jammer senses the medium without hearing
// its own transmission looped back. The jam role is a tx whose contribution
// defaults to the tag "jam" so a plain "EXCL jam" receiver filters it.
// Key/value options may appear in any order but at most once each; unknown
// or dangling tokens are rejected ("ERR bad handshake") rather than ignored,
// so a typo cannot silently run a whole experiment with the wrong topology.

// MaxTagLen bounds a TAG/EXCL token; tags are 1..MaxTagLen characters from
// [A-Za-z0-9._-].
const MaxTagLen = 32

// handshake is one parsed hub handshake line.
type handshake struct {
	role   string // "tx", "jam" or "rx"
	gainDB float64
	link   uint32
	tag    string // tx/jam contribution tag ("" = untagged)
	excl   string // rx: subtract same-link contributions carrying this tag
}

// handshakeError carries the exact one-line ERR reply the hub sends for a
// rejected handshake.
type handshakeError struct{ reply string }

func (e *handshakeError) Error() string { return "iqstream: " + e.reply }

// parseHandshake parses one handshake line (trailing newline optional). It
// is a pure function so the grammar can be fuzzed without a socket.
func parseHandshake(line string) (handshake, *handshakeError) {
	bad := func(reply string) (handshake, *handshakeError) {
		return handshake{}, &handshakeError{reply: reply}
	}
	fields := strings.Fields(strings.TrimSpace(line))
	if len(fields) < 2 || fields[0] != "IQHUB" {
		return bad("ERR bad handshake")
	}
	hs := handshake{role: fields[1]}
	rest := fields[2:]
	switch hs.role {
	case "tx", "jam":
		// The gain is positional and optional: the next token is a gain
		// unless it opens a key/value option. A malformed gain is a hard
		// error, not a silent 0 dB fallback — a transmitter whose gain did
		// not parse would otherwise run an entire experiment at the wrong
		// power.
		if len(rest) > 0 && rest[0] != "LINK" && rest[0] != "TAG" && rest[0] != "EXCL" {
			g, err := strconv.ParseFloat(rest[0], 64)
			if err != nil || math.IsNaN(g) || math.IsInf(g, 0) {
				return bad("ERR bad gain")
			}
			hs.gainDB = g
			rest = rest[1:]
		}
	case "rx":
	default:
		return bad(fmt.Sprintf("ERR unknown role %q", hs.role))
	}
	var seenLink, seenTag, seenExcl bool
	for len(rest) > 0 {
		if len(rest) < 2 {
			return bad("ERR bad handshake")
		}
		key, val := rest[0], rest[1]
		rest = rest[2:]
		switch {
		case key == "LINK" && !seenLink:
			seenLink = true
			id, err := strconv.ParseUint(val, 10, 32)
			if err != nil {
				return bad("ERR bad link")
			}
			hs.link = uint32(id)
		case key == "TAG" && hs.role != "rx" && !seenTag:
			seenTag = true
			if !validTag(val) {
				return bad("ERR bad tag")
			}
			hs.tag = val
		case key == "EXCL" && hs.role == "rx" && !seenExcl:
			seenExcl = true
			if !validTag(val) {
				return bad("ERR bad tag")
			}
			hs.excl = val
		default:
			return bad("ERR bad handshake")
		}
	}
	if hs.role == "jam" && hs.tag == "" {
		hs.tag = "jam"
	}
	return hs, nil
}

// validTag reports whether s is a legal TAG/EXCL token.
func validTag(s string) bool {
	if len(s) == 0 || len(s) > MaxTagLen {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case 'a' <= c && c <= 'z', 'A' <= c && c <= 'Z', '0' <= c && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

// LinkOpts addresses one RF session on a multi-link hub. The zero value is
// the legacy single-link medium: link 0, no tag, no exclusion.
type LinkOpts struct {
	// Link is the session ID. Every link is an independent medium — its own
	// transmitters, receivers, noise process and mixer — and 0 is the
	// default link that legacy handshake lines join.
	Link uint32
	// Tag labels a transmitter's contribution within its link so receivers
	// can exclude it (tx/jam roles).
	Tag string
	// Exclude subtracts same-link transmitter contributions carrying this
	// tag from the received mix (rx role) — a jammer's sense stream names
	// its own tag here so it does not hear its transmission looped back.
	Exclude string
	// Jam dials the jam role: a transmitter whose contribution defaults to
	// the tag "jam" when Tag is empty.
	Jam bool
}

// txHandshakeLine renders the tx/jam handshake (no trailing newline). Zero
// opts reproduce the legacy line byte-for-byte.
func txHandshakeLine(gainDB float64, o LinkOpts) string {
	role := "tx"
	if o.Jam {
		role = "jam"
	}
	line := fmt.Sprintf("IQHUB %s %g", role, gainDB)
	if o.Link != 0 {
		line += fmt.Sprintf(" LINK %d", o.Link)
	}
	if o.Tag != "" {
		line += " TAG " + o.Tag
	}
	return line
}

// rxHandshakeLine renders the rx handshake (no trailing newline). Zero opts
// reproduce the legacy line byte-for-byte.
func rxHandshakeLine(o LinkOpts) string {
	line := "IQHUB rx"
	if o.Link != 0 {
		line += fmt.Sprintf(" LINK %d", o.Link)
	}
	if o.Exclude != "" {
		line += " EXCL " + o.Exclude
	}
	return line
}
