package iqstream

import (
	"errors"
	"net"
	"testing"
	"time"

	"bhss/internal/obs"
	"bhss/internal/prng"
)

// TestBackoffScheduleDeterministic pins the jittered backoff schedule: the
// same seed yields the same delays, a different seed yields different
// ones, and every delay respects base·mult^k scaled by ±jitter and the
// max cap.
func TestBackoffScheduleDeterministic(t *testing.T) {
	mk := func(seed uint64) []time.Duration {
		rc := &ReconnectingClient{cfg: ReconnectConfig{
			BackoffBase: 100 * time.Millisecond,
			BackoffMax:  2 * time.Second,
			Multiplier:  2,
			Jitter:      0.2,
		}}
		rc.rng = prng.New(seed)
		var out []time.Duration
		for k := 0; k < 8; k++ {
			out = append(out, rc.backoffDelay(k))
		}
		return out
	}
	a, b, c := mk(7), mk(7), mk(8)
	for k := range a {
		if a[k] != b[k] {
			t.Fatalf("same seed diverged at attempt %d: %v vs %v", k, a[k], b[k])
		}
		ideal := float64(100*time.Millisecond) * float64(int(1)<<k)
		if m := float64(2 * time.Second); ideal > m {
			ideal = m
		}
		lo, hi := time.Duration(0.8*ideal), time.Duration(1.2*ideal)
		if a[k] < lo || a[k] > hi {
			t.Fatalf("attempt %d delay %v outside [%v, %v]", k, a[k], lo, hi)
		}
	}
	same := true
	for k := range a {
		if a[k] != c[k] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical jitter schedules")
	}
}

// TestReconnectConfigValidation rejects nonsense retry parameters.
func TestReconnectConfigValidation(t *testing.T) {
	bad := []ReconnectConfig{
		{BackoffBase: -time.Second},
		{BackoffBase: time.Second, BackoffMax: time.Millisecond},
		{Multiplier: 0.5},
		{Jitter: 1.5},
	}
	for i, cfg := range bad {
		if _, err := DialRxReconnecting("127.0.0.1:1", cfg); err == nil {
			t.Fatalf("case %d: invalid config accepted", i)
		}
	}
}

// TestReconnectingDialRetries counts dial attempts against a dead address
// and pins that the recorded sleeps follow one per failed attempt except
// the last.
func TestReconnectingDialRetries(t *testing.T) {
	// A listener we close immediately: the port is valid but refuses.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	met := &obs.NetMetrics{}
	var slept []time.Duration
	_, err = DialRxReconnecting(addr, ReconnectConfig{
		BackoffBase: time.Millisecond,
		BackoffMax:  4 * time.Millisecond,
		MaxAttempts: 4,
		Metrics:     met,
		Sleep:       func(d time.Duration) { slept = append(slept, d) },
	})
	if err == nil {
		t.Fatal("dial to dead address succeeded")
	}
	if got := met.DialAttempts.Load(); got != 4 {
		t.Fatalf("dial attempts = %d, want 4", got)
	}
	if got := met.DialFailures.Load(); got != 4 {
		t.Fatalf("dial failures = %d, want 4", got)
	}
	if len(slept) != 3 {
		t.Fatalf("slept %d times, want 3 (no sleep after the final attempt)", len(slept))
	}
}

// TestReconnectingSendRecovers kills the tx connection server-side and
// checks the next Send transparently redials, so the stream continues with
// at most bounded loss.
func TestReconnectingSendRecovers(t *testing.T) {
	checkGoroutines(t)
	met := &obs.NetMetrics{}
	h := startHub(t, HubConfig{BlockSize: 256})
	addr := h.Addr().String()

	rx, err := DialRx(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer rx.Close()

	tx, err := DialTxReconnecting(addr, 0, ReconnectConfig{
		BackoffBase: time.Millisecond,
		Metrics:     met,
		Sleep:       func(time.Duration) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tx.Close()

	block := make([]complex128, 512)
	if err := tx.Send(block); err != nil {
		t.Fatalf("first send: %v", err)
	}

	// Sever every tx connection hub-side; the client only notices on its
	// next write (possibly the one after, thanks to kernel buffering).
	for _, lk := range h.linksSnapshot() {
		lk.mu.Lock()
		for _, c := range lk.txConns {
			c.Close()
		}
		lk.mu.Unlock()
	}

	deadline := time.Now().Add(5 * time.Second)
	for tx.Reconnects() == 0 && time.Now().Before(deadline) {
		if err := tx.Send(block); err != nil {
			t.Fatalf("send did not recover: %v", err)
		}
	}
	if tx.Reconnects() == 0 {
		t.Fatal("no reconnect after server-side kill")
	}
	if met.Reconnects.Load() == 0 {
		t.Fatal("reconnect not counted in metrics")
	}
}

// TestReconnectingRecvStreamGap kills the rx connection server-side and
// checks Recv surfaces exactly one ErrStreamGap, then resumes delivering
// blocks from the fresh connection.
func TestReconnectingRecvStreamGap(t *testing.T) {
	checkGoroutines(t)
	met := &obs.NetMetrics{}
	h := startHub(t, HubConfig{BlockSize: 256})
	addr := h.Addr().String()

	rx, err := DialRxReconnecting(addr, ReconnectConfig{
		BackoffBase: time.Millisecond,
		Metrics:     met,
		Sleep:       func(time.Duration) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rx.Close()

	tx, err := DialTx(addr, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer tx.Close()

	feed := make(chan struct{})
	go func() {
		block := make([]complex128, 512)
		for {
			select {
			case <-feed:
				return
			default:
			}
			if err := tx.Send(block); err != nil {
				return
			}
		}
	}()
	defer close(feed)

	if _, err := rx.Recv(); err != nil {
		t.Fatalf("first recv: %v", err)
	}

	// Sever the receiver connection hub-side.
	for _, lk := range h.linksSnapshot() {
		lk.mu.Lock()
		for _, r := range lk.rxs {
			h.removeRxLocked(lk, r, "test kill")
		}
		lk.mu.Unlock()
	}

	var sawGap bool
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		_, err := rx.Recv()
		if err == nil {
			if sawGap {
				break // resumed after the gap: done
			}
			continue
		}
		if !errors.Is(err, ErrStreamGap) {
			t.Fatalf("recv: %v", err)
		}
		if sawGap {
			t.Fatal("ErrStreamGap surfaced twice for one fault")
		}
		sawGap = true
	}
	if !sawGap {
		t.Fatal("no ErrStreamGap after server-side kill")
	}
	if met.StreamGaps.Load() != 1 {
		t.Fatalf("stream gaps = %d, want 1", met.StreamGaps.Load())
	}
	if met.Reconnects.Load() == 0 {
		t.Fatal("reconnect not counted in metrics")
	}
}

// TestReconnectingClientClosed pins the post-Close error surface.
func TestReconnectingClientClosed(t *testing.T) {
	h := startHub(t, HubConfig{BlockSize: 256})
	addr := h.Addr().String()

	rc, err := DialTxReconnecting(addr, 0, ReconnectConfig{Sleep: func(time.Duration) {}})
	if err != nil {
		t.Fatal(err)
	}
	if err := rc.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := rc.Send(make([]complex128, 8)); !errors.Is(err, ErrClientClosed) {
		t.Fatalf("send after close: %v", err)
	}
	if _, err := rc.Recv(); !errors.Is(err, ErrClientClosed) {
		t.Fatalf("recv after close: %v", err)
	}
	if err := rc.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

// TestReconnectingCloseAbortsConnect pins that Close from another
// goroutine aborts an in-flight reconnect cycle (not just the initial
// dial).
func TestReconnectingCloseAbortsConnect(t *testing.T) {
	h := startHub(t, HubConfig{BlockSize: 256})
	addr := h.Addr().String()

	rc, err := DialTxReconnecting(addr, 0, ReconnectConfig{
		BackoffBase: time.Millisecond,
		MaxAttempts: -1,
		Sleep:       func(time.Duration) { time.Sleep(time.Millisecond) },
	})
	if err != nil {
		t.Fatal(err)
	}

	// Stop the hub entirely, then sever the connection: the next Send
	// enters the retry-forever loop.
	h.Close()
	rc.mu.Lock()
	if rc.c != nil {
		rc.c.Close()
	}
	rc.mu.Unlock()

	done := make(chan error, 1)
	go func() { done <- rc.Send(make([]complex128, 8)) }()
	time.Sleep(10 * time.Millisecond)
	rc.Close()
	select {
	case err := <-done:
		if !errors.Is(err, ErrClientClosed) {
			t.Fatalf("aborted send returned %v, want ErrClientClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not abort the retry loop")
	}
}
