package iqstream

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"bhss/internal/obs"
	"bhss/internal/prng"
)

// Reconnection defaults (DESIGN.md §12). Zero ReconnectConfig fields take
// these values.
const (
	// DefaultBackoffBase is the first retry delay.
	DefaultBackoffBase = 50 * time.Millisecond
	// DefaultBackoffMax caps the exponential growth.
	DefaultBackoffMax = 5 * time.Second
	// DefaultBackoffMultiplier is the per-attempt growth factor.
	DefaultBackoffMultiplier = 2.0
	// DefaultBackoffJitter is the ± fraction of deterministic jitter.
	DefaultBackoffJitter = 0.2
	// DefaultMaxAttempts bounds the dial attempts of one (re)connect
	// cycle.
	DefaultMaxAttempts = 8
)

// ErrStreamGap is returned by ReconnectingClient.Recv exactly once after a
// successful reconnect: the sample stream has a discontinuity of unknown
// length, so the caller must drop any partially accumulated burst window
// and re-acquire (re-arm preamble search) before trusting new samples.
var ErrStreamGap = errors.New("iqstream: stream gap after reconnect, re-acquire")

// ErrClientClosed is returned by ReconnectingClient calls after Close.
var ErrClientClosed = errors.New("iqstream: client closed")

// ReconnectConfig parameterizes a ReconnectingClient's retry behaviour.
// Backoff is exponential with deterministic, seeded jitter: delay k is
// min(BackoffMax, BackoffBase·Multiplier^k) scaled by a uniform factor in
// [1−Jitter, 1+Jitter] drawn from internal/prng, so two clients with
// different seeds never thundering-herd the hub in lockstep while a given
// (seed, fault schedule) still replays exactly.
type ReconnectConfig struct {
	// BackoffBase is the first retry delay (0 = DefaultBackoffBase).
	BackoffBase time.Duration
	// BackoffMax caps the delay growth (0 = DefaultBackoffMax).
	BackoffMax time.Duration
	// Multiplier is the exponential growth factor (0 =
	// DefaultBackoffMultiplier; values < 1 are rejected).
	Multiplier float64
	// Jitter is the ± fraction applied to each delay, in [0, 1)
	// (0 = DefaultBackoffJitter; negative disables jitter).
	Jitter float64
	// MaxAttempts bounds the dial attempts of one (re)connect cycle
	// before the error is surfaced (0 = DefaultMaxAttempts; negative
	// means retry forever).
	MaxAttempts int
	// Seed drives the jitter PRNG.
	Seed uint64
	// Metrics, when non-nil, receives client resilience counters
	// (typically &pipeline.Net of an obs.Pipeline).
	Metrics *obs.NetMetrics
	// Logf receives retry events; nil silences them.
	Logf func(format string, args ...any)
	// Sleep replaces time.Sleep between attempts; tests inject a recorder
	// here to pin the backoff schedule without waiting it out.
	Sleep func(time.Duration)
}

// ReconnectingClient wraps the hub client protocol with automatic
// redial-and-handshake on any transport fault. Send retries over a fresh
// connection; Recv surfaces each reconnect as a single ErrStreamGap so the
// receive pipeline can count the spanning burst lost and re-acquire rather
// than wedge on spliced samples. Like Client, it is not safe for
// concurrent Send/Recv use, but Close may be called from another goroutine
// to abort a retry loop.
type ReconnectingClient struct {
	addr      string
	handshake string
	cfg       ReconnectConfig
	met       *obs.NetMetrics
	rng       *prng.Source

	mu     sync.Mutex
	c      *Client
	closed bool

	reconnects atomic.Int64
}

// DialTxReconnecting connects as a transmitter with the given port gain,
// retrying with backoff until the hub accepts (or MaxAttempts is spent).
func DialTxReconnecting(addr string, gainDB float64, cfg ReconnectConfig) (*ReconnectingClient, error) {
	return DialTxLinkReconnecting(addr, gainDB, LinkOpts{}, cfg)
}

// DialRxReconnecting connects as a receiver, retrying with backoff until
// the hub accepts (or MaxAttempts is spent).
func DialRxReconnecting(addr string, cfg ReconnectConfig) (*ReconnectingClient, error) {
	return DialRxLinkReconnecting(addr, LinkOpts{}, cfg)
}

// DialTxLinkReconnecting is DialTxReconnecting on one link (or as a tagged
// jammer, per opts); each redial re-sends the same link handshake.
func DialTxLinkReconnecting(addr string, gainDB float64, o LinkOpts, cfg ReconnectConfig) (*ReconnectingClient, error) {
	return dialReconnecting(addr, txHandshakeLine(gainDB, o), cfg)
}

// DialRxLinkReconnecting is DialRxReconnecting on one link, optionally
// excluding a tagged contribution from the received mix.
func DialRxLinkReconnecting(addr string, o LinkOpts, cfg ReconnectConfig) (*ReconnectingClient, error) {
	return dialReconnecting(addr, rxHandshakeLine(o), cfg)
}

func dialReconnecting(addr, handshake string, cfg ReconnectConfig) (*ReconnectingClient, error) {
	if cfg.BackoffBase == 0 {
		cfg.BackoffBase = DefaultBackoffBase
	}
	if cfg.BackoffBase < 0 {
		return nil, fmt.Errorf("iqstream: negative backoff base")
	}
	if cfg.BackoffMax == 0 {
		cfg.BackoffMax = DefaultBackoffMax
	}
	if cfg.BackoffMax < cfg.BackoffBase {
		return nil, fmt.Errorf("iqstream: backoff max %v below base %v", cfg.BackoffMax, cfg.BackoffBase)
	}
	if cfg.Multiplier == 0 {
		cfg.Multiplier = DefaultBackoffMultiplier
	}
	if cfg.Multiplier < 1 || math.IsNaN(cfg.Multiplier) || math.IsInf(cfg.Multiplier, 0) {
		return nil, fmt.Errorf("iqstream: backoff multiplier %v must be >= 1 and finite", cfg.Multiplier)
	}
	if cfg.Jitter == 0 {
		cfg.Jitter = DefaultBackoffJitter
	}
	if cfg.Jitter < 0 {
		cfg.Jitter = 0
	}
	if cfg.Jitter >= 1 || math.IsNaN(cfg.Jitter) {
		return nil, fmt.Errorf("iqstream: backoff jitter %v must be in [0, 1)", cfg.Jitter)
	}
	if cfg.MaxAttempts == 0 {
		cfg.MaxAttempts = DefaultMaxAttempts
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if cfg.Sleep == nil {
		cfg.Sleep = time.Sleep
	}
	met := cfg.Metrics
	if met == nil {
		met = new(obs.NetMetrics)
	}
	rc := &ReconnectingClient{
		addr:      addr,
		handshake: handshake,
		cfg:       cfg,
		met:       met,
		rng:       prng.New(cfg.Seed),
	}
	if err := rc.connect(); err != nil {
		return nil, err
	}
	return rc, nil
}

// backoffDelay returns the delay before dial attempt number attempt
// (0-based), jittered deterministically from the configured seed.
func (rc *ReconnectingClient) backoffDelay(attempt int) time.Duration {
	d := float64(rc.cfg.BackoffBase) * math.Pow(rc.cfg.Multiplier, float64(attempt))
	if m := float64(rc.cfg.BackoffMax); d > m {
		d = m
	}
	if j := rc.cfg.Jitter; j > 0 {
		d *= 1 + j*(2*rc.rng.Float64()-1)
	}
	return time.Duration(d)
}

// connect runs one dial-with-backoff cycle (handshake included — dial only
// succeeds after the hub's OK) and installs the fresh connection.
func (rc *ReconnectingClient) connect() error {
	for attempt := 0; ; attempt++ {
		rc.mu.Lock()
		closed := rc.closed
		rc.mu.Unlock()
		if closed {
			return ErrClientClosed
		}
		rc.met.DialAttempts.Inc()
		c, err := dial(rc.addr, rc.handshake)
		if err == nil {
			rc.mu.Lock()
			if rc.closed {
				rc.mu.Unlock()
				c.Close()
				return ErrClientClosed
			}
			rc.c = c
			rc.mu.Unlock()
			return nil
		}
		rc.met.DialFailures.Inc()
		rc.cfg.Logf("dial %s failed (attempt %d): %v", rc.addr, attempt+1, err)
		if rc.cfg.MaxAttempts > 0 && attempt+1 >= rc.cfg.MaxAttempts {
			return fmt.Errorf("iqstream: connect to %s failed after %d attempts: %w", rc.addr, attempt+1, err)
		}
		rc.cfg.Sleep(rc.backoffDelay(attempt))
	}
}

// current returns the live connection (nil after a fault) or
// ErrClientClosed.
func (rc *ReconnectingClient) current() (*Client, error) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if rc.closed {
		return nil, ErrClientClosed
	}
	return rc.c, nil
}

// drop discards a faulted connection (if it is still the current one).
func (rc *ReconnectingClient) drop(c *Client) {
	rc.mu.Lock()
	if rc.c == c {
		rc.c = nil
	}
	rc.mu.Unlock()
	c.Close()
}

// noteReconnect records one successful re-establishment.
func (rc *ReconnectingClient) noteReconnect() {
	rc.reconnects.Add(1)
	rc.met.Reconnects.Inc()
	rc.cfg.Logf("reconnected to %s (total %d)", rc.addr, rc.reconnects.Load())
}

// Send writes one block, transparently redialing on transport faults. A
// block that faulted mid-write may be lost (the hub discards the truncated
// wire block): bounded loss, never a wedged link.
func (rc *ReconnectingClient) Send(samples []complex128) error {
	var lastErr error
	for attempt := 0; attempt < 3; attempt++ {
		c, err := rc.current()
		if err != nil {
			return err
		}
		if c == nil {
			if err := rc.connect(); err != nil {
				return err
			}
			rc.noteReconnect()
			continue
		}
		err = c.Send(samples)
		if err == nil {
			return nil
		}
		lastErr = err
		rc.drop(c)
	}
	return fmt.Errorf("iqstream: send to %s kept failing across reconnects: %w", rc.addr, lastErr)
}

// Recv reads the next mixed block. After any transport fault it redials
// and returns ErrStreamGap exactly once; the following Recv resumes on the
// fresh stream, which begins at a clean wire-block boundary.
func (rc *ReconnectingClient) Recv() ([]complex128, error) {
	c, err := rc.current()
	if err != nil {
		return nil, err
	}
	if c != nil {
		block, err := c.Recv()
		if err == nil {
			return block, nil
		}
		rc.drop(c)
	}
	if err := rc.connect(); err != nil {
		return nil, err
	}
	rc.noteReconnect()
	rc.met.StreamGaps.Inc()
	return nil, ErrStreamGap
}

// Reconnects returns the number of successful re-establishments so far.
func (rc *ReconnectingClient) Reconnects() int64 { return rc.reconnects.Load() }

// Close disconnects and aborts any in-flight retry loop.
func (rc *ReconnectingClient) Close() error {
	rc.mu.Lock()
	rc.closed = true
	c := rc.c
	rc.c = nil
	rc.mu.Unlock()
	if c != nil {
		return c.Close()
	}
	return nil
}
