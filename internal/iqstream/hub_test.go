package iqstream

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"bhss/internal/obs"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestHubCloseStopsTxGoroutines pins the transmitter-leak fix: Close must
// sever transmitter connections too, so serveTx goroutines blocked in
// ReadBlock unwind without waiting for the peer to hang up.
func TestHubCloseStopsTxGoroutines(t *testing.T) {
	checkGoroutines(t)
	h, err := NewHub("127.0.0.1:0", HubConfig{BlockSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	go h.Serve()

	var clients []*Client
	for i := 0; i < 3; i++ {
		tx, err := DialTx(h.Addr().String(), 0)
		if err != nil {
			t.Fatal(err)
		}
		clients = append(clients, tx)
	}
	rx, err := DialRx(h.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	clients = append(clients, rx)

	// The clients deliberately stay open across Close: the leak check at
	// cleanup proves the hub did not need them to hang up first.
	h.Close()
	t.Cleanup(func() {
		for _, c := range clients {
			c.Close()
		}
	})
}

// TestHubHandshakeTable covers every handshake verdict, including the
// strict gain parse: an unparsable gain is refused outright, never silently
// run at 0 dB.
func TestHubHandshakeTable(t *testing.T) {
	met := &obs.HubMetrics{}
	h := startHub(t, HubConfig{BlockSize: 64, Metrics: met})
	addr := h.Addr().String()

	cases := []struct {
		name, handshake, want string
	}{
		{"tx with gain", "IQHUB tx 3.5", "OK"},
		{"tx negative gain", "IQHUB tx -20", "OK"},
		{"tx default gain", "IQHUB tx", "OK"},
		{"rx", "IQHUB rx", "OK"},
		{"tx garbage gain", "IQHUB tx loud", "ERR bad gain"},
		{"tx NaN gain", "IQHUB tx NaN", "ERR bad gain"},
		{"tx Inf gain", "IQHUB tx +Inf", "ERR bad gain"},
		{"unknown role", "IQHUB spectator", `ERR unknown role "spectator"`},
		{"wrong magic", "HELLO world", "ERR bad handshake"},
		{"tx with link", "IQHUB tx 3 LINK 7", "OK"},
		{"rx with link", "IQHUB rx LINK 7", "OK"},
		{"jam role", "IQHUB jam", "OK"},
		{"jam with gain link tag", "IQHUB jam -10 LINK 2 TAG j1", "OK"},
		{"tx tagged", "IQHUB tx 0 TAG probe", "OK"},
		{"rx excluding", "IQHUB rx EXCL jam", "OK"},
		{"bad link", "IQHUB tx LINK banana", "ERR bad link"},
		{"link overflow", "IQHUB rx LINK 4294967296", "ERR bad link"},
		{"negative link", "IQHUB rx LINK -1", "ERR bad link"},
		{"bad tag", "IQHUB tx TAG *bad*", "ERR bad tag"},
		{"tag too long", "IQHUB tx TAG " + strings.Repeat("x", MaxTagLen+1), "ERR bad tag"},
		{"empty-ish excl", "IQHUB rx EXCL !", "ERR bad tag"},
		{"dangling key", "IQHUB rx LINK", "ERR bad handshake"},
		{"duplicate key", "IQHUB rx LINK 1 LINK 2", "ERR bad handshake"},
		{"tag on rx", "IQHUB rx TAG x", "ERR bad handshake"},
		{"excl on tx", "IQHUB tx EXCL x", "ERR bad handshake"},
		{"trailing junk", "IQHUB tx 3.5 whatever", "ERR bad handshake"},
	}
	rejects := 0
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				t.Fatal(err)
			}
			defer conn.Close()
			fmt.Fprintf(conn, "%s\n", tc.handshake)
			line, err := bufio.NewReader(conn).ReadString('\n')
			if err != nil {
				t.Fatalf("no reply: %v", err)
			}
			if got := strings.TrimSpace(line); got != tc.want {
				t.Fatalf("reply = %q, want %q", got, tc.want)
			}
			if strings.HasPrefix(tc.want, "ERR") {
				rejects++
				// The hub must have closed its side: the next read sees EOF.
				if _, err := bufio.NewReader(conn).ReadString('\n'); err == nil {
					t.Fatal("connection still open after ERR reply")
				}
			}
		})
	}
	waitFor(t, time.Second, "handshake reject counter", func() bool {
		return met.HandshakeRejects.Load() == int64(rejects)
	})
}

// TestHubSlowReceiverEviction proves the mixer never blocks on a wedged
// receiver: the slow consumer is evicted once its queue has been full for
// the stall budget, while a healthy receiver keeps streaming.
func TestHubSlowReceiverEviction(t *testing.T) {
	checkGoroutines(t)
	met := &obs.HubMetrics{}
	h := startHub(t, HubConfig{
		BlockSize:     256,
		RxBuffer:      1,
		StallBudget:   30 * time.Millisecond,
		WriteDeadline: -1, // isolate the stall-eviction path from the write deadline
		Metrics:       met,
	})
	addr := h.Addr().String()

	// The slow receiver completes the handshake and then never reads.
	slow, err := DialRx(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer slow.Close()
	fast, err := DialRx(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer fast.Close()
	tx, err := DialTx(addr, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer tx.Close()

	// Stream until the slow receiver's socket and queue are saturated and
	// the stall budget has elapsed. The healthy receiver drains in
	// parallel, proving the mixer stayed live throughout.
	block := make([]complex128, 4096)
	for i := range block {
		block[i] = 1
	}
	done := make(chan struct{})
	var fastGot int
	go func() {
		defer close(done)
		for fastGot < 1<<21 {
			blk, err := fast.Recv()
			if err != nil {
				return
			}
			fastGot += len(blk)
		}
	}()
	deadline := time.Now().Add(15 * time.Second)
	for met.RxEvictions.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("no eviction after %d queue drops", met.RxQueueDrops.Load())
		}
		if err := tx.Send(block); err != nil {
			t.Fatalf("tx send: %v", err)
		}
	}
	tx.Close()
	<-done
	if met.RxQueueDrops.Load() == 0 {
		t.Fatal("expected queue drops before eviction")
	}
	if fastGot == 0 {
		t.Fatal("healthy receiver starved while slow receiver stalled")
	}
	// The evicted socket is closed server-side.
	if err := slow.SetRecvDeadline(time.Now().Add(2 * time.Second)); err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := slow.Recv(); err != nil {
			break
		}
	}
}

// TestHubTxOverflowDropOldest: with no receiver draining, a fast
// transmitter hits the queue bound and the oldest samples are discarded —
// bounded memory, bounded loss, connection kept.
func TestHubTxOverflowDropOldest(t *testing.T) {
	checkGoroutines(t)
	met := &obs.HubMetrics{}
	h := startHub(t, HubConfig{
		BlockSize:  256,
		MaxPending: 1024,
		Overflow:   OverflowDropOldest,
		Metrics:    met,
	})
	tx, err := DialTx(h.Addr().String(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer tx.Close()

	block := make([]complex128, 512)
	for i := 0; i < 16; i++ {
		if err := tx.Send(block); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	waitFor(t, 5*time.Second, "overflow drops", func() bool {
		return met.TxOverflowDrops.Load() > 0
	})
	// The bound is soft by at most one wire block.
	pending := h.pendingSamples()
	if pending > 1024+512 {
		t.Fatalf("pending %d exceeds bound 1024 by more than one block", pending)
	}
	if hw := met.QueueHighWater.Load(); hw == 0 || hw > 1024+512 {
		t.Fatalf("queue high-water %v out of (0, 1536]", hw)
	}
}

// TestHubTxOverflowBlockDeadline: under the block policy with no receiver,
// the transmitter is disconnected once it has been held at the bound past
// the overflow deadline.
func TestHubTxOverflowBlockDeadline(t *testing.T) {
	checkGoroutines(t)
	met := &obs.HubMetrics{}
	h := startHub(t, HubConfig{
		BlockSize:        256,
		MaxPending:       512,
		Overflow:         OverflowBlock,
		OverflowDeadline: 50 * time.Millisecond,
		Metrics:          met,
	})
	tx, err := DialTx(h.Addr().String(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer tx.Close()

	block := make([]complex128, 512)
	// First block is admitted (empty queue); the second is read off the
	// socket and then held at the bound until the deadline kills the
	// connection.
	for i := 0; i < 4; i++ {
		if err := tx.Send(block); err != nil {
			break // broken pipe once the hub hangs up — expected
		}
	}
	waitFor(t, 5*time.Second, "overflow kill", func() bool {
		return met.TxOverflowKills.Load() == 1
	})
	if met.TxOverflowWaits.Load() == 0 {
		t.Fatal("expected at least one backpressure wait before the kill")
	}
}

// TestHubTxBackpressureRecovers: the block policy is lossless when a
// receiver is draining — every sample sent arrives despite the tiny bound.
func TestHubTxBackpressureRecovers(t *testing.T) {
	checkGoroutines(t)
	h := startHub(t, HubConfig{
		BlockSize:        128,
		MaxPending:       256,
		Overflow:         OverflowBlock,
		OverflowDeadline: 10 * time.Second,
	})
	addr := h.Addr().String()
	rx, err := DialRx(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer rx.Close()
	tx, err := DialTx(addr, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer tx.Close()

	const blocks, blockLen = 40, 256
	go func() {
		block := make([]complex128, blockLen)
		for i := range block {
			block[i] = 1
		}
		for i := 0; i < blocks; i++ {
			if err := tx.Send(block); err != nil {
				return
			}
		}
	}()
	got := recvN(t, rx, blocks*blockLen)
	for i, v := range got {
		if real(v) != 1 || imag(v) != 0 {
			t.Fatalf("sample %d = %v, want 1", i, v)
		}
	}
}

// TestHubShutdownDrains: a graceful shutdown delivers every already-queued
// sample to the receivers before closing.
func TestHubShutdownDrains(t *testing.T) {
	checkGoroutines(t)
	h, err := NewHub("127.0.0.1:0", HubConfig{BlockSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	go h.Serve()
	t.Cleanup(func() { h.Close() })
	addr := h.Addr().String()

	tx, err := DialTx(addr, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer tx.Close()
	const total = 10 * 256
	block := make([]complex128, 256)
	for i := range block {
		block[i] = 2
	}
	for i := 0; i < 10; i++ {
		if err := tx.Send(block); err != nil {
			t.Fatal(err)
		}
	}
	// No receiver yet, so nothing mixes: wait until the hub has enqueued
	// everything, then connect the receiver and shut down.
	waitFor(t, 5*time.Second, "tx queue fill", func() bool {
		return h.pendingSamples() == total
	})
	rx, err := DialRx(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer rx.Close()

	shutdownErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownErr <- h.Shutdown(ctx)
	}()
	got := recvN(t, rx, total)
	for i, v := range got {
		if real(v) != 2 {
			t.Fatalf("sample %d = %v, want 2", i, v)
		}
	}
	if err := <-shutdownErr; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	// After the drain the hub is fully closed: the stream ends.
	if err := rx.SetRecvDeadline(time.Now().Add(5 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if _, err := rx.Recv(); err == nil {
		t.Fatal("stream still open after drained shutdown")
	}
}

// TestHubShutdownDeadline: an undrainable queue (stalled receiver) cannot
// hold Shutdown hostage — the context bounds it.
func TestHubShutdownDeadline(t *testing.T) {
	checkGoroutines(t)
	h, err := NewHub("127.0.0.1:0", HubConfig{
		BlockSize:     256,
		RxBuffer:      1,
		StallBudget:   -1, // never evict: the queue stays permanently full
		WriteDeadline: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	go h.Serve()
	t.Cleanup(func() { h.Close() })
	addr := h.Addr().String()

	rx, err := DialRx(addr) // never reads
	if err != nil {
		t.Fatal(err)
	}
	defer rx.Close()
	tx, err := DialTx(addr, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer tx.Close()
	block := make([]complex128, 4096)
	for i := 0; i < 64; i++ {
		if err := tx.Send(block); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	if err := h.Shutdown(ctx); err != context.DeadlineExceeded {
		// The wedged receiver may also have been fully flushed into OS
		// socket buffers, in which case the drain legitimately finishes.
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	}
}

// TestHubConnectionChurn hammers the hub with concurrent connect/disconnect
// cycles of both roles while a persistent link keeps flowing — run under
// -race this pins the registration/eviction locking, and the goroutine
// check pins the teardown of every handler.
func TestHubConnectionChurn(t *testing.T) {
	checkGoroutines(t)
	h := startHub(t, HubConfig{
		BlockSize:  256,
		MaxPending: 1 << 16,
		Overflow:   OverflowDropOldest,
		// Default StallBudget: an unthrottled transmitter makes the mixer
		// outrun even a healthy receiver, and this test is about churn,
		// not eviction.
	})
	addr := h.Addr().String()

	rx, err := DialRx(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer rx.Close()
	tx, err := DialTx(addr, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer tx.Close()

	stop := make(chan struct{})
	var txErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // persistent transmitter
		defer wg.Done()
		block := make([]complex128, 1024)
		for i := range block {
			block[i] = 1
		}
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := tx.Send(block); err != nil {
				txErr = err
				return
			}
		}
	}()

	const churners = 6
	const rounds = 15
	wg.Add(churners)
	for c := 0; c < churners; c++ {
		go func(c int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				if c%2 == 0 {
					cl, err := DialTx(addr, -10)
					if err != nil {
						continue // hub teardown race at test end is fine
					}
					_ = cl.Send(make([]complex128, 512))
					cl.Close()
				} else {
					cl, err := DialRx(addr)
					if err != nil {
						continue
					}
					_ = cl.SetRecvDeadline(time.Now().Add(20 * time.Millisecond))
					_, _ = cl.Recv()
					cl.Close()
				}
			}
		}(c)
	}

	// The persistent receiver must keep making progress through the churn.
	got := recvN(t, rx, 1<<18)
	if len(got) != 1<<18 {
		t.Fatalf("persistent rx got %d samples", len(got))
	}
	close(stop)
	wg.Wait()
	if txErr != nil {
		t.Fatalf("persistent tx failed: %v", txErr)
	}
}

// TestHubJamHook pins the hub-side adversary semantics (bhssair -jam): the
// hook overhears the clean mixed block — its own interference is NOT looped
// back into what it senses, unlike a bhssjam client — and the returned
// waveform rides on top of the mix that every receiver sees.
func TestHubJamHook(t *testing.T) {
	checkGoroutines(t)
	var heard []complex128
	h := startHub(t, HubConfig{
		BlockSize: 64,
		Jam: func(mix []complex128) []complex128 {
			heard = append(heard[:0], mix...)
			j := make([]complex128, len(mix))
			for i := range j {
				j[i] = complex(0, 3)
			}
			return j
		},
	})
	addr := h.Addr().String()
	rx, err := DialRx(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer rx.Close()
	tx, err := DialTx(addr, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer tx.Close()

	block := make([]complex128, 64)
	for i := range block {
		block[i] = 1
	}
	if err := tx.Send(block); err != nil {
		t.Fatal(err)
	}
	got := recvN(t, rx, 64)
	for i, v := range got {
		if v != complex(1, 3) {
			t.Fatalf("sample %d = %v, want (1+3i): jam waveform missing from the mix", i, v)
		}
	}
	// The receive above happens-after the mixer's Jam call (channel send +
	// socket write), so reading the captured sense buffer here is ordered.
	if len(heard) != 64 {
		t.Fatalf("adversary heard %d samples, want 64", len(heard))
	}
	for i, v := range heard {
		if v != 1 {
			t.Fatalf("heard[%d] = %v, want the clean pre-jam mix (1)", i, v)
		}
	}
}

// TestOverflowPolicyStrings pins the flag round-trip.
func TestOverflowPolicyStrings(t *testing.T) {
	for _, p := range []OverflowPolicy{OverflowBlock, OverflowDropOldest} {
		got, err := ParseOverflowPolicy(p.String())
		if err != nil || got != p {
			t.Fatalf("round trip %v: got %v, err %v", p, got, err)
		}
	}
	if _, err := ParseOverflowPolicy("banana"); err == nil {
		t.Fatal("bad policy accepted")
	}
	if s := OverflowPolicy(42).String(); s != "OverflowPolicy(42)" {
		t.Fatalf("unknown policy string = %q", s)
	}
}

// TestHubConfigResilienceValidation extends the config validation to the
// new transport fields.
func TestHubConfigResilienceValidation(t *testing.T) {
	bad := []HubConfig{
		{MaxPending: -1},
		{RxBuffer: -1},
		{Overflow: OverflowPolicy(9)},
	}
	for i, cfg := range bad {
		if _, err := NewHub("127.0.0.1:0", cfg); err == nil {
			t.Fatalf("case %d: invalid config accepted", i)
		}
	}
}
