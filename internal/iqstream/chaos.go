package iqstream

import (
	"fmt"
	"math"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"

	"bhss/internal/prng"
)

// Chaos spec grammar (documented in README.md and DESIGN.md §12), in the
// style of impair.ParseSpec:
//
//	chaos   := "" | entry { "," entry }
//	entry   := key "=" value
//	key     := latency | stall | reset | resetevery | trunc | short
//	         | drop | seed
//
//	latency=<ms>[:<jitter_ms>]  per-chunk forwarding delay plus uniform
//	                            jitter in [0, jitter_ms)
//	stall=<p>:<ms>              with probability p per chunk, pause ms
//	                            before forwarding it
//	reset=<p>                   with probability p per chunk, hard-close
//	                            both sides of the link
//	resetevery=<n>              deterministically reset the link once n
//	                            bytes have been forwarded in a direction:
//	                            the fault lands at an exact stream offset
//	                            no matter how reads coalesce into chunks
//	                            (the soak tests' guaranteed-fault knob)
//	trunc=<p>                   with probability p, forward only a random
//	                            prefix of the chunk (mid-block truncation
//	                            on the wire), then reset
//	short=<p>                   with probability p, deliver the chunk as
//	                            several small writes (exercises partial
//	                            reads in the block codec)
//	drop=<p>                    with probability p, silently discard the
//	                            chunk — the surviving stream is spliced,
//	                            so the reader sees bad framing
//	seed=<uint64>               proxy seed override (default: the seed
//	                            passed to NewChaosProxy)
//
// Probabilities are per forwarded chunk (one upstream Read, ≤ 32 KiB) and
// must lie in [0, 1]; delays must be finite, non-negative and ≤ 60000 ms.
// All faults are drawn from internal/prng sub-sources derived from (seed,
// connection index, direction), so a given spec and connection history
// replays the same fault schedule.

// Chaos spec limits: a hostile spec cannot sleep a pump for more than a
// minute per chunk or push the reset offset beyond 1 GiB.
const (
	maxChaosMS         = 60_000
	maxChaosResetEvery = 1 << 30
)

// ChaosConfig is the parsed form of a chaos spec string. The zero value is
// a transparent proxy.
type ChaosConfig struct {
	LatencyMS       float64
	LatencyJitterMS float64

	StallProb float64
	StallMS   float64

	ResetProb  float64
	ResetEvery int // bytes per direction before the deterministic reset

	TruncProb      float64
	ShortWriteProb float64
	DropProb       float64

	Seed    uint64
	HasSeed bool
}

// ParseChaosSpec parses a chaos spec string. The empty string parses to
// the zero ChaosConfig. It never panics, whatever the input.
func ParseChaosSpec(spec string) (ChaosConfig, error) {
	var c ChaosConfig
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return c, nil
	}
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			return ChaosConfig{}, fmt.Errorf("iqstream: empty entry in chaos spec %q", spec)
		}
		key, val, ok := strings.Cut(entry, "=")
		if !ok {
			return ChaosConfig{}, fmt.Errorf("iqstream: chaos entry %q is not key=value", entry)
		}
		key = strings.TrimSpace(key)
		val = strings.TrimSpace(val)
		var err error
		switch key {
		case "latency":
			c.LatencyMS, c.LatencyJitterMS, err = parseChaosPair(key, val)
			if err == nil {
				err = checkChaosMS(key, c.LatencyMS, c.LatencyJitterMS)
			}
		case "stall":
			c.StallProb, c.StallMS, err = parseChaosPair(key, val)
			if err == nil {
				if err = checkChaosProb(key, c.StallProb); err == nil {
					err = checkChaosMS(key, c.StallMS)
				}
			}
		case "reset":
			c.ResetProb, err = parseChaosProb(key, val)
		case "resetevery":
			var n int64
			n, err = strconv.ParseInt(val, 10, 64)
			if err != nil {
				err = fmt.Errorf("iqstream: resetevery=%q: not an integer", val)
			} else if n < 0 || n > maxChaosResetEvery {
				err = fmt.Errorf("iqstream: resetevery=%d out of 0..%d", n, maxChaosResetEvery)
			} else {
				c.ResetEvery = int(n)
			}
		case "trunc":
			c.TruncProb, err = parseChaosProb(key, val)
		case "short":
			c.ShortWriteProb, err = parseChaosProb(key, val)
		case "drop":
			c.DropProb, err = parseChaosProb(key, val)
		case "seed":
			c.Seed, err = strconv.ParseUint(val, 10, 64)
			if err != nil {
				err = fmt.Errorf("iqstream: chaos seed=%q: not a uint64", val)
			} else {
				c.HasSeed = true
			}
		default:
			err = fmt.Errorf("iqstream: unknown chaos key %q", key)
		}
		if err != nil {
			return ChaosConfig{}, err
		}
	}
	return c, nil
}

func parseChaosFinite(key, val string) (float64, error) {
	f, err := strconv.ParseFloat(val, 64)
	if err != nil || math.IsNaN(f) || math.IsInf(f, 0) {
		return 0, fmt.Errorf("iqstream: chaos %s=%q: not a finite number", key, val)
	}
	return f, nil
}

func parseChaosProb(key, val string) (float64, error) {
	p, err := parseChaosFinite(key, val)
	if err != nil {
		return 0, err
	}
	return p, checkChaosProb(key, p)
}

func checkChaosProb(key string, p float64) error {
	if p < 0 || p > 1 {
		return fmt.Errorf("iqstream: chaos %s probability %v out of [0, 1]", key, p)
	}
	return nil
}

func checkChaosMS(key string, vals ...float64) error {
	for _, v := range vals {
		if v < 0 || v > maxChaosMS {
			return fmt.Errorf("iqstream: chaos %s delay %v ms out of 0..%d", key, v, maxChaosMS)
		}
	}
	return nil
}

// parseChaosPair parses "a" or "a:b" (b defaults to 0).
func parseChaosPair(key, val string) (a, b float64, err error) {
	first, second, has := strings.Cut(val, ":")
	a, err = parseChaosFinite(key, first)
	if err != nil {
		return 0, 0, err
	}
	if has {
		b, err = parseChaosFinite(key, second)
		if err != nil {
			return 0, 0, err
		}
	}
	return a, b, nil
}

// String renders the config in canonical spec form: fixed key order,
// identity faults omitted. ParseChaosSpec(String()) reproduces the config
// exactly (the round-trip property FuzzParseChaosSpec pins).
func (c ChaosConfig) String() string {
	var b strings.Builder
	add := func(key, val string) {
		if b.Len() > 0 {
			b.WriteByte(',')
		}
		b.WriteString(key)
		b.WriteByte('=')
		b.WriteString(val)
	}
	g := func(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }
	if c.LatencyMS != 0 || c.LatencyJitterMS != 0 {
		add("latency", g(c.LatencyMS)+":"+g(c.LatencyJitterMS))
	}
	if c.StallProb != 0 || c.StallMS != 0 {
		add("stall", g(c.StallProb)+":"+g(c.StallMS))
	}
	if c.ResetProb != 0 {
		add("reset", g(c.ResetProb))
	}
	if c.ResetEvery != 0 {
		add("resetevery", strconv.Itoa(c.ResetEvery))
	}
	if c.TruncProb != 0 {
		add("trunc", g(c.TruncProb))
	}
	if c.ShortWriteProb != 0 {
		add("short", g(c.ShortWriteProb))
	}
	if c.DropProb != 0 {
		add("drop", g(c.DropProb))
	}
	if c.HasSeed {
		add("seed", strconv.FormatUint(c.Seed, 10))
	}
	return b.String()
}

// Enabled reports whether the proxy would inject any fault.
func (c ChaosConfig) Enabled() bool {
	return c.LatencyMS != 0 || c.LatencyJitterMS != 0 ||
		c.StallProb != 0 || c.ResetProb != 0 || c.ResetEvery != 0 ||
		c.TruncProb != 0 || c.ShortWriteProb != 0 || c.DropProb != 0
}

// ChaosProxy is a fault-injecting TCP proxy placed between hub clients and
// the hub itself: the software analogue of a flaky coax run. Every
// accepted connection is paired with an upstream connection; bytes pumped
// in each direction pass through a seeded injector that applies the
// configured latency, stalls, truncations, short writes, silent drops and
// connection resets.
type ChaosProxy struct {
	cfg      ChaosConfig
	upstream string
	seed     uint64
	ln       net.Listener
	logf     func(format string, args ...any)

	mu     sync.Mutex
	links  map[int]*chaosLink
	nextID int
	closed bool
	wg     sync.WaitGroup
}

type chaosLink struct {
	id       int
	down, up net.Conn
	once     sync.Once
}

func (l *chaosLink) closeBoth() {
	l.once.Do(func() {
		l.down.Close()
		l.up.Close()
	})
}

// NewChaosProxy listens on listenAddr and forwards each connection to
// upstream through the configured fault injector. The spec's seed= key,
// when present, overrides the seed argument.
func NewChaosProxy(listenAddr, upstream string, cfg ChaosConfig, seed uint64, logf func(format string, args ...any)) (*ChaosProxy, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if cfg.HasSeed {
		seed = cfg.Seed
	}
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, err
	}
	return &ChaosProxy{
		cfg:      cfg,
		upstream: upstream,
		seed:     seed,
		ln:       ln,
		logf:     logf,
		links:    map[int]*chaosLink{},
	}, nil
}

// NewChaosProxyFromSpec parses spec and builds the proxy in one step; the
// entry point behind bhssair's -chaos flag.
func NewChaosProxyFromSpec(listenAddr, upstream, spec string, seed uint64, logf func(format string, args ...any)) (*ChaosProxy, error) {
	cfg, err := ParseChaosSpec(spec)
	if err != nil {
		return nil, err
	}
	return NewChaosProxy(listenAddr, upstream, cfg, seed, logf)
}

// Addr returns the proxy's listen address.
func (p *ChaosProxy) Addr() net.Addr { return p.ln.Addr() }

// Serve accepts and proxies connections until Close.
func (p *ChaosProxy) Serve() error {
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			p.mu.Lock()
			closed := p.closed
			p.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			conn.Close()
			continue
		}
		id := p.nextID
		p.nextID++
		p.mu.Unlock()
		p.wg.Add(1)
		go p.handle(conn, id)
	}
}

func (p *ChaosProxy) handle(down net.Conn, id int) {
	defer p.wg.Done()
	up, err := net.Dial("tcp", p.upstream)
	if err != nil {
		p.logf("chaos: conn %d upstream dial failed: %v", id, err)
		down.Close()
		return
	}
	link := &chaosLink{id: id, down: down, up: up}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		link.closeBoth()
		return
	}
	p.links[id] = link
	p.mu.Unlock()

	// Per-direction injectors with deterministic sub-seeds: the fault
	// schedule of (seed, connection index, direction) replays exactly.
	var pumps sync.WaitGroup
	pumps.Add(2)
	go p.pump(link, up, down, newInjector(p.cfg, p.seed+uint64(id)*2), &pumps)   // client → hub
	go p.pump(link, down, up, newInjector(p.cfg, p.seed+uint64(id)*2+1), &pumps) // hub → client
	pumps.Wait()
	link.closeBoth()
	p.mu.Lock()
	delete(p.links, id)
	p.mu.Unlock()
}

// pump forwards src → dst through the injector until either side dies or
// the injector decides to reset the link.
func (p *ChaosProxy) pump(link *chaosLink, dst, src net.Conn, inj *injector, pumps *sync.WaitGroup) {
	defer pumps.Done()
	buf := make([]byte, 32<<10)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			if fatal := inj.forward(dst, buf[:n]); fatal {
				p.logf("chaos: conn %d reset after %d bytes", link.id, inj.bytes)
				link.closeBoth()
				return
			}
		}
		if err != nil {
			link.closeBoth()
			return
		}
	}
}

// Close stops the proxy and severs every proxied link.
func (p *ChaosProxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	links := make([]*chaosLink, 0, len(p.links))
	for _, l := range p.links {
		links = append(links, l)
	}
	p.mu.Unlock()
	p.ln.Close()
	for _, l := range links {
		l.closeBoth()
	}
	p.wg.Wait()
	return nil
}

// injector applies one direction's fault schedule. Not safe for concurrent
// use; each pump owns its own.
type injector struct {
	cfg   ChaosConfig
	rng   *prng.Source
	bytes int64 // stream offset consumed from src, delivered or not
	sleep func(time.Duration)
}

func newInjector(cfg ChaosConfig, seed uint64) *injector {
	return &injector{cfg: cfg, rng: prng.New(seed), sleep: time.Sleep}
}

// forward delivers one chunk through the fault schedule; a true return
// means the link must be reset.
func (j *injector) forward(dst net.Conn, chunk []byte) (fatal bool) {
	if j.cfg.LatencyMS > 0 || j.cfg.LatencyJitterMS > 0 {
		ms := j.cfg.LatencyMS + j.cfg.LatencyJitterMS*j.rng.Float64()
		j.sleep(time.Duration(ms * float64(time.Millisecond)))
	}
	if p := j.cfg.StallProb; p > 0 && j.rng.Float64() < p {
		j.sleep(time.Duration(j.cfg.StallMS * float64(time.Millisecond)))
	}
	// The deterministic reset lands at stream offset ResetEvery exactly:
	// the prefix up to the boundary is delivered, the rest dies with the
	// connection. Byte accounting (not chunk counting) keeps the fault
	// position independent of how the kernel coalesces reads.
	if n := int64(j.cfg.ResetEvery); n > 0 {
		if rem := n - j.bytes; rem <= int64(len(chunk)) {
			if rem > 0 {
				_, _ = dst.Write(chunk[:rem])
			}
			j.bytes = n
			return true
		}
	}
	j.bytes += int64(len(chunk))
	if p := j.cfg.ResetProb; p > 0 && j.rng.Float64() < p {
		return true
	}
	if p := j.cfg.TruncProb; p > 0 && j.rng.Float64() < p {
		if keep := j.rng.Intn(len(chunk)); keep > 0 {
			_, _ = dst.Write(chunk[:keep])
		}
		return true
	}
	if p := j.cfg.DropProb; p > 0 && j.rng.Float64() < p {
		return false
	}
	if p := j.cfg.ShortWriteProb; p > 0 && j.rng.Float64() < p {
		pieces := 2 + j.rng.Intn(7)
		step := len(chunk)/pieces + 1
		for off := 0; off < len(chunk); off += step {
			end := off + step
			if end > len(chunk) {
				end = len(chunk)
			}
			if _, err := dst.Write(chunk[off:end]); err != nil {
				return true
			}
		}
		return false
	}
	if _, err := dst.Write(chunk); err != nil {
		return true
	}
	return false
}
