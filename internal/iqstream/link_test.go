package iqstream

import (
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"bhss/internal/obs"
)

// TestHubMultiLinkIsolation is the no-cross-link-bleed property: three links
// carrying distinct constant values, mixed concurrently, deliver exactly
// their own transmitter's samples to their own receivers (NoiseVar 0 makes
// any bleed an exact-value failure, not a statistical one).
func TestHubMultiLinkIsolation(t *testing.T) {
	checkGoroutines(t)
	met := &obs.HubMetrics{}
	h := startHub(t, HubConfig{BlockSize: 128, Metrics: met})
	addr := h.Addr().String()

	type linkEnd struct {
		tx, rx *Client
		val    complex128
	}
	ends := []*linkEnd{
		{val: complex(1, 0)},
		{val: complex(0, 2)},
		{val: complex(-3, 5)},
	}
	for i, e := range ends {
		o := LinkOpts{Link: uint32(i * 11)} // links 0, 11, 22
		rx, err := DialRxLink(addr, o)
		if err != nil {
			t.Fatal(err)
		}
		defer rx.Close()
		tx, err := DialTxLink(addr, 0, o)
		if err != nil {
			t.Fatal(err)
		}
		defer tx.Close()
		e.tx, e.rx = tx, rx
	}

	const blocks, blockLen = 8, 512
	var wg sync.WaitGroup
	for _, e := range ends {
		wg.Add(1)
		go func(e *linkEnd) {
			defer wg.Done()
			block := make([]complex128, blockLen)
			for i := range block {
				block[i] = e.val
			}
			for i := 0; i < blocks; i++ {
				if err := e.tx.Send(block); err != nil {
					return
				}
			}
		}(e)
	}
	for li, e := range ends {
		got := recvN(t, e.rx, blocks*blockLen)
		for i, v := range got {
			if v != e.val {
				t.Fatalf("link %d sample %d = %v, want %v: cross-link bleed", li, i, v, e.val)
			}
		}
	}
	wg.Wait()
	if got := met.LinksAdmitted.Load(); got != 3 {
		t.Fatalf("LinksAdmitted = %d, want 3", got)
	}
}

// TestHubLinkAdmissionControl pins the hub-wide cap: links past MaxLinks are
// refused with "ERR hub full", counted, and a freed slot is reusable.
func TestHubLinkAdmissionControl(t *testing.T) {
	checkGoroutines(t)
	met := &obs.HubMetrics{}
	h := startHub(t, HubConfig{BlockSize: 64, MaxLinks: 2, Shards: 1, Metrics: met})
	addr := h.Addr().String()

	a, err := DialRxLink(addr, LinkOpts{Link: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := DialRxLink(addr, LinkOpts{Link: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	if _, err := DialRxLink(addr, LinkOpts{Link: 3}); err == nil ||
		!strings.Contains(err.Error(), "ERR hub full") {
		t.Fatalf("third link: err = %v, want ERR hub full", err)
	}
	if got := met.LinkRejectsFull.Load(); got != 1 {
		t.Fatalf("LinkRejectsFull = %d, want 1", got)
	}
	// A peer joining an already-admitted link is not a new link.
	a2, err := DialTxLink(addr, 0, LinkOpts{Link: 1})
	if err != nil {
		t.Fatalf("second peer on admitted link refused: %v", err)
	}
	defer a2.Close()

	// Leaving frees the slot: link 2's only peer hangs up, the empty link is
	// evicted and a new link fits again.
	b.Close()
	waitFor(t, 5*time.Second, "link eviction", func() bool {
		return met.LinksEvicted.Load() == 1
	})
	c, err := DialRxLink(addr, LinkOpts{Link: 3})
	if err != nil {
		t.Fatalf("link slot not reusable after eviction: %v", err)
	}
	defer c.Close()
}

// TestHubPerShardCap pins the per-shard admission bound: with one shard the
// shard cap alone refuses the overflow link.
func TestHubPerShardCap(t *testing.T) {
	checkGoroutines(t)
	h := startHub(t, HubConfig{BlockSize: 64, Shards: 1, MaxLinksPerShard: 1})
	addr := h.Addr().String()
	a, err := DialRxLink(addr, LinkOpts{Link: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if _, err := DialRxLink(addr, LinkOpts{Link: 2}); err == nil ||
		!strings.Contains(err.Error(), "ERR hub full") {
		t.Fatalf("second link past shard cap: err = %v, want ERR hub full", err)
	}
}

// TestHubLinkEvictionExactlyOnce is the eviction property test: concurrent
// evictions of the same link count once, and a fresh link readmitted under
// the same ID is untouched by stale evictions of its predecessor.
func TestHubLinkEvictionExactlyOnce(t *testing.T) {
	checkGoroutines(t)
	met := &obs.HubMetrics{}
	h := startHub(t, HubConfig{BlockSize: 64, Metrics: met})
	addr := h.Addr().String()

	rx, err := DialRxLink(addr, LinkOpts{Link: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer rx.Close()
	h.mu.Lock()
	old := h.links[5]
	h.mu.Unlock()
	if old == nil {
		t.Fatal("link 5 not registered after OK")
	}

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h.evictLink(old, "concurrent eviction race")
		}()
	}
	wg.Wait()
	if got := met.LinksEvicted.Load(); got != 1 {
		t.Fatalf("LinksEvicted = %d after racing evictions, want exactly 1", got)
	}

	// Readmit the same ID: a stale eviction of the old *link value must not
	// touch the fresh registration.
	rx2, err := DialRxLink(addr, LinkOpts{Link: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer rx2.Close()
	h.evictLink(old, "stale eviction of the dead generation")
	h.mu.Lock()
	fresh := h.links[5]
	h.mu.Unlock()
	if fresh == nil || fresh == old {
		t.Fatalf("fresh link 5 = %p (old %p): stale eviction removed the new generation", fresh, old)
	}
	if got := met.LinksEvicted.Load(); got != 1 {
		t.Fatalf("LinksEvicted = %d after stale eviction, want still 1", got)
	}
}

// TestHubExcludeSelf pins the sense-stream exclusion semantics (the bhssjam
// self-hearing fix): a receiver naming EXCL <tag> hears its link's mix with
// the tagged transmitter's scaled contribution subtracted, while plain
// receivers hear everything. The two phases are sequenced by draining each
// transmission fully, so every expected sample value is exact.
func TestHubExcludeSelf(t *testing.T) {
	checkGoroutines(t)
	h := startHub(t, HubConfig{BlockSize: 64})
	addr := h.Addr().String()

	plain, err := DialRx(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	sense, err := DialRxLink(addr, LinkOpts{Exclude: "jam"})
	if err != nil {
		t.Fatal(err)
	}
	defer sense.Close()
	victim, err := DialTx(addr, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer victim.Close()
	// The jam role defaults its contribution tag to "jam".
	jam, err := DialTxLink(addr, 0, LinkOpts{Jam: true})
	if err != nil {
		t.Fatal(err)
	}
	defer jam.Close()

	const n = 1024
	block := make([]complex128, n)

	// Phase 1: only the jammer transmits. The plain receiver hears it; the
	// sense stream hears exact silence — its own contribution subtracted.
	for i := range block {
		block[i] = complex(0, 2)
	}
	if err := jam.Send(block); err != nil {
		t.Fatal(err)
	}
	for i, v := range recvN(t, plain, n) {
		if v != complex(0, 2) {
			t.Fatalf("plain sample %d = %v during jam phase, want 2i", i, v)
		}
	}
	for i, v := range recvN(t, sense, n) {
		if v != 0 {
			t.Fatalf("sense sample %d = %v during jam phase: own transmission leaked into the excluded stream", i, v)
		}
	}

	// Phase 2: only the victim transmits. Both receivers hear it untouched.
	for i := range block {
		block[i] = complex(1, 0)
	}
	if err := victim.Send(block); err != nil {
		t.Fatal(err)
	}
	for i, v := range recvN(t, plain, n) {
		if v != complex(1, 0) {
			t.Fatalf("plain sample %d = %v during victim phase, want 1", i, v)
		}
	}
	for i, v := range recvN(t, sense, n) {
		if v != complex(1, 0) {
			t.Fatalf("sense sample %d = %v during victim phase, want 1: exclusion removed a foreign contribution", i, v)
		}
	}
}

// TestHubPanicIsolation: a panicking hub-side hook tears down only its own
// link — the neighbor keeps streaming — and the panic is counted.
func TestHubPanicIsolation(t *testing.T) {
	checkGoroutines(t)
	met := &obs.HubMetrics{}
	h := startHub(t, HubConfig{
		BlockSize: 64,
		Metrics:   met,
		Jam: func(heard []complex128) []complex128 { // carried by link 0 only
			panic("hostile hook")
		},
	})
	addr := h.Addr().String()

	rx1, err := DialRxLink(addr, LinkOpts{Link: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer rx1.Close()
	tx1, err := DialTxLink(addr, 0, LinkOpts{Link: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer tx1.Close()

	rx0, err := DialRx(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer rx0.Close()
	tx0, err := DialTx(addr, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer tx0.Close()
	if err := tx0.Send(make([]complex128, 64)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "recovered panic", func() bool {
		return met.RecoveredPanics.Load() >= 1
	})
	waitFor(t, 5*time.Second, "faulty link eviction", func() bool {
		return met.LinksEvicted.Load() >= 1
	})

	// Link 1 still works end to end after link 0's crash.
	block := make([]complex128, 64)
	for i := range block {
		block[i] = 7
	}
	if err := tx1.Send(block); err != nil {
		t.Fatal(err)
	}
	for i, v := range recvN(t, rx1, 64) {
		if v != 7 {
			t.Fatalf("link 1 sample %d = %v after link 0 panic, want 7", i, v)
		}
	}
	// Link 0's receiver was torn down with its link.
	if err := rx0.SetRecvDeadline(time.Now().Add(5 * time.Second)); err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := rx0.Recv(); err != nil {
			break
		}
	}
}

// TestHubWatchdogRestartsWedgedShard: a mix hook that never returns wedges
// its shard; the supervisor detects the frozen heartbeat, evicts the pinned
// link, re-homes the survivors and restarts the shard — traffic on a link
// that shared the wedged shard resumes.
func TestHubWatchdogRestartsWedgedShard(t *testing.T) {
	checkGoroutines(t)
	met := &obs.HubMetrics{}
	release := make(chan struct{})
	t.Cleanup(func() { close(release) }) // unwedge the stuck goroutine before the leak check
	h := startHub(t, HubConfig{
		BlockSize:        64,
		Shards:           2,
		WatchdogInterval: 20 * time.Millisecond,
		Metrics:          met,
		Jam: func(heard []complex128) []complex128 { // carried by link 0 only
			<-release
			return nil
		},
	})
	addr := h.Addr().String()

	// Admission is least-loaded, so link 0 lands on shard 0, link 1 on
	// shard 1 and link 2 back on shard 0 — wedging link 0 pins the shard
	// that also carries link 2.
	rx0, err := DialRx(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer rx0.Close()
	rx1, err := DialRxLink(addr, LinkOpts{Link: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer rx1.Close()
	rx2, err := DialRxLink(addr, LinkOpts{Link: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer rx2.Close()
	tx2, err := DialTxLink(addr, 0, LinkOpts{Link: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer tx2.Close()
	tx0, err := DialTx(addr, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer tx0.Close()

	// Wedge shard 0 inside link 0's hook.
	if err := tx0.Send(make([]complex128, 64)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "watchdog restart", func() bool {
		return met.ShardRestarts.Load() >= 1
	})
	waitFor(t, 10*time.Second, "wedged link eviction", func() bool {
		return met.LinksEvicted.Load() >= 1
	})

	// Link 2, re-homed off the wedged shard, must flow end to end again.
	block := make([]complex128, 64)
	for i := range block {
		block[i] = 9
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if err := tx2.Send(block); err != nil {
			t.Fatalf("tx2 send after restart: %v", err)
		}
		if err := rx2.SetRecvDeadline(time.Now().Add(time.Second)); err != nil {
			t.Fatal(err)
		}
		blk, err := rx2.Recv()
		if err == nil {
			for i, v := range blk {
				if v != 9 {
					t.Fatalf("re-homed link sample %d = %v, want 9", i, v)
				}
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("re-homed link never resumed: %v", err)
		}
	}
}

// TestHubLoadShed: under sustained receiver-queue overflow with per-receiver
// eviction disabled, the supervisor sheds the worst drop-majority link; the
// healthy link keeps flowing throughout.
func TestHubLoadShed(t *testing.T) {
	checkGoroutines(t)
	met := &obs.HubMetrics{}
	h := startHub(t, HubConfig{
		BlockSize:        256,
		RxBuffer:         1,
		StallBudget:      -1, // isolate shedding from per-receiver eviction
		WriteDeadline:    -1,
		WatchdogInterval: -1,
		ShedBudget:       150 * time.Millisecond,
		Overflow:         OverflowDropOldest,
		Metrics:          met,
	})
	addr := h.Addr().String()

	// Link 1: a receiver that never reads plus a flooding transmitter — its
	// receiver-queue drops grow on every supervisor poll.
	stuckRx, err := DialRxLink(addr, LinkOpts{Link: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer stuckRx.Close()
	floodTx, err := DialTxLink(addr, 0, LinkOpts{Link: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer floodTx.Close()
	// Link 2: a healthy pair.
	okRx, err := DialRxLink(addr, LinkOpts{Link: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer okRx.Close()
	okTx, err := DialTxLink(addr, 0, LinkOpts{Link: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer okTx.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // flood the stuck link
		defer wg.Done()
		block := make([]complex128, 512)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := floodTx.Send(block); err != nil {
				return // disconnected by the shed — expected
			}
		}
	}()
	healthyErr := make(chan error, 1)
	go func() { // keep the healthy link flowing, reads and all
		defer wg.Done()
		block := make([]complex128, 256)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := okTx.Send(block); err != nil {
				healthyErr <- err
				return
			}
			if err := okRx.SetRecvDeadline(time.Now().Add(5 * time.Second)); err != nil {
				healthyErr <- err
				return
			}
			if _, err := okRx.Recv(); err != nil {
				healthyErr <- err
				return
			}
		}
	}()

	waitFor(t, 15*time.Second, "load shed", func() bool {
		return met.LinksShed.Load() >= 1
	})
	close(stop)
	wg.Wait()
	select {
	case err := <-healthyErr:
		t.Fatalf("healthy link died during load shed: %v", err)
	default:
	}
	// The shed victim's receiver was disconnected with its link.
	if err := stuckRx.SetRecvDeadline(time.Now().Add(5 * time.Second)); err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := stuckRx.Recv(); err != nil {
			break
		}
	}
}

// TestHubHandshakeDeadlines is the slowloris regression: a peer that
// trickles or never finishes its handshake line is cut off by the read
// deadline, and an endless unterminated line is rejected at the buffer
// bound — accept goroutines cannot be pinned by a hostile peer.
func TestHubHandshakeDeadlines(t *testing.T) {
	checkGoroutines(t)
	met := &obs.HubMetrics{}
	h := startHub(t, HubConfig{BlockSize: 64, HandshakeTimeout: 80 * time.Millisecond, Metrics: met})
	addr := h.Addr().String()

	t.Run("silent peer", func(t *testing.T) {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		// Never send a byte: the hub must hang up on its own.
		expectHubHangup(t, conn)
	})
	t.Run("slowloris trickle", func(t *testing.T) {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		if _, err := conn.Write([]byte("IQHUB t")); err != nil {
			t.Fatal(err)
		}
		// The rest of the line never arrives.
		expectHubHangup(t, conn)
	})
	t.Run("unterminated line", func(t *testing.T) {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		junk := make([]byte, 64<<10) // no newline anywhere
		for i := range junk {
			junk[i] = 'A'
		}
		// A reset mid-write means the hub already hung up — also a pass.
		if _, err := conn.Write(junk); err == nil {
			expectHubHangup(t, conn)
		}
		if met.HandshakeRejects.Load() == 0 {
			t.Fatal("unterminated handshake line not counted as a reject")
		}
	})
}

// expectHubHangup fails unless the hub closes conn well within the test
// deadline (reads drain any ERR reply first).
func expectHubHangup(t *testing.T, conn net.Conn) {
	t.Helper()
	if err := conn.SetReadDeadline(time.Now().Add(5 * time.Second)); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4096)
	for {
		_, err := conn.Read(buf)
		if err == nil {
			continue
		}
		if ne, ok := err.(net.Error); ok && ne.Timeout() {
			t.Fatal("hub kept the connection open past the handshake deadline")
		}
		return // EOF or reset: the hub hung up
	}
}
