package iqstream

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"bhss/internal/impair"
	"bhss/internal/prng"
)

// LinkState is one link's position in the registry lifecycle:
//
//	admitted → live → draining → evicted
//
// A link is admitted when its first peer's handshake is accepted, live once
// the mixer has emitted its first block, draining while its last
// transmitters' pending samples flush to receivers that are still attached,
// and evicted when it leaves the registry — because its last peer left,
// because a mix hook panicked (fault isolation), or because the supervisor
// shed it under sustained overflow. Eviction is terminal and exactly-once:
// an evicted link never mixes again, and a reused link ID is a fresh link.
type LinkState int32

const (
	LinkAdmitted LinkState = iota
	LinkLive
	LinkDraining
	LinkEvicted
)

// String renders the state for logs.
func (s LinkState) String() string {
	switch s {
	case LinkAdmitted:
		return "admitted"
	case LinkLive:
		return "live"
	case LinkDraining:
		return "draining"
	case LinkEvicted:
		return "evicted"
	}
	return fmt.Sprintf("LinkState(%d)", int32(s))
}

// link is one RF session: an independent medium mixing its own transmitters
// with its own noise process for its own receivers. Lock order is always
// Hub.mu → shard.mu → link.mu; the mix path takes only link.mu, so links
// mix concurrently across shards and a fault in one link's peers or hooks
// never touches its neighbors.
type link struct {
	id uint32
	// shard is the index of the mixer shard currently owning this link;
	// the supervisor re-homes links by updating it (watchdog restarts).
	shard atomic.Int32

	mu      sync.Mutex
	state   LinkState
	txs     map[int]*txQueue
	txConns map[int]net.Conn
	rxs     map[int]*rxConn
	// noise is this link's private AWGN source. Link 0 uses prng.New(Seed)
	// exactly — the legacy hub's stream, bit-for-bit — and other links
	// derive independent seeds from (Seed, id), so noise is deterministic
	// per link regardless of join order or shard placement.
	noise *prng.Source
	// impair and jam are the hub-level hooks; only link 0 carries them
	// (they model the legacy shared front end and hub-side adversary).
	impair *impair.Chain
	jam    func(heard []complex128) []complex128
	// Load-shed window accounting: fan-out results since the supervisor
	// armed its overflow window. The shed victim is the link with the worst
	// drop-majority margin (drops − accepts).
	shedOK, shedDrops int64
}

// pendingLocked totals undelivered pending samples; callers hold lk.mu.
func (lk *link) pendingLocked() int {
	n := 0
	for _, q := range lk.txs {
		//bhss:allow(detrand) integer addition commutes: the total is identical in any map order
		n += len(q.pending)
	}
	return n
}

// emptyLocked reports whether no peer holds the link open; callers hold
// lk.mu.
func (lk *link) emptyLocked() bool {
	return len(lk.txConns) == 0 && len(lk.rxs) == 0
}

type txQueue struct {
	gain    float64
	tag     string // contribution tag for EXCL filtering ("" = untagged)
	pending []complex128
	active  bool
	warned  bool
	// space (capacity 1) is signalled by the mixer whenever it drains
	// samples from this queue; blocked enqueues wait on it.
	space chan struct{}
}

type rxConn struct {
	id   int
	c    net.Conn
	w    *Writer
	excl string // subtract same-link contributions carrying this tag
	// out carries mixed blocks to this receiver's writer goroutine. The
	// mixer's sends are non-blocking; closed exactly once via gone.
	out  chan outBlock
	gone bool
	// Stall accounting (mixer-owned, under link.mu). A receiver whose
	// socket drains slower than the mix rate still frees a queue slot
	// every time its writer pops a block, so "queue continuously full" is
	// never observable; instead each StallBudget-long window tallies
	// accepted vs dropped blocks and the receiver is evicted when drops
	// win the majority.
	epochStart int64 // obs.Now() when the current window opened (0 = idle)
	epochOK    int64 // blocks accepted this window
	epochDrops int64 // blocks dropped this window
}

// linkNoiseSeed derives a link's private noise seed. Link 0 gets the
// configured seed untouched (legacy bit-identity); other links get a
// splitmix64-style scramble of (seed, id), a pure function so churn order
// and shard placement never change a link's noise stream.
func linkNoiseSeed(seed uint64, id uint32) uint64 {
	if id == 0 {
		return seed
	}
	z := seed + uint64(id)*0x9e3779b97f4a7c15
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// admitLocked finds or creates the link for an accepted handshake, placing
// new links on the least-loaded shard. Callers hold h.mu. It fails with
// errHubFull when the per-hub or per-shard admission caps are exhausted.
func (h *Hub) admitLocked(id uint32) (*link, error) {
	if lk, ok := h.links[id]; ok {
		return lk, nil
	}
	if h.maxLinks > 0 && len(h.links) >= h.maxLinks {
		return nil, errHubFull
	}
	si := h.leastLoadedShardLocked()
	if si < 0 {
		return nil, errHubFull
	}
	lk := &link{
		id:      id,
		state:   LinkAdmitted,
		txs:     map[int]*txQueue{},
		txConns: map[int]net.Conn{},
		rxs:     map[int]*rxConn{},
		noise:   prng.New(linkNoiseSeed(h.cfg.Seed, id)),
	}
	if id == 0 {
		lk.impair = h.cfg.Impair
		lk.jam = h.cfg.Jam
	}
	lk.shard.Store(int32(si))
	h.links[id] = lk
	sh := h.shards[si]
	sh.mu.Lock()
	sh.links[id] = lk
	sh.mu.Unlock()
	h.met.LinksAdmitted.Inc()
	h.met.ActiveLinks.Store(float64(len(h.links)))
	h.cfg.Logf("link %d admitted (shard %d, %d links)", id, si, len(h.links))
	return lk, nil
}

// leastLoadedShardLocked picks the shard with the fewest links that still
// has per-shard admission headroom, or -1 when every shard is full. Callers
// hold h.mu.
func (h *Hub) leastLoadedShardLocked() int {
	best, bestLoad := -1, 0
	for i, sh := range h.shards {
		sh.mu.Lock()
		n := len(sh.links)
		sh.mu.Unlock()
		if h.maxPerShard > 0 && n >= h.maxPerShard {
			continue
		}
		if best < 0 || n < bestLoad {
			best, bestLoad = i, n
		}
	}
	return best
}

// evictLink removes a link from the registry exactly once: subsequent calls
// for the same *link value are no-ops, and a fresh link readmitted under the
// same ID is untouched (the registry entry is compared by identity, not ID).
// All of the link's peer connections are closed, tearing down their serve
// goroutines; pending samples are discarded.
func (h *Hub) evictLink(lk *link, reason string) {
	h.mu.Lock()
	if h.links[lk.id] != lk {
		h.mu.Unlock()
		return
	}
	delete(h.links, lk.id)
	h.met.LinksEvicted.Inc()
	h.met.ActiveLinks.Store(float64(len(h.links)))
	si := int(lk.shard.Load())
	if si >= 0 && si < len(h.shards) {
		sh := h.shards[si]
		sh.mu.Lock()
		if sh.links[lk.id] == lk {
			delete(sh.links, lk.id)
		}
		sh.mu.Unlock()
	}
	h.mu.Unlock()

	lk.mu.Lock()
	lk.state = LinkEvicted
	for _, c := range lk.txConns {
		c.Close()
	}
	for _, rx := range lk.rxs {
		h.removeRxLocked(lk, rx, "link evicted: "+reason)
	}
	lk.mu.Unlock()
	h.cfg.Logf("link %d evicted (%s)", lk.id, reason)
}

// maybeEvictEmpty evicts a link whose last peer has left. Link 0 is exempt:
// it is the legacy medium and keeps its noise/impair/jam state for the
// hub's lifetime so single-link runs stay bit-identical across reconnects.
func (h *Hub) maybeEvictEmpty(lk *link) {
	if lk.id == 0 {
		return
	}
	lk.mu.Lock()
	empty := lk.emptyLocked() && lk.state != LinkEvicted
	lk.mu.Unlock()
	if empty {
		h.evictLink(lk, "all peers left")
	}
}

// linksSnapshot copies the current registry for lock-free iteration.
func (h *Hub) linksSnapshot() []*link {
	h.mu.Lock()
	defer h.mu.Unlock()
	links := make([]*link, 0, len(h.links))
	for _, lk := range h.links {
		links = append(links, lk)
	}
	return links
}

// removeRxLocked unregisters a receiver exactly once: out of the link's map,
// out channel closed (stopping the writer), socket closed. Callers hold
// lk.mu.
func (h *Hub) removeRxLocked(lk *link, rx *rxConn, reason string) {
	if rx.gone {
		return
	}
	rx.gone = true
	delete(lk.rxs, rx.id)
	//bhss:allow(chandiscipline) deliver is the only sender and runs under lk.mu; the rx is deleted from the map first under the same lock, so no send can follow this close
	close(rx.out)
	rx.c.Close()
	h.cfg.Logf("link %d rx %d disconnected (%s)", lk.id, rx.id, reason)
}
