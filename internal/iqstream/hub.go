package iqstream

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"log"
	"math"
	"net"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"bhss/internal/impair"
	"bhss/internal/obs"
	"bhss/internal/prng"
)

// OverflowPolicy selects what the hub does when a transmitter's pending
// queue would exceed HubConfig.MaxPending samples.
type OverflowPolicy int

const (
	// OverflowBlock applies backpressure: the hub stops reading from the
	// transmitter's socket until the mixer drains the queue, and closes the
	// connection if the wait exceeds HubConfig.OverflowDeadline.
	OverflowBlock OverflowPolicy = iota
	// OverflowDropOldest keeps reading and discards the oldest pending
	// samples to stay within the bound: receivers see a spliced stream,
	// exactly like a hardware ring-buffer overrun.
	OverflowDropOldest
)

// String renders the policy in the form ParseOverflowPolicy accepts.
func (p OverflowPolicy) String() string {
	switch p {
	case OverflowBlock:
		return "block"
	case OverflowDropOldest:
		return "drop-oldest"
	}
	return fmt.Sprintf("OverflowPolicy(%d)", int(p))
}

// ParseOverflowPolicy parses the cmd-tool flag form of an overflow policy.
func ParseOverflowPolicy(s string) (OverflowPolicy, error) {
	switch s {
	case "block":
		return OverflowBlock, nil
	case "drop-oldest":
		return OverflowDropOldest, nil
	}
	return 0, fmt.Errorf("iqstream: unknown overflow policy %q (want block or drop-oldest)", s)
}

// Transport-resilience defaults (DESIGN.md §12). Zero config fields take
// these values; negative durations disable the corresponding bound.
const (
	// DefaultMaxPending bounds each transmitter's pending queue at 1 Mi
	// samples (16 MiB of complex128).
	DefaultMaxPending = 1 << 20
	// DefaultRxBuffer is the per-receiver outbound queue depth in blocks.
	DefaultRxBuffer = 64
	// DefaultOverflowDeadline bounds an OverflowBlock backpressure wait.
	DefaultOverflowDeadline = 10 * time.Second
	// DefaultStallBudget is the accounting window for slow-consumer
	// eviction: a receiver that drops more mixed blocks than it accepts
	// across one whole window is disconnected.
	DefaultStallBudget = 5 * time.Second
	// DefaultWriteDeadline bounds each socket write to a receiver.
	DefaultWriteDeadline = 10 * time.Second
)

// HubConfig parameterizes the virtual RF medium.
type HubConfig struct {
	// BlockSize is the mixing granularity in samples.
	BlockSize int
	// NoiseVar is the AWGN floor added to the mixed signal.
	NoiseVar float64
	// Seed drives the noise generator.
	Seed uint64
	// Impair, when non-nil, is the receiver front-end impairment chain
	// (internal/impair) applied to each mixed block after the noise floor,
	// so every receiver sees the same distorted stream — the hub plays the
	// shared front end of the testbed. Only the mixing goroutine touches
	// it.
	Impair *impair.Chain
	// Jam, when non-nil, is a hub-side adversary: the mixer hands it each
	// clean mixed block (after the AWGN floor, before the Impair chain) and
	// adds the interference it returns, truncated to the block. Unlike a
	// bhssjam client — whose sense stream loops its own transmission back —
	// a hub-side adversary overhears the pre-jamming mix, so a sensing
	// follower (wire up jammer.TxAware.Jam) estimates the victims cleanly.
	// Only the mixing goroutine calls it; stateful jammers need no locking.
	Jam func(heard []complex128) []complex128
	// MaxPending bounds each transmitter's pending queue in samples (a
	// soft bound: it may be exceeded by at most one wire block). Zero
	// means DefaultMaxPending.
	MaxPending int
	// Overflow selects the policy applied at the MaxPending bound.
	Overflow OverflowPolicy
	// OverflowDeadline bounds an OverflowBlock backpressure wait before
	// the transmitter is disconnected. Zero means
	// DefaultOverflowDeadline; negative disables the deadline.
	OverflowDeadline time.Duration
	// RxBuffer is the per-receiver outbound queue depth in mixed blocks.
	// Zero means DefaultRxBuffer.
	RxBuffer int
	// StallBudget is the slow-consumer accounting window: a receiver
	// that drops more mixed blocks than it accepts across one whole
	// window (i.e. the consumer loses the majority of the stream) is
	// evicted. Zero means DefaultStallBudget; negative disables
	// eviction.
	StallBudget time.Duration
	// WriteDeadline bounds each socket write to a receiver so a wedged
	// peer cannot pin its writer goroutine forever. Zero means
	// DefaultWriteDeadline; negative disables the deadline.
	WriteDeadline time.Duration
	// Metrics, when non-nil, receives hub transport counters (typically
	// &pipeline.Hub of an obs.Pipeline).
	Metrics *obs.HubMetrics
	// Logf receives hub events; nil silences them.
	Logf func(format string, args ...any)
}

// Hub is the T-connector of the simulated testbed: it accepts transmitter
// and receiver connections over TCP, sums all transmitter streams
// block-by-block with per-port gain, adds AWGN and broadcasts the mixture
// to every receiver. Transmitters that have no data pending contribute
// silence for that block, so receivers observe a continuous stream.
//
// Resilience properties (DESIGN.md §12): per-transmitter pending queues
// are bounded with a configurable overflow policy; every receiver is
// served by its own buffered writer goroutine, so one slow or wedged
// receiver never stalls the mixer or its peers — it is evicted once it
// has dropped the majority of a whole StallBudget window's blocks.
type Hub struct {
	cfg HubConfig
	ln  net.Listener
	met *obs.HubMetrics

	mu        sync.Mutex
	txQueues  map[int]*txQueue
	txConns   map[int]net.Conn
	rxConns   map[int]*rxConn
	nextID    int
	closed    bool
	draining  bool
	highWater int
	wake      chan struct{}
	noise     *prng.Source
	closeOnce sync.Once
	done      chan struct{}
}

type txQueue struct {
	gain    float64
	pending []complex128
	active  bool
	warned  bool
	// space (capacity 1) is signalled by the mixer whenever it drains
	// samples from this queue; blocked enqueues wait on it.
	space chan struct{}
}

type rxConn struct {
	id int
	c  net.Conn
	w  *Writer
	// out carries mixed blocks to this receiver's writer goroutine. The
	// mixer's sends are non-blocking; closed exactly once via gone.
	out  chan []complex128
	gone bool
	// Stall accounting (mixer-owned, under Hub.mu). A receiver whose
	// socket drains slower than the mix rate still frees a queue slot
	// every time its writer pops a block, so "queue continuously full" is
	// never observable; instead each StallBudget-long window tallies
	// accepted vs dropped blocks and the receiver is evicted when drops
	// win the majority.
	epochStart int64 // obs.Now() when the current window opened (0 = idle)
	epochOK    int64 // blocks accepted this window
	epochDrops int64 // blocks dropped this window
}

// Errors surfaced in hub logs and returned by Shutdown.
var (
	errHubClosed        = errors.New("iqstream: hub closed")
	errOverflowDeadline = errors.New("iqstream: tx overflow deadline exceeded")
)

// normDur maps the config convention (zero = default, negative = disabled)
// onto a plain duration (0 = disabled).
func normDur(v, def time.Duration) time.Duration {
	if v == 0 {
		return def
	}
	if v < 0 {
		return 0
	}
	return v
}

// NewHub starts a hub listening on addr ("127.0.0.1:0" for an ephemeral
// port). Call Serve to run the mixing loop.
func NewHub(addr string, cfg HubConfig) (*Hub, error) {
	if cfg.BlockSize <= 0 {
		cfg.BlockSize = 4096
	}
	if cfg.BlockSize > MaxBlock {
		return nil, fmt.Errorf("iqstream: block size %d exceeds MaxBlock", cfg.BlockSize)
	}
	if cfg.NoiseVar < 0 {
		return nil, fmt.Errorf("iqstream: negative noise variance")
	}
	if cfg.MaxPending < 0 {
		return nil, fmt.Errorf("iqstream: negative MaxPending")
	}
	if cfg.MaxPending == 0 {
		cfg.MaxPending = DefaultMaxPending
	}
	if cfg.RxBuffer < 0 {
		return nil, fmt.Errorf("iqstream: negative RxBuffer")
	}
	if cfg.RxBuffer == 0 {
		cfg.RxBuffer = DefaultRxBuffer
	}
	switch cfg.Overflow {
	case OverflowBlock, OverflowDropOldest:
	default:
		return nil, fmt.Errorf("iqstream: unknown overflow policy %d", cfg.Overflow)
	}
	cfg.OverflowDeadline = normDur(cfg.OverflowDeadline, DefaultOverflowDeadline)
	cfg.StallBudget = normDur(cfg.StallBudget, DefaultStallBudget)
	cfg.WriteDeadline = normDur(cfg.WriteDeadline, DefaultWriteDeadline)
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	met := cfg.Metrics
	if met == nil {
		met = new(obs.HubMetrics)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	h := &Hub{
		cfg:      cfg,
		ln:       ln,
		met:      met,
		txQueues: map[int]*txQueue{},
		txConns:  map[int]net.Conn{},
		rxConns:  map[int]*rxConn{},
		wake:     make(chan struct{}, 1),
		noise:    prng.New(cfg.Seed),
		done:     make(chan struct{}),
	}
	return h, nil
}

// Addr returns the hub's listen address.
func (h *Hub) Addr() net.Addr { return h.ln.Addr() }

// Close stops the hub immediately and disconnects all clients, transmitters
// included, so no serve goroutine is left blocked on a peer that never
// hangs up. Pending samples are discarded; use Shutdown to drain first.
func (h *Hub) Close() error {
	h.closeOnce.Do(func() {
		h.mu.Lock()
		h.closed = true
		for _, rx := range h.rxConns {
			h.removeRxLocked(rx, "hub closed")
		}
		for _, c := range h.txConns {
			c.Close()
		}
		h.mu.Unlock()
		h.ln.Close()
		close(h.done)
	})
	return nil
}

// Shutdown gracefully stops the hub: it stops accepting connections,
// disconnects the transmitters, keeps mixing until every pending sample has
// been mixed and handed to the receivers' writers (or until ctx expires),
// then closes. Pending samples are undrainable without receivers; in that
// case Shutdown closes immediately.
func (h *Hub) Shutdown(ctx context.Context) error {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return nil
	}
	h.draining = true
	conns := make([]net.Conn, 0, len(h.txConns))
	for _, c := range h.txConns {
		conns = append(conns, c)
	}
	h.mu.Unlock()
	h.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	tick := time.NewTicker(5 * time.Millisecond)
	defer tick.Stop()
	for !h.drained() {
		h.kick()
		select {
		case <-ctx.Done():
			h.Close()
			return ctx.Err()
		case <-tick.C:
		}
	}
	return h.Close()
}

// drained reports whether every pending sample has been mixed and flushed
// out of the receivers' queues (vacuously true without receivers).
func (h *Hub) drained() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.rxConns) == 0 {
		return true
	}
	for _, q := range h.txQueues {
		if len(q.pending) > 0 {
			return false
		}
	}
	for _, rx := range h.rxConns {
		if len(rx.out) > 0 {
			return false
		}
	}
	return true
}

// Serve accepts clients and runs the mixer until Close. It returns after
// the listener shuts down.
func (h *Hub) Serve() error {
	go h.mixLoop()
	for {
		conn, err := h.ln.Accept()
		if err != nil {
			h.mu.Lock()
			stopping := h.closed || h.draining
			h.mu.Unlock()
			if stopping {
				return nil
			}
			return err
		}
		go h.handle(conn)
	}
}

// handle performs the one-line handshake and registers the client.
// Handshake: "IQHUB tx <gain_db>\n" or "IQHUB rx\n". A malformed gain is a
// hard error ("ERR bad gain"), not a silent 0 dB fallback: a transmitter
// whose gain did not parse would otherwise run an entire experiment at the
// wrong power.
func (h *Hub) handle(conn net.Conn) {
	br := bufio.NewReader(conn)
	line, err := br.ReadString('\n')
	if err != nil {
		conn.Close()
		return
	}
	fields := strings.Fields(strings.TrimSpace(line))
	if len(fields) < 2 || fields[0] != "IQHUB" {
		h.reject(conn, "ERR bad handshake")
		return
	}
	switch fields[1] {
	case "tx":
		gainDB := 0.0
		if len(fields) >= 3 {
			g, err := strconv.ParseFloat(fields[2], 64)
			if err != nil || math.IsNaN(g) || math.IsInf(g, 0) {
				h.reject(conn, "ERR bad gain")
				return
			}
			gainDB = g
		}
		fmt.Fprintf(conn, "OK\n")
		h.serveTx(conn, br, gainDB)
	case "rx":
		fmt.Fprintf(conn, "OK\n")
		h.serveRx(conn)
	default:
		h.reject(conn, fmt.Sprintf("ERR unknown role %q", fields[1]))
	}
}

func (h *Hub) reject(conn net.Conn, reply string) {
	h.met.HandshakeRejects.Inc()
	fmt.Fprintf(conn, "%s\n", reply)
	conn.Close()
}

func (h *Hub) serveTx(conn net.Conn, br *bufio.Reader, gainDB float64) {
	h.mu.Lock()
	if h.closed || h.draining {
		h.mu.Unlock()
		conn.Close()
		return
	}
	id := h.nextID
	h.nextID++
	q := &txQueue{gain: dbToAmp(gainDB), active: true, space: make(chan struct{}, 1)}
	h.txQueues[id] = q
	h.txConns[id] = conn
	h.mu.Unlock()
	h.met.TxAccepted.Inc()
	h.cfg.Logf("tx %d connected (gain %.1f dB)", id, gainDB)

	r := NewReader(br)
	reason := "stream ended"
	for {
		block, err := r.ReadBlock()
		if err != nil {
			reason = err.Error()
			break
		}
		if err := h.enqueueTx(id, q, block); err != nil {
			reason = err.Error()
			break
		}
	}
	h.mu.Lock()
	q.active = false
	delete(h.txConns, id)
	h.mu.Unlock()
	conn.Close()
	h.kick()
	h.cfg.Logf("tx %d disconnected (%s)", id, reason)
}

// enqueueTx appends one decoded block to the transmitter's pending queue,
// honouring the MaxPending bound and the configured overflow policy.
func (h *Hub) enqueueTx(id int, q *txQueue, block []complex128) error {
	if len(block) == 0 {
		return nil
	}
	var timer *time.Timer
	var expired <-chan time.Time
	defer func() {
		if timer != nil {
			timer.Stop()
		}
	}()
	for {
		h.mu.Lock()
		if h.closed {
			h.mu.Unlock()
			return errHubClosed
		}
		// An oversized single block is admitted into an empty queue so it
		// cannot deadlock the bound.
		fits := len(q.pending) == 0 || len(q.pending)+len(block) <= h.cfg.MaxPending
		if !fits && h.cfg.Overflow == OverflowDropOldest {
			over := len(q.pending) + len(block) - h.cfg.MaxPending
			if over > len(q.pending) {
				over = len(q.pending)
			}
			q.pending = q.pending[over:]
			h.met.TxOverflowDrops.Add(int64(over))
			if !q.warned {
				q.warned = true
				h.cfg.Logf("tx %d overflow: dropping oldest pending samples (queue bound %d)", id, h.cfg.MaxPending)
			}
			fits = true
		}
		if fits {
			q.pending = append(q.pending, block...)
			if n := len(q.pending); n > h.highWater {
				h.highWater = n
				h.met.QueueHighWater.Store(float64(n))
			}
			h.mu.Unlock()
			h.kick()
			return nil
		}
		h.mu.Unlock()
		h.met.TxOverflowWaits.Inc()
		if timer == nil && h.cfg.OverflowDeadline > 0 {
			timer = time.NewTimer(h.cfg.OverflowDeadline)
			expired = timer.C
		}
		select {
		case <-q.space:
		case <-expired:
			h.met.TxOverflowKills.Inc()
			h.cfg.Logf("tx %d overflow: blocked past %v deadline, closing", id, h.cfg.OverflowDeadline)
			return errOverflowDeadline
		case <-h.done:
			return errHubClosed
		}
	}
}

func (h *Hub) serveRx(conn net.Conn) {
	h.mu.Lock()
	if h.closed || h.draining {
		h.mu.Unlock()
		conn.Close()
		return
	}
	id := h.nextID
	h.nextID++
	rx := &rxConn{id: id, c: conn, w: NewWriter(conn), out: make(chan []complex128, h.cfg.RxBuffer)}
	h.rxConns[id] = rx
	h.mu.Unlock()
	h.met.RxAccepted.Inc()
	h.cfg.Logf("rx %d connected", id)
	go h.rxWriter(rx)
	// The writer goroutine pushes; the handler just waits for the
	// connection to die.
	buf := make([]byte, 1)
	for {
		if _, err := conn.Read(buf); err != nil {
			break
		}
	}
	h.mu.Lock()
	h.removeRxLocked(rx, "peer closed")
	h.mu.Unlock()
}

// rxWriter drains one receiver's outbound queue onto its socket. It is the
// only goroutine that writes to the connection, so the mixer never blocks
// on a peer's TCP window.
func (h *Hub) rxWriter(rx *rxConn) {
	for block := range rx.out {
		if wd := h.cfg.WriteDeadline; wd > 0 {
			//bhss:allow(detrand) transport deadline: wall clock bounds socket writes and never feeds the simulation
			_ = rx.c.SetWriteDeadline(time.Now().Add(wd))
		}
		if err := rx.w.WriteBlock(block); err != nil {
			h.mu.Lock()
			h.removeRxLocked(rx, "write failed: "+err.Error())
			h.mu.Unlock()
			// Drain until the mixer's close so its non-blocking sends see
			// queue space rather than a phantom stall.
			for range rx.out { //nolint:revive // intentional discard
			}
			return
		}
	}
}

// removeRxLocked unregisters a receiver exactly once: out of the map, out
// channel closed (stopping the writer), socket closed. Callers hold h.mu.
func (h *Hub) removeRxLocked(rx *rxConn, reason string) {
	if rx.gone {
		return
	}
	rx.gone = true
	delete(h.rxConns, rx.id)
	//bhss:allow(chandiscipline) deliver is the only sender and runs under h.mu; the rx is deleted from the map first under the same lock, so no send can follow this close
	close(rx.out)
	rx.c.Close()
	h.cfg.Logf("rx %d disconnected (%s)", rx.id, reason)
}

func (h *Hub) kick() {
	select {
	case h.wake <- struct{}{}:
	default:
	}
}

// mixLoop emits one mixed block whenever any transmitter has data pending
// (idle transmitters contribute silence) and there is at least one
// receiver.
func (h *Hub) mixLoop() {
	block := make([]complex128, h.cfg.BlockSize)
	var impaired []complex128
	var txIDs []int
	noiseAmp := 0.0
	if h.cfg.NoiseVar > 0 {
		noiseAmp = math.Sqrt(h.cfg.NoiseVar)
	}
	for {
		select {
		case <-h.done:
			return
		case <-h.wake:
		}
		for h.mixOnce(block, &impaired, &txIDs, noiseAmp) {
		}
	}
}

// mixOnce mixes and delivers a single block; it reports false when there is
// nothing to do (no pending samples or no receivers).
func (h *Hub) mixOnce(block []complex128, impaired *[]complex128, txIDs *[]int, noiseAmp float64) bool {
	h.mu.Lock()
	havePending := false
	for _, q := range h.txQueues {
		if len(q.pending) > 0 {
			havePending = true
			break
		}
	}
	if !havePending || len(h.rxConns) == 0 {
		// Garbage-collect drained, disconnected transmitters.
		for id, q := range h.txQueues {
			if !q.active && len(q.pending) == 0 {
				delete(h.txQueues, id)
			}
		}
		h.mu.Unlock()
		return false
	}
	for i := range block {
		block[i] = 0
	}
	// Mix in ascending port-id order: float addition is order-sensitive,
	// and map iteration order is randomized, so summing in map order would
	// make the mixture nondeterministic across runs of the same scenario.
	ids := (*txIDs)[:0]
	for id := range h.txQueues {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	*txIDs = ids
	for _, id := range ids {
		q := h.txQueues[id]
		n := len(q.pending)
		if n > h.cfg.BlockSize {
			n = h.cfg.BlockSize
		}
		g := complex(q.gain, 0)
		for i := 0; i < n; i++ {
			block[i] += q.pending[i] * g
		}
		q.pending = q.pending[n:]
		if n > 0 {
			select {
			case q.space <- struct{}{}:
			default:
			}
		}
	}
	if noiseAmp > 0 {
		a := complex(noiseAmp, 0)
		for i := range block {
			block[i] += h.noise.ComplexNorm() * a
		}
	}
	h.mu.Unlock()
	// The hub-side adversary runs outside the lock: its state is owned by
	// this goroutine, and it only reads the freshly mixed scratch block.
	if h.cfg.Jam != nil {
		j := h.cfg.Jam(block)
		n := len(j)
		if n > len(block) {
			n = len(block)
		}
		for i := 0; i < n; i++ {
			block[i] += j[i]
		}
	}
	out := block
	if h.cfg.Impair.Len() > 0 {
		*impaired = h.cfg.Impair.ProcessAppend((*impaired)[:0], block)
		out = *impaired
	}
	// The receivers' writer goroutines consume asynchronously, so they get
	// their own immutable copy — the mixer is about to reuse its scratch.
	ship := make([]complex128, len(out))
	copy(ship, out)
	h.met.MixedBlocks.Inc()
	h.met.MixedSamples.Add(int64(len(ship)))
	h.deliver(ship)
	return true
}

// deliver fans a mixed block out to every receiver queue without ever
// blocking: a full queue costs that receiver the block (counted), and a
// receiver that drops more blocks than it accepts across a whole
// StallBudget window costs it the connection. The majority test — rather
// than "queue full for the whole budget" — is deliberate: a hopelessly
// slow socket still dribbles a block out every few milliseconds, freeing a
// queue slot and making momentary full/empty states useless as a health
// signal; the accept/drop ratio over the window is robust to that.
func (h *Hub) deliver(ship []complex128) {
	now := obs.Now()
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, rx := range h.rxConns {
		var ok, dropped int64
		// A clock-skew impair stage can emit slightly more than BlockSize
		// samples; chunk to respect the wire format's MaxBlock.
		for off := 0; off < len(ship) && dropped == 0; off += MaxBlock {
			end := off + MaxBlock
			if end > len(ship) {
				end = len(ship)
			}
			select {
			case rx.out <- ship[off:end]:
				ok++
			default:
				dropped++
			}
		}
		if dropped > 0 {
			h.met.RxQueueDrops.Add(dropped)
		}
		budget := h.cfg.StallBudget
		if budget <= 0 {
			continue
		}
		if rx.epochStart == 0 {
			if dropped == 0 {
				continue // healthy and idle: no window to account
			}
			rx.epochStart = now
		}
		rx.epochOK += ok
		rx.epochDrops += dropped
		if now-rx.epochStart < int64(budget) {
			continue
		}
		if rx.epochDrops > rx.epochOK {
			h.met.RxEvictions.Inc()
			h.removeRxLocked(rx, fmt.Sprintf(
				"evicted: dropped %d of %d blocks over stall budget %v",
				rx.epochDrops, rx.epochDrops+rx.epochOK, budget))
			continue
		}
		rx.epochStart, rx.epochOK, rx.epochDrops = 0, 0, 0
	}
}

func dbToAmp(db float64) float64 {
	return math.Pow(10, db/20)
}

// Client connects to a hub. Role-specific constructors below.
type Client struct {
	conn net.Conn
	w    *Writer
	r    *Reader
}

// dial performs the handshake with the hub.
func dial(addr, handshake string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	if _, err := fmt.Fprintf(conn, "%s\n", handshake); err != nil {
		conn.Close()
		return nil, err
	}
	br := bufio.NewReader(conn)
	resp, err := br.ReadString('\n')
	if err != nil {
		conn.Close()
		return nil, err
	}
	if strings.TrimSpace(resp) != "OK" {
		conn.Close()
		return nil, fmt.Errorf("iqstream: hub rejected handshake: %s", strings.TrimSpace(resp))
	}
	return &Client{conn: conn, w: NewWriter(conn), r: NewReader(br)}, nil
}

// DialTx connects as a transmitter with the given port gain in dB.
func DialTx(addr string, gainDB float64) (*Client, error) {
	return dial(addr, fmt.Sprintf("IQHUB tx %g", gainDB))
}

// DialRx connects as a receiver.
func DialRx(addr string) (*Client, error) {
	return dial(addr, "IQHUB rx")
}

// Send writes one block of samples (transmitter clients).
func (c *Client) Send(samples []complex128) error {
	return c.w.WriteBlock(samples)
}

// Recv reads the next mixed block (receiver clients).
func (c *Client) Recv() ([]complex128, error) {
	return c.r.ReadBlock()
}

// SetRecvDeadline bounds the next Recv; a zero time clears the bound.
// After a deadline error the stream framing may be mid-block — reconnect
// rather than resuming.
func (c *Client) SetRecvDeadline(t time.Time) error {
	return c.conn.SetReadDeadline(t)
}

// Close disconnects from the hub.
func (c *Client) Close() error { return c.conn.Close() }

// Logf is a convenience logger for cmd binaries.
func Logf(format string, args ...any) { log.Printf(format, args...) }
