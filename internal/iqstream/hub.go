package iqstream

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"log"
	"math"
	"net"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"bhss/internal/impair"
	"bhss/internal/obs"
)

// OverflowPolicy selects what the hub does when a transmitter's pending
// queue would exceed HubConfig.MaxPending samples.
type OverflowPolicy int

const (
	// OverflowBlock applies backpressure: the hub stops reading from the
	// transmitter's socket until the mixer drains the queue, and closes the
	// connection if the wait exceeds HubConfig.OverflowDeadline.
	OverflowBlock OverflowPolicy = iota
	// OverflowDropOldest keeps reading and discards the oldest pending
	// samples to stay within the bound: receivers see a spliced stream,
	// exactly like a hardware ring-buffer overrun.
	OverflowDropOldest
)

// String renders the policy in the form ParseOverflowPolicy accepts.
func (p OverflowPolicy) String() string {
	switch p {
	case OverflowBlock:
		return "block"
	case OverflowDropOldest:
		return "drop-oldest"
	}
	return fmt.Sprintf("OverflowPolicy(%d)", int(p))
}

// ParseOverflowPolicy parses the cmd-tool flag form of an overflow policy.
func ParseOverflowPolicy(s string) (OverflowPolicy, error) {
	switch s {
	case "block":
		return OverflowBlock, nil
	case "drop-oldest":
		return OverflowDropOldest, nil
	}
	return 0, fmt.Errorf("iqstream: unknown overflow policy %q (want block or drop-oldest)", s)
}

// Transport-resilience defaults (DESIGN.md §12, §17). Zero config fields
// take these values; negative durations/counts disable the corresponding
// bound.
const (
	// DefaultMaxPending bounds each transmitter's pending queue at 1 Mi
	// samples (16 MiB of complex128).
	DefaultMaxPending = 1 << 20
	// DefaultRxBuffer is the per-receiver outbound queue depth in blocks.
	DefaultRxBuffer = 64
	// DefaultOverflowDeadline bounds an OverflowBlock backpressure wait.
	DefaultOverflowDeadline = 10 * time.Second
	// DefaultStallBudget is the accounting window for slow-consumer
	// eviction: a receiver that drops more mixed blocks than it accepts
	// across one whole window is disconnected.
	DefaultStallBudget = 5 * time.Second
	// DefaultWriteDeadline bounds each socket write to a receiver.
	DefaultWriteDeadline = 10 * time.Second
	// DefaultHandshakeTimeout bounds the handshake exchange in both
	// directions, so a slowloris peer (or one that never reads the reply)
	// cannot pin an accept goroutine.
	DefaultHandshakeTimeout = 5 * time.Second
	// DefaultMaxLinks is the per-hub admission cap on concurrent links.
	DefaultMaxLinks = 4096
	// DefaultMaxLinksPerShard is the admission cap per mixer shard.
	DefaultMaxLinksPerShard = 1024
	// DefaultWatchdogInterval is the supervisor's shard-heartbeat poll; a
	// shard frozen on one link for two consecutive polls is restarted.
	DefaultWatchdogInterval = 500 * time.Millisecond
	// DefaultShedBudget is how long receiver-queue drops must grow on
	// every supervisor poll before the worst drop-majority link is shed.
	// It is deliberately longer than DefaultStallBudget so per-receiver
	// eviction gets first crack and shedding stays the backstop.
	DefaultShedBudget = 10 * time.Second
	// maxShards bounds the mixer-shard count.
	maxShards = 64
)

// HubConfig parameterizes the virtual RF medium.
type HubConfig struct {
	// BlockSize is the mixing granularity in samples.
	BlockSize int
	// NoiseVar is the AWGN floor added to every link's mixed signal.
	NoiseVar float64
	// Seed drives the noise generators: link 0 consumes prng.New(Seed)
	// exactly (the legacy stream), other links derive private seeds from
	// (Seed, link ID).
	Seed uint64
	// Impair, when non-nil, is the receiver front-end impairment chain
	// (internal/impair) applied to each of link 0's mixed blocks after the
	// noise floor, so every legacy receiver sees the same distorted stream
	// — the hub plays the shared front end of the testbed. Only link 0's
	// mixer goroutine touches it.
	Impair *impair.Chain
	// Jam, when non-nil, is a hub-side adversary on link 0: the mixer
	// hands it each clean mixed block (after the AWGN floor, before the
	// Impair chain) and adds the interference it returns, truncated to the
	// block. Unlike a bhssjam client, a hub-side adversary overhears the
	// pre-jamming mix directly. Only link 0's mixer calls it; stateful
	// jammers need no locking.
	Jam func(heard []complex128) []complex128
	// MaxPending bounds each transmitter's pending queue in samples (a
	// soft bound: it may be exceeded by at most one wire block). Zero
	// means DefaultMaxPending.
	MaxPending int
	// Overflow selects the policy applied at the MaxPending bound.
	Overflow OverflowPolicy
	// OverflowDeadline bounds an OverflowBlock backpressure wait before
	// the transmitter is disconnected. Zero means
	// DefaultOverflowDeadline; negative disables the deadline.
	OverflowDeadline time.Duration
	// RxBuffer is the per-receiver outbound queue depth in mixed blocks.
	// Zero means DefaultRxBuffer.
	RxBuffer int
	// StallBudget is the slow-consumer accounting window: a receiver
	// that drops more mixed blocks than it accepts across one whole
	// window (i.e. the consumer loses the majority of the stream) is
	// evicted. Zero means DefaultStallBudget; negative disables
	// eviction.
	StallBudget time.Duration
	// WriteDeadline bounds each socket write to a receiver so a wedged
	// peer cannot pin its writer goroutine forever. Zero means
	// DefaultWriteDeadline; negative disables the deadline.
	WriteDeadline time.Duration
	// HandshakeTimeout bounds both the handshake-line read and the ERR
	// reply write. Zero means DefaultHandshakeTimeout; negative disables
	// the bound.
	HandshakeTimeout time.Duration
	// Shards is the number of mixer goroutines links are partitioned
	// across. Zero picks min(GOMAXPROCS, 8).
	Shards int
	// MaxLinks caps concurrent links hub-wide; past it handshakes are
	// refused with "ERR hub full". Zero means DefaultMaxLinks; negative
	// removes the cap.
	MaxLinks int
	// MaxLinksPerShard caps links per mixer shard. Zero means
	// DefaultMaxLinksPerShard; negative removes the cap.
	MaxLinksPerShard int
	// WatchdogInterval is the supervisor's shard-heartbeat poll period.
	// Zero means DefaultWatchdogInterval; negative disables the watchdog.
	WatchdogInterval time.Duration
	// ShedBudget is the sustained-overflow window after which the worst
	// drop-majority link is evicted (load shedding). Zero means
	// DefaultShedBudget; negative disables shedding.
	ShedBudget time.Duration
	// Metrics, when non-nil, receives hub transport counters (typically
	// &pipeline.Hub of an obs.Pipeline).
	Metrics *obs.HubMetrics
	// Logf receives hub events; nil silences them.
	Logf func(format string, args ...any)
}

// Hub is the T-connector of the simulated testbed, generalized to many
// concurrent links: it accepts transmitter and receiver connections over
// TCP, and per link sums that link's transmitter streams block-by-block
// with per-port gain, adds AWGN and broadcasts the mixture to that link's
// receivers. Transmitters that have no data pending contribute silence for
// that block, so receivers observe a continuous stream.
//
// Resilience properties (DESIGN.md §12, §17): per-transmitter pending
// queues are bounded with a configurable overflow policy; every receiver is
// served by its own buffered writer goroutine, so one slow or wedged
// receiver never stalls the mixer or its peers — it is evicted once it has
// dropped the majority of a whole StallBudget window's blocks. Links are
// partitioned across per-shard mixer goroutines and are the fault-isolation
// unit: a panicking hook or byte-garbage peer tears down only its own link,
// admission control refuses links past the configured caps, a supervisor
// watchdog restarts wedged shards with link re-homing, and sustained
// overflow sheds the worst drop-majority link instead of stalling the mix.
type Hub struct {
	cfg HubConfig
	ln  net.Listener
	met *obs.HubMetrics

	shards      []*shard
	maxLinks    int // normalized: 0 = unlimited
	maxPerShard int // normalized: 0 = unlimited
	ships       sync.Pool
	highWater   atomic.Int64

	mu       sync.Mutex
	links    map[uint32]*link
	nextPort int
	closed   bool
	draining bool

	serveOnce sync.Once
	closeOnce sync.Once
	done      chan struct{}
}

// Errors surfaced in hub logs and handshake replies.
var (
	errHubClosed        = errors.New("iqstream: hub closed")
	errHubFull          = errors.New("iqstream: hub full")
	errLinkEvicted      = errors.New("iqstream: link evicted")
	errOverflowDeadline = errors.New("iqstream: tx overflow deadline exceeded")
)

// normDur maps the config convention (zero = default, negative = disabled)
// onto a plain duration (0 = disabled).
func normDur(v, def time.Duration) time.Duration {
	if v == 0 {
		return def
	}
	if v < 0 {
		return 0
	}
	return v
}

// normCount maps the config convention (zero = default, negative =
// unlimited) onto a plain count (0 = unlimited).
func normCount(v, def int) int {
	if v == 0 {
		return def
	}
	if v < 0 {
		return 0
	}
	return v
}

// NewHub starts a hub listening on addr ("127.0.0.1:0" for an ephemeral
// port). Call Serve to run the mixer shards and supervisor.
func NewHub(addr string, cfg HubConfig) (*Hub, error) {
	if cfg.BlockSize <= 0 {
		cfg.BlockSize = 4096
	}
	if cfg.BlockSize > MaxBlock {
		return nil, fmt.Errorf("iqstream: block size %d exceeds MaxBlock", cfg.BlockSize)
	}
	if cfg.NoiseVar < 0 {
		return nil, fmt.Errorf("iqstream: negative noise variance")
	}
	if cfg.MaxPending < 0 {
		return nil, fmt.Errorf("iqstream: negative MaxPending")
	}
	if cfg.MaxPending == 0 {
		cfg.MaxPending = DefaultMaxPending
	}
	if cfg.RxBuffer < 0 {
		return nil, fmt.Errorf("iqstream: negative RxBuffer")
	}
	if cfg.RxBuffer == 0 {
		cfg.RxBuffer = DefaultRxBuffer
	}
	switch cfg.Overflow {
	case OverflowBlock, OverflowDropOldest:
	default:
		return nil, fmt.Errorf("iqstream: unknown overflow policy %d", cfg.Overflow)
	}
	if cfg.Shards < 0 || cfg.Shards > maxShards {
		return nil, fmt.Errorf("iqstream: shard count %d out of range [0, %d]", cfg.Shards, maxShards)
	}
	if cfg.Shards == 0 {
		cfg.Shards = runtime.GOMAXPROCS(0)
		if cfg.Shards > 8 {
			cfg.Shards = 8
		}
		if cfg.Shards < 1 {
			cfg.Shards = 1
		}
	}
	cfg.OverflowDeadline = normDur(cfg.OverflowDeadline, DefaultOverflowDeadline)
	cfg.StallBudget = normDur(cfg.StallBudget, DefaultStallBudget)
	cfg.WriteDeadline = normDur(cfg.WriteDeadline, DefaultWriteDeadline)
	cfg.HandshakeTimeout = normDur(cfg.HandshakeTimeout, DefaultHandshakeTimeout)
	cfg.WatchdogInterval = normDur(cfg.WatchdogInterval, DefaultWatchdogInterval)
	cfg.ShedBudget = normDur(cfg.ShedBudget, DefaultShedBudget)
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	met := cfg.Metrics
	if met == nil {
		met = new(obs.HubMetrics)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	h := &Hub{
		cfg:         cfg,
		ln:          ln,
		met:         met,
		maxLinks:    normCount(cfg.MaxLinks, DefaultMaxLinks),
		maxPerShard: normCount(cfg.MaxLinksPerShard, DefaultMaxLinksPerShard),
		links:       map[uint32]*link{},
		done:        make(chan struct{}),
	}
	h.ships.New = func() any { return new(shipBuf) }
	h.shards = make([]*shard, cfg.Shards)
	for i := range h.shards {
		h.shards[i] = newShard(i)
	}
	return h, nil
}

// Addr returns the hub's listen address.
func (h *Hub) Addr() net.Addr { return h.ln.Addr() }

// Close stops the hub immediately and disconnects all clients, transmitters
// included, so no serve goroutine is left blocked on a peer that never
// hangs up. Pending samples are discarded; use Shutdown to drain first.
func (h *Hub) Close() error {
	h.closeOnce.Do(func() {
		h.mu.Lock()
		h.closed = true
		h.mu.Unlock()
		for _, lk := range h.linksSnapshot() {
			h.evictLink(lk, "hub closed")
		}
		h.ln.Close()
		close(h.done)
	})
	return nil
}

// Shutdown gracefully stops the hub: it stops accepting connections,
// disconnects the transmitters, keeps mixing until every pending sample has
// been mixed and handed to the receivers' writers (or until ctx expires),
// then closes. Pending samples are undrainable without receivers; links
// with no receivers are skipped.
func (h *Hub) Shutdown(ctx context.Context) error {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return nil
	}
	h.draining = true
	h.mu.Unlock()
	h.ln.Close()
	for _, lk := range h.linksSnapshot() {
		lk.mu.Lock()
		conns := make([]net.Conn, 0, len(lk.txConns))
		for _, c := range lk.txConns {
			conns = append(conns, c)
		}
		lk.mu.Unlock()
		for _, c := range conns {
			c.Close()
		}
	}
	tick := time.NewTicker(5 * time.Millisecond)
	defer tick.Stop()
	for !h.drained() {
		h.kickAll()
		select {
		case <-ctx.Done():
			h.Close()
			return ctx.Err()
		case <-tick.C:
		}
	}
	return h.Close()
}

// drained reports whether every pending sample has been mixed and flushed
// out of the receivers' queues (vacuously true for links without
// receivers).
func (h *Hub) drained() bool {
	for _, lk := range h.linksSnapshot() {
		lk.mu.Lock()
		ok := true
		if len(lk.rxs) > 0 {
			if lk.pendingLocked() > 0 {
				ok = false
			}
			for _, rx := range lk.rxs {
				if len(rx.out) > 0 {
					ok = false
					break
				}
			}
		}
		lk.mu.Unlock()
		if !ok {
			return false
		}
	}
	return true
}

// pendingSamples totals undelivered pending samples across every link
// (drain diagnostics and tests).
func (h *Hub) pendingSamples() int {
	n := 0
	for _, lk := range h.linksSnapshot() {
		lk.mu.Lock()
		n += lk.pendingLocked()
		lk.mu.Unlock()
	}
	return n
}

// kickAll wakes every mixer shard.
func (h *Hub) kickAll() {
	for _, sh := range h.shards {
		sh.kick()
	}
}

// kickLink wakes the shard currently owning lk.
func (h *Hub) kickLink(lk *link) {
	si := int(lk.shard.Load())
	if si >= 0 && si < len(h.shards) {
		h.shards[si].kick()
	}
}

// noteHighWater records a pending-queue depth into the monotonic
// high-water gauge.
func (h *Hub) noteHighWater(n int) {
	for {
		cur := h.highWater.Load()
		if int64(n) <= cur {
			return
		}
		if h.highWater.CompareAndSwap(cur, int64(n)) {
			h.met.QueueHighWater.Store(float64(n))
			return
		}
	}
}

// Serve accepts clients and runs the mixer shards and supervisor until
// Close. It returns after the listener shuts down.
func (h *Hub) Serve() error {
	h.serveOnce.Do(func() {
		for _, sh := range h.shards {
			go sh.run(h, sh.epoch.Load())
		}
		if h.cfg.WatchdogInterval > 0 || h.cfg.ShedBudget > 0 {
			go h.supervise()
		}
	})
	for {
		conn, err := h.ln.Accept()
		if err != nil {
			h.mu.Lock()
			stopping := h.closed || h.draining
			h.mu.Unlock()
			if stopping {
				return nil
			}
			return err
		}
		go h.handle(conn)
	}
}

// handle performs the one-line handshake (see handshake.go for the
// grammar) and serves the client's role. The handshake read is bounded in
// both size (one bufio buffer; an oversized line is hostile, not slow) and
// time (HandshakeTimeout), so a slowloris peer cannot pin this goroutine.
// A panic anywhere in the handler is contained to this connection.
func (h *Hub) handle(conn net.Conn) {
	defer func() {
		if r := recover(); r != nil {
			h.met.RecoveredPanics.Inc()
			h.cfg.Logf("connection handler panic recovered: %v", r)
			conn.Close()
		}
	}()
	if ht := h.cfg.HandshakeTimeout; ht > 0 {
		//bhss:allow(detrand) transport deadline: wall clock bounds the handshake read and never feeds the simulation
		_ = conn.SetReadDeadline(time.Now().Add(ht))
	}
	br := bufio.NewReader(conn)
	raw, err := br.ReadSlice('\n')
	if err != nil {
		if errors.Is(err, bufio.ErrBufferFull) {
			h.reject(conn, "ERR bad handshake")
		} else {
			conn.Close()
		}
		return
	}
	_ = conn.SetReadDeadline(time.Time{})
	hs, herr := parseHandshake(string(raw))
	if herr != nil {
		h.reject(conn, herr.reply)
		return
	}
	switch hs.role {
	case "tx", "jam":
		lk, port, q, err := h.attachTx(conn, hs)
		if err != nil {
			h.rejectAttach(conn, err)
			return
		}
		// The OK reply follows registration so admission failures surface
		// as ERR, never as an accepted-then-dropped connection.
		if _, err := fmt.Fprintf(conn, "OK\n"); err != nil {
			h.detachTx(lk, port, "handshake reply failed")
			conn.Close()
			return
		}
		h.runTx(conn, br, lk, port, q, hs)
	case "rx":
		lk, rx, err := h.attachRx(conn, hs)
		if err != nil {
			h.rejectAttach(conn, err)
			return
		}
		if _, err := fmt.Fprintf(conn, "OK\n"); err != nil {
			h.detachRx(lk, rx, "handshake reply failed")
			return
		}
		// The writer starts only after the OK reply is on the wire, so the
		// first mixed block can never precede it.
		go h.rxWriter(lk, rx)
		h.runRx(conn, lk, rx)
	}
}

// reject answers a failed handshake and hangs up. The reply write is
// deadline-bounded: a peer that never reads cannot pin this goroutine.
func (h *Hub) reject(conn net.Conn, reply string) {
	h.met.HandshakeRejects.Inc()
	if ht := h.cfg.HandshakeTimeout; ht > 0 {
		//bhss:allow(detrand) transport deadline: wall clock bounds the reject write and never feeds the simulation
		_ = conn.SetWriteDeadline(time.Now().Add(ht))
	}
	fmt.Fprintf(conn, "%s\n", reply)
	conn.Close()
}

// rejectAttach maps registration errors onto handshake replies.
func (h *Hub) rejectAttach(conn net.Conn, err error) {
	switch {
	case errors.Is(err, errHubFull):
		h.met.LinkRejectsFull.Inc()
		h.reject(conn, "ERR hub full")
	default:
		h.reject(conn, "ERR hub closed")
	}
}

// attachTx admits the handshake's link and registers a transmitter on it.
func (h *Hub) attachTx(conn net.Conn, hs handshake) (*link, int, *txQueue, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed || h.draining {
		return nil, 0, nil, errHubClosed
	}
	lk, err := h.admitLocked(hs.link)
	if err != nil {
		return nil, 0, nil, err
	}
	port := h.nextPort
	h.nextPort++
	q := &txQueue{gain: dbToAmp(hs.gainDB), tag: hs.tag, active: true, space: make(chan struct{}, 1)}
	lk.mu.Lock()
	lk.txs[port] = q
	lk.txConns[port] = conn
	if lk.state == LinkDraining {
		lk.state = LinkLive
	}
	lk.mu.Unlock()
	return lk, port, q, nil
}

// attachRx admits the handshake's link and registers a receiver on it.
func (h *Hub) attachRx(conn net.Conn, hs handshake) (*link, *rxConn, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed || h.draining {
		return nil, nil, errHubClosed
	}
	lk, err := h.admitLocked(hs.link)
	if err != nil {
		return nil, nil, err
	}
	port := h.nextPort
	h.nextPort++
	rx := &rxConn{
		id:   port,
		c:    conn,
		w:    NewWriter(conn),
		excl: hs.excl,
		out:  make(chan outBlock, h.cfg.RxBuffer),
	}
	lk.mu.Lock()
	lk.rxs[port] = rx
	lk.mu.Unlock()
	return lk, rx, nil
}

// runTx reads the transmitter's sample stream into its pending queue until
// the peer disconnects, misbehaves (garbage framing) or overruns its
// bounds; any of those tears down only this session.
func (h *Hub) runTx(conn net.Conn, br *bufio.Reader, lk *link, port int, q *txQueue, hs handshake) {
	h.met.TxAccepted.Inc()
	h.cfg.Logf("link %d %s %d connected (gain %.1f dB)", lk.id, hs.role, port, hs.gainDB)
	r := NewReader(br)
	reason := "stream ended"
	for {
		block, err := r.ReadBlock()
		if err != nil {
			reason = err.Error()
			break
		}
		if err := h.enqueueTx(lk, port, q, block); err != nil {
			reason = err.Error()
			break
		}
	}
	h.detachTx(lk, port, reason)
	conn.Close()
	h.kickLink(lk)
	h.cfg.Logf("link %d %s %d disconnected (%s)", lk.id, hs.role, port, reason)
}

// detachTx marks the transmitter inactive (its queued samples keep
// draining) and updates the link lifecycle: a link whose last active
// transmitter leaves with samples still pending drains; a link whose last
// peer leaves is evicted (link 0 excepted).
func (h *Hub) detachTx(lk *link, port int, reason string) {
	lk.mu.Lock()
	if q, ok := lk.txs[port]; ok {
		q.active = false
	}
	delete(lk.txConns, port)
	if lk.state == LinkLive && len(lk.txConns) == 0 && len(lk.rxs) > 0 && lk.pendingLocked() > 0 {
		lk.state = LinkDraining
		h.cfg.Logf("link %d draining (%s)", lk.id, reason)
	}
	lk.mu.Unlock()
	h.maybeEvictEmpty(lk)
}

// runRx parks on the receiver's connection until the peer hangs up; the
// writer goroutine does all the sending.
func (h *Hub) runRx(conn net.Conn, lk *link, rx *rxConn) {
	h.met.RxAccepted.Inc()
	h.cfg.Logf("link %d rx %d connected", lk.id, rx.id)
	buf := make([]byte, 1)
	for {
		if _, err := conn.Read(buf); err != nil {
			break
		}
	}
	h.detachRx(lk, rx, "peer closed")
}

// detachRx unregisters a receiver and evicts its link if that was the last
// peer (link 0 excepted).
func (h *Hub) detachRx(lk *link, rx *rxConn, reason string) {
	lk.mu.Lock()
	h.removeRxLocked(lk, rx, reason)
	lk.mu.Unlock()
	h.maybeEvictEmpty(lk)
}

// enqueueTx appends one decoded block to the transmitter's pending queue,
// honouring the MaxPending bound and the configured overflow policy.
func (h *Hub) enqueueTx(lk *link, port int, q *txQueue, block []complex128) error {
	if len(block) == 0 {
		return nil
	}
	var timer *time.Timer
	var expired <-chan time.Time
	defer func() {
		if timer != nil {
			timer.Stop()
		}
	}()
	for {
		select {
		case <-h.done:
			return errHubClosed
		default:
		}
		lk.mu.Lock()
		if lk.state == LinkEvicted {
			lk.mu.Unlock()
			return errLinkEvicted
		}
		// An oversized single block is admitted into an empty queue so it
		// cannot deadlock the bound.
		fits := len(q.pending) == 0 || len(q.pending)+len(block) <= h.cfg.MaxPending
		if !fits && h.cfg.Overflow == OverflowDropOldest {
			over := len(q.pending) + len(block) - h.cfg.MaxPending
			if over > len(q.pending) {
				over = len(q.pending)
			}
			q.pending = q.pending[over:]
			h.met.TxOverflowDrops.Add(int64(over))
			if !q.warned {
				q.warned = true
				h.cfg.Logf("link %d tx %d overflow: dropping oldest pending samples (queue bound %d)", lk.id, port, h.cfg.MaxPending)
			}
			fits = true
		}
		if fits {
			q.pending = append(q.pending, block...)
			n := len(q.pending)
			lk.mu.Unlock()
			h.noteHighWater(n)
			h.kickLink(lk)
			return nil
		}
		lk.mu.Unlock()
		h.met.TxOverflowWaits.Inc()
		if timer == nil && h.cfg.OverflowDeadline > 0 {
			timer = time.NewTimer(h.cfg.OverflowDeadline)
			expired = timer.C
		}
		select {
		case <-q.space:
		case <-expired:
			h.met.TxOverflowKills.Inc()
			h.cfg.Logf("link %d tx %d overflow: blocked past %v deadline, closing", lk.id, port, h.cfg.OverflowDeadline)
			return errOverflowDeadline
		case <-h.done:
			return errHubClosed
		}
	}
}

// rxWriter drains one receiver's outbound queue onto its socket. It is the
// only goroutine that writes to the connection, so the mixer never blocks
// on a peer's TCP window. Fan-out is batched: after each block it greedily
// drains whatever else is already queued before paying the flush syscall.
func (h *Hub) rxWriter(lk *link, rx *rxConn) {
	write := func(ob outBlock) error {
		err := rx.w.writeBlockBuffered(ob.buf.s[ob.off : ob.off+ob.n])
		h.releaseShip(ob.buf)
		return err
	}
	bail := func(err error) {
		lk.mu.Lock()
		h.removeRxLocked(lk, rx, "write failed: "+err.Error())
		lk.mu.Unlock()
		// Drain until the mixer's close so its non-blocking sends see
		// queue space rather than a phantom stall.
		for ob := range rx.out {
			h.releaseShip(ob.buf)
		}
	}
	for ob := range rx.out {
		if wd := h.cfg.WriteDeadline; wd > 0 {
			//bhss:allow(detrand) transport deadline: wall clock bounds socket writes and never feeds the simulation
			_ = rx.c.SetWriteDeadline(time.Now().Add(wd))
		}
		if err := write(ob); err != nil {
			bail(err)
			return
		}
		batching := true
		for batching {
			select {
			case ob2, open := <-rx.out:
				if !open {
					_ = rx.w.Flush()
					return
				}
				if err := write(ob2); err != nil {
					bail(err)
					return
				}
			default:
				batching = false
			}
		}
		if err := rx.w.Flush(); err != nil {
			bail(err)
			return
		}
	}
	_ = rx.w.Flush()
}

func dbToAmp(db float64) float64 {
	return math.Pow(10, db/20)
}

// Client connects to a hub. Role-specific constructors below.
type Client struct {
	conn net.Conn
	w    *Writer
	r    *Reader
}

// dial performs the handshake with the hub.
func dial(addr, handshake string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	if _, err := fmt.Fprintf(conn, "%s\n", handshake); err != nil {
		conn.Close()
		return nil, err
	}
	br := bufio.NewReader(conn)
	resp, err := br.ReadString('\n')
	if err != nil {
		conn.Close()
		return nil, err
	}
	if strings.TrimSpace(resp) != "OK" {
		conn.Close()
		return nil, fmt.Errorf("iqstream: hub rejected handshake: %s", strings.TrimSpace(resp))
	}
	return &Client{conn: conn, w: NewWriter(conn), r: NewReader(br)}, nil
}

// DialTx connects as a transmitter on the legacy link 0 with the given
// port gain in dB.
func DialTx(addr string, gainDB float64) (*Client, error) {
	return DialTxLink(addr, gainDB, LinkOpts{})
}

// DialRx connects as a receiver on the legacy link 0.
func DialRx(addr string) (*Client, error) {
	return DialRxLink(addr, LinkOpts{})
}

// DialTxLink connects as a transmitter (or jammer, per opts) on one link.
func DialTxLink(addr string, gainDB float64, o LinkOpts) (*Client, error) {
	return dial(addr, txHandshakeLine(gainDB, o))
}

// DialRxLink connects as a receiver on one link, optionally excluding a
// tagged contribution from the received mix.
func DialRxLink(addr string, o LinkOpts) (*Client, error) {
	return dial(addr, rxHandshakeLine(o))
}

// Send writes one block of samples (transmitter clients).
func (c *Client) Send(samples []complex128) error {
	return c.w.WriteBlock(samples)
}

// Recv reads the next mixed block (receiver clients).
func (c *Client) Recv() ([]complex128, error) {
	return c.r.ReadBlock()
}

// SetRecvDeadline bounds the next Recv; a zero time clears the bound.
// After a deadline error the stream framing may be mid-block — reconnect
// rather than resuming.
func (c *Client) SetRecvDeadline(t time.Time) error {
	return c.conn.SetReadDeadline(t)
}

// Close disconnects from the hub.
func (c *Client) Close() error { return c.conn.Close() }

// Logf is a convenience logger for cmd binaries.
func Logf(format string, args ...any) { log.Printf(format, args...) }
