package iqstream

import (
	"bufio"
	"fmt"
	"log"
	"math"
	"net"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"bhss/internal/impair"
	"bhss/internal/prng"
)

// HubConfig parameterizes the virtual RF medium.
type HubConfig struct {
	// BlockSize is the mixing granularity in samples.
	BlockSize int
	// NoiseVar is the AWGN floor added to the mixed signal.
	NoiseVar float64
	// Seed drives the noise generator.
	Seed uint64
	// Impair, when non-nil, is the receiver front-end impairment chain
	// (internal/impair) applied to each mixed block after the noise floor,
	// so every receiver sees the same distorted stream — the hub plays the
	// shared front end of the testbed. Only the mixing goroutine touches
	// it.
	Impair *impair.Chain
	// Logf receives hub events; nil silences them.
	Logf func(format string, args ...any)
}

// Hub is the T-connector of the simulated testbed: it accepts transmitter
// and receiver connections over TCP, sums all transmitter streams
// block-by-block with per-port gain, adds AWGN and broadcasts the mixture
// to every receiver. Transmitters that have no data pending contribute
// silence for that block, so receivers observe a continuous stream.
type Hub struct {
	cfg HubConfig
	ln  net.Listener

	mu        sync.Mutex
	txQueues  map[int]*txQueue
	rxConns   map[int]*rxConn
	nextID    int
	closed    bool
	wake      chan struct{}
	noiseAmp  float64
	noise     *prng.Source
	closeOnce sync.Once
	done      chan struct{}
}

type txQueue struct {
	gain    float64
	pending []complex128
	active  bool
}

type rxConn struct {
	w   *Writer
	c   net.Conn
	err bool
}

// NewHub starts a hub listening on addr ("127.0.0.1:0" for an ephemeral
// port). Call Serve to run the mixing loop.
func NewHub(addr string, cfg HubConfig) (*Hub, error) {
	if cfg.BlockSize <= 0 {
		cfg.BlockSize = 4096
	}
	if cfg.BlockSize > MaxBlock {
		return nil, fmt.Errorf("iqstream: block size %d exceeds MaxBlock", cfg.BlockSize)
	}
	if cfg.NoiseVar < 0 {
		return nil, fmt.Errorf("iqstream: negative noise variance")
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	h := &Hub{
		cfg:      cfg,
		ln:       ln,
		txQueues: map[int]*txQueue{},
		rxConns:  map[int]*rxConn{},
		wake:     make(chan struct{}, 1),
		noise:    prng.New(cfg.Seed),
		done:     make(chan struct{}),
	}
	if cfg.NoiseVar > 0 {
		h.noiseAmp = 1
	}
	return h, nil
}

// Addr returns the hub's listen address.
func (h *Hub) Addr() net.Addr { return h.ln.Addr() }

// Close stops the hub and disconnects all clients.
func (h *Hub) Close() error {
	h.closeOnce.Do(func() {
		h.mu.Lock()
		h.closed = true
		for _, rx := range h.rxConns {
			rx.c.Close()
		}
		h.mu.Unlock()
		h.ln.Close()
		close(h.done)
	})
	return nil
}

// Serve accepts clients and runs the mixer until Close. It returns after
// the listener shuts down.
func (h *Hub) Serve() error {
	go h.mixLoop()
	for {
		conn, err := h.ln.Accept()
		if err != nil {
			h.mu.Lock()
			closed := h.closed
			h.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		go h.handle(conn)
	}
}

// handle performs the one-line handshake and registers the client.
// Handshake: "IQHUB tx <gain_db>\n" or "IQHUB rx\n".
func (h *Hub) handle(conn net.Conn) {
	br := bufio.NewReader(conn)
	line, err := br.ReadString('\n')
	if err != nil {
		conn.Close()
		return
	}
	fields := strings.Fields(strings.TrimSpace(line))
	if len(fields) < 2 || fields[0] != "IQHUB" {
		fmt.Fprintf(conn, "ERR bad handshake\n")
		conn.Close()
		return
	}
	switch fields[1] {
	case "tx":
		gainDB := 0.0
		if len(fields) >= 3 {
			if g, err := strconv.ParseFloat(fields[2], 64); err == nil {
				gainDB = g
			}
		}
		fmt.Fprintf(conn, "OK\n")
		h.serveTx(conn, br, gainDB)
	case "rx":
		fmt.Fprintf(conn, "OK\n")
		h.serveRx(conn)
	default:
		fmt.Fprintf(conn, "ERR unknown role %q\n", fields[1])
		conn.Close()
	}
}

func (h *Hub) serveTx(conn net.Conn, br *bufio.Reader, gainDB float64) {
	defer conn.Close()
	h.mu.Lock()
	id := h.nextID
	h.nextID++
	q := &txQueue{gain: dbToAmp(gainDB), active: true}
	h.txQueues[id] = q
	h.mu.Unlock()
	h.cfg.Logf("tx %d connected (gain %.1f dB)", id, gainDB)

	r := NewReader(br)
	for {
		block, err := r.ReadBlock()
		if err != nil {
			break
		}
		h.mu.Lock()
		q.pending = append(q.pending, block...)
		h.mu.Unlock()
		h.kick()
	}
	h.mu.Lock()
	q.active = false
	h.mu.Unlock()
	h.kick()
	h.cfg.Logf("tx %d disconnected", id)
}

func (h *Hub) serveRx(conn net.Conn) {
	h.mu.Lock()
	id := h.nextID
	h.nextID++
	h.rxConns[id] = &rxConn{w: NewWriter(conn), c: conn}
	h.mu.Unlock()
	h.cfg.Logf("rx %d connected", id)
	// The mixer pushes; the handler just waits for the connection to die.
	buf := make([]byte, 1)
	for {
		if _, err := conn.Read(buf); err != nil {
			break
		}
	}
	h.mu.Lock()
	delete(h.rxConns, id)
	h.mu.Unlock()
	conn.Close()
	h.cfg.Logf("rx %d disconnected", id)
}

func (h *Hub) kick() {
	select {
	case h.wake <- struct{}{}:
	default:
	}
}

// mixLoop emits one mixed block whenever any transmitter has data pending
// (idle transmitters contribute silence) and there is at least one
// receiver.
func (h *Hub) mixLoop() {
	block := make([]complex128, h.cfg.BlockSize)
	var impaired []complex128
	var txIDs []int
	noiseAmp := 0.0
	if h.cfg.NoiseVar > 0 {
		noiseAmp = math.Sqrt(h.cfg.NoiseVar)
	}
	for {
		select {
		case <-h.done:
			return
		case <-h.wake:
		}
		for {
			h.mu.Lock()
			havePending := false
			for _, q := range h.txQueues {
				if len(q.pending) > 0 {
					havePending = true
					break
				}
			}
			if !havePending || len(h.rxConns) == 0 {
				// Garbage-collect drained, disconnected transmitters.
				for id, q := range h.txQueues {
					if !q.active && len(q.pending) == 0 {
						delete(h.txQueues, id)
					}
				}
				h.mu.Unlock()
				break
			}
			for i := range block {
				block[i] = 0
			}
			// Mix in ascending port-id order: float addition is
			// order-sensitive, and map iteration order is randomized, so
			// summing in map order would make the mixture nondeterministic
			// across runs of the same scenario.
			txIDs = txIDs[:0]
			for id := range h.txQueues {
				txIDs = append(txIDs, id)
			}
			sort.Ints(txIDs)
			for _, id := range txIDs {
				q := h.txQueues[id]
				n := len(q.pending)
				if n > h.cfg.BlockSize {
					n = h.cfg.BlockSize
				}
				g := complex(q.gain, 0)
				for i := 0; i < n; i++ {
					block[i] += q.pending[i] * g
				}
				q.pending = q.pending[n:]
			}
			if noiseAmp > 0 {
				a := complex(noiseAmp, 0)
				for i := range block {
					block[i] += h.noise.ComplexNorm() * a
				}
			}
			rxs := make([]*rxConn, 0, len(h.rxConns))
			for _, rx := range h.rxConns {
				rxs = append(rxs, rx)
			}
			h.mu.Unlock()
			out := block
			if h.cfg.Impair.Len() > 0 {
				impaired = h.cfg.Impair.ProcessAppend(impaired[:0], block)
				out = impaired
			}
			// A clock-skew stage can emit slightly more than BlockSize
			// samples; chunk to respect the wire format's MaxBlock.
			for off := 0; off < len(out); off += MaxBlock {
				end := off + MaxBlock
				if end > len(out) {
					end = len(out)
				}
				for _, rx := range rxs {
					if rx.err {
						continue
					}
					if err := rx.w.WriteBlock(out[off:end]); err != nil {
						rx.err = true
						rx.c.Close()
					}
				}
			}
		}
	}
}

func dbToAmp(db float64) float64 {
	return math.Pow(10, db/20)
}

// Client connects to a hub. Role-specific constructors below.
type Client struct {
	conn net.Conn
	w    *Writer
	r    *Reader
}

// dial performs the handshake with the hub.
func dial(addr, handshake string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	if _, err := fmt.Fprintf(conn, "%s\n", handshake); err != nil {
		conn.Close()
		return nil, err
	}
	br := bufio.NewReader(conn)
	resp, err := br.ReadString('\n')
	if err != nil {
		conn.Close()
		return nil, err
	}
	if strings.TrimSpace(resp) != "OK" {
		conn.Close()
		return nil, fmt.Errorf("iqstream: hub rejected handshake: %s", strings.TrimSpace(resp))
	}
	return &Client{conn: conn, w: NewWriter(conn), r: NewReader(br)}, nil
}

// DialTx connects as a transmitter with the given port gain in dB.
func DialTx(addr string, gainDB float64) (*Client, error) {
	return dial(addr, fmt.Sprintf("IQHUB tx %g", gainDB))
}

// DialRx connects as a receiver.
func DialRx(addr string) (*Client, error) {
	return dial(addr, "IQHUB rx")
}

// Send writes one block of samples (transmitter clients).
func (c *Client) Send(samples []complex128) error {
	return c.w.WriteBlock(samples)
}

// Recv reads the next mixed block (receiver clients).
func (c *Client) Recv() ([]complex128, error) {
	return c.r.ReadBlock()
}

// SetRecvDeadline bounds the next Recv; a zero time clears the bound.
// After a deadline error the stream framing may be mid-block — reconnect
// rather than resuming.
func (c *Client) SetRecvDeadline(t time.Time) error {
	return c.conn.SetReadDeadline(t)
}

// Close disconnects from the hub.
func (c *Client) Close() error { return c.conn.Close() }

// Logf is a convenience logger for cmd binaries.
func Logf(format string, args ...any) { log.Printf(format, args...) }
