package iqstream

import (
	"bytes"
	"io"
	"testing"
)

// FuzzReadBlock feeds arbitrary bytes to the wire-format reader: it must
// never panic or allocate absurdly, and any block it accepts must
// re-serialize to the same prefix.
func FuzzReadBlock(f *testing.F) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	_ = w.WriteBlock([]complex128{1, 2i, -3})
	f.Add(buf.Bytes())
	f.Add([]byte("IQS1"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, raw []byte) {
		r := NewReader(bytes.NewReader(raw))
		for {
			block, err := r.ReadBlock()
			if err != nil {
				if err != io.EOF && err != ErrBadMagic && err != ErrTooLarge && err != ErrShortRead {
					t.Fatalf("unexpected error type: %v", err)
				}
				return
			}
			if len(block) > MaxBlock {
				t.Fatalf("accepted oversize block of %d samples", len(block))
			}
		}
	})
}

// FuzzParseChaosSpec throws arbitrary strings at the chaos spec parser: it
// must never panic, only return errors. Whenever it accepts a spec, the
// canonical String() form must be a fixed point (Parse ∘ String ≡ id on
// canonical forms) and must reproduce the config exactly, so -chaos flag
// values round-trip through logs and scripts without drift.
func FuzzParseChaosSpec(f *testing.F) {
	f.Add("")
	f.Add("latency=5:2,stall=0.1:250,reset=0.01")
	f.Add("resetevery=4096,trunc=0.05,short=0.5,drop=0.001,seed=42")
	f.Add("latency=NaN")
	f.Add("reset=1.5,drop=-0")
	f.Add("=,=,=")
	f.Add("seed=18446744073709551615")
	f.Add("stall=1:60000,resetevery=1073741824")
	f.Fuzz(func(t *testing.T, spec string) {
		cfg, err := ParseChaosSpec(spec)
		if err != nil {
			return
		}
		canon := cfg.String()
		cfg2, err := ParseChaosSpec(canon)
		if err != nil {
			t.Fatalf("canonical form %q of accepted spec %q does not re-parse: %v", canon, spec, err)
		}
		if cfg2 != cfg {
			t.Fatalf("canonical round trip of %q changed the config: %+v -> %+v", spec, cfg, cfg2)
		}
		if canon2 := cfg2.String(); canon2 != canon {
			t.Fatalf("canonical form not a fixed point: %q -> %q", canon, canon2)
		}
	})
}
