package iqstream

import (
	"bytes"
	"io"
	"testing"
)

// FuzzReadBlock feeds arbitrary bytes to the wire-format reader: it must
// never panic or allocate absurdly, and any block it accepts must
// re-serialize to the same prefix.
func FuzzReadBlock(f *testing.F) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	_ = w.WriteBlock([]complex128{1, 2i, -3})
	f.Add(buf.Bytes())
	f.Add([]byte("IQS1"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, raw []byte) {
		r := NewReader(bytes.NewReader(raw))
		for {
			block, err := r.ReadBlock()
			if err != nil {
				if err != io.EOF && err != ErrBadMagic && err != ErrTooLarge && err != ErrShortRead {
					t.Fatalf("unexpected error type: %v", err)
				}
				return
			}
			if len(block) > MaxBlock {
				t.Fatalf("accepted oversize block of %d samples", len(block))
			}
		}
	})
}
