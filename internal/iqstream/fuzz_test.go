package iqstream

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

// FuzzReadBlock feeds arbitrary bytes to the wire-format reader: it must
// never panic or allocate absurdly, and any block it accepts must
// re-serialize to the same prefix.
func FuzzReadBlock(f *testing.F) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	_ = w.WriteBlock([]complex128{1, 2i, -3})
	f.Add(buf.Bytes())
	f.Add([]byte("IQS1"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, raw []byte) {
		r := NewReader(bytes.NewReader(raw))
		for {
			block, err := r.ReadBlock()
			if err != nil {
				if err != io.EOF && err != ErrBadMagic && err != ErrTooLarge && err != ErrShortRead {
					t.Fatalf("unexpected error type: %v", err)
				}
				return
			}
			if len(block) > MaxBlock {
				t.Fatalf("accepted oversize block of %d samples", len(block))
			}
		}
	})
}

// FuzzHandshake throws arbitrary lines at the handshake parser: it must
// never panic, every rejection must carry a one-line "ERR ..." reply, and
// every accepted line must survive a canonical round trip — re-rendering
// the parsed fields through the dialer's line builders and re-parsing must
// reproduce the same handshake, so client and hub can never drift apart on
// the grammar.
func FuzzHandshake(f *testing.F) {
	f.Add("IQHUB tx 3.5")
	f.Add("IQHUB tx")
	f.Add("IQHUB rx")
	f.Add("IQHUB jam -10 LINK 2 TAG j1")
	f.Add("IQHUB tx 0 LINK 4294967295 TAG a.b-c_d")
	f.Add("IQHUB rx LINK 7 EXCL jam")
	f.Add("IQHUB rx LINK 1 LINK 2")
	f.Add("IQHUB tx LINK banana")
	f.Add("IQHUB tx NaN")
	f.Add("IQHUB spectator")
	f.Add("IQHUB tx 3.5 whatever")
	f.Add("HELLO world")
	f.Add("")
	f.Add("IQHUB")
	f.Fuzz(func(t *testing.T, line string) {
		hs, herr := parseHandshake(line)
		if herr != nil {
			if !strings.HasPrefix(herr.reply, "ERR ") || strings.ContainsAny(herr.reply, "\r\n") {
				t.Fatalf("rejection of %q carries malformed reply %q", line, herr.reply)
			}
			return
		}
		switch hs.role {
		case "tx", "jam", "rx":
		default:
			t.Fatalf("accepted %q with impossible role %q", line, hs.role)
		}
		if hs.tag != "" && !validTag(hs.tag) {
			t.Fatalf("accepted %q with invalid tag %q", line, hs.tag)
		}
		if hs.excl != "" && !validTag(hs.excl) {
			t.Fatalf("accepted %q with invalid excl %q", line, hs.excl)
		}
		// Canonical round trip through the client-side line builders. The
		// jam role's implied default tag renders as no TAG option.
		var canon string
		if hs.role == "rx" {
			canon = rxHandshakeLine(LinkOpts{Link: hs.link, Exclude: hs.excl})
		} else {
			tag := hs.tag
			if hs.role == "jam" && tag == "jam" {
				tag = ""
			}
			canon = txHandshakeLine(hs.gainDB, LinkOpts{Link: hs.link, Tag: tag, Jam: hs.role == "jam"})
		}
		hs2, herr2 := parseHandshake(canon)
		if herr2 != nil {
			t.Fatalf("canonical form %q of accepted line %q rejected: %v", canon, line, herr2)
		}
		if hs2 != hs {
			t.Fatalf("canonical round trip of %q changed the handshake: %+v -> %+v", line, hs, hs2)
		}
	})
}

// FuzzParseChaosSpec throws arbitrary strings at the chaos spec parser: it
// must never panic, only return errors. Whenever it accepts a spec, the
// canonical String() form must be a fixed point (Parse ∘ String ≡ id on
// canonical forms) and must reproduce the config exactly, so -chaos flag
// values round-trip through logs and scripts without drift.
func FuzzParseChaosSpec(f *testing.F) {
	f.Add("")
	f.Add("latency=5:2,stall=0.1:250,reset=0.01")
	f.Add("resetevery=4096,trunc=0.05,short=0.5,drop=0.001,seed=42")
	f.Add("latency=NaN")
	f.Add("reset=1.5,drop=-0")
	f.Add("=,=,=")
	f.Add("seed=18446744073709551615")
	f.Add("stall=1:60000,resetevery=1073741824")
	f.Fuzz(func(t *testing.T, spec string) {
		cfg, err := ParseChaosSpec(spec)
		if err != nil {
			return
		}
		canon := cfg.String()
		cfg2, err := ParseChaosSpec(canon)
		if err != nil {
			t.Fatalf("canonical form %q of accepted spec %q does not re-parse: %v", canon, spec, err)
		}
		if cfg2 != cfg {
			t.Fatalf("canonical round trip of %q changed the config: %+v -> %+v", spec, cfg, cfg2)
		}
		if canon2 := cfg2.String(); canon2 != canon {
			t.Fatalf("canonical form not a fixed point: %q -> %q", canon, canon2)
		}
	})
}
