package iqstream

import (
	"runtime"
	"testing"
	"time"
)

// checkGoroutines pins the goroutine count: register it first thing in a
// test and the cleanup fails the test if, after a grace period, more
// goroutines are alive than when it was registered (a goleak-style check
// with no external dependency). The grace period absorbs the normal
// teardown latency of handler goroutines unwinding from closed sockets.
func checkGoroutines(t *testing.T) {
	t.Helper()
	start := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(5 * time.Second)
		for {
			n := runtime.NumGoroutine()
			if n <= start {
				return
			}
			if time.Now().After(deadline) {
				buf := make([]byte, 1<<20)
				t.Errorf("goroutine leak: %d at start, %d after teardown\n%s",
					start, n, buf[:runtime.Stack(buf, true)])
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
	})
}
