package iqstream

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"bhss/internal/obs"
)

// shard is one mixer goroutine's worth of links. Links are partitioned
// across shards at admission (least-loaded placement), so mixing throughput
// scales with cores while each link's stream stays single-writer. The
// atomic heartbeats let the supervisor watchdog tell a busy shard (beat
// advancing) from a wedged one (beat frozen mid-link, cur pinned on the
// culprit) without stopping the world.
type shard struct {
	idx  int
	wake chan struct{}

	mu    sync.Mutex
	links map[uint32]*link

	beat atomic.Int64 // per-link mix passes completed (heartbeat)
	cur  atomic.Int64 // link ID currently being mixed (-1 = idle)
	// epoch is bumped by the supervisor when it restarts the shard; the
	// old run goroutine notices the stale epoch and exits, and only the
	// goroutine started with the current epoch keeps mixing.
	epoch atomic.Int64
}

func newShard(idx int) *shard {
	sh := &shard{idx: idx, wake: make(chan struct{}, 1), links: map[uint32]*link{}}
	sh.cur.Store(-1)
	return sh
}

func (sh *shard) kick() {
	select {
	case sh.wake <- struct{}{}:
	default:
	}
}

// snapshot copies the shard's links in ascending ID order (deterministic
// round-robin fairness) into dst, reusing its backing array.
func (sh *shard) snapshot(dst []*link) []*link {
	dst = dst[:0]
	sh.mu.Lock()
	for _, lk := range sh.links {
		dst = append(dst, lk)
	}
	sh.mu.Unlock()
	sort.Slice(dst, func(i, j int) bool { return dst[i].id < dst[j].id })
	return dst
}

// run is the shard mixer loop: whenever kicked, it sweeps its links round-
// robin, mixing one block per link per pass, until a full pass finds no
// work. It exits on hub close or when the supervisor has bumped the
// shard's epoch (restart with re-homing).
func (sh *shard) run(h *Hub, epoch int64) {
	sc := h.newMixScratch()
	var snap []*link
	for {
		select {
		case <-h.done:
			return
		case <-sh.wake:
		}
		for {
			if sh.epoch.Load() != epoch {
				return
			}
			snap = sh.snapshot(snap)
			worked := false
			for _, lk := range snap {
				if sh.epoch.Load() != epoch {
					return
				}
				sh.cur.Store(int64(lk.id))
				if h.mixLink(lk, sc) {
					worked = true
				}
				sh.cur.Store(-1)
				sh.beat.Add(1)
			}
			if !worked {
				break
			}
		}
	}
}

// shipBuf is one pooled, refcounted mixed block on its way to receiver
// queues. The creator holds one reference; fan-out adds one per queued
// chunk; the last release returns the buffer to the pool. Pooling plus
// batched flushing is what keeps per-link fan-out cost flat as link count
// grows.
type shipBuf struct {
	s    []complex128
	refs atomic.Int32
}

// outBlock is one queued chunk of a shipBuf (off/n respect MaxBlock).
type outBlock struct {
	buf *shipBuf
	off int
	n   int
}

func (h *Hub) shipOfLen(n int) *shipBuf {
	b := h.ships.Get().(*shipBuf)
	if cap(b.s) < n {
		b.s = make([]complex128, n)
	}
	b.s = b.s[:n]
	b.refs.Store(1)
	return b
}

func (h *Hub) newShip(src []complex128) *shipBuf {
	b := h.shipOfLen(len(src))
	copy(b.s, src)
	return b
}

func (h *Hub) releaseShip(b *shipBuf) {
	if b.refs.Add(-1) == 0 {
		h.ships.Put(b)
	}
}

// mixScratch is one shard mixer's reusable working set.
type mixScratch struct {
	block    []complex128
	impaired []complex128
	ids      []int
	tags     []tagContrib
	noiseAmp float64
}

// tagContrib accumulates one excluded tag's scaled contribution to the
// current block so deliver can hand EXCL receivers the mix minus that tag.
type tagContrib struct {
	tag  string
	buf  []complex128
	used bool     // a tx carrying the tag contributed this block
	ship *shipBuf // built variant (mix − contribution), nil when unused
}

func (h *Hub) newMixScratch() *mixScratch {
	sc := &mixScratch{block: make([]complex128, h.cfg.BlockSize)}
	if h.cfg.NoiseVar > 0 {
		sc.noiseAmp = math.Sqrt(h.cfg.NoiseVar)
	}
	return sc
}

// mixLink mixes and delivers at most one block for one link, reporting
// whether it did any work. This is the fault-isolation boundary: a panic
// anywhere in the link's mix path — a hub-side jam or impair hook, a
// corrupted queue — is recovered here, counted, and costs only that link
// its session; the shard loop and every other link keep running.
func (h *Hub) mixLink(lk *link, sc *mixScratch) (worked bool) {
	defer func() {
		if r := recover(); r != nil {
			h.met.RecoveredPanics.Inc()
			h.cfg.Logf("link %d mix panic recovered: %v", lk.id, r)
			h.evictLink(lk, fmt.Sprintf("mix panic: %v", r))
			worked = false
		}
	}()
	if !h.mixPending(lk, sc) {
		return false
	}
	block := sc.block
	// The hub-side adversary and impair chain run outside all locks: their
	// state is owned by the link's current shard goroutine (links never mix
	// concurrently with themselves), and they only touch scratch.
	if lk.jam != nil {
		j := lk.jam(block)
		n := len(j)
		if n > len(block) {
			n = len(block)
		}
		for i := 0; i < n; i++ {
			block[i] += j[i]
		}
	}
	out := block
	if lk.impair.Len() > 0 {
		sc.impaired = lk.impair.ProcessAppend(sc.impaired[:0], block)
		out = sc.impaired
	}
	// Receivers' writer goroutines consume asynchronously, so the mix is
	// copied once into a pooled refcounted buffer; EXCL receivers get a
	// variant with the excluded tag's contribution subtracted. Exclusion
	// models the sensing client's own front end, so the variant bypasses
	// the hub impair chain (link 0 only) while keeping noise and hub-side
	// jamming.
	main := h.newShip(out)
	for ti := range sc.tags {
		tc := &sc.tags[ti]
		if !tc.used {
			continue
		}
		v := h.shipOfLen(len(block))
		for i := range block {
			v.s[i] = block[i] - tc.buf[i]
		}
		tc.ship = v
	}
	h.met.MixedBlocks.Inc()
	h.met.MixedSamples.Add(int64(len(out)))
	h.deliverLink(lk, main, sc.tags)
	h.releaseShip(main)
	for ti := range sc.tags {
		if s := sc.tags[ti].ship; s != nil {
			h.releaseShip(s)
			sc.tags[ti].ship = nil
		}
	}
	return true
}

// mixPending sums the link's pending transmitter queues (plus the link's
// private noise floor) into sc.block, accumulating excluded-tag
// contributions on the side. It reports false when there is nothing to do
// (no pending samples or no receivers).
func (h *Hub) mixPending(lk *link, sc *mixScratch) bool {
	lk.mu.Lock()
	defer lk.mu.Unlock()
	if lk.state == LinkEvicted {
		return false
	}
	havePending := false
	for _, q := range lk.txs {
		if len(q.pending) > 0 {
			havePending = true
			break
		}
	}
	if !havePending || len(lk.rxs) == 0 {
		// Garbage-collect drained, disconnected transmitter queues.
		for port, q := range lk.txs {
			if !q.active && len(q.pending) == 0 {
				delete(lk.txs, port)
			}
		}
		return false
	}
	if lk.state == LinkAdmitted {
		lk.state = LinkLive
	}
	// Collect the tags receivers want excluded that some transmitter on
	// this link actually carries; each gets a zeroed contribution buffer.
	sc.tags = sc.tags[:0]
	for _, rx := range lk.rxs {
		if rx.excl == "" {
			continue
		}
		carried := false
		for _, q := range lk.txs {
			if q.tag == rx.excl {
				carried = true
				break
			}
		}
		if !carried {
			continue
		}
		dup := false
		for ti := range sc.tags {
			if sc.tags[ti].tag == rx.excl {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		sc.tags = append(sc.tags, tagContrib{tag: rx.excl})
		tc := &sc.tags[len(sc.tags)-1]
		if cap(tc.buf) < h.cfg.BlockSize {
			tc.buf = make([]complex128, h.cfg.BlockSize)
		}
		tc.buf = tc.buf[:h.cfg.BlockSize]
		for i := range tc.buf {
			tc.buf[i] = 0
		}
	}
	block := sc.block
	for i := range block {
		block[i] = 0
	}
	// Mix in ascending port-id order: float addition is order-sensitive,
	// and map iteration order is randomized, so summing in map order would
	// make the mixture nondeterministic across runs of the same scenario.
	ids := sc.ids[:0]
	for port := range lk.txs {
		ids = append(ids, port)
	}
	sort.Ints(ids)
	sc.ids = ids
	for _, port := range ids {
		q := lk.txs[port]
		n := len(q.pending)
		if n > h.cfg.BlockSize {
			n = h.cfg.BlockSize
		}
		g := complex(q.gain, 0)
		var contrib []complex128
		if q.tag != "" {
			for ti := range sc.tags {
				if sc.tags[ti].tag == q.tag {
					contrib = sc.tags[ti].buf
					sc.tags[ti].used = sc.tags[ti].used || n > 0
					break
				}
			}
		}
		if contrib != nil {
			for i := 0; i < n; i++ {
				v := q.pending[i] * g
				block[i] += v
				contrib[i] += v
			}
		} else {
			for i := 0; i < n; i++ {
				block[i] += q.pending[i] * g
			}
		}
		q.pending = q.pending[n:]
		if n > 0 {
			select {
			case q.space <- struct{}{}:
			default:
			}
		}
	}
	if sc.noiseAmp > 0 {
		a := complex(sc.noiseAmp, 0)
		for i := range block {
			block[i] += lk.noise.ComplexNorm() * a
		}
	}
	return true
}

// deliverLink fans a mixed block out to the link's receiver queues without
// ever blocking: a full queue costs that receiver the block (counted), and
// a receiver that drops more blocks than it accepts across a whole
// StallBudget window costs it the connection. The majority test — rather
// than "queue full for the whole budget" — is deliberate: a hopelessly
// slow socket still dribbles a block out every few milliseconds, freeing a
// queue slot and making momentary full/empty states useless as a health
// signal; the accept/drop ratio over the window is robust to that.
func (h *Hub) deliverLink(lk *link, main *shipBuf, tags []tagContrib) {
	now := obs.Now()
	lk.mu.Lock()
	defer lk.mu.Unlock()
	if lk.state == LinkEvicted {
		return
	}
	var okTotal, dropTotal int64
	for _, rx := range lk.rxs {
		buf := main
		if rx.excl != "" {
			for ti := range tags {
				if tags[ti].tag == rx.excl && tags[ti].ship != nil {
					buf = tags[ti].ship
					break
				}
			}
		}
		var ok, dropped int64
		// A clock-skew impair stage can emit slightly more than BlockSize
		// samples; chunk to respect the wire format's MaxBlock.
		for off := 0; off < len(buf.s) && dropped == 0; off += MaxBlock {
			end := off + MaxBlock
			if end > len(buf.s) {
				end = len(buf.s)
			}
			buf.refs.Add(1)
			select {
			case rx.out <- outBlock{buf: buf, off: off, n: end - off}:
				ok++
			default:
				buf.refs.Add(-1)
				dropped++
			}
		}
		//bhss:allow(detrand) integer addition commutes: the shed tallies are identical in any map order
		okTotal += ok
		//bhss:allow(detrand) integer addition commutes: the shed tallies are identical in any map order
		dropTotal += dropped
		if dropped > 0 {
			h.met.RxQueueDrops.Add(dropped)
		}
		budget := h.cfg.StallBudget
		if budget <= 0 {
			continue
		}
		if rx.epochStart == 0 {
			if dropped == 0 {
				continue // healthy and idle: no window to account
			}
			rx.epochStart = now
		}
		rx.epochOK += ok
		rx.epochDrops += dropped
		if now-rx.epochStart < int64(budget) {
			continue
		}
		if rx.epochDrops > rx.epochOK {
			h.met.RxEvictions.Inc()
			h.removeRxLocked(lk, rx, fmt.Sprintf(
				"evicted: dropped %d of %d blocks over stall budget %v",
				rx.epochDrops, rx.epochDrops+rx.epochOK, budget))
			continue
		}
		rx.epochStart, rx.epochOK, rx.epochDrops = 0, 0, 0
	}
	lk.shedOK += okTotal
	lk.shedDrops += dropTotal
}

// supervise is the hub's watchdog/load-shed goroutine.
//
// Watchdog: a shard whose heartbeat is frozen while pinned on one link for
// two consecutive polls is wedged — a mix hook that never returns — so the
// supervisor bumps the shard's epoch (the old goroutine exits at its next
// epoch check, or leaks harmlessly if truly stuck inside a hook), evicts
// the pinned link, re-homes the shard's surviving links onto the other
// shards, and starts a fresh mixer goroutine.
//
// Load shedding: when receiver-queue drops grow on every poll for a whole
// ShedBudget window — sustained overflow that per-receiver eviction is not
// absorbing — the supervisor evicts the link with the worst drop-majority
// margin instead of letting the backlog stall the mix for everyone.
func (h *Hub) supervise() {
	poll := h.cfg.WatchdogInterval
	if poll <= 0 || (h.cfg.ShedBudget > 0 && h.cfg.ShedBudget/2 < poll) {
		poll = h.cfg.ShedBudget / 2
	}
	if poll < 5*time.Millisecond {
		poll = 5 * time.Millisecond
	}
	type shardSeen struct {
		beat, cur int64
		stale     int
	}
	seen := make([]shardSeen, len(h.shards))
	for i := range seen {
		seen[i].cur = -1
	}
	var shedArmed int64
	lastDrops := h.met.RxQueueDrops.Load()
	//bhss:allow(detrand) supervision cadence: wall clock schedules health checks and never feeds the simulation
	tick := time.NewTicker(poll)
	defer tick.Stop()
	for {
		select {
		case <-h.done:
			return
		case <-tick.C:
		}
		if h.cfg.WatchdogInterval > 0 {
			for i, sh := range h.shards {
				beat, cur := sh.beat.Load(), sh.cur.Load()
				st := &seen[i]
				if cur >= 0 && cur == st.cur && beat == st.beat {
					st.stale++
				} else {
					st.stale = 0
				}
				st.beat, st.cur = beat, cur
				if st.stale >= 2 {
					st.stale = 0
					h.restartShard(i, cur)
				}
			}
		}
		if h.cfg.ShedBudget > 0 {
			drops := h.met.RxQueueDrops.Load()
			switch {
			case drops == lastDrops:
				shedArmed = 0 // a drop-free poll disarms the window
			case shedArmed == 0:
				shedArmed = obs.Now()
				h.resetShedWindows()
			case obs.Now()-shedArmed >= int64(h.cfg.ShedBudget):
				h.shedWorst()
				shedArmed = 0
			}
			lastDrops = drops
		}
	}
}

// restartShard replaces a wedged shard's mixer goroutine, evicting the link
// it was pinned on and re-homing the survivors across the remaining shards
// (falling back to the restarted shard itself when it is the only one or
// the others are at their per-shard cap).
func (h *Hub) restartShard(si int, wedgedID int64) {
	sh := h.shards[si]
	sh.epoch.Add(1)
	h.met.ShardRestarts.Inc()
	h.cfg.Logf("shard %d wedged on link %d: restarting", si, wedgedID)

	var wedged *link
	h.mu.Lock()
	if lk, ok := h.links[uint32(wedgedID)]; ok && int(lk.shard.Load()) == si {
		wedged = lk
	}
	survivors := make([]*link, 0)
	sh.mu.Lock()
	for _, lk := range sh.links {
		if lk != wedged {
			survivors = append(survivors, lk)
		}
	}
	sh.links = map[uint32]*link{}
	sh.mu.Unlock()
	for _, lk := range survivors {
		ti := -1
		if len(h.shards) > 1 {
			best := -1
			for i, cand := range h.shards {
				if i == si {
					continue
				}
				cand.mu.Lock()
				n := len(cand.links)
				cand.mu.Unlock()
				if h.maxPerShard > 0 && n >= h.maxPerShard {
					continue
				}
				if ti < 0 || n < best {
					ti, best = i, n
				}
			}
		}
		if ti < 0 {
			ti = si
		}
		target := h.shards[ti]
		target.mu.Lock()
		target.links[lk.id] = lk
		target.mu.Unlock()
		lk.shard.Store(int32(ti))
	}
	stopped := h.closed
	h.mu.Unlock()

	if wedged != nil {
		h.evictLink(wedged, "wedged the shard mixer (watchdog)")
	}
	if !stopped {
		go sh.run(h, sh.epoch.Load())
	}
	h.kickAll()
}

// resetShedWindows zeroes every link's shed accounting at the start of an
// overflow window.
func (h *Hub) resetShedWindows() {
	for _, lk := range h.linksSnapshot() {
		lk.mu.Lock()
		lk.shedOK, lk.shedDrops = 0, 0
		lk.mu.Unlock()
	}
}

// shedWorst evicts the link with the worst drop-majority margin across the
// just-elapsed overflow window (no-op when no link has a drop majority —
// overflow spread thinly is per-receiver eviction's problem, not shedding's).
func (h *Hub) shedWorst() {
	var worst *link
	var worstMargin int64
	for _, lk := range h.linksSnapshot() {
		lk.mu.Lock()
		margin := lk.shedDrops - lk.shedOK
		drops := lk.shedDrops
		lk.mu.Unlock()
		if drops == 0 || margin <= 0 {
			continue
		}
		if worst == nil || margin > worstMargin {
			worst, worstMargin = lk, margin
		}
	}
	if worst == nil {
		return
	}
	h.met.LinksShed.Inc()
	h.evictLink(worst, fmt.Sprintf(
		"load shed: drop-majority margin %d over sustained overflow", worstMargin))
}
