package iqstream

import (
	"bytes"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestParseChaosSpecTable pins the grammar: good specs parse to the
// expected config and render back canonically; bad specs are rejected with
// a mention of the offending key.
func TestParseChaosSpecTable(t *testing.T) {
	good := []struct {
		spec      string
		want      ChaosConfig
		canonical string
	}{
		{"", ChaosConfig{}, ""},
		{"   ", ChaosConfig{}, ""},
		{"latency=5", ChaosConfig{LatencyMS: 5}, "latency=5:0"},
		{"latency=5:2", ChaosConfig{LatencyMS: 5, LatencyJitterMS: 2}, "latency=5:2"},
		{"stall=0.1:250", ChaosConfig{StallProb: 0.1, StallMS: 250}, "stall=0.1:250"},
		{"reset=0.01", ChaosConfig{ResetProb: 0.01}, "reset=0.01"},
		{"resetevery=4096", ChaosConfig{ResetEvery: 4096}, "resetevery=4096"},
		{"trunc=0.05", ChaosConfig{TruncProb: 0.05}, "trunc=0.05"},
		{"short=0.5", ChaosConfig{ShortWriteProb: 0.5}, "short=0.5"},
		{"drop=1", ChaosConfig{DropProb: 1}, "drop=1"},
		{"seed=42", ChaosConfig{Seed: 42, HasSeed: true}, "seed=42"},
		{" reset=0.5 , seed=7 ", ChaosConfig{ResetProb: 0.5, Seed: 7, HasSeed: true}, "reset=0.5,seed=7"},
		{
			"drop=0.2,latency=1:3,seed=9,short=0.3,reset=0.1,resetevery=100,trunc=0.4,stall=0.6:20",
			ChaosConfig{
				LatencyMS: 1, LatencyJitterMS: 3,
				StallProb: 0.6, StallMS: 20,
				ResetProb: 0.1, ResetEvery: 100,
				TruncProb: 0.4, ShortWriteProb: 0.3, DropProb: 0.2,
				Seed: 9, HasSeed: true,
			},
			"latency=1:3,stall=0.6:20,reset=0.1,resetevery=100,trunc=0.4,short=0.3,drop=0.2,seed=9",
		},
	}
	for _, tc := range good {
		got, err := ParseChaosSpec(tc.spec)
		if err != nil {
			t.Fatalf("ParseChaosSpec(%q): %v", tc.spec, err)
		}
		if got != tc.want {
			t.Fatalf("ParseChaosSpec(%q) = %+v, want %+v", tc.spec, got, tc.want)
		}
		if s := got.String(); s != tc.canonical {
			t.Fatalf("ParseChaosSpec(%q).String() = %q, want %q", tc.spec, s, tc.canonical)
		}
	}

	bad := []struct{ spec, mention string }{
		{",", "empty entry"},
		{"reset=0.1,", "empty entry"},
		{"reset", "key=value"},
		{"volume=11", "unknown chaos key"},
		{"latency=NaN", "latency"},
		{"latency=-1", "latency"},
		{"latency=999999", "latency"},
		{"latency=1:Inf", "latency"},
		{"stall=2:10", "stall"},
		{"stall=0.1:-5", "stall"},
		{"reset=1.5", "reset"},
		{"reset=-0.1", "reset"},
		{"resetevery=-1", "resetevery"},
		{"resetevery=banana", "resetevery"},
		{"resetevery=99999999999999999999", "resetevery"},
		{"trunc=2", "trunc"},
		{"short=nope", "short"},
		{"drop=1.01", "drop"},
		{"seed=-1", "seed"},
		{"seed=pi", "seed"},
	}
	for _, tc := range bad {
		if _, err := ParseChaosSpec(tc.spec); err == nil {
			t.Fatalf("ParseChaosSpec(%q) accepted", tc.spec)
		} else if !strings.Contains(err.Error(), tc.mention) {
			t.Fatalf("ParseChaosSpec(%q) error %q does not mention %q", tc.spec, err, tc.mention)
		}
	}
}

// TestChaosConfigEnabled pins that seed alone does not arm the proxy.
func TestChaosConfigEnabled(t *testing.T) {
	if (ChaosConfig{}).Enabled() {
		t.Fatal("zero config enabled")
	}
	if (ChaosConfig{Seed: 1, HasSeed: true}).Enabled() {
		t.Fatal("seed-only config enabled")
	}
	for _, spec := range []string{"latency=1", "stall=0.1:5", "reset=0.1", "resetevery=9", "trunc=0.1", "short=0.1", "drop=0.1"} {
		c, err := ParseChaosSpec(spec)
		if err != nil {
			t.Fatal(err)
		}
		if !c.Enabled() {
			t.Fatalf("%q not enabled", spec)
		}
	}
}

// echoServer accepts connections and echoes bytes back until closed.
func echoServer(t *testing.T) net.Addr {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	t.Cleanup(func() {
		ln.Close()
		wg.Wait()
	})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer conn.Close()
				_, _ = io.Copy(conn, conn)
			}()
		}
	}()
	return ln.Addr()
}

func startChaosProxy(t *testing.T, upstream string, spec string, seed uint64) *ChaosProxy {
	t.Helper()
	p, err := NewChaosProxyFromSpec("127.0.0.1:0", upstream, spec, seed, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- p.Serve() }()
	t.Cleanup(func() {
		p.Close()
		if err := <-done; err != nil {
			t.Errorf("proxy serve: %v", err)
		}
	})
	return p
}

// TestChaosProxyTransparent pins that an empty spec forwards bytes
// unmodified in both directions.
func TestChaosProxyTransparent(t *testing.T) {
	checkGoroutines(t)
	up := echoServer(t)
	p := startChaosProxy(t, up.String(), "", 1)

	conn, err := net.Dial("tcp", p.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	msg := bytes.Repeat([]byte("0123456789abcdef"), 4096) // 64 KiB, > one pump chunk
	go func() { _, _ = conn.Write(msg) }()
	got := make([]byte, len(msg))
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadFull(conn, got); err != nil {
		t.Fatalf("read back: %v", err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("echo through transparent proxy mutated bytes")
	}
}

// TestChaosProxyResetEvery pins the deterministic reset position: the
// link dies at exactly the configured byte offset, every time, no matter
// how writes are sliced into chunks.
func TestChaosProxyResetEvery(t *testing.T) {
	checkGoroutines(t)
	up := echoServer(t)
	p := startChaosProxy(t, up.String(), "resetevery=10", 1)

	for round := 0; round < 3; round++ {
		conn, err := net.Dial("tcp", p.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		conn.SetDeadline(time.Now().Add(5 * time.Second))
		// 4-byte round trips: bytes 4 and 8 pass, the third write crosses
		// the 10-byte boundary, so only its 2-byte prefix survives before
		// the reset.
		buf := make([]byte, 4)
		survived := 0
		for i := 0; i < 10; i++ {
			if _, err := conn.Write([]byte("ping")); err != nil {
				break
			}
			if _, err := io.ReadFull(conn, buf); err != nil {
				break
			}
			survived++
		}
		conn.Close()
		if survived != 2 {
			t.Fatalf("round %d: %d echo round-trips before reset, want 2", round, survived)
		}
	}
}

// TestChaosProxyDropSplices pins that drop=1 silently discards chunks
// while keeping the connection open: the reader sees nothing.
func TestChaosProxyDropSplices(t *testing.T) {
	checkGoroutines(t)
	up := echoServer(t)
	p := startChaosProxy(t, up.String(), "drop=1", 1)

	conn, err := net.Dial("tcp", p.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("into the void")); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("read data through a drop=1 proxy")
	} else if ne, ok := err.(net.Error); !ok || !ne.Timeout() {
		t.Fatalf("want timeout (connection alive, data gone), got %v", err)
	}
}

// TestChaosProxyShortWrites pins that short=1 still delivers every byte —
// chopped framing, same content.
func TestChaosProxyShortWrites(t *testing.T) {
	checkGoroutines(t)
	up := echoServer(t)
	p := startChaosProxy(t, up.String(), "short=1", 1)

	conn, err := net.Dial("tcp", p.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	msg := bytes.Repeat([]byte("x0y1"), 2048)
	go func() { _, _ = conn.Write(msg) }()
	got := make([]byte, len(msg))
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadFull(conn, got); err != nil {
		t.Fatalf("read back: %v", err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("short-write proxy corrupted content")
	}
}

// TestChaosProxyLatencyFloor pins that latency=<ms> delays each chunk by
// at least that much.
func TestChaosProxyLatencyFloor(t *testing.T) {
	checkGoroutines(t)
	up := echoServer(t)
	p := startChaosProxy(t, up.String(), "latency=30", 1)

	conn, err := net.Dial("tcp", p.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	start := time.Now()
	if _, err := conn.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadFull(conn, make([]byte, 4)); err != nil {
		t.Fatal(err)
	}
	// Two pumps (request + reply) each add >= 30 ms.
	if elapsed := time.Since(start); elapsed < 60*time.Millisecond {
		t.Fatalf("round trip %v, want >= 60ms under latency=30", elapsed)
	}
}

// TestChaosProxyTruncResets pins that trunc=1 forwards at most a strict
// prefix and then kills the link.
func TestChaosProxyTruncResets(t *testing.T) {
	checkGoroutines(t)
	up := echoServer(t)
	p := startChaosProxy(t, up.String(), "trunc=1", 1)

	conn, err := net.Dial("tcp", p.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	msg := bytes.Repeat([]byte("z"), 4096)
	if _, err := conn.Write(msg); err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(conn) // ends when the proxy resets the link
	if len(got) >= len(msg) {
		t.Fatalf("trunc=1 delivered %d of %d bytes, want a strict prefix", len(got), len(msg))
	}
}

// TestChaosProxyHubEndToEnd drives the real hub protocol through a
// resetting proxy with reconnecting clients: traffic keeps flowing, at
// least one reconnect happens, and nothing deadlocks.
func TestChaosProxyHubEndToEnd(t *testing.T) {
	checkGoroutines(t)
	h := startHub(t, HubConfig{BlockSize: 256})
	// 256 KiB per direction per connection: every link survives a handful
	// of 16 KiB wire blocks, then dies mid-stream.
	p := startChaosProxy(t, h.Addr().String(), "resetevery=262144,seed=3", 3)
	addr := p.Addr().String()

	cfg := ReconnectConfig{BackoffBase: time.Millisecond, Sleep: func(time.Duration) {}}
	tx, err := DialTxReconnecting(addr, 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer tx.Close()
	rx, err := DialRxReconnecting(addr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer rx.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		block := make([]complex128, 1024)
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = tx.Send(block) // faults surface as reconnects; keep pumping
		}
	}()
	defer func() {
		close(stop)
		wg.Wait()
	}()

	var received int
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		block, err := rx.Recv()
		if err != nil {
			continue // ErrStreamGap or a mid-redial fault: re-acquire and go on
		}
		received += len(block)
		if received >= 1<<18 && rx.Reconnects()+tx.Reconnects() > 0 {
			return // flowed through faults, with at least one reconnect
		}
	}
	t.Fatalf("after 15s: received %d samples, tx reconnects %d, rx reconnects %d",
		received, tx.Reconnects(), rx.Reconnects())
}
