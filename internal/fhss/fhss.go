// Package fhss implements the frequency hopping spread spectrum baseline the
// paper compares against: the modulated narrow-band signal hops its carrier
// frequency over a set of sub-channels according to a seed-synchronized
// pseudo-random sequence; the receiver mixes each hop back to baseband and
// band-pass selects it. Within an equal RF footprint, FHSS achieves the same
// processing gain as DSSS by using proportionally narrower sub-channels
// (§5.3 of the paper).
package fhss

import (
	"fmt"

	"bhss/internal/dsp"
	"bhss/internal/prng"
)

// Hopper draws the seed-synchronized channel sequence shared by transmitter
// and receiver.
type Hopper struct {
	numChannels int
	src         *prng.Source
}

// NewHopper returns a channel sequence generator over numChannels channels.
func NewHopper(numChannels int, seed uint64) (*Hopper, error) {
	if numChannels < 1 {
		return nil, fmt.Errorf("fhss: need at least one channel, got %d", numChannels)
	}
	return &Hopper{numChannels: numChannels, src: prng.New(seed)}, nil
}

// Next returns the next channel index in [0, numChannels).
func (h *Hopper) Next() int { return h.src.Intn(h.numChannels) }

// NumChannels returns the channel count.
func (h *Hopper) NumChannels() int { return h.numChannels }

// ChannelFrequency returns the center frequency (cycles/sample) of channel
// idx when numChannels channels of width channelBW tile the band centered
// on DC.
//
//bhss:planphase channel-plan geometry; an out-of-range index is a programming error
func ChannelFrequency(idx, numChannels int, channelBW float64) float64 {
	if idx < 0 || idx >= numChannels {
		panic(fmt.Sprintf("fhss: channel %d out of [0, %d)", idx, numChannels))
	}
	return (float64(idx) - float64(numChannels-1)/2) * channelBW
}

// Config parameterizes an FHSS link.
type Config struct {
	// NumChannels sub-channels tile the available band.
	NumChannels int
	// ChannelBandwidth is each sub-channel's two-sided width in
	// cycles/sample; NumChannels*ChannelBandwidth must be <= 1.
	ChannelBandwidth float64
	// SamplesPerHop is the dwell per hop in samples.
	SamplesPerHop int
	// Seed synchronizes the hop sequence.
	Seed uint64
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.NumChannels < 1 {
		return fmt.Errorf("fhss: NumChannels %d", c.NumChannels)
	}
	if c.ChannelBandwidth <= 0 || float64(c.NumChannels)*c.ChannelBandwidth > 1 {
		return fmt.Errorf("fhss: %d channels of width %v exceed the band", c.NumChannels, c.ChannelBandwidth)
	}
	if c.SamplesPerHop < 1 {
		return fmt.Errorf("fhss: SamplesPerHop %d", c.SamplesPerHop)
	}
	return nil
}

// Transmitter hops a baseband burst across sub-channels.
type Transmitter struct {
	cfg    Config
	hopper *Hopper
	phase  float64
}

// NewTransmitter returns an FHSS transmitter.
func NewTransmitter(cfg Config) (*Transmitter, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	h, err := NewHopper(cfg.NumChannels, cfg.Seed)
	if err != nil {
		return nil, err
	}
	return &Transmitter{cfg: cfg, hopper: h}, nil
}

// Upconvert shifts the baseband burst hop by hop to the scheduled channels
// and returns the transmitted samples (same length as the input).
func (t *Transmitter) Upconvert(baseband []complex128) []complex128 {
	out := append([]complex128(nil), baseband...)
	for start := 0; start < len(out); start += t.cfg.SamplesPerHop {
		end := start + t.cfg.SamplesPerHop
		if end > len(out) {
			end = len(out)
		}
		ch := t.hopper.Next()
		freq := ChannelFrequency(ch, t.cfg.NumChannels, t.cfg.ChannelBandwidth)
		t.phase = dsp.Mix(out[start:end], freq, t.phase)
	}
	return out
}

// Receiver mixes hops back to baseband and band-selects them.
type Receiver struct {
	cfg    Config
	hopper *Hopper
	phase  float64
	lpf    *dsp.FIR
}

// NewReceiver returns an FHSS receiver synchronized to the transmitter's
// seed.
func NewReceiver(cfg Config) (*Receiver, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	h, err := NewHopper(cfg.NumChannels, cfg.Seed)
	if err != nil {
		return nil, err
	}
	cutoff := cfg.ChannelBandwidth / 2 * 1.2
	if cutoff >= 0.5 {
		cutoff = 0.499
	}
	return &Receiver{
		cfg:    cfg,
		hopper: h,
		lpf:    dsp.LowPassFIR(cutoff, 129, dsp.Blackman, 0),
	}, nil
}

// Downconvert undoes the hopping mixer and applies the channel-select
// low-pass filter, suppressing all energy outside the current hop's channel
// (the FHSS jamming mitigation).
func (r *Receiver) Downconvert(rx []complex128) []complex128 {
	out := append([]complex128(nil), rx...)
	for start := 0; start < len(out); start += r.cfg.SamplesPerHop {
		end := start + r.cfg.SamplesPerHop
		if end > len(out) {
			end = len(out)
		}
		ch := r.hopper.Next()
		freq := ChannelFrequency(ch, r.cfg.NumChannels, r.cfg.ChannelBandwidth)
		r.phase = dsp.Mix(out[start:end], -freq, r.phase)
	}
	return r.lpf.ApplyFast(out)
}
