package fhss

import (
	"math"
	"testing"

	"bhss/internal/dsp"
	"bhss/internal/dsss"
	"bhss/internal/jammer"
	"bhss/internal/prng"
	"bhss/internal/pulse"
	"bhss/internal/spectral"
)

func testConfig() Config {
	return Config{NumChannels: 8, ChannelBandwidth: 0.1, SamplesPerHop: 2048, Seed: 7}
}

func narrowBurst(nChips, sps int, seed uint64) ([]complex128, []complex128) {
	src := prng.New(seed)
	const s = 0.7071067811865476
	chips := make([]complex128, nChips)
	for i := range chips {
		chips[i] = complex(src.ChipBit()*s, src.ChipBit()*s)
	}
	return chips, pulse.Modulate(chips, pulse.Taps(pulse.HalfSine, sps))
}

func TestHopperDeterminism(t *testing.T) {
	a, err := NewHopper(16, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := NewHopper(16, 3)
	for i := 0; i < 500; i++ {
		if a.Next() != b.Next() {
			t.Fatalf("hop sequences diverged at %d", i)
		}
	}
	if a.NumChannels() != 16 {
		t.Fatal("NumChannels accessor")
	}
	if _, err := NewHopper(0, 1); err == nil {
		t.Fatal("zero channels should error")
	}
}

func TestChannelFrequencySymmetric(t *testing.T) {
	// 8 channels of width 0.1 tile [-0.35 -0.25 ... +0.35].
	f0 := ChannelFrequency(0, 8, 0.1)
	f7 := ChannelFrequency(7, 8, 0.1)
	if math.Abs(f0+0.35) > 1e-12 || math.Abs(f7-0.35) > 1e-12 {
		t.Fatalf("edge channels at %v, %v", f0, f7)
	}
	// Adjacent spacing equals the channel bandwidth.
	for i := 1; i < 8; i++ {
		d := ChannelFrequency(i, 8, 0.1) - ChannelFrequency(i-1, 8, 0.1)
		if math.Abs(d-0.1) > 1e-12 {
			t.Fatalf("spacing %v at channel %d", d, i)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range channel should panic")
		}
	}()
	ChannelFrequency(8, 8, 0.1)
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{NumChannels: 0, ChannelBandwidth: 0.1, SamplesPerHop: 10},
		{NumChannels: 8, ChannelBandwidth: 0.2, SamplesPerHop: 10}, // 1.6 > 1
		{NumChannels: 8, ChannelBandwidth: 0, SamplesPerHop: 10},
		{NumChannels: 8, ChannelBandwidth: 0.1, SamplesPerHop: 0},
	}
	for i, c := range bad {
		if c.Validate() == nil {
			t.Fatalf("config %d should be invalid", i)
		}
		if _, err := NewTransmitter(c); err == nil {
			t.Fatalf("transmitter %d should reject config", i)
		}
		if _, err := NewReceiver(c); err == nil {
			t.Fatalf("receiver %d should reject config", i)
		}
	}
}

func TestRoundTripRecoversChips(t *testing.T) {
	cfg := testConfig()
	const sps = 16 // chip bandwidth 1/16 < channel width 0.1
	chips, baseband := narrowBurst(4096, sps, 1)

	tx, err := NewTransmitter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rx, err := NewReceiver(cfg)
	if err != nil {
		t.Fatal(err)
	}
	air := tx.Upconvert(baseband)
	back := rx.Downconvert(air)

	got := pulse.Demodulate(back, pulse.Taps(pulse.HalfSine, sps), 0)
	errs := 0
	for i := range got {
		if (real(got[i]) > 0) != (real(chips[i]) > 0) || (imag(got[i]) > 0) != (imag(chips[i]) > 0) {
			errs++
		}
	}
	if frac := float64(errs) / float64(len(got)); frac > 0.01 {
		t.Fatalf("chip error rate %v after FHSS round trip", frac)
	}
}

func TestUpconvertSpreadsSpectrum(t *testing.T) {
	cfg := testConfig()
	_, baseband := narrowBurst(8192, 16, 2)
	tx, _ := NewTransmitter(cfg)
	air := tx.Upconvert(baseband)

	psdBase, err := spectral.Welch(512).PSD(baseband)
	if err != nil {
		t.Fatal(err)
	}
	psdAir, err := spectral.Welch(512).PSD(air)
	if err != nil {
		t.Fatal(err)
	}
	bwBase := spectral.OccupiedBandwidth(psdBase, 0.95)
	bwAir := spectral.OccupiedBandwidth(psdAir, 0.95)
	if bwAir < 3*bwBase {
		t.Fatalf("hopping should spread the spectrum: base %v, air %v", bwBase, bwAir)
	}
}

func TestNarrowbandJammerHitsOnlySomeHops(t *testing.T) {
	// A tone parked on one channel: the channel-select filter should
	// remove it whenever the link is on other channels, so the chip error
	// rate stays far below 50% even with a jammer 10 dB above the signal.
	cfg := testConfig()
	const sps = 16
	chips, baseband := narrowBurst(16384, sps, 3)

	tx, _ := NewTransmitter(cfg)
	rx, _ := NewReceiver(cfg)
	air := tx.Upconvert(baseband)

	jam, err := jammer.NewTone(ChannelFrequency(3, 8, 0.1), 10)
	if err != nil {
		t.Fatal(err)
	}
	j := jam.Emit(len(air))
	mixed := make([]complex128, len(air))
	for i := range mixed {
		mixed[i] = air[i] + j[i]
	}
	back := rx.Downconvert(mixed)
	got := pulse.Demodulate(back, pulse.Taps(pulse.HalfSine, sps), 0)
	errs := 0
	for i := range got {
		if (real(got[i]) > 0) != (real(chips[i]) > 0) || (imag(got[i]) > 0) != (imag(chips[i]) > 0) {
			errs++
		}
	}
	frac := float64(errs) / float64(len(got))
	// Roughly 1/8 of hops are hit; those chips may be lost, the rest fine.
	if frac > 0.25 {
		t.Fatalf("chip error rate %v; FHSS should protect off-channel hops", frac)
	}
	if frac == 0 {
		t.Log("note: even on-channel hops survived (tone vs QPSK margin)")
	}
}

func TestDownconvertSuppressesOutOfChannelPower(t *testing.T) {
	cfg := testConfig()
	rx, _ := NewReceiver(cfg)
	// Feed pure wide-band noise: after channel-select filtering the power
	// must drop to roughly the channel fraction of the band.
	noise, _ := jammer.NewBandlimited(1, 1, 4)
	in := noise.Emit(1 << 15)
	out := rx.Downconvert(in)
	pin := dsp.Power(in)
	pout := dsp.Power(out[1024:])
	ratio := pout / pin
	if ratio > 0.25 {
		t.Fatalf("channel filter kept %v of wideband power, want ~0.12", ratio)
	}
}

// §5.3 of the paper: within an equal RF footprint, FHSS achieves the same
// jamming resistance as DSSS by using narrower sub-channels — a matched
// full-band jammer degrades both by (roughly) the processing gain only.
// This framed-link test runs real symbols through the FHSS layer and checks
// that (a) a full-band jammer at the processing-gain limit kills it, and
// (b) the same link survives a jammer confined to one sub-channel.
func TestFramedFHSSJammingResistance(t *testing.T) {
	cfg := Config{NumChannels: 8, ChannelBandwidth: 0.1, SamplesPerHop: 512, Seed: 99}
	const sps = 16

	run := func(jamBW, jamPower float64, jamFreq float64, tone bool) float64 {
		sp := dsss.NewSpreader(7)
		de := dsss.NewDespreader(7)
		src := prng.New(3)
		symbols := make([]int, 64)
		for i := range symbols {
			symbols[i] = src.Intn(16)
		}
		chips, err := sp.Spread(symbols)
		if err != nil {
			t.Fatal(err)
		}
		baseband := pulse.Modulate(chips, pulse.Taps(pulse.HalfSine, sps))
		tx, _ := NewTransmitter(cfg)
		rx, _ := NewReceiver(cfg)
		air := tx.Upconvert(baseband)
		var jam []complex128
		if tone {
			j, _ := jammer.NewTone(jamFreq, jamPower)
			jam = j.Emit(len(air))
		} else {
			j, _ := jammer.NewBandlimited(jamBW, jamPower, 5)
			jam = j.Emit(len(air))
		}
		for i := range air {
			air[i] += jam[i]
		}
		back := rx.Downconvert(air)
		got := pulse.Demodulate(back, pulse.Taps(pulse.HalfSine, sps), 0)
		decoded, _, err := de.Despread(got[:len(chips)])
		if err != nil {
			t.Fatal(err)
		}
		errs := 0
		for i := range symbols {
			if decoded[i] != symbols[i] {
				errs++
			}
		}
		return float64(errs) / float64(len(symbols))
	}

	// Full-band jammer at 16 dB above the signal: beyond the ~9+12 dB
	// combined gain of despreading and channel selection, the link dies.
	if ser := run(1.0, 300, 0, false); ser < 0.3 {
		t.Fatalf("full-band overwhelming jammer SER %v, want high", ser)
	}
	// The same power confined to one sub-channel: 7 of 8 hops are clean
	// and the despreader rides over the rest.
	if ser := run(0, 300, ChannelFrequency(2, 8, 0.1), true); ser > 0.3 {
		t.Fatalf("single-channel jammer SER %v, want low", ser)
	}
	// A moderate full-band jammer within the processing budget passes.
	if ser := run(1.0, 3, 0, false); ser > 0.02 {
		t.Fatalf("moderate full-band jammer SER %v, want ~0", ser)
	}
}
