// Package alloctest is the runtime half of the zero-alloc hot-path
// contract. The static hotpathalloc analyzer (internal/lint) flags direct
// allocations in //bhss:hotpath functions at review time; the AssertZero
// helper cross-validates whole call trees at test time, catching allocation
// through callees, interface conversions and hidden growth that per-function
// static analysis deliberately leaves to the runtime.
package alloctest

import "testing"

// AssertZero runs f once to reach steady state (first calls may legitimately
// grow scratch buffers and warm caches), then asserts f performs zero heap
// allocations per call.
func AssertZero(t *testing.T, name string, f func()) {
	t.Helper()
	f()
	if avg := testing.AllocsPerRun(100, f); avg != 0 {
		t.Errorf("%s: %v allocs/op in steady state, want 0", name, avg)
	}
}
