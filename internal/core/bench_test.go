package core

import (
	"math"
	"testing"
)

// BenchmarkFilterDesignCache measures the steady-state cost of obtaining the
// excision filter for a stationary jammer: after the first design, every hop
// must hit the quantized-fingerprint cache and allocate nothing.
func BenchmarkFilterDesignCache(b *testing.B) {
	r, err := NewReceiver(DefaultConfig(1))
	if err != nil {
		b.Fatal(err)
	}
	sps := r.spsTab[len(r.spsTab)-1]
	const k = 256
	shape := r.pulseShapeGain(sps, k)
	raw := make([]float64, k)
	for i := range raw {
		// Flat noise floor with mild deterministic scatter plus a strong
		// narrow jammer — the canonical excision scenario.
		raw[i] = 1 + 0.05*math.Sin(float64(7*i))
	}
	raw[40], raw[41], raw[42] = 900, 1000, 900
	ctx := hopFilterCtx{raw: raw, shape: shape, refN: 1}
	if f, err := r.notchFilter(sps, ctx); err != nil || f == nil {
		b.Fatalf("no filter designed: %v", err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if f, err := r.notchFilter(sps, ctx); err != nil || f == nil {
			b.Fatalf("no filter: %v", err)
		}
	}
}

// BenchmarkFilterDesignUncached designs the same filter from scratch each
// time, for comparison against the cached path.
func BenchmarkFilterDesignUncached(b *testing.B) {
	r, err := NewReceiver(DefaultConfig(1))
	if err != nil {
		b.Fatal(err)
	}
	sps := r.spsTab[len(r.spsTab)-1]
	const k = 256
	shape := r.pulseShapeGain(sps, k)
	raw := make([]float64, k)
	for i := range raw {
		raw[i] = 1 + 0.05*math.Sin(float64(7*i))
	}
	raw[40], raw[41], raw[42] = 900, 1000, 900
	ctx := hopFilterCtx{raw: raw, shape: shape, refN: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clear(r.notchCache)
		if f, err := r.notchFilter(sps, ctx); err != nil || f == nil {
			b.Fatalf("no filter: %v", err)
		}
	}
}
