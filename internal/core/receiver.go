package core

import (
	"errors"
	"fmt"
	"math"
	"math/cmplx"

	"bhss/internal/dsp"
	"bhss/internal/dsp/simd"
	"bhss/internal/dsss"
	"bhss/internal/frame"
	"bhss/internal/hop"
	"bhss/internal/obs"
	"bhss/internal/pulse"
	"bhss/internal/spectral"
	"bhss/internal/tracking"
)

// FilterDecision names the control logic's choice for one hop (§4.2).
type FilterDecision int

const (
	// FilterNone: jammer absent, weak, or bandwidth-matched — despreading
	// alone must carry the hop (Figure 3).
	FilterNone FilterDecision = iota
	// FilterLowPass: the jammer is wider than the signal; suppress
	// everything outside the signal band (Figure 2, eq. (4)).
	FilterLowPass
	// FilterExcision: the jammer is narrower than the signal; whiten the
	// spectrum with the PSD-reciprocal filter (Figure 1, eq. (3)).
	FilterExcision
)

// String names the decision.
func (d FilterDecision) String() string {
	switch d {
	case FilterNone:
		return "none"
	case FilterLowPass:
		return "low-pass"
	case FilterExcision:
		return "excision"
	default:
		return "unknown"
	}
}

// HopReport is the receiver's diagnostic record for one hop.
type HopReport struct {
	BandwidthMHz   float64
	SamplesPerChip int
	Decision       FilterDecision
	// InBandPower and OutBandPower summarize the PSD estimate relative
	// to the hop's signal band.
	InBandPower, OutBandPower float64
	// PeakToMedian is the in-band narrow-band interference indicator.
	PeakToMedian float64
}

// RxStats aggregates the diagnostics of one decoded burst.
type RxStats struct {
	Hops []HopReport
	// MeanMetric is the average winning-correlator output across symbols
	// (16 is a clean match).
	MeanMetric float64
	// AcquisitionOffset is the detected burst start (PreambleSync only).
	AcquisitionOffset int
	// CFO is the estimated carrier offset in cycles/sample
	// (PreambleSync only).
	CFO float64
	// CarrierFreq is the residual carrier offset tracked by the Costas
	// loop at the end of the burst, in cycles/sample (TrackingLoops only).
	CarrierFreq float64
	// CarrierLock is the carrier loop's final lock quality in [0, 1]
	// (tracking.Costas.LockQuality; TrackingLoops only). CarrierLocked is
	// CarrierLock compared against tracking.DefaultLockThreshold — the
	// receiver's own verdict on whether the constellation was stable.
	CarrierLock   float64
	CarrierLocked bool
}

// Reset clears the stats for reuse, keeping the Hops backing array so a
// recycled RxStats records the next burst without reallocating.
func (s *RxStats) Reset() {
	s.Hops = s.Hops[:0]
	s.MeanMetric = 0
	s.AcquisitionOffset = 0
	s.CFO = 0
	s.CarrierFreq = 0
	s.CarrierLock = 0
	s.CarrierLocked = false
}

// Decode errors beyond those of package frame.
var (
	// ErrTruncatedBurst flags fewer samples than one hop of one symbol.
	ErrTruncatedBurst = errors.New("core: burst shorter than one symbol")
	// ErrNoPreamble flags a failed acquisition in PreambleSync mode.
	ErrNoPreamble = errors.New("core: preamble not found")
	// ErrNonFiniteInput flags NaN or Inf samples in the capture. They are
	// rejected up front: one NaN entering the PSD estimator's FFT would
	// otherwise smear across every bin and silently corrupt the filter
	// decision rather than fail loudly.
	ErrNonFiniteInput = errors.New("core: burst contains non-finite samples")
)

// Receiver is the BHSS receiver of Figure 6.
type Receiver struct {
	cfg    Config
	dist   hop.Distribution
	spsTab []int
	frame  uint64

	pulseCache map[int][]float64
	lpfCache   map[int]*dsp.FIR
	shapeCache map[[2]int][]float64
	// welchCache holds one reusable PSD estimator per segment length, so
	// per-hop spectral analysis allocates nothing in steady state.
	welchCache map[int]*spectral.Reusable
	// notchCache memoizes excision filter designs per (sps, FFT size,
	// quantized PSD fingerprint): successive hops facing a stationary
	// jammer reuse both the taps and their pre-computed frequency-domain
	// transform instead of redesigning per hop.
	notchCache map[notchKey]*dsp.FIR

	// met is the optional observer; nil skips all recording. Recording
	// never touches sample data, so decode output is identical either way.
	met *obs.Pipeline
	// stats is the reusable per-burst diagnostic record DecodeBurst hands
	// out, valid until the next DecodeBurst call.
	stats RxStats

	scratch rxScratch

	// pipe is the optional concurrent decode pipeline (EnablePipeline);
	// nil selects the serial hop loop.
	pipe *rxPipeline
}

// SetObserver attaches a metrics pipeline to the receiver (nil detaches).
// Existing cached Welch estimators are rewired so PSD metrics flow
// regardless of attachment order.
func (r *Receiver) SetObserver(p *obs.Pipeline) {
	r.met = p
	for _, e := range r.welchCache {
		if p != nil {
			e.SetObserver(&p.PSD)
		} else {
			e.SetObserver(nil)
		}
	}
}

// notchKey identifies one cached excision design. The fingerprint hashes
// which bins exceed the shaped target and by how much (quantized to
// quarter-octaves relative to the reference level), which is exactly the
// information the notch design depends on.
type notchKey struct {
	sps, k int
	fp     uint64
}

// maxNotchCache bounds the design cache; a jammer agile enough to produce
// more distinct fingerprints than this defeats caching anyway, so the whole
// cache is dropped and rebuilt.
const maxNotchCache = 64

// rxScratch holds the working buffers DecodeBurst reuses across hops and
// bursts, keeping the steady-state decode path off the allocator. Every
// field is overwritten by the next hop/burst; views must not outlive a call
// (enforced by the scratchalias analyzer).
type rxScratch struct {
	//bhss:scratch
	raw, psd, detect []float64 // PSD estimate and its two smoothings
	//bhss:scratch
	norm []float64 // shape-normalized in-band bins
	//bhss:scratch
	target, qpsd []float64 // notch target and quantized PSD
	//bhss:scratch
	filtered []complex128 // filterHop output
	//bhss:scratch
	tracked []complex128 // carrier-loop working copy
	//bhss:scratch
	chips []complex128 // accumulated chip estimates
	//bhss:scratch
	corr []complex128 // acquisition correlation
}

// NewReceiver returns a receiver for the configuration. Construct it from
// the same Config as the transmitter.
func NewReceiver(cfg Config) (*Receiver, error) {
	dist, spsTab, err := cfg.normalize()
	if err != nil {
		return nil, err
	}
	r := &Receiver{
		cfg: cfg, dist: dist, spsTab: spsTab,
		pulseCache: map[int][]float64{},
		lpfCache:   map[int]*dsp.FIR{},
		shapeCache: map[[2]int][]float64{},
		welchCache: map[int]*spectral.Reusable{},
		notchCache: map[notchKey]*dsp.FIR{},
	}
	if cfg.EnableFilter {
		// "We pre-compute the taps of all possible low-pass filters in
		// advance" (§6.1) — including their frequency-domain transforms,
		// so the first jammed hop pays no design cost either.
		for _, sps := range spsTab {
			r.lowPass(sps).Convolver()
		}
	}
	return r, nil
}

// welch returns the cached reusable Welch estimator for segment length k.
func (r *Receiver) welch(k int) (*spectral.Reusable, error) {
	if e, ok := r.welchCache[k]; ok {
		if r.met != nil {
			r.met.Cache.WelchHit.Inc()
		}
		return e, nil
	}
	e, err := spectral.Welch(k).Reusable()
	if err != nil {
		return nil, err
	}
	if r.met != nil {
		r.met.Cache.WelchMiss.Inc()
		e.SetObserver(&r.met.PSD)
	}
	r.welchCache[k] = e
	return e, nil
}

// resizeFloats returns a slice of length n, reusing s's storage when it is
// large enough.
func resizeFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// FrameCounter returns the number of frames consumed so far.
func (r *Receiver) FrameCounter() uint64 { return r.frame }

// SkipFrame advances the frame counter without decoding (call when a frame
// is known to be lost before reaching the receiver, to stay in lockstep).
func (r *Receiver) SkipFrame() { r.frame++ }

func (r *Receiver) pulseTaps(sps int) []float64 {
	if g, ok := r.pulseCache[sps]; ok {
		return g
	}
	g := pulse.Taps(r.cfg.Shape, sps)
	r.pulseCache[sps] = g
	return g
}

// lowPass returns the cached channel-select filter for a hop bandwidth.
func (r *Receiver) lowPass(sps int) *dsp.FIR {
	if f, ok := r.lpfCache[sps]; ok {
		if r.met != nil {
			r.met.Cache.LowPassHit.Inc()
		}
		return f
	}
	if r.met != nil {
		r.met.Cache.LowPassMiss.Inc()
	}
	// Keep the half-sine main lobe (~1.5/sps two-sided) while cutting the
	// out-of-band jammer. Sharper transitions need more taps; the tap
	// budget mirrors the paper's hardware cap.
	cutoff := 0.75 / float64(sps)
	if cutoff >= 0.5 {
		cutoff = 0.499
	}
	f := dsp.LowPassForAttenuation(cutoff, 60, cutoff/2, r.cfg.FilterTaps)
	r.lpfCache[sps] = f
	return f
}

// hopFilterCtx carries what estimateHop learned to filterHop.
type hopFilterCtx struct {
	raw   []float64 // raw Welch PSD estimate (receiver scratch)
	shape []float64 // expected signal spectrum, unit peak, floored
	refN  float64   // shape-normalized in-band signal level
}

// estimateHop runs the spectral analysis of §4.2 for one hop segment and
// returns the filter decision plus the design context.
//
//bhss:hotpath
//bhss:scratchview ctx.raw aliases receiver scratch, valid until the next estimateHop call
func (r *Receiver) estimateHop(seg []complex128, sps int) (FilterDecision, hopFilterCtx, HopReport) {
	if r.met != nil {
		// Open-coded defer (Go ≥1.14): no allocation, so the hot path stays
		// at 0 allocs/op with recording enabled.
		defer r.met.RecordStage(obs.StageRxEstimate, obs.Start())
	}
	report := HopReport{SamplesPerChip: sps}
	// Resolution adapts to the hop: aim for ~32 bins across the signal
	// band (in-band bins = K * 1.5/sps) so an in-band notch can be much
	// narrower than the band, bounded by the configured cap, the filter
	// tap budget (the notch has K-1 taps) and the hop length.
	k := dsp.NextPow2(32 * sps)
	if k < 256 {
		k = 256
	}
	if k > r.cfg.PSDSegment {
		k = r.cfg.PSDSegment
	}
	for k > r.cfg.FilterTaps+1 {
		k >>= 1
	}
	// Insist on at least ~3 half-overlapped Welch segments: a single
	// periodogram's per-bin scatter (even smoothed) is indistinguishable
	// from narrow-band structure.
	for k > len(seg)/2 {
		k >>= 1
	}
	if k < 16 {
		return FilterNone, hopFilterCtx{}, report
	}
	//bhss:allow(hotpathfacts) welch estimators are memoized per resolution k; the construction allocates only on first sight of a k
	est, err := r.welch(k)
	if err != nil {
		return FilterNone, hopFilterCtx{}, report
	}
	//bhss:allow(hotpathfacts) amortized growth: resizeFloats reuses the scratch storage once warm
	r.scratch.raw = resizeFloats(r.scratch.raw, k)
	raw := r.scratch.raw
	if err := est.PSDInto(raw, seg); err != nil {
		return FilterNone, hopFilterCtx{}, report
	}
	// Light smoothing tames the per-bin scatter of short-capture
	// periodograms without diluting a narrow jammer's peak. The excision
	// *design* smooths even less so the notch stays as narrow as the
	// jammer (notchFilter runs it on demand, so unjammed hops skip it).
	// A spurious excision triggered by residual scatter is benign: the
	// notch only touches bins far above the expected signal level.
	r.scratch.detect = resizeFloats(r.scratch.detect, k)
	detect := r.scratch.detect
	dsp.SmoothPSDInto(detect, raw, 5)
	signalBW := 1.5 / float64(sps) // half-sine main lobe, two-sided
	if signalBW > 1 {
		signalBW = 1
	}
	// Band powers integrate many raw bins and are robust without
	// smoothing; smoothing would smear a very narrow signal beyond its
	// own band and fake out-of-band power.
	inBand := spectral.BandPower(raw, signalBW)
	total := spectral.BandPower(raw, 1)
	outBand := total - inBand
	report.InBandPower = inBand
	report.OutBandPower = outBand

	// Shape-normalized narrow-band indicator: dividing the in-band PSD by
	// the known pulse spectrum |G(f)|² flattens the signal's own spectral
	// peak, so any residual structure is interference. The reference is a
	// low quantile of the normalized bins — still signal-anchored when
	// the jammer covers up to ~half of the band (the eq. (11) excision
	// region extends almost to the matched bandwidth).
	//bhss:allow(hotpathfacts) pulse-shape spectra are memoized per (sps, k); allocates only on cache miss
	shape := r.pulseShapeGain(sps, k)
	normBins := r.scratch.norm[:0]
	half := signalBW / 2
	// For power-of-two k the reciprocal multiply rounds identically to the
	// per-bin division it replaces (1/k is an exact power of two).
	pow2 := k&(k-1) == 0
	invK := 1 / float64(k)
	for i, p := range detect {
		var f float64
		if pow2 {
			f = float64(i) * invK
		} else {
			f = float64(i) / float64(k)
		}
		if f >= 0.5 {
			f -= 1
		}
		if f >= -half && f <= half {
			normBins = append(normBins, p/shape[i])
		}
	}
	r.scratch.norm = normBins
	// Quickselect returns the same floor(q·n) order statistic the previous
	// SortFloats + QuantileSorted pair produced, in O(n) instead of
	// O(n log n); the peak is a single scan. The scratch is receiver-owned,
	// so the partial reordering is harmless.
	refN := dsp.QuantileSelect(normBins, signalQuantile)
	report.PeakToMedian = ratioOrInf(dsp.MaxFloats(normBins), refN)

	ctx := hopFilterCtx{raw: raw, shape: shape, refN: refN}
	switch {
	case signalBW < 1 && outBand > r.cfg.WidebandExcessRatio*inBand:
		report.Decision = FilterLowPass
		return FilterLowPass, ctx, report
	case report.PeakToMedian > r.cfg.ExcisionPeakRatio:
		report.Decision = FilterExcision
		return FilterExcision, ctx, report
	default:
		report.Decision = FilterNone
		return FilterNone, ctx, report
	}
}

// pulseShapeGain returns (and caches) the expected power spectrum of the
// hop's chip pulse over k FFT bins: |G(f)|² with unit peak, floored at 5%
// so out-of-band bins keep a usable excision target.
func (r *Receiver) pulseShapeGain(sps, k int) []float64 {
	key := [2]int{sps, k}
	if g, ok := r.shapeCache[key]; ok {
		if r.met != nil {
			r.met.Cache.ShapeHit.Inc()
		}
		return g
	}
	if r.met != nil {
		r.met.Cache.ShapeMiss.Inc()
	}
	taps := r.pulseTaps(sps)
	buf := make([]complex128, k)
	for i, t := range taps {
		buf[i%k] += complex(t, 0)
	}
	dsp.FFT(buf)
	shape := make([]float64, k)
	var peak float64
	for i, v := range buf {
		shape[i] = real(v)*real(v) + imag(v)*imag(v)
		if shape[i] > peak {
			peak = shape[i]
		}
	}
	if peak == 0 {
		peak = 1
	}
	const floor = 0.05
	for i := range shape {
		shape[i] /= peak
		if shape[i] < floor {
			shape[i] = floor
		}
	}
	r.shapeCache[key] = shape
	return shape
}

// inBandBins extracts the PSD bins within the two-sided band bw (un-shifted
// ordering in, contiguous slice out).
func inBandBins(psd []float64, bw float64) []float64 {
	k := len(psd)
	half := bw / 2
	out := make([]float64, 0, k)
	for i, p := range psd {
		f := float64(i) / float64(k)
		if f >= 0.5 {
			f -= 1
		}
		if f >= -half && f <= half {
			out = append(out, p)
		}
	}
	return out
}

// filterHop applies the decided filter to the hop's samples. The returned
// slice aliases receiver scratch that stays valid until the next hop is
// filtered.
//
//bhss:hotpath
//bhss:scratchview output is valid until the next filterHop call
func (r *Receiver) filterHop(seg []complex128, sps int, decision FilterDecision, ctx hopFilterCtx) ([]complex128, error) {
	out, err := r.filterHopInto(r.scratch.filtered[:0], seg, sps, decision, ctx)
	if err != nil {
		return nil, err
	}
	if decision != FilterNone {
		r.scratch.filtered = out
	}
	return out, nil
}

// filterHopInto is filterHop writing into dst's storage, for callers (the
// decode pipeline) that own per-slot output buffers instead of sharing the
// receiver scratch. FilterNone returns seg itself, untouched.
//
//bhss:hotpath
func (r *Receiver) filterHopInto(dst, seg []complex128, sps int, decision FilterDecision, ctx hopFilterCtx) ([]complex128, error) {
	if r.met != nil && decision != FilterNone {
		defer r.met.RecordStage(obs.StageRxFilter, obs.Start())
	}
	switch decision {
	case FilterLowPass:
		//bhss:allow(hotpathfacts) FIR designs and their overlap-save convolvers are memoized per sps; allocates only on cache miss
		return r.lowPass(sps).Convolver().ApplySame(dst, seg), nil
	case FilterExcision:
		//bhss:allow(hotpathfacts) notch designs are memoized by quantized-spectrum hash (scratch grows amortized); allocates only on cache miss
		f, err := r.notchFilter(sps, ctx)
		if err != nil {
			return nil, err
		}
		return f.Convolver().ApplySame(dst, seg), nil
	default:
		return seg, nil
	}
}

// notchFilter returns the excision filter for the hop: a notch-floor
// variant of the eq. (3) whitening filter with a shaped target — each bin
// is allowed the signal's expected level at that frequency (refN · |G(f)|²)
// and anything above is jamming, pushed well below it.
//
// Designs are memoized: the over-target bins are quantized to
// quarter-octaves relative to the reference level and hashed, so successive
// hops facing a stationary jammer hit the cache and reuse both the taps and
// their frequency-domain transform. The quantized spectrum (not the raw
// one) also feeds the design on a miss, making cached and freshly designed
// filters identical by construction. The notch magnitude and the threshold
// test depend only on the bin/reference power *ratio*, so a cached design
// remains exact when the absolute signal level changes between hops.
func (r *Receiver) notchFilter(sps int, ctx hopFilterCtx) (*dsp.FIR, error) {
	k := len(ctx.raw)
	thr := r.cfg.ExcisionPeakRatio
	// Design-grade smoothing: lighter than the detection smoothing so the
	// notch stays as narrow as the jammer.
	r.scratch.psd = resizeFloats(r.scratch.psd, k)
	psd := r.scratch.psd
	dsp.SmoothPSDInto(psd, ctx.raw, 3)
	r.scratch.target = resizeFloats(r.scratch.target, k)
	target := r.scratch.target
	for i := range target {
		target[i] = ctx.refN * ctx.shape[i]
	}
	if ctx.refN <= 0 {
		// Degenerate reference (no measurable signal): nothing to anchor
		// a fingerprint on, design directly from the estimate.
		if r.met != nil {
			r.met.Cache.NotchMiss.Inc()
			defer r.met.RecordStage(obs.StageRxFilterDesign, obs.Start())
		}
		return dsp.ShapedNotchFIR(psd, target, thr)
	}
	r.scratch.qpsd = resizeFloats(r.scratch.qpsd, k)
	qpsd := r.scratch.qpsd
	const (
		fnvOffset = 0xcbf29ce484222325
		fnvPrime  = 0x100000001b3
	)
	fp := uint64(fnvOffset)
	for i, p := range psd {
		qpsd[i] = 0 // below target: passes with unit gain either way
		if p > thr*target[i] {
			e := math.Round(4 * math.Log2(p/ctx.refN))
			qpsd[i] = ctx.refN * math.Exp2(e/4)
			fp = (fp ^ uint64(i)) * fnvPrime
			fp = (fp ^ uint64(int64(e)+1024)) * fnvPrime
		}
	}
	key := notchKey{sps: sps, k: k, fp: fp}
	if f, ok := r.notchCache[key]; ok {
		if r.met != nil {
			r.met.Cache.NotchHit.Inc()
		}
		return f, nil
	}
	var dsw obs.Stopwatch
	if r.met != nil {
		r.met.Cache.NotchMiss.Inc()
		dsw = obs.Start()
	}
	f, err := dsp.ShapedNotchFIR(qpsd, target, thr)
	if r.met != nil {
		r.met.RecordStage(obs.StageRxFilterDesign, dsw)
	}
	if err != nil {
		return nil, err
	}
	if len(r.notchCache) >= maxNotchCache {
		if r.met != nil {
			r.met.Cache.NotchEvict.Add(int64(len(r.notchCache)))
		}
		clear(r.notchCache)
	}
	r.notchCache[key] = f
	return f, nil
}

// signalQuantile is the in-band PSD quantile used as the "signal level"
// reference for excision detection and notch design. A value below 0.5
// keeps the reference anchored on the un-jammed bins even when the jammer
// occupies a large fraction of the band.
const signalQuantile = 0.35

// quantileLevel returns the q-quantile of xs (0 for empty input) without
// modifying it. Hot paths that own their slice should sort once with
// dsp.SortFloats and read dsp.QuantileSorted directly, as estimateHop does.
func quantileLevel(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	dsp.SortFloats(cp)
	return dsp.QuantileSorted(cp, q)
}

// peakToQuantile returns max(xs) / quantileLevel(xs, q) (0 when empty,
// +Inf when the quantile is zero but the peak is not).
func peakToQuantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var peak float64
	for _, v := range xs {
		if v > peak {
			peak = v
		}
	}
	return ratioOrInf(peak, quantileLevel(xs, q))
}

// peakOverRef is peakToQuantile for an already-sorted slice with the
// reference level in hand: the peak is the last element.
func peakOverRef(sorted []float64, ref float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	return ratioOrInf(sorted[len(sorted)-1], ref)
}

// ratioOrInf returns peak/ref, mapping a zero reference to 0 (when the peak
// is zero too) or +Inf.
func ratioOrInf(peak, ref float64) float64 {
	if ref == 0 {
		if peak == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return peak / ref
}

// DecodeBurst decodes one burst whose samples begin exactly at the frame
// start (IdealSync) or contain it (PreambleSync). It advances the frame
// counter whether or not decoding succeeds, keeping the seed streams in
// lockstep with the transmitter. The returned stats are valid even when an
// error is returned.
//
// The stats are a reusable receiver-owned record: they stay valid until the
// next DecodeBurst call and must not be retained across calls. Callers that
// manage their own record use DecodeBurstInto.
func (r *Receiver) DecodeBurst(samples []complex128) ([]byte, *RxStats, error) {
	r.stats.Reset()
	payload, err := r.DecodeBurstInto(&r.stats, samples)
	return payload, &r.stats, err
}

// DecodeBurstInto is DecodeBurst with a caller-supplied stats record, for
// callers that pool or retain diagnostics. stats is overwritten (call Reset
// to also recycle its Hops storage); it is filled in even when an error is
// returned.
func (r *Receiver) DecodeBurstInto(stats *RxStats, samples []complex128) ([]byte, error) {
	if r.met == nil {
		return r.decodeBurst(stats, samples)
	}
	sw := obs.Start()
	r.met.Rx.Bursts.Inc()
	r.met.Rx.Samples.Add(int64(len(samples)))
	payload, err := r.decodeBurst(stats, samples)
	r.met.RecordStage(obs.StageRxDecode, sw)
	if err != nil {
		r.met.Rx.Errors.Inc()
	} else {
		r.met.Rx.Decoded.Inc()
	}
	return payload, err
}

// The carrier loop persists across hops (Figure 6 places it after the
// filters); its bandwidth is retuned per hop so the per-chip dynamics stay
// constant across samples-per-chip changes. It must *acquire* the channel
// phase — the prototype's free-running oscillators give an arbitrary offset —
// which is exactly what strong unfiltered jamming prevents.
// A fixed per-sample loop bandwidth: wide enough to track the residual
// carrier offset of free-running oscillators, narrow enough to stay quiet on
// a clean channel. Under jamming the loop's decision-directed error turns
// into noise and the tracked carrier walks away — the vulnerability the
// pre-despreading filters protect.
const carrierLoopBW = 0.0005

// maxTrackedCFO bounds the coarse acquisition search (cycles/sample).
const maxTrackedCFO = 2e-4

func (r *Receiver) decodeBurst(stats *RxStats, samples []complex128) ([]byte, error) {
	fr := r.frame
	r.frame++

	if !simd.AllFinite(samples) {
		return nil, ErrNonFiniteInput
	}

	if r.cfg.Sync == PreambleSync {
		var asw obs.Stopwatch
		if r.met != nil {
			asw = obs.Start()
		}
		offset, cfo, phase, err := r.acquire(samples, fr)
		if r.met != nil {
			r.met.RecordStage(obs.StageRxAcquire, asw)
		}
		if err != nil {
			// No burst in this capture: give the frame counter back so a
			// streaming receiver stays in lockstep with the transmitter
			// while it scans for the next burst.
			r.frame = fr
			return nil, err
		}
		stats.AcquisitionOffset = offset
		stats.CFO = cfo
		aligned := append([]complex128(nil), samples[offset:]...)
		dsp.Mix(aligned, -cfo, -phase)
		samples = aligned
	}

	sched, err := hop.NewSchedule(r.dist, deriveSeed(r.cfg.Seed, fr, purposeHopPlan), r.cfg.SymbolsPerHop)
	if err != nil {
		return nil, err
	}
	scramblerSeed := deriveSeed(r.cfg.Seed, fr, purposeScrambler)

	var loop *tracking.Costas
	if r.cfg.TrackingLoops {
		loop, err = tracking.NewCostas(carrierLoopBW)
		if err != nil {
			return nil, err
		}
	}

	if r.pipe != nil {
		return r.decodeHopsPipelined(stats, samples, sched, scramblerSeed, loop)
	}

	chips := r.scratch.chips[:0]
	totalSymbols := -1 // unknown until the length byte is decoded
	maxSymbols := frame.EncodedSymbols(frame.MaxPayload)
	samplePos := 0
	rotation := complex(1, 0)

	for {
		collected := len(chips) / dsss.ComplexChipsPerSymbol
		if totalSymbols >= 0 && collected >= totalSymbols {
			break
		}
		if collected >= maxSymbols {
			break
		}
		bwIdx := sched.Next()
		sps := r.spsTab[bwIdx]
		nSym := r.cfg.SymbolsPerHop
		if totalSymbols >= 0 && collected+nSym > totalSymbols {
			nSym = totalSymbols - collected
		}
		segLen := nSym * dsss.ComplexChipsPerSymbol * sps
		if samplePos+segLen > len(samples) {
			// Clamp to the whole symbols that remain in the capture.
			avail := (len(samples) - samplePos) / (dsss.ComplexChipsPerSymbol * sps)
			if avail <= 0 {
				break
			}
			nSym = avail
			segLen = nSym * dsss.ComplexChipsPerSymbol * sps
		}
		seg := samples[samplePos : samplePos+segLen]
		samplePos += segLen

		var report HopReport
		if r.cfg.EnableFilter {
			decision, ctx, rep := r.estimateHop(seg, sps)
			report = rep
			filtered, err := r.filterHop(seg, sps, decision, ctx)
			if err != nil {
				return nil, fmt.Errorf("core: hop filter: %w", err)
			}
			seg = filtered
		} else {
			report = HopReport{SamplesPerChip: sps, Decision: FilterNone}
		}
		report.BandwidthMHz = r.dist.Bandwidths[bwIdx]
		stats.Hops = append(stats.Hops, report)
		if r.met != nil {
			r.met.Rx.Hops.Inc()
			r.met.Rx.Decision[report.Decision].Inc()
		}

		if loop != nil {
			if len(stats.Hops) == 1 {
				// Coarse CFO acquisition on the first (filtered) hop:
				// the 4th-power spectral line of QPSK preloads the
				// loop's frequency. Under unsuppressed strong jamming
				// the line drowns and the estimate is useless — part
				// of the vulnerability the filters protect.
				loop.SetFrequency(tracking.CoarseCFOInRange(seg, maxTrackedCFO))
			}
			var tsw obs.Stopwatch
			if r.met != nil {
				tsw = obs.Start()
			}
			r.scratch.tracked = append(r.scratch.tracked[:0], seg...)
			loop.Process(r.scratch.tracked)
			seg = r.scratch.tracked
			if r.met != nil {
				r.met.RecordStage(obs.StageRxTrack, tsw)
			}
		}

		var dsw obs.Stopwatch
		if r.met != nil {
			dsw = obs.Start()
		}
		chips = pulse.DemodulateAppend(chips, seg, r.pulseTaps(sps), 0)
		if r.met != nil {
			r.met.RecordStage(obs.StageRxDemod, dsw)
		}

		if totalSymbols < 0 && len(chips) >= frame.HeaderSymbols*dsss.ComplexChipsPerSymbol {
			rot, total := r.resolveHeader(chips, scramblerSeed)
			rotation = rot
			totalSymbols = total
		}
	}
	return r.finishBurst(stats, chips, loop, rotation, scramblerSeed)
}

// finishBurst is the post-hop-loop tail of a decode, shared by the serial
// path and the pipeline: record the carrier loop's verdict, undo the QPSK
// rotation ambiguity, despread and frame-decode the accumulated chips.
func (r *Receiver) finishBurst(stats *RxStats, chips []complex128, loop *tracking.Costas, rotation complex128, scramblerSeed uint64) ([]byte, error) {
	r.scratch.chips = chips // keep the grown buffer for the next burst
	if loop != nil {
		stats.CarrierFreq = loop.Frequency()
		stats.CarrierLock = loop.LockQuality()
		stats.CarrierLocked = stats.CarrierLock >= tracking.DefaultLockThreshold
	}
	if len(chips) < dsss.ComplexChipsPerSymbol {
		return nil, ErrTruncatedBurst
	}
	if rotation != 1 {
		for i := range chips {
			chips[i] *= rotation
		}
	}
	whole := len(chips) / dsss.ComplexChipsPerSymbol * dsss.ComplexChipsPerSymbol
	despreader := dsss.NewDespreader(scramblerSeed)
	var ssw obs.Stopwatch
	if r.met != nil {
		ssw = obs.Start()
	}
	symbols, metrics, err := despreader.Despread(chips[:whole])
	if r.met != nil {
		r.met.RecordStage(obs.StageRxDespread, ssw)
	}
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	var metricSum float64
	for _, m := range metrics {
		metricSum += m
	}
	stats.MeanMetric = metricSum / float64(len(symbols))
	payload, err := frame.Decode(symbols)
	if err != nil {
		return nil, err
	}
	return payload, nil
}

// resolveHeader despreads the header chips and returns the QPSK rotation
// correction and the frame's total symbol count. A carrier loop locks to
// the constellation only modulo π/2; the known all-zero preamble resolves
// the ambiguity (without tracking loops only the identity rotation is
// tried). When the length byte is unreadable the maximum frame length is
// assumed and the CRC check rejects the frame downstream.
func (r *Receiver) resolveHeader(chips []complex128, scramblerSeed uint64) (complex128, int) {
	headerChips := chips[:frame.HeaderSymbols*dsss.ComplexChipsPerSymbol]
	rotations := []complex128{1}
	if r.cfg.TrackingLoops {
		rotations = []complex128{1, complex(0, 1), -1, complex(0, -1)}
	}
	maxSymbols := frame.EncodedSymbols(frame.MaxPayload)
	bestRot := complex(1, 0)
	bestScore := math.Inf(-1)
	bestTotal := maxSymbols
	buf := make([]complex128, len(headerChips))
	for _, rot := range rotations {
		for i, c := range headerChips {
			buf[i] = c * rot
		}
		d := dsss.NewDespreader(scramblerSeed)
		syms, metrics, err := d.Despread(buf)
		if err != nil {
			continue
		}
		// Majority of the preamble symbols must be zero; the first one
		// or two may be lost while the loop pulls in.
		nPre := frame.PreambleBytes * frame.SymbolsPerByte
		zeros := 0
		for _, s := range syms[:nPre] {
			if s == 0 {
				zeros++
			}
		}
		var score float64
		for _, m := range metrics {
			score += m
		}
		if zeros*4 >= nPre*3 {
			score += 1e6 // preamble match dominates the metric sum
		}
		if score > bestScore {
			bestScore = score
			bestRot = rot
			bestTotal = maxSymbols
			if n, ok := peekLength(syms); ok {
				bestTotal = frame.EncodedSymbols(n)
			}
		}
	}
	return bestRot, bestTotal
}

// peekLength extracts the length byte from the decoded header symbols.
func peekLength(symbols []int) (int, bool) {
	lo := symbols[(frame.PreambleBytes+1)*frame.SymbolsPerByte]
	hi := symbols[(frame.PreambleBytes+1)*frame.SymbolsPerByte+1]
	if lo < 0 || lo > 15 || hi < 0 || hi > 15 {
		return 0, false
	}
	n := lo | hi<<4
	if n > frame.MaxPayload {
		return 0, false
	}
	return n, true
}

// acquire locates the frame start within the capture by correlating against
// the known preamble waveform of frame fr, and estimates carrier phase and
// a coarse CFO from the correlation (PreambleSync mode).
func (r *Receiver) acquire(samples []complex128, fr uint64) (offset int, cfo, phase float64, err error) {
	tmpl, err := r.preambleTemplate(fr)
	if err != nil {
		return 0, 0, 0, err
	}
	if len(samples) < len(tmpl) {
		return 0, 0, 0, ErrNoPreamble
	}
	// Cross-correlate: peak of |conv(samples, reverse(conj(tmpl)))|. The
	// overlap-save convolver transforms the template once and streams the
	// capture through fixed pow2 blocks, so long captures cost
	// O(n log B) with a block size matched to the template instead of one
	// giant FFT of the whole capture.
	rev := make([]complex128, len(tmpl))
	for i, v := range tmpl {
		rev[len(tmpl)-1-i] = complex(real(v), -imag(v))
	}
	r.scratch.corr = dsp.NewOverlapSave(rev).ApplyFull(r.scratch.corr[:0], samples)
	corr := r.scratch.corr
	// Valid offsets: template fully inside the capture. In the full
	// convolution, offset o corresponds to index o + len(tmpl) - 1.
	best, bestMag := -1, 0.0
	for o := 0; o+len(tmpl) <= len(samples); o++ {
		c := corr[o+len(tmpl)-1]
		m := real(c)*real(c) + imag(c)*imag(c)
		if m > bestMag {
			bestMag = m
			best = o
		}
	}
	if best < 0 {
		return 0, 0, 0, ErrNoPreamble
	}
	tmplEnergy := dsp.Energy(tmpl)
	segEnergy := dsp.Energy(samples[best : best+len(tmpl)])
	if segEnergy == 0 || bestMag < 0.05*tmplEnergy*segEnergy {
		return 0, 0, 0, ErrNoPreamble
	}
	// Phase from the whole-template correlation; CFO from the phase drift
	// between the two template halves.
	seg := samples[best : best+len(tmpl)]
	half := len(tmpl) / 2
	c1 := dsp.DotConj(seg[:half], tmpl[:half])
	c2 := dsp.DotConj(seg[half:], tmpl[half:2*half])
	phase = cmplx.Phase(c1)
	dphi := cmplx.Phase(c2 * cmplx.Conj(c1))
	cfo = dphi / (2 * math.Pi * float64(half))
	return best, cfo, phase, nil
}

// preambleTemplate rebuilds the transmit waveform of the preamble symbols
// of frame fr (everything up to the SFD is known a priori).
func (r *Receiver) preambleTemplate(fr uint64) ([]complex128, error) {
	nPre := frame.PreambleBytes * frame.SymbolsPerByte
	sched, err := hop.NewSchedule(r.dist, deriveSeed(r.cfg.Seed, fr, purposeHopPlan), r.cfg.SymbolsPerHop)
	if err != nil {
		return nil, err
	}
	spreader := dsss.NewSpreader(deriveSeed(r.cfg.Seed, fr, purposeScrambler))
	var out []complex128
	symPos := 0
	for symPos < nPre {
		bwIdx := sched.Next()
		sps := r.spsTab[bwIdx]
		n := r.cfg.SymbolsPerHop
		if symPos+n > nPre {
			n = nPre - symPos
		}
		zeros := make([]int, n)
		chips, err := spreader.Spread(zeros)
		if err != nil {
			return nil, err
		}
		out = append(out, pulse.Modulate(chips, r.pulseTaps(sps))...)
		symPos += n
	}
	return out, nil
}
