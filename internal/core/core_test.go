package core

import (
	"bytes"
	"errors"
	"math"
	"testing"

	"bhss/internal/channel"
	"bhss/internal/dsp"
	"bhss/internal/hop"
	"bhss/internal/jammer"
	"bhss/internal/spectral"
)

func fixedConfig(bwMHz float64, seed uint64) Config {
	cfg := DefaultConfig(seed)
	cfg.Pattern = hop.Fixed
	cfg.Bandwidths = []float64{bwMHz}
	return cfg
}

func mustPair(t *testing.T, cfg Config) (*Transmitter, *Receiver) {
	t.Helper()
	tx, err := NewTransmitter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rx, err := NewReceiver(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tx, rx
}

func TestCleanRoundTripAllPatterns(t *testing.T) {
	payload := []byte("bandwidth hopping spread spectrum")
	for _, p := range []hop.Pattern{hop.Fixed, hop.Linear, hop.Exponential, hop.Parabolic} {
		cfg := DefaultConfig(42)
		cfg.Pattern = p
		tx, rx := mustPair(t, cfg)
		for i := 0; i < 3; i++ {
			burst, err := tx.EncodeFrame(payload)
			if err != nil {
				t.Fatalf("%v: %v", p, err)
			}
			got, stats, err := rx.DecodeBurst(burst.Samples)
			if err != nil {
				t.Fatalf("%v frame %d: %v", p, i, err)
			}
			if !bytes.Equal(got, payload) {
				t.Fatalf("%v frame %d: payload mismatch", p, i)
			}
			// A clean channel may still trip the excision detector on
			// estimation scatter; the quantile-referenced notch makes
			// that benign (sub-3% metric cost), so require near-ideal.
			if stats.MeanMetric < 15.5 {
				t.Fatalf("%v: clean metric %v, want ~16", p, stats.MeanMetric)
			}
		}
		if tx.FrameCounter() != 3 || rx.FrameCounter() != 3 {
			t.Fatalf("%v: frame counters %d/%d", p, tx.FrameCounter(), rx.FrameCounter())
		}
	}
}

func TestRoundTripEmptyAndMaxPayload(t *testing.T) {
	cfg := DefaultConfig(7)
	tx, rx := mustPair(t, cfg)
	for _, payload := range [][]byte{{}, bytes.Repeat([]byte{0x5A}, 127)} {
		burst, err := tx.EncodeFrame(payload)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := rx.DecodeBurst(burst.Samples)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, payload) && len(payload) > 0 {
			t.Fatal("payload mismatch")
		}
	}
}

func TestBurstStructure(t *testing.T) {
	cfg := DefaultConfig(1)
	tx, _ := mustPair(t, cfg)
	burst, err := tx.EncodeFrame([]byte("structure"))
	if err != nil {
		t.Fatal(err)
	}
	// Segments tile the burst exactly.
	pos := 0
	symbols := 0
	for _, seg := range burst.Segments {
		if seg.StartSample != pos {
			t.Fatalf("segment starts at %d, want %d", seg.StartSample, pos)
		}
		if seg.NumSamples != seg.NumSymbols*16*seg.SamplesPerChip {
			t.Fatalf("segment sample count inconsistent: %+v", seg)
		}
		if seg.SamplesPerChip != int(cfg.SampleRate/seg.BandwidthMHz) {
			t.Fatalf("sps %d for bandwidth %v", seg.SamplesPerChip, seg.BandwidthMHz)
		}
		pos += seg.NumSamples
		symbols += seg.NumSymbols
	}
	if pos != len(burst.Samples) {
		t.Fatalf("segments cover %d of %d samples", pos, len(burst.Samples))
	}
	// Unit transmit power (the hopping does not change the power budget).
	if p := dsp.Power(burst.Samples); math.Abs(p-1) > 1e-9 {
		t.Fatalf("burst power %v, want 1", p)
	}
}

func TestBurstLengthMatchesEncode(t *testing.T) {
	cfg := DefaultConfig(3)
	tx, _ := mustPair(t, cfg)
	payload := []byte("predict me")
	want, err := tx.BurstLength(len(payload))
	if err != nil {
		t.Fatal(err)
	}
	burst, err := tx.EncodeFrame(payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(burst.Samples) != want {
		t.Fatalf("BurstLength %d, actual %d", want, len(burst.Samples))
	}
}

func TestHopSegmentsChangeBandwidth(t *testing.T) {
	cfg := DefaultConfig(5)
	tx, _ := mustPair(t, cfg)
	burst, err := tx.EncodeFrame(bytes.Repeat([]byte{0xAB}, 64))
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, seg := range burst.Segments {
		seen[seg.SamplesPerChip] = true
	}
	if len(seen) < 3 {
		t.Fatalf("only %d distinct bandwidths across %d hops", len(seen), len(burst.Segments))
	}
	// Verify the per-segment occupied bandwidth follows the hop (eq. (1)).
	for _, seg := range burst.Segments {
		if seg.NumSamples < 1024 {
			continue
		}
		s := burst.Samples[seg.StartSample : seg.StartSample+seg.NumSamples]
		psd, err := spectral.Welch(256).PSD(s)
		if err != nil {
			continue
		}
		bw := spectral.OccupiedBandwidth(psd, 0.9)
		want := 1 / float64(seg.SamplesPerChip)
		if bw < want*0.5 || bw > want*3 {
			t.Fatalf("segment sps=%d: occupied bw %v, want ~%v", seg.SamplesPerChip, bw, want)
		}
	}
}

func TestRoundTripWithNoise(t *testing.T) {
	cfg := DefaultConfig(9)
	tx, rx := mustPair(t, cfg)
	noise := channel.NewAWGN(0.1, 11) // 10 dB SNR per sample
	ok := 0
	const frames = 10
	for i := 0; i < frames; i++ {
		burst, err := tx.EncodeFrame([]byte("noisy frame payload"))
		if err != nil {
			t.Fatal(err)
		}
		rxSamples := append([]complex128(nil), burst.Samples...)
		noise.Add(rxSamples)
		if got, _, err := rx.DecodeBurst(rxSamples); err == nil && bytes.Equal(got, []byte("noisy frame payload")) {
			ok++
		}
	}
	if ok < frames-1 {
		t.Fatalf("only %d/%d frames decoded at 10 dB SNR", ok, frames)
	}
}

func TestWidebandJammerLowPassFilter(t *testing.T) {
	// Narrow fixed signal (0.15625 MHz, sps=128) under a full-band jammer
	// 13 dB above the signal: the filter turns an undecodable channel
	// into a clean one.
	cfg := fixedConfig(0.15625, 21)
	cfg.FilterTaps = 1025
	// The tracking loops are the vulnerable element the LPF protects
	// (§6.1): without them an ideal matched-filter receiver would already
	// reject most out-of-band jamming.
	cfg.TrackingLoops = true
	payload := []byte("survive")

	run := func(enable bool) (bool, *RxStats) {
		c := cfg
		c.EnableFilter = enable
		tx, rx := mustPair(t, c)
		burst, err := tx.EncodeFrame(payload)
		if err != nil {
			t.Fatal(err)
		}
		// Free-running oscillators: the carrier loop must track this
		// offset, which it can only do once the jamming is suppressed.
		im := channel.Impairments{CFO: 9e-5, Phase: 0.8}
		air := im.Apply(burst.Samples)
		// Signal 9, jammer 50: filtered SINR ~6 dB (loop tracks),
		// unfiltered ~-7.5 dB (loop gain collapses).
		dsp.Scale(air, 3)
		jam, err := jammer.NewBandlimited(0.5, 50, 31)
		if err != nil {
			t.Fatal(err)
		}
		rxSamples := channel.Combine(air, jam.Emit(len(air)))
		channel.NewAWGN(0.01, 5).Add(rxSamples)
		got, stats, err := rx.DecodeBurst(rxSamples)
		return err == nil && bytes.Equal(got, payload), stats
	}

	okFiltered, stats := run(true)
	if !okFiltered {
		t.Fatal("filtered receiver failed under wideband jammer")
	}
	for _, h := range stats.Hops {
		if h.Decision != FilterLowPass {
			t.Fatalf("decision %v, want low-pass (report: %+v)", h.Decision, h)
		}
	}
	okPlain, _ := run(false)
	if okPlain {
		t.Fatal("unfiltered receiver should fail at -7 dB SJR with CFO")
	}
}

func TestNarrowbandJammerExcisionFilter(t *testing.T) {
	// Wide fixed signal (10 MHz, sps=2) under a narrow jammer 13 dB above
	// the signal: excision whitening recovers the frame.
	cfg := fixedConfig(10, 23)
	payload := []byte("excise the tone")

	run := func(enable bool) (bool, *RxStats) {
		c := cfg
		c.EnableFilter = enable
		tx, rx := mustPair(t, c)
		burst, err := tx.EncodeFrame(payload)
		if err != nil {
			t.Fatal(err)
		}
		jam, err := jammer.NewBandlimited(0.0078125, 20, 37)
		if err != nil {
			t.Fatal(err)
		}
		rxSamples := channel.Combine(burst.Samples, jam.Emit(len(burst.Samples)))
		channel.NewAWGN(0.01, 6).Add(rxSamples)
		got, stats, err := rx.DecodeBurst(rxSamples)
		return err == nil && bytes.Equal(got, payload), stats
	}

	okFiltered, stats := run(true)
	if !okFiltered {
		t.Fatal("filtered receiver failed under narrowband jammer")
	}
	excised := 0
	for _, h := range stats.Hops {
		if h.Decision == FilterExcision {
			excised++
		}
	}
	if excised == 0 {
		t.Fatalf("no hop used the excision filter: %+v", stats.Hops)
	}
	okPlain, _ := run(false)
	if okPlain {
		t.Fatal("unfiltered receiver should fail at -13 dB SJR")
	}
}

func TestMatchedJammerDefeatsFixedBandwidth(t *testing.T) {
	// Case (iii) of the paper: jammer bandwidth == signal bandwidth. The
	// control logic must not engage a filter, and the frame is lost.
	cfg := fixedConfig(2.5, 29)
	tx, rx := mustPair(t, cfg)
	burst, err := tx.EncodeFrame([]byte("doomed"))
	if err != nil {
		t.Fatal(err)
	}
	jam, err := jammer.NewBandlimited(0.125, 100, 41)
	if err != nil {
		t.Fatal(err)
	}
	rxSamples := channel.Combine(burst.Samples, jam.Emit(len(burst.Samples)))
	channel.NewAWGN(0.01, 7).Add(rxSamples)
	_, stats, err := rx.DecodeBurst(rxSamples)
	if err == nil {
		t.Fatal("matched jammer at -20 dB SJR should kill the frame")
	}
	for _, h := range stats.Hops {
		if h.Decision == FilterLowPass {
			t.Fatalf("low-pass engaged for a matched jammer: %+v", h)
		}
	}
}

func TestHoppingEscapesMatchedJammer(t *testing.T) {
	// The BHSS claim: against the same fixed-bandwidth jammer that kills
	// the fixed-bandwidth link, a hopping link (with filtering) delivers
	// a solid fraction of frames.
	cfg := DefaultConfig(77)
	cfg.Pattern = hop.Parabolic
	tx, rx := mustPair(t, cfg)
	jam, err := jammer.NewBandlimited(0.125, 10, 43) // matched to 2.5 MHz, 10 dB up
	if err != nil {
		t.Fatal(err)
	}
	noise := channel.NewAWGN(0.01, 8)
	payload := []byte("h") // one-byte payload: 5 hops per frame
	const frames = 20
	ok := 0
	for i := 0; i < frames; i++ {
		burst, err := tx.EncodeFrame(payload)
		if err != nil {
			t.Fatal(err)
		}
		rxSamples := channel.Combine(burst.Samples, jam.Emit(len(burst.Samples)))
		noise.Add(rxSamples)
		if got, _, err := rx.DecodeBurst(rxSamples); err == nil && bytes.Equal(got, payload) {
			ok++
		}
	}
	if ok < frames/4 {
		t.Fatalf("hopping link delivered only %d/%d frames against a fixed jammer", ok, frames)
	}
}

func TestPreambleSyncAcquisition(t *testing.T) {
	cfg := DefaultConfig(55)
	cfg.Sync = PreambleSync
	tx, rx := mustPair(t, cfg)
	payload := []byte("find me in the capture")
	burst, err := tx.EncodeFrame(payload)
	if err != nil {
		t.Fatal(err)
	}
	// Embed the burst at a known offset with a phase rotation and noise.
	const offset = 777
	capture := make([]complex128, offset+len(burst.Samples)+500)
	copy(capture[offset:], burst.Samples)
	dsp.Mix(capture, 0, 0.4) // static phase offset on everything
	channel.NewAWGN(0.005, 9).Add(capture)

	got, stats, err := rx.DecodeBurst(capture)
	if err != nil {
		t.Fatalf("acquisition decode failed: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("payload mismatch after acquisition")
	}
	if stats.AcquisitionOffset != offset {
		t.Fatalf("acquired offset %d, want %d", stats.AcquisitionOffset, offset)
	}
}

func TestPreambleSyncRejectsNoiseOnlyCapture(t *testing.T) {
	cfg := DefaultConfig(56)
	cfg.Sync = PreambleSync
	_, rx := mustPair(t, cfg)
	capture := make([]complex128, 8192)
	channel.NewAWGN(1, 10).Add(capture)
	if _, _, err := rx.DecodeBurst(capture); err == nil {
		t.Fatal("noise-only capture should not decode")
	}
}

func TestTruncatedBurst(t *testing.T) {
	cfg := DefaultConfig(60)
	tx, rx := mustPair(t, cfg)
	burst, err := tx.EncodeFrame([]byte("cut short"))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := rx.DecodeBurst(burst.Samples[:10]); err == nil {
		t.Fatal("10-sample burst should fail")
	}
	rx2, _ := NewReceiver(cfg)
	rx2.SkipFrame() // align to the already-encoded frame
	_ = rx2
}

func TestSkipFrameKeepsLockstep(t *testing.T) {
	cfg := DefaultConfig(61)
	tx, rx := mustPair(t, cfg)
	b1, _ := tx.EncodeFrame([]byte("first"))
	b2, _ := tx.EncodeFrame([]byte("second"))
	_ = b1 // first frame never reaches the receiver
	rx.SkipFrame()
	got, _, err := rx.DecodeBurst(b2.Samples)
	if err != nil || !bytes.Equal(got, []byte("second")) {
		t.Fatalf("lockstep broken after skip: %v %q", err, got)
	}
}

func TestWrongSeedFailsToDecode(t *testing.T) {
	cfgA := DefaultConfig(100)
	cfgB := DefaultConfig(101)
	tx, err := NewTransmitter(cfgA)
	if err != nil {
		t.Fatal(err)
	}
	rx, err := NewReceiver(cfgB)
	if err != nil {
		t.Fatal(err)
	}
	burst, _ := tx.EncodeFrame([]byte("secret"))
	if got, _, err := rx.DecodeBurst(burst.Samples); err == nil {
		t.Fatalf("wrong seed decoded %q", got)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{},
		{SampleRate: 20},
		{SampleRate: 20, Bandwidths: []float64{10}},
		{SampleRate: 20, Bandwidths: []float64{3}, SymbolsPerHop: 4}, // 20/3 not integer
		{SampleRate: 20, Bandwidths: []float64{10}, SymbolsPerHop: 4, FilterTaps: 2},
		{SampleRate: 20, Bandwidths: []float64{10}, SymbolsPerHop: 4, PSDSegment: 100},
	}
	for i, c := range bad {
		if _, err := NewTransmitter(c); err == nil {
			t.Fatalf("config %d should fail transmitter construction", i)
		}
		if _, err := NewReceiver(c); err == nil {
			t.Fatalf("config %d should fail receiver construction", i)
		}
	}
}

func TestExplicitDistributionOverride(t *testing.T) {
	dist, err := hop.NewDistribution(hop.Exponential, hop.DefaultBandwidths())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(88)
	cfg.Distribution = &dist
	cfg.Pattern = hop.Fixed // ignored when Distribution set
	tx, rx := mustPair(t, cfg)
	burst, err := tx.EncodeFrame([]byte("override"))
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := rx.DecodeBurst(burst.Samples)
	if err != nil || !bytes.Equal(got, []byte("override")) {
		t.Fatalf("override distribution round trip: %v", err)
	}
	if tx.AverageBandwidth() != dist.AverageBandwidth() {
		t.Fatal("AverageBandwidth should reflect the override")
	}
}

func TestFilterDecisionString(t *testing.T) {
	if FilterNone.String() != "none" || FilterLowPass.String() != "low-pass" ||
		FilterExcision.String() != "excision" || FilterDecision(9).String() != "unknown" {
		t.Fatal("decision names wrong")
	}
}

func TestErrTruncatedBurstSentinel(t *testing.T) {
	cfg := DefaultConfig(62)
	_, rx := mustPair(t, cfg)
	_, _, err := rx.DecodeBurst(nil)
	if !errors.Is(err, ErrTruncatedBurst) {
		t.Fatalf("err = %v, want ErrTruncatedBurst", err)
	}
}

func TestRealisticClockSkewHarmless(t *testing.T) {
	// A 2.5 ppm sample-clock mismatch (USRP-class TCXO) accumulates to a
	// fraction of a sample per burst; the matched-filter demodulator must
	// shrug it off — this validates the ideal chip-timing model the
	// receiver uses (DESIGN.md §2).
	cfg := DefaultConfig(314)
	tx, rx := mustPair(t, cfg)
	payload := []byte("skewed but fine")
	burst, err := tx.EncodeFrame(payload)
	if err != nil {
		t.Fatal(err)
	}
	im := channel.Impairments{ClockSkewPPM: 2.5}
	got, stats, err := rx.DecodeBurst(im.Apply(burst.Samples))
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("decode under realistic skew: %v", err)
	}
	if stats.MeanMetric < 15.5 {
		t.Fatalf("metric %v under 2.5 ppm skew, want ~16", stats.MeanMetric)
	}
}
