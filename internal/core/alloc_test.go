package core

import (
	"math"
	"reflect"
	"testing"

	"bhss/internal/alloctest"
	"bhss/internal/obs"
	"bhss/internal/prng"
)

// excisionSegment synthesizes the canonical excision scenario: a weak noise
// floor under a strong in-band tone, deterministic so every call takes the
// same path.
func excisionSegment(sps int) []complex128 {
	src := prng.New(9)
	seg := make([]complex128, 16384)
	freq := 0.5 / float64(sps)
	for i := range seg {
		th := 2 * math.Pi * freq * float64(i)
		seg[i] = src.ComplexNorm()*complex(0.1, 0) + complex(30*math.Cos(th), 30*math.Sin(th))
	}
	return seg
}

// TestHotPathZeroAlloc asserts the steady-state zero-allocation contract of
// the receiver's per-hop hot path: spectrum estimation plus excision-filter
// selection (estimateHop) and filtering (filterHop). The first call designs
// and caches the notch filter and grows the receiver scratch; every call
// after that must allocate nothing — with and without a metrics pipeline
// attached, since obs recording rides inside the hot path.
func TestHotPathZeroAlloc(t *testing.T) {
	for _, tc := range []struct {
		name     string
		observer *obs.Pipeline
	}{
		{"unobserved", nil},
		{"observed", obs.NewPipeline()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			r, err := NewReceiver(DefaultConfig(1))
			if err != nil {
				t.Fatal(err)
			}
			if tc.observer != nil {
				r.SetObserver(tc.observer)
			}
			sps := r.spsTab[len(r.spsTab)-1]
			seg := excisionSegment(sps)

			decision, ctx, _ := r.estimateHop(seg, sps)
			if decision == FilterNone {
				t.Fatalf("synthetic jammer not detected; the hot path under test never runs")
			}
			if _, err := r.filterHop(seg, sps, decision, ctx); err != nil {
				t.Fatal(err)
			}

			alloctest.AssertZero(t, "Receiver.estimateHop", func() {
				_, _, _ = r.estimateHop(seg, sps)
			})
			alloctest.AssertZero(t, "Receiver.filterHop+estimateHop", func() {
				d, c, _ := r.estimateHop(seg, sps)
				if _, err := r.filterHop(seg, sps, d, c); err != nil {
					t.Fatal(err)
				}
			})
			if tc.observer != nil {
				snap := tc.observer.SnapshotLight()
				var estimated int64
				for _, h := range snap.Histograms {
					if h.Name == "stage.rx.estimate_ns" {
						estimated = h.Count
					}
				}
				if estimated == 0 {
					t.Fatal("observer attached but stage.rx.estimate_ns never recorded")
				}
			}
		})
	}
}

// TestDecodeBurstStatsReuse pins the RxStats recycling contract: DecodeBurst
// hands back the receiver's embedded stats value every time instead of
// allocating a fresh one per burst, and the Hops backing array survives the
// Reset between bursts.
func TestDecodeBurstStatsReuse(t *testing.T) {
	cfg := DefaultConfig(11)
	tx, rx := mustPair(t, cfg)
	payload := []byte("stats reuse")

	// Tx and rx walk the hop sequence in lockstep, one frame per burst, so
	// each decode needs a fresh frame.
	frame := func() []complex128 {
		burst, err := tx.EncodeFrame(payload)
		if err != nil {
			t.Fatal(err)
		}
		return burst.Samples
	}

	_, s1, err := rx.DecodeBurst(frame())
	if err != nil {
		t.Fatal(err)
	}
	if len(s1.Hops) == 0 {
		t.Fatal("no hop reports recorded")
	}
	hops1 := &s1.Hops[0]

	_, s2, err := rx.DecodeBurst(frame())
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Fatalf("DecodeBurst allocated a fresh RxStats: %p then %p", s1, s2)
	}
	if &s2.Hops[0] != hops1 {
		t.Fatal("Hops backing array reallocated on the second burst")
	}

	// The caller-supplied variant must honor the same recycling contract.
	var own RxStats
	if _, err := rx.DecodeBurstInto(&own, frame()); err != nil {
		t.Fatal(err)
	}
	if len(own.Hops) != len(s2.Hops) {
		t.Fatalf("DecodeBurstInto recorded %d hops, DecodeBurst %d", len(own.Hops), len(s2.Hops))
	}
	ownHops := &own.Hops[0]
	own.Reset()
	if _, err := rx.DecodeBurstInto(&own, frame()); err != nil {
		t.Fatal(err)
	}
	if &own.Hops[0] != ownHops {
		t.Fatal("caller-supplied RxStats reallocated Hops after Reset")
	}
}

// TestDecodeObserverParity asserts that attaching a metrics pipeline never
// perturbs the DSP: payload bytes and every RxStats field must be identical
// with the observer on and off, and the observer must actually have counted
// the burst.
func TestDecodeObserverParity(t *testing.T) {
	cfg := DefaultConfig(21)
	payload := []byte("observer parity")
	tx, err := NewTransmitter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	burst, err := tx.EncodeFrame(payload)
	if err != nil {
		t.Fatal(err)
	}

	plain, err := NewReceiver(cfg)
	if err != nil {
		t.Fatal(err)
	}
	gotPlain, statsPlain, err := plain.DecodeBurst(burst.Samples)
	if err != nil {
		t.Fatal(err)
	}

	observed, err := NewReceiver(cfg)
	if err != nil {
		t.Fatal(err)
	}
	met := obs.NewPipeline()
	observed.SetObserver(met)
	gotObs, statsObs, err := observed.DecodeBurst(burst.Samples)
	if err != nil {
		t.Fatal(err)
	}

	if string(gotPlain) != string(payload) || string(gotObs) != string(payload) {
		t.Fatalf("payload mismatch: plain %q, observed %q", gotPlain, gotObs)
	}
	if !reflect.DeepEqual(statsPlain, statsObs) {
		t.Fatalf("observer perturbed stats:\nplain    %+v\nobserved %+v", statsPlain, statsObs)
	}

	if got := met.Rx.Bursts.Load(); got != 1 {
		t.Fatalf("rx.bursts = %d, want 1", got)
	}
	if got := met.Rx.Decoded.Load(); got != 1 {
		t.Fatalf("rx.decoded = %d, want 1", got)
	}
	if got := met.Rx.Hops.Load(); got != int64(len(statsObs.Hops)) {
		t.Fatalf("rx.hops = %d, want %d", got, len(statsObs.Hops))
	}
	var decisions int64
	for i := range met.Rx.Decision {
		decisions += met.Rx.Decision[i].Load()
	}
	if decisions != int64(len(statsObs.Hops)) {
		t.Fatalf("decision counters sum to %d, want %d", decisions, len(statsObs.Hops))
	}
}
