package core

import (
	"math"
	"testing"

	"bhss/internal/alloctest"
	"bhss/internal/prng"
)

// TestHotPathZeroAlloc asserts the steady-state zero-allocation contract of
// the receiver's per-hop hot path: spectrum estimation plus excision-filter
// selection (estimateHop) and filtering (filterHop). The first call designs
// and caches the notch filter and grows the receiver scratch; every call
// after that must allocate nothing.
func TestHotPathZeroAlloc(t *testing.T) {
	r, err := NewReceiver(DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	sps := r.spsTab[len(r.spsTab)-1]

	// A weak noise floor under a strong in-band tone: the canonical
	// excision scenario, deterministic so every call takes the same path.
	src := prng.New(9)
	seg := make([]complex128, 16384)
	freq := 0.5 / float64(sps)
	for i := range seg {
		th := 2 * math.Pi * freq * float64(i)
		seg[i] = src.ComplexNorm()*complex(0.1, 0) + complex(30*math.Cos(th), 30*math.Sin(th))
	}

	decision, ctx, _ := r.estimateHop(seg, sps)
	if decision == FilterNone {
		t.Fatalf("synthetic jammer not detected; the hot path under test never runs")
	}
	if _, err := r.filterHop(seg, sps, decision, ctx); err != nil {
		t.Fatal(err)
	}

	alloctest.AssertZero(t, "Receiver.estimateHop", func() {
		_, _, _ = r.estimateHop(seg, sps)
	})
	alloctest.AssertZero(t, "Receiver.filterHop+estimateHop", func() {
		d, c, _ := r.estimateHop(seg, sps)
		if _, err := r.filterHop(seg, sps, d, c); err != nil {
			t.Fatal(err)
		}
	})
}
