package core

import (
	"fmt"

	"bhss/internal/dsss"
	"bhss/internal/frame"
	"bhss/internal/hop"
	"bhss/internal/obs"
	"bhss/internal/prng"
	"bhss/internal/pulse"
)

// HopSegment records one hop of a transmitted burst: which bandwidth was
// used and which sample/symbol span it covers. Receivers regenerate the
// identical segmentation from the shared seed.
type HopSegment struct {
	// BandwidthIndex indexes the distribution's bandwidth set.
	BandwidthIndex int
	// BandwidthMHz is the hop's occupied bandwidth.
	BandwidthMHz float64
	// SamplesPerChip realizes the bandwidth at the fixed sampling rate.
	SamplesPerChip int
	// StartSymbol and NumSymbols give the span in DSSS symbols.
	StartSymbol, NumSymbols int
	// StartSample and NumSamples give the span in burst samples.
	StartSample, NumSamples int
}

// Burst is one transmitted frame: the samples plus the hop segmentation
// (the latter is diagnostic; a receiver never needs it over the air).
type Burst struct {
	Samples  []complex128
	Segments []HopSegment
	// Payload is the carried payload (diagnostic).
	Payload []byte
}

// deriveSeed expands the pre-shared seed into independent sub-seeds for the
// scrambler and the hop schedule of one frame. Both sides call it with the
// same frame counter, so a lost frame cannot desynchronize the next one.
func deriveSeed(seed uint64, counter uint64, purpose uint64) uint64 {
	s := prng.New(seed ^ (counter * 0x9e3779b97f4a7c15) ^ (purpose * 0xbf58476d1ce4e5b9))
	return s.Uint64()
}

const (
	purposeScrambler = 1
	purposeHopPlan   = 2
)

// Transmitter is the BHSS transmitter of Figure 4: spreading, scrambling,
// and pulse shaping with a randomly hopped pulse duration.
type Transmitter struct {
	cfg    Config
	dist   hop.Distribution
	spsTab []int
	frame  uint64
	// pulse taps per samples-per-chip value, cached.
	pulseCache map[int][]float64
	// met is the optional observer; nil skips all recording.
	met *obs.Pipeline
	// chipBuf is the per-hop chip scratch reused across EncodeFrame calls.
	//bhss:scratch
	chipBuf []complex128
}

// SetObserver attaches a metrics pipeline to the transmitter (nil detaches).
// Recording never touches the emitted samples.
func (t *Transmitter) SetObserver(p *obs.Pipeline) { t.met = p }

// NewTransmitter returns a transmitter for the configuration.
func NewTransmitter(cfg Config) (*Transmitter, error) {
	dist, spsTab, err := cfg.normalize()
	if err != nil {
		return nil, err
	}
	return &Transmitter{cfg: cfg, dist: dist, spsTab: spsTab, pulseCache: map[int][]float64{}}, nil
}

// FrameCounter returns the number of frames encoded so far.
func (t *Transmitter) FrameCounter() uint64 { return t.frame }

// pulseTaps returns (and caches) the pulse shape for a samples-per-chip
// value — the transmitter's g(αt) table.
func (t *Transmitter) pulseTaps(sps int) []float64 {
	if g, ok := t.pulseCache[sps]; ok {
		return g
	}
	g := pulse.Taps(t.cfg.Shape, sps)
	t.pulseCache[sps] = g
	return g
}

// planHops draws the hop plan for nSymbols symbols of frame fr.
func planHops(cfg Config, dist hop.Distribution, fr uint64, nSymbols int) ([]int, error) {
	sched, err := hop.NewSchedule(dist, deriveSeed(cfg.Seed, fr, purposeHopPlan), cfg.SymbolsPerHop)
	if err != nil {
		return nil, err
	}
	return sched.PlanHops(nSymbols), nil
}

// EncodeFrame frames, spreads, scrambles and pulse-shapes one payload,
// advancing the frame counter. The returned burst carries the samples to
// put on the air.
func (t *Transmitter) EncodeFrame(payload []byte) (*Burst, error) {
	return t.EncodeFrameInto(nil, payload)
}

// EncodeFrameInto is EncodeFrame encoding into buf's storage: when buf has
// enough capacity for the burst, no sample buffer is allocated and
// burst.Samples aliases buf's array (callers reuse it with
// EncodeFrameInto(prev.Samples[:0], ...)). Steady-state senders amortize
// the dominant per-frame allocation away; EncodeFrame is the convenience
// form with a fresh buffer.
func (t *Transmitter) EncodeFrameInto(buf []complex128, payload []byte) (*Burst, error) {
	var esw obs.Stopwatch
	if t.met != nil {
		esw = obs.Start()
		defer t.met.RecordStage(obs.StageTxEncode, esw)
	}
	symbols, err := frame.Encode(payload)
	if err != nil {
		return nil, err
	}
	fr := t.frame
	t.frame++

	plan, err := planHops(t.cfg, t.dist, fr, len(symbols))
	if err != nil {
		return nil, err
	}
	spreader := dsss.NewSpreader(deriveSeed(t.cfg.Seed, fr, purposeScrambler))

	burst := &Burst{Payload: append([]byte(nil), payload...)}
	// The hop plan fixes the burst length exactly, so the sample buffer is
	// sized once and each hop modulates straight into it.
	total := 0
	symPos := 0
	for _, bwIdx := range plan {
		n := t.cfg.SymbolsPerHop
		if symPos+n > len(symbols) {
			n = len(symbols) - symPos
		}
		total += n * dsss.ComplexChipsPerSymbol * t.spsTab[bwIdx]
		symPos += n
	}
	if cap(buf) >= total {
		burst.Samples = buf[:0]
	} else {
		burst.Samples = make([]complex128, 0, total)
	}
	burst.Segments = make([]HopSegment, 0, len(plan))
	symPos = 0
	for _, bwIdx := range plan {
		n := t.cfg.SymbolsPerHop
		if symPos+n > len(symbols) {
			n = len(symbols) - symPos
		}
		var hsw obs.Stopwatch
		if t.met != nil {
			hsw = obs.Start()
		}
		chips, err := spreader.SpreadAppend(t.chipBuf[:0], symbols[symPos:symPos+n])
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		if t.met != nil {
			t.met.RecordStage(obs.StageTxSpread, hsw)
			hsw = obs.Start()
		}
		t.chipBuf = chips
		sps := t.spsTab[bwIdx]
		start := len(burst.Samples)
		burst.Samples = pulse.ModulateAppend(burst.Samples, chips, t.pulseTaps(sps))
		if t.met != nil {
			t.met.RecordStage(obs.StageTxModulate, hsw)
		}
		burst.Segments = append(burst.Segments, HopSegment{
			BandwidthIndex: bwIdx,
			BandwidthMHz:   t.dist.Bandwidths[bwIdx],
			SamplesPerChip: sps,
			StartSymbol:    symPos,
			NumSymbols:     n,
			StartSample:    start,
			NumSamples:     len(burst.Samples) - start,
		})
		symPos += n
	}
	if t.met != nil {
		t.met.Tx.Frames.Inc()
		t.met.Tx.Symbols.Add(int64(len(symbols)))
		t.met.Tx.Samples.Add(int64(len(burst.Samples)))
	}
	return burst, nil
}

// BurstLength returns the number of samples EncodeFrame will produce for a
// payload of n bytes on the next frame (it depends on the hop draw, so the
// frame counter is consumed read-only via a copy of the schedule).
func (t *Transmitter) BurstLength(payloadBytes int) (int, error) {
	nSymbols := frame.EncodedSymbols(payloadBytes)
	plan, err := planHops(t.cfg, t.dist, t.frame, nSymbols)
	if err != nil {
		return 0, err
	}
	total := 0
	symPos := 0
	for _, bwIdx := range plan {
		n := t.cfg.SymbolsPerHop
		if symPos+n > nSymbols {
			n = nSymbols - symPos
		}
		total += n * dsss.ComplexChipsPerSymbol * t.spsTab[bwIdx]
		symPos += n
	}
	return total, nil
}

// AverageBandwidth returns the expected occupied bandwidth of the
// configured distribution in MHz.
func (t *Transmitter) AverageBandwidth() float64 { return t.dist.AverageBandwidth() }

// Distribution returns the transmitter's hop distribution.
func (t *Transmitter) Distribution() hop.Distribution { return t.dist }
