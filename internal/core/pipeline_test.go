package core

import (
	"bytes"
	"errors"
	"math"
	"reflect"
	"testing"

	"bhss/internal/channel"
	"bhss/internal/dsp"
	"bhss/internal/jammer"
)

// pipelinePair builds a serial and a pipelined receiver for the same config.
func pipelinePair(t *testing.T, cfg Config, pc PipelineConfig) (*Receiver, *Receiver) {
	t.Helper()
	serial, err := NewReceiver(cfg)
	if err != nil {
		t.Fatal(err)
	}
	piped, err := NewReceiver(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := piped.EnablePipeline(pc); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := piped.Close(); err != nil {
			t.Errorf("pipeline close: %v", err)
		}
	})
	return serial, piped
}

// decodeBoth runs one capture through both receivers and requires the
// payload, error and full diagnostic record to match bitwise.
func decodeBoth(t *testing.T, serial, piped *Receiver, capture []complex128) ([]byte, *RxStats, error) {
	t.Helper()
	// DecodeBurst hands out receiver-owned stats; copy before comparing.
	wantPayload, wantStatsView, wantErr := serial.DecodeBurst(capture)
	wantStats := *wantStatsView
	wantStats.Hops = append([]HopReport(nil), wantStatsView.Hops...)
	gotPayload, gotStats, gotErr := piped.DecodeBurst(capture)
	if (wantErr == nil) != (gotErr == nil) ||
		(wantErr != nil && wantErr.Error() != gotErr.Error()) {
		t.Fatalf("error mismatch: serial %v, pipelined %v", wantErr, gotErr)
	}
	if !bytes.Equal(wantPayload, gotPayload) {
		t.Fatalf("payload mismatch:\nserial    %q\npipelined %q", wantPayload, gotPayload)
	}
	if !reflect.DeepEqual(&wantStats, gotStats) {
		t.Fatalf("stats mismatch:\nserial    %+v\npipelined %+v", wantStats, gotStats)
	}
	return gotPayload, gotStats, gotErr
}

// TestPipelinedDecodeParity drives the pipelined receiver through every
// decision path — clean hops, low-pass against a wideband jammer, excision
// against a narrowband jammer, filtering disabled, carrier tracking with CFO
// — across a multi-burst sequence, and requires bit-identical payloads,
// errors and RxStats against the serial receiver at every burst.
func TestPipelinedDecodeParity(t *testing.T) {
	cases := []struct {
		name string
		cfg  func() Config
		// jamBW/jamPower describe a band-limited jammer (0 = clean).
		jamBW, jamPower float64
		impair          channel.Impairments
		gain            float64
		noiseVar        float64
		// lossy marks scenarios where lost frames are expected; parity of
		// the failures is the point there, not successful decoding.
		lossy bool
		// wantDecision, when nonzero, must appear on at least one hop
		// across the sequence — the scenario exists to cover that path.
		wantDecision FilterDecision
	}{
		{
			name: "clean-default",
			cfg:  func() Config { return DefaultConfig(101) },
		},
		{
			// Narrow fixed signal under a full-band jammer: every hop
			// takes the low-pass path and the frames decode.
			name: "wideband-lowpass",
			cfg: func() Config {
				c := fixedConfig(0.15625, 102)
				c.TrackingLoops = true
				return c
			},
			jamBW: 0.5, jamPower: 50,
			impair: channel.Impairments{CFO: 9e-5, Phase: 0.8},
			gain:   3, noiseVar: 0.01,
			wantDecision: FilterLowPass,
		},
		{
			// Wide fixed signal under a narrow jammer: excision hops.
			name:  "narrowband-excision",
			cfg:   func() Config { return fixedConfig(10, 103) },
			jamBW: 0.0078125, jamPower: 12,
			noiseVar:     0.01,
			wantDecision: FilterExcision,
		},
		{
			name: "filter-off",
			cfg: func() Config {
				c := DefaultConfig(104)
				c.EnableFilter = false
				return c
			},
			noiseVar: 0.01,
		},
		{
			// Hopping signal under jamming strong enough to lose frames:
			// the pipeline must match serial decode failures bit-for-bit
			// too, including the per-hop decision mix.
			name:  "hopping-jammed-losses",
			cfg:   func() Config { return DefaultConfig(105) },
			jamBW: 0.125, jamPower: 20,
			noiseVar: 0.005,
			lossy:    true,
		},
	}
	payloads := [][]byte{
		[]byte("pipelined parity burst one"),
		[]byte("two"),
		bytes.Repeat([]byte{0xa5}, 120),
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := tc.cfg()
			tx, err := NewTransmitter(cfg)
			if err != nil {
				t.Fatal(err)
			}
			serial, piped := pipelinePair(t, cfg, PipelineConfig{})
			var jam *jammer.Bandlimited
			if tc.jamPower > 0 {
				jam, err = jammer.NewBandlimited(tc.jamBW, tc.jamPower, 31)
				if err != nil {
					t.Fatal(err)
				}
			}
			noise := channel.NewAWGN(tc.noiseVar, 5)
			decisions := map[FilterDecision]int{}
			for i, payload := range payloads {
				burst, err := tx.EncodeFrame(payload)
				if err != nil {
					t.Fatal(err)
				}
				air := tc.impair.Apply(burst.Samples)
				if tc.gain != 0 {
					dsp.Scale(air, tc.gain)
				}
				if jam != nil {
					air = channel.Combine(air, jam.Emit(len(air)))
				}
				if tc.noiseVar > 0 {
					noise.Add(air)
				}
				// One jammed+noisy realization decoded by both receivers:
				// both must see identical samples, so the channel draws
				// happen once per burst outside the receivers.
				_, stats, err := decodeBoth(t, serial, piped, air)
				if err != nil && !tc.lossy {
					t.Fatalf("burst %d failed: %v", i, err)
				}
				for _, h := range stats.Hops {
					decisions[h.Decision]++
				}
			}
			if tc.wantDecision != FilterNone && decisions[tc.wantDecision] == 0 {
				t.Fatalf("scenario never took the %v path: %v", tc.wantDecision, decisions)
			}
		})
	}
}

// TestPipelinedPreambleSyncParity covers the acquisition front-end: the
// pipeline consumes the aligned capture exactly like the serial path.
func TestPipelinedPreambleSyncParity(t *testing.T) {
	cfg := DefaultConfig(106)
	cfg.Sync = PreambleSync
	tx, err := NewTransmitter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	serial, piped := pipelinePair(t, cfg, PipelineConfig{})
	payload := []byte("acquire then pipeline")
	burst, err := tx.EncodeFrame(payload)
	if err != nil {
		t.Fatal(err)
	}
	const offset = 777
	capture := make([]complex128, offset+len(burst.Samples)+500)
	copy(capture[offset:], burst.Samples)
	dsp.Mix(capture, 0, 0.4)
	channel.NewAWGN(0.005, 9).Add(capture)
	got, _, errDecode := decodeBoth(t, serial, piped, capture)
	if errDecode != nil {
		t.Fatal(errDecode)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("payload mismatch after acquisition")
	}
}

// TestPipelinedErrorParity checks the failure paths: truncated bursts and
// non-finite input must yield the same errors and leave the frame counters
// in lockstep.
func TestPipelinedErrorParity(t *testing.T) {
	cfg := DefaultConfig(107)
	serial, piped := pipelinePair(t, cfg, PipelineConfig{})

	short := make([]complex128, 3)
	decodeBoth(t, serial, piped, short)

	bad := make([]complex128, 4096)
	bad[1234] = complex(math.NaN(), 0)
	bad[2000] = complex(math.Inf(1), 0)
	_, _, errPiped := piped.DecodeBurst(bad)
	if !errors.Is(errPiped, ErrNonFiniteInput) {
		t.Fatalf("pipelined non-finite error = %v", errPiped)
	}
	serial.DecodeBurst(bad)
	if serial.FrameCounter() != piped.FrameCounter() {
		t.Fatalf("frame counters diverged: serial %d, pipelined %d",
			serial.FrameCounter(), piped.FrameCounter())
	}
}

// TestPipelineLifecycle pins the enable/close contract: double enable fails,
// close returns to bit-identical serial decoding, close is idempotent, and
// re-enabling works.
func TestPipelineLifecycle(t *testing.T) {
	cfg := DefaultConfig(108)
	tx, err := NewTransmitter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rx, err := NewReceiver(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := rx.EnablePipeline(PipelineConfig{}); err != nil {
		t.Fatal(err)
	}
	if !rx.PipelineEnabled() {
		t.Fatal("pipeline should be enabled")
	}
	if err := rx.EnablePipeline(PipelineConfig{}); err == nil {
		t.Fatal("double enable should fail")
	}
	payload := []byte("lifecycle")
	burst, err := tx.EncodeFrame(payload)
	if err != nil {
		t.Fatal(err)
	}
	if got, _, err := rx.DecodeBurst(burst.Samples); err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("pipelined decode: %q, %v", got, err)
	}
	if err := rx.Close(); err != nil {
		t.Fatal(err)
	}
	if rx.PipelineEnabled() {
		t.Fatal("pipeline should be disabled after Close")
	}
	if err := rx.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	burst2, err := tx.EncodeFrame(payload)
	if err != nil {
		t.Fatal(err)
	}
	if got, _, err := rx.DecodeBurst(burst2.Samples); err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("serial decode after close: %q, %v", got, err)
	}
	if err := rx.EnablePipeline(PipelineConfig{Depth: 8}); err != nil {
		t.Fatalf("re-enable: %v", err)
	}
	defer rx.Close()
	burst3, err := tx.EncodeFrame(payload)
	if err != nil {
		t.Fatal(err)
	}
	if got, _, err := rx.DecodeBurst(burst3.Samples); err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("pipelined decode after re-enable: %q, %v", got, err)
	}

	for _, depth := range []int{-1, 1, maxPipelineDepth + 1} {
		bad, err := NewReceiver(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := bad.EnablePipeline(PipelineConfig{Depth: depth}); err == nil {
			t.Fatalf("depth %d should be rejected", depth)
		}
	}
}

// TestPipelinedDepths runs the same jammed sequence at several ring depths:
// depth changes scheduling, never output.
func TestPipelinedDepths(t *testing.T) {
	cfg := fixedConfig(10, 109)
	payload := []byte("depth sweep")
	for _, depth := range []int{2, 3, 8} {
		tx, err := NewTransmitter(cfg)
		if err != nil {
			t.Fatal(err)
		}
		serial, piped := pipelinePair(t, cfg, PipelineConfig{Depth: depth})
		jam, err := jammer.NewBandlimited(0.0078125, 20, 31)
		if err != nil {
			t.Fatal(err)
		}
		noise := channel.NewAWGN(0.005, 5)
		for i := 0; i < 3; i++ {
			burst, err := tx.EncodeFrame(payload)
			if err != nil {
				t.Fatal(err)
			}
			air := channel.Combine(burst.Samples, jam.Emit(len(burst.Samples)))
			noise.Add(air)
			if _, _, err := decodeBoth(t, serial, piped, air); err != nil {
				t.Fatalf("depth %d burst %d: %v", depth, i, err)
			}
		}
	}
}
