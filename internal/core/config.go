// Package core implements the paper's contribution: the bandwidth hopping
// spread spectrum (BHSS) transmitter and receiver of Figures 4 and 6.
//
// The transmitter spreads 4-bit symbols to 32 chips (16-ary DSSS with a
// seed-derived scrambling overlay), modulates them with a half-sine chip
// pulse whose duration is re-drawn from a randomized hop distribution every
// few symbols — hopping the occupied bandwidth during the transmission of a
// single frame (eq. (1)) — and emits the samples at a fixed sampling rate.
//
// The receiver derives the identical hop plan from the pre-shared seed
// (§4.1: spectrum inspection would be jammer-dominated, so synchronization
// rides on the shared random source), estimates the jammer's spectral
// occupancy per hop with Welch's method, and lets a control logic pick the
// interference suppression filter *before despreading*: a low-pass filter
// when the jammer is wider than the signal (eq. (4)), the PSD-reciprocal
// whitening excision filter when it is narrower (eq. (3)), or none when the
// bandwidths are too close for filtering to pay (eq. (10)). The filtered
// samples then pass through the matched filter, the chip demodulator, and
// the 16-ary correlation despreader, and the frame's CRC decides delivery.
package core

import (
	"fmt"
	"math"

	"bhss/internal/hop"
	"bhss/internal/pulse"
)

// SyncMode selects how the receiver aligns to a burst.
type SyncMode int

const (
	// IdealSync assumes perfect frame timing, phase and frequency (the
	// harness hands the receiver the exact burst window). It isolates the
	// filtering gain from synchronization noise and is the default for
	// the bulk experiments.
	IdealSync SyncMode = iota
	// PreambleSync acquires timing, carrier phase and a coarse frequency
	// offset from the known preamble waveform before decoding, modeling
	// the prototype's preamble/SFD-based synchronization.
	PreambleSync
)

// Config parameterizes a BHSS link. Transmitter and receiver must be
// constructed from identical configurations (the pre-shared secret).
type Config struct {
	// SampleRate is the fixed front-end rate in MHz (paper: 20 MS/s for
	// all bandwidths, §6.1).
	SampleRate float64
	// Bandwidths is the hop set in MHz (paper: 10 down to 0.15625).
	Bandwidths []float64
	// Pattern selects the hop distribution (Table 1). Use hop.Fixed for
	// the conventional fixed-bandwidth DSSS baseline.
	Pattern hop.Pattern
	// Distribution, when non-nil, overrides Pattern with an explicit
	// distribution (e.g. one produced by hop.OptimizeMaximin).
	Distribution *hop.Distribution
	// SymbolsPerHop is the dwell per hop in DSSS symbols.
	SymbolsPerHop int
	// Seed is the pre-shared secret that drives the chip scrambler and
	// the hop schedule.
	Seed uint64
	// Shape is the chip pulse (paper: half-sine).
	Shape pulse.Shape
	// EnableFilter turns the jammer estimation + suppression filtering
	// on. Off, the receiver is a plain (hopping or fixed) DSSS receiver.
	EnableFilter bool
	// FilterTaps bounds the suppression filter length (paper: 3181 taps
	// at full scale; default 1025 at simulation scale).
	FilterTaps int
	// PSDSegment caps the Welch segment length for jammer estimation
	// (power of two; default 2048). The effective per-hop size adapts to
	// the hop bandwidth — narrow hops need fine frequency resolution for
	// the excision notch, wide hops need averaging — and never exceeds
	// the filter tap budget or the hop length.
	PSDSegment int
	// Sync selects the synchronization mode.
	Sync SyncMode
	// TrackingLoops enables the prototype's per-hop carrier tracking loop
	// between the suppression filter and the demodulator (§6.1: the
	// correction loops run after the FIR filter, "otherwise the jammer
	// may disturb the error correction"). With the loop enabled, an
	// unfiltered receiver loses carrier lock under strong jamming even
	// when the matched filter alone would reject the jamming power — the
	// mechanism behind the paper's measured low-pass filtering gains.
	TrackingLoops bool
	// ExcisionPeakRatio is the threshold on the receiver's shape-
	// normalized in-band interference indicator (peak over low-quantile
	// of PSD/|G(f)|²) above which the excision filter engages, and the
	// per-bin over-target factor the notch design cuts at (default 3 —
	// the normalized indicator is ~1-2 on a clean channel because the
	// pulse's own spectral shape has been divided out, and a false
	// trigger costs only the few bins that exceed the shaped target).
	ExcisionPeakRatio float64
	// WidebandExcessRatio is the out-of-band to in-band power ratio above
	// which the control logic engages the low-pass filter (default 0.5).
	WidebandExcessRatio float64
}

// DefaultConfig returns the paper's prototype configuration at simulation
// scale: 20 MS/s, the seven-bandwidth hop set, linear hopping, four symbols
// per hop, half-sine pulses, filtering enabled.
func DefaultConfig(seed uint64) Config {
	return Config{
		SampleRate:    20,
		Bandwidths:    hop.DefaultBandwidths(),
		Pattern:       hop.Linear,
		SymbolsPerHop: hop.DefaultSymbolsPerHop,
		Seed:          seed,
		Shape:         pulse.HalfSine,
		EnableFilter:  true,
		FilterTaps:    1025,
		PSDSegment:    2048,
	}
}

// normalize fills in defaults and derives the per-bandwidth samples-per-chip
// table. It returns the validated distribution.
func (c *Config) normalize() (hop.Distribution, []int, error) {
	if c.SampleRate <= 0 {
		return hop.Distribution{}, nil, fmt.Errorf("core: sample rate %v must be positive", c.SampleRate)
	}
	if len(c.Bandwidths) == 0 {
		return hop.Distribution{}, nil, fmt.Errorf("core: empty bandwidth set")
	}
	if c.SymbolsPerHop < 1 {
		return hop.Distribution{}, nil, fmt.Errorf("core: SymbolsPerHop %d must be >= 1", c.SymbolsPerHop)
	}
	if c.FilterTaps == 0 {
		c.FilterTaps = 257
	}
	if c.FilterTaps < 3 {
		return hop.Distribution{}, nil, fmt.Errorf("core: FilterTaps %d too small", c.FilterTaps)
	}
	if c.PSDSegment == 0 {
		c.PSDSegment = 2048
	}
	if c.PSDSegment < 16 || c.PSDSegment&(c.PSDSegment-1) != 0 {
		return hop.Distribution{}, nil, fmt.Errorf("core: PSDSegment %d must be a power of two >= 16", c.PSDSegment)
	}
	if c.ExcisionPeakRatio == 0 {
		c.ExcisionPeakRatio = 3
	}
	if c.WidebandExcessRatio == 0 {
		c.WidebandExcessRatio = 0.5
	}
	var dist hop.Distribution
	if c.Distribution != nil {
		dist = *c.Distribution
		if err := dist.Validate(); err != nil {
			return hop.Distribution{}, nil, err
		}
	} else {
		var err error
		dist, err = hop.NewDistribution(c.Pattern, c.Bandwidths)
		if err != nil {
			return hop.Distribution{}, nil, err
		}
	}
	sps := make([]int, len(dist.Bandwidths))
	for i, bw := range dist.Bandwidths {
		ratio := c.SampleRate / bw
		rounded := int(math.Round(ratio))
		if rounded < 1 || math.Abs(ratio-float64(rounded)) > 1e-6 {
			return hop.Distribution{}, nil, fmt.Errorf(
				"core: bandwidth %v MHz does not divide the sample rate %v (need integer samples/chip)", bw, c.SampleRate)
		}
		sps[i] = rounded
	}
	return dist, sps, nil
}
