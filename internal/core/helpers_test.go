package core

import (
	"math"
	"testing"

	"bhss/internal/channel"
	"bhss/internal/hop"
	"bhss/internal/jammer"
)

func TestQuantileLevel(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3}
	if q := quantileLevel(xs, 0); q != 1 {
		t.Fatalf("q0 = %v", q)
	}
	if q := quantileLevel(xs, 0.5); q != 3 {
		t.Fatalf("q50 = %v", q)
	}
	if q := quantileLevel(xs, 1); q != 5 {
		t.Fatalf("q100 clamps to max, got %v", q)
	}
	if quantileLevel(nil, 0.5) != 0 {
		t.Fatal("empty quantile should be 0")
	}
	// Input must not be mutated.
	if xs[0] != 5 || xs[1] != 1 {
		t.Fatal("quantileLevel mutated its input")
	}
}

func TestPeakToQuantile(t *testing.T) {
	if r := peakToQuantile([]float64{1, 1, 1, 10}, 0.35); math.Abs(r-10) > 1e-12 {
		t.Fatalf("ratio = %v, want 10", r)
	}
	if r := peakToQuantile([]float64{0, 0, 5}, 0.35); !math.IsInf(r, 1) {
		t.Fatalf("zero quantile should give +Inf, got %v", r)
	}
	if peakToQuantile(nil, 0.35) != 0 {
		t.Fatal("empty should be 0")
	}
	if peakToQuantile([]float64{0, 0}, 0.35) != 0 {
		t.Fatal("all-zero should be 0")
	}
}

func TestPulseShapeGainProperties(t *testing.T) {
	cfg := DefaultConfig(1)
	rx, err := NewReceiver(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, sps := range []int{2, 8, 32, 128} {
		const k = 512
		shape := rx.pulseShapeGain(sps, k)
		if len(shape) != k {
			t.Fatalf("sps=%d: %d bins", sps, len(shape))
		}
		var peak float64
		for _, v := range shape {
			if v < 0.05-1e-12 || v > 1+1e-12 {
				t.Fatalf("sps=%d: shape value %v outside [floor, 1]", sps, v)
			}
			if v > peak {
				peak = v
			}
		}
		if math.Abs(peak-1) > 1e-9 {
			t.Fatalf("sps=%d: peak %v, want 1", sps, peak)
		}
		// The peak sits at DC for the half-sine pulse.
		if shape[0] < 0.99 {
			t.Fatalf("sps=%d: DC gain %v, want ~1", sps, shape[0])
		}
		// Cached: same slice returned.
		again := rx.pulseShapeGain(sps, k)
		if &again[0] != &shape[0] {
			t.Fatalf("sps=%d: shape not cached", sps)
		}
	}
}

func TestShapeNarrowsWithSPS(t *testing.T) {
	cfg := DefaultConfig(2)
	rx, _ := NewReceiver(cfg)
	const k = 1024
	width := func(sps int) int {
		shape := rx.pulseShapeGain(sps, k)
		n := 0
		for _, v := range shape {
			if v > 0.5 {
				n++
			}
		}
		return n
	}
	w2, w32 := width(2), width(32)
	if w32 >= w2 {
		t.Fatalf("shape should narrow with sps: w2=%d w32=%d", w2, w32)
	}
	ratio := float64(w2) / float64(w32)
	if ratio < 8 || ratio > 32 {
		t.Fatalf("half-power width ratio %v, want ~16 (eq. (1) scaling)", ratio)
	}
}

// The excision control logic must keep firing across the whole SNR range
// where despreading alone would fail: sweep the signal level against a
// fixed strong in-band jammer and check the frame survives everywhere
// above a single threshold (no detection gap).
func TestNoDetectionGapAcrossSignalLevels(t *testing.T) {
	cfg := fixedConfig(2.5, 77)
	cfg.SymbolsPerHop = 16
	payload := []byte("gapcheck")
	failuresAboveThreshold := 0
	decodedOnce := false
	for _, gain := range []float64{2, 3, 5, 8, 12, 20, 30} {
		tx, _ := NewTransmitter(cfg)
		rx, _ := NewReceiver(cfg)
		burst, err := tx.EncodeFrame(payload)
		if err != nil {
			t.Fatal(err)
		}
		air := append([]complex128(nil), burst.Samples...)
		for i := range air {
			air[i] *= complex(gain, 0)
		}
		jam, err := jammer.NewBandlimited(0.15625/20.0, 100, 13)
		if err != nil {
			t.Fatal(err)
		}
		rxS := channel.Combine(air, jam.Emit(len(air)))
		channel.NewAWGN(0.01, 3).Add(rxS)
		got, _, err := rx.DecodeBurst(rxS)
		ok := err == nil && string(got) == string(payload)
		if decodedOnce && !ok {
			failuresAboveThreshold++
		}
		if ok {
			decodedOnce = true
		}
	}
	if !decodedOnce {
		t.Fatal("frame never decoded at any signal level")
	}
	if failuresAboveThreshold > 1 {
		t.Fatalf("%d failures above the working threshold (detection gap)", failuresAboveThreshold)
	}
}

func TestHoppingWithLargerDwell(t *testing.T) {
	// Larger dwells must still round-trip cleanly and produce fewer,
	// longer segments.
	cfg := DefaultConfig(5)
	cfg.Pattern = hop.Linear
	cfg.SymbolsPerHop = 16
	tx, rx := mustPair(t, cfg)
	payload := make([]byte, 8)
	burst, err := tx.EncodeFrame(payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(burst.Segments) != 2 {
		t.Fatalf("32 symbols at 16/hop should be 2 segments, got %d", len(burst.Segments))
	}
	got, _, err := rx.DecodeBurst(burst.Samples)
	if err != nil || len(got) != len(payload) {
		t.Fatalf("round trip: %v", err)
	}
}
