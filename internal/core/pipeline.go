package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"bhss/internal/dsss"
	"bhss/internal/frame"
	"bhss/internal/hop"
	"bhss/internal/obs"
	"bhss/internal/pulse"
	"bhss/internal/tracking"
)

// PipelineConfig parameterizes the receiver's opt-in concurrent decode
// pipeline. When enabled, DecodeBurst splits each burst's hop loop across
// three stages running on their own goroutines/the caller — spectral
// estimation + filtering, carrier tracking, demodulation + despreading —
// connected by fixed-depth single-producer/single-consumer rings of reusable
// hop slots. The pipeline overlaps the filter FFTs of hop h+1 with the
// tracking and demodulation of hop h, trading a bounded amount of buffered
// look-ahead for wall-clock throughput on multicore hosts.
//
// The pipelined decode is bit-identical to the serial one: stages preserve
// hop order, every kernel runs on the same inputs in the same sequence, and
// the estimation stage stalls at the exact hop where the serial loop would
// first consult the decoded frame length (see decodeHopsPipelined).
type PipelineConfig struct {
	// Depth is the ring depth in hops — how far the estimation stage may
	// run ahead of demodulation. 0 selects DefaultPipelineDepth; larger
	// values buy scheduling slack at the cost of per-slot sample buffers.
	Depth int
}

// DefaultPipelineDepth is the ring depth used when PipelineConfig.Depth is 0:
// enough look-ahead to keep three stages busy without idling on handoffs.
const DefaultPipelineDepth = 4

// maxPipelineDepth bounds the slot memory a misconfigured caller can pin.
const maxPipelineDepth = 64

// pipeSlot is one hop in flight between stages. Slots are owned by exactly
// one stage at a time — ownership moves with the slot index through the
// rings — so their buffers need no locking.
type pipeSlot struct {
	// seg is the hop's samples as seen by the next stage: a view into the
	// burst (FilterNone), into filtered (low-pass/excision) or into tracked
	// (after the carrier loop).
	seg []complex128
	//bhss:scratch
	filtered []complex128 // slot-owned filter output, reused across bursts
	//bhss:scratch
	tracked []complex128 // slot-owned carrier-loop copy, reused across bursts
	sps     int
	first   bool // first hop of the burst (coarse CFO acquisition point)
	report  HopReport
	err     error // estimation/filter failure; terminates the burst
}

// pipeBurst is the per-burst work order handed to the estimation stage.
type pipeBurst struct {
	samples []complex128
	sched   *hop.Schedule
}

// rxPipeline is the persistent pipeline runtime: two worker goroutines
// (estimation+filter, tracking) plus the caller as the demodulation stage,
// kept across bursts so steady-state decoding spawns nothing.
type rxPipeline struct {
	r     *Receiver
	slots []pipeSlot

	// Slot indices flow free -> filt -> track -> free; -1 is the
	// end-of-burst sentinel on filt and track. Each channel has a single
	// sender and a single receiver (SPSC).
	free  chan int
	filt  chan int
	track chan int

	// Per-burst work orders for the two workers.
	burstFilt  chan pipeBurst
	burstTrack chan *tracking.Costas

	// totalSymbols publishes the decoded frame length (-1 = unknown) from
	// the demodulation stage back to the estimation stage, which blocks on
	// notify at the exact hop where the serial loop would first read it.
	totalSymbols atomic.Int64
	notify       chan struct{}

	quit chan struct{}
	wg   sync.WaitGroup
}

// EnablePipeline switches the receiver's DecodeBurst to the concurrent
// decode pipeline. It starts the worker goroutines immediately; call Close
// to stop them and return to serial decoding. Enabling twice is an error.
//
// A pipelined receiver is still not safe for concurrent DecodeBurst calls —
// the pipeline parallelizes stages within one burst, not bursts.
func (r *Receiver) EnablePipeline(cfg PipelineConfig) error {
	if r.pipe != nil {
		return fmt.Errorf("core: pipeline already enabled")
	}
	depth := cfg.Depth
	if depth == 0 {
		depth = DefaultPipelineDepth
	}
	if depth < 2 || depth > maxPipelineDepth {
		return fmt.Errorf("core: pipeline depth %d out of range [2, %d]", cfg.Depth, maxPipelineDepth)
	}
	// Warm the pulse-tap cache for every bandwidth now: the estimation and
	// demodulation stages both read it concurrently at decode time, so it
	// must be write-free from here on.
	for _, sps := range r.spsTab {
		r.pulseTaps(sps)
	}
	p := &rxPipeline{
		r:          r,
		slots:      make([]pipeSlot, depth),
		free:       make(chan int, depth),
		filt:       make(chan int, depth+1),
		track:      make(chan int, depth+1),
		burstFilt:  make(chan pipeBurst, 1),
		burstTrack: make(chan *tracking.Costas, 1),
		notify:     make(chan struct{}, 1),
		quit:       make(chan struct{}),
	}
	for i := range p.slots {
		p.free <- i
	}
	p.wg.Add(2)
	go p.filterLoop()
	go p.trackLoop()
	r.pipe = p
	return nil
}

// Close stops the pipeline workers and returns the receiver to serial
// decoding. It must not be called while a DecodeBurst is in flight. A
// receiver without an enabled pipeline closes as a no-op, so Close is always
// safe to defer.
func (r *Receiver) Close() error {
	if r.pipe == nil {
		return nil
	}
	close(r.pipe.quit)
	r.pipe.wg.Wait()
	r.pipe = nil
	return nil
}

// PipelineEnabled reports whether DecodeBurst currently runs the concurrent
// pipeline.
func (r *Receiver) PipelineEnabled() bool { return r.pipe != nil }

// loadTotal returns the frame's total symbol count as the serial loop would
// see it before the hop at which `collected` symbols have been consumed:
// unknown (-1) while fewer than a header's worth of symbols are in flight,
// otherwise the value published by the demodulation stage — blocking until
// it lands. The block cannot deadlock: collected >= HeaderSymbols means the
// header's hops were already emitted, so the demodulation stage is
// guaranteed to reach and publish the header.
func (p *rxPipeline) loadTotal(collected int) int {
	if t := p.totalSymbols.Load(); t >= 0 {
		return int(t)
	}
	if collected < frame.HeaderSymbols {
		return -1
	}
	for {
		select {
		case <-p.notify:
			if t := p.totalSymbols.Load(); t >= 0 {
				return int(t)
			}
		case <-p.quit:
			// Close during a burst is unsupported, but degrade to "zero
			// symbols" so the estimation stage unwinds and wg.Wait can
			// finish instead of parking here forever.
			return 0
		}
	}
}

// filterLoop is the estimation stage: it reproduces the serial hop
// segmentation (including the frame-length clamp, via loadTotal) and runs
// per-hop spectral estimation and filtering, emitting filled slots in hop
// order. It terminates each burst with a -1 sentinel, immediately after an
// error slot when filtering fails.
func (p *rxPipeline) filterLoop() {
	defer p.wg.Done()
	for {
		select {
		case <-p.quit:
			return
		case b := <-p.burstFilt:
			p.runFilterBurst(b)
		}
	}
}

func (p *rxPipeline) runFilterBurst(b pipeBurst) {
	r := p.r
	maxSymbols := frame.EncodedSymbols(frame.MaxPayload)
	collected := 0
	samplePos := 0
	hopIdx := 0
	for {
		total := p.loadTotal(collected)
		if total >= 0 && collected >= total {
			break
		}
		if collected >= maxSymbols {
			break
		}
		bwIdx := b.sched.Next()
		sps := r.spsTab[bwIdx]
		nSym := r.cfg.SymbolsPerHop
		if total >= 0 && collected+nSym > total {
			nSym = total - collected
		}
		segLen := nSym * dsss.ComplexChipsPerSymbol * sps
		if samplePos+segLen > len(b.samples) {
			// Clamp to the whole symbols that remain in the capture.
			avail := (len(b.samples) - samplePos) / (dsss.ComplexChipsPerSymbol * sps)
			if avail <= 0 {
				break
			}
			nSym = avail
			segLen = nSym * dsss.ComplexChipsPerSymbol * sps
		}
		seg := b.samples[samplePos : samplePos+segLen]
		samplePos += segLen
		collected += nSym

		idx := <-p.free
		s := &p.slots[idx]
		s.first = hopIdx == 0
		s.sps = sps
		s.err = nil
		if r.cfg.EnableFilter {
			decision, ctx, rep := r.estimateHop(seg, sps)
			out, err := r.filterHopInto(s.filtered[:0], seg, sps, decision, ctx)
			if err != nil {
				s.err = err
				p.filt <- idx
				break
			}
			if decision != FilterNone {
				s.filtered = out
			}
			s.seg = out
			s.report = rep
		} else {
			s.seg = seg
			s.report = HopReport{SamplesPerChip: sps, Decision: FilterNone}
		}
		s.report.BandwidthMHz = r.dist.Bandwidths[bwIdx]
		p.filt <- idx
		hopIdx++
	}
	p.filt <- -1
}

// trackLoop is the carrier-tracking stage: it runs the per-burst Costas loop
// over the filtered hops in order (the loop state carries across hops, so
// this stage is inherently sequential) and forwards slots downstream. With
// tracking disabled it degenerates to a pass-through.
func (p *rxPipeline) trackLoop() {
	defer p.wg.Done()
	for {
		select {
		case <-p.quit:
			return
		case loop := <-p.burstTrack:
			for {
				var idx int
				select {
				case idx = <-p.filt:
				case <-p.quit:
					return
				}
				if idx < 0 {
					p.track <- -1
					break
				}
				s := &p.slots[idx]
				if s.err == nil && loop != nil {
					if s.first {
						// Coarse CFO acquisition on the first (filtered)
						// hop preloads the loop's frequency.
						loop.SetFrequency(tracking.CoarseCFOInRange(s.seg, maxTrackedCFO))
					}
					var tsw obs.Stopwatch
					if p.r.met != nil {
						tsw = obs.Start()
					}
					s.tracked = append(s.tracked[:0], s.seg...)
					loop.Process(s.tracked)
					//bhss:allow(scratchalias) slot-internal alias: seg and tracked belong to the same pipeSlot, whose ownership travels with the ring index; the demod stage consumes seg before the slot returns to the free ring
					s.seg = s.tracked
					if p.r.met != nil {
						p.r.met.RecordStage(obs.StageRxTrack, tsw)
					}
				}
				p.track <- idx
			}
		}
	}
}

// decodeHopsPipelined is the pipeline's replacement for the serial hop loop:
// the caller acts as the demodulation stage, consuming tracked hops in
// order, accumulating chip estimates, resolving the header (and publishing
// the frame length back to the estimation stage) and finishing the burst
// exactly like the serial path.
func (r *Receiver) decodeHopsPipelined(stats *RxStats, samples []complex128, sched *hop.Schedule, scramblerSeed uint64, loop *tracking.Costas) ([]byte, error) {
	p := r.pipe
	p.totalSymbols.Store(-1)
	select { // drop a notify token left by a burst that never blocked on it
	case <-p.notify:
	default:
	}
	p.burstFilt <- pipeBurst{samples: samples, sched: sched}
	p.burstTrack <- loop

	chips := r.scratch.chips[:0]
	totalSymbols := -1
	rotation := complex(1, 0)
	var filtErr error
	for {
		idx := <-p.track
		if idx < 0 {
			break
		}
		s := &p.slots[idx]
		if s.err != nil {
			filtErr = s.err
			p.free <- idx
			continue
		}
		stats.Hops = append(stats.Hops, s.report)
		if r.met != nil {
			r.met.Rx.Hops.Inc()
			r.met.Rx.Decision[s.report.Decision].Inc()
		}
		var dsw obs.Stopwatch
		if r.met != nil {
			dsw = obs.Start()
		}
		chips = pulse.DemodulateAppend(chips, s.seg, r.pulseTaps(s.sps), 0)
		if r.met != nil {
			r.met.RecordStage(obs.StageRxDemod, dsw)
		}
		p.free <- idx

		if totalSymbols < 0 && len(chips) >= frame.HeaderSymbols*dsss.ComplexChipsPerSymbol {
			rot, total := r.resolveHeader(chips, scramblerSeed)
			rotation = rot
			totalSymbols = total
			p.totalSymbols.Store(int64(total))
			select {
			case p.notify <- struct{}{}:
			default:
			}
		}
	}
	r.scratch.chips = chips // keep the grown buffer for the next burst
	if filtErr != nil {
		return nil, fmt.Errorf("core: hop filter: %w", filtErr)
	}
	return r.finishBurst(stats, chips, loop, rotation, scramblerSeed)
}
