package core

import (
	"math"
	"testing"

	"bhss/internal/impair"
)

// fuzzRxConfig is a deliberately small link so each fuzz iteration builds
// its receiver in microseconds while still exercising the estimation,
// filtering, tracking and despreading paths.
func fuzzRxConfig(sync SyncMode) Config {
	cfg := DefaultConfig(99)
	cfg.Bandwidths = []float64{10, 5, 2.5}
	cfg.SymbolsPerHop = 4
	cfg.FilterTaps = 129
	cfg.Sync = sync
	cfg.TrackingLoops = true
	return cfg
}

// fuzzSamples maps raw fuzz bytes onto IQ samples, deliberately including
// non-finite values: 0x7e encodes NaN, 0x7f +Inf, 0x80 −Inf; everything
// else becomes a small signed amplitude. This gives the fuzzer direct
// reach into the receiver's input-validation and clipping behavior.
func fuzzSamples(data []byte) []complex128 {
	rail := func(b byte) float64 {
		switch b {
		case 0x7e:
			return math.NaN()
		case 0x7f:
			return math.Inf(1)
		case 0x80:
			return math.Inf(-1)
		}
		return float64(int8(b)) / 32
	}
	samples := make([]complex128, len(data)/2)
	for i := range samples {
		samples[i] = complex(rail(data[2*i]), rail(data[2*i+1]))
	}
	return samples
}

// FuzzDecodeBurst feeds arbitrary — truncated, corrupted, non-finite — IQ
// captures to Receiver.DecodeBurst in both sync modes: it must never
// panic, only return errors, and any accepted payload must be well-formed.
// This is the runtime half of the panicpolicy contract for the whole
// receive path.
//
// Each exec costs up to a few ms (a full receiver decode), so pass
// -fuzzminimizetime=10x when fuzzing interactively: the default 60s
// *time-based* minimization budget per new interesting input makes the
// engine look hung (execs frozen, CPU pegged) whenever coverage grows.
func FuzzDecodeBurst(f *testing.F) {
	// Seed corpus: a real burst (quantized through the byte mapping), an
	// impaired one, silence, a runt, and non-finite rails.
	tx, err := NewTransmitter(fuzzRxConfig(IdealSync))
	if err != nil {
		f.Fatal(err)
	}
	burst, err := tx.EncodeFrame([]byte{0xA5, 0x5A})
	if err != nil {
		f.Fatal(err)
	}
	pack := func(x []complex128) []byte {
		out := make([]byte, 2*len(x))
		for i, v := range x {
			re := int8(real(v) * 32)
			im := int8(imag(v) * 32)
			out[2*i], out[2*i+1] = byte(re), byte(im)
		}
		return out
	}
	f.Add(pack(burst.Samples), false)
	chain, err := impair.NewFromSpec("cfo=2e3,ppm=20,phnoise=-80,quant=8", 20, 1)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(pack(chain.ProcessAppend(nil, burst.Samples)), true)
	f.Add([]byte{}, false)
	f.Add([]byte{1, 2, 3}, true)
	f.Add([]byte{0x7e, 0x7f, 0x80, 0x00, 0x10, 0x20}, false)

	f.Fuzz(func(t *testing.T, data []byte, preamble bool) {
		if len(data) > 1<<16 {
			data = data[:1<<16] // bound per-iteration cost, not coverage
		}
		sync := IdealSync
		if preamble {
			sync = PreambleSync
		}
		rx, err := NewReceiver(fuzzRxConfig(sync))
		if err != nil {
			t.Fatalf("receiver construction: %v", err)
		}
		samples := fuzzSamples(data)
		payload, stats, err := rx.DecodeBurst(samples)
		if err != nil {
			if payload != nil {
				t.Fatal("error return with non-nil payload")
			}
			return
		}
		if stats == nil {
			t.Fatal("nil stats on success")
		}
		if len(payload) > 255 {
			t.Fatalf("accepted payload of impossible length %d", len(payload))
		}
	})
}

// TestDecodeBurstNonFinite pins the bugfix-sweep contract: NaN or Inf
// anywhere in the capture is rejected with ErrNonFiniteInput before it can
// reach the PSD estimator's FFT (where one NaN smears across every bin and
// silently corrupts the filter decision).
func TestDecodeBurstNonFinite(t *testing.T) {
	cfg := fuzzRxConfig(IdealSync)
	tx, err := NewTransmitter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	burst, err := tx.EncodeFrame([]byte("payload"))
	if err != nil {
		t.Fatal(err)
	}
	bad := []struct {
		name string
		v    complex128
	}{
		{"nan-re", complex(math.NaN(), 0)},
		{"nan-im", complex(0, math.NaN())},
		{"inf-re", complex(math.Inf(1), 0)},
		{"neginf-im", complex(0, math.Inf(-1))},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			rx, err := NewReceiver(cfg)
			if err != nil {
				t.Fatal(err)
			}
			samples := append([]complex128(nil), burst.Samples...)
			samples[len(samples)/2] = tc.v
			_, _, err = rx.DecodeBurst(samples)
			if err != ErrNonFiniteInput {
				t.Fatalf("DecodeBurst = %v, want ErrNonFiniteInput", err)
			}
		})
	}
}

// TestDecodeBurstZeroLength pins the zero-length capture path: an error,
// never a panic or an empty success.
func TestDecodeBurstZeroLength(t *testing.T) {
	for _, sync := range []SyncMode{IdealSync, PreambleSync} {
		rx, err := NewReceiver(fuzzRxConfig(sync))
		if err != nil {
			t.Fatal(err)
		}
		payload, _, err := rx.DecodeBurst(nil)
		if err == nil {
			t.Fatalf("sync %v: zero-length burst decoded to %q, want error", sync, payload)
		}
		payload, _, err = rx.DecodeBurst([]complex128{})
		if err == nil {
			t.Fatalf("sync %v: empty burst decoded to %q, want error", sync, payload)
		}
	}
}
