package soak

import "testing"

// TestMultiLinkSmoke runs a small capacity measurement end to end: every
// sample of every link verified, RTF computed, no goroutines left behind.
func TestMultiLinkSmoke(t *testing.T) {
	checkGoroutines(t)
	rep, err := MultiLink(MultiLinkConfig{
		Seed:       7,
		Links:      4,
		LinkRate:   20e3,
		SimSeconds: 0.5,
		Logf:       t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Links != 4 {
		t.Fatalf("Links = %d, want 4", rep.Links)
	}
	if rep.TotalSamples != rep.SamplesPerLink*4 {
		t.Fatalf("TotalSamples = %d, want %d", rep.TotalSamples, rep.SamplesPerLink*4)
	}
	if rep.RTF <= 0 {
		t.Fatalf("RTF = %v, want > 0", rep.RTF)
	}
}
