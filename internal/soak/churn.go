package soak

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"bhss/internal/iqstream"
	"bhss/internal/obs"
	"bhss/internal/prng"
)

// Churn defaults: eight workers cycling 26 sessions each over a pool of
// eight shared link IDs is 208 sessions — enough concurrent admit/evict
// traffic to exercise every registry transition while staying under a
// second of wall clock, so the churn soak can run under the race detector
// in CI on every push.
const (
	DefaultChurnWorkers  = 8
	DefaultChurnRounds   = 26
	DefaultChurnLinkPool = 8
	DefaultChurnChaos    = "latency=1:1,reset=0.05,trunc=0.1,short=0.3"
	defaultChurnBlock    = 256
	measuredChurnLink    = 99 // outside the churn pool, never shared
	churnSettleTimeout   = 10 * time.Second
)

// ChurnConfig parameterizes one churn soak run.
type ChurnConfig struct {
	// Seed drives every random choice: session variants, link choices,
	// and the chaos proxy's fault schedule.
	Seed uint64
	// Workers is the number of concurrent churners (0 = default).
	Workers int
	// Rounds is sessions per worker (0 = default).
	Rounds int
	// LinkPool is how many link IDs (1..LinkPool) the churners share, so
	// admissions and evictions of the same ID race (0 = default).
	LinkPool int
	// ChaosSpec parameterizes the fault proxy some sessions dial through
	// (iqstream.ParseChaosSpec grammar; empty = DefaultChurnChaos).
	ChaosSpec string
	// Metrics, when non-nil, receives the run's hub counters.
	Metrics *obs.Pipeline
	// Logf receives progress events; nil silences them.
	Logf func(format string, args ...any)
}

// ChurnReport is what a churn soak observed.
type ChurnReport struct {
	Sessions        int   // total peer sessions opened (all variants)
	MidHandshake    int   // sessions dropped mid-handshake line
	Garbage         int   // sessions that sent a non-protocol byte stream
	Proxied         int   // sessions dialed through the chaos proxy
	VerifiedSamples int64 // measured-link samples checked for exact identity
	LinksAdmitted   int64 // hub admissions over the run
	LinksEvicted    int64 // hub evictions over the run
}

func (r ChurnReport) String() string {
	return fmt.Sprintf(
		"churn: sessions=%d (midhs=%d garbage=%d proxied=%d) verified=%d admitted=%d evicted=%d",
		r.Sessions, r.MidHandshake, r.Garbage, r.Proxied,
		r.VerifiedSamples, r.LinksAdmitted, r.LinksEvicted)
}

// Churn runs a join/leave churn soak against a multi-link hub: workers
// race sessions of every flavor — clean transmitters and receivers,
// peers that vanish mid-handshake, peers that speak garbage, peers routed
// through a fault-injecting chaos proxy — over a shared pool of link IDs,
// while one measured link streams a known sample sequence end to end and
// verifies every sample exactly. It returns an error if the measured link
// ever sees a wrong sample (cross-link bleed), if any churn session fails
// in a way the protocol does not allow, or if the hub's registry fails to
// settle afterwards with admissions balancing evictions (a lost or double
// eviction).
func Churn(cfg ChurnConfig) (ChurnReport, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = DefaultChurnWorkers
	}
	if cfg.Rounds <= 0 {
		cfg.Rounds = DefaultChurnRounds
	}
	if cfg.LinkPool <= 0 {
		cfg.LinkPool = DefaultChurnLinkPool
	}
	if cfg.ChaosSpec == "" {
		cfg.ChaosSpec = DefaultChurnChaos
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	met := cfg.Metrics
	if met == nil {
		met = obs.NewPipeline()
	}

	hub, err := iqstream.NewHub("127.0.0.1:0", iqstream.HubConfig{
		BlockSize: defaultChurnBlock,
		Seed:      cfg.Seed,
		Metrics:   &met.Hub,
		Logf:      logf,
	})
	if err != nil {
		return ChurnReport{}, fmt.Errorf("churn: hub: %w", err)
	}
	defer hub.Close()
	go func() {
		if err := hub.Serve(); err != nil {
			logf("churn: hub serve: %v", err)
		}
	}()
	addr := hub.Addr().String()

	proxy, err := iqstream.NewChaosProxyFromSpec(
		"127.0.0.1:0", addr, cfg.ChaosSpec, cfg.Seed, logf)
	if err != nil {
		return ChurnReport{}, fmt.Errorf("churn: proxy: %w", err)
	}
	defer proxy.Close()
	go func() {
		if err := proxy.Serve(); err != nil {
			logf("churn: proxy serve: %v", err)
		}
	}()

	// The measured link: a lockstep tx/rx pair on a link ID no churner
	// touches, streaming an exact arithmetic sample sequence. Any foreign
	// sample — another link's traffic, a stale buffer, a pool aliasing bug
	// — is an immediate hard failure.
	mo := iqstream.LinkOpts{Link: measuredChurnLink}
	mrx, err := iqstream.DialRxLink(addr, mo)
	if err != nil {
		return ChurnReport{}, fmt.Errorf("churn: measured rx: %w", err)
	}
	defer mrx.Close()
	mtx, err := iqstream.DialTxLink(addr, 0, mo)
	if err != nil {
		return ChurnReport{}, fmt.Errorf("churn: measured tx: %w", err)
	}
	defer mtx.Close()

	stopMeasured := make(chan struct{})
	measuredErr := make(chan error, 1)
	var verified atomic.Int64
	var measuredWG sync.WaitGroup
	measuredWG.Add(1)
	go func() {
		defer measuredWG.Done()
		block := make([]complex128, defaultChurnBlock)
		next := complex128(0)
		for {
			select {
			case <-stopMeasured:
				return
			default:
			}
			for i := range block {
				block[i] = next + complex(float64(i), 1)
			}
			if err := mtx.Send(block); err != nil {
				measuredErr <- fmt.Errorf("churn: measured send: %w", err)
				return
			}
			//bhss:allow(detrand) transport deadline: wall clock bounds the recv and never feeds the simulation
			if err := mrx.SetRecvDeadline(time.Now().Add(churnSettleTimeout)); err != nil {
				measuredErr <- err
				return
			}
			got := 0
			for got < len(block) {
				blk, err := mrx.Recv()
				if err != nil {
					measuredErr <- fmt.Errorf("churn: measured recv: %w", err)
					return
				}
				for _, v := range blk {
					want := next + complex(float64(got), 1)
					//bhss:allow(floateq) exact-value check is the point: the payload is integer-valued and any mix arithmetic touching it is a bug
					if v != want {
						measuredErr <- fmt.Errorf(
							"churn: measured link sample %d = %v, want %v: cross-link bleed under churn",
							got, v, want)
						return
					}
					got++
				}
			}
			verified.Add(int64(got))
			next += complex(float64(len(block)), 0)
		}
	}()

	// The churners.
	var midHS, garbage, proxied atomic.Int64
	var workerWG sync.WaitGroup
	workerErr := make(chan error, cfg.Workers)
	for w := 0; w < cfg.Workers; w++ {
		workerWG.Add(1)
		go func(w int) {
			defer workerWG.Done()
			rng := prng.New(cfg.Seed ^ (uint64(w)+1)*0x9e3779b97f4a7c15)
			block := make([]complex128, defaultChurnBlock)
			for round := 0; round < cfg.Rounds; round++ {
				link := uint32(1 + rng.Intn(cfg.LinkPool))
				o := iqstream.LinkOpts{Link: link}
				switch rng.Intn(6) {
				case 0: // clean transmitter session
					tx, err := iqstream.DialTxLink(addr, float64(rng.Intn(7))-3, o)
					if err != nil {
						workerErr <- fmt.Errorf("churn: worker %d tx: %w", w, err)
						return
					}
					for b := 0; b < 1+rng.Intn(3); b++ {
						if err := tx.Send(block); err != nil {
							break // hub may be evicting the link under us
						}
					}
					tx.Close()
				case 1: // clean receiver session
					rx, err := iqstream.DialRxLink(addr, o)
					if err != nil {
						workerErr <- fmt.Errorf("churn: worker %d rx: %w", w, err)
						return
					}
					rx.Close()
				case 2: // tagged jammer + excluding sense receiver
					jam, err := iqstream.DialTxLink(addr, 0, iqstream.LinkOpts{Link: link, Jam: true})
					if err != nil {
						workerErr <- fmt.Errorf("churn: worker %d jam: %w", w, err)
						return
					}
					sense, err := iqstream.DialRxLink(addr, iqstream.LinkOpts{Link: link, Exclude: "jam"})
					if err != nil {
						jam.Close()
						workerErr <- fmt.Errorf("churn: worker %d sense: %w", w, err)
						return
					}
					_ = jam.Send(block)
					sense.Close()
					jam.Close()
				case 3: // vanish mid-handshake line
					conn, err := net.Dial("tcp", addr)
					if err != nil {
						workerErr <- fmt.Errorf("churn: worker %d midhs dial: %w", w, err)
						return
					}
					_, _ = conn.Write([]byte("IQHUB t")) // never finished
					conn.Close()
					midHS.Add(1)
				case 4: // speak garbage
					conn, err := net.Dial("tcp", addr)
					if err != nil {
						workerErr <- fmt.Errorf("churn: worker %d garbage dial: %w", w, err)
						return
					}
					_, _ = conn.Write([]byte("GET / HTTP/1.1\r\n\r\n\x00\xff\x7f"))
					conn.Close()
					garbage.Add(1)
				case 5: // full session through the chaos proxy; faults expected
					proxied.Add(1)
					tx, err := iqstream.DialTxLink(proxy.Addr().String(), 0, o)
					if err != nil {
						continue // the proxy may reset the handshake itself
					}
					for b := 0; b < 1+rng.Intn(3); b++ {
						if err := tx.Send(block); err != nil {
							break
						}
					}
					tx.Close()
				}
			}
		}(w)
	}
	workerWG.Wait()
	close(stopMeasured)
	// Unblock the measured pair if it is parked in a read.
	measuredWG.Wait()

	select {
	case err := <-workerErr:
		return ChurnReport{}, err
	default:
	}
	select {
	case err := <-measuredErr:
		return ChurnReport{}, err
	default:
	}

	// Let the registry settle: once the churners' connections unwind, every
	// pool link must be evicted exactly once — admissions balance evictions
	// with only the measured link still live.
	//bhss:allow(detrand) settle timeout: wall clock bounds the wait and never feeds the simulation
	deadline := time.Now().Add(churnSettleTimeout)
	for {
		if met.Hub.ActiveLinks.Load() == 1 {
			break
		}
		//bhss:allow(detrand) settle timeout: wall clock bounds the wait and never feeds the simulation
		if time.Now().After(deadline) {
			return ChurnReport{}, fmt.Errorf(
				"churn: registry did not settle: %v links still live (admitted %d, evicted %d)",
				met.Hub.ActiveLinks.Load(), met.Hub.LinksAdmitted.Load(), met.Hub.LinksEvicted.Load())
		}
		time.Sleep(5 * time.Millisecond)
	}
	admitted, evicted := met.Hub.LinksAdmitted.Load(), met.Hub.LinksEvicted.Load()
	if admitted != evicted+1 {
		return ChurnReport{}, fmt.Errorf(
			"churn: eviction accounting broken: admitted %d links, evicted %d, 1 live — want admitted == evicted+1",
			admitted, evicted)
	}

	rep := ChurnReport{
		Sessions:        cfg.Workers * cfg.Rounds,
		MidHandshake:    int(midHS.Load()),
		Garbage:         int(garbage.Load()),
		Proxied:         int(proxied.Load()),
		VerifiedSamples: verified.Load(),
		LinksAdmitted:   admitted,
		LinksEvicted:    evicted,
	}
	logf("%s", rep)
	return rep, nil
}
