package soak

import (
	"fmt"
	"sync"
	"time"

	"bhss/internal/iqstream"
	"bhss/internal/obs"
)

// MultiLink defaults: each link pushes SimSeconds of traffic at LinkRate
// through its own lockstep tx/rx pair, unpaced, so the run finishes as
// fast as the hub can mix — the wall clock IS the measurement.
const (
	DefaultMultiLinkLinks = 16
	defaultMultiBlock     = 4096
)

// MultiLinkConfig parameterizes one multi-link capacity run.
type MultiLinkConfig struct {
	// Seed feeds the hub's noise derivation (the payload itself is a
	// deterministic arithmetic sequence, independent of Seed).
	Seed uint64
	// Links is the number of concurrent links, each with its own tx/rx
	// pair (0 = DefaultMultiLinkLinks).
	Links int
	// LinkRate is the nominal per-link rate in samples per second used
	// for the simulated-time accounting (0 = DefaultLinkRate).
	LinkRate float64
	// SimSeconds is the simulated traffic per link, in seconds at
	// LinkRate (0 = DefaultSimSeconds).
	SimSeconds float64
	// Shards overrides the hub's mixer-shard count (0 = hub default).
	Shards int
	// Metrics, when non-nil, receives the run's hub counters.
	Metrics *obs.Pipeline
	// Logf receives progress events; nil silences them.
	Logf func(format string, args ...any)
}

// MultiLinkReport is one capacity run's measurement.
type MultiLinkReport struct {
	Links          int
	SimSeconds     float64 // simulated traffic per link
	WallSeconds    float64 // wall clock for every link to finish
	RTF            float64 // real-time factor: SimSeconds / WallSeconds
	SamplesPerLink int64
	TotalSamples   int64 // verified end to end across all links
}

func (r MultiLinkReport) String() string {
	return fmt.Sprintf("multilink: links=%d sim=%.1fs wall=%.2fs rtf=%.2f samples=%d",
		r.Links, r.SimSeconds, r.WallSeconds, r.RTF, r.TotalSamples)
}

// MultiLink measures how many concurrent links the hub sustains: N lockstep
// tx/rx pairs each push SimSeconds of traffic at LinkRate through their own
// link as fast as the mixer allows, and every delivered sample is checked
// against the link's private arithmetic sequence — the samples embed the
// link ID and block index, so any cross-link bleed or reordering under load
// is an exact-value failure, not a statistical one. The report's RTF is
// per-link simulated time over total wall time: RTF >= 1 means the hub
// carried all N links at least as fast as real time.
func MultiLink(cfg MultiLinkConfig) (MultiLinkReport, error) {
	if cfg.Links <= 0 {
		cfg.Links = DefaultMultiLinkLinks
	}
	if cfg.LinkRate <= 0 {
		cfg.LinkRate = DefaultLinkRate
	}
	if cfg.SimSeconds <= 0 {
		cfg.SimSeconds = DefaultSimSeconds
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	var hubMet *obs.HubMetrics
	if cfg.Metrics != nil {
		hubMet = &cfg.Metrics.Hub
	}

	hub, err := iqstream.NewHub("127.0.0.1:0", iqstream.HubConfig{
		BlockSize: defaultMultiBlock,
		Seed:      cfg.Seed,
		Shards:    cfg.Shards,
		Metrics:   hubMet,
	})
	if err != nil {
		return MultiLinkReport{}, fmt.Errorf("multilink: hub: %w", err)
	}
	defer hub.Close()
	go func() {
		if err := hub.Serve(); err != nil {
			logf("multilink: hub serve: %v", err)
		}
	}()
	addr := hub.Addr().String()

	perLink := int64(cfg.SimSeconds * cfg.LinkRate)
	blocks := int(perLink / defaultMultiBlock)
	if blocks < 1 {
		blocks = 1
	}
	perLink = int64(blocks) * defaultMultiBlock

	errs := make(chan error, cfg.Links)
	var wg sync.WaitGroup
	//bhss:allow(detrand) the wall clock IS the measurement here: RTF is simulated time over wall time
	start := time.Now()
	for i := 0; i < cfg.Links; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id := uint32(i + 1) // keep off link 0: its hooks are legacy state
			o := iqstream.LinkOpts{Link: id}
			rx, err := iqstream.DialRxLink(addr, o)
			if err != nil {
				errs <- fmt.Errorf("multilink: link %d rx: %w", id, err)
				return
			}
			defer rx.Close()
			tx, err := iqstream.DialTxLink(addr, 0, o)
			if err != nil {
				errs <- fmt.Errorf("multilink: link %d tx: %w", id, err)
				return
			}
			defer tx.Close()
			//bhss:allow(detrand) transport deadline: wall clock bounds the recv and never feeds the simulation
			if err := rx.SetRecvDeadline(time.Now().Add(DefaultTimeout)); err != nil {
				errs <- err
				return
			}
			block := make([]complex128, defaultMultiBlock)
			for b := 0; b < blocks; b++ {
				for s := range block {
					block[s] = complex(float64(id), float64(b*defaultMultiBlock+s))
				}
				if err := tx.Send(block); err != nil {
					errs <- fmt.Errorf("multilink: link %d send: %w", id, err)
					return
				}
				got := 0
				for got < len(block) {
					blk, err := rx.Recv()
					if err != nil {
						errs <- fmt.Errorf("multilink: link %d recv: %w", id, err)
						return
					}
					for _, v := range blk {
						want := complex(float64(id), float64(b*defaultMultiBlock+got))
						//bhss:allow(floateq) exact-value check is the point: the payload is integer-valued and any mix arithmetic touching it is a bug
						if v != want {
							errs <- fmt.Errorf(
								"multilink: link %d sample %d = %v, want %v: bleed or reorder under load",
								id, b*defaultMultiBlock+got, v, want)
							return
						}
						got++
					}
				}
			}
		}(i)
	}
	wg.Wait()
	wall := time.Since(start).Seconds()
	select {
	case err := <-errs:
		return MultiLinkReport{}, err
	default:
	}

	rep := MultiLinkReport{
		Links:          cfg.Links,
		SimSeconds:     float64(perLink) / cfg.LinkRate,
		WallSeconds:    wall,
		SamplesPerLink: perLink,
		TotalSamples:   perLink * int64(cfg.Links),
	}
	if wall > 0 {
		rep.RTF = rep.SimSeconds / wall
	}
	logf("%s", rep)
	return rep, nil
}
