// Package soak drives a full BHSS link — transmitter, virtual-air hub,
// receiver — through a fault-injecting chaos proxy and reports what
// survived. It is the repo's transport-resilience acceptance harness
// (DESIGN.md §12): the chaos soak passes when traffic keeps flowing
// through resets, truncations and stalls with bounded frame loss, at
// least one reconnect and re-acquisition, no deadlock and no leaked
// goroutines. Both the CI soak job (TestChaosSoak) and bhssbench's
// -exp soak front this package.
package soak

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"bhss/internal/core"
	"bhss/internal/iqstream"
	"bhss/internal/obs"
)

// Defaults: the soak models a nominal 100 kS/s telemetry link, far below
// the DSP's 20 MS/s front-end rate, so "30 seconds of simulated traffic"
// is 3M samples — seconds of wall clock, not minutes.
const (
	DefaultLinkRate      = 100e3
	DefaultSimSeconds    = 30.0
	DefaultTimeout       = 120 * time.Second
	DefaultPayload       = "bandwidth hopping spread spectrum soak frame"
	defaultHubBlock      = 4096
	defaultRxBuffer      = 64 // blocks: a shallow in-flight cushion, so a link
	// reset wipes at most a few bursts of undelivered queue
	defaultTxPacing      = 20 * time.Millisecond
	defaultDrainGrace    = 2 * time.Second
	defaultWatchdogCheck = 50 * time.Millisecond
)

// Config parameterizes one soak run.
type Config struct {
	// Seed drives every random choice in the run: the link's scrambler
	// and hop schedule, the chaos fault schedule and the reconnect
	// jitter.
	Seed uint64
	// ChaosSpec is the fault-injection spec (iqstream.ParseChaosSpec
	// grammar); empty runs a transparent proxy.
	ChaosSpec string
	// SimSeconds is the amount of simulated traffic to push, in seconds
	// at LinkRate (0 = DefaultSimSeconds).
	SimSeconds float64
	// LinkRate is the nominal soak link rate in samples per second used
	// for the simulated-time accounting (0 = DefaultLinkRate).
	LinkRate float64
	// Payload is the per-frame payload (nil = DefaultPayload).
	Payload []byte
	// Timeout bounds the wall-clock run (0 = DefaultTimeout).
	Timeout time.Duration
	// Metrics, when non-nil, receives the run's hub and client counters;
	// nil allocates a private pipeline.
	Metrics *obs.Pipeline
	// Logf receives progress events; nil silences them.
	Logf func(format string, args ...any)
}

// Report is the outcome of one soak run.
type Report struct {
	FramesSent     int
	FramesReceived int
	FramesLost     int

	SamplesSent int64
	SimSeconds  float64

	Reconnects  int64 // successful re-establishments (both clients)
	StreamGaps  int64 // rx-side discontinuities surfaced as ErrStreamGap
	Reacquired  int64 // gaps the receive pipeline recovered from
	Evictions   int64 // hub slow-consumer evictions
	HubDrops    int64 // mixed blocks dropped at full receiver queues
	WallSeconds float64
}

func (r Report) String() string {
	return fmt.Sprintf(
		"soak: %d/%d frames (%d lost), %.1fs simulated in %.1fs wall, %d reconnects, %d gaps (%d reacquired), %d evictions",
		r.FramesReceived, r.FramesSent, r.FramesLost,
		r.SimSeconds, r.WallSeconds, r.Reconnects, r.StreamGaps, r.Reacquired, r.Evictions)
}

// Run executes one soak and blocks until the link drains or the timeout
// hits. A non-nil error means the harness itself failed to run, not that
// frames were lost — loss is the Report's business.
func Run(cfg Config) (Report, error) {
	if cfg.LinkRate <= 0 {
		cfg.LinkRate = DefaultLinkRate
	}
	if cfg.SimSeconds <= 0 {
		cfg.SimSeconds = DefaultSimSeconds
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = DefaultTimeout
	}
	if cfg.Payload == nil {
		cfg.Payload = []byte(DefaultPayload)
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	met := cfg.Metrics
	if met == nil {
		met = obs.NewPipeline()
	}

	start := obs.Now()
	deadline := start + cfg.Timeout.Nanoseconds()

	// The stack: hub ← chaos proxy ← reconnecting clients.
	hub, err := iqstream.NewHub("127.0.0.1:0", iqstream.HubConfig{
		BlockSize: defaultHubBlock,
		RxBuffer:  defaultRxBuffer,
		// Keep the per-transmitter queue shallow (backpressure instead
		// of depth): after a reconnect the old port's leftover queue
		// transmits on top of the retry stream — a real collision — and
		// a shallow queue bounds how many frames that collision costs.
		MaxPending: 1 << 18,
		Seed:       cfg.Seed,
		Metrics:    &met.Hub,
		Logf:       logf,
	})
	if err != nil {
		return Report{}, fmt.Errorf("soak: hub: %w", err)
	}
	defer hub.Close()
	go func() {
		if err := hub.Serve(); err != nil {
			logf("soak: hub serve: %v", err)
		}
	}()

	proxy, err := iqstream.NewChaosProxyFromSpec(
		"127.0.0.1:0", hub.Addr().String(), cfg.ChaosSpec, cfg.Seed, logf)
	if err != nil {
		return Report{}, fmt.Errorf("soak: chaos proxy: %w", err)
	}
	defer proxy.Close()
	go func() {
		if err := proxy.Serve(); err != nil {
			logf("soak: proxy serve: %v", err)
		}
	}()
	linkAddr := proxy.Addr().String()

	ccfg := core.DefaultConfig(cfg.Seed)
	ccfg.Sync = core.PreambleSync
	tx, err := core.NewTransmitter(ccfg)
	if err != nil {
		return Report{}, fmt.Errorf("soak: transmitter: %w", err)
	}
	rx, err := core.NewReceiver(ccfg)
	if err != nil {
		return Report{}, fmt.Errorf("soak: receiver: %w", err)
	}
	// Burst lengths vary per frame (each frame draws its own hop plan),
	// so walk a probe transmitter through the schedule to learn them up
	// front; the receive loop needs the exact length of each frame to
	// consume the stream burst by burst.
	probe, err := core.NewTransmitter(ccfg)
	if err != nil {
		return Report{}, fmt.Errorf("soak: probe transmitter: %w", err)
	}
	targetSamples := int64(cfg.SimSeconds * cfg.LinkRate)
	var lengths []int
	maxBurst := 0
	for total := int64(0); total < targetSamples || len(lengths) == 0; {
		n, err := probe.BurstLength(len(cfg.Payload))
		if err != nil {
			return Report{}, fmt.Errorf("soak: burst length: %w", err)
		}
		if _, err := probe.EncodeFrame(cfg.Payload); err != nil {
			return Report{}, fmt.Errorf("soak: probe encode: %w", err)
		}
		lengths = append(lengths, n)
		if n > maxBurst {
			maxBurst = n
		}
		total += int64(n)
	}
	frames := len(lengths)

	rcfg := func(seedOff uint64) iqstream.ReconnectConfig {
		return iqstream.ReconnectConfig{
			BackoffBase: 5 * time.Millisecond,
			BackoffMax:  250 * time.Millisecond,
			MaxAttempts: 40,
			Seed:        cfg.Seed + seedOff,
			Metrics:     &met.Net,
			Logf:        logf,
		}
	}
	txc, err := iqstream.DialTxReconnecting(linkAddr, 0, rcfg(101))
	if err != nil {
		return Report{}, fmt.Errorf("soak: dial tx: %w", err)
	}
	defer txc.Close()
	rxc, err := iqstream.DialRxReconnecting(linkAddr, rcfg(202))
	if err != nil {
		return Report{}, fmt.Errorf("soak: dial rx: %w", err)
	}
	defer rxc.Close()

	// Transmitter: frames back to back with a token pacing sleep; Send
	// retries across reconnects, and a frame that still fails is simply
	// lost traffic, not a harness error.
	var samplesSent atomic.Int64
	txDone := make(chan struct{})
	go func() {
		defer close(txDone)
		for i := 0; i < frames; i++ {
			burst, err := tx.EncodeFrame(cfg.Payload)
			if err != nil {
				logf("soak: encode frame %d: %v", i, err)
				return
			}
			if err := txc.Send(burst.Samples); err != nil {
				logf("soak: send frame %d: %v", i, err)
			}
			samplesSent.Add(int64(len(burst.Samples)))
			if obs.Now() > deadline {
				return
			}
			time.Sleep(defaultTxPacing)
		}
		// Flush a silence tail so the final burst clears the receiver's
		// decode gate (burst length plus one hub block): without it the
		// stream ends mid-block and the last frame decodes only when the
		// block padding happens to line up. Best effort — on a torn-down
		// link the tail is just more lost traffic.
		if err := txc.Send(make([]complex128, 2*defaultHubBlock)); err != nil {
			logf("soak: tail flush: %v", err)
		}
	}()

	// Watchdog: once the transmitter is done, give the receive side a
	// grace period of no progress, then sever it so the receive loop
	// unblocks; frames still unaccounted are lost. Also enforces the
	// hard wall-clock deadline.
	var lastProgress atomic.Int64
	lastProgress.Store(start)
	stopWatchdog := make(chan struct{})
	watchdogDone := make(chan struct{})
	go func() {
		defer close(watchdogDone)
		txFinished := false
		tdone := txDone
		for {
			select {
			case <-stopWatchdog:
				return
			case <-tdone:
				txFinished = true
				tdone = nil // select on it only once
			case <-time.After(defaultWatchdogCheck):
			}
			now := obs.Now()
			idle := now-lastProgress.Load() > defaultDrainGrace.Nanoseconds()
			if now > deadline || (txFinished && idle) {
				rxc.Close()
				return
			}
		}
	}()

	// Reader: drain the socket into a deep buffer the moment blocks
	// arrive, so decode speed (which the race detector slows an order of
	// magnitude) never backpressures TCP. Backpressure would fill the
	// hub's per-receiver queue, force mixer-side drops, and shift the
	// byte offsets the chaos schedule's deterministic faults land on.
	events := make(chan rxEvent, 1<<12)
	recvStop := make(chan struct{})
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		defer close(events)
		for {
			block, err := rxc.Recv()
			var ev rxEvent
			switch {
			case err == nil:
				ev = rxEvent{block: block}
			case errors.Is(err, iqstream.ErrStreamGap):
				ev = rxEvent{gap: true}
			default:
				return // closed (watchdog or Close): drained as far as possible
			}
			lastProgress.Store(obs.Now())
			select {
			case events <- ev:
			case <-recvStop:
				return
			}
		}
	}()

	rep := runReceiver(events, rx, met, lengths, maxBurst, logf)
	close(recvStop)
	close(stopWatchdog)
	<-watchdogDone
	<-txDone
	rxc.Close()
	<-readerDone

	rep.FramesSent = frames
	rep.FramesLost = frames - rep.FramesReceived
	rep.SamplesSent = samplesSent.Load()
	rep.SimSeconds = float64(rep.SamplesSent) / cfg.LinkRate
	rep.Reconnects = met.Net.Reconnects.Load()
	rep.StreamGaps = met.Net.StreamGaps.Load()
	rep.Reacquired = met.Net.Reacquired.Load()
	rep.Evictions = met.Hub.RxEvictions.Load()
	rep.HubDrops = met.Hub.RxQueueDrops.Load()
	rep.WallSeconds = float64(obs.Now()-start) / 1e9
	logf("%s", rep.String())
	return rep, nil
}

// rxEvent is one unit from the reader goroutine: a mixed block, or a
// stream-gap marker after a reconnect.
type rxEvent struct {
	block []complex128
	gap   bool
}

// runReceiver is the streaming receive pipeline: accumulate the mixed
// stream, decode bursts in frame order, skip the frame counter past
// bursts that never arrive, and treat every reconnect gap as a clean
// re-acquisition point.
func runReceiver(events <-chan rxEvent, rx *core.Receiver, met *obs.Pipeline,
	lengths []int, maxBurst int, logf func(string, ...any)) Report {
	var rep Report
	frames := len(lengths)
	window := make([]complex128, 0, 3*maxBurst+defaultHubBlock)
	accounted := 0 // received + skipped-as-lost, bounds the loop
	for accounted < frames {
		ev, ok := <-events
		if !ok {
			return rep // reader done: drained as far as possible
		}
		if ev.gap {
			// Samples spanning the gap are gone: drop the partial
			// window and restart acquisition on the fresh stream.
			window = window[:0]
			met.Net.Reacquired.Inc()
			rep.Reacquired++
			continue
		}
		window = append(window, ev.block...)
	decode:
		for accounted < frames {
			// The frame counter names the burst the receiver expects
			// next; its exact length is known from the probe walk.
			fr := int(rx.FrameCounter())
			if fr >= frames {
				return rep
			}
			burstLen := lengths[fr]
			// Attempt a decode once the window could hold the whole
			// burst plus a little slack for chaos-induced splices; skip
			// the frame counter forward only when a window a full extra
			// burst larger has no trace of the expected preamble (the
			// burst is gone, not late).
			if len(window) < burstLen+defaultHubBlock {
				break decode
			}
			_, stats, err := rx.DecodeBurst(window)
			switch {
			case err == nil:
				rep.FramesReceived++
				accounted++
				window = consume(window, stats.AcquisitionOffset+burstLen)
			case errors.Is(err, core.ErrNoPreamble):
				if len(window) < burstLen+maxBurst+defaultHubBlock {
					// The burst may simply not be complete yet.
					break decode
				}
				// A full skip window with no preamble: that frame is
				// lost; advance the counter and retry the same samples
				// against the next frame's preamble.
				rx.SkipFrame()
				accounted++
				logf("soak: frame %d skipped (no preamble in %d samples)", fr, len(window))
				// Keep the window: it likely holds the next burst.
			default:
				// Acquired but failed to decode: chaos got the body,
				// or the acquisition latched onto a corrupted overlap
				// region. Consume only just past the acquisition point
				// — consuming a whole burst length here would eat into
				// the next intact burst and turn one corrupted frame
				// into a self-sustaining loss cascade.
				accounted++
				logf("soak: frame %d lost: %v", fr, err)
				window = consume(window, stats.AcquisitionOffset+defaultHubBlock)
			}
		}
	}
	return rep
}

// consume drops the first n samples of the window in place, so the
// backing array is reused instead of regrown every burst.
func consume(window []complex128, n int) []complex128 {
	if n > len(window) {
		n = len(window)
	}
	rest := copy(window, window[n:])
	return window[:rest]
}
