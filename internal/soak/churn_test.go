package soak

import (
	"testing"
)

// TestChurnSoak is the registry-churn acceptance gate (DESIGN.md §17): at
// least 200 link sessions of every flavor — clean peers, mid-handshake
// disconnects, garbage speakers, chaos-proxied links — churn the hub's
// link registry under the race detector while a measured link verifies
// every sample exactly, and afterwards the goroutine-leak pin (cleanup
// below) proves nothing survived the churn.
func TestChurnSoak(t *testing.T) {
	checkGoroutines(t)
	rep, err := Churn(ChurnConfig{
		Seed: 0xC0FFEE,
		Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sessions < 200 {
		t.Fatalf("churn ran %d sessions, want >= 200", rep.Sessions)
	}
	if rep.MidHandshake == 0 || rep.Garbage == 0 || rep.Proxied == 0 {
		t.Fatalf("churn variant never ran: %s", rep)
	}
	if rep.VerifiedSamples == 0 {
		t.Fatalf("measured link verified nothing: %s", rep)
	}
	if rep.LinksAdmitted != rep.LinksEvicted+1 {
		t.Fatalf("eviction not exactly-once: %s", rep)
	}
}

// TestChurnSoakSeeds reruns a smaller churn across seeds so the variant
// schedule and link-ID collisions differ — a cheap property sweep.
func TestChurnSoakSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("seed sweep skipped in -short")
	}
	checkGoroutines(t)
	for _, seed := range []uint64{1, 2, 3} {
		rep, err := Churn(ChurnConfig{
			Seed:    seed,
			Workers: 4,
			Rounds:  8,
			Logf:    t.Logf,
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if rep.LinksAdmitted != rep.LinksEvicted+1 {
			t.Fatalf("seed %d: eviction not exactly-once: %s", seed, rep)
		}
	}
}
