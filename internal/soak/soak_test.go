package soak

import (
	"runtime"
	"testing"
	"time"
)

// checkGoroutines is a goleak-style pin with no external dependency: the
// cleanup fails the test if the goroutine count has not returned to its
// starting level after a grace period.
func checkGoroutines(t *testing.T) {
	t.Helper()
	start := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(5 * time.Second)
		for {
			n := runtime.NumGoroutine()
			if n <= start {
				return
			}
			if time.Now().After(deadline) {
				buf := make([]byte, 1<<20)
				t.Errorf("goroutine leak: %d at start, %d after teardown\n%s",
					start, n, buf[:runtime.Stack(buf, true)])
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
	})
}

// TestChaosSoak is the transport-resilience acceptance test (DESIGN.md
// §12): ≥30 simulated seconds of framed traffic through a proxy that
// deterministically resets connections, truncates blocks and chops
// writes, with bounded frame loss, at least one reconnect and one
// re-acquisition, no deadlock (the test's own timeout) and no leaked
// goroutines. CI runs it under -race.
func TestChaosSoak(t *testing.T) {
	checkGoroutines(t)
	rep, err := Run(Config{
		Seed: 42,
		// The run pushes ~48 MB per direction, so the 30 MB byte-exact
		// resetevery kills the tx link once (forcing a reconnect) and
		// the rx link once (forcing a stream gap and re-acquisition) at
		// deterministic stream offsets, independent of scheduling and
		// read coalescing; stall, trunc and short layer pauses,
		// mid-block truncation and partial reads on top.
		ChaosSpec: "resetevery=30000000,stall=0.002:20,trunc=0.001,short=0.2,seed=9",
		Timeout:   100 * time.Second,
		Logf:      t.Logf,
	})
	if err != nil {
		t.Fatalf("soak harness: %v", err)
	}
	t.Log(rep.String())

	if rep.SimSeconds < 30 {
		t.Errorf("simulated %.1fs of traffic, want >= 30s", rep.SimSeconds)
	}
	if rep.FramesReceived < rep.FramesSent/2 {
		t.Errorf("received %d of %d frames, want at least half", rep.FramesReceived, rep.FramesSent)
	}
	if rep.FramesReceived+rep.FramesLost != rep.FramesSent {
		t.Errorf("accounting broken: %d received + %d lost != %d sent",
			rep.FramesReceived, rep.FramesLost, rep.FramesSent)
	}
	if rep.Reconnects < 1 {
		t.Errorf("reconnects = %d, want >= 1", rep.Reconnects)
	}
	if rep.Reacquired < 1 {
		t.Errorf("re-acquisitions = %d, want >= 1", rep.Reacquired)
	}
}

// TestCleanSoak pins the no-chaos baseline: every frame arrives, nothing
// reconnects, nothing leaks. (The bit-exactness of the DSP itself is
// pinned by the golden vectors in internal/core.)
func TestCleanSoak(t *testing.T) {
	checkGoroutines(t)
	rep, err := Run(Config{
		Seed:       42,
		SimSeconds: 5,
		Timeout:    60 * time.Second,
		Logf:       t.Logf,
	})
	if err != nil {
		t.Fatalf("soak harness: %v", err)
	}
	t.Log(rep.String())
	if rep.FramesLost != 0 {
		t.Errorf("lost %d frames on a clean link", rep.FramesLost)
	}
	if rep.Reconnects != 0 || rep.StreamGaps != 0 {
		t.Errorf("clean link saw %d reconnects, %d gaps", rep.Reconnects, rep.StreamGaps)
	}
}
