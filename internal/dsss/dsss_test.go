package dsss

import (
	"math"
	"testing"
	"testing/quick"

	"bhss/internal/dsp"
	"bhss/internal/prng"
)

func TestSpreadDespreadRoundTrip(t *testing.T) {
	symbols := []int{0, 1, 7, 8, 15, 3, 3, 12}
	sp := NewSpreader(77)
	chips, err := sp.Spread(symbols)
	if err != nil {
		t.Fatal(err)
	}
	if len(chips) != len(symbols)*ComplexChipsPerSymbol {
		t.Fatalf("chip count %d", len(chips))
	}
	de := NewDespreader(77)
	got, metrics, err := de.Despread(chips)
	if err != nil {
		t.Fatal(err)
	}
	for i := range symbols {
		if got[i] != symbols[i] {
			t.Fatalf("symbol %d: got %d want %d", i, got[i], symbols[i])
		}
		if math.Abs(metrics[i]-16) > 1e-9 {
			t.Fatalf("clean metric %v, want 16", metrics[i])
		}
	}
}

func TestSpreadRejectsBadSymbol(t *testing.T) {
	sp := NewSpreader(1)
	if _, err := sp.Spread([]int{16}); err == nil {
		t.Fatal("symbol 16 should error")
	}
	if _, err := sp.Spread([]int{-1}); err == nil {
		t.Fatal("symbol -1 should error")
	}
}

func TestDespreadRejectsPartialSymbol(t *testing.T) {
	de := NewDespreader(1)
	if _, _, err := de.Despread(make([]complex128, 17)); err == nil {
		t.Fatal("partial symbol should error")
	}
}

func TestScramblingMakesStreamsDiffer(t *testing.T) {
	// Same symbols, different seeds -> different chip streams.
	symbols := []int{5, 5, 5, 5}
	a, _ := NewSpreader(1).Spread(symbols)
	b, _ := NewSpreader(2).Spread(symbols)
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if same > len(a)*3/4 {
		t.Fatalf("different seeds produced %d/%d identical chips", same, len(a))
	}
}

func TestScramblingWhitensRepeatedSymbols(t *testing.T) {
	// Repeating one symbol must not produce a periodic chip stream: the
	// autocorrelation at the symbol period should be far below the peak.
	symbols := make([]int, 64)
	chips, _ := NewSpreader(3).Spread(symbols)
	peak := real(dsp.DotConj(chips, chips))
	lag := ComplexChipsPerSymbol
	shifted := chips[lag:]
	off := dsp.DotConj(shifted, chips[:len(shifted)])
	if math.Hypot(real(off), imag(off)) > peak/4 {
		t.Fatalf("chip stream periodic despite scrambling: off=%v peak=%v", off, peak)
	}
}

func TestDespreadSurvivesNoise(t *testing.T) {
	src := prng.New(9)
	symbols := make([]int, 100)
	for i := range symbols {
		symbols[i] = src.Intn(16)
	}
	chips, _ := NewSpreader(42).Spread(symbols)
	// Add noise at 0 dB SNR per chip: despreading gain should still give
	// near-perfect decisions (metric margin ~ sqrt(16) above noise).
	noisy := make([]complex128, len(chips))
	for i, c := range chips {
		noisy[i] = c + src.ComplexNorm()
	}
	got, _, err := NewDespreader(42).Despread(noisy)
	if err != nil {
		t.Fatal(err)
	}
	errors := 0
	for i := range symbols {
		if got[i] != symbols[i] {
			errors++
		}
	}
	if errors > 2 {
		t.Fatalf("%d/100 symbol errors at 0 dB chip SNR, want <= 2", errors)
	}
}

func TestDespreadWrongSeedFails(t *testing.T) {
	symbols := []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}
	chips, _ := NewSpreader(100).Spread(symbols)
	got, _, err := NewDespreader(101).Despread(chips)
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i := range symbols {
		if got[i] == symbols[i] {
			correct++
		}
	}
	if correct > len(symbols)/2 {
		t.Fatalf("wrong seed decoded %d/%d symbols", correct, len(symbols))
	}
}

func TestSkipSymbolsKeepsSync(t *testing.T) {
	symbols := []int{4, 9, 2, 14, 0, 7}
	chips, _ := NewSpreader(55).Spread(symbols)
	de := NewDespreader(55)
	de.SkipSymbols(2)
	got, _, err := de.Despread(chips[2*ComplexChipsPerSymbol:])
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range symbols[2:] {
		if got[i] != want {
			t.Fatalf("after skip, symbol %d: got %d want %d", i, got[i], want)
		}
	}
}

func TestStreamingSpreadMatchesOneShot(t *testing.T) {
	symbols := []int{3, 1, 4, 1, 5, 9, 2, 6}
	whole, _ := NewSpreader(8).Spread(symbols)
	sp := NewSpreader(8)
	a, _ := sp.Spread(symbols[:3])
	b, _ := sp.Spread(symbols[3:])
	part := append(a, b...)
	for i := range whole {
		if whole[i] != part[i] {
			t.Fatalf("streaming spread diverges at chip %d", i)
		}
	}
}

func TestExpectedChipsMatchesSpreader(t *testing.T) {
	symbols := []int{0, 0, 0, 0, 10, 7}
	want, _ := NewSpreader(123).Spread(symbols)
	got, err := ExpectedChips(123, symbols)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ExpectedChips diverges at %d", i)
		}
	}
}

func TestQuickRoundTripRandomSymbols(t *testing.T) {
	f := func(seed uint64, raw []byte) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 64 {
			raw = raw[:64]
		}
		symbols := make([]int, len(raw))
		for i, b := range raw {
			symbols[i] = int(b & 0x0F)
		}
		chips, err := NewSpreader(seed).Spread(symbols)
		if err != nil {
			return false
		}
		got, _, err := NewDespreader(seed).Despread(chips)
		if err != nil {
			return false
		}
		for i := range symbols {
			if got[i] != symbols[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestChipStreamUnitPower(t *testing.T) {
	symbols := make([]int, 256)
	src := prng.New(4)
	for i := range symbols {
		symbols[i] = src.Intn(16)
	}
	chips, _ := NewSpreader(11).Spread(symbols)
	if p := dsp.Power(chips); math.Abs(p-1) > 1e-9 {
		t.Fatalf("chip power %v, want 1", p)
	}
}

func BenchmarkSpread(b *testing.B) {
	symbols := make([]int, 1024)
	sp := NewSpreader(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sp.Spread(symbols); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDespread(b *testing.B) {
	symbols := make([]int, 1024)
	chips, _ := NewSpreader(1).Spread(symbols)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		de := NewDespreader(1)
		if _, _, err := de.Despread(chips); err != nil {
			b.Fatal(err)
		}
	}
}
