package dsss

import (
	"testing"

	"bhss/internal/alloctest"
)

// TestHotPathZeroAlloc asserts SpreadAppend's steady-state zero-allocation
// contract when the caller reuses the chip buffer.
func TestHotPathZeroAlloc(t *testing.T) {
	s := NewSpreader(7)
	symbols := make([]int, 64)
	for i := range symbols {
		symbols[i] = i % 16
	}
	var dst []complex128
	var err error
	alloctest.AssertZero(t, "Spreader.SpreadAppend", func() {
		dst, err = s.SpreadAppend(dst[:0], symbols)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(dst) != len(symbols)*ComplexChipsPerSymbol {
		t.Fatalf("spread %d symbols into %d chips", len(symbols), len(dst))
	}
}
