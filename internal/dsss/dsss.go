// Package dsss implements the direct-sequence spreading layer: 4-bit symbols
// are spread to 32 chips from the 16-ary quasi-orthogonal table (16 complex
// QPSK chips), multiplied by a seed-derived ±1 scrambling overlay so the
// transmitted chip stream is unpredictable to the jammer, and recovered by a
// bank of 16 correlators that picks the symbol with the highest correlation
// (§6.1 of the paper).
//
// The spreading factor is 8 chips per bit (32 chips / 4 bits), a processing
// gain of 9 dB, matching the paper's prototype.
package dsss

import (
	"fmt"
	"sync"

	"bhss/internal/dsp/simd"
	"bhss/internal/pn"
)

// ComplexChipsPerSymbol is the number of complex (QPSK) chips per 4-bit
// symbol: 32 binary chips pair into 16.
const ComplexChipsPerSymbol = pn.ChipsPerSymbol / 2

// ProcessingGainDB is the despreading gain of the 16-ary scheme in dB
// (spreading factor 8 ~ 9 dB).
const ProcessingGainDB = 9.03

// The chip table is a pure function of the 802.15.4 base sequence, so every
// spreader and despreader in the process shares one read-only complex-row
// copy instead of rebuilding it per instance (construction used to dominate
// the decoder's allocation profile).
var (
	sharedRowsOnce sync.Once
	sharedRowsVal  [][]complex128
)

func sharedRows() [][]complex128 {
	sharedRowsOnce.Do(func() {
		sharedRowsVal = pn.NewChipTable().ComplexTable()
	})
	return sharedRowsVal
}

// Spreader maps symbol streams to scrambled complex chip streams. The
// scrambler state advances across calls, so one Spreader instance must see
// the symbols in transmission order.
type Spreader struct {
	rows [][]complex128
	scr  *pn.Scrambler
}

// NewSpreader returns a spreader whose scrambling overlay derives from the
// pre-shared seed.
func NewSpreader(seed uint64) *Spreader {
	return &Spreader{rows: sharedRows(), scr: pn.NewScrambler(seed)}
}

// Spread expands symbols (each 0..15) into scrambled complex chips,
// 16 per symbol.
func (s *Spreader) Spread(symbols []int) ([]complex128, error) {
	return s.SpreadAppend(make([]complex128, 0, len(symbols)*ComplexChipsPerSymbol), symbols)
}

// SpreadAppend is Spread appending into dst, for callers that reuse a chip
// buffer across calls. The symbols are validated before any scrambler state
// advances, so a failed call leaves the stream synchronous.
//
//bhss:hotpath
func (s *Spreader) SpreadAppend(dst []complex128, symbols []int) ([]complex128, error) {
	for _, sym := range symbols {
		if sym < 0 || sym >= pn.NumSymbols {
			return nil, fmt.Errorf("dsss: symbol %d out of range", sym)
		}
	}
	base := len(dst)
	for _, sym := range symbols {
		dst = append(dst, s.rows[sym]...)
	}
	s.scr.Apply(dst[base:])
	return dst, nil
}

// Despreader recovers symbols from chip estimates using a correlator bank.
// Like the Spreader, its scrambler advances across calls and must stay
// chip-synchronous with the transmitter.
type Despreader struct {
	rows [][]complex128
	scr  *pn.Scrambler
}

// NewDespreader returns a despreader synchronized to the same seed as the
// transmitter's Spreader.
func NewDespreader(seed uint64) *Despreader {
	return &Despreader{rows: sharedRows(), scr: pn.NewScrambler(seed)}
}

// SkipSymbols advances the scrambler past n symbols without despreading,
// used when a receiver drops a corrupted region but must stay synchronous.
func (d *Despreader) SkipSymbols(n int) {
	d.scr.Skip(n * ComplexChipsPerSymbol)
}

// Despread consumes len(chips)/16 symbols worth of chip estimates and
// returns the hard symbol decisions together with the per-symbol correlation
// metric (the winning correlator's real output, normalized so a noise-free
// matched symbol scores ~16). Chips beyond the last whole symbol are an
// error: the framing layer always produces whole symbols.
func (d *Despreader) Despread(chips []complex128) ([]int, []float64, error) {
	if len(chips)%ComplexChipsPerSymbol != 0 {
		return nil, nil, fmt.Errorf("dsss: %d chips is not a whole number of symbols", len(chips))
	}
	n := len(chips) / ComplexChipsPerSymbol
	symbols := make([]int, n)
	metrics := make([]float64, n)
	var buf [ComplexChipsPerSymbol]complex128
	for i := 0; i < n; i++ {
		copy(buf[:], chips[i*ComplexChipsPerSymbol:(i+1)*ComplexChipsPerSymbol])
		// Descramble: the overlay is ±1, so applying it again removes it.
		d.scr.Apply(buf[:])
		best, bestMetric := 0, negInf
		for sym, row := range d.rows {
			acc := simd.CorrReal(buf[:], row)
			if acc > bestMetric {
				bestMetric = acc
				best = sym
			}
		}
		symbols[i] = best
		metrics[i] = bestMetric
	}
	return symbols, metrics, nil
}

const negInf = -1e308

// ExpectedChips returns the scrambled chip sequence a transmitter with the
// given seed would emit for the symbol stream, without disturbing any live
// spreader state. Receivers use it to build acquisition templates for the
// known preamble.
func ExpectedChips(seed uint64, symbols []int) ([]complex128, error) {
	return NewSpreader(seed).Spread(symbols)
}
