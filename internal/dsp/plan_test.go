package dsp

import (
	"testing"
)

func TestFFTPlanMatchesNaiveDFT(t *testing.T) {
	// Both parities of log2(n) exercise the lone radix-2 stage and the
	// specialized first radix-4 pass; 4096 covers several fused passes.
	for _, n := range []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 2048, 4096} {
		p, err := NewFFTPlan(n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if p.Size() != n {
			t.Fatalf("n=%d: Size() = %d", n, p.Size())
		}
		x := randSignal(n, uint64(n)+7)
		want := dftNaive(x)
		got := append([]complex128(nil), x...)
		p.Forward(got)
		for k := range want {
			if !cEq(got[k], want[k], 1e-9*float64(n)) {
				t.Fatalf("n=%d bin %d: got %v want %v", n, k, got[k], want[k])
			}
		}
	}
}

func TestFFTPlanInverseRoundTrip(t *testing.T) {
	for _, n := range []int{1, 2, 8, 64, 512, 4096} {
		p := PlanFFT(n)
		x := randSignal(n, uint64(n)+13)
		got := append([]complex128(nil), x...)
		p.Forward(got)
		p.Inverse(got)
		for k := range x {
			if !cEq(got[k], x[k], 1e-10*float64(n)) {
				t.Fatalf("n=%d sample %d: got %v want %v", n, k, got[k], x[k])
			}
		}
	}
}

func TestLargeNonPow2FFTMatchesNaive(t *testing.T) {
	// Bluestein path at sizes past the trivial ones, including a prime.
	for _, n := range []int{384, 500, 769} {
		x := randSignal(n, uint64(n)+29)
		want := dftNaive(x)
		got := FFT(append([]complex128(nil), x...))
		for k := range want {
			if !cEq(got[k], want[k], 1e-8*float64(n)) {
				t.Fatalf("n=%d bin %d: got %v want %v", n, k, got[k], want[k])
			}
		}
	}
}

func TestNewFFTPlanRejectsBadSizes(t *testing.T) {
	for _, n := range []int{-4, 0, 3, 6, 12, 1000} {
		if _, err := NewFFTPlan(n); err == nil {
			t.Fatalf("n=%d: expected error", n)
		}
	}
}

func TestPlanFFTMemoizesPerSize(t *testing.T) {
	if PlanFFT(128) != PlanFFT(128) {
		t.Fatal("PlanFFT(128) returned distinct plans")
	}
}

func TestFFTPlanPanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	PlanFFT(16).Forward(make([]complex128, 8))
}

func FuzzFFTPlanSizes(f *testing.F) {
	for _, n := range []int{-1, 0, 1, 2, 3, 64, 65, 255, 256, 1 << 20} {
		f.Add(n)
	}
	f.Fuzz(func(t *testing.T, n int) {
		p, err := NewFFTPlan(n)
		isPow2 := n >= 1 && n&(n-1) == 0
		if (err == nil) != isPow2 {
			t.Fatalf("n=%d: err=%v, want error iff not a power of two", n, err)
		}
		if err != nil {
			return
		}
		if n > 1<<12 {
			return // keep per-input work bounded
		}
		// Forward+Inverse must round-trip on any valid plan.
		x := randSignal(n, uint64(n)*2654435761+1)
		got := append([]complex128(nil), x...)
		p.Forward(got)
		p.Inverse(got)
		for k := range x {
			if !cEq(got[k], x[k], 1e-9*float64(n)+1e-12) {
				t.Fatalf("n=%d sample %d: got %v want %v", n, k, got[k], x[k])
			}
		}
	})
}
