//go:build !amd64 && !arm64

package simd

func detect() Mode { return Generic }

func bind(Mode) {}
