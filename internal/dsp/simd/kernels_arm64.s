//go:build arm64

#include "textflag.h"

// NEON kernels. The Go assembler (as of go1.22) has no mnemonics for the
// AdvSIMD floating-point arithmetic instructions, so FADD/FSUB/FMUL on
// .2D vectors are emitted as hand-encoded words through the macros below
// (encoding: C7.2 of the Arm ARM; verified against go tool objdump).
// Only order-insensitive kernels live here — see dispatch_arm64.go.

// FADD Vd.2D, Vn.2D, Vm.2D
#define FADD2D(m, n, d) WORD $(0x4E60D400 | m<<16 | n<<5 | d)
// FSUB Vd.2D, Vn.2D, Vm.2D
#define FSUB2D(m, n, d) WORD $(0x4EE0D400 | m<<16 | n<<5 | d)
// FMUL Vd.2D, Vn.2D, Vm.2D
#define FMUL2D(m, n, d) WORD $(0x6E60DC00 | m<<16 | n<<5 | d)

// Sign masks: flip the sign of one 64-bit lane of a .2D vector.
DATA lane1Mask<>+0(SB)/8, $0x0000000000000000
DATA lane1Mask<>+8(SB)/8, $0x8000000000000000
GLOBL lane1Mask<>(SB), RODATA|NOPTR, $16

DATA lane0Mask<>+0(SB)/8, $0x8000000000000000
DATA lane0Mask<>+8(SB)/8, $0x0000000000000000
GLOBL lane0Mask<>(SB), RODATA|NOPTR, $16

// func addToNEON(dst, src *complex128, n int)
TEXT ·addToNEON(SB), NOSPLIT, $0-24
	MOVD dst+0(FP), R0
	MOVD src+8(FP), R1
	MOVD n+16(FP), R2
	LSR  $1, R2, R3
	CBZ  R3, adtail

adloop:
	VLD1   (R0), [V0.D2, V1.D2]
	VLD1.P 32(R1), [V2.D2, V3.D2]
	FADD2D(2, 0, 0)
	FADD2D(3, 1, 1)
	VST1.P [V0.D2, V1.D2], 32(R0)
	SUB    $1, R3, R3
	CBNZ   R3, adloop

adtail:
	AND  $1, R2, R3
	CBZ  R3, addone
	VLD1 (R0), [V0.D2]
	VLD1 (R1), [V1.D2]
	FADD2D(1, 0, 0)
	VST1 [V0.D2], (R0)

addone:
	RET

// func scaleRealNEON(x *complex128, n int, gain float64)
TEXT ·scaleRealNEON(SB), NOSPLIT, $0-24
	MOVD x+0(FP), R0
	MOVD n+8(FP), R1
	MOVD gain+16(FP), R2
	VDUP R2, V8.D2
	LSR  $1, R1, R3
	CBZ  R3, srtail

srloop:
	VLD1 (R0), [V0.D2, V1.D2]
	FMUL2D(8, 0, 0)
	FMUL2D(8, 1, 1)
	VST1.P [V0.D2, V1.D2], 32(R0)
	SUB  $1, R3, R3
	CBNZ R3, srloop

srtail:
	AND  $1, R1, R3
	CBZ  R3, srdone
	VLD1 (R0), [V0.D2]
	FMUL2D(8, 0, 0)
	VST1 [V0.D2], (R0)

srdone:
	RET

// func span2NEON(x *complex128, n int)
// Pairs: x[i], x[i+1] = a+b, a−b.
TEXT ·span2NEON(SB), NOSPLIT, $0-16
	MOVD x+0(FP), R0
	MOVD n+8(FP), R1
	LSR  $1, R1, R1
	CBZ  R1, spdone

sploop:
	VLD1 (R0), [V0.D2, V1.D2]
	FADD2D(1, 0, 2)
	FSUB2D(1, 0, 3)
	VST1.P [V2.D2, V3.D2], 32(R0)
	SUB  $1, R1, R1
	CBNZ R1, sploop

spdone:
	RET

// func unit4FwdNEON(x *complex128, n int)
// First fused radix-4 pass, unit twiddles, v3 = (imag(u3), −real(u3)).
TEXT ·unit4FwdNEON(SB), NOSPLIT, $0-16
	MOVD x+0(FP), R0
	MOVD n+8(FP), R1
	LSR  $2, R1, R1
	CBZ  R1, u4fdone
	MOVD $lane1Mask<>(SB), R2
	VLD1 (R2), [V8.B16]

u4floop:
	VLD1 (R0), [V0.D2, V1.D2, V2.D2, V3.D2]
	FADD2D(1, 0, 4)          // u0
	FSUB2D(1, 0, 5)          // u1
	FADD2D(3, 2, 6)          // u2
	FSUB2D(3, 2, 7)          // u3
	VEXT $8, V7.B16, V7.B16, V7.B16 // (imag(u3), real(u3))
	VEOR V8.B16, V7.B16, V7.B16     // v3: negate new lane 1
	FADD2D(6, 4, 0)          // u0+u2
	FADD2D(7, 5, 1)          // u1+v3
	FSUB2D(6, 4, 2)          // u0−u2
	FSUB2D(7, 5, 3)          // u1−v3
	VST1.P [V0.D2, V1.D2, V2.D2, V3.D2], 64(R0)
	SUB  $1, R1, R1
	CBNZ R1, u4floop

u4fdone:
	RET

// func unit4InvNEON(x *complex128, n int)
// Inverse rotation: v3 = (−imag(u3), real(u3)).
TEXT ·unit4InvNEON(SB), NOSPLIT, $0-16
	MOVD x+0(FP), R0
	MOVD n+8(FP), R1
	LSR  $2, R1, R1
	CBZ  R1, u4idone
	MOVD $lane0Mask<>(SB), R2
	VLD1 (R2), [V8.B16]

u4iloop:
	VLD1 (R0), [V0.D2, V1.D2, V2.D2, V3.D2]
	FADD2D(1, 0, 4)
	FSUB2D(1, 0, 5)
	FADD2D(3, 2, 6)
	FSUB2D(3, 2, 7)
	VEXT $8, V7.B16, V7.B16, V7.B16
	VEOR V8.B16, V7.B16, V7.B16
	FADD2D(6, 4, 0)
	FADD2D(7, 5, 1)
	FSUB2D(6, 4, 2)
	FSUB2D(7, 5, 3)
	VST1.P [V0.D2, V1.D2, V2.D2, V3.D2], 64(R0)
	SUB  $1, R1, R1
	CBNZ R1, u4iloop

u4idone:
	RET
