// Package simd provides the CPU-dispatched vector kernels behind the hot
// inner loops of the BHSS signal chain: complex element-wise multiply for
// overlap-save convolution, the fused radix-4 FFT butterfly passes, the
// half-sine modulate/demodulate loops, PSD magnitude-squared accumulation,
// and the correlation reductions used by acquisition and despreading.
//
// One kernel set is selected at package init — AVX2 (written in Go
// assembly) on amd64, NEON on arm64 for the kernels whose rounding is
// unambiguous there, and a pure-Go fallback everywhere else — and never
// changes afterwards. Setting BHSS_SIMD=off (or 0/false) in the
// environment forces the pure-Go fallback; BHSS_SIMD=auto (or unset) uses
// the best detected set.
//
// # Bit compatibility
//
// The accelerated and fallback paths produce bit-identical results; the
// golden-vector and parity tests pin this. Two rules make it possible:
//
//   - Element-wise kernels (CMulTo, WindowInto, Mag2Accum, Modulate,
//     Pow4Into, the FFT butterfly passes) perform exactly the scalar
//     sequence of IEEE-754 operations per element — the AVX2 code uses
//     separate multiply and add instructions (never FMA, which amd64 Go
//     also never emits) and VADDSUBPD for the complex cross terms, so each
//     lane rounds exactly like the scalar expression.
//   - Reduction kernels (Demodulate, DotConj, CorrReal, SumFloats) define
//     a canonical blocked accumulation order — two complex lanes (even/odd
//     elements) or four float lanes, combined pairwise at the end, with
//     the odd tail folded into the even lanes before the combine. The
//     pure-Go fallback implements the identical order, so both paths
//     round identically even though the order differs from a naive
//     sequential sum.
//
// Real-gain kernels (ScaleReal, WindowInto, Modulate) multiply the real
// and imaginary components directly instead of widening the gain to
// complex(g, 0); the results are bit-identical for all finite non-zero
// products and the component-wise form vectorizes on every target.
package simd

import "os"

// Mode identifies a kernel set.
type Mode int

const (
	// Generic is the portable pure-Go kernel set.
	Generic Mode = iota
	// AVX2 is the amd64 assembly kernel set.
	AVX2
	// NEON is the arm64 assembly kernel set (partial: kernels whose
	// arm64 rounding is unambiguous; the rest dispatch to Generic).
	NEON
)

// String returns the kernel set name as reported in diagnostics.
func (m Mode) String() string {
	switch m {
	case AVX2:
		return "avx2"
	case NEON:
		return "neon"
	default:
		return "generic"
	}
}

var active Mode

// Active reports which kernel set was selected at init.
func Active() Mode { return active }

func init() {
	switch os.Getenv("BHSS_SIMD") {
	case "off", "0", "false":
		active = Generic
	default:
		active = detect()
	}
	if active != Generic {
		bind(active)
	}
}
