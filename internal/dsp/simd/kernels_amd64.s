//go:build amd64

#include "textflag.h"

// AVX2 kernels. Rounding contract (see package doc): element-wise kernels
// perform the exact scalar IEEE-754 operation sequence per lane — complex
// products use separate VMULPD + VADDSUBPD (never FMA), so every lane
// rounds like the corresponding Go expression. Reduction kernels use the
// canonical even/odd-lane accumulation order that generic.go spells out.

// Sign masks: flip the sign bit of selected 64-bit lanes.
DATA oddMask<>+0(SB)/8, $0x0000000000000000
DATA oddMask<>+8(SB)/8, $0x8000000000000000
DATA oddMask<>+16(SB)/8, $0x0000000000000000
DATA oddMask<>+24(SB)/8, $0x8000000000000000
GLOBL oddMask<>(SB), RODATA|NOPTR, $32

DATA evenMask<>+0(SB)/8, $0x8000000000000000
DATA evenMask<>+8(SB)/8, $0x0000000000000000
DATA evenMask<>+16(SB)/8, $0x8000000000000000
DATA evenMask<>+24(SB)/8, $0x0000000000000000
GLOBL evenMask<>(SB), RODATA|NOPTR, $32

DATA lane3Mask<>+0(SB)/8, $0x0000000000000000
DATA lane3Mask<>+8(SB)/8, $0x0000000000000000
DATA lane3Mask<>+16(SB)/8, $0x0000000000000000
DATA lane3Mask<>+24(SB)/8, $0x8000000000000000
GLOBL lane3Mask<>(SB), RODATA|NOPTR, $32

DATA lane2Mask<>+0(SB)/8, $0x0000000000000000
DATA lane2Mask<>+8(SB)/8, $0x0000000000000000
DATA lane2Mask<>+16(SB)/8, $0x8000000000000000
DATA lane2Mask<>+24(SB)/8, $0x0000000000000000
GLOBL lane2Mask<>(SB), RODATA|NOPTR, $32

// func cmulToAVX2(dst, src *complex128, n int)
// dst[i] *= src[i]: re = ar·br − ai·bi, im = ai·br + ar·bi (VADDSUBPD).
TEXT ·cmulToAVX2(SB), NOSPLIT, $0-24
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ n+16(FP), CX
	MOVQ CX, DX
	SHRQ $1, DX
	JZ   cmtail

cmloop:
	VMOVUPD   (DI), Y0       // a = [ar0 ai0 ar1 ai1]
	VMOVUPD   (SI), Y1       // b
	VPERMILPD $0x0, Y1, Y2   // [br br ...]
	VPERMILPD $0xF, Y1, Y3   // [bi bi ...]
	VPERMILPD $0x5, Y0, Y4   // [ai ar ...]
	VMULPD    Y2, Y0, Y5     // [ar·br ai·br ...]
	VMULPD    Y3, Y4, Y6     // [ai·bi ar·bi ...]
	VADDSUBPD Y6, Y5, Y5     // [ar·br−ai·bi  ai·br+ar·bi ...]
	VMOVUPD   Y5, (DI)
	ADDQ      $32, DI
	ADDQ      $32, SI
	DECQ      DX
	JNZ       cmloop

cmtail:
	ANDQ $1, CX
	JZ   cmdone
	VMOVUPD   (DI), X0
	VMOVUPD   (SI), X1
	VPERMILPD $0x0, X1, X2
	VPERMILPD $0x3, X1, X3
	VPERMILPD $0x1, X0, X4
	VMULPD    X2, X0, X5
	VMULPD    X3, X4, X6
	VADDSUBPD X6, X5, X5
	VMOVUPD   X5, (DI)

cmdone:
	VZEROUPPER
	RET

// func scaleRealAVX2(x *complex128, n int, gain float64)
// Component-wise real gain: x[i] = (re·g, im·g).
TEXT ·scaleRealAVX2(SB), NOSPLIT, $0-24
	MOVQ         x+0(FP), DI
	MOVQ         n+8(FP), CX
	VBROADCASTSD gain+16(FP), Y1
	MOVQ         CX, DX
	SHRQ         $1, DX
	JZ           srtail

srloop:
	VMOVUPD (DI), Y0
	VMULPD  Y1, Y0, Y0
	VMOVUPD Y0, (DI)
	ADDQ    $32, DI
	DECQ    DX
	JNZ     srloop

srtail:
	ANDQ $1, CX
	JZ   srdone
	VMOVUPD (DI), X0
	VMULPD  X1, X0, X0
	VMOVUPD X0, (DI)

srdone:
	VZEROUPPER
	RET

// func addToAVX2(dst, src *complex128, n int)
TEXT ·addToAVX2(SB), NOSPLIT, $0-24
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ n+16(FP), CX
	MOVQ CX, DX
	SHRQ $1, DX
	JZ   adtail

adloop:
	VMOVUPD (DI), Y0
	VADDPD  (SI), Y0, Y0
	VMOVUPD Y0, (DI)
	ADDQ    $32, DI
	ADDQ    $32, SI
	DECQ    DX
	JNZ     adloop

adtail:
	ANDQ $1, CX
	JZ   addone
	VMOVUPD (DI), X0
	VADDPD  (SI), X0, X0
	VMOVUPD X0, (DI)

addone:
	VZEROUPPER
	RET

// func windowIntoAVX2(dst, x *complex128, w *float64, n int)
// dst[i] = (re(x[i])·w[i], im(x[i])·w[i]).
TEXT ·windowIntoAVX2(SB), NOSPLIT, $0-32
	MOVQ dst+0(FP), DI
	MOVQ x+8(FP), SI
	MOVQ w+16(FP), R8
	MOVQ n+24(FP), CX
	MOVQ CX, DX
	SHRQ $1, DX
	JZ   witail

wiloop:
	VMOVUPD (SI), Y0
	VMOVUPD (R8), X1
	VPERMPD $0x50, Y1, Y1    // [w0 w0 w1 w1]
	VMULPD  Y1, Y0, Y0
	VMOVUPD Y0, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DI
	ADDQ    $16, R8
	DECQ    DX
	JNZ     wiloop

witail:
	ANDQ $1, CX
	JZ   widone
	VMOVUPD  (SI), X0
	VMOVDDUP (R8), X1
	VMULPD   X1, X0, X0
	VMOVUPD  X0, (DI)

widone:
	VZEROUPPER
	RET

// func mag2AccumAVX2(dst *float64, x *complex128, n int)
// dst[i] += re² + im².
TEXT ·mag2AccumAVX2(SB), NOSPLIT, $0-24
	MOVQ dst+0(FP), DI
	MOVQ x+8(FP), SI
	MOVQ n+16(FP), CX
	MOVQ CX, DX
	SHRQ $2, DX
	JZ   mgtail

mgloop:
	VMOVUPD (SI), Y0
	VMOVUPD 32(SI), Y1
	VMULPD  Y0, Y0, Y0
	VMULPD  Y1, Y1, Y1
	VHADDPD Y1, Y0, Y2       // [m0 m2 m1 m3]
	VPERMPD $0xD8, Y2, Y2    // [m0 m1 m2 m3]
	VMOVUPD (DI), Y3
	VADDPD  Y2, Y3, Y3
	VMOVUPD Y3, (DI)
	ADDQ    $64, SI
	ADDQ    $32, DI
	DECQ    DX
	JNZ     mgloop

mgtail:
	ANDQ $3, CX
	JZ   mgdone

mgtloop:
	VMOVUPD (SI), X0
	VMULPD  X0, X0, X0
	VHADDPD X0, X0, X0
	VMOVSD  (DI), X1
	VADDSD  X0, X1, X1
	VMOVSD  X1, (DI)
	ADDQ    $16, SI
	ADDQ    $8, DI
	DECQ    CX
	JNZ     mgtloop

mgdone:
	VZEROUPPER
	RET

// func modulateAVX2(out, chips *complex128, taps *float64, nchips, sps int)
// out[i*sps+k] = (re(c)·g[k], im(c)·g[k]).
TEXT ·modulateAVX2(SB), NOSPLIT, $0-40
	MOVQ out+0(FP), DI
	MOVQ chips+8(FP), SI
	MOVQ taps+16(FP), R8
	MOVQ nchips+24(FP), CX
	MOVQ sps+32(FP), R10
	MOVQ R10, R11
	SHRQ $1, R11             // pairs per chip
	MOVQ R10, R12
	ANDQ $1, R12             // odd tail flag

mochip:
	VBROADCASTF128 (SI), Y0  // [cr ci cr ci]
	MOVQ           R8, BX
	MOVQ           R11, DX
	TESTQ          DX, DX
	JZ             motail

moinner:
	VMOVUPD (BX), X1
	VPERMPD $0x50, Y1, Y1    // [g0 g0 g1 g1]
	VMULPD  Y1, Y0, Y2
	VMOVUPD Y2, (DI)
	ADDQ    $16, BX
	ADDQ    $32, DI
	DECQ    DX
	JNZ     moinner

motail:
	TESTQ R12, R12
	JZ    monext
	VMOVDDUP (BX), X1
	VMULPD   X1, X0, X2
	VMOVUPD  X2, (DI)
	ADDQ     $16, DI

monext:
	ADDQ $16, SI
	DECQ CX
	JNZ  mochip
	VZEROUPPER
	RET

// func demodulateAVX2(out, x *complex128, taps *float64, nchips, sps int, energy float64)
// Canonical even/odd-lane matched filter; out[i] = acc/energy.
TEXT ·demodulateAVX2(SB), NOSPLIT, $0-48
	MOVQ     out+0(FP), DI
	MOVQ     x+8(FP), SI
	MOVQ     taps+16(FP), R8
	MOVQ     nchips+24(FP), CX
	MOVQ     sps+32(FP), R10
	VMOVDDUP energy+40(FP), X9
	MOVQ     R10, R11
	SHRQ     $1, R11
	MOVQ     R10, R12
	ANDQ     $1, R12

dmchip:
	VXORPD Y4, Y4, Y4        // acc [eR eI oR oI]
	MOVQ   R8, BX
	MOVQ   R11, DX
	TESTQ  DX, DX
	JZ     dmtail

dminner:
	VMOVUPD (SI), Y0
	VMOVUPD (BX), X1
	VPERMPD $0x50, Y1, Y1
	VMULPD  Y1, Y0, Y2
	VADDPD  Y2, Y4, Y4
	ADDQ    $32, SI
	ADDQ    $16, BX
	DECQ    DX
	JNZ     dminner

dmtail:
	VEXTRACTF128 $1, Y4, X6  // [oR oI]
	TESTQ        R12, R12
	JZ           dmeven
	VMOVUPD  (SI), X0
	VMOVDDUP (BX), X1
	VMULPD   X1, X0, X2
	VADDPD   X2, X4, X5      // even lanes + tail product
	ADDQ     $16, SI
	JMP      dmcombine

dmeven:
	VMOVAPD X4, X5

dmcombine:
	VADDPD  X6, X5, X5       // (even[+tail]) + odd
	VDIVPD  X9, X5, X5
	VMOVUPD X5, (DI)
	ADDQ    $16, DI
	DECQ    CX
	JNZ     dmchip
	VZEROUPPER
	RET

// func dotConjAVX2(a, b *complex128, n int) (re, im float64)
// Canonical lanes: accA = [ar·br ai·bi]ₑ,ₒ  accB = [ai·br ar·bi]ₑ,ₒ;
// re = (eRB+oRB)+(eIB+oIB), im = (eIR+oIR)−(eRI+oRI).
TEXT ·dotConjAVX2(SB), NOSPLIT, $0-40
	MOVQ   a+0(FP), SI
	MOVQ   b+8(FP), BX
	MOVQ   n+16(FP), CX
	VXORPD Y4, Y4, Y4
	VXORPD Y5, Y5, Y5
	MOVQ   CX, DX
	SHRQ   $1, DX
	JZ     dctail

dcloop:
	VMOVUPD   (SI), Y0
	VMOVUPD   (BX), Y1
	VMULPD    Y1, Y0, Y2     // [ar·br ai·bi ...]
	VADDPD    Y2, Y4, Y4
	VPERMILPD $0x5, Y0, Y3
	VMULPD    Y1, Y3, Y2     // [ai·br ar·bi ...]
	VADDPD    Y2, Y5, Y5
	ADDQ      $32, SI
	ADDQ      $32, BX
	DECQ      DX
	JNZ       dcloop

dctail:
	VEXTRACTF128 $1, Y4, X6
	VEXTRACTF128 $1, Y5, X7
	ANDQ         $1, CX
	JZ           dceven
	VMOVUPD   (SI), X0
	VMOVUPD   (BX), X1
	VMULPD    X1, X0, X2
	VADDPD    X2, X4, X10
	VPERMILPD $0x1, X0, X3
	VMULPD    X1, X3, X2
	VADDPD    X2, X5, X11
	JMP       dccombine

dceven:
	VMOVAPD X4, X10
	VMOVAPD X5, X11

dccombine:
	VADDPD  X6, X10, X10
	VADDPD  X7, X11, X11
	VHADDPD X10, X10, X10    // re
	VHSUBPD X11, X11, X11    // im
	VMOVSD  X10, re+24(FP)
	VMOVSD  X11, im+32(FP)
	VZEROUPPER
	RET

// func corrRealAVX2(a, b *complex128, n int) float64
TEXT ·corrRealAVX2(SB), NOSPLIT, $0-32
	MOVQ   a+0(FP), SI
	MOVQ   b+8(FP), BX
	MOVQ   n+16(FP), CX
	VXORPD Y4, Y4, Y4
	MOVQ   CX, DX
	SHRQ   $1, DX
	JZ     crtail

crloop:
	VMOVUPD (SI), Y0
	VMOVUPD (BX), Y1
	VMULPD  Y1, Y0, Y2
	VADDPD  Y2, Y4, Y4
	ADDQ    $32, SI
	ADDQ    $32, BX
	DECQ    DX
	JNZ     crloop

crtail:
	VEXTRACTF128 $1, Y4, X6
	ANDQ         $1, CX
	JZ           creven
	VMOVUPD (SI), X0
	VMOVUPD (BX), X1
	VMULPD  X1, X0, X2
	VADDPD  X2, X4, X10
	JMP     crcombine

creven:
	VMOVAPD X4, X10

crcombine:
	VADDPD  X6, X10, X10
	VHADDPD X10, X10, X10
	VMOVSD  X10, ret+24(FP)
	VZEROUPPER
	RET

// func sumFloatsAVX2(x *float64, n int) float64
// Lanes s0..s3; total = (s0+s2)+(s1+s3); tail added sequentially.
TEXT ·sumFloatsAVX2(SB), NOSPLIT, $0-24
	MOVQ   x+0(FP), SI
	MOVQ   n+8(FP), CX
	VXORPD Y0, Y0, Y0
	MOVQ   CX, DX
	SHRQ   $2, DX
	JZ     sftail

sfloop:
	VADDPD (SI), Y0, Y0
	ADDQ   $32, SI
	DECQ   DX
	JNZ    sfloop

sftail:
	VEXTRACTF128 $1, Y0, X1
	VADDPD       X1, X0, X2  // [s0+s2 s1+s3]
	VHADDPD      X2, X2, X2
	ANDQ         $3, CX
	JZ           sfdone

sftloop:
	VADDSD (SI), X2, X2
	ADDQ   $8, SI
	DECQ   CX
	JNZ    sftloop

sfdone:
	VMOVSD X2, ret+16(FP)
	VZEROUPPER
	RET

// func allFiniteAVX2(x *complex128, n int) bool
// x·0 is NaN iff x is ±Inf or NaN; OR the unordered-compare masks.
TEXT ·allFiniteAVX2(SB), NOSPLIT, $0-17
	MOVQ   x+0(FP), SI
	MOVQ   n+8(FP), CX
	VXORPD Y3, Y3, Y3        // zeros
	VXORPD Y2, Y2, Y2        // acc mask
	XORQ   DX, DX
	MOVQ   CX, AX
	SHRQ   $1, AX
	JZ     aftail

afloop:
	VMOVUPD (SI), Y0
	VMULPD  Y3, Y0, Y0
	VCMPPD  $3, Y0, Y0, Y1   // unordered → NaN lanes
	VORPD   Y1, Y2, Y2
	ADDQ    $32, SI
	DECQ    AX
	JNZ     afloop

aftail:
	ANDQ $1, CX
	JZ   afdone
	VMOVUPD   (SI), X0
	VMULPD    X3, X0, X0
	VCMPPD    $3, X0, X0, X1
	VMOVMSKPD X1, DX

afdone:
	VMOVMSKPD Y2, AX
	ORL       DX, AX
	TESTL     AX, AX
	SETEQ     ret+16(FP)
	VZEROUPPER
	RET

// func pow4IntoAVX2(dst, src *complex128, n int)
// dst[i] = (src[i]²)², each square with exact complex-multiply rounding.
TEXT ·pow4IntoAVX2(SB), NOSPLIT, $0-24
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ n+16(FP), CX
	MOVQ CX, DX
	SHRQ $1, DX
	JZ   p4tail

p4loop:
	VMOVUPD   (SI), Y0
	VPERMILPD $0x0, Y0, Y1
	VPERMILPD $0xF, Y0, Y2
	VPERMILPD $0x5, Y0, Y3
	VMULPD    Y1, Y0, Y4
	VMULPD    Y2, Y3, Y5
	VADDSUBPD Y5, Y4, Y4     // v² = v·v
	VPERMILPD $0x0, Y4, Y1
	VPERMILPD $0xF, Y4, Y2
	VPERMILPD $0x5, Y4, Y3
	VMULPD    Y1, Y4, Y5
	VMULPD    Y2, Y3, Y6
	VADDSUBPD Y6, Y5, Y5     // v⁴ = v²·v²
	VMOVUPD   Y5, (DI)
	ADDQ      $32, SI
	ADDQ      $32, DI
	DECQ      DX
	JNZ       p4loop

p4tail:
	ANDQ $1, CX
	JZ   p4done
	VMOVUPD   (SI), X0
	VPERMILPD $0x0, X0, X1
	VPERMILPD $0x3, X0, X2
	VPERMILPD $0x1, X0, X3
	VMULPD    X1, X0, X4
	VMULPD    X2, X3, X5
	VADDSUBPD X5, X4, X4
	VPERMILPD $0x0, X4, X1
	VPERMILPD $0x3, X4, X2
	VPERMILPD $0x1, X4, X3
	VMULPD    X1, X4, X5
	VMULPD    X2, X3, X6
	VADDSUBPD X6, X5, X5
	VMOVUPD   X5, (DI)

p4done:
	VZEROUPPER
	RET

// func span2AVX2(x *complex128, n int)
// Pairs: x[i], x[i+1] = a+b, a−b (twiddle-free radix-2 stage).
TEXT ·span2AVX2(SB), NOSPLIT, $0-16
	MOVQ x+0(FP), DI
	MOVQ n+8(FP), CX
	MOVQ CX, DX
	SHRQ $2, DX
	JZ   sptail

sploop:
	VMOVUPD    (DI), Y0      // [a0 b0]
	VMOVUPD    32(DI), Y1    // [a1 b1]
	VPERM2F128 $0x20, Y1, Y0, Y2 // [a0 a1]
	VPERM2F128 $0x31, Y1, Y0, Y3 // [b0 b1]
	VADDPD     Y3, Y2, Y4
	VSUBPD     Y3, Y2, Y5
	VPERM2F128 $0x20, Y5, Y4, Y0 // [s0 d0]
	VPERM2F128 $0x31, Y5, Y4, Y1 // [s1 d1]
	VMOVUPD    Y0, (DI)
	VMOVUPD    Y1, 32(DI)
	ADDQ       $64, DI
	DECQ       DX
	JNZ        sploop

sptail:
	ANDQ  $3, CX
	CMPQ  CX, $2
	JLT   spdone
	VMOVUPD (DI), X0
	VMOVUPD 16(DI), X1
	VADDPD  X1, X0, X2
	VSUBPD  X1, X0, X3
	VMOVUPD X2, (DI)
	VMOVUPD X3, 16(DI)

spdone:
	VZEROUPPER
	RET

// func unit4FwdAVX2(x *complex128, n int)
// First fused radix-4 pass, unit twiddles, forward −i rotation.
TEXT ·unit4FwdAVX2(SB), NOSPLIT, $0-16
	MOVQ    x+0(FP), DI
	MOVQ    n+8(FP), CX
	SHRQ    $2, CX
	JZ      u4fdone
	VMOVUPD lane3Mask<>(SB), Y7

u4floop:
	VMOVUPD    (DI), Y0      // [a0 a1]
	VMOVUPD    32(DI), Y1    // [a2 a3]
	VPERM2F128 $0x20, Y1, Y0, Y2 // [a0 a2]
	VPERM2F128 $0x31, Y1, Y0, Y3 // [a1 a3]
	VADDPD     Y3, Y2, Y4    // [u0 u2]
	VSUBPD     Y3, Y2, Y5    // [u1 u3]
	VPERMILPD  $0x6, Y5, Y5  // [u1 | u3i u3r]
	VXORPD     Y7, Y5, Y5    // [u1 | v3]  v3 = (u3i, −u3r)
	VPERM2F128 $0x20, Y5, Y4, Y2 // [u0 u1]
	VPERM2F128 $0x31, Y5, Y4, Y3 // [u2 v3]
	VADDPD     Y3, Y2, Y0
	VSUBPD     Y3, Y2, Y1
	VMOVUPD    Y0, (DI)
	VMOVUPD    Y1, 32(DI)
	ADDQ       $64, DI
	DECQ       CX
	JNZ        u4floop

u4fdone:
	VZEROUPPER
	RET

// func unit4InvAVX2(x *complex128, n int)
// Inverse +i rotation: v3 = (−u3i, u3r).
TEXT ·unit4InvAVX2(SB), NOSPLIT, $0-16
	MOVQ    x+0(FP), DI
	MOVQ    n+8(FP), CX
	SHRQ    $2, CX
	JZ      u4idone
	VMOVUPD lane2Mask<>(SB), Y7

u4iloop:
	VMOVUPD    (DI), Y0
	VMOVUPD    32(DI), Y1
	VPERM2F128 $0x20, Y1, Y0, Y2
	VPERM2F128 $0x31, Y1, Y0, Y3
	VADDPD     Y3, Y2, Y4
	VSUBPD     Y3, Y2, Y5
	VPERMILPD  $0x6, Y5, Y5
	VXORPD     Y7, Y5, Y5
	VPERM2F128 $0x20, Y5, Y4, Y2
	VPERM2F128 $0x31, Y5, Y4, Y3
	VADDPD     Y3, Y2, Y0
	VSUBPD     Y3, Y2, Y1
	VMOVUPD    Y0, (DI)
	VMOVUPD    Y1, 32(DI)
	ADDQ       $64, DI
	DECQ       CX
	JNZ        u4iloop

u4idone:
	VZEROUPPER
	RET

// func radix4FwdAVX2(x *complex128, n, h int, twA, twB *complex128)
// One fused forward radix-4 pass over all blocks: quarters q0..q3 of
// length h, twiddles twA (span 2h) and twB (span 4h, lower half).
TEXT ·radix4FwdAVX2(SB), NOSPLIT, $0-40
	MOVQ    x+0(FP), DI
	MOVQ    n+8(FP), CX
	MOVQ    h+16(FP), R10
	MOVQ    twA+24(FP), R8
	MOVQ    twB+32(FP), R9
	MOVQ    R10, R12
	SHLQ    $4, R12          // h bytes
	MOVQ    CX, AX
	SHLQ    $4, AX
	ADDQ    DI, AX           // end of x
	VMOVUPD oddMask<>(SB), Y14

r4fblock:
	MOVQ DI, SI              // q0
	LEAQ (DI)(R12*1), R14    // q1
	LEAQ (DI)(R12*2), R15    // q2
	LEAQ (R14)(R12*2), R11   // q3
	XORQ BX, BX

r4fk:
	VMOVUPD   (R8)(BX*1), Y8  // wa
	VPERMILPD $0x0, Y8, Y9    // waR
	VPERMILPD $0xF, Y8, Y10   // waI
	VMOVUPD   (R9)(BX*1), Y11 // wb
	VPERMILPD $0x0, Y11, Y12  // wbR
	VPERMILPD $0xF, Y11, Y13  // wbI

	VMOVUPD   (R14)(BX*1), Y0 // q1[k]
	VPERMILPD $0x5, Y0, Y1
	VMULPD    Y9, Y0, Y2
	VMULPD    Y10, Y1, Y3
	VADDSUBPD Y3, Y2, Y2      // t1 = q1·wa
	VMOVUPD   (SI)(BX*1), Y4  // q0[k]
	VADDPD    Y2, Y4, Y5      // u0
	VSUBPD    Y2, Y4, Y6      // u1

	VMOVUPD   (R11)(BX*1), Y0 // q3[k]
	VPERMILPD $0x5, Y0, Y1
	VMULPD    Y9, Y0, Y2
	VMULPD    Y10, Y1, Y3
	VADDSUBPD Y3, Y2, Y2      // t3 = q3·wa
	VMOVUPD   (R15)(BX*1), Y4 // q2[k]
	VADDPD    Y2, Y4, Y7      // u2
	VSUBPD    Y2, Y4, Y4      // u3

	VPERMILPD $0x5, Y7, Y1
	VMULPD    Y12, Y7, Y2
	VMULPD    Y13, Y1, Y3
	VADDSUBPD Y3, Y2, Y2      // v2 = u2·wb

	VPERMILPD $0x5, Y4, Y1
	VMULPD    Y12, Y4, Y0
	VMULPD    Y13, Y1, Y3
	VADDSUBPD Y3, Y0, Y0      // v3 = u3·wb
	VPERMILPD $0x5, Y0, Y0
	VXORPD    Y14, Y0, Y0     // v3 = (im, −re)

	VADDPD  Y2, Y5, Y1        // u0+v2
	VMOVUPD Y1, (SI)(BX*1)
	VSUBPD  Y2, Y5, Y1        // u0−v2
	VMOVUPD Y1, (R15)(BX*1)
	VADDPD  Y0, Y6, Y1        // u1+v3
	VMOVUPD Y1, (R14)(BX*1)
	VSUBPD  Y0, Y6, Y1        // u1−v3
	VMOVUPD Y1, (R11)(BX*1)

	ADDQ $32, BX
	CMPQ BX, R12
	JLT  r4fk

	LEAQ (DI)(R12*4), DI
	CMPQ DI, AX
	JLT  r4fblock
	VZEROUPPER
	RET

// func radix4InvAVX2(x *complex128, n, h int, twA, twB *complex128)
// Inverse pass: conjugated twiddles, +i rotation.
TEXT ·radix4InvAVX2(SB), NOSPLIT, $0-40
	MOVQ    x+0(FP), DI
	MOVQ    n+8(FP), CX
	MOVQ    h+16(FP), R10
	MOVQ    twA+24(FP), R8
	MOVQ    twB+32(FP), R9
	MOVQ    R10, R12
	SHLQ    $4, R12
	MOVQ    CX, AX
	SHLQ    $4, AX
	ADDQ    DI, AX
	VMOVUPD oddMask<>(SB), Y14  // conjugation mask
	VMOVUPD evenMask<>(SB), Y15 // rotation mask

r4iblock:
	MOVQ DI, SI
	LEAQ (DI)(R12*1), R14
	LEAQ (DI)(R12*2), R15
	LEAQ (R14)(R12*2), R11
	XORQ BX, BX

r4ik:
	VMOVUPD   (R8)(BX*1), Y8
	VXORPD    Y14, Y8, Y8     // conj(wa)
	VPERMILPD $0x0, Y8, Y9
	VPERMILPD $0xF, Y8, Y10
	VMOVUPD   (R9)(BX*1), Y11
	VXORPD    Y14, Y11, Y11   // conj(wb)
	VPERMILPD $0x0, Y11, Y12
	VPERMILPD $0xF, Y11, Y13

	VMOVUPD   (R14)(BX*1), Y0
	VPERMILPD $0x5, Y0, Y1
	VMULPD    Y9, Y0, Y2
	VMULPD    Y10, Y1, Y3
	VADDSUBPD Y3, Y2, Y2
	VMOVUPD   (SI)(BX*1), Y4
	VADDPD    Y2, Y4, Y5
	VSUBPD    Y2, Y4, Y6

	VMOVUPD   (R11)(BX*1), Y0
	VPERMILPD $0x5, Y0, Y1
	VMULPD    Y9, Y0, Y2
	VMULPD    Y10, Y1, Y3
	VADDSUBPD Y3, Y2, Y2
	VMOVUPD   (R15)(BX*1), Y4
	VADDPD    Y2, Y4, Y7
	VSUBPD    Y2, Y4, Y4

	VPERMILPD $0x5, Y7, Y1
	VMULPD    Y12, Y7, Y2
	VMULPD    Y13, Y1, Y3
	VADDSUBPD Y3, Y2, Y2

	VPERMILPD $0x5, Y4, Y1
	VMULPD    Y12, Y4, Y0
	VMULPD    Y13, Y1, Y3
	VADDSUBPD Y3, Y0, Y0
	VPERMILPD $0x5, Y0, Y0
	VXORPD    Y15, Y0, Y0     // v3 = (−im, re)

	VADDPD  Y2, Y5, Y1
	VMOVUPD Y1, (SI)(BX*1)
	VSUBPD  Y2, Y5, Y1
	VMOVUPD Y1, (R15)(BX*1)
	VADDPD  Y0, Y6, Y1
	VMOVUPD Y1, (R14)(BX*1)
	VSUBPD  Y0, Y6, Y1
	VMOVUPD Y1, (R11)(BX*1)

	ADDQ $32, BX
	CMPQ BX, R12
	JLT  r4ik

	LEAQ (DI)(R12*4), DI
	CMPQ DI, AX
	JLT  r4iblock
	VZEROUPPER
	RET
