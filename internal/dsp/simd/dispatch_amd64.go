//go:build amd64

package simd

// detect probes the CPU once at init: AVX2 needs the feature bit plus
// OS-enabled YMM state (OSXSAVE + XCR0 SSE|AVX).
func detect() Mode {
	if hasAVX2() {
		return AVX2
	}
	return Generic
}

func hasAVX2() bool {
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, ecx1, _ := cpuid(1, 0)
	const osxsaveBit = 1 << 27
	const avxBit = 1 << 28
	if ecx1&osxsaveBit == 0 || ecx1&avxBit == 0 {
		return false
	}
	xcr0, _ := xgetbv()
	if xcr0&0x6 != 0x6 { // XMM and YMM state enabled by the OS
		return false
	}
	_, ebx7, _, _ := cpuid(7, 0)
	const avx2Bit = 1 << 5
	return ebx7&avx2Bit != 0
}

func bind(Mode) {
	cmulTo = cmulToAsm
	scaleReal = scaleRealAsm
	addTo = addToAsm
	windowInto = windowIntoAsm
	mag2Accum = mag2AccumAsm
	modulate = modulateAsm
	demodulate = demodulateAsm
	dotConj = dotConjAsm
	corrReal = corrRealAsm
	sumFloats = sumFloatsAsm
	allFinite = allFiniteAsm
	pow4Into = pow4IntoAsm
	span2 = span2Asm
	unit4Fwd = unit4FwdAsm
	unit4Inv = unit4InvAsm
	radix4Fwd = radix4FwdAsm
	radix4Inv = radix4InvAsm
}

// The wrappers in kernels.go guarantee non-empty, length-matched slices
// before these shims run, so indexing the first element is safe.

func cmulToAsm(dst, src []complex128) { cmulToAVX2(&dst[0], &src[0], len(dst)) }

func scaleRealAsm(x []complex128, g float64) { scaleRealAVX2(&x[0], len(x), g) }

func addToAsm(dst, src []complex128) { addToAVX2(&dst[0], &src[0], len(dst)) }

func windowIntoAsm(dst, x []complex128, w []float64) {
	windowIntoAVX2(&dst[0], &x[0], &w[0], len(dst))
}

func mag2AccumAsm(dst []float64, x []complex128) { mag2AccumAVX2(&dst[0], &x[0], len(dst)) }

func modulateAsm(out, chips []complex128, g []float64) {
	modulateAVX2(&out[0], &chips[0], &g[0], len(chips), len(g))
}

func demodulateAsm(out, x []complex128, g []float64, energy float64) {
	demodulateAVX2(&out[0], &x[0], &g[0], len(out), len(g), energy)
}

func dotConjAsm(a, b []complex128) complex128 {
	re, im := dotConjAVX2(&a[0], &b[0], len(a))
	return complex(re, im)
}

func corrRealAsm(a, b []complex128) float64 { return corrRealAVX2(&a[0], &b[0], len(a)) }

func sumFloatsAsm(x []float64) float64 { return sumFloatsAVX2(&x[0], len(x)) }

func allFiniteAsm(x []complex128) bool { return allFiniteAVX2(&x[0], len(x)) }

func pow4IntoAsm(dst, src []complex128) { pow4IntoAVX2(&dst[0], &src[0], len(dst)) }

func span2Asm(x []complex128) { span2AVX2(&x[0], len(x)) }

func unit4FwdAsm(x []complex128) { unit4FwdAVX2(&x[0], len(x)) }

func unit4InvAsm(x []complex128) { unit4InvAVX2(&x[0], len(x)) }

func radix4FwdAsm(x []complex128, h int, twA, twB []complex128) {
	radix4FwdAVX2(&x[0], len(x), h, &twA[0], &twB[0])
}

func radix4InvAsm(x []complex128, h int, twA, twB []complex128) {
	radix4InvAVX2(&x[0], len(x), h, &twA[0], &twB[0])
}

// Assembly routines (kernels_amd64.s, cpu_amd64.s).

func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)

func xgetbv() (eax, edx uint32)

//go:noescape
func cmulToAVX2(dst, src *complex128, n int)

//go:noescape
func scaleRealAVX2(x *complex128, n int, gain float64)

//go:noescape
func addToAVX2(dst, src *complex128, n int)

//go:noescape
func windowIntoAVX2(dst, x *complex128, w *float64, n int)

//go:noescape
func mag2AccumAVX2(dst *float64, x *complex128, n int)

//go:noescape
func modulateAVX2(out, chips *complex128, taps *float64, nchips, sps int)

//go:noescape
func demodulateAVX2(out, x *complex128, taps *float64, nchips, sps int, energy float64)

//go:noescape
func dotConjAVX2(a, b *complex128, n int) (re, im float64)

//go:noescape
func corrRealAVX2(a, b *complex128, n int) float64

//go:noescape
func sumFloatsAVX2(x *float64, n int) float64

//go:noescape
func allFiniteAVX2(x *complex128, n int) bool

//go:noescape
func pow4IntoAVX2(dst, src *complex128, n int)

//go:noescape
func span2AVX2(x *complex128, n int)

//go:noescape
func unit4FwdAVX2(x *complex128, n int)

//go:noescape
func unit4InvAVX2(x *complex128, n int)

//go:noescape
func radix4FwdAVX2(x *complex128, n, h int, twA, twB *complex128)

//go:noescape
func radix4InvAVX2(x *complex128, n, h int, twA, twB *complex128)
