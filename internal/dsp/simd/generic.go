package simd

// Pure-Go canonical kernels. These are the fallback on CPUs without an
// assembly set and the reference the parity tests compare the assembly
// against — both paths must round identically, so the reduction kernels
// here spell out the same blocked accumulation order the vector code
// uses. Loop bodies are written as plain per-element IEEE-754 expression
// sequences; on amd64 the compiler never fuses them (no FMA contraction),
// which is what makes exact equivalence with the assembly possible.

func cmulToGeneric(dst, src []complex128) {
	for i, b := range src {
		dst[i] *= b
	}
}

func scaleRealGeneric(x []complex128, g float64) {
	for i, v := range x {
		x[i] = complex(real(v)*g, imag(v)*g)
	}
}

func addToGeneric(dst, src []complex128) {
	for i, b := range src {
		dst[i] += b
	}
}

func windowIntoGeneric(dst, x []complex128, w []float64) {
	for i, wv := range w {
		v := x[i]
		dst[i] = complex(real(v)*wv, imag(v)*wv)
	}
}

func mag2AccumGeneric(dst []float64, x []complex128) {
	for i, v := range x {
		dst[i] += real(v)*real(v) + imag(v)*imag(v)
	}
}

func modulateGeneric(out, chips []complex128, g []float64) {
	sps := len(g)
	for i, c := range chips {
		base := i * sps
		cr, ci := real(c), imag(c)
		for k, gv := range g {
			out[base+k] = complex(cr*gv, ci*gv)
		}
	}
}

func demodulateGeneric(out, x []complex128, g []float64, energy float64) {
	sps := len(g)
	for i := range out {
		base := i * sps
		// Canonical two-lane order: even-index and odd-index samples
		// accumulate separately; the odd tail folds into the even lanes;
		// lanes combine pairwise at the end.
		var eR, eI, oR, oI float64
		k := 0
		for ; k+2 <= sps; k += 2 {
			s0 := x[base+k]
			eR += real(s0) * g[k]
			eI += imag(s0) * g[k]
			s1 := x[base+k+1]
			oR += real(s1) * g[k+1]
			oI += imag(s1) * g[k+1]
		}
		if k < sps {
			s := x[base+k]
			eR += real(s) * g[k]
			eI += imag(s) * g[k]
		}
		accRe := eR + oR
		accIm := eI + oI
		out[i] = complex(accRe/energy, accIm/energy)
	}
}

func dotConjGeneric(a, b []complex128) complex128 {
	// Canonical lanes: for the real part, products ar·br and ai·bi
	// accumulate in separate lanes split further by element parity; the
	// imaginary part does the same with ai·br and ar·bi. The odd tail
	// folds into the even lanes; re = (eRB+oRB)+(eIB+oIB),
	// im = (eIR+oIR)−(eRI+oRI).
	var eRB, eIB, oRB, oIB float64 // real-part lanes
	var eIR, eRI, oIR, oRI float64 // imag-part lanes
	n := len(a)
	i := 0
	for ; i+2 <= n; i += 2 {
		ar0, ai0 := real(a[i]), imag(a[i])
		br0, bi0 := real(b[i]), imag(b[i])
		eRB += ar0 * br0
		eIB += ai0 * bi0
		eIR += ai0 * br0
		eRI += ar0 * bi0
		ar1, ai1 := real(a[i+1]), imag(a[i+1])
		br1, bi1 := real(b[i+1]), imag(b[i+1])
		oRB += ar1 * br1
		oIB += ai1 * bi1
		oIR += ai1 * br1
		oRI += ar1 * bi1
	}
	if i < n {
		ar, ai := real(a[i]), imag(a[i])
		br, bi := real(b[i]), imag(b[i])
		eRB += ar * br
		eIB += ai * bi
		eIR += ai * br
		eRI += ar * bi
	}
	return complex((eRB+oRB)+(eIB+oIB), (eIR+oIR)-(eRI+oRI))
}

func corrRealGeneric(a, b []complex128) float64 {
	var eRB, eIB, oRB, oIB float64
	n := len(a)
	i := 0
	for ; i+2 <= n; i += 2 {
		eRB += real(a[i]) * real(b[i])
		eIB += imag(a[i]) * imag(b[i])
		oRB += real(a[i+1]) * real(b[i+1])
		oIB += imag(a[i+1]) * imag(b[i+1])
	}
	if i < n {
		eRB += real(a[i]) * real(b[i])
		eIB += imag(a[i]) * imag(b[i])
	}
	return (eRB + oRB) + (eIB + oIB)
}

func sumFloatsGeneric(x []float64) float64 {
	var s0, s1, s2, s3 float64
	n := len(x)
	i := 0
	for ; i+4 <= n; i += 4 {
		s0 += x[i]
		s1 += x[i+1]
		s2 += x[i+2]
		s3 += x[i+3]
	}
	t := (s0 + s2) + (s1 + s3)
	for ; i < n; i++ {
		t += x[i]
	}
	return t
}

func allFiniteGeneric(x []complex128) bool {
	for _, v := range x {
		if real(v)-real(v) != 0 || imag(v)-imag(v) != 0 {
			return false
		}
	}
	return true
}

func pow4IntoGeneric(dst, src []complex128) {
	for i, v := range src {
		v2 := v * v
		dst[i] = v2 * v2
	}
}

func span2Generic(x []complex128) {
	for i := 0; i+2 <= len(x); i += 2 {
		a, b := x[i], x[i+1]
		x[i], x[i+1] = a+b, a-b
	}
}

func unit4FwdGeneric(x []complex128) {
	for s := 0; s+4 <= len(x); s += 4 {
		a0, a1, a2, a3 := x[s], x[s+1], x[s+2], x[s+3]
		u0, u1 := a0+a1, a0-a1
		u2, u3 := a2+a3, a2-a3
		v3 := complex(imag(u3), -real(u3))
		x[s], x[s+2] = u0+u2, u0-u2
		x[s+1], x[s+3] = u1+v3, u1-v3
	}
}

func unit4InvGeneric(x []complex128) {
	for s := 0; s+4 <= len(x); s += 4 {
		a0, a1, a2, a3 := x[s], x[s+1], x[s+2], x[s+3]
		u0, u1 := a0+a1, a0-a1
		u2, u3 := a2+a3, a2-a3
		v3 := complex(-imag(u3), real(u3))
		x[s], x[s+2] = u0+u2, u0-u2
		x[s+1], x[s+3] = u1+v3, u1-v3
	}
}

func radix4FwdGeneric(x []complex128, h int, twA, twB []complex128) {
	n := len(x)
	for start := 0; start < n; start += 4 * h {
		q0 := x[start : start+h : start+h]
		q1 := x[start+h : start+2*h : start+2*h]
		q2 := x[start+2*h : start+3*h : start+3*h]
		q3 := x[start+3*h : start+4*h : start+4*h]
		for k, wa := range twA {
			wb := twB[k]
			t1 := q1[k] * wa
			u0, u1 := q0[k]+t1, q0[k]-t1
			t3 := q3[k] * wa
			u2, u3 := q2[k]+t3, q2[k]-t3
			v2 := u2 * wb
			v3 := u3 * wb
			v3 = complex(imag(v3), -real(v3))
			q0[k], q2[k] = u0+v2, u0-v2
			q1[k], q3[k] = u1+v3, u1-v3
		}
	}
}

func radix4InvGeneric(x []complex128, h int, twA, twB []complex128) {
	n := len(x)
	for start := 0; start < n; start += 4 * h {
		q0 := x[start : start+h : start+h]
		q1 := x[start+h : start+2*h : start+2*h]
		q2 := x[start+2*h : start+3*h : start+3*h]
		q3 := x[start+3*h : start+4*h : start+4*h]
		for k, wa := range twA {
			wa = complex(real(wa), -imag(wa))
			wb := twB[k]
			wb = complex(real(wb), -imag(wb))
			t1 := q1[k] * wa
			u0, u1 := q0[k]+t1, q0[k]-t1
			t3 := q3[k] * wa
			u2, u3 := q2[k]+t3, q2[k]-t3
			v2 := u2 * wb
			v3 := u3 * wb
			v3 = complex(-imag(v3), real(v3))
			q0[k], q2[k] = u0+v2, u0-v2
			q1[k], q3[k] = u1+v3, u1-v3
		}
	}
}
