package simd

// The exported kernels dispatch through these function variables, bound
// once at init (see simd.go). Every variable starts at the pure-Go
// canonical implementation; bind() swaps in the assembly version when the
// detected CPU supports it.
var (
	cmulTo     func(dst, src []complex128)                            = cmulToGeneric
	scaleReal  func(x []complex128, g float64)                        = scaleRealGeneric
	addTo      func(dst, src []complex128)                            = addToGeneric
	windowInto func(dst, x []complex128, w []float64)                 = windowIntoGeneric
	mag2Accum  func(dst []float64, x []complex128)                    = mag2AccumGeneric
	modulate   func(out, chips []complex128, g []float64)             = modulateGeneric
	demodulate func(out, x []complex128, g []float64, energy float64) = demodulateGeneric
	dotConj    func(a, b []complex128) complex128                     = dotConjGeneric
	corrReal   func(a, b []complex128) float64                        = corrRealGeneric
	sumFloats  func(x []float64) float64                              = sumFloatsGeneric
	allFinite  func(x []complex128) bool                              = allFiniteGeneric
	pow4Into   func(dst, src []complex128)                            = pow4IntoGeneric
	span2      func(x []complex128)                                   = span2Generic
	unit4Fwd   func(x []complex128)                                   = unit4FwdGeneric
	unit4Inv   func(x []complex128)                                   = unit4InvGeneric
	radix4Fwd  func(x []complex128, h int, twA, twB []complex128)     = radix4FwdGeneric
	radix4Inv  func(x []complex128, h int, twA, twB []complex128)     = radix4InvGeneric
)

// CMulTo multiplies dst element-wise by src: dst[i] *= src[i], over the
// common prefix. The overlap-save frequency-domain product.
func CMulTo(dst, src []complex128) {
	n := len(dst)
	if len(src) < n {
		n = len(src)
	}
	if n == 0 {
		return
	}
	cmulTo(dst[:n], src[:n])
}

// ScaleReal multiplies every element of x by a real gain, component-wise.
func ScaleReal(x []complex128, g float64) {
	if len(x) == 0 {
		return
	}
	scaleReal(x, g)
}

// AddTo adds src into dst element-wise over the common prefix.
func AddTo(dst, src []complex128) {
	n := len(dst)
	if len(src) < n {
		n = len(src)
	}
	if n == 0 {
		return
	}
	addTo(dst[:n], src[:n])
}

// WindowInto writes dst[i] = x[i] scaled component-wise by w[i] — the PSD
// estimator's per-segment windowing. All three slices are truncated to the
// shortest length; dst may alias x.
func WindowInto(dst, x []complex128, w []float64) {
	n := len(dst)
	if len(x) < n {
		n = len(x)
	}
	if len(w) < n {
		n = len(w)
	}
	if n == 0 {
		return
	}
	windowInto(dst[:n], x[:n], w[:n])
}

// Mag2Accum accumulates squared magnitudes: dst[i] += |x[i]|², over the
// common prefix. The periodogram accumulation inner loop.
func Mag2Accum(dst []float64, x []complex128) {
	n := len(dst)
	if len(x) < n {
		n = len(x)
	}
	if n == 0 {
		return
	}
	mag2Accum(dst[:n], x[:n])
}

// Modulate writes out[i*len(g)+k] = chips[i] scaled component-wise by
// g[k]: the pulse-shaping inner loop. len(out) must be at least
// len(chips)*len(g); len(g) must be positive.
func Modulate(out, chips []complex128, g []float64) {
	sps := len(g)
	if sps == 0 || len(chips) == 0 {
		return
	}
	_ = out[len(chips)*sps-1]
	modulate(out[:len(chips)*sps], chips, g)
}

// Demodulate matched-filters samples with the real pulse g at one chip
// per len(g) samples: out[i] = Σₖ x[i*sps+k]·g[k] / energy, using the
// canonical even/odd-lane accumulation order. len(x) must be at least
// len(out)*len(g); len(g) must be positive.
func Demodulate(out, x []complex128, g []float64, energy float64) {
	sps := len(g)
	if sps == 0 || len(out) == 0 {
		return
	}
	_ = x[len(out)*sps-1]
	demodulate(out, x[:len(out)*sps], g, energy)
}

// DotConj returns Σ a[i]·conj(b[i]) over the common prefix, in the
// canonical even/odd-lane accumulation order.
func DotConj(a, b []complex128) complex128 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	if n == 0 {
		return 0
	}
	return dotConj(a[:n], b[:n])
}

// CorrReal returns Σ real(a[i])·real(b[i]) + imag(a[i])·imag(b[i]) — the
// real part of the conjugate correlation, the despreader's decision
// metric — in the canonical even/odd-lane accumulation order.
func CorrReal(a, b []complex128) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	if n == 0 {
		return 0
	}
	return corrReal(a[:n], b[:n])
}

// SumFloats returns the sum of x in the canonical four-lane accumulation
// order: lanes s0..s3 over x[4i+lane], combined as (s0+s2)+(s1+s3), with
// the tail added sequentially afterwards.
func SumFloats(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	return sumFloats(x)
}

// AllFinite reports whether every component of x is finite (no NaN, no
// ±Inf) — the receiver's input-sanity scan.
func AllFinite(x []complex128) bool {
	if len(x) == 0 {
		return true
	}
	return allFinite(x)
}

// Pow4Into writes dst[i] = (src[i]²)² over the common prefix, squaring
// twice with the exact scalar complex-multiply rounding — the QPSK
// modulation-stripping step of the coarse CFO estimator. dst may alias
// src.
func Pow4Into(dst, src []complex128) {
	n := len(dst)
	if len(src) < n {
		n = len(src)
	}
	if n == 0 {
		return
	}
	pow4Into(dst[:n], src[:n])
}

// Span2 runs the twiddle-free span-2 FFT stage in place over pairs:
// x[i], x[i+1] = x[i]+x[i+1], x[i]-x[i+1]. len(x) must be even.
func Span2(x []complex128) {
	if len(x) < 2 {
		return
	}
	span2(x)
}

// Unit4Forward runs the first fused radix-4 pass (spans 2 and 4, unit
// twiddles, forward −i rotation) in place. len(x) must be a multiple of 4.
func Unit4Forward(x []complex128) {
	if len(x) < 4 {
		return
	}
	unit4Fwd(x)
}

// Unit4Inverse is Unit4Forward with the inverse +i rotation.
func Unit4Inverse(x []complex128) {
	if len(x) < 4 {
		return
	}
	unit4Inv(x)
}

// Radix4Forward runs one fused forward radix-4 pass over all blocks of x:
// quarters of length h combined with the span-2h twiddles twA and the
// span-4h lower-half twiddles twB. len(x) must be a multiple of 4h, h
// even, len(twA) and len(twB) at least h.
func Radix4Forward(x []complex128, h int, twA, twB []complex128) {
	if len(x) < 4*h || h < 2 {
		return
	}
	radix4Fwd(x, h, twA[:h], twB[:h])
}

// Radix4Inverse is Radix4Forward with conjugated twiddles and the inverse
// +i rotation.
func Radix4Inverse(x []complex128, h int, twA, twB []complex128) {
	if len(x) < 4*h || h < 2 {
		return
	}
	radix4Inv(x, h, twA[:h], twB[:h])
}
