//go:build arm64

package simd

// detect: AdvSIMD (NEON) is architecturally baseline on arm64.
func detect() Mode { return NEON }

// bind installs the arm64 kernel subset. Only kernels whose generic Go
// form contains no multiply-then-add chain are accelerated: the gc arm64
// backend may contract a*b±c into a fused FMADD/FMSUB, so a NEON kernel
// with separate rounding could differ from the compiled fallback in the
// last ulp. Pure add/sub kernels (the FFT's twiddle-free stages, AddTo)
// and pure multiply kernels (ScaleReal) are immune; everything else
// dispatches to the canonical generic code.
func bind(Mode) {
	addTo = addToAsmARM
	scaleReal = scaleRealAsmARM
	span2 = span2AsmARM
	unit4Fwd = unit4FwdAsmARM
	unit4Inv = unit4InvAsmARM
}

func addToAsmARM(dst, src []complex128) { addToNEON(&dst[0], &src[0], len(dst)) }

func scaleRealAsmARM(x []complex128, g float64) { scaleRealNEON(&x[0], len(x), g) }

func span2AsmARM(x []complex128) { span2NEON(&x[0], len(x)) }

func unit4FwdAsmARM(x []complex128) { unit4FwdNEON(&x[0], len(x)) }

func unit4InvAsmARM(x []complex128) { unit4InvNEON(&x[0], len(x)) }

// Assembly routines (kernels_arm64.s).

//go:noescape
func addToNEON(dst, src *complex128, n int)

//go:noescape
func scaleRealNEON(x *complex128, n int, gain float64)

//go:noescape
func span2NEON(x *complex128, n int)

//go:noescape
func unit4FwdNEON(x *complex128, n int)

//go:noescape
func unit4InvNEON(x *complex128, n int)
