package simd

import (
	"math"
	"testing"
)

// Parity tests: the dispatched kernels (assembly on CPUs where bind()
// installed them, generic otherwise) must be bit-identical to the
// canonical generic implementations for every length, including
// unaligned lengths, odd vector tails, and aliased src/dst. Run with
// BHSS_SIMD=off these compare generic against itself (trivially green);
// CI runs both settings so the assembly path is always exercised on
// capable hardware.

// lcg is a tiny deterministic generator so the tests need no math/rand.
type lcg uint64

func (r *lcg) next() uint64 {
	*r = *r*6364136223846793005 + 1442695040888963407
	return uint64(*r)
}

// f64 returns values spanning a wide dynamic range, ~[-1,1) scaled by
// occasional 1e±12 outliers, so rounding differences cannot hide.
func (r *lcg) f64() float64 {
	u := r.next()
	f := float64(int64(u>>11))/float64(int64(1)<<52) - 0.5
	switch u & 0xF {
	case 0:
		f *= 1e12
	case 1:
		f *= 1e-12
	}
	return f
}

func (r *lcg) c128() complex128 { return complex(r.f64(), r.f64()) }

func (r *lcg) complexSlice(n int) []complex128 {
	out := make([]complex128, n)
	for i := range out {
		out[i] = r.c128()
	}
	return out
}

func (r *lcg) floatSlice(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = r.f64()
	}
	return out
}

func cloneC(x []complex128) []complex128 { return append([]complex128(nil), x...) }

func cloneF(x []float64) []float64 { return append([]float64(nil), x...) }

func sameC(t *testing.T, name string, got, want []complex128) {
	t.Helper()
	for i := range want {
		if math.Float64bits(real(got[i])) != math.Float64bits(real(want[i])) ||
			math.Float64bits(imag(got[i])) != math.Float64bits(imag(want[i])) {
			t.Fatalf("%s: index %d: got %v want %v (mode %v)", name, i, got[i], want[i], Active())
		}
	}
}

func sameF(t *testing.T, name string, got, want []float64) {
	t.Helper()
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s: index %d: got %v want %v (mode %v)", name, i, got[i], want[i], Active())
		}
	}
}

func sameScalar(t *testing.T, name string, n int, got, want float64) {
	t.Helper()
	if math.Float64bits(got) != math.Float64bits(want) {
		t.Fatalf("%s: n=%d: got %v want %v (mode %v)", name, n, got, want, Active())
	}
}

// parityLens covers sub-vector lengths, exact vector multiples, and
// every tail residue around them.
var parityLens = []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 15, 16, 17, 31, 32, 33, 63, 64, 65, 100, 127, 128, 129, 1000}

func TestActiveMode(t *testing.T) {
	m := Active()
	if m != Generic && m != AVX2 && m != NEON {
		t.Fatalf("Active() = %d, not a known Mode", m)
	}
	t.Logf("dispatch mode: %v", m)
}

func TestCMulToParity(t *testing.T) {
	rng := lcg(1)
	for _, n := range parityLens {
		a, b := rng.complexSlice(n), rng.complexSlice(n)
		want := cloneC(a)
		cmulToGeneric(want, b)
		got := cloneC(a)
		CMulTo(got, b)
		sameC(t, "CMulTo", got, want)

		// Aliased: dst[i] *= dst[i].
		wantAl := cloneC(a)
		cmulToGeneric(wantAl, wantAl)
		gotAl := cloneC(a)
		CMulTo(gotAl, gotAl)
		sameC(t, "CMulTo aliased", gotAl, wantAl)
	}
	CMulTo(nil, nil) // no panic on empty
}

func TestScaleRealParity(t *testing.T) {
	rng := lcg(2)
	for _, n := range parityLens {
		for _, g := range []float64{0.37, -2.5, 1e-300, 7.25e8} {
			a := rng.complexSlice(n)
			want := cloneC(a)
			scaleRealGeneric(want, g)
			got := cloneC(a)
			ScaleReal(got, g)
			sameC(t, "ScaleReal", got, want)
		}
	}
	ScaleReal(nil, 2)
}

func TestAddToParity(t *testing.T) {
	rng := lcg(3)
	for _, n := range parityLens {
		a, b := rng.complexSlice(n), rng.complexSlice(n)
		want := cloneC(a)
		addToGeneric(want, b)
		got := cloneC(a)
		AddTo(got, b)
		sameC(t, "AddTo", got, want)

		wantAl := cloneC(a)
		addToGeneric(wantAl, wantAl)
		gotAl := cloneC(a)
		AddTo(gotAl, gotAl)
		sameC(t, "AddTo aliased", gotAl, wantAl)
	}
	AddTo(nil, nil)
}

func TestWindowIntoParity(t *testing.T) {
	rng := lcg(4)
	for _, n := range parityLens {
		x, w := rng.complexSlice(n), rng.floatSlice(n)
		want := make([]complex128, n)
		windowIntoGeneric(want, x, w)
		got := make([]complex128, n)
		WindowInto(got, x, w)
		sameC(t, "WindowInto", got, want)

		// Aliased: window in place.
		wantAl := cloneC(x)
		windowIntoGeneric(wantAl, wantAl, w)
		gotAl := cloneC(x)
		WindowInto(gotAl, gotAl, w)
		sameC(t, "WindowInto aliased", gotAl, wantAl)
	}
	WindowInto(nil, nil, nil)
}

func TestMag2AccumParity(t *testing.T) {
	rng := lcg(5)
	for _, n := range parityLens {
		x := rng.complexSlice(n)
		acc := rng.floatSlice(n)
		want := cloneF(acc)
		mag2AccumGeneric(want, x)
		got := cloneF(acc)
		Mag2Accum(got, x)
		sameF(t, "Mag2Accum", got, want)
	}
	Mag2Accum(nil, nil)
}

func TestModulateParity(t *testing.T) {
	rng := lcg(6)
	for _, sps := range []int{1, 2, 3, 4, 5, 7, 8, 12, 31} {
		for _, nchips := range []int{1, 2, 3, 5, 32} {
			chips := rng.complexSlice(nchips)
			g := rng.floatSlice(sps)
			want := make([]complex128, nchips*sps)
			modulateGeneric(want, chips, g)
			got := make([]complex128, nchips*sps)
			Modulate(got, chips, g)
			sameC(t, "Modulate", got, want)
		}
	}
	Modulate(nil, nil, nil)
}

func TestDemodulateParity(t *testing.T) {
	rng := lcg(7)
	for _, sps := range []int{1, 2, 3, 4, 5, 7, 8, 12, 31} {
		for _, nchips := range []int{1, 2, 3, 5, 32} {
			x := rng.complexSlice(nchips * sps)
			g := rng.floatSlice(sps)
			energy := 0.5 + math.Abs(rng.f64())
			want := make([]complex128, nchips)
			demodulateGeneric(want, x, g, energy)
			got := make([]complex128, nchips)
			Demodulate(got, x, g, energy)
			sameC(t, "Demodulate", got, want)
		}
	}
	Demodulate(nil, nil, nil, 1)
}

func TestDotConjParity(t *testing.T) {
	rng := lcg(8)
	for _, n := range parityLens {
		a, b := rng.complexSlice(n), rng.complexSlice(n)
		want := dotConjGeneric(a, b)
		got := DotConj(a, b)
		if math.Float64bits(real(got)) != math.Float64bits(real(want)) ||
			math.Float64bits(imag(got)) != math.Float64bits(imag(want)) {
			t.Fatalf("DotConj: n=%d: got %v want %v (mode %v)", n, got, want, Active())
		}
	}
	if DotConj(nil, nil) != 0 {
		t.Fatal("DotConj(nil, nil) != 0")
	}
}

func TestCorrRealParity(t *testing.T) {
	rng := lcg(9)
	for _, n := range parityLens {
		a, b := rng.complexSlice(n), rng.complexSlice(n)
		sameScalar(t, "CorrReal", n, CorrReal(a, b), corrRealGeneric(a, b))
	}
	if CorrReal(nil, nil) != 0 {
		t.Fatal("CorrReal(nil, nil) != 0")
	}
}

func TestSumFloatsParity(t *testing.T) {
	rng := lcg(10)
	for _, n := range parityLens {
		x := rng.floatSlice(n)
		sameScalar(t, "SumFloats", n, SumFloats(x), sumFloatsGeneric(x))
	}
	if SumFloats(nil) != 0 {
		t.Fatal("SumFloats(nil) != 0")
	}
}

func TestAllFiniteParity(t *testing.T) {
	rng := lcg(11)
	for _, n := range parityLens {
		x := rng.complexSlice(n)
		if !AllFinite(x) || !allFiniteGeneric(x) {
			t.Fatalf("AllFinite: finite slice of %d reported non-finite", n)
		}
		// Poison every position in turn, alternating NaN / ±Inf, on
		// either component.
		for i := 0; i < n; i++ {
			bad := math.NaN()
			switch i % 3 {
			case 1:
				bad = math.Inf(1)
			case 2:
				bad = math.Inf(-1)
			}
			y := cloneC(x)
			if i%2 == 0 {
				y[i] = complex(bad, imag(y[i]))
			} else {
				y[i] = complex(real(y[i]), bad)
			}
			if AllFinite(y) {
				t.Fatalf("AllFinite: n=%d poison at %d not detected (mode %v)", n, i, Active())
			}
			if allFiniteGeneric(y) {
				t.Fatalf("allFiniteGeneric: n=%d poison at %d not detected", n, i)
			}
		}
	}
	if !AllFinite(nil) {
		t.Fatal("AllFinite(nil) should be true")
	}
}

func TestPow4IntoParity(t *testing.T) {
	rng := lcg(12)
	for _, n := range parityLens {
		src := rng.complexSlice(n)
		want := make([]complex128, n)
		pow4IntoGeneric(want, src)
		got := make([]complex128, n)
		Pow4Into(got, src)
		sameC(t, "Pow4Into", got, want)

		wantAl := cloneC(src)
		pow4IntoGeneric(wantAl, wantAl)
		gotAl := cloneC(src)
		Pow4Into(gotAl, gotAl)
		sameC(t, "Pow4Into aliased", gotAl, wantAl)
	}
	Pow4Into(nil, nil)
}

func TestSpan2Parity(t *testing.T) {
	rng := lcg(13)
	for _, n := range []int{2, 4, 6, 8, 16, 32, 34, 64, 128, 1000} {
		x := rng.complexSlice(n)
		want := cloneC(x)
		span2Generic(want)
		got := cloneC(x)
		Span2(got)
		sameC(t, "Span2", got, want)
	}
	Span2(nil)
}

func TestUnit4Parity(t *testing.T) {
	rng := lcg(14)
	for _, n := range []int{4, 8, 16, 32, 64, 256, 1024} {
		x := rng.complexSlice(n)
		wantF := cloneC(x)
		unit4FwdGeneric(wantF)
		gotF := cloneC(x)
		Unit4Forward(gotF)
		sameC(t, "Unit4Forward", gotF, wantF)

		wantI := cloneC(x)
		unit4InvGeneric(wantI)
		gotI := cloneC(x)
		Unit4Inverse(gotI)
		sameC(t, "Unit4Inverse", gotI, wantI)
	}
	Unit4Forward(nil)
	Unit4Inverse(nil)
}

func TestRadix4Parity(t *testing.T) {
	rng := lcg(15)
	for _, h := range []int{2, 4, 8, 16, 32} {
		for _, blocks := range []int{1, 2, 3} {
			n := 4 * h * blocks
			x := rng.complexSlice(n)
			twA := rng.complexSlice(h)
			twB := rng.complexSlice(h)

			wantF := cloneC(x)
			radix4FwdGeneric(wantF, h, twA, twB)
			gotF := cloneC(x)
			Radix4Forward(gotF, h, twA, twB)
			sameC(t, "Radix4Forward", gotF, wantF)

			wantI := cloneC(x)
			radix4InvGeneric(wantI, h, twA, twB)
			gotI := cloneC(x)
			Radix4Inverse(gotI, h, twA, twB)
			sameC(t, "Radix4Inverse", gotI, wantI)
		}
	}
}

// Micro-benchmarks for the kernels the link hot path leans on.

func benchComplexPair(n int) ([]complex128, []complex128) {
	rng := lcg(99)
	return rng.complexSlice(n), rng.complexSlice(n)
}

func BenchmarkCMulTo(b *testing.B) {
	dst, src := benchComplexPair(4096)
	b.SetBytes(4096 * 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CMulTo(dst, src)
	}
}

func BenchmarkMag2Accum(b *testing.B) {
	rng := lcg(99)
	x := rng.complexSlice(4096)
	dst := make([]float64, 4096)
	b.SetBytes(4096 * 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Mag2Accum(dst, x)
	}
}

func BenchmarkDemodulate(b *testing.B) {
	rng := lcg(99)
	const nchips, sps = 512, 8
	x := rng.complexSlice(nchips * sps)
	g := rng.floatSlice(sps)
	out := make([]complex128, nchips)
	b.SetBytes(nchips * sps * 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Demodulate(out, x, g, 1.25)
	}
}

func BenchmarkRadix4Forward(b *testing.B) {
	rng := lcg(99)
	const h = 256
	x := rng.complexSlice(4 * h)
	twA := rng.complexSlice(h)
	twB := rng.complexSlice(h)
	b.SetBytes(4 * h * 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Radix4Forward(x, h, twA, twB)
	}
}

func BenchmarkDotConj(b *testing.B) {
	a, x := benchComplexPair(4096)
	b.SetBytes(4096 * 16)
	b.ResetTimer()
	var sink complex128
	for i := 0; i < b.N; i++ {
		sink = DotConj(a, x)
	}
	_ = sink
}
