package dsp

import (
	"testing"

	"bhss/internal/alloctest"
)

// TestHotPathZeroAlloc asserts the steady-state zero-allocation contract for
// every //bhss:hotpath API in this package.
func TestHotPathZeroAlloc(t *testing.T) {
	x := randSignal(1024, 1)
	p := PlanFFT(1024)
	alloctest.AssertZero(t, "FFTPlan.Forward", func() { p.Forward(x) })
	alloctest.AssertZero(t, "FFTPlan.Inverse", func() { p.Inverse(x) })

	h := randSignal(129, 2)
	sig := randSignal(4096, 3)
	o := NewOverlapSave(h)
	var dst []complex128
	alloctest.AssertZero(t, "OverlapSave.ApplyFull", func() { dst = o.ApplyFull(dst[:0], sig) })
	alloctest.AssertZero(t, "OverlapSave.ApplySame", func() { dst = o.ApplySame(dst[:0], sig) })
	alloctest.AssertZero(t, "OverlapSave.Process", func() { dst = o.Process(dst[:0], sig) })

	a := randSignal(2048, 4)
	b := randSignal(2048, 5)
	alloctest.AssertZero(t, "DotConj", func() { _ = DotConj(a, b) })

	mix := randSignal(2048, 6)
	alloctest.AssertZero(t, "Mix", func() { _ = Mix(mix, 0.01, 0) })

	fl := make([]float64, 1024)
	for i := range fl {
		fl[i] = float64(i * 2654435761 % 1024)
	}
	alloctest.AssertZero(t, "SortFloats", func() { SortFloats(fl) })

	psd := make([]float64, 512)
	for i := range psd {
		psd[i] = 1 + 0.1*float64(i%7)
	}
	sm := make([]float64, 512)
	alloctest.AssertZero(t, "SmoothPSDInto", func() { SmoothPSDInto(sm, psd, 9) })
}
