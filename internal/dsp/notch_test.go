package dsp

import (
	"math"
	"math/cmplx"
	"testing"
)

func TestSmoothPSDFlatInvariant(t *testing.T) {
	psd := make([]float64, 64)
	for i := range psd {
		psd[i] = 2.5
	}
	out := SmoothPSD(psd, 5)
	for i, v := range out {
		if math.Abs(v-2.5) > 1e-12 {
			t.Fatalf("bin %d: %v, want 2.5", i, v)
		}
	}
}

func TestSmoothPSDSpreadsPeak(t *testing.T) {
	psd := make([]float64, 32)
	psd[10] = 32
	out := SmoothPSD(psd, 5)
	// Total preserved, peak reduced by the width.
	var sum float64
	for _, v := range out {
		sum += v
	}
	if math.Abs(sum-32) > 1e-9 {
		t.Fatalf("smoothing changed total: %v", sum)
	}
	if math.Abs(out[10]-32.0/5) > 1e-9 {
		t.Fatalf("peak after width-5 smoothing: %v", out[10])
	}
	if out[8] != out[12] {
		t.Fatal("smoothing should be symmetric around the peak")
	}
}

func TestSmoothPSDCircular(t *testing.T) {
	psd := make([]float64, 16)
	psd[0] = 16
	out := SmoothPSD(psd, 3)
	// Wraps: bins 15, 0, 1 share the peak.
	if out[15] != out[1] || out[15] == 0 {
		t.Fatalf("circular smoothing broken: %v vs %v", out[15], out[1])
	}
}

func TestSmoothPSDDegenerate(t *testing.T) {
	if len(SmoothPSD(nil, 5)) != 0 {
		t.Fatal("empty input should yield empty output")
	}
	psd := []float64{1, 2, 3}
	out := SmoothPSD(psd, 0) // forced to width 1 = identity
	for i := range psd {
		if out[i] != psd[i] {
			t.Fatal("width<1 should behave as identity")
		}
	}
	// Even widths round up to odd.
	outEven := SmoothPSD(psd, 2)
	outOdd := SmoothPSD(psd, 3)
	for i := range psd {
		if outEven[i] != outOdd[i] {
			t.Fatal("even width should round up")
		}
	}
}

func TestNotchFIRCutsOnlyJammedBins(t *testing.T) {
	const k = 256
	psd := make([]float64, k)
	for i := range psd {
		psd[i] = 1
	}
	for i := 30; i <= 36; i++ {
		psd[i] = 400
	}
	f, err := NotchFIR(psd, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	resp := f.FrequencyResponse(k)
	// Jammed bins strongly attenuated.
	if g := cmplx.Abs(resp[33]); g > 0.1 {
		t.Fatalf("jammed bin gain %v, want << 1", g)
	}
	// Clean bins pass near unity (allow filter-length ripple).
	for _, bin := range []int{0, 100, 150, 200} {
		if g := cmplx.Abs(resp[bin]); math.Abs(g-1) > 0.15 {
			t.Fatalf("clean bin %d gain %v, want ~1", bin, g)
		}
	}
}

func TestNotchFIRGlobalMedianFallback(t *testing.T) {
	psd := make([]float64, 64)
	for i := range psd {
		psd[i] = 2
	}
	psd[5] = 100
	// ref <= 0 falls back to the global median (2).
	f, err := NotchFIR(psd, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	resp := f.FrequencyResponse(64)
	if g := cmplx.Abs(resp[5]); g > 0.35 {
		t.Fatalf("fallback notch gain %v", g)
	}
}

func TestNotchFIRRejectsBadInput(t *testing.T) {
	for i, fn := range []func() (*FIR, error){
		func() (*FIR, error) { return NotchFIR(nil, 4, 1) },
		func() (*FIR, error) { return NotchFIR([]float64{1, 1, 1, 1}, 1, 1) },
		func() (*FIR, error) { return ShapedNotchFIR(nil, nil, 4) },
		func() (*FIR, error) { return ShapedNotchFIR([]float64{1, 2}, []float64{1}, 4) },
		func() (*FIR, error) { return ShapedNotchFIR([]float64{1, 1, 1}, []float64{1, 1, 1}, 0.5) },
	} {
		if _, err := fn(); err == nil {
			t.Fatalf("case %d: expected error", i)
		}
	}
}

func TestShapedNotchFIRRespectsTarget(t *testing.T) {
	const k = 128
	psd := make([]float64, k)
	target := make([]float64, k)
	for i := range psd {
		target[i] = 1
		psd[i] = 1
	}
	// A "signal peak" allowed by the shaped target...
	psd[10], target[10] = 8, 10
	// ...and a jammer exceeding its target.
	psd[40], target[40] = 50, 1
	f, err := ShapedNotchFIR(psd, target, 3)
	if err != nil {
		t.Fatal(err)
	}
	resp := f.FrequencyResponse(k)
	if g := cmplx.Abs(resp[10]); math.Abs(g-1) > 0.2 {
		t.Fatalf("allowed peak attenuated: gain %v", g)
	}
	if g := cmplx.Abs(resp[40]); g > 0.3 {
		t.Fatalf("jammer bin kept: gain %v", g)
	}
}

func TestShapedNotchFIRZeroTargetBins(t *testing.T) {
	psd := []float64{1, 1, 1, 1, 1, 1, 1, 1}
	target := make([]float64, 8) // all zero: every bin above target
	f, err := ShapedNotchFIR(psd, target, 2)
	if err != nil {
		t.Fatal(err)
	}
	resp := f.FrequencyResponse(8)
	for i, r := range resp {
		if cmplx.Abs(r) > 0.1 {
			t.Fatalf("bin %d should be suppressed, gain %v", i, cmplx.Abs(r))
		}
	}
}

func TestLinearPhaseFromMagnitudeGroupDelay(t *testing.T) {
	// An asymmetric (one-sided) notch: taps must be complex but the
	// filter must remain exactly linear-phase, i.e. an impulse passes
	// with only the (L-1)/2 delay that Apply compensates.
	const k = 128
	mag := make([]float64, k)
	for i := range mag {
		mag[i] = 1
	}
	for i := 20; i < 25; i++ {
		mag[i] = 0.01
	}
	f, err := linearPhaseFromMagnitude(mag)
	if err != nil {
		t.Fatal(err)
	}
	if f.Len()%2 != 1 {
		t.Fatalf("tap count %d should be odd", f.Len())
	}
	// Apply to an impulse: the output should re-center the impulse.
	x := make([]complex128, 64)
	x[32] = 1
	y := f.Apply(x)
	if peak := ArgMaxAbs(y); peak != 32 {
		t.Fatalf("impulse moved to %d, want 32", peak)
	}
	// A pass-band tone survives with ~unit amplitude and no phase shift
	// at the center.
	n := 512
	tone := make([]complex128, n)
	for i := range tone {
		tone[i] = cmplx.Exp(complex(0, 2*math.Pi*0.35*float64(i)))
	}
	out := f.Apply(tone)
	mid := n / 2
	ratio := out[mid] / tone[mid]
	if cmplx.Abs(ratio-1) > 0.1 {
		t.Fatalf("pass-band tone distorted: ratio %v", ratio)
	}
}

func TestLinearPhaseFromMagnitudeRejectsShortInput(t *testing.T) {
	if _, err := linearPhaseFromMagnitude([]float64{1, 2}); err == nil {
		t.Fatal("short magnitude should be rejected")
	}
}

func TestNotchFIREndToEndSuppressesNarrowJam(t *testing.T) {
	// Wideband signal + narrow jam; notch removes the jam and leaves the
	// signal nearly untouched.
	const n = 8192
	sig := randSignal(n, 21)
	jam := make([]complex128, n)
	for i := range jam {
		jam[i] = 15 * cmplx.Exp(complex(0, 2*math.Pi*0.11*float64(i)))
	}
	mixed := make([]complex128, n)
	for i := range mixed {
		mixed[i] = sig[i] + jam[i]
	}
	const k = 512
	psd := make([]float64, k)
	for blk := 0; blk+k <= n; blk += k {
		seg := append([]complex128(nil), mixed[blk:blk+k]...)
		FFT(seg)
		for i, v := range seg {
			psd[i] += real(v)*real(v) + imag(v)*imag(v)
		}
	}
	f, err := NotchFIR(SmoothPSD(psd, 3), 6, 0)
	if err != nil {
		t.Fatal(err)
	}
	out := f.ApplyFast(mixed)
	resid := make([]complex128, n)
	fSig := f.ApplyFast(sig)
	for i := range resid {
		resid[i] = out[i] - fSig[i]
	}
	// Jam power 225 must drop by at least 15 dB.
	if p := Power(resid[k : n-k]); p > 225/30 {
		t.Fatalf("residual jam power %v", p)
	}
	// Signal passes with most of its power.
	if p := Power(fSig[k : n-k]); p < 0.8 {
		t.Fatalf("signal power after notch %v", p)
	}
}
