// Package dsp implements the digital signal processing substrate the BHSS
// system is built on: complex vector arithmetic, FFTs, spectral windows,
// FIR filter design (including the paper's PSD-reciprocal excision filter,
// eq. (3)), direct and overlap-save convolution, frequency mixing and
// fractional delay. Everything is written against the standard library only;
// the blocks mirror what the paper's GNU Radio flowgraph instantiated.
package dsp

import (
	"math"

	"bhss/internal/dsp/simd"
)

// Scale multiplies every element of x by a real gain, in place
// (component-wise: (re·g, im·g)).
func Scale(x []complex128, gain float64) {
	simd.ScaleReal(x, gain)
}

// AddTo adds src into dst element-wise: dst[i] += src[i]. The slices must
// have identical lengths; extra elements of the longer slice are ignored.
func AddTo(dst, src []complex128) {
	simd.AddTo(dst, src)
}

// Power returns the average power (mean |x|^2) of the signal.
func Power(x []complex128) float64 {
	if len(x) == 0 {
		return 0
	}
	var p float64
	for _, v := range x {
		p += real(v)*real(v) + imag(v)*imag(v)
	}
	return p / float64(len(x))
}

// Energy returns the total energy (sum |x|^2) of the signal.
func Energy(x []complex128) float64 {
	var e float64
	for _, v := range x {
		e += real(v)*real(v) + imag(v)*imag(v)
	}
	return e
}

// Normalize scales x in place to unit average power and returns the applied
// gain. A zero-power signal is left untouched with gain 1.
func Normalize(x []complex128) float64 {
	p := Power(x)
	if p == 0 {
		return 1
	}
	g := 1 / math.Sqrt(p)
	Scale(x, g)
	return g
}

// Conj returns a new slice holding the complex conjugate of x.
func Conj(x []complex128) []complex128 {
	out := make([]complex128, len(x))
	for i, v := range x {
		out[i] = complex(real(v), -imag(v))
	}
	return out
}

// DotConj returns sum(a[i] * conj(b[i])) over the common prefix, the complex
// correlation inner product used by despreaders and preamble detectors.
//
//bhss:hotpath
func DotConj(a, b []complex128) complex128 {
	return simd.DotConj(a, b)
}

// Mix multiplies x in place by a complex exponential of the given normalized
// frequency (cycles per sample) and initial phase (radians), returning the
// phase after the last sample. Chaining calls with the returned phase keeps
// the oscillator continuous across buffers.
//
//bhss:hotpath
func Mix(x []complex128, freq, phase float64) float64 {
	// Use a recurrence with periodic renormalization to avoid per-sample
	// sincos calls while keeping the oscillator numerically on the unit
	// circle.
	step := complex(math.Cos(2*math.Pi*freq), math.Sin(2*math.Pi*freq))
	osc := complex(math.Cos(phase), math.Sin(phase))
	for i := range x {
		x[i] *= osc
		osc *= step
		if i&1023 == 1023 {
			mag := math.Hypot(real(osc), imag(osc))
			osc = complex(real(osc)/mag, imag(osc)/mag)
		}
	}
	return phase + 2*math.Pi*freq*float64(len(x))
}

// MaxAbs returns the largest magnitude in x.
func MaxAbs(x []complex128) float64 {
	var m float64
	for _, v := range x {
		a := math.Hypot(real(v), imag(v))
		if a > m {
			m = a
		}
	}
	return m
}

// ArgMaxAbs returns the index of the sample with the largest magnitude, or
// -1 for an empty slice.
func ArgMaxAbs(x []complex128) int {
	idx := -1
	var m float64
	for i, v := range x {
		a := real(v)*real(v) + imag(v)*imag(v)
		if idx == -1 || a > m {
			m = a
			idx = i
		}
	}
	return idx
}

// Decimate returns every factor-th sample of x starting at offset. It is the
// receiver's rate reduction after low-pass filtering. factor must be >= 1.
func Decimate(x []complex128, factor, offset int) []complex128 {
	if factor < 1 {
		//bhss:allow(panicpolicy) factor is fixed at link configuration, not derived from sample data
		panic("dsp: decimation factor must be >= 1")
	}
	if offset < 0 {
		offset = 0
	}
	if offset >= len(x) {
		return nil
	}
	out := make([]complex128, 0, (len(x)-offset+factor-1)/factor)
	for i := offset; i < len(x); i += factor {
		out = append(out, x[i])
	}
	return out
}

// Upsample inserts factor-1 zeros after every sample of x (zero stuffing),
// the transmitter-side dual of Decimate.
func Upsample(x []complex128, factor int) []complex128 {
	if factor < 1 {
		//bhss:allow(panicpolicy) factor is fixed at link configuration, not derived from sample data
		panic("dsp: upsample factor must be >= 1")
	}
	out := make([]complex128, len(x)*factor)
	for i, v := range x {
		out[i*factor] = v
	}
	return out
}

// FractionalDelay delays x by a (possibly fractional) number of samples
// using linear interpolation, returning a slice of the same length. Samples
// shifted in from before the signal are zero. It models small propagation
// and sampling-clock offsets between free-running SDRs.
func FractionalDelay(x []complex128, delay float64) []complex128 {
	if delay < 0 {
		//bhss:allow(panicpolicy) delay is fixed impairment configuration, not derived from sample data
		panic("dsp: negative delay")
	}
	out := make([]complex128, len(x))
	whole := int(delay)
	frac := delay - float64(whole)
	for i := range out {
		j := i - whole
		switch {
		case j < 0:
			out[i] = 0
		case frac == 0:
			out[i] = x[j]
		case j == 0:
			out[i] = x[0] * complex(1-frac, 0)
		default:
			out[i] = x[j]*complex(1-frac, 0) + x[j-1]*complex(frac, 0)
		}
	}
	return out
}

// Sinc returns sin(pi x)/(pi x) with Sinc(0) = 1.
func Sinc(x float64) float64 {
	if x == 0 {
		return 1
	}
	px := math.Pi * x
	return math.Sin(px) / px
}
