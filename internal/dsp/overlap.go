package dsp

import (
	"fmt"

	"bhss/internal/dsp/simd"
)

// OverlapSave is a fast convolver for one fixed tap set: the taps are
// transformed to the frequency domain once at construction, and inputs of
// any length are then streamed through fixed-size FFT blocks (the classic
// overlap-save method). Each block costs two planned power-of-two FFTs, so
// steady-state filtering performs no trigonometry and — with a caller-
// provided output buffer — no allocation.
//
// A single OverlapSave is not safe for concurrent use (it owns block
// scratch); build one per goroutine or guard it externally. The one-shot
// Apply* methods do not disturb the streaming state carried by Process.
type OverlapSave struct {
	k      int          // tap count
	fftLen int          // FFT block size N
	step   int          // fresh input samples consumed per block: N-k+1
	hFT    []complex128 // FFT of the taps with 1/N folded in, length N
	plan   *FFTPlan

	//bhss:scratch
	block []complex128 // per-block scratch, length N
	//bhss:scratch
	full []complex128 // one-shot scratch for ApplySame
	//bhss:scratch
	hist []complex128 // streaming delay line, k-1 samples
}

// NewOverlapSave returns a convolver for the given taps with an
// automatically chosen FFT block size (~8x the tap count, the usual
// throughput sweet spot for overlap-save). The taps slice is copied into the
// frequency domain and not retained.
func NewOverlapSave(taps []complex128) *OverlapSave {
	k := len(taps)
	fftLen := NextPow2(8 * k)
	if fftLen < 2*k {
		fftLen = NextPow2(2 * k)
	}
	o, err := NewOverlapSaveSize(taps, fftLen)
	if err != nil {
		panic(err) // unreachable: the computed size is always valid
	}
	return o
}

// NewOverlapSaveSize returns a convolver with an explicit FFT block size,
// which must be a power of two >= 2*len(taps) (so every block produces at
// least as many outputs as it re-reads overlap).
func NewOverlapSaveSize(taps []complex128, fftLen int) (*OverlapSave, error) {
	k := len(taps)
	if k == 0 {
		return nil, fmt.Errorf("dsp: overlap-save needs at least one tap")
	}
	if fftLen&(fftLen-1) != 0 || fftLen < 2*k {
		return nil, fmt.Errorf("dsp: overlap-save FFT size %d must be a power of two >= 2*%d taps", fftLen, k)
	}
	o := &OverlapSave{
		k:      k,
		fftLen: fftLen,
		step:   fftLen - k + 1,
		hFT:    make([]complex128, fftLen),
		plan:   PlanFFT(fftLen),
		block:  make([]complex128, fftLen),
		hist:   make([]complex128, k-1),
	}
	copy(o.hFT, taps)
	o.plan.Forward(o.hFT)
	// Folding the inverse transform's 1/N into H saves a full output pass
	// per block.
	invN := complex(1/float64(fftLen), 0)
	for i := range o.hFT {
		o.hFT[i] *= invN
	}
	return o, nil
}

// Len returns the tap count, BlockSize the FFT block length.
func (o *OverlapSave) Len() int       { return o.k }
func (o *OverlapSave) BlockSize() int { return o.fftLen }

// convolveBlock runs one overlap-save block over o.block in place: forward
// FFT, multiply by the pre-transformed taps, inverse FFT. Outputs
// o.block[k-1:] are valid linear-convolution samples.
func (o *OverlapSave) convolveBlock() {
	o.plan.Forward(o.block)
	simd.CMulTo(o.block, o.hFT)
	o.plan.inverseUnscaled(o.block)
}

// ApplyFull appends the full linear convolution of x with the taps
// (len(x)+k-1 samples, matching Convolve/ConvolveFFT) to dst and returns the
// extended slice. Passing a dst with sufficient capacity makes the call
// allocation-free.
//
//bhss:hotpath
func (o *OverlapSave) ApplyFull(dst, x []complex128) []complex128 {
	if len(x) == 0 {
		return dst
	}
	total := len(x) + o.k - 1
	//bhss:allow(hotpathfacts) amortized growth: growComplex reuses dst's storage once warm
	dst = growComplex(dst, total)
	out := dst[len(dst)-total:]
	// Output position pos needs input window x[pos-(k-1) .. pos+step-1];
	// samples outside x are zero (leading warm-up and trailing flush).
	for pos := 0; pos < total; pos += o.step {
		lo := pos - (o.k - 1)
		for i := range o.block {
			j := lo + i
			if j >= 0 && j < len(x) {
				o.block[i] = x[j]
			} else {
				o.block[i] = 0
			}
		}
		o.convolveBlock()
		n := total - pos
		if n > o.step {
			n = o.step
		}
		copy(out[pos:pos+n], o.block[o.k-1:o.k-1+n])
	}
	return dst
}

// ApplySame appends the length-len(x) "same" part of the convolution to dst
// (group delay (k-1)/2 removed, matching FIR.Apply) and returns the extended
// slice.
//
//bhss:hotpath
func (o *OverlapSave) ApplySame(dst, x []complex128) []complex128 {
	if len(x) == 0 {
		return dst
	}
	o.full = o.ApplyFull(o.full[:0], x)
	start := (o.k - 1) / 2
	return append(dst, o.full[start:start+len(x)]...)
}

// Process streams x through the filter, appending len(x) output samples to
// dst: out[i] = sum_t taps[t]*x[i-t] with history carried across calls,
// exactly like FIR.Process but at FFT speed. Reset clears the history.
//
//bhss:hotpath
func (o *OverlapSave) Process(dst, x []complex128) []complex128 {
	//bhss:allow(hotpathfacts) amortized growth: growComplex reuses dst's storage once warm
	dst = growComplex(dst, len(x))
	out := dst[len(dst)-len(x):]
	pos := 0
	for pos < len(x) {
		n := len(x) - pos
		if n > o.step {
			n = o.step
		}
		copy(o.block, o.hist)
		copy(o.block[o.k-1:], x[pos:pos+n])
		for i := o.k - 1 + n; i < o.fftLen; i++ {
			o.block[i] = 0
		}
		// Carry the last k-1 *input* samples into the next block before
		// o.block is overwritten by the transform.
		if n >= o.k-1 {
			copy(o.hist, x[pos+n-(o.k-1):pos+n])
		} else {
			copy(o.hist, o.hist[n:])
			copy(o.hist[len(o.hist)-n:], x[pos:pos+n])
		}
		o.convolveBlock()
		copy(out[pos:pos+n], o.block[o.k-1:o.k-1+n])
		pos += n
	}
	return dst
}

// Reset clears the streaming delay line used by Process.
func (o *OverlapSave) Reset() {
	for i := range o.hist {
		o.hist[i] = 0
	}
}

// growComplex extends s by n elements (reallocating only when capacity is
// exhausted) and returns the extended slice; the new elements are not
// cleared — callers overwrite them.
func growComplex(s []complex128, n int) []complex128 {
	if cap(s)-len(s) >= n {
		return s[:len(s)+n]
	}
	out := make([]complex128, len(s)+n, (len(s)+n)*2)
	copy(out, s)
	return out
}
