package dsp

import (
	"testing"
)

func TestOverlapSaveFullMatchesConvolveFFT(t *testing.T) {
	for _, tc := range []struct{ nx, nh int }{
		{1, 1}, {16, 4}, {100, 31}, {1000, 129}, {257, 64},
	} {
		x := randSignal(tc.nx, uint64(tc.nx)+1)
		h := randSignal(tc.nh, uint64(tc.nh)+2)
		want := ConvolveFFT(x, h)
		got := NewOverlapSave(h).ApplyFull(nil, x)
		if len(got) != len(want) {
			t.Fatalf("nx=%d nh=%d: len %d want %d", tc.nx, tc.nh, len(got), len(want))
		}
		for k := range want {
			if !cEq(got[k], want[k], 1e-9*float64(tc.nx+tc.nh)) {
				t.Fatalf("nx=%d nh=%d sample %d: got %v want %v", tc.nx, tc.nh, k, got[k], want[k])
			}
		}
	}
}

func TestOverlapSaveSameMatchesFullCenter(t *testing.T) {
	x := randSignal(300, 5)
	h := randSignal(33, 6)
	full := NewOverlapSave(h).ApplyFull(nil, x)
	same := NewOverlapSave(h).ApplySame(nil, x)
	if len(same) != len(x) {
		t.Fatalf("same length %d want %d", len(same), len(x))
	}
	start := (len(h) - 1) / 2
	for k := range same {
		if !cEq(same[k], full[start+k], 1e-9*float64(len(x))) {
			t.Fatalf("sample %d: got %v want %v", k, same[k], full[start+k])
		}
	}
}

func TestOverlapSaveProcessStreamsAcrossBlocks(t *testing.T) {
	x := randSignal(1000, 9)
	h := randSignal(41, 10)
	full := NewOverlapSave(h).ApplyFull(nil, x)
	o := NewOverlapSave(h)
	var got []complex128
	// Uneven chunk sizes, including chunks smaller and larger than the
	// convolver's internal step.
	for _, chunk := range []int{1, 7, 250, 13, 500, 229} {
		got = o.Process(got, x[len(got):len(got)+chunk])
	}
	for k := range got {
		if !cEq(got[k], full[k], 1e-9*float64(len(x))) {
			t.Fatalf("sample %d: got %v want %v", k, got[k], full[k])
		}
	}
	// Reset must restart the stream identically.
	o.Reset()
	again := o.Process(nil, x[:100])
	for k := range again {
		if !cEq(again[k], full[k], 1e-9*float64(len(x))) {
			t.Fatalf("after Reset, sample %d: got %v want %v", k, again[k], full[k])
		}
	}
}

func TestNewOverlapSaveSizeValidates(t *testing.T) {
	h := make([]complex128, 16)
	h[0] = 1
	if _, err := NewOverlapSaveSize(h, 24); err == nil {
		t.Fatal("expected error for non-pow2 FFT length")
	}
	if _, err := NewOverlapSaveSize(h, 16); err == nil {
		t.Fatal("expected error for FFT length < 2*len(taps)")
	}
	if _, err := NewOverlapSaveSize(h, 32); err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
	if _, err := NewOverlapSaveSize(nil, 32); err == nil {
		t.Fatal("expected error for empty taps")
	}
}
