package dsp

import "testing"

func benchFFTPlan(b *testing.B, n int) {
	p := PlanFFT(n)
	x := randSignal(n, uint64(n))
	b.ReportAllocs()
	b.SetBytes(int64(16 * n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Forward(x)
	}
}

func BenchmarkFFTPlanForward256(b *testing.B)  { benchFFTPlan(b, 256) }
func BenchmarkFFTPlanForward1024(b *testing.B) { benchFFTPlan(b, 1024) }
func BenchmarkFFTPlanForward4096(b *testing.B) { benchFFTPlan(b, 4096) }

func BenchmarkFFTPlanRoundTrip1024(b *testing.B) {
	p := PlanFFT(1024)
	x := randSignal(1024, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Forward(x)
		p.Inverse(x)
	}
}

func BenchmarkOverlapSaveApplyFull(b *testing.B) {
	h := randSignal(129, 1)
	x := randSignal(16384, 2)
	o := NewOverlapSave(h)
	var dst []complex128
	b.ReportAllocs()
	b.SetBytes(int64(16 * len(x)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = o.ApplyFull(dst[:0], x)
	}
}

func BenchmarkOverlapSaveProcess(b *testing.B) {
	h := randSignal(129, 1)
	x := randSignal(4096, 2)
	o := NewOverlapSave(h)
	var dst []complex128
	b.ReportAllocs()
	b.SetBytes(int64(16 * len(x)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = o.Process(dst[:0], x)
	}
}

// BenchmarkConvolveFFTBaseline is the one-shot path OverlapSave replaced in
// the hot loops, kept for speedup comparisons.
func BenchmarkConvolveFFTBaseline(b *testing.B) {
	h := randSignal(129, 1)
	x := randSignal(16384, 2)
	b.ReportAllocs()
	b.SetBytes(int64(16 * len(x)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ConvolveFFT(x, h)
	}
}
