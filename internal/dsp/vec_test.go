package dsp

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"
)

func TestPowerAndEnergy(t *testing.T) {
	x := []complex128{1, 1i, -1, -1i}
	if p := Power(x); p != 1 {
		t.Fatalf("power = %v, want 1", p)
	}
	if e := Energy(x); e != 4 {
		t.Fatalf("energy = %v, want 4", e)
	}
	if Power(nil) != 0 {
		t.Fatal("power of empty must be 0")
	}
}

func TestScaleAndNormalize(t *testing.T) {
	x := []complex128{3, 4i}
	Scale(x, 2)
	if x[0] != 6 || x[1] != 8i {
		t.Fatalf("scale: %v", x)
	}
	g := Normalize(x)
	if math.Abs(Power(x)-1) > 1e-12 {
		t.Fatalf("normalized power = %v", Power(x))
	}
	if g <= 0 {
		t.Fatalf("gain = %v", g)
	}
	// Zero signal untouched.
	z := []complex128{0, 0}
	if Normalize(z) != 1 {
		t.Fatal("zero-power normalize should return gain 1")
	}
}

func TestAddTo(t *testing.T) {
	a := []complex128{1, 2, 3}
	b := []complex128{10, 20}
	AddTo(a, b)
	if a[0] != 11 || a[1] != 22 || a[2] != 3 {
		t.Fatalf("AddTo result %v", a)
	}
}

func TestDotConj(t *testing.T) {
	a := []complex128{1 + 1i, 2}
	b := []complex128{1 + 1i, 2}
	got := DotConj(a, b)
	want := complex(6, 0) // |1+i|^2 + |2|^2 = 2 + 4
	if !cEq(got, want, 1e-12) {
		t.Fatalf("DotConj = %v, want %v", got, want)
	}
}

func TestDotConjOrthogonal(t *testing.T) {
	// e^{j2πk/4} sequences at different rates are orthogonal over a period.
	n := 16
	a := make([]complex128, n)
	b := make([]complex128, n)
	for i := range a {
		a[i] = cmplx.Exp(complex(0, 2*math.Pi*float64(i)/4))
		b[i] = cmplx.Exp(complex(0, 2*math.Pi*float64(i)/8))
	}
	if d := DotConj(a, b); cmplx.Abs(d) > 1e-9 {
		t.Fatalf("orthogonal dot = %v", d)
	}
}

func TestMixShiftsSpectrum(t *testing.T) {
	const n = 256
	x := make([]complex128, n)
	for i := range x {
		x[i] = 1 // DC signal
	}
	Mix(x, 0.25, 0)
	// Now all energy should live at bin n/4.
	y := FFT(x)
	peak := ArgMaxAbs(y)
	if peak != n/4 {
		t.Fatalf("mixed tone at bin %d, want %d", peak, n/4)
	}
}

func TestMixPhaseContinuity(t *testing.T) {
	const n = 100
	a := make([]complex128, n)
	b := make([]complex128, n)
	for i := range a {
		a[i] = 1
		b[i] = 1
	}
	whole := make([]complex128, n)
	copy(whole, a)
	Mix(whole, 0.013, 0.5)

	ph := Mix(a[:n/2], 0.013, 0.5)
	_ = Mix(a[n/2:], 0.013, ph)
	for i := range whole {
		if !cEq(a[i], whole[i], 1e-9) {
			t.Fatalf("phase discontinuity at %d: %v vs %v", i, a[i], whole[i])
		}
	}
	_ = b
}

func TestMixUnitMagnitudeLongRun(t *testing.T) {
	const n = 100000
	x := make([]complex128, n)
	for i := range x {
		x[i] = 1
	}
	Mix(x, 1.0/3.0, 0)
	for i, v := range x {
		if math.Abs(cmplx.Abs(v)-1) > 1e-9 {
			t.Fatalf("oscillator drifted off unit circle at %d: |v| = %v", i, cmplx.Abs(v))
		}
	}
}

func TestDecimateUpsample(t *testing.T) {
	x := []complex128{0, 1, 2, 3, 4, 5, 6, 7}
	d := Decimate(x, 2, 1)
	want := []complex128{1, 3, 5, 7}
	if len(d) != len(want) {
		t.Fatalf("decimate len %d, want %d", len(d), len(want))
	}
	for i := range want {
		if d[i] != want[i] {
			t.Fatalf("decimate = %v", d)
		}
	}
	u := Upsample([]complex128{1, 2}, 3)
	wantU := []complex128{1, 0, 0, 2, 0, 0}
	for i := range wantU {
		if u[i] != wantU[i] {
			t.Fatalf("upsample = %v", u)
		}
	}
}

func TestDecimateEdgeCases(t *testing.T) {
	if got := Decimate([]complex128{1, 2}, 1, 5); got != nil {
		t.Fatalf("offset beyond end should be nil, got %v", got)
	}
	if got := Decimate([]complex128{1, 2, 3}, 2, -1); len(got) != 2 {
		t.Fatalf("negative offset should clamp to 0, got %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("factor 0 should panic")
		}
	}()
	Decimate([]complex128{1}, 0, 0)
}

func TestQuickDecimateUpsampleInverse(t *testing.T) {
	f := func(seed uint64, fRaw uint8) bool {
		factor := int(fRaw%7) + 1
		x := randSignal(50, seed)
		round := Decimate(Upsample(x, factor), factor, 0)
		if len(round) != len(x) {
			return false
		}
		for i := range x {
			if round[i] != x[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestFractionalDelayWholeSample(t *testing.T) {
	x := []complex128{1, 2, 3, 4}
	y := FractionalDelay(x, 2)
	want := []complex128{0, 0, 1, 2}
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("delay 2: %v", y)
		}
	}
}

func TestFractionalDelayInterpolates(t *testing.T) {
	x := []complex128{0, 2, 4, 6}
	y := FractionalDelay(x, 0.5)
	// y[i] = 0.5*x[i] + 0.5*x[i-1]
	want := []complex128{0, 1, 3, 5}
	for i := range want {
		if !cEq(y[i], want[i], 1e-12) {
			t.Fatalf("half-sample delay: %v", y)
		}
	}
}

func TestFractionalDelayPanicsNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative delay should panic")
		}
	}()
	FractionalDelay([]complex128{1}, -1)
}

func TestSinc(t *testing.T) {
	if Sinc(0) != 1 {
		t.Fatal("Sinc(0) must be 1")
	}
	for _, k := range []float64{1, 2, 3, -4} {
		if math.Abs(Sinc(k)) > 1e-15 {
			t.Fatalf("Sinc(%v) = %v, want 0", k, Sinc(k))
		}
	}
	if math.Abs(Sinc(0.5)-2/math.Pi) > 1e-12 {
		t.Fatalf("Sinc(0.5) = %v", Sinc(0.5))
	}
}

func TestConjAndMaxAbs(t *testing.T) {
	x := []complex128{1 + 2i, -3i}
	c := Conj(x)
	if c[0] != 1-2i || c[1] != 3i {
		t.Fatalf("conj = %v", c)
	}
	if m := MaxAbs(x); math.Abs(m-3) > 1e-12 {
		t.Fatalf("MaxAbs = %v", m)
	}
	if ArgMaxAbs(nil) != -1 {
		t.Fatal("ArgMaxAbs(empty) should be -1")
	}
	if ArgMaxAbs(x) != 1 {
		t.Fatalf("ArgMaxAbs = %d, want 1", ArgMaxAbs(x))
	}
}
