package dsp

import (
	"math"
	"sort"
	"testing"

	"bhss/internal/prng"
)

// smoothPSDNaive is the O(n*width) circular moving average SmoothPSD
// replaced; it remains here as the reference for the running-sum version.
func smoothPSDNaive(psd []float64, width int) []float64 {
	if width < 1 {
		width = 1
	}
	if width%2 == 0 {
		width++
	}
	half := width / 2
	n := len(psd)
	out := make([]float64, n)
	for i := range out {
		var sum float64
		for d := -half; d <= half; d++ {
			sum += psd[((i+d)%n+n)%n]
		}
		out[i] = sum / float64(width)
	}
	return out
}

func TestSmoothPSDMatchesNaive(t *testing.T) {
	src := prng.New(42)
	for _, n := range []int{1, 2, 3, 5, 16, 37, 256} {
		psd := make([]float64, n)
		for i := range psd {
			psd[i] = src.Float64() * 100
		}
		// Widths beyond n exercise multi-wrap windows; even widths the
		// round-up-to-odd rule.
		for _, width := range []int{0, 1, 2, 3, 4, 5, 9, 31, 2*n + 3} {
			want := smoothPSDNaive(psd, width)
			got := SmoothPSD(psd, width)
			for i := range want {
				if math.Abs(got[i]-want[i]) > 1e-9*math.Max(1, math.Abs(want[i])) {
					t.Fatalf("n=%d width=%d bin %d: got %g want %g", n, width, i, got[i], want[i])
				}
			}
		}
	}
}

func TestSmoothPSDIntoPanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SmoothPSDInto(make([]float64, 3), make([]float64, 4), 3)
}

func TestSortFloatsMatchesStdlib(t *testing.T) {
	src := prng.New(7)
	for _, n := range []int{0, 1, 2, 3, 17, 100, 1000} {
		a := make([]float64, n)
		for i := range a {
			// Coarse quantization forces duplicates.
			a[i] = math.Floor(src.Float64()*20) - 10
		}
		want := append([]float64(nil), a...)
		sort.Float64s(want)
		SortFloats(a)
		for i := range want {
			if a[i] != want[i] {
				t.Fatalf("n=%d index %d: got %g want %g", n, i, a[i], want[i])
			}
		}
	}
}

func TestQuantileSortedConvention(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	for _, tc := range []struct {
		q    float64
		want float64
	}{
		{0, 1}, {0.35, 4}, {0.5, 6}, {0.99, 10}, {1, 10}, {1.5, 10}, {-1, 1},
	} {
		if got := QuantileSorted(sorted, tc.q); got != tc.want {
			t.Fatalf("q=%g: got %g want %g", tc.q, got, tc.want)
		}
	}
	if got := QuantileSorted(nil, 0.5); got != 0 {
		t.Fatalf("empty: got %g want 0", got)
	}
}

func TestMedianFloatsDoesNotModifyInput(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3}
	if got := MedianFloats(xs); got != 3 {
		t.Fatalf("median: got %g want 3", got)
	}
	if xs[0] != 5 || xs[4] != 3 {
		t.Fatalf("input modified: %v", xs)
	}
	if got := MedianFloats([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Fatalf("even median: got %g want 2.5", got)
	}
	if got := MedianFloats(nil); got != 0 {
		t.Fatalf("empty median: got %g want 0", got)
	}
}
