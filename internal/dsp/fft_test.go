package dsp

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"

	"bhss/internal/prng"
)

func cEq(a, b complex128, tol float64) bool { return cmplx.Abs(a-b) <= tol }

// dftNaive is the O(n^2) reference implementation.
func dftNaive(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var acc complex128
		for t := 0; t < n; t++ {
			ang := -2 * math.Pi * float64(k) * float64(t) / float64(n)
			acc += x[t] * cmplx.Exp(complex(0, ang))
		}
		out[k] = acc
	}
	return out
}

func randSignal(n int, seed uint64) []complex128 {
	s := prng.New(seed)
	x := make([]complex128, n)
	for i := range x {
		x[i] = s.ComplexNorm()
	}
	return x
}

func TestFFTMatchesNaiveDFT(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 16, 64, 128} {
		x := randSignal(n, uint64(n))
		want := dftNaive(x)
		got := FFT(append([]complex128(nil), x...))
		for k := range want {
			if !cEq(got[k], want[k], 1e-9*float64(n)) {
				t.Fatalf("n=%d bin %d: got %v want %v", n, k, got[k], want[k])
			}
		}
	}
}

func TestBluesteinMatchesNaiveDFT(t *testing.T) {
	for _, n := range []int{3, 5, 6, 7, 12, 15, 100} {
		x := randSignal(n, uint64(n)+100)
		want := dftNaive(x)
		got := FFT(append([]complex128(nil), x...))
		for k := range want {
			if !cEq(got[k], want[k], 1e-8*float64(n)) {
				t.Fatalf("n=%d bin %d: got %v want %v", n, k, got[k], want[k])
			}
		}
	}
}

func TestIFFTInvertsFFT(t *testing.T) {
	for _, n := range []int{4, 16, 33, 100, 256} {
		x := randSignal(n, uint64(n)+7)
		y := FFT(append([]complex128(nil), x...))
		back := IFFT(y)
		for i := range x {
			if !cEq(back[i], x[i], 1e-9*float64(n)) {
				t.Fatalf("n=%d sample %d: got %v want %v", n, i, back[i], x[i])
			}
		}
	}
}

func TestFFTImpulse(t *testing.T) {
	x := make([]complex128, 8)
	x[0] = 1
	FFT(x)
	for k, v := range x {
		if !cEq(v, 1, 1e-12) {
			t.Fatalf("bin %d of impulse transform = %v, want 1", k, v)
		}
	}
}

func TestFFTSingleTone(t *testing.T) {
	const n, bin = 64, 5
	x := make([]complex128, n)
	for i := range x {
		ang := 2 * math.Pi * bin * float64(i) / n
		x[i] = cmplx.Exp(complex(0, ang))
	}
	FFT(x)
	for k, v := range x {
		want := complex(0, 0)
		if k == bin {
			want = complex(n, 0)
		}
		if !cEq(v, want, 1e-8) {
			t.Fatalf("bin %d = %v, want %v", k, v, want)
		}
	}
}

func TestParsevalProperty(t *testing.T) {
	f := func(seed uint64) bool {
		n := 128
		x := randSignal(n, seed)
		timeEnergy := Energy(x)
		y := FFT(append([]complex128(nil), x...))
		freqEnergy := Energy(y) / float64(n)
		return math.Abs(timeEnergy-freqEnergy) < 1e-6*timeEnergy
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestFFTLinearityProperty(t *testing.T) {
	f := func(seed uint64) bool {
		n := 64
		a := randSignal(n, seed)
		b := randSignal(n, seed^0xdeadbeef)
		sum := make([]complex128, n)
		for i := range sum {
			sum[i] = a[i] + 2*b[i]
		}
		fa := FFT(append([]complex128(nil), a...))
		fb := FFT(append([]complex128(nil), b...))
		fs := FFT(sum)
		for i := range fs {
			if !cEq(fs[i], fa[i]+2*fb[i], 1e-7) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestNextPow2(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 1000: 1024, 1024: 1024}
	for in, want := range cases {
		if got := NextPow2(in); got != want {
			t.Fatalf("NextPow2(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestFFTShift(t *testing.T) {
	x := []complex128{0, 1, 2, 3}
	got := FFTShift(x)
	want := []complex128{2, 3, 0, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("even shift: got %v want %v", got, want)
		}
	}
	x5 := []complex128{0, 1, 2, 3, 4}
	got5 := FFTShift(x5)
	want5 := []complex128{3, 4, 0, 1, 2}
	for i := range want5 {
		if got5[i] != want5[i] {
			t.Fatalf("odd shift: got %v want %v", got5, want5)
		}
	}
}

func TestBinFrequencies(t *testing.T) {
	fs := BinFrequencies(4)
	want := []float64{-0.5, -0.25, 0, 0.25}
	for i := range want {
		if math.Abs(fs[i]-want[i]) > 1e-12 {
			t.Fatalf("BinFrequencies(4) = %v, want %v", fs, want)
		}
	}
	fs5 := BinFrequencies(5)
	if fs5[0] >= 0 || fs5[len(fs5)-1] <= 0 {
		t.Fatalf("BinFrequencies(5) = %v should straddle DC", fs5)
	}
	for i := 1; i < len(fs5); i++ {
		if fs5[i] <= fs5[i-1] {
			t.Fatalf("BinFrequencies must be increasing: %v", fs5)
		}
	}
}

func TestFFTShiftFloatRoundTripWithBinFrequencies(t *testing.T) {
	// DC bin must land where BinFrequencies reports 0.
	n := 8
	psd := make([]float64, n)
	psd[0] = 42 // DC in un-shifted order
	shifted := FFTShiftFloat(psd)
	freqs := BinFrequencies(n)
	for i, f := range freqs {
		if f == 0 && shifted[i] != 42 {
			t.Fatalf("DC bin misplaced: %v", shifted)
		}
	}
}

func BenchmarkFFT1024(b *testing.B) {
	x := randSignal(1024, 1)
	buf := make([]complex128, len(x))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		copy(buf, x)
		FFT(buf)
	}
}

func BenchmarkFFT65536(b *testing.B) {
	x := randSignal(65536, 1)
	buf := make([]complex128, len(x))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		copy(buf, x)
		FFT(buf)
	}
}
