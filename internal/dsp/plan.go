package dsp

import (
	"fmt"
	"math"
	"math/bits"
	"sync"

	"bhss/internal/dsp/simd"
	"bhss/internal/obs"
)

// FFTPlan caches everything a radix-2 FFT of one power-of-two size needs:
// the bit-reversal permutation and the per-stage twiddle-factor tables.
// Executing a plan performs no trigonometry and no allocation, so steady-
// state transform loops run entirely out of the caller's buffers. Plans are
// immutable after construction and safe for concurrent use; Forward and
// Inverse work in place on caller-provided slices (the "scratch" is the
// signal buffer itself).
//
// Callers that transform one size in a loop should hold the plan in a
// variable; one-shot callers can go through PlanFFT, which memoizes plans
// per size in a package-level cache.
type FFTPlan struct {
	n int
	// swaps lists the bit-reversal permutation as (i, rev[i]) pairs with
	// i < rev[i], flattened. Walking only the pairs that actually move
	// halves the permutation pass's memory traffic and removes the
	// branch-per-element of scanning the full rev table.
	swaps []int32
	tw    []complex128 // forward twiddles, stages concatenated, n-1 entries
}

// planCache memoizes FFTPlans per size. Plans are tiny relative to the
// signals they transform (~24 bytes per point) and the pipeline only ever
// touches a handful of sizes, so the cache is unbounded.
var planCache sync.Map // int -> *FFTPlan

// The plan cache is process-wide, so its hit/miss counters are too: they
// register with obs as globals and show up in every pipeline snapshot.
var planCacheHits, planCacheMisses obs.Counter

func init() {
	obs.RegisterGlobal("dsp.fftplan.hit", planCacheHits.Load)
	obs.RegisterGlobal("dsp.fftplan.miss", planCacheMisses.Load)
}

// PlanFFT returns the (memoized) plan for an n-point transform. n must be a
// power of two >= 1.
//
//bhss:planphase plan construction; a non-power-of-two size is a programming error
func PlanFFT(n int) *FFTPlan {
	if v, ok := planCache.Load(n); ok {
		planCacheHits.Inc()
		return v.(*FFTPlan)
	}
	planCacheMisses.Inc()
	p, err := NewFFTPlan(n)
	if err != nil {
		panic(err)
	}
	v, _ := planCache.LoadOrStore(n, p)
	return v.(*FFTPlan)
}

// NewFFTPlan builds an uncached plan for an n-point transform. n must be a
// power of two >= 1. Use PlanFFT unless the caller manages plan lifetime
// itself.
func NewFFTPlan(n int) (*FFTPlan, error) {
	if n < 1 || n&(n-1) != 0 {
		return nil, fmt.Errorf("dsp: FFT plan size %d is not a power of two", n)
	}
	p := &FFTPlan{n: n}
	logN := bits.TrailingZeros(uint(n))
	for i := 0; i < n; i++ {
		r := int32(bits.Reverse32(uint32(i)) >> (32 - logN))
		if int32(i) < r {
			p.swaps = append(p.swaps, int32(i), r)
		}
	}
	if n == 1 {
		return p, nil
	}
	// Twiddles for stage of butterfly span `size` live at offset size/2-1:
	// the halves of all previous stages sum to exactly that (1+2+...+size/4).
	p.tw = make([]complex128, n-1)
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		base := half - 1
		for k := 0; k < half; k++ {
			ang := -2 * math.Pi * float64(k) / float64(size)
			p.tw[base+k] = complex(math.Cos(ang), math.Sin(ang))
		}
	}
	return p, nil
}

// Size returns the transform length the plan was built for.
func (p *FFTPlan) Size() int { return p.n }

// Forward computes the in-place forward DFT (e^{-j2πnk/N} convention, no
// normalization). len(x) must equal the plan size.
//
//bhss:hotpath
func (p *FFTPlan) Forward(x []complex128) {
	p.transform(x, false)
}

// Inverse computes the in-place inverse DFT with 1/N normalization.
//
//bhss:hotpath
func (p *FFTPlan) Inverse(x []complex128) {
	p.transform(x, true)
	simd.ScaleReal(x, 1/float64(p.n))
}

// inverseUnscaled is Inverse without the 1/N pass, for callers (overlap-save,
// Bluestein) that fold the normalization into a frequency-domain table.
func (p *FFTPlan) inverseUnscaled(x []complex128) {
	p.transform(x, true)
}

// transform runs the decimation-in-time flow on bit-reversed input. Pairs of
// radix-2 stages are fused into radix-4 passes: each pass reads and writes
// every element once (half the memory traffic) and spends 3 twiddle
// multiplies per 4 points where two radix-2 stages spend 4. The twiddle
// tables are shared with the radix-2 formulation — the second fused stage's
// upper-half twiddles are the lower half times ∓i, applied as a
// swap-and-negate. The inverse direction conjugates the forward tables.
func (p *FFTPlan) transform(x []complex128, inverse bool) {
	n := p.n
	if len(x) != n {
		//bhss:allow(panicpolicy) zero-alloc execute contract: wrong-size input is a caller bug, like copy() with bad bounds
		panic(fmt.Sprintf("dsp: FFT plan size %d given %d samples", n, len(x)))
	}
	for i := 0; i < len(p.swaps); i += 2 {
		a, b := p.swaps[i], p.swaps[i+1]
		x[a], x[b] = x[b], x[a]
	}
	if n < 2 {
		return
	}
	var h int
	if bits.TrailingZeros(uint(n))&1 == 1 {
		// Odd number of radix-2 stages: run the twiddle-free span-2 stage
		// alone so an even count remains for the fused passes.
		simd.Span2(x)
		h = 2
	} else {
		// The first fused pass (spans 2 and 4) has unit twiddles
		// throughout; it runs as pure adds with the ∓i rotation applied as
		// a swap-and-negate.
		if inverse {
			simd.Unit4Inverse(x)
		} else {
			simd.Unit4Forward(x)
		}
		h = 4
	}
	// Each fused pass combines the radix-2 stages of spans 2h and 4h over
	// blocks of four h-length quarters. The kernels iterate all blocks; the
	// inverse direction conjugates the twiddles in-kernel.
	for ; 4*h <= n; h *= 4 {
		twA := p.tw[h-1 : h-1+h]     // span-2h stage twiddles
		twB := p.tw[2*h-1 : 2*h-1+h] // span-4h stage, lower half
		if inverse {
			simd.Radix4Inverse(x, h, twA, twB)
		} else {
			simd.Radix4Forward(x, h, twA, twB)
		}
	}
}

// bluesteinPlan caches the chirp sequence and the pre-transformed chirp
// filter for a forward Bluestein (chirp-z) DFT of one non-power-of-two size.
type bluesteinPlan struct {
	m     int
	chirp []complex128 // e^{-jπk²/n}, length n
	bFT   []complex128 // FFT of the chirp filter, 1/m folded in, length m
	plan  *FFTPlan
}

var bluesteinCache sync.Map // int -> *bluesteinPlan

func planBluestein(n int) *bluesteinPlan {
	if v, ok := bluesteinCache.Load(n); ok {
		return v.(*bluesteinPlan)
	}
	m := NextPow2(2*n + 1)
	bp := &bluesteinPlan{m: m, plan: PlanFFT(m)}
	bp.chirp = make([]complex128, n)
	bp.bFT = make([]complex128, m)
	for k := 0; k < n; k++ {
		// Reduce k^2 mod 2n before the trig call to keep the angle small.
		kk := (int64(k) * int64(k)) % int64(2*n)
		ang := -math.Pi * float64(kk) / float64(n)
		c := complex(math.Cos(ang), math.Sin(ang))
		bp.chirp[k] = c
		conj := complex(real(c), -imag(c))
		bp.bFT[k] = conj
		if k > 0 {
			bp.bFT[m-k] = conj
		}
	}
	bp.plan.Forward(bp.bFT)
	invM := complex(1/float64(m), 0)
	for i := range bp.bFT {
		bp.bFT[i] *= invM
	}
	v, _ := bluesteinCache.LoadOrStore(n, bp)
	return v.(*bluesteinPlan)
}

// bluestein computes an arbitrary-length DFT as a convolution via
// power-of-two FFTs (chirp-z transform), using the memoized per-size plan.
// The inverse direction is the conjugate of the forward transform of the
// conjugated input (the caller applies 1/N).
func bluestein(x []complex128, inverse bool) []complex128 {
	n := len(x)
	bp := planBluestein(n)
	a := make([]complex128, bp.m)
	if inverse {
		for k, c := range bp.chirp {
			v := x[k]
			a[k] = complex(real(v), -imag(v)) * c
		}
	} else {
		for k, c := range bp.chirp {
			a[k] = x[k] * c
		}
	}
	bp.plan.Forward(a)
	for i, b := range bp.bFT {
		a[i] *= b
	}
	bp.plan.inverseUnscaled(a)
	out := make([]complex128, n)
	if inverse {
		for k, c := range bp.chirp {
			v := a[k] * c
			out[k] = complex(real(v), -imag(v))
		}
	} else {
		for k, c := range bp.chirp {
			out[k] = a[k] * c
		}
	}
	return out
}
