package dsp

import (
	"fmt"
	"math"
	"math/cmplx"
)

// FIR is a finite impulse response filter with complex taps. Filtering is
// available in three forms: streaming (Process, with state carried across
// calls), one-shot direct convolution (Apply) and one-shot FFT overlap-save
// convolution (ApplyFast) for long signals.
type FIR struct {
	taps []complex128
	//bhss:scratch
	state []complex128 // delay line for streaming use, len == len(taps)-1
	ols   *OverlapSave // lazily built fast convolver, shares the taps
}

// NewFIR returns a filter with the given taps. The taps slice is copied.
func NewFIR(taps []complex128) *FIR {
	if len(taps) == 0 {
		panic("dsp: FIR requires at least one tap")
	}
	f := &FIR{taps: append([]complex128(nil), taps...)}
	f.state = make([]complex128, len(taps)-1)
	return f
}

// NewFIRReal returns a filter from real-valued taps.
func NewFIRReal(taps []float64) *FIR {
	c := make([]complex128, len(taps))
	for i, t := range taps {
		c[i] = complex(t, 0)
	}
	return NewFIR(c)
}

// Taps returns a copy of the filter taps.
func (f *FIR) Taps() []complex128 {
	return append([]complex128(nil), f.taps...)
}

// Len returns the number of taps.
func (f *FIR) Len() int { return len(f.taps) }

// Reset clears the streaming delay line.
func (f *FIR) Reset() {
	for i := range f.state {
		f.state[i] = 0
	}
}

// Process filters a block of samples, carrying the delay line across calls,
// and returns a new slice of the same length. The output at index i is
// sum_k taps[k] * x[i-k] with history from previous blocks.
func (f *FIR) Process(x []complex128) []complex128 {
	k := len(f.taps)
	out := make([]complex128, len(x))
	// Work on a contiguous buffer of state + input for branch-free inner loop.
	buf := make([]complex128, len(f.state)+len(x))
	copy(buf, f.state)
	copy(buf[len(f.state):], x)
	for i := range x {
		var acc complex128
		base := i + k - 1
		for t := 0; t < k; t++ {
			acc += f.taps[t] * buf[base-t]
		}
		out[i] = acc
	}
	// Save tail as next state.
	if k > 1 {
		copy(f.state, buf[len(buf)-(k-1):])
	}
	return out
}

// Apply convolves x with the taps and returns the "same" central part of the
// convolution: output has len(x) samples and is aligned so that a symmetric
// (linear-phase) filter introduces no net shift. It does not touch streaming
// state.
func (f *FIR) Apply(x []complex128) []complex128 {
	full := convolveDirect(x, f.taps)
	return sameSlice(full, len(x), len(f.taps))
}

// ApplyFast is Apply using FFT overlap-save convolution; results agree with
// Apply to floating-point accuracy. Prefer it when len(x)*len(taps) is large.
// The first call builds the filter's frequency-domain transform; subsequent
// calls reuse it, allocating only the result slice.
func (f *FIR) ApplyFast(x []complex128) []complex128 {
	return f.Convolver().ApplySame(nil, x)
}

// Convolver returns the filter's overlap-save convolver, building it (and
// the taps' frequency-domain transform) on first use. Callers that filter
// into reusable buffers should go through it directly: its Apply*/Process
// methods append to caller-provided slices and allocate nothing once those
// have capacity. The convolver shares the FIR's concurrency constraints
// (one goroutine at a time).
func (f *FIR) Convolver() *OverlapSave {
	if f.ols == nil {
		f.ols = NewOverlapSave(f.taps)
	}
	return f.ols
}

// sameSlice extracts the length-n "same" part from a full convolution with a
// k-tap kernel (group delay (k-1)/2 removed).
func sameSlice(full []complex128, n, k int) []complex128 {
	start := (k - 1) / 2
	out := make([]complex128, n)
	copy(out, full[start:start+n])
	return out
}

// convolveDirect returns the full linear convolution of x and h
// (length len(x)+len(h)-1).
func convolveDirect(x, h []complex128) []complex128 {
	if len(x) == 0 || len(h) == 0 {
		return nil
	}
	out := make([]complex128, len(x)+len(h)-1)
	for i, xv := range x {
		if xv == 0 {
			continue
		}
		for j, hv := range h {
			out[i+j] += xv * hv
		}
	}
	return out
}

// Convolve returns the full linear convolution of x and h using the direct
// method. See ConvolveFFT for the fast path.
func Convolve(x, h []complex128) []complex128 {
	return convolveDirect(x, h)
}

// ConvolveFFT returns the full linear convolution of x and h via a single
// zero-padded FFT. For very long x relative to h this is still near-optimal
// and much simpler than block processing.
func ConvolveFFT(x, h []complex128) []complex128 {
	if len(x) == 0 || len(h) == 0 {
		return nil
	}
	n := len(x) + len(h) - 1
	m := NextPow2(n)
	a := make([]complex128, m)
	b := make([]complex128, m)
	copy(a, x)
	copy(b, h)
	FFT(a)
	FFT(b)
	for i := range a {
		a[i] *= b[i]
	}
	IFFT(a)
	return a[:n]
}

// FrequencyResponse evaluates the filter's DFT H(k) at nfft equally spaced
// frequencies (un-shifted bin ordering), per eq. (2) of the paper.
func (f *FIR) FrequencyResponse(nfft int) []complex128 {
	h := make([]complex128, nfft)
	copy(h, f.taps)
	if len(f.taps) > nfft {
		// Alias taps that do not fit (rare; matches DFT periodicity).
		h = make([]complex128, nfft)
		for i, t := range f.taps {
			h[i%nfft] += t
		}
	}
	return FFT(h)
}

// GainAt returns |H(e^{j2πf})|^2 at normalized frequency f (cycles/sample)
// evaluated exactly from the taps.
func (f *FIR) GainAt(freq float64) float64 {
	var acc complex128
	for n, t := range f.taps {
		ang := -2 * math.Pi * freq * float64(n)
		acc += t * cmplx.Exp(complex(0, ang))
	}
	return real(acc)*real(acc) + imag(acc)*imag(acc)
}

// LowPassFIR designs a linear-phase windowed-sinc low-pass filter with the
// given cutoff (normalized frequency, cycles/sample, 0 < cutoff < 0.5) and
// number of taps. The passband gain is normalized to one at DC. This is the
// receiver's eq. (4) filter for wide-band jammers.
//
//bhss:planphase filter design runs at construction time; invalid specs are caller bugs
func LowPassFIR(cutoff float64, numTaps int, win Window, beta float64) *FIR {
	if cutoff <= 0 || cutoff >= 0.5 {
		panic(fmt.Sprintf("dsp: low-pass cutoff %v out of (0, 0.5)", cutoff))
	}
	if numTaps < 1 {
		panic("dsp: need at least one tap")
	}
	w := win.Coefficients(numTaps, beta)
	taps := make([]float64, numTaps)
	mid := float64(numTaps-1) / 2
	var sum float64
	for i := range taps {
		t := 2 * cutoff * Sinc(2*cutoff*(float64(i)-mid))
		t *= w[i]
		taps[i] = t
		sum += t
	}
	// Unity DC gain.
	if sum != 0 {
		for i := range taps {
			taps[i] /= sum
		}
	}
	return NewFIRReal(taps)
}

// LowPassForAttenuation designs a low-pass FIR from a stop-band attenuation
// target (dB) and transition width (normalized frequency) using a Kaiser
// window, mirroring the paper's "transition width of 10 kHz and stop-band
// attenuation of 70 dB" specification. maxTaps bounds the filter order (the
// paper's hardware capped it at 3181 taps).
func LowPassForAttenuation(cutoff, attenDB, transitionWidth float64, maxTaps int) *FIR {
	order := KaiserOrder(attenDB, transitionWidth)
	numTaps := order + 1
	if maxTaps > 0 && numTaps > maxTaps {
		numTaps = maxTaps
		if numTaps%2 == 0 {
			numTaps--
		}
	}
	return LowPassFIR(cutoff, numTaps, Kaiser, KaiserBeta(attenDB))
}

// WhiteningFIR designs the paper's excision filter (eq. (3)): a filter whose
// DFT magnitude is the reciprocal of the square root of the estimated power
// spectral density, with the linear phase term e^{-jπ(K-1)k/K}. psd must hold
// K strictly positive values in un-shifted bin order; bins at or below
// floor*max(psd) are clamped to avoid amplifying empty bands.
//
// The filter whitens the incoming spectrum: frequencies occupied by a
// narrow-band jammer receive large attenuation while the rest of the band is
// nearly untouched.
//
// The design runs per hop on a live PSD estimate, so malformed input is
// reported as an error rather than panicking a streaming pipeline.
func WhiteningFIR(psd []float64, floor float64) (*FIR, error) {
	k := len(psd)
	if k == 0 {
		return nil, fmt.Errorf("dsp: whitening filter needs a non-empty PSD")
	}
	if floor <= 0 {
		floor = 1e-12
	}
	var maxP float64
	for _, p := range psd {
		if p > maxP {
			maxP = p
		}
	}
	if maxP == 0 {
		maxP = 1
	}
	clamp := maxP * floor
	mag := make([]float64, k)
	for i, p := range psd {
		if p < clamp {
			p = clamp
		}
		mag[i] = 1 / math.Sqrt(p)
	}
	f, err := linearPhaseFromMagnitude(mag)
	if err != nil {
		return nil, err
	}
	// Normalize so the median pass-band gain is ~1, keeping the overall
	// signal level stable.
	resp := f.FrequencyResponse(k)
	mags := make([]float64, k)
	for i, r := range resp {
		mags[i] = cmplx.Abs(r)
	}
	med := MedianFloats(mags)
	if med > 0 {
		for i := range f.taps {
			f.taps[i] /= complex(med, 0)
		}
	}
	return f, nil
}

// linearPhaseFromMagnitude builds an exactly linear-phase FIR whose
// magnitude response approximates the given K-point target (un-shifted bin
// order). The target may be asymmetric in ±f (a one-sided jammer notch), so
// the taps are complex but Hermitian around the center (h[c+d] =
// conj(h[c-d])), which keeps the frequency response real — zero phase up to
// an integer delay. The zero-phase impulse response from the inverse DFT is
// rotated so its peak sits at the integer center c = (L-1)/2 with L = K-1
// (odd) taps — the alignment Apply/ApplyFast compensate exactly. (A direct
// e^{-jπ(K-1)k/K} phase term as written in eq. (3) puts the delay at the
// half-sample (K-1)/2, which an integer-aligned convolution cannot undo
// without distortion.)
func linearPhaseFromMagnitude(mag []float64) (*FIR, error) {
	k := len(mag)
	if k < 3 {
		return nil, fmt.Errorf("dsp: magnitude response needs >= 3 bins, got %d", k)
	}
	h := make([]complex128, k)
	for i, m := range mag {
		h[i] = complex(m, 0)
	}
	h0 := IFFT(h) // zero-phase: h0[-n] = conj(h0[n]) for a real target
	L := k - 1
	if L%2 == 0 {
		L--
	}
	c := (L - 1) / 2
	taps := make([]complex128, L)
	for i := range taps {
		idx := ((i-c)%k + k) % k
		taps[i] = h0[idx]
	}
	return NewFIR(taps), nil
}

// SmoothPSD returns a circularly smoothed copy of a PSD using a moving
// average of the given width (forced odd, >= 1). Averaged-periodogram
// estimates from short captures scatter heavily per bin; smoothing before
// threshold tests and filter design prevents the whitening filter from
// amplifying estimation noise.
func SmoothPSD(psd []float64, width int) []float64 {
	out := make([]float64, len(psd))
	SmoothPSDInto(out, psd, width)
	return out
}

// SmoothPSDInto is SmoothPSD writing into dst, which must have the same
// length as psd and must not alias it. The circular moving average is
// computed with a running window sum, so the cost is O(n + width) rather
// than O(n*width).
//
//bhss:hotpath
func SmoothPSDInto(dst, psd []float64, width int) {
	n := len(psd)
	if len(dst) != n {
		//bhss:allow(panicpolicy) zero-alloc Into contract: mismatched dst is a caller bug, like copy() with bad bounds
		panic("dsp: SmoothPSDInto length mismatch")
	}
	if n == 0 {
		return
	}
	if width < 1 {
		width = 1
	}
	if width%2 == 0 {
		width++
	}
	half := width / 2
	var sum float64
	for d := -half; d <= half; d++ {
		//bhss:allow(simdloop) wrap-around window seed: the indices fold mod n, so the reads are not contiguous and SumFloats does not apply; runs once per call over `width` bins, not per bin
		sum += psd[((d%n)+n)%n]
	}
	inv := 1 / float64(width)
	// Wrapping indices advance by one per bin, so the slide needs no modulo
	// in the hot loop: bin `in` enters the window, bin `out` leaves.
	in := (half + 1) % n
	out := n - half%n
	if out == n {
		out = 0
	}
	for i := 0; i < n; i++ {
		dst[i] = sum * inv
		sum += psd[in] - psd[out]
		in++
		if in == n {
			in = 0
		}
		out++
		if out == n {
			out = 0
		}
	}
}

// NotchFIR designs a robust excision filter from a PSD estimate: bins whose
// power exceeds threshold times the reference level are attenuated down to
// the reference (|H| = sqrt(ref/psd)); all other bins pass with unit gain.
// Like the eq. (3) whitening filter it suppresses exactly the spectrum the
// jammer occupies, but unlike raw reciprocal whitening it leaves the rest
// untouched, which keeps estimation noise from distorting the desired
// signal.
//
// ref anchors "normal" power — pass the median of the bins the *signal*
// occupies. A non-positive ref falls back to the global PSD median, which
// is only correct when the signal fills most of the band: for a narrow
// signal the global median is the noise floor and the notch would flatten
// the whole signal band into it. threshold must be > 1.
//
// Like WhiteningFIR this designs from live per-hop estimates, so bad input
// returns an error instead of panicking the streaming path.
func NotchFIR(psd []float64, threshold, ref float64) (*FIR, error) {
	k := len(psd)
	if k == 0 {
		return nil, fmt.Errorf("dsp: notch filter needs a non-empty PSD")
	}
	if threshold <= 1 {
		return nil, fmt.Errorf("dsp: notch threshold %v must be > 1", threshold)
	}
	if ref <= 0 {
		ref = MedianFloats(psd)
	}
	if ref <= 0 {
		ref = 1e-12
	}
	// Jammed bins are pushed a factor notchDepth below the reference:
	// flooring them exactly at the signal level would leave a residual
	// strong enough to steer the receiver's carrier loop when the jammer
	// sits at the band center.
	mag := make([]float64, k)
	for i, p := range psd {
		mag[i] = 1
		if p > threshold*ref {
			mag[i] = math.Sqrt(ref / (notchDepth * p))
		}
	}
	return linearPhaseFromMagnitude(mag)
}

// notchDepth is how far below the target level notched bins are pushed.
const notchDepth = 16

// ShapedNotchFIR generalizes NotchFIR to a frequency-dependent target: bin
// i is acceptable up to threshold*target[i] and notched down to
// target[i]/notchDepth beyond that. Receivers that know their own pulse
// spectrum pass target[i] = ref * |G(f_i)|² so the signal's legitimate
// spectral peak is never mistaken for interference while a jammer hiding
// under it still gets cut. len(target) must equal len(psd).
func ShapedNotchFIR(psd, target []float64, threshold float64) (*FIR, error) {
	k := len(psd)
	if k == 0 {
		return nil, fmt.Errorf("dsp: notch filter needs a non-empty PSD")
	}
	if len(target) != k {
		return nil, fmt.Errorf("dsp: notch target has %d bins for a %d-bin PSD", len(target), k)
	}
	if threshold <= 1 {
		return nil, fmt.Errorf("dsp: notch threshold %v must be > 1", threshold)
	}
	mag := make([]float64, k)
	for i, p := range psd {
		mag[i] = 1
		t := target[i]
		if t <= 0 {
			t = 1e-12
		}
		if p > threshold*t {
			mag[i] = math.Sqrt(t / (notchDepth * p))
		}
	}
	return linearPhaseFromMagnitude(mag)
}
