package dsp

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"
)

func TestFIRProcessMatchesApply(t *testing.T) {
	taps := []complex128{0.25, 0.5, 0.25}
	x := randSignal(100, 42)

	f1 := NewFIR(taps)
	streamed := f1.Process(x)

	full := Convolve(x, taps)
	for i := range streamed {
		if !cEq(streamed[i], full[i], 1e-12) {
			t.Fatalf("sample %d: streamed %v, conv %v", i, streamed[i], full[i])
		}
	}
}

func TestFIRProcessAcrossBlocks(t *testing.T) {
	taps := []complex128{1, -0.5, 0.25, 0.1}
	x := randSignal(64, 7)

	whole := NewFIR(taps).Process(x)

	f := NewFIR(taps)
	part := append(f.Process(x[:10]), f.Process(x[10:40])...)
	part = append(part, f.Process(x[40:])...)

	for i := range whole {
		if !cEq(whole[i], part[i], 1e-12) {
			t.Fatalf("block-split output diverges at %d", i)
		}
	}
}

func TestFIRReset(t *testing.T) {
	taps := []complex128{1, 1}
	f := NewFIR(taps)
	f.Process([]complex128{5})
	f.Reset()
	out := f.Process([]complex128{1})
	if !cEq(out[0], 1, 1e-15) {
		t.Fatalf("after Reset, output = %v, want 1 (no history)", out[0])
	}
}

func TestApplyFastMatchesApply(t *testing.T) {
	taps := make([]complex128, 31)
	for i := range taps {
		taps[i] = complex(math.Sin(float64(i)), math.Cos(float64(2*i)))
	}
	x := randSignal(500, 3)
	f := NewFIR(taps)
	a := f.Apply(x)
	b := f.ApplyFast(x)
	for i := range a {
		if !cEq(a[i], b[i], 1e-8) {
			t.Fatalf("sample %d: direct %v, fft %v", i, a[i], b[i])
		}
	}
}

func TestConvolveFFTMatchesDirectProperty(t *testing.T) {
	f := func(seed uint64) bool {
		x := randSignal(65, seed)
		h := randSignal(17, seed^0xabc)
		d := Convolve(x, h)
		ft := ConvolveFFT(x, h)
		if len(d) != len(ft) {
			return false
		}
		for i := range d {
			if !cEq(d[i], ft[i], 1e-7) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestConvolveIdentity(t *testing.T) {
	x := randSignal(20, 9)
	out := Convolve(x, []complex128{1})
	for i := range x {
		if out[i] != x[i] {
			t.Fatal("convolution with unit impulse must be identity")
		}
	}
}

func TestConvolveEmpty(t *testing.T) {
	if Convolve(nil, []complex128{1}) != nil || ConvolveFFT([]complex128{1}, nil) != nil {
		t.Fatal("empty convolution should be nil")
	}
}

func TestLowPassFIRPassesAndStops(t *testing.T) {
	f := LowPassFIR(0.1, 101, Hamming, 0)
	// DC gain ~1.
	if g := f.GainAt(0); math.Abs(g-1) > 1e-6 {
		t.Fatalf("DC gain = %v, want 1", g)
	}
	// In-band tone nearly unity.
	if g := f.GainAt(0.05); math.Abs(g-1) > 0.05 {
		t.Fatalf("pass-band gain at 0.05 = %v", g)
	}
	// Stop band strongly attenuated.
	if g := f.GainAt(0.25); g > 1e-3 {
		t.Fatalf("stop-band gain at 0.25 = %v, want < 1e-3", g)
	}
}

func TestLowPassFIRFiltersWidebandNoise(t *testing.T) {
	// Mix a low-frequency tone with a high-frequency tone and verify the
	// filter keeps the former and kills the latter.
	const n = 4096
	x := make([]complex128, n)
	for i := range x {
		low := cmplx.Exp(complex(0, 2*math.Pi*0.02*float64(i)))
		high := cmplx.Exp(complex(0, 2*math.Pi*0.35*float64(i)))
		x[i] = low + high
	}
	f := LowPassFIR(0.1, 129, Blackman, 0)
	y := f.Apply(x)
	// Power of y should be close to the power of the low tone alone (1.0).
	p := Power(y[200 : n-200])
	if math.Abs(p-1) > 0.1 {
		t.Fatalf("filtered power = %v, want ~1 (high tone removed)", p)
	}
}

func TestLowPassForAttenuationMeetsSpec(t *testing.T) {
	f := LowPassForAttenuation(0.125, 60, 0.02, 0)
	// Check attenuation past the transition band.
	for _, fr := range []float64{0.16, 0.2, 0.3, 0.45} {
		g := f.GainAt(fr)
		if DBg := 10 * math.Log10(g); DBg > -55 {
			t.Fatalf("gain at %v = %v dB, want <= -55 dB", fr, DBg)
		}
	}
	if g := f.GainAt(0.05); math.Abs(g-1) > 0.05 {
		t.Fatalf("pass-band gain = %v", g)
	}
}

func TestLowPassForAttenuationRespectsMaxTaps(t *testing.T) {
	f := LowPassForAttenuation(0.125, 80, 0.001, 201)
	if f.Len() > 201 {
		t.Fatalf("filter has %d taps, cap was 201", f.Len())
	}
}

func TestLowPassPanicsOnBadCutoff(t *testing.T) {
	for _, c := range []float64{0, 0.5, -0.1, 0.9} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("cutoff %v should panic", c)
				}
			}()
			LowPassFIR(c, 11, Hamming, 0)
		}()
	}
}

func TestWhiteningFIRNotchesJammerBand(t *testing.T) {
	// Construct a PSD with a strong narrow-band bump and verify the
	// whitening filter attenuates exactly there.
	const k = 256
	psd := make([]float64, k)
	for i := range psd {
		psd[i] = 1
	}
	// Jammer occupies bins 10..20 (positive low frequencies) with 30 dB.
	for i := 10; i <= 20; i++ {
		psd[i] = 1000
	}
	f, err := WhiteningFIR(psd, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	resp := f.FrequencyResponse(k)
	jam := cmplx.Abs(resp[15])
	clean := cmplx.Abs(resp[100])
	if jam >= clean/5 {
		t.Fatalf("whitening response: |H_jam|=%v not well below |H_clean|=%v", jam, clean)
	}
}

func TestWhiteningFIRFlatPSDIsAllpass(t *testing.T) {
	const k = 128
	psd := make([]float64, k)
	for i := range psd {
		psd[i] = 2.5
	}
	f, err := WhiteningFIR(psd, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	resp := f.FrequencyResponse(k)
	for i, r := range resp {
		if math.Abs(cmplx.Abs(r)-1) > 1e-6 {
			t.Fatalf("bin %d gain %v, want 1 for flat PSD", i, cmplx.Abs(r))
		}
	}
}

func TestWhiteningFIRSuppressesToneInTime(t *testing.T) {
	// End-to-end: wide PN-like noise plus a strong tone; after whitening
	// the tone should carry far less of the total power.
	const n = 4096
	x := randSignal(n, 5)
	tone := make([]complex128, n)
	for i := range tone {
		tone[i] = 20 * cmplx.Exp(complex(0, 2*math.Pi*0.2*float64(i)))
	}
	mixed := make([]complex128, n)
	for i := range mixed {
		mixed[i] = x[i] + tone[i]
	}
	// Estimate PSD crudely with one periodogram at K bins.
	const k = 256
	psd := make([]float64, k)
	for blk := 0; blk+k <= n; blk += k {
		seg := append([]complex128(nil), mixed[blk:blk+k]...)
		FFT(seg)
		for i, v := range seg {
			psd[i] += real(v)*real(v) + imag(v)*imag(v)
		}
	}
	f, err := WhiteningFIR(psd, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	y := f.Apply(mixed)
	// Residual power at the tone frequency must be greatly reduced.
	probe := make([]complex128, n)
	for i := range probe {
		probe[i] = cmplx.Exp(complex(0, -2*math.Pi*0.2*float64(i)))
	}
	var before, after complex128
	for i := 0; i < n; i++ {
		before += mixed[i] * probe[i]
		after += y[i] * probe[i]
	}
	rb := cmplx.Abs(before) / float64(n)
	ra := cmplx.Abs(after) / float64(n)
	if ra > rb/10 {
		t.Fatalf("tone amplitude before=%v after=%v, want >=10x suppression", rb, ra)
	}
}

func TestWhiteningFIRRejectsEmptyPSD(t *testing.T) {
	if _, err := WhiteningFIR(nil, 0); err == nil {
		t.Fatal("empty PSD should be rejected")
	}
}

func TestFrequencyResponseMatchesGainAt(t *testing.T) {
	f := LowPassFIR(0.2, 33, Hann, 0)
	const nfft = 64
	resp := f.FrequencyResponse(nfft)
	for k := 0; k < nfft; k++ {
		freq := float64(k) / nfft
		if freq >= 0.5 {
			freq -= 1
		}
		want := f.GainAt(freq)
		got := real(resp[k])*real(resp[k]) + imag(resp[k])*imag(resp[k])
		if math.Abs(got-want) > 1e-9*(1+want) {
			t.Fatalf("bin %d: |H|^2 = %v, GainAt = %v", k, got, want)
		}
	}
}

func BenchmarkFIRApplyFast64k(b *testing.B) {
	f := LowPassFIR(0.1, 257, Blackman, 0)
	x := randSignal(65536, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.ApplyFast(x)
	}
}

func BenchmarkFIRProcess4k(b *testing.B) {
	f := LowPassFIR(0.1, 129, Blackman, 0)
	x := randSignal(4096, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.Reset()
		f.Process(x)
	}
}
