package dsp

import "math"

// Window identifies a spectral window function used for FIR design and PSD
// estimation.
type Window int

// Supported windows. Rectangular is mainly useful in tests; Hamming is the
// default for the Welch estimator; Blackman gives the high stop-band
// attenuation the paper's 70 dB filter spec requires; Kaiser allows an
// explicit attenuation/width trade via its beta parameter.
const (
	Rectangular Window = iota
	Hann
	Hamming
	Blackman
	Kaiser
)

// String returns the window name.
func (w Window) String() string {
	switch w {
	case Rectangular:
		return "rectangular"
	case Hann:
		return "hann"
	case Hamming:
		return "hamming"
	case Blackman:
		return "blackman"
	case Kaiser:
		return "kaiser"
	default:
		return "unknown"
	}
}

// Coefficients returns the n window coefficients. For Kaiser, beta selects
// the shape (beta is ignored by the other windows). n must be positive.
//
//bhss:planphase window design runs at filter-construction time
func (w Window) Coefficients(n int, beta float64) []float64 {
	if n <= 0 {
		panic("dsp: window length must be positive")
	}
	out := make([]float64, n)
	if n == 1 {
		out[0] = 1
		return out
	}
	N := float64(n - 1)
	switch w {
	case Rectangular:
		for i := range out {
			out[i] = 1
		}
	case Hann:
		for i := range out {
			out[i] = 0.5 - 0.5*math.Cos(2*math.Pi*float64(i)/N)
		}
	case Hamming:
		for i := range out {
			out[i] = 0.54 - 0.46*math.Cos(2*math.Pi*float64(i)/N)
		}
	case Blackman:
		for i := range out {
			x := 2 * math.Pi * float64(i) / N
			out[i] = 0.42 - 0.5*math.Cos(x) + 0.08*math.Cos(2*x)
		}
	case Kaiser:
		denom := besselI0(beta)
		for i := range out {
			r := 2*float64(i)/N - 1
			out[i] = besselI0(beta*math.Sqrt(1-r*r)) / denom
		}
	default:
		panic("dsp: unknown window")
	}
	return out
}

// besselI0 is the zeroth-order modified Bessel function of the first kind,
// computed with the standard power series (converges quickly for the beta
// range used in Kaiser windows).
func besselI0(x float64) float64 {
	sum := 1.0
	term := 1.0
	half := x / 2
	for k := 1; k < 64; k++ {
		term *= (half / float64(k)) * (half / float64(k))
		sum += term
		if term < 1e-18*sum {
			break
		}
	}
	return sum
}

// KaiserBeta returns the Kaiser window beta parameter achieving the given
// stop-band attenuation in dB, per Kaiser's empirical formula.
func KaiserBeta(attenDB float64) float64 {
	switch {
	case attenDB > 50:
		return 0.1102 * (attenDB - 8.7)
	case attenDB >= 21:
		return 0.5842*math.Pow(attenDB-21, 0.4) + 0.07886*(attenDB-21)
	default:
		return 0
	}
}

// KaiserOrder estimates the FIR order needed for the given stop-band
// attenuation (dB) and normalized transition width (cycles/sample), per
// Kaiser's formula. The returned order is always at least 8 and odd+1
// adjusted so that order+1 taps give a symmetric (linear phase) filter.
//
//bhss:planphase filter-order selection runs at construction time
func KaiserOrder(attenDB, transitionWidth float64) int {
	if transitionWidth <= 0 {
		panic("dsp: transition width must be positive")
	}
	n := int(math.Ceil((attenDB - 7.95) / (2.285 * 2 * math.Pi * transitionWidth)))
	if n < 8 {
		n = 8
	}
	if n%2 == 1 {
		n++
	}
	return n
}
