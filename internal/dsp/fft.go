package dsp

// FFT computes the in-place decimation-in-time radix-2 discrete Fourier
// transform when len(x) is a power of two, and falls back to Bluestein's
// algorithm for other lengths (returning a new slice in that case; the
// returned slice is always the transform). The forward transform uses the
// e^{-j2πnk/N} convention with no normalization; IFFT applies 1/N.
//
// Both paths run off memoized FFTPlans, so repeated transforms of the same
// size pay no table setup; the power-of-two path additionally performs no
// allocation at all. Callers looping over one size can hold the plan
// directly via PlanFFT.
func FFT(x []complex128) []complex128 {
	n := len(x)
	if n == 0 {
		return x
	}
	if n&(n-1) == 0 {
		PlanFFT(n).Forward(x)
		return x
	}
	return bluestein(x, false)
}

// IFFT computes the inverse DFT with 1/N normalization. Like FFT it works in
// place for power-of-two lengths.
func IFFT(x []complex128) []complex128 {
	n := len(x)
	if n == 0 {
		return x
	}
	if n&(n-1) == 0 {
		PlanFFT(n).Inverse(x)
		return x
	}
	out := bluestein(x, true)
	invN := complex(1/float64(n), 0)
	for i := range out {
		out[i] *= invN
	}
	return out
}

// NextPow2 returns the smallest power of two >= n (and 1 for n <= 1).
func NextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// FFTShift reorders a spectrum so that the zero-frequency bin sits at the
// center, returning a new slice. For odd lengths the extra bin goes to the
// front half, matching the numpy convention.
func FFTShift(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	half := (n + 1) / 2
	copy(out, x[half:])
	copy(out[n-half:], x[:half])
	return out
}

// FFTShiftFloat is FFTShift for real-valued spectra (e.g. PSD estimates).
func FFTShiftFloat(x []float64) []float64 {
	n := len(x)
	out := make([]float64, n)
	half := (n + 1) / 2
	copy(out, x[half:])
	copy(out[n-half:], x[:half])
	return out
}

// BinFrequencies returns the normalized frequency (cycles/sample, in
// [-0.5, 0.5)) of each bin of an n-point FFT after FFTShift ordering.
func BinFrequencies(n int) []float64 {
	out := make([]float64, n)
	half := (n + 1) / 2
	idx := 0
	for k := half; k < n; k++ {
		out[idx] = float64(k-n) / float64(n)
		idx++
	}
	for k := 0; k < half; k++ {
		out[idx] = float64(k) / float64(n)
		idx++
	}
	return out
}
