package dsp

import "math"

// FFT computes the in-place decimation-in-time radix-2 discrete Fourier
// transform when len(x) is a power of two, and falls back to Bluestein's
// algorithm for other lengths (returning a new slice in that case; the
// returned slice is always the transform). The forward transform uses the
// e^{-j2πnk/N} convention with no normalization; IFFT applies 1/N.
func FFT(x []complex128) []complex128 {
	n := len(x)
	if n == 0 {
		return x
	}
	if n&(n-1) == 0 {
		fftRadix2(x, false)
		return x
	}
	return bluestein(x, false)
}

// IFFT computes the inverse DFT with 1/N normalization. Like FFT it works in
// place for power-of-two lengths.
func IFFT(x []complex128) []complex128 {
	n := len(x)
	if n == 0 {
		return x
	}
	if n&(n-1) == 0 {
		fftRadix2(x, true)
		invN := complex(1/float64(n), 0)
		for i := range x {
			x[i] *= invN
		}
		return x
	}
	out := bluestein(x, true)
	invN := complex(1/float64(n), 0)
	for i := range out {
		out[i] *= invN
	}
	return out
}

// NextPow2 returns the smallest power of two >= n (and 1 for n <= 1).
func NextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

func fftRadix2(x []complex128, inverse bool) {
	n := len(x)
	// Bit-reversal permutation.
	for i, j := 0, 0; i < n; i++ {
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
		mask := n >> 1
		for j&mask != 0 {
			j &^= mask
			mask >>= 1
		}
		j |= mask
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		ang := sign * 2 * math.Pi / float64(size)
		wStep := complex(math.Cos(ang), math.Sin(ang))
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			for k := 0; k < half; k++ {
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
				w *= wStep
			}
		}
	}
}

// bluestein computes an arbitrary-length DFT as a convolution via
// power-of-two FFTs (chirp-z transform).
func bluestein(x []complex128, inverse bool) []complex128 {
	n := len(x)
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	m := NextPow2(2*n + 1)
	a := make([]complex128, m)
	b := make([]complex128, m)
	chirp := make([]complex128, n)
	for k := 0; k < n; k++ {
		// Reduce k^2 mod 2n before the trig call to keep the angle small.
		kk := (int64(k) * int64(k)) % int64(2*n)
		ang := sign * math.Pi * float64(kk) / float64(n)
		chirp[k] = complex(math.Cos(ang), math.Sin(ang))
		a[k] = x[k] * chirp[k]
		conj := complex(real(chirp[k]), -imag(chirp[k]))
		b[k] = conj
		if k > 0 {
			b[m-k] = conj
		}
	}
	fftRadix2(a, false)
	fftRadix2(b, false)
	for i := range a {
		a[i] *= b[i]
	}
	fftRadix2(a, true)
	invM := complex(1/float64(m), 0)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		out[k] = a[k] * invM * chirp[k]
	}
	return out
}

// FFTShift reorders a spectrum so that the zero-frequency bin sits at the
// center, returning a new slice. For odd lengths the extra bin goes to the
// front half, matching the numpy convention.
func FFTShift(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	half := (n + 1) / 2
	copy(out, x[half:])
	copy(out[n-half:], x[:half])
	return out
}

// FFTShiftFloat is FFTShift for real-valued spectra (e.g. PSD estimates).
func FFTShiftFloat(x []float64) []float64 {
	n := len(x)
	out := make([]float64, n)
	half := (n + 1) / 2
	copy(out, x[half:])
	copy(out[n-half:], x[:half])
	return out
}

// BinFrequencies returns the normalized frequency (cycles/sample, in
// [-0.5, 0.5)) of each bin of an n-point FFT after FFTShift ordering.
func BinFrequencies(n int) []float64 {
	out := make([]float64, n)
	half := (n + 1) / 2
	idx := 0
	for k := half; k < n; k++ {
		out[idx] = float64(k-n) / float64(n)
		idx++
	}
	for k := 0; k < half; k++ {
		out[idx] = float64(k) / float64(n)
		idx++
	}
	return out
}
