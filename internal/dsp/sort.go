package dsp

// SortFloats sorts a in place in ascending order using an in-place heap
// sort: O(n log n), no allocation, no dependency on package sort. It is the
// shared sorting primitive for the order statistics (medians, quantiles)
// the receiver's control logic computes on PSD estimates.
//
//bhss:hotpath
func SortFloats(a []float64) {
	n := len(a)
	for i := n/2 - 1; i >= 0; i-- {
		siftDown(a, i, n)
	}
	for end := n - 1; end > 0; end-- {
		a[0], a[end] = a[end], a[0]
		siftDown(a, 0, end)
	}
}

func siftDown(a []float64, start, end int) {
	root := start
	for {
		child := 2*root + 1
		if child >= end {
			return
		}
		if child+1 < end && a[child+1] > a[child] {
			child++
		}
		if a[root] >= a[child] {
			return
		}
		a[root], a[child] = a[child], a[root]
		root = child
	}
}

// MedianFloats returns the median of xs (0 for empty input) without
// modifying it.
func MedianFloats(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	SortFloats(cp)
	if n%2 == 1 {
		return cp[n/2]
	}
	return 0.5 * (cp[n/2-1] + cp[n/2])
}

// QuantileSorted returns the q-quantile of an ascending-sorted slice using
// the same index convention the receiver's control logic has always used
// (floor(q*n), clamped).
func QuantileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q * float64(len(sorted)))
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	if idx < 0 {
		idx = 0
	}
	return sorted[idx]
}
