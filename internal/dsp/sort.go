package dsp

// SortFloats sorts a in place in ascending order using an in-place heap
// sort: O(n log n), no allocation, no dependency on package sort. It is the
// shared sorting primitive for the order statistics (medians, quantiles)
// the receiver's control logic computes on PSD estimates.
//
//bhss:hotpath
func SortFloats(a []float64) {
	n := len(a)
	for i := n/2 - 1; i >= 0; i-- {
		siftDown(a, i, n)
	}
	for end := n - 1; end > 0; end-- {
		a[0], a[end] = a[end], a[0]
		siftDown(a, 0, end)
	}
}

func siftDown(a []float64, start, end int) {
	root := start
	for {
		child := 2*root + 1
		if child >= end {
			return
		}
		if child+1 < end && a[child+1] > a[child] {
			child++
		}
		if a[root] >= a[child] {
			return
		}
		a[root], a[child] = a[child], a[root]
		root = child
	}
}

// MedianFloats returns the median of xs (0 for empty input) without
// modifying it.
func MedianFloats(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	SortFloats(cp)
	if n%2 == 1 {
		return cp[n/2]
	}
	return 0.5 * (cp[n/2-1] + cp[n/2])
}

// QuantileSorted returns the q-quantile of an ascending-sorted slice using
// the same index convention the receiver's control logic has always used
// (floor(q*n), clamped).
func QuantileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q * float64(len(sorted)))
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	if idx < 0 {
		idx = 0
	}
	return sorted[idx]
}

// QuantileSelect returns the q-quantile of a using QuantileSorted's index
// convention (floor(q*n), clamped), computed by in-place quickselect:
// O(n) expected instead of a full sort, at the price of partially
// reordering a. Hot paths that own their scratch and need a single order
// statistic should prefer it over SortFloats + QuantileSorted.
//
//bhss:hotpath
func QuantileSelect(a []float64, q float64) float64 {
	if len(a) == 0 {
		return 0
	}
	idx := int(q * float64(len(a)))
	if idx >= len(a) {
		idx = len(a) - 1
	}
	if idx < 0 {
		idx = 0
	}
	return selectFloat(a, idx)
}

// selectFloat returns the k-th smallest element of a (0-based), partially
// reordering a in place. Median-of-three pivots keep the selection
// deterministic (no RNG) while defeating the sorted and reverse-sorted
// inputs smoothed PSDs actually produce.
func selectFloat(a []float64, k int) float64 {
	lo, hi := 0, len(a)-1
	for lo < hi {
		p := partitionFloats(a, lo, hi)
		switch {
		case k < p:
			hi = p - 1
		case k > p:
			lo = p + 1
		default:
			return a[k]
		}
	}
	return a[k]
}

// partitionFloats partitions a[lo:hi+1] around a median-of-three pivot and
// returns the pivot's final index.
func partitionFloats(a []float64, lo, hi int) int {
	mid := int(uint(lo+hi) >> 1)
	if a[mid] < a[lo] {
		a[mid], a[lo] = a[lo], a[mid]
	}
	if a[hi] < a[lo] {
		a[hi], a[lo] = a[lo], a[hi]
	}
	if a[hi] < a[mid] {
		a[hi], a[mid] = a[mid], a[hi]
	}
	a[mid], a[hi] = a[hi], a[mid]
	pivot := a[hi]
	i := lo
	for j := lo; j < hi; j++ {
		if a[j] < pivot {
			a[i], a[j] = a[j], a[i]
			i++
		}
	}
	a[i], a[hi] = a[hi], a[i]
	return i
}

// MaxFloats returns the largest element of a (0 for an empty slice), the
// companion peak scan for QuantileSelect-based indicators.
func MaxFloats(a []float64) float64 {
	if len(a) == 0 {
		return 0
	}
	m := a[0]
	for _, v := range a[1:] {
		if v > m {
			m = v
		}
	}
	return m
}
