package dsp

import (
	"math"
	"testing"
)

func TestWindowNames(t *testing.T) {
	names := map[Window]string{
		Rectangular: "rectangular", Hann: "hann", Hamming: "hamming",
		Blackman: "blackman", Kaiser: "kaiser", Window(99): "unknown",
	}
	for w, want := range names {
		if w.String() != want {
			t.Fatalf("%d.String() = %q, want %q", w, w.String(), want)
		}
	}
}

func TestWindowSymmetry(t *testing.T) {
	for _, w := range []Window{Hann, Hamming, Blackman, Kaiser} {
		c := w.Coefficients(65, 8.0)
		for i := range c {
			j := len(c) - 1 - i
			if math.Abs(c[i]-c[j]) > 1e-12 {
				t.Fatalf("%v window asymmetric at %d: %v vs %v", w, i, c[i], c[j])
			}
		}
	}
}

func TestWindowRange(t *testing.T) {
	for _, w := range []Window{Rectangular, Hann, Hamming, Blackman, Kaiser} {
		for _, n := range []int{1, 2, 17, 64} {
			c := w.Coefficients(n, 5)
			for i, v := range c {
				if v < -1e-12 || v > 1+1e-12 {
					t.Fatalf("%v[%d] = %v out of [0,1]", w, i, v)
				}
			}
		}
	}
}

func TestHannEndpointsZero(t *testing.T) {
	c := Hann.Coefficients(33, 0)
	if c[0] > 1e-12 || c[32] > 1e-12 {
		t.Fatalf("Hann endpoints %v, %v, want 0", c[0], c[32])
	}
	if math.Abs(c[16]-1) > 1e-12 {
		t.Fatalf("Hann midpoint %v, want 1", c[16])
	}
}

func TestHammingKnownValues(t *testing.T) {
	c := Hamming.Coefficients(11, 0)
	if math.Abs(c[0]-0.08) > 1e-12 {
		t.Fatalf("Hamming edge = %v, want 0.08", c[0])
	}
	if math.Abs(c[5]-1) > 1e-12 {
		t.Fatalf("Hamming center = %v, want 1", c[5])
	}
}

func TestKaiserBetaMonotone(t *testing.T) {
	prev := -1.0
	for _, a := range []float64{10, 21, 30, 50, 60, 70, 90} {
		b := KaiserBeta(a)
		if b < prev {
			t.Fatalf("KaiserBeta not monotone at %v: %v < %v", a, b, prev)
		}
		prev = b
	}
	if KaiserBeta(10) != 0 {
		t.Fatal("KaiserBeta below 21 dB should be 0")
	}
}

func TestKaiserOrderIncreasesWithSpec(t *testing.T) {
	loose := KaiserOrder(40, 0.05)
	tight := KaiserOrder(80, 0.01)
	if tight <= loose {
		t.Fatalf("tighter spec should need more taps: %d vs %d", tight, loose)
	}
	if KaiserOrder(40, 0.05)%2 != 0 {
		t.Fatal("order should be even so taps = order+1 is odd/symmetric")
	}
}

func TestKaiserOrderPanicsOnZeroWidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero transition width should panic")
		}
	}()
	KaiserOrder(60, 0)
}

func TestBesselI0(t *testing.T) {
	// Reference values: I0(0)=1, I0(1)≈1.2660658, I0(5)≈27.239872.
	cases := []struct{ x, want float64 }{
		{0, 1}, {1, 1.2660658777520084}, {5, 27.239871823604442},
	}
	for _, c := range cases {
		if got := besselI0(c.x); math.Abs(got-c.want) > 1e-9*c.want {
			t.Fatalf("I0(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestWindowPanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero-length window should panic")
		}
	}()
	Hann.Coefficients(0, 0)
}
