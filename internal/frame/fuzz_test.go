package frame

import (
	"bytes"
	"testing"
)

// FuzzDecode throws arbitrary symbol streams at the frame parser: it must
// never panic, and whenever it accepts a frame the payload must re-encode
// to a prefix-consistent symbol stream.
func FuzzDecode(f *testing.F) {
	good, _ := Encode([]byte("seed corpus payload"))
	buf := make([]byte, len(good))
	for i, s := range good {
		buf[i] = byte(s)
	}
	f.Add(buf)
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0x0F}, 64))
	f.Fuzz(func(t *testing.T, raw []byte) {
		symbols := make([]int, len(raw))
		for i, b := range raw {
			symbols[i] = int(b) // may be out of the 0..15 range on purpose
		}
		payload, err := Decode(symbols)
		if err != nil {
			return
		}
		// An accepted frame must round-trip.
		re, err := Encode(payload)
		if err != nil {
			t.Fatalf("accepted payload does not re-encode: %v", err)
		}
		if len(re) > len(symbols) {
			t.Fatalf("re-encoded frame longer than the accepted stream")
		}
		// The preamble is deliberately unauthenticated (only SFD and CRC
		// gate acceptance), so compare from the SFD onward.
		for i := PreambleBytes * SymbolsPerByte; i < len(re); i++ {
			if re[i] != symbols[i] {
				t.Fatalf("re-encoded symbol %d differs", i)
			}
		}
	})
}

// FuzzSymbolsToBytes must never panic and must invert BytesToSymbols.
func FuzzSymbolsToBytes(f *testing.F) {
	f.Add([]byte("roundtrip me"))
	f.Fuzz(func(t *testing.T, data []byte) {
		back, err := SymbolsToBytes(BytesToSymbols(data))
		if err != nil {
			t.Fatalf("valid symbols rejected: %v", err)
		}
		if !bytes.Equal(back, data) {
			t.Fatal("round trip mismatch")
		}
	})
}
