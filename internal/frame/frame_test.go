package frame

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	payloads := [][]byte{
		nil,
		{},
		{0x00},
		{0xFF},
		[]byte("hello bandwidth hopping"),
		bytes.Repeat([]byte{0xA5}, MaxPayload),
	}
	for _, p := range payloads {
		syms, err := Encode(p)
		if err != nil {
			t.Fatalf("encode %v: %v", p, err)
		}
		if len(syms) != EncodedSymbols(len(p)) {
			t.Fatalf("symbol count %d, want %d", len(syms), EncodedSymbols(len(p)))
		}
		got, err := Decode(syms)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if !bytes.Equal(got, p) && !(len(got) == 0 && len(p) == 0) {
			t.Fatalf("round trip: got %v, want %v", got, p)
		}
	}
}

func TestEncodeTooLong(t *testing.T) {
	if _, err := Encode(make([]byte, MaxPayload+1)); !errors.Is(err, ErrTooLong) {
		t.Fatalf("err = %v, want ErrTooLong", err)
	}
}

func TestDecodeTruncated(t *testing.T) {
	syms, _ := Encode([]byte("abcdef"))
	for _, cut := range []int{0, 5, HeaderSymbols - 1, HeaderSymbols + 3, len(syms) - 1} {
		if _, err := Decode(syms[:cut]); !errors.Is(err, ErrTruncated) {
			t.Fatalf("cut=%d: err = %v, want ErrTruncated", cut, err)
		}
	}
}

func TestDecodeBadSFD(t *testing.T) {
	syms, _ := Encode([]byte("x"))
	syms[PreambleBytes*SymbolsPerByte] ^= 0x1 // corrupt SFD low nibble
	if _, err := Decode(syms); !errors.Is(err, ErrBadSFD) {
		t.Fatalf("err = %v, want ErrBadSFD", err)
	}
}

func TestDecodeBadCRC(t *testing.T) {
	syms, _ := Encode([]byte("payload"))
	syms[len(syms)-1] ^= 0x3 // corrupt CRC
	if _, err := Decode(syms); !errors.Is(err, ErrBadCRC) {
		t.Fatalf("err = %v, want ErrBadCRC", err)
	}
}

func TestDecodeCorruptPayloadCaughtByCRC(t *testing.T) {
	syms, _ := Encode([]byte("payload!"))
	syms[HeaderSymbols+1] ^= 0x5
	if _, err := Decode(syms); !errors.Is(err, ErrBadCRC) {
		t.Fatalf("err = %v, want ErrBadCRC", err)
	}
}

func TestDecodeBadSymbolValue(t *testing.T) {
	syms, _ := Encode([]byte("q"))
	syms[2] = 16
	if _, err := Decode(syms); !errors.Is(err, ErrBadSymbol) {
		t.Fatalf("err = %v, want ErrBadSymbol", err)
	}
}

func TestDecodeBogusLengthByte(t *testing.T) {
	syms, _ := Encode(nil)
	// Overwrite length byte symbols with 0xFF (255 > MaxPayload).
	syms[(PreambleBytes+1)*SymbolsPerByte] = 0xF
	syms[(PreambleBytes+1)*SymbolsPerByte+1] = 0xF
	if _, err := Decode(syms); !errors.Is(err, ErrTooLong) {
		t.Fatalf("err = %v, want ErrTooLong", err)
	}
}

func TestCRC16KnownVector(t *testing.T) {
	// CRC-16/XMODEM ("123456789") = 0x31C3.
	if got := CRC16([]byte("123456789")); got != 0x31C3 {
		t.Fatalf("CRC16 = %#04x, want 0x31c3", got)
	}
	if CRC16(nil) != 0 {
		t.Fatal("CRC16 of empty should be 0")
	}
}

func TestCRC16DetectsSingleBitFlips(t *testing.T) {
	data := []byte("the quick brown fox")
	want := CRC16(data)
	for i := range data {
		for b := 0; b < 8; b++ {
			data[i] ^= 1 << b
			if CRC16(data) == want {
				t.Fatalf("bit flip at %d/%d undetected", i, b)
			}
			data[i] ^= 1 << b
		}
	}
}

func TestBytesSymbolsRoundTrip(t *testing.T) {
	f := func(data []byte) bool {
		if len(data) > 256 {
			data = data[:256]
		}
		back, err := SymbolsToBytes(BytesToSymbols(data))
		return err == nil && bytes.Equal(back, data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSymbolsToBytesErrors(t *testing.T) {
	if _, err := SymbolsToBytes([]int{1}); !errors.Is(err, ErrTruncated) {
		t.Fatal("odd symbol count should be ErrTruncated")
	}
	if _, err := SymbolsToBytes([]int{1, -1}); !errors.Is(err, ErrBadSymbol) {
		t.Fatal("negative symbol should be ErrBadSymbol")
	}
}

func TestQuickEncodeDecode(t *testing.T) {
	f := func(data []byte) bool {
		if len(data) > MaxPayload {
			data = data[:MaxPayload]
		}
		syms, err := Encode(data)
		if err != nil {
			return false
		}
		got, err := Decode(syms)
		return err == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSymbolErrors(t *testing.T) {
	if n := SymbolErrors([]int{1, 2, 3}, []int{1, 0, 3}); n != 1 {
		t.Fatalf("SymbolErrors = %d, want 1", n)
	}
	if n := SymbolErrors([]int{1, 2}, []int{1}); n != 0 {
		t.Fatalf("prefix-only comparison: %d, want 0", n)
	}
}

func TestBitErrors(t *testing.T) {
	if n := BitErrors([]byte{0xFF}, []byte{0x0F}); n != 4 {
		t.Fatalf("BitErrors = %d, want 4", n)
	}
	if n := BitErrors([]byte{1, 2, 3}, []byte{1}); n != 16 {
		t.Fatalf("length difference should cost 8 bits/byte: %d", n)
	}
	if n := BitErrors(nil, nil); n != 0 {
		t.Fatalf("BitErrors(nil,nil) = %d", n)
	}
}

func TestPreambleSymbolsAreZero(t *testing.T) {
	syms, _ := Encode([]byte("z"))
	for i := 0; i < PreambleBytes*SymbolsPerByte; i++ {
		if syms[i] != 0 {
			t.Fatalf("preamble symbol %d = %d, want 0", i, syms[i])
		}
	}
}
