// Package frame implements the over-the-air frame structure of the BHSS
// prototype, which the paper bases on IEEE 802.15.4 (§6.1): a preamble used
// for acquisition and synchronization, a start-of-frame delimiter (SFD), a
// length field, the payload, and a CRC that decides packet delivery (the
// paper counts a packet as lost "when the CRC does not match the content").
//
// Frames are serialized to a stream of 4-bit symbols (one hex digit per
// symbol, low nibble first as in 802.15.4); the DSSS layer spreads each
// symbol to 32 chips.
package frame

import (
	"errors"
	"fmt"
)

// Frame layout constants.
const (
	// PreambleBytes zero bytes open every frame (802.15.4 uses 4).
	PreambleBytes = 4
	// SFDByte is the start-of-frame delimiter value (802.15.4's 0xA7).
	SFDByte = 0xA7
	// MaxPayload is the maximum payload size in bytes (one length byte,
	// 802.15.4-compatible).
	MaxPayload = 127
	// SymbolsPerByte is two: each byte carries two 4-bit symbols.
	SymbolsPerByte = 2
	// HeaderSymbols counts preamble + SFD + length symbols.
	HeaderSymbols = (PreambleBytes + 2) * SymbolsPerByte
	// crcBytes is the FCS length (CRC-16-CCITT).
	crcBytes = 2
)

// Decoding errors.
var (
	ErrTooLong   = errors.New("frame: payload exceeds MaxPayload")
	ErrTruncated = errors.New("frame: symbol stream truncated")
	ErrBadSFD    = errors.New("frame: start-of-frame delimiter mismatch")
	ErrBadCRC    = errors.New("frame: CRC mismatch")
	ErrBadSymbol = errors.New("frame: symbol value out of range")
)

// CRC16 computes the CRC-16-CCITT (polynomial 0x1021, init 0x0000, as used
// by the 802.15.4 FCS) over data.
func CRC16(data []byte) uint16 {
	var crc uint16
	for _, b := range data {
		crc ^= uint16(b) << 8
		for i := 0; i < 8; i++ {
			if crc&0x8000 != 0 {
				crc = crc<<1 ^ 0x1021
			} else {
				crc <<= 1
			}
		}
	}
	return crc
}

// BytesToSymbols expands bytes to 4-bit symbols, low nibble first.
func BytesToSymbols(data []byte) []int {
	out := make([]int, 0, len(data)*SymbolsPerByte)
	for _, b := range data {
		out = append(out, int(b&0x0F), int(b>>4))
	}
	return out
}

// SymbolsToBytes packs 4-bit symbols (low nibble first) back into bytes.
// It returns an error if a symbol is out of range or the count is odd.
func SymbolsToBytes(symbols []int) ([]byte, error) {
	if len(symbols)%SymbolsPerByte != 0 {
		return nil, ErrTruncated
	}
	out := make([]byte, len(symbols)/SymbolsPerByte)
	for i := range out {
		lo, hi := symbols[2*i], symbols[2*i+1]
		if lo < 0 || lo > 15 || hi < 0 || hi > 15 {
			return nil, ErrBadSymbol
		}
		out[i] = byte(lo) | byte(hi)<<4
	}
	return out, nil
}

// Encode serializes a payload into the symbol stream
// preamble | SFD | length | payload | CRC16. It returns ErrTooLong for
// oversized payloads.
func Encode(payload []byte) ([]int, error) {
	if len(payload) > MaxPayload {
		return nil, ErrTooLong
	}
	raw := make([]byte, 0, PreambleBytes+2+len(payload)+crcBytes)
	for i := 0; i < PreambleBytes; i++ {
		raw = append(raw, 0x00)
	}
	raw = append(raw, SFDByte, byte(len(payload)))
	raw = append(raw, payload...)
	crc := CRC16(payload)
	raw = append(raw, byte(crc&0xFF), byte(crc>>8))
	return BytesToSymbols(raw), nil
}

// EncodedSymbols returns the total number of symbols Encode produces for a
// payload of n bytes.
func EncodedSymbols(n int) int {
	return (PreambleBytes + 2 + n + crcBytes) * SymbolsPerByte
}

// Decode parses a symbol stream produced by Encode (starting exactly at the
// first preamble symbol) and returns the payload. It validates the SFD and
// the CRC.
func Decode(symbols []int) ([]byte, error) {
	if len(symbols) < HeaderSymbols {
		return nil, ErrTruncated
	}
	header, err := SymbolsToBytes(symbols[:HeaderSymbols])
	if err != nil {
		return nil, err
	}
	if header[PreambleBytes] != SFDByte {
		return nil, ErrBadSFD
	}
	n := int(header[PreambleBytes+1])
	if n > MaxPayload {
		return nil, fmt.Errorf("%w: length byte %d", ErrTooLong, n)
	}
	need := HeaderSymbols + (n+crcBytes)*SymbolsPerByte
	if len(symbols) < need {
		return nil, ErrTruncated
	}
	body, err := SymbolsToBytes(symbols[HeaderSymbols:need])
	if err != nil {
		return nil, err
	}
	payload := body[:n]
	crcGot := uint16(body[n]) | uint16(body[n+1])<<8
	if crcGot != CRC16(payload) {
		return nil, ErrBadCRC
	}
	out := make([]byte, n)
	copy(out, payload)
	return out, nil
}

// SymbolErrors counts position-wise symbol mismatches between two streams
// over their common prefix, a diagnostic used by the experiment harness.
func SymbolErrors(a, b []int) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	errs := 0
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			errs++
		}
	}
	return errs
}

// BitErrors counts bit-level differences between two payloads over the
// common prefix plus 8 bits per length difference.
func BitErrors(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	errs := 0
	for i := 0; i < n; i++ {
		x := a[i] ^ b[i]
		for x != 0 {
			errs++
			x &= x - 1
		}
	}
	diff := len(a) - len(b)
	if diff < 0 {
		diff = -diff
	}
	return errs + 8*diff
}
