package tracking

import (
	"math"
	"math/cmplx"
	"testing"

	"bhss/internal/prng"
)

// qpskStream generates unit-power QPSK at one sample per symbol, rotated
// by a carrier offset of cfo cycles/sample, with optional complex AWGN of
// per-component standard deviation noiseStd.
func qpskStream(n int, cfo, noiseStd float64, seed uint64) []complex128 {
	src := prng.New(seed)
	out := make([]complex128, n)
	inv := 1 / math.Sqrt2
	for i := range out {
		s := complex(float64(2*int(src.Uint64()&1)-1)*inv,
			float64(2*int(src.Uint64()>>1&1)-1)*inv)
		s += complex(src.NormFloat64()*noiseStd, src.NormFloat64()*noiseStd)
		out[i] = s * cmplx.Exp(complex(0, 2*math.Pi*cfo*float64(i)))
	}
	return out
}

// TestCostasPullInRange pins the loop's measured capture behavior, the
// basis of the lock-threshold table in DESIGN.md §11. For a second-order
// loop at bandwidth B the pull-in range is a small multiple of B; the
// receiver's own maxTrackedCFO (2e-4 cycles/sample at loopBW 5e-4) sits
// safely inside the measured boundary.
func TestCostasPullInRange(t *testing.T) {
	cases := []struct {
		loopBW float64
		cfo    float64
		locks  bool
	}{
		// Receiver operating point: loopBW 5e-4.
		{0.0005, 0, true},
		{0.0005, 1e-5, true},
		{0.0005, 1e-4, true},
		{0.0005, 3e-4, true},  // pull-in boundary is past 3e-4...
		{0.0005, 3e-3, false}, // ...but well before 3e-3
		{0.0005, 1e-2, false},
		// A 10x wider loop pulls in 10x more (and pays 10x the noise
		// bandwidth — why the receiver does not just widen the loop).
		{0.005, 3e-3, true},
		{0.005, 1e-2, true},
		{0.005, 3e-2, false},
	}
	for _, tc := range cases {
		loop, err := NewCostas(tc.loopBW)
		if err != nil {
			t.Fatal(err)
		}
		loop.Process(qpskStream(20000, tc.cfo, 0, 1))
		ferr := math.Abs(loop.Frequency() - tc.cfo)
		if tc.locks {
			if ferr > 1e-5 {
				t.Errorf("bw=%g cfo=%g: freq error %.3g, want lock (<1e-5)",
					tc.loopBW, tc.cfo, ferr)
			}
			if q := loop.LockQuality(); q < 0.9 {
				t.Errorf("bw=%g cfo=%g: LockQuality %.3f, want >= 0.9 when locked",
					tc.loopBW, tc.cfo, q)
			}
		} else {
			// An unlocked loop's frequency estimate collapses toward zero
			// rather than tracking the offset.
			if ferr < tc.cfo/2 {
				t.Errorf("bw=%g cfo=%g: freq error %.3g unexpectedly small for an unlocked loop",
					tc.loopBW, tc.cfo, ferr)
			}
			if q := loop.LockQuality(); q >= DefaultLockThreshold {
				t.Errorf("bw=%g cfo=%g: LockQuality %.3f >= threshold %.2f while spinning",
					tc.loopBW, tc.cfo, q, DefaultLockThreshold)
			}
		}
	}
}

// TestCostasLockQualityBands pins the two measured LockQuality bands that
// calibrate DefaultLockThreshold: locked loops settle above 0.9 (clean) /
// 0.84 (heavy noise), spinning loops plateau near 0.75 — the QPSK
// decision-directed error of a uniformly rotating constellation averages
// ~0.5 of the normalized amplitude, it does not rail. The threshold must
// sit between the bands.
func TestCostasLockQualityBands(t *testing.T) {
	run := func(cfo, noise float64) float64 {
		loop, err := NewCostas(0.0005)
		if err != nil {
			t.Fatal(err)
		}
		loop.Process(qpskStream(20000, cfo, noise, 7))
		return loop.LockQuality()
	}
	lockedClean := run(1e-4, 0.05)
	lockedNoisy := run(1e-4, 0.15)
	spinClean := run(5e-3, 0.05)
	spinNoisy := run(5e-3, 0.15)
	t.Logf("locked: clean %.3f noisy %.3f; spinning: clean %.3f noisy %.3f (threshold %.2f)",
		lockedClean, lockedNoisy, spinClean, spinNoisy, DefaultLockThreshold)
	for _, q := range []float64{lockedClean, lockedNoisy} {
		if q <= DefaultLockThreshold {
			t.Errorf("locked LockQuality %.3f <= threshold %.2f", q, DefaultLockThreshold)
		}
	}
	for _, q := range []float64{spinClean, spinNoisy} {
		if q >= DefaultLockThreshold {
			t.Errorf("spinning LockQuality %.3f >= threshold %.2f", q, DefaultLockThreshold)
		}
	}
	if lockedNoisy-spinClean < 0.05 {
		t.Errorf("lock bands too close to threshold reliably: locked %.3f vs spinning %.3f",
			lockedNoisy, spinClean)
	}
}

// halfSineQPSK builds a half-sine-chip QPSK burst with the symbol period
// stretched by the given clock offset in ppm — the waveform the Gardner
// loop sees after a transmitter with a cheap crystal.
func halfSineQPSK(nsym int, sps, ppm float64, seed uint64) []complex128 {
	truePeriod := sps * (1 + ppm*1e-6)
	src := prng.New(seed)
	n := int(float64(nsym) * truePeriod)
	x := make([]complex128, n)
	for k := 0; k < nsym; k++ {
		s := complex(float64(2*int(src.Uint64()&1)-1),
			float64(2*int(src.Uint64()>>1&1)-1))
		start := float64(k) * truePeriod
		for j := 0; j <= int(truePeriod); j++ {
			idx := int(start) + j
			if idx >= n {
				break
			}
			ph := (float64(idx) - start) / truePeriod
			if ph < 0 || ph >= 1 {
				continue
			}
			x[idx] += s * complex(math.Sin(math.Pi*ph), 0)
		}
	}
	return x
}

// TestGardnerPeriodConvergence: under a known transmit clock offset the
// timing loop's period estimate must converge to the true symbol period.
// Residuals are pinned at <= 5 ppm for offsets the impairment layer calls
// "lab"/"testbed" grade and <= 50 ppm at the ±500 ppm extremes.
func TestGardnerPeriodConvergence(t *testing.T) {
	const sps = 8.0
	for _, tc := range []struct {
		ppm         float64
		residualPPM float64
	}{
		{0, 5},
		{50, 5},
		{200, 5},
		{500, 50},
		// A slow clock converges from one side only (the period clamp sits
		// closer), so the residual after 4000 symbols is larger.
		{-500, 250},
	} {
		g, err := NewGardner(sps, 0.01)
		if err != nil {
			t.Fatal(err)
		}
		const nsym = 4000
		strobes := g.Process(halfSineQPSK(nsym, sps, tc.ppm, 9))
		truePeriod := sps * (1 + tc.ppm*1e-6)
		residual := math.Abs(g.Period()-truePeriod) / truePeriod * 1e6
		if residual > tc.residualPPM {
			t.Errorf("ppm=%+g: period %.6f vs true %.6f, residual %.1f ppm > %.0f",
				tc.ppm, g.Period(), truePeriod, residual, tc.residualPPM)
		}
		if len(strobes) < nsym-2 {
			t.Errorf("ppm=%+g: %d strobes for %d symbols", tc.ppm, len(strobes), nsym)
		}
	}
}

// TestCoarseCFOInRangeAccuracy: the 4th-power estimator must land within
// one FFT bin of a known offset, and the range restriction must reject
// offsets outside it instead of aliasing them in.
func TestCoarseCFOInRangeAccuracy(t *testing.T) {
	const n = 8192
	binCFO := 1.0 / (4 * float64(n)) // frequency resolution after ^4
	for _, cfo := range []float64{0, 5e-5, 1e-4, -1.5e-4} {
		sig := qpskStream(n, cfo, 0.05, 3)
		got := CoarseCFOInRange(sig, 2e-4)
		if math.Abs(got-cfo) > binCFO {
			t.Errorf("cfo=%g: estimate %g off by more than a bin (%g)", cfo, got, binCFO)
		}
	}
	// Out-of-range offset: the restricted search must not report a large
	// spurious value (it clamps to the search window).
	sig := qpskStream(n, 5e-3, 0.05, 3)
	if got := CoarseCFOInRange(sig, 2e-4); math.Abs(got) > 2e-4+binCFO {
		t.Errorf("restricted search returned %g, beyond its own window", got)
	}
}
