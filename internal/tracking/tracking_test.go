package tracking

import (
	"math"
	"math/cmplx"
	"testing"

	"bhss/internal/channel"
	"bhss/internal/dsp"
	"bhss/internal/prng"
	"bhss/internal/pulse"
)

func qpskChips(n int, seed uint64) []complex128 {
	src := prng.New(seed)
	const s = 0.7071067811865476
	out := make([]complex128, n)
	for i := range out {
		out[i] = complex(src.ChipBit()*s, src.ChipBit()*s)
	}
	return out
}

func TestAGCReachesTarget(t *testing.T) {
	agc, err := NewAGC(1.0, 5e-3)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]complex128, 20000)
	for i := range x {
		x[i] = 0.05 // 26 dB below target
	}
	agc.Process(x)
	tail := x[15000:]
	var mean float64
	for _, v := range tail {
		mean += math.Hypot(real(v), imag(v))
	}
	mean /= float64(len(tail))
	if math.Abs(mean-1) > 0.05 {
		t.Fatalf("AGC settled at %v, want ~1", mean)
	}
	if agc.Gain() <= 1 {
		t.Fatalf("gain %v should have grown", agc.Gain())
	}
}

func TestAGCErrors(t *testing.T) {
	if _, err := NewAGC(0, 0.01); err == nil {
		t.Fatal("zero target should error")
	}
	if _, err := NewAGC(1, 0); err == nil {
		t.Fatal("zero rate should error")
	}
	if _, err := NewAGC(1, 1); err == nil {
		t.Fatal("rate 1 should error")
	}
}

func TestCoarseCFOEstimatesOffset(t *testing.T) {
	chips := qpskChips(4096, 1)
	for _, cfo := range []float64{0.002, -0.005, 0.01} {
		x := append([]complex128(nil), chips...)
		dsp.Mix(x, cfo, 0.3)
		got := CoarseCFO(x)
		if math.Abs(got-cfo) > 3e-4 {
			t.Fatalf("CFO %v estimated as %v", cfo, got)
		}
	}
}

func TestCoarseCFOZeroOnShortInput(t *testing.T) {
	if CoarseCFO([]complex128{1}) != 0 {
		t.Fatal("degenerate input should estimate 0")
	}
}

func TestCostasRemovesStaticPhase(t *testing.T) {
	chips := qpskChips(8000, 2)
	x := append([]complex128(nil), chips...)
	offset := 0.35 // radians, inside the π/4 decision region
	dsp.Mix(x, 0, offset)
	c, err := NewCostas(0.02)
	if err != nil {
		t.Fatal(err)
	}
	c.Process(x)
	// After settling, the output constellation should align with ±1±j/√2:
	// compare decisions with the original chips.
	errors := 0
	for i := 4000; i < len(x); i++ {
		if (real(x[i]) > 0) != (real(chips[i]) > 0) || (imag(x[i]) > 0) != (imag(chips[i]) > 0) {
			errors++
		}
	}
	if errors > 10 {
		t.Fatalf("%d decision errors after phase acquisition", errors)
	}
}

func TestCostasTracksSmallCFO(t *testing.T) {
	chips := qpskChips(20000, 3)
	x := append([]complex128(nil), chips...)
	cfo := 2e-4
	dsp.Mix(x, cfo, 0.1)
	c, _ := NewCostas(0.02)
	c.Process(x)
	errors := 0
	for i := 10000; i < len(x); i++ {
		if (real(x[i]) > 0) != (real(chips[i]) > 0) || (imag(x[i]) > 0) != (imag(chips[i]) > 0) {
			errors++
		}
	}
	if errors > 20 {
		t.Fatalf("%d decision errors while tracking CFO", errors)
	}
	if got := c.Frequency(); math.Abs(got-cfo) > 5e-5 {
		t.Fatalf("tracked frequency %v, want ~%v", got, cfo)
	}
}

func TestCostasErrors(t *testing.T) {
	if _, err := NewCostas(0); err == nil {
		t.Fatal("zero bandwidth should error")
	}
	if _, err := NewCostas(0.5); err == nil {
		t.Fatal("bandwidth 0.5 should error")
	}
}

func TestCostasFrequencyClamped(t *testing.T) {
	c, _ := NewCostas(0.4999 - 0.25) // valid bandwidth
	c.MaxFreq = 0.001
	x := qpskChips(5000, 4)
	dsp.Mix(x, 0.2, 0) // absurd offset far beyond MaxFreq
	c.Process(x)
	if f := math.Abs(c.Frequency()); f > 0.001+1e-9 {
		t.Fatalf("frequency %v exceeded clamp", f)
	}
}

func TestGardnerRecoversTimingOffset(t *testing.T) {
	const sps = 8
	chips := qpskChips(3000, 5)
	g := pulse.Taps(pulse.HalfSine, sps)
	wave := pulse.Modulate(chips, g)
	// Matched filter then introduce a fractional delay of 3.3 samples.
	mf := dsp.NewFIRReal(g)
	filtered := mf.Apply(wave)
	delayed := dsp.FractionalDelay(filtered, 3.3)

	gard, err := NewGardner(sps, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	strobes := gard.Process(delayed)
	if len(strobes) < 2500 {
		t.Fatalf("only %d strobes from %d chips", len(strobes), len(chips))
	}
	// After lock, strobe decisions must match the chip stream at a fixed
	// lag. Find the lag by correlating signs over a window.
	bestLag, bestScore := 0, -1.0
	settle := 500
	for lag := 0; lag < 8; lag++ {
		score := 0.0
		for i := settle; i < len(strobes)-8; i++ {
			if i+lag >= len(chips) {
				break
			}
			if (real(strobes[i]) > 0) == (real(chips[i+lag]) > 0) {
				score++
			}
			if (imag(strobes[i]) > 0) == (imag(chips[i+lag]) > 0) {
				score++
			}
		}
		if score > bestScore {
			bestScore = score
			bestLag = lag
		}
	}
	total := 0
	errs := 0
	for i := settle; i < len(strobes)-8 && i+bestLag < len(chips); i++ {
		if (real(strobes[i]) > 0) != (real(chips[i+bestLag]) > 0) {
			errs++
		}
		if (imag(strobes[i]) > 0) != (imag(chips[i+bestLag]) > 0) {
			errs++
		}
		total += 2
	}
	if float64(errs)/float64(total) > 0.01 {
		t.Fatalf("chip error rate %v after timing recovery (lag %d)", float64(errs)/float64(total), bestLag)
	}
}

func TestGardnerTracksClockSkew(t *testing.T) {
	// A 0.2% sample-clock offset: the period estimate should move toward
	// the true period.
	const sps = 8
	const skew = 1.002
	chips := qpskChips(4000, 6)
	g := pulse.Taps(pulse.HalfSine, sps)
	wave := pulse.Modulate(chips, g)
	mf := dsp.NewFIRReal(g)
	filtered := mf.Apply(wave)
	// Resample at rate 1/skew via linear interpolation.
	resampled := make([]complex128, int(float64(len(filtered))/skew)-1)
	for i := range resampled {
		t := float64(i) * skew
		j := int(t)
		frac := t - float64(j)
		resampled[i] = filtered[j]*complex(1-frac, 0) + filtered[j+1]*complex(frac, 0)
	}
	gard, _ := NewGardner(sps, 0.02)
	gard.Process(resampled)
	wantPeriod := sps / skew
	if math.Abs(gard.Period()-wantPeriod) > 0.05 {
		t.Fatalf("period estimate %v, want ~%v", gard.Period(), wantPeriod)
	}
}

func TestGardnerErrors(t *testing.T) {
	if _, err := NewGardner(1, 0.01); err == nil {
		t.Fatal("sps < 2 should error")
	}
	if _, err := NewGardner(8, 0); err == nil {
		t.Fatal("zero bandwidth should error")
	}
}

func TestFullChainPhaseAndNoise(t *testing.T) {
	// Costas after AGC on a noisy, rotated chip stream: end-to-end sanity.
	chips := qpskChips(20000, 7)
	x := append([]complex128(nil), chips...)
	dsp.Scale(x, 0.2)
	dsp.Mix(x, 1e-4, 0.7)
	noise := channel.NewAWGN(0.2*0.2*0.01, 8) // 20 dB SNR at the scaled level
	noise.Add(x)

	agc, _ := NewAGC(1, 2e-3)
	agc.Process(x)
	c, _ := NewCostas(0.02)
	c.Process(x)

	errs := 0
	for i := 12000; i < len(x); i++ {
		if (real(x[i]) > 0) != (real(chips[i]) > 0) || (imag(x[i]) > 0) != (imag(chips[i]) > 0) {
			errs++
		}
	}
	if errs > 40 {
		t.Fatalf("%d decision errors in full chain", errs)
	}
}

func TestInterp(t *testing.T) {
	x := []complex128{0, 2, 4}
	if v := interp(x, 0.5); v != 1 {
		t.Fatalf("interp(0.5) = %v", v)
	}
	if v := interp(x, -1); v != 0 {
		t.Fatalf("interp(-1) = %v, want clamp to first", v)
	}
	if v := interp(x, 5); v != 4 {
		t.Fatalf("interp(5) = %v, want clamp to last", v)
	}
}

func TestCostasPhaseWraps(t *testing.T) {
	c, _ := NewCostas(0.1)
	x := qpskChips(30000, 9)
	dsp.Mix(x, 3e-3, 0)
	c.Process(x)
	if p := c.Phase(); math.Abs(p) > math.Pi+1e-9 {
		t.Fatalf("phase %v not wrapped", p)
	}
	_ = cmplx.Abs(0) // keep cmplx imported via use
}
