// Package tracking implements the receiver's synchronization loops, the
// blocks the paper places after the interference-suppression filter (§6.1):
// automatic gain control, a Costas loop for carrier phase/frequency
// recovery on QPSK, a Gardner timing-error-detector loop for symbol (chip)
// timing, and a coarse FFT-based frequency estimator used to pull large
// offsets into the Costas loop's capture range.
//
// The paper deliberately runs these *after* the FIR filter "otherwise the
// jammer may disturb the error correction"; internal/core follows the same
// ordering.
package tracking

import (
	"fmt"
	"math"
	"math/cmplx"

	"bhss/internal/dsp"
	"bhss/internal/dsp/simd"
)

// AGC is a feedback automatic gain control that drives the average sample
// magnitude toward a target.
type AGC struct {
	target float64
	rate   float64
	gain   float64
}

// NewAGC returns an AGC with the given target RMS amplitude and adaptation
// rate (0 < rate < 1; typical 1e-3..1e-2).
func NewAGC(target, rate float64) (*AGC, error) {
	if target <= 0 {
		return nil, fmt.Errorf("tracking: AGC target %v must be positive", target)
	}
	if rate <= 0 || rate >= 1 {
		return nil, fmt.Errorf("tracking: AGC rate %v out of (0, 1)", rate)
	}
	return &AGC{target: target, rate: rate, gain: 1}, nil
}

// Gain returns the current loop gain.
func (a *AGC) Gain() float64 { return a.gain }

// Process scales x in place, adapting the gain sample by sample.
func (a *AGC) Process(x []complex128) {
	for i, v := range x {
		v *= complex(a.gain, 0)
		x[i] = v
		mag := math.Hypot(real(v), imag(v))
		a.gain += a.rate * (a.target - mag)
		if a.gain < 1e-9 {
			a.gain = 1e-9
		}
	}
}

// CoarseCFO estimates a QPSK carrier frequency offset by raising the signal
// to the fourth power (stripping the modulation) and locating the spectral
// peak, returning the offset in cycles per sample. The estimate is
// ambiguous modulo 1/4 cycle; it is intended to pull the offset into the
// Costas loop's capture range.
func CoarseCFO(x []complex128) float64 {
	n := dsp.NextPow2(len(x))
	if n < 4 {
		return 0
	}
	buf := make([]complex128, n)
	simd.Pow4Into(buf, x)
	dsp.FFT(buf)
	peak := dsp.ArgMaxAbs(buf)
	f := float64(peak) / float64(n)
	if f >= 0.5 {
		f -= 1
	}
	return f / 4
}

// CoarseCFOInRange is CoarseCFO with the search restricted to offsets of
// magnitude at most maxCFO (cycles/sample). Restricting the search keeps
// the chip-rate harmonics of a shaped pulse's envelope out of the peak
// search. It allocates its FFT scratch (coarse acquisition runs once per
// burst, not per hop), so it is deliberately not //bhss:hotpath.
func CoarseCFOInRange(x []complex128, maxCFO float64) float64 {
	n := dsp.NextPow2(len(x))
	if n < 4 || maxCFO <= 0 {
		return 0
	}
	buf := make([]complex128, n)
	simd.Pow4Into(buf, x)
	dsp.FFT(buf)
	limit := int(4 * maxCFO * float64(n))
	if limit < 1 {
		limit = 1
	}
	if limit > n/2 {
		limit = n / 2
	}
	best, bestMag := 0, -1.0
	for k := -limit; k <= limit; k++ {
		idx := (k + n) % n
		v := buf[idx]
		m := real(v)*real(v) + imag(v)*imag(v)
		if m > bestMag {
			bestMag = m
			best = k
		}
	}
	return float64(best) / float64(n) / 4
}

// Costas is a second-order decision-directed Costas loop for QPSK. It
// tracks residual carrier phase and frequency after coarse correction.
type Costas struct {
	phase float64
	freq  float64
	alpha float64
	beta  float64
	// MaxFreq clamps the tracked frequency (cycles/sample).
	MaxFreq float64
	// avgMag is a slow EMA of the sample magnitude used to normalize the
	// loop error. Normalizing by the instantaneous magnitude would blow
	// up the error on the low-amplitude samples of a shaped pulse
	// (half-sine chips pass through zero at every boundary).
	avgMag float64
	// errEMA is a slow EMA of the absolute normalized loop error, the
	// basis of LockQuality: near zero when the loop tracks, near one when
	// the constellation spins.
	errEMA float64
}

// lockRate is the EMA rate of the lock-quality error average: slow enough
// to ride out pulse-shape nulls, fast enough to settle within one hop.
const lockRate = 0.01

// DefaultLockThreshold is the LockQuality value above which the carrier
// loop is considered locked. Calibrated by the measured bands in
// lock_test.go (table in DESIGN.md §11): locked loops settle above ≈0.9
// (≈0.85 under heavy noise) while spinning constellations plateau near
// ≈0.75 — the QPSK decision-directed error of a uniformly rotating
// constellation averages about half the normalized amplitude rather than
// railing, so the usable threshold sits in the narrow band between.
const DefaultLockThreshold = 0.85

// NewCostas returns a Costas loop with the given normalized loop bandwidth
// (typical 0.005..0.05). Damping is fixed at 1/sqrt(2).
func NewCostas(loopBW float64) (*Costas, error) {
	if loopBW <= 0 || loopBW >= 0.5 {
		return nil, fmt.Errorf("tracking: loop bandwidth %v out of (0, 0.5)", loopBW)
	}
	const damping = 0.7071067811865476
	denom := 1 + 2*damping*loopBW + loopBW*loopBW
	c := &Costas{
		alpha:   4 * damping * loopBW / denom,
		beta:    4 * loopBW * loopBW / denom,
		MaxFreq: 0.25,
	}
	return c, nil
}

// Frequency returns the currently tracked frequency offset
// (cycles/sample, after any coarse correction).
func (c *Costas) Frequency() float64 { return c.freq / (2 * math.Pi) }

// SetFrequency preloads the tracked frequency (cycles/sample), e.g. from a
// coarse FFT estimate, so the loop only has to pull in the residual.
func (c *Costas) SetFrequency(cyclesPerSample float64) {
	w := 2 * math.Pi * cyclesPerSample
	max := 2 * math.Pi * c.MaxFreq
	if w > max {
		w = max
	} else if w < -max {
		w = -max
	}
	c.freq = w
}

// SetLoopBandwidth retunes the loop gains while preserving the tracked
// phase and frequency state. Receivers whose sample-per-symbol ratio
// changes mid-stream (bandwidth hopping) use it to keep the loop's
// per-symbol dynamics constant.
func (c *Costas) SetLoopBandwidth(loopBW float64) error {
	if loopBW <= 0 || loopBW >= 0.5 {
		return fmt.Errorf("tracking: loop bandwidth %v out of (0, 0.5)", loopBW)
	}
	const damping = 0.7071067811865476
	denom := 1 + 2*damping*loopBW + loopBW*loopBW
	c.alpha = 4 * damping * loopBW / denom
	c.beta = 4 * loopBW * loopBW / denom
	return nil
}

// Phase returns the current loop phase in radians.
func (c *Costas) Phase() float64 { return c.phase }

// LockQuality maps the loop's recent error activity to [0, 1]: 1 means the
// decision-directed error has been near zero (carrier locked), 0 means the
// error rails (unlocked, constellation spinning). Compare against
// DefaultLockThreshold.
func (c *Costas) LockQuality() float64 {
	q := 1 - c.errEMA/2
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	return q
}

// Process derotates x in place by the tracked carrier, updating the loop
// per sample with the QPSK decision-directed error
// e = sign(I)·Q − sign(Q)·I.
//
//bhss:hotpath
func (c *Costas) Process(x []complex128) {
	maxW := 2 * math.Pi * c.MaxFreq
	for i, v := range x {
		rot := cmplx.Exp(complex(0, -c.phase))
		y := v * rot
		x[i] = y
		ii, qq := real(y), imag(y)
		var err float64
		if ii >= 0 {
			err = qq
		} else {
			err = -qq
		}
		if qq >= 0 {
			err -= ii
		} else {
			err += ii
		}
		// Normalize by the average amplitude to keep the loop gain
		// signal-level independent without amplifying low-envelope
		// samples.
		mag := math.Hypot(ii, qq)
		if c.avgMag == 0 {
			c.avgMag = mag
		} else {
			c.avgMag += 0.01 * (mag - c.avgMag)
		}
		if c.avgMag > 1e-12 {
			err /= c.avgMag
		}
		if err > 2 {
			err = 2
		} else if err < -2 {
			err = -2
		}
		if err >= 0 {
			c.errEMA += lockRate * (err - c.errEMA)
		} else {
			c.errEMA += lockRate * (-err - c.errEMA)
		}
		c.freq += c.beta * err
		if c.freq > maxW {
			c.freq = maxW
		} else if c.freq < -maxW {
			c.freq = -maxW
		}
		c.phase += c.freq + c.alpha*err
		if c.phase > math.Pi {
			c.phase -= 2 * math.Pi
		} else if c.phase < -math.Pi {
			c.phase += 2 * math.Pi
		}
	}
}

// Gardner is a symbol-timing recovery loop using the Gardner timing error
// detector with linear interpolation. It consumes samples at sps samples
// per symbol (chip) and emits one interpolated sample per symbol.
type Gardner struct {
	sps   float64
	gainP float64
	gainI float64

	pos      float64 // fractional read position of the next strobe
	period   float64 // current symbol period estimate in samples
	prevSymb complex128
}

// NewGardner returns a timing recovery loop for the given nominal samples
// per symbol (>= 2) and loop bandwidth (typical 0.01).
func NewGardner(sps float64, loopBW float64) (*Gardner, error) {
	if sps < 2 {
		return nil, fmt.Errorf("tracking: Gardner needs sps >= 2, got %v", sps)
	}
	if loopBW <= 0 || loopBW >= 0.5 {
		return nil, fmt.Errorf("tracking: loop bandwidth %v out of (0, 0.5)", loopBW)
	}
	const damping = 1.0
	denom := 1 + 2*damping*loopBW + loopBW*loopBW
	return &Gardner{
		sps:    sps,
		gainP:  4 * damping * loopBW / denom,
		gainI:  4 * loopBW * loopBW / denom,
		pos:    sps / 2, // start mid-symbol
		period: sps,
	}, nil
}

// Period returns the current symbol period estimate in samples.
func (g *Gardner) Period() float64 { return g.period }

// interp linearly interpolates x at fractional index t.
func interp(x []complex128, t float64) complex128 {
	i := int(t)
	if i < 0 {
		return x[0]
	}
	if i >= len(x)-1 {
		return x[len(x)-1]
	}
	frac := t - float64(i)
	return x[i]*complex(1-frac, 0) + x[i+1]*complex(frac, 0)
}

// Process consumes one burst of samples and returns the recovered
// one-per-symbol strobes. Create a fresh Gardner per burst: the loop locks
// from its initial mid-symbol guess within a few tens of symbols.
func (g *Gardner) Process(x []complex128) []complex128 {
	var out []complex128
	for g.pos+g.period < float64(len(x)-1) {
		mid := interp(x, g.pos+g.period/2)
		next := interp(x, g.pos+g.period)
		// Gardner TED: raw = Re{(y[k] − y[k−1]) · conj(y[k−1/2])} is
		// negative when sampling early, so the loop corrects with −raw.
		diff := next - g.prevSymb
		e := -real(diff * complex(real(mid), -imag(mid)))
		// Normalize to keep loop gain signal-level independent.
		p := real(next)*real(next) + imag(next)*imag(next)
		if p > 1e-12 {
			e /= math.Sqrt(p)
		}
		if e > 1 {
			e = 1
		} else if e < -1 {
			e = -1
		}
		g.period += g.gainI * e
		// Clamp period drift to ±10%.
		if g.period > 1.1*g.sps {
			g.period = 1.1 * g.sps
		} else if g.period < 0.9*g.sps {
			g.period = 0.9 * g.sps
		}
		g.pos += g.period + g.gainP*e
		out = append(out, next)
		g.prevSymb = next
	}
	return out
}
