package pulse

import (
	"math"
	"testing"
	"testing/quick"

	"bhss/internal/dsp"
	"bhss/internal/prng"
	"bhss/internal/spectral"
)

func TestShapeNames(t *testing.T) {
	if HalfSine.String() != "half-sine" || Rect.String() != "rect" ||
		RRC.String() != "rrc" || Shape(9).String() != "unknown" {
		t.Fatal("shape names wrong")
	}
}

func TestTapsEnergyNormalization(t *testing.T) {
	for _, s := range []Shape{HalfSine, Rect, RRC} {
		for _, sps := range []int{1, 2, 4, 8, 16, 64, 128} {
			g := Taps(s, sps)
			var e float64
			for _, v := range g {
				e += v * v
			}
			if math.Abs(e-float64(sps)) > 1e-9 {
				t.Fatalf("%v sps=%d: energy %v, want %v", s, sps, e, float64(sps))
			}
		}
	}
}

func TestTapsLength(t *testing.T) {
	if len(Taps(HalfSine, 8)) != 8 || len(Taps(Rect, 4)) != 4 {
		t.Fatal("single-chip pulses must have sps taps")
	}
	if len(Taps(RRC, 4)) != RRCSpan*4+1 {
		t.Fatalf("RRC taps = %d, want %d", len(Taps(RRC, 4)), RRCSpan*4+1)
	}
}

func TestHalfSineSymmetry(t *testing.T) {
	g := Taps(HalfSine, 16)
	for i := range g {
		j := len(g) - 1 - i
		if math.Abs(g[i]-g[j]) > 1e-12 {
			t.Fatalf("half-sine asymmetric: g[%d]=%v g[%d]=%v", i, g[i], j, g[j])
		}
		if g[i] <= 0 {
			t.Fatalf("half-sine tap %d = %v, must be positive", i, g[i])
		}
	}
}

func TestTapsPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { Taps(HalfSine, 0) },
		func() { Taps(Shape(42), 4) },
		func() { OccupiedBandwidth(0) },
		func() { Demodulate(nil, nil, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func randomChips(n int, seed uint64) []complex128 {
	src := prng.New(seed)
	const s = 0.7071067811865476
	chips := make([]complex128, n)
	for i := range chips {
		chips[i] = complex(src.ChipBit()*s, src.ChipBit()*s)
	}
	return chips
}

func TestModulateDemodulateRoundTrip(t *testing.T) {
	for _, shape := range []Shape{HalfSine, Rect} {
		for _, sps := range []int{2, 4, 8, 32, 128} {
			g := Taps(shape, sps)
			chips := randomChips(50, uint64(sps))
			samples := Modulate(chips, g)
			if len(samples) != 50*sps {
				t.Fatalf("%v sps=%d: %d samples, want %d", shape, sps, len(samples), 50*sps)
			}
			back := Demodulate(samples, g, 0)
			if len(back) != len(chips) {
				t.Fatalf("round trip length %d, want %d", len(back), len(chips))
			}
			for i := range chips {
				if d := back[i] - chips[i]; math.Hypot(real(d), imag(d)) > 1e-10 {
					t.Fatalf("%v sps=%d chip %d: %v != %v", shape, sps, i, back[i], chips[i])
				}
			}
		}
	}
}

func TestModulatePowerIsChipPower(t *testing.T) {
	for _, shape := range []Shape{HalfSine, Rect} {
		for _, sps := range []int{2, 16, 64} {
			chips := randomChips(200, 7)
			samples := Modulate(chips, Taps(shape, sps))
			if p := dsp.Power(samples); math.Abs(p-1) > 1e-9 {
				t.Fatalf("%v sps=%d: tx power %v, want 1", shape, sps, p)
			}
		}
	}
}

func TestDemodulateOffsetAndTail(t *testing.T) {
	g := Taps(HalfSine, 4)
	chips := randomChips(10, 3)
	samples := Modulate(chips, g)
	// Prepend garbage; demodulate with matching offset.
	shifted := append(make([]complex128, 3), samples...)
	back := Demodulate(shifted, g, 3)
	for i := range chips {
		if d := back[i] - chips[i]; math.Hypot(real(d), imag(d)) > 1e-10 {
			t.Fatalf("offset demod chip %d mismatch", i)
		}
	}
	// Too-short input returns nil.
	if Demodulate(samples[:3], g, 0) != nil {
		t.Fatal("sub-chip input should demodulate to nil")
	}
	if Demodulate(samples, g, len(samples)) != nil {
		t.Fatal("offset at end should demodulate to nil")
	}
	// Negative offset clamps to zero.
	if got := Demodulate(samples, g, -5); len(got) != len(chips) {
		t.Fatalf("negative offset demod len %d", len(got))
	}
}

// The defining property of bandwidth hopping: stretching the pulse by α
// shrinks the occupied bandwidth by α (eq. (1)).
func TestBandwidthScalesInverselyWithPulseDuration(t *testing.T) {
	measure := func(sps int) float64 {
		chips := randomChips(4096, uint64(sps)*11)
		x := Modulate(chips, Taps(HalfSine, sps))
		psd, err := spectral.Welch(1024).PSD(x)
		if err != nil {
			t.Fatal(err)
		}
		return spectral.OccupiedBandwidth(psd, 0.9)
	}
	bw2 := measure(2)
	bw8 := measure(8)
	bw32 := measure(32)
	r1 := bw2 / bw8
	r2 := bw8 / bw32
	if r1 < 2.5 || r1 > 6 {
		t.Fatalf("bw(sps=2)/bw(sps=8) = %v, want ~4", r1)
	}
	if r2 < 2.5 || r2 > 6 {
		t.Fatalf("bw(sps=8)/bw(sps=32) = %v, want ~4", r2)
	}
}

func TestOccupiedBandwidthHelper(t *testing.T) {
	if OccupiedBandwidth(2) != 0.5 || OccupiedBandwidth(128) != 1.0/128 {
		t.Fatal("OccupiedBandwidth should be 1/sps")
	}
}

func TestRRCNyquistProperty(t *testing.T) {
	// RRC convolved with itself (raised cosine) must be ~ISI-free: values
	// at nonzero integer chip offsets from the center are near zero.
	sps := 8
	g := Taps(RRC, sps)
	gc := make([]complex128, len(g))
	for i, v := range g {
		gc[i] = complex(v, 0)
	}
	rc := dsp.Convolve(gc, gc)
	center := len(rc) / 2
	peak := real(rc[center])
	for k := 1; k <= 3; k++ {
		v := math.Abs(real(rc[center+k*sps])) / peak
		if v > 0.02 {
			t.Fatalf("raised-cosine ISI at chip offset %d: %v", k, v)
		}
	}
}

func TestRRCValueSingularities(t *testing.T) {
	// Must not NaN at the analytic special points.
	if v := rrcValue(0, RRCBeta); math.IsNaN(v) || v <= 0 {
		t.Fatalf("rrc(0) = %v", v)
	}
	s := rrcValue(1/(4*RRCBeta), RRCBeta)
	if math.IsNaN(s) || math.IsInf(s, 0) {
		t.Fatalf("rrc at singularity = %v", s)
	}
}

func TestQuickRoundTripArbitraryChips(t *testing.T) {
	f := func(seed uint64, spsRaw uint8) bool {
		sps := 1 << (spsRaw % 6) // 1..32
		g := Taps(HalfSine, sps)
		chips := randomChips(17, seed)
		back := Demodulate(Modulate(chips, g), g, 0)
		for i := range chips {
			if d := back[i] - chips[i]; math.Hypot(real(d), imag(d)) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkModulateSps8(b *testing.B) {
	g := Taps(HalfSine, 8)
	chips := randomChips(4096, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Modulate(chips, g)
	}
}

func BenchmarkDemodulateSps8(b *testing.B) {
	g := Taps(HalfSine, 8)
	samples := Modulate(randomChips(4096, 1), g)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Demodulate(samples, g, 0)
	}
}
