package pulse

import (
	"math"
	"testing"

	"bhss/internal/alloctest"
)

// TestHotPathZeroAlloc asserts the steady-state zero-allocation contract of
// the Append-style modulation hot paths when the caller reuses buffers.
func TestHotPathZeroAlloc(t *testing.T) {
	const sps = 8
	g := Taps(HalfSine, sps)
	chips := make([]complex128, 128)
	inv := 1 / math.Sqrt2
	for i := range chips {
		chips[i] = complex(inv*float64(1-2*(i&1)), inv*float64(1-2*((i>>1)&1)))
	}

	var mod []complex128
	alloctest.AssertZero(t, "ModulateAppend", func() {
		mod = ModulateAppend(mod[:0], chips, g)
	})

	samples := make([]complex128, len(mod))
	copy(samples, mod)
	var dem []complex128
	alloctest.AssertZero(t, "DemodulateAppend", func() {
		dem = DemodulateAppend(dem[:0], samples, g, 0)
	})
	if len(dem) != len(chips) {
		t.Fatalf("demodulated %d chips from %d samples, want %d", len(dem), len(samples), len(chips))
	}
}
