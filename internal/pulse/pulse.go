// Package pulse implements chip pulse shaping. Bandwidth hopping (eq. (1)
// of the paper) works by stretching the pulse shape in time: transmitting
// the same chips with a pulse of α-times the duration shrinks the occupied
// bandwidth by α. At a fixed sampling rate Rs this means varying the number
// of samples per chip: B_p = Rs / samplesPerChip.
//
// The paper's prototype modulates chips with a half-sine pulse (as IEEE
// 802.15.4 does); half-sine and rectangular pulses are confined to a single
// chip period, so hopping the bandwidth between symbols introduces no
// inter-chip interference at the boundary. A root-raised-cosine pulse is
// provided as an alternative for spectrum-shaping experiments.
package pulse

import (
	"fmt"
	"math"

	"bhss/internal/dsp/simd"
)

// Shape identifies a chip pulse shape.
type Shape int

const (
	// HalfSine is g(t) = sin(πt/Tc) over one chip period, the paper's
	// (and IEEE 802.15.4's) choice.
	HalfSine Shape = iota
	// Rect is a rectangular (NRZ) chip pulse.
	Rect
	// RRC is a root-raised-cosine pulse truncated to RRCSpan chips with
	// roll-off RRCBeta. Unlike the others it spans several chips.
	RRC
)

// RRCSpan is the truncation length of the RRC pulse in chip periods.
const RRCSpan = 8

// RRCBeta is the RRC roll-off factor.
const RRCBeta = 0.35

// String returns the shape name.
func (s Shape) String() string {
	switch s {
	case HalfSine:
		return "half-sine"
	case Rect:
		return "rect"
	case RRC:
		return "rrc"
	default:
		return "unknown"
	}
}

// Taps returns the pulse shape sampled at sps samples per chip, normalized
// so that the average transmit power of unit-power chips is one
// (sum of squares == sps). For HalfSine and Rect the slice has sps samples;
// for RRC it has RRCSpan*sps+1.
//
//bhss:planphase pulse design runs at construction time (results are cached per sps)
func Taps(s Shape, sps int) []float64 {
	if sps < 1 {
		panic(fmt.Sprintf("pulse: sps %d must be >= 1", sps))
	}
	var g []float64
	switch s {
	case HalfSine:
		g = make([]float64, sps)
		for i := range g {
			g[i] = math.Sin(math.Pi * (float64(i) + 0.5) / float64(sps))
		}
	case Rect:
		g = make([]float64, sps)
		for i := range g {
			g[i] = 1
		}
	case RRC:
		g = rrcTaps(sps, RRCSpan, RRCBeta)
	default:
		panic("pulse: unknown shape")
	}
	normalizeEnergy(g, float64(sps))
	return g
}

// normalizeEnergy scales g so that sum(g^2) == target.
func normalizeEnergy(g []float64, target float64) {
	var e float64
	for _, v := range g {
		e += v * v
	}
	if e == 0 {
		return
	}
	scale := math.Sqrt(target / e)
	for i := range g {
		g[i] *= scale
	}
}

// rrcTaps returns a root-raised-cosine pulse with the given roll-off,
// truncated to span chip periods (span*sps+1 samples, symmetric).
func rrcTaps(sps, span int, beta float64) []float64 {
	n := span*sps + 1
	g := make([]float64, n)
	mid := float64(n-1) / 2
	for i := range g {
		t := (float64(i) - mid) / float64(sps) // time in chip periods
		g[i] = rrcValue(t, beta)
	}
	return g
}

// rrcValue evaluates the RRC impulse response at time t (in chip periods),
// handling the t=0 and t=±1/(4β) singularities analytically.
func rrcValue(t, beta float64) float64 {
	switch {
	case t == 0:
		return 1 + beta*(4/math.Pi-1)
	case beta > 0 && math.Abs(math.Abs(t)-1/(4*beta)) < 1e-9:
		a := math.Pi / (4 * beta)
		return beta / math.Sqrt2 * ((1+2/math.Pi)*math.Sin(a) + (1-2/math.Pi)*math.Cos(a))
	default:
		num := math.Sin(math.Pi*t*(1-beta)) + 4*beta*t*math.Cos(math.Pi*t*(1+beta))
		den := math.Pi * t * (1 - (4*beta*t)*(4*beta*t))
		if den == 0 {
			return 0
		}
		return num / den
	}
}

// Modulate maps complex chips to samples at sps samples per chip using the
// single-chip pulse g (len(g) == sps, from Taps with HalfSine or Rect).
// The output has len(chips)*sps samples.
func Modulate(chips []complex128, g []float64) []complex128 {
	return ModulateAppend(make([]complex128, 0, len(chips)*len(g)), chips, g)
}

// ModulateAppend is Modulate appending into dst, for transmitters that
// assemble a multi-hop burst into one pre-sized buffer.
//
//bhss:hotpath
func ModulateAppend(dst []complex128, chips []complex128, g []float64) []complex128 {
	sps := len(g)
	//bhss:allow(hotpathfacts) amortized growth: growSamples reuses dst's storage once warm
	dst = growSamples(dst, len(chips)*sps)
	out := dst[len(dst)-len(chips)*sps:]
	simd.Modulate(out, chips, g)
	return dst
}

// Demodulate recovers chip estimates from samples by matched filtering with
// the single-chip pulse g and sampling once per chip, starting at the given
// sample offset. It is the inverse of Modulate: Demodulate(Modulate(c, g),
// g, 0) == c (up to floating point). Partial chips at the tail are dropped.
func Demodulate(samples []complex128, g []float64, offset int) []complex128 {
	return DemodulateAppend(nil, samples, g, offset)
}

// DemodulateAppend is Demodulate appending into dst, for receivers that
// accumulate the chips of consecutive hops into one reused buffer.
//
//bhss:hotpath
func DemodulateAppend(dst []complex128, samples []complex128, g []float64, offset int) []complex128 {
	sps := len(g)
	if sps == 0 {
		//bhss:allow(panicpolicy) zero-alloc Append contract: an empty pulse is a caller bug, caught in construction
		panic("pulse: empty pulse")
	}
	if offset < 0 {
		offset = 0
	}
	n := (len(samples) - offset) / sps
	if n <= 0 {
		return dst
	}
	var energy float64
	for _, v := range g {
		energy += v * v
	}
	//bhss:allow(hotpathfacts) amortized growth: growSamples reuses dst's storage once warm
	dst = growSamples(dst, n)
	out := dst[len(dst)-n:]
	simd.Demodulate(out, samples[offset:], g, energy)
	return dst
}

// growSamples extends s by n elements, doubling the capacity on
// reallocation so repeated appends stay amortized-constant. The new
// elements are overwritten by the caller.
func growSamples(s []complex128, n int) []complex128 {
	if cap(s)-len(s) >= n {
		return s[:len(s)+n]
	}
	out := make([]complex128, len(s)+n, 2*(len(s)+n))
	copy(out, s)
	return out
}

// OccupiedBandwidth returns the approximate two-sided occupied bandwidth of
// a pulse-shaped chip stream in normalized frequency: the chip rate 1/sps
// (main lobe width of the chip spectrum).
//
//bhss:planphase bandwidth bookkeeping on plan-time config
func OccupiedBandwidth(sps int) float64 {
	if sps < 1 {
		panic("pulse: sps must be >= 1")
	}
	return 1 / float64(sps)
}
