// Package pn generates the pseudo-noise sequences used by the DSSS spreading
// layer: LFSR m-sequences, Gold codes and the 16-ary 32-chip quasi-orthogonal
// symbol table modeled on IEEE 802.15.4 (the paper's prototype "relies on a
// 16-ary DSSS modulation similar to the one used in IEEE 802.15.4", §6.1).
//
// It also provides the chip scrambler that makes the transmitted chip stream
// unpredictable to the jammer: a ±1 overlay drawn from the pre-shared random
// seed (the "Random seed -> PN sequence" box of Figure 4).
package pn

import (
	"fmt"

	"bhss/internal/prng"
)

// primitivePolys maps LFSR degree d to a primitive feedback polynomial.
// Bit j of the mask is the coefficient of x^j for j < d (the leading x^d
// term is implicit), so the Fibonacci recurrence is
// a[n+d] = XOR of a[n+j] over the set bits. These are standard primitive
// polynomials over GF(2) (Stahnke's table).
var primitivePolys = map[int]uint32{
	2:  0b11,               // x^2 + x + 1
	3:  0b011,              // x^3 + x + 1
	4:  0b0011,             // x^4 + x + 1
	5:  0b00101,            // x^5 + x^2 + 1
	6:  0b000011,           // x^6 + x + 1
	7:  0b0000011,          // x^7 + x + 1
	8:  0b01110001,         // x^8 + x^6 + x^5 + x^4 + 1
	9:  0b000010001,        // x^9 + x^4 + 1
	10: 0b0000001001,       // x^10 + x^3 + 1
	11: 0b00000000101,      // x^11 + x^2 + 1
	12: 0b000001010011,     // x^12 + x^6 + x^4 + x + 1
	13: 0b0000000011011,    // x^13 + x^4 + x^3 + x + 1
	14: 0b00000000101011,   // x^14 + x^5 + x^3 + x + 1
	15: 0b000000000000011,  // x^15 + x + 1
	16: 0b0000000000101101, // x^16 + x^5 + x^3 + x^2 + 1
}

// LFSR is a Fibonacci linear-feedback shift register over GF(2).
type LFSR struct {
	state  uint32
	taps   uint32
	degree int
}

// NewLFSR returns an LFSR of the given degree (2..16) using a standard
// primitive polynomial, seeded with the given nonzero initial state (only
// the low degree bits are used; a zero state is mapped to 1).
func NewLFSR(degree int, seed uint32) (*LFSR, error) {
	taps, ok := primitivePolys[degree]
	if !ok {
		return nil, fmt.Errorf("pn: no primitive polynomial for degree %d", degree)
	}
	mask := uint32(1)<<degree - 1
	state := seed & mask
	if state == 0 {
		state = 1
	}
	return &LFSR{state: state, taps: taps, degree: degree}, nil
}

// Next advances the register one step and returns the output bit (0 or 1).
func (l *LFSR) Next() int {
	out := l.state & 1
	// Feedback = parity of tapped bits.
	fb := l.state & l.taps
	fb ^= fb >> 16
	fb ^= fb >> 8
	fb ^= fb >> 4
	fb ^= fb >> 2
	fb ^= fb >> 1
	l.state >>= 1
	l.state |= (fb & 1) << (l.degree - 1)
	return int(out)
}

// Period returns the sequence period 2^degree - 1 of the m-sequence.
func (l *LFSR) Period() int { return 1<<l.degree - 1 }

// MSequence returns one full period of a maximal-length sequence of the
// given degree as ±1 chips.
func MSequence(degree int, seed uint32) ([]int8, error) {
	l, err := NewLFSR(degree, seed)
	if err != nil {
		return nil, err
	}
	out := make([]int8, l.Period())
	for i := range out {
		if l.Next() == 1 {
			out[i] = 1
		} else {
			out[i] = -1
		}
	}
	return out, nil
}

// goldPairs lists preferred m-sequence pairs (as tap masks) whose products
// form Gold code families with three-valued cross-correlation.
var goldPairs = map[int][2]uint32{
	5: {0b00101, 0b11101},     // x^5+x^2+1 and x^5+x^4+x^3+x^2+1
	7: {0b0001001, 0b0001111}, // x^7+x^3+1 and x^7+x^3+x^2+x+1
}

// GoldCode returns the idx-th Gold code of the family of the given degree
// (supported degrees: 5 and 7) as ±1 chips of length 2^degree-1.
// idx ranges over [0, 2^degree]: 0 and 1 select the two base m-sequences,
// larger values select shifted products.
func GoldCode(degree, idx int) ([]int8, error) {
	pair, ok := goldPairs[degree]
	if !ok {
		return nil, fmt.Errorf("pn: no Gold pair for degree %d", degree)
	}
	n := 1<<degree - 1
	if idx < 0 || idx > n+1 {
		return nil, fmt.Errorf("pn: Gold index %d out of [0, %d]", idx, n+1)
	}
	seqA := lfsrRaw(degree, pair[0])
	seqB := lfsrRaw(degree, pair[1])
	bits := make([]int8, n)
	switch idx {
	case 0:
		copy(bits, toChips(seqA))
	case 1:
		copy(bits, toChips(seqB))
	default:
		shift := idx - 2
		for i := 0; i < n; i++ {
			b := seqA[i] ^ seqB[(i+shift)%n]
			if b == 1 {
				bits[i] = 1
			} else {
				bits[i] = -1
			}
		}
	}
	return bits, nil
}

// lfsrRaw produces one period of raw bits for the given degree/taps.
func lfsrRaw(degree int, taps uint32) []int {
	n := 1<<degree - 1
	state := uint32(1)
	out := make([]int, n)
	for i := range out {
		out[i] = int(state & 1)
		fb := state & taps
		fb ^= fb >> 16
		fb ^= fb >> 8
		fb ^= fb >> 4
		fb ^= fb >> 2
		fb ^= fb >> 1
		state >>= 1
		state |= (fb & 1) << (degree - 1)
	}
	return out
}

func toChips(bits []int) []int8 {
	out := make([]int8, len(bits))
	for i, b := range bits {
		if b == 1 {
			out[i] = 1
		} else {
			out[i] = -1
		}
	}
	return out
}

// SymbolBits is the number of data bits carried per DSSS symbol (4, as in
// IEEE 802.15.4: one symbol = one hex digit).
const SymbolBits = 4

// ChipsPerSymbol is the spreading sequence length per symbol (32 chips).
const ChipsPerSymbol = 32

// NumSymbols is the alphabet size of the 16-ary modulation.
const NumSymbols = 1 << SymbolBits

// SpreadingFactor is chips per bit: 32 chips / 4 bits = 8, the paper's
// processing gain of 9 dB.
const SpreadingFactor = ChipsPerSymbol / SymbolBits

// base802154 is the chip sequence of symbol 0 in the IEEE 802.15.4 2.4 GHz
// O-QPSK PHY (bit order c0..c31).
var base802154 = [ChipsPerSymbol]int8{
	1, 1, 0, 1, 1, 0, 0, 1,
	1, 1, 0, 0, 0, 0, 1, 1,
	0, 1, 0, 1, 0, 0, 1, 0,
	0, 0, 1, 0, 1, 1, 1, 0,
}

// ChipTable holds the 16 quasi-orthogonal 32-chip rows as ±1 values.
type ChipTable [NumSymbols][ChipsPerSymbol]int8

// NewChipTable builds the 802.15.4-style table: symbols 1..7 are cyclic
// right-shifts of symbol 0 by 4 chips each; symbols 8..15 repeat rows 0..7
// with every odd-indexed (quadrature) chip inverted.
func NewChipTable() *ChipTable {
	var t ChipTable
	for sym := 0; sym < 8; sym++ {
		shift := 4 * sym
		for i := 0; i < ChipsPerSymbol; i++ {
			b := base802154[(i-shift+ChipsPerSymbol*8)%ChipsPerSymbol]
			if b == 1 {
				t[sym][i] = 1
			} else {
				t[sym][i] = -1
			}
		}
	}
	for sym := 8; sym < NumSymbols; sym++ {
		for i := 0; i < ChipsPerSymbol; i++ {
			v := t[sym-8][i]
			if i%2 == 1 {
				v = -v
			}
			t[sym][i] = v
		}
	}
	return &t
}

// Row returns the ±1 chips of the given symbol (0..15).
func (t *ChipTable) Row(symbol int) []int8 {
	if symbol < 0 || symbol >= NumSymbols {
		//bhss:allow(panicpolicy) symbol indices come from 4-bit fields; out of range is a programming error
		panic(fmt.Sprintf("pn: symbol %d out of range", symbol))
	}
	row := make([]int8, ChipsPerSymbol)
	copy(row, t[symbol][:])
	return row
}

// ComplexChips maps the 32 binary chips of a symbol to 16 complex QPSK
// chips: even-indexed chips on I, odd-indexed on Q, scaled to unit power.
func (t *ChipTable) ComplexChips(symbol int) []complex128 {
	row := t.Row(symbol)
	out := make([]complex128, ChipsPerSymbol/2)
	const s = 0.7071067811865476 // 1/sqrt(2): unit chip power
	for i := range out {
		out[i] = complex(float64(row[2*i])*s, float64(row[2*i+1])*s)
	}
	return out
}

// ComplexTable returns all 16 rows in complex-chip form, for the
// despreader's correlator bank.
func (t *ChipTable) ComplexTable() [][]complex128 {
	out := make([][]complex128, NumSymbols)
	for s := range out {
		out[s] = t.ComplexChips(s)
	}
	return out
}

// Scrambler produces the ±1 chip overlay derived from the pre-shared seed.
// Transmitter and receiver construct Scramblers from the same seed and stay
// chip-synchronous. The zero value is not usable; construct with
// NewScrambler.
type Scrambler struct {
	src *prng.Source
}

// NewScrambler returns a scrambler seeded from the shared random source.
func NewScrambler(seed uint64) *Scrambler {
	return &Scrambler{src: prng.New(seed)}
}

// Next returns the next ±1 scrambling value.
func (s *Scrambler) Next() float64 { return s.src.ChipBit() }

// Skip advances the scrambler past n values without producing output,
// keeping a receiver chip-synchronous across regions it does not despread.
func (s *Scrambler) Skip(n int) {
	for i := 0; i < n; i++ {
		s.src.ChipBit()
	}
}

// Block fills out with the next len(out) scrambling values.
func (s *Scrambler) Block(out []float64) {
	for i := range out {
		out[i] = s.src.ChipBit()
	}
}

// Apply multiplies the chips in place by the next scrambling values.
func (s *Scrambler) Apply(chips []complex128) {
	for i := range chips {
		chips[i] *= complex(s.src.ChipBit(), 0)
	}
}

// Autocorrelation returns the periodic autocorrelation of a ±1 chip
// sequence at every lag, normalized by the length (peak = 1 at lag 0).
func Autocorrelation(seq []int8) []float64 {
	n := len(seq)
	out := make([]float64, n)
	for lag := 0; lag < n; lag++ {
		var acc int
		for i := 0; i < n; i++ {
			acc += int(seq[i]) * int(seq[(i+lag)%n])
		}
		out[lag] = float64(acc) / float64(n)
	}
	return out
}

// CrossCorrelation returns the periodic cross-correlation of two equal-length
// ±1 sequences at every lag, normalized by the length.
//
//bhss:planphase code-design analysis helper, not a streaming path
func CrossCorrelation(a, b []int8) []float64 {
	n := len(a)
	if len(b) != n {
		panic("pn: cross-correlation requires equal lengths")
	}
	out := make([]float64, n)
	for lag := 0; lag < n; lag++ {
		var acc int
		for i := 0; i < n; i++ {
			acc += int(a[i]) * int(b[(i+lag)%n])
		}
		out[lag] = float64(acc) / float64(n)
	}
	return out
}

// Balance returns the sum of a ±1 sequence; m-sequences have balance ±1.
func Balance(seq []int8) int {
	var s int
	for _, c := range seq {
		s += int(c)
	}
	return s
}
