package pn

import (
	"math"
	"testing"
	"testing/quick"

	"bhss/internal/dsp"
)

func TestMSequencePeriodAllDegrees(t *testing.T) {
	// A maximal-length sequence visits every nonzero state exactly once:
	// the LFSR state must return to its start only after 2^n - 1 steps.
	for degree := 2; degree <= 16; degree++ {
		l, err := NewLFSR(degree, 1)
		if err != nil {
			t.Fatalf("degree %d: %v", degree, err)
		}
		start := l.state
		period := 0
		for {
			l.Next()
			period++
			if l.state == start {
				break
			}
			if period > l.Period()+1 {
				break
			}
		}
		if period != l.Period() {
			t.Fatalf("degree %d: period %d, want %d (polynomial not primitive?)",
				degree, period, l.Period())
		}
	}
}

func TestMSequenceBalance(t *testing.T) {
	for degree := 3; degree <= 12; degree++ {
		seq, err := MSequence(degree, 1)
		if err != nil {
			t.Fatal(err)
		}
		// m-sequences have one more 1 than 0 (or vice versa depending on
		// the ±1 mapping): |balance| must be exactly 1.
		if b := Balance(seq); b != 1 && b != -1 {
			t.Fatalf("degree %d balance = %d, want ±1", degree, b)
		}
	}
}

func TestMSequenceAutocorrelation(t *testing.T) {
	seq, err := MSequence(7, 1)
	if err != nil {
		t.Fatal(err)
	}
	ac := Autocorrelation(seq)
	n := float64(len(seq))
	if ac[0] != 1 {
		t.Fatalf("lag-0 autocorrelation = %v, want 1", ac[0])
	}
	for lag := 1; lag < len(ac); lag++ {
		if math.Abs(ac[lag]-(-1/n)) > 1e-12 {
			t.Fatalf("lag %d autocorrelation = %v, want %v", lag, ac[lag], -1/n)
		}
	}
}

func TestMSequenceSeedIndependentOfPeriod(t *testing.T) {
	// Different seeds give cyclic shifts of the same sequence; the set of
	// values in the autocorrelation is seed-invariant.
	a, _ := MSequence(6, 1)
	b, _ := MSequence(6, 13)
	acA := Autocorrelation(a)
	acB := Autocorrelation(b)
	for i := range acA {
		if math.Abs(acA[i]-acB[i]) > 1e-12 {
			t.Fatalf("autocorrelation differs at lag %d", i)
		}
	}
}

func TestNewLFSRRejectsUnknownDegree(t *testing.T) {
	if _, err := NewLFSR(1, 1); err == nil {
		t.Fatal("degree 1 should be rejected")
	}
	if _, err := NewLFSR(17, 1); err == nil {
		t.Fatal("degree 17 should be rejected")
	}
	if _, err := MSequence(99, 1); err == nil {
		t.Fatal("MSequence with bad degree should error")
	}
}

func TestZeroSeedMapsToOne(t *testing.T) {
	l, err := NewLFSR(5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if l.state == 0 {
		t.Fatal("zero state would lock the LFSR")
	}
}

func TestGoldCodeCrossCorrelationBound(t *testing.T) {
	// Gold codes from a preferred pair have cross-correlation bounded by
	// 2^((n+1)/2) + 1 for odd n.
	for _, degree := range []int{5, 7} {
		n := 1<<degree - 1
		bound := float64(int(1)<<((degree+1)/2)+1) / float64(n)
		a, err := GoldCode(degree, 2)
		if err != nil {
			t.Fatal(err)
		}
		b, err := GoldCode(degree, 3)
		if err != nil {
			t.Fatal(err)
		}
		cc := CrossCorrelation(a, b)
		for lag, v := range cc {
			if math.Abs(v) > bound+1e-12 {
				t.Fatalf("degree %d lag %d: |cc| = %v exceeds Gold bound %v",
					degree, lag, math.Abs(v), bound)
			}
		}
	}
}

func TestGoldCodeBaseSequences(t *testing.T) {
	a, err := GoldCode(5, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GoldCode(5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 31 || len(b) != 31 {
		t.Fatalf("lengths %d, %d, want 31", len(a), len(b))
	}
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("the two base m-sequences must differ")
	}
}

func TestGoldCodeErrors(t *testing.T) {
	if _, err := GoldCode(6, 0); err == nil {
		t.Fatal("degree without preferred pair should error")
	}
	if _, err := GoldCode(5, -1); err == nil {
		t.Fatal("negative index should error")
	}
	if _, err := GoldCode(5, 33); err == nil {
		t.Fatal("index beyond family should error")
	}
}

func TestChipTableRowsDistinct(t *testing.T) {
	tb := NewChipTable()
	for a := 0; a < NumSymbols; a++ {
		for b := a + 1; b < NumSymbols; b++ {
			same := true
			for i := 0; i < ChipsPerSymbol; i++ {
				if tb[a][i] != tb[b][i] {
					same = false
					break
				}
			}
			if same {
				t.Fatalf("symbols %d and %d share a chip row", a, b)
			}
		}
	}
}

func TestChipTableQuasiOrthogonal(t *testing.T) {
	// The 802.15.4 family is quasi-orthogonal in complex-chip space: the
	// despreader's correlation metric for a wrong symbol stays well below
	// the matched peak (16).
	tb := NewChipTable()
	rows := tb.ComplexTable()
	for a := 0; a < NumSymbols; a++ {
		peak := dsp.DotConj(rows[a], rows[a])
		if math.Abs(real(peak)-16) > 1e-9 || math.Abs(imag(peak)) > 1e-9 {
			t.Fatalf("symbol %d self-correlation %v, want 16", a, peak)
		}
		for b := 0; b < NumSymbols; b++ {
			if a == b {
				continue
			}
			cross := dsp.DotConj(rows[a], rows[b])
			mag := math.Hypot(real(cross), imag(cross))
			if mag > 12 {
				t.Fatalf("symbols %d/%d complex cross-correlation %v too high", a, b, mag)
			}
		}
	}
}

func TestChipTableConjugatePairs(t *testing.T) {
	// Rows 8..15 are rows 0..7 with odd (Q) chips inverted.
	tb := NewChipTable()
	for s := 8; s < NumSymbols; s++ {
		for i := 0; i < ChipsPerSymbol; i++ {
			want := tb[s-8][i]
			if i%2 == 1 {
				want = -want
			}
			if tb[s][i] != want {
				t.Fatalf("symbol %d chip %d: conjugation violated", s, i)
			}
		}
	}
}

func TestChipTableCyclicShiftStructure(t *testing.T) {
	tb := NewChipTable()
	for s := 1; s < 8; s++ {
		for i := 0; i < ChipsPerSymbol; i++ {
			if tb[s][i] != tb[0][(i-4*s+ChipsPerSymbol*8)%ChipsPerSymbol] {
				t.Fatalf("symbol %d is not a 4-chip shift of symbol 0", s)
			}
		}
	}
}

func TestRowPanicsOutOfRange(t *testing.T) {
	tb := NewChipTable()
	defer func() {
		if recover() == nil {
			t.Fatal("Row(16) should panic")
		}
	}()
	tb.Row(16)
}

func TestComplexChipsUnitPower(t *testing.T) {
	tb := NewChipTable()
	for s := 0; s < NumSymbols; s++ {
		chips := tb.ComplexChips(s)
		if len(chips) != ChipsPerSymbol/2 {
			t.Fatalf("symbol %d: %d complex chips, want %d", s, len(chips), ChipsPerSymbol/2)
		}
		if p := dsp.Power(chips); math.Abs(p-1) > 1e-12 {
			t.Fatalf("symbol %d chip power %v, want 1", s, p)
		}
	}
}

func TestScramblerDeterministicAndBalanced(t *testing.T) {
	a := NewScrambler(123)
	b := NewScrambler(123)
	var sum float64
	for i := 0; i < 10000; i++ {
		va, vb := a.Next(), b.Next()
		if va != vb {
			t.Fatalf("scramblers with same seed diverged at %d", i)
		}
		sum += va
	}
	if math.Abs(sum)/10000 > 0.05 {
		t.Fatalf("scrambler bias %v", sum/10000)
	}
}

func TestScramblerApplyIsInvolution(t *testing.T) {
	chips := make([]complex128, 64)
	for i := range chips {
		chips[i] = complex(float64(i%3)-1, float64(i%5)-2)
	}
	orig := append([]complex128(nil), chips...)
	NewScrambler(9).Apply(chips)
	NewScrambler(9).Apply(chips) // descramble with identical stream
	for i := range chips {
		if chips[i] != orig[i] {
			t.Fatalf("scramble twice != identity at %d", i)
		}
	}
}

func TestScramblerBlockMatchesNext(t *testing.T) {
	a := NewScrambler(5)
	b := NewScrambler(5)
	blk := make([]float64, 100)
	a.Block(blk)
	for i := range blk {
		if blk[i] != b.Next() {
			t.Fatalf("Block and Next diverge at %d", i)
		}
	}
}

func TestCrossCorrelationPanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch should panic")
		}
	}()
	CrossCorrelation([]int8{1}, []int8{1, 1})
}

func TestQuickScramblerValuesAreSigns(t *testing.T) {
	f := func(seed uint64) bool {
		s := NewScrambler(seed)
		for i := 0; i < 64; i++ {
			v := s.Next()
			if v != 1 && v != -1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
