package impair

import (
	"bhss/internal/obs"
)

// Chain applies a fixed sequence of impairment stages. A nil *Chain or a
// chain with no stages is bit-transparent: ProcessAppend copies the input
// unchanged. Chains are deterministic in their construction seed and are
// not safe for concurrent use (like the DSP blocks they sit between).
type Chain struct {
	stages []Stage
	// ping/pong scratch between interior stages; the final stage appends
	// straight into the caller's buffer. out backs the Process convenience
	// wrapper.
	//bhss:scratch
	ping, pong, out []complex128
	met             *obs.ImpairMetrics
	lastDropped     int64
}

// NewChain assembles the given stages in order. Callers normally go
// through SpecConfig.Chain, which also fixes the canonical stage order.
func NewChain(stages ...Stage) *Chain {
	return &Chain{stages: stages}
}

// SetObserver attaches impairment metrics (nil detaches). Recording never
// touches the sample stream or any stage's random state.
func (c *Chain) SetObserver(m *obs.ImpairMetrics) {
	if c == nil {
		return
	}
	c.met = m
}

// Stages returns the chain's stages in processing order (shared slice; do
// not mutate).
func (c *Chain) Stages() []Stage {
	if c == nil {
		return nil
	}
	return c.stages
}

// Len returns the number of stages (0 for a nil chain).
func (c *Chain) Len() int {
	if c == nil {
		return 0
	}
	return len(c.stages)
}

// Reset restores every stage to its freshly-constructed state, so the same
// chain can replay the same impairment sequence on another stream.
func (c *Chain) Reset() {
	if c == nil {
		return
	}
	for _, st := range c.stages {
		st.Reset()
	}
	c.lastDropped = 0
}

// ProcessAppend pushes one block through every stage, appends the impaired
// samples to dst and returns the extended slice. The output length may
// differ slightly from the input length when a clock-skew stage is present.
//
//bhss:hotpath
func (c *Chain) ProcessAppend(dst, src []complex128) []complex128 {
	if c == nil || len(c.stages) == 0 {
		return append(dst, src...)
	}
	var sw obs.Stopwatch
	if c.met != nil {
		sw = obs.Start()
		c.met.In.Add(int64(len(src)))
	}
	cur := src
	last := len(c.stages) - 1
	for i, st := range c.stages {
		if c.met != nil {
			c.met.Stage[st.Kind()].Add(int64(len(cur)))
		}
		if i == last {
			dst = st.ProcessAppend(dst, cur)
			break
		}
		if i&1 == 0 {
			ping := c.ping[:0]
			ping = st.ProcessAppend(ping, cur)
			c.ping = ping
			cur = ping
		} else {
			pong := c.pong[:0]
			pong = st.ProcessAppend(pong, cur)
			c.pong = pong
			cur = pong
		}
	}
	if c.met != nil {
		c.met.Out.Add(int64(len(dst)))
		var dropped int64
		for _, st := range c.stages {
			if d, ok := st.(*dropoutStage); ok {
				dropped += d.dropped
			}
		}
		if delta := dropped - c.lastDropped; delta > 0 {
			c.met.Dropped.Add(delta)
		}
		c.lastDropped = dropped
		c.met.ChainNS.ObserveSince(sw)
	}
	return dst
}

// Process is ProcessAppend into an internal buffer for callers that consume
// the result before the next call. The returned slice aliases chain scratch
// (or, for an empty chain, the input) and is only valid until the next
// Process or ProcessAppend call.
//
//bhss:hotpath
//bhss:scratchview output aliases chain scratch, valid until the next call
func (c *Chain) Process(src []complex128) []complex128 {
	if c == nil || len(c.stages) == 0 {
		return src
	}
	out := c.out[:0]
	out = c.ProcessAppend(out, src)
	c.out = out
	return out
}
