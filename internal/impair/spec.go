package impair

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"bhss/internal/prng"
)

// Spec grammar (documented in README.md and DESIGN.md §11):
//
//	spec    := "" | entry { "," entry }
//	entry   := key "=" value
//	key     := cfo | phase | ppm | drift | phnoise | iqgain | iqphase
//	         | dc | quant | clip | mpath | drop | seed
//
//	cfo=<Hz>        carrier frequency offset
//	phase=<rad>     initial carrier phase offset
//	ppm=<ppm>       static sample-clock offset, |ppm| <= 1000
//	drift=<ppm/s>   sample-clock drift rate, |drift| <= 1e6
//	phnoise=<dBc/Hz> Wiener phase noise: SSB density at 10 kHz offset
//	iqgain=<dB>     IQ gain imbalance
//	iqphase=<deg>   IQ quadrature phase error
//	dc=<re>[:<im>]  DC offset (rails)
//	quant=<bits>    ADC quantization, 1..24 bits (0 disables)
//	clip=<amp>      ADC full-scale amplitude (default 1.5)
//	mpath=<d:gdB:pdeg>{+<d:gdB:pdeg>}  static multipath echoes:
//	                integer delay in samples (0..4096, max 16 echoes),
//	                gain in dB, phase in degrees. The direct path is an
//	                implicit unit tap at delay 0 unless a 0-delay tap is
//	                given explicitly.
//	drop=<p>:<len>  burst dropouts: per-sample start probability p in
//	                [0,1), mean burst length in samples (>= 1)
//	seed=<uint64>   chain seed override (default: the seed passed to Chain)
//
// All values must be finite; unknown keys, malformed numbers and
// out-of-range parameters are errors. Zero values are identity: a stage
// whose every parameter is zero is omitted from the chain, so
// ParseSpec("") and ParseSpec("cfo=0,ppm=0") both build empty,
// bit-transparent chains.

// MpathTap is one multipath echo of a SpecConfig.
type MpathTap struct {
	Delay    int     // samples
	GainDB   float64 // tap gain in dB
	PhaseDeg float64 // tap phase in degrees
}

// Limits enforced by ParseSpec so a hostile spec cannot make Chain allocate
// unbounded memory or build a degenerate resampler.
const (
	maxEchoDelay = 4096
	maxEchoes    = 16
	maxPPM       = 1000
	maxDriftPPM  = 1e6
	maxQuantBits = 24
)

// SpecConfig is the parsed form of an impairment spec string. The zero
// value builds an empty (bit-transparent) chain.
type SpecConfig struct {
	CFOHz    float64
	PhaseRad float64

	PPM           float64
	DriftPPMPerS  float64

	// PhaseNoiseDBc is the oscillator's single-sideband phase-noise
	// density L(f) in dBc/Hz at a 10 kHz offset, mapped onto the Wiener
	// model's per-sample increment via
	// sigma² = 10^(L/10)·(2π·10kHz)²/fs. HasPhaseNoise gates the stage
	// (0 dBc/Hz is a legal, extremely noisy oscillator, not "off").
	PhaseNoiseDBc float64
	HasPhaseNoise bool

	IQGainDB   float64
	IQPhaseDeg float64

	DCOffsetI float64
	DCOffsetQ float64

	QuantBits int
	ClipAmp   float64 // 0 = default full scale

	Mpath []MpathTap

	DropProb    float64
	DropMeanLen float64

	Seed    uint64
	HasSeed bool
}

// phaseNoiseRefHz is the offset frequency at which PhaseNoiseDBc is
// specified.
const phaseNoiseRefHz = 1e4

// DefaultClip is the quantizer's full-scale amplitude when the spec does
// not set clip=. Unit-power signals plus strong jammers still mostly fit;
// overdrive clips, as a real front end would.
const DefaultClip = 1.5

// ParseSpec parses an impairment spec string. The empty string parses to
// the zero SpecConfig. It never panics, whatever the input.
func ParseSpec(spec string) (SpecConfig, error) {
	var c SpecConfig
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return c, nil
	}
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			return c, fmt.Errorf("impair: empty entry in spec %q", spec)
		}
		key, val, ok := strings.Cut(entry, "=")
		if !ok {
			return c, fmt.Errorf("impair: entry %q is not key=value", entry)
		}
		key = strings.TrimSpace(key)
		val = strings.TrimSpace(val)
		var err error
		switch key {
		case "cfo":
			c.CFOHz, err = parseFinite(key, val)
		case "phase":
			c.PhaseRad, err = parseFinite(key, val)
		case "ppm":
			c.PPM, err = parseFiniteRange(key, val, maxPPM)
		case "drift":
			c.DriftPPMPerS, err = parseFiniteRange(key, val, maxDriftPPM)
		case "phnoise":
			c.PhaseNoiseDBc, err = parseFinite(key, val)
			c.HasPhaseNoise = err == nil
		case "iqgain":
			c.IQGainDB, err = parseFiniteRange(key, val, 40)
		case "iqphase":
			c.IQPhaseDeg, err = parseFiniteRange(key, val, 90)
		case "dc":
			c.DCOffsetI, c.DCOffsetQ, err = parsePair(key, val)
		case "quant":
			var bits int64
			bits, err = strconv.ParseInt(val, 10, 32)
			if err != nil {
				err = fmt.Errorf("impair: quant=%q: not an integer", val)
			} else if bits < 0 || bits > maxQuantBits {
				err = fmt.Errorf("impair: quant=%d out of 0..%d", bits, maxQuantBits)
			} else {
				c.QuantBits = int(bits)
			}
		case "clip":
			c.ClipAmp, err = parseFinite(key, val)
			if err == nil && c.ClipAmp <= 0 {
				err = fmt.Errorf("impair: clip=%v must be positive", c.ClipAmp)
			}
		case "mpath":
			c.Mpath, err = parseMpath(val)
		case "drop":
			c.DropProb, c.DropMeanLen, err = parsePair(key, val)
			if err == nil {
				if c.DropProb < 0 || c.DropProb >= 1 {
					err = fmt.Errorf("impair: drop probability %v out of [0,1)", c.DropProb)
				} else if c.DropProb > 0 && (c.DropMeanLen < 1 || c.DropMeanLen > 1e9) {
					err = fmt.Errorf("impair: drop mean length %v out of [1,1e9]", c.DropMeanLen)
				}
			}
		case "seed":
			c.Seed, err = strconv.ParseUint(val, 10, 64)
			if err != nil {
				err = fmt.Errorf("impair: seed=%q: not a uint64", val)
			} else {
				c.HasSeed = true
			}
		default:
			err = fmt.Errorf("impair: unknown key %q", key)
		}
		if err != nil {
			return SpecConfig{}, err
		}
	}
	return c, nil
}

// parseFinite parses a float64 and rejects NaN and infinities.
func parseFinite(key, val string) (float64, error) {
	f, err := strconv.ParseFloat(val, 64)
	if err != nil || math.IsNaN(f) || math.IsInf(f, 0) {
		return 0, fmt.Errorf("impair: %s=%q: not a finite number", key, val)
	}
	return f, nil
}

// parseFiniteRange additionally enforces |f| <= limit.
func parseFiniteRange(key, val string, limit float64) (float64, error) {
	f, err := parseFinite(key, val)
	if err != nil {
		return 0, err
	}
	if math.Abs(f) > limit {
		return 0, fmt.Errorf("impair: %s=%v exceeds ±%v", key, f, limit)
	}
	return f, nil
}

// parsePair parses "a" or "a:b" (b defaults to 0).
func parsePair(key, val string) (a, b float64, err error) {
	first, second, has := strings.Cut(val, ":")
	a, err = parseFinite(key, first)
	if err != nil {
		return 0, 0, err
	}
	if has {
		b, err = parseFinite(key, second)
		if err != nil {
			return 0, 0, err
		}
	}
	return a, b, nil
}

// parseMpath parses "d:gdB:pdeg" echoes joined by '+'.
func parseMpath(val string) ([]MpathTap, error) {
	if val == "" {
		return nil, nil
	}
	parts := strings.Split(val, "+")
	if len(parts) > maxEchoes {
		return nil, fmt.Errorf("impair: mpath has %d echoes, max %d", len(parts), maxEchoes)
	}
	taps := make([]MpathTap, 0, len(parts))
	for _, p := range parts {
		fields := strings.Split(p, ":")
		if len(fields) != 3 {
			return nil, fmt.Errorf("impair: mpath echo %q is not delay:gaindB:phasedeg", p)
		}
		d, err := strconv.ParseInt(strings.TrimSpace(fields[0]), 10, 32)
		if err != nil || d < 0 || d > maxEchoDelay {
			return nil, fmt.Errorf("impair: mpath delay %q out of 0..%d", fields[0], maxEchoDelay)
		}
		g, err := parseFinite("mpath gain", fields[1])
		if err != nil {
			return nil, err
		}
		if g > 40 {
			return nil, fmt.Errorf("impair: mpath gain %v dB exceeds +40", g)
		}
		ph, err := parseFinite("mpath phase", fields[2])
		if err != nil {
			return nil, err
		}
		taps = append(taps, MpathTap{Delay: int(d), GainDB: g, PhaseDeg: ph})
	}
	return taps, nil
}

// String renders the config in canonical spec form: fixed key order,
// identity stages omitted. Parse(String()) reproduces the config exactly
// (the round-trip property the fuzz campaign pins).
func (c SpecConfig) String() string {
	var b strings.Builder
	add := func(key, val string) {
		if b.Len() > 0 {
			b.WriteByte(',')
		}
		b.WriteString(key)
		b.WriteByte('=')
		b.WriteString(val)
	}
	g := func(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }
	if len(c.Mpath) > 0 {
		var mp strings.Builder
		for i, tap := range c.Mpath {
			if i > 0 {
				mp.WriteByte('+')
			}
			fmt.Fprintf(&mp, "%d:%s:%s", tap.Delay, g(tap.GainDB), g(tap.PhaseDeg))
		}
		add("mpath", mp.String())
	}
	if c.CFOHz != 0 {
		add("cfo", g(c.CFOHz))
	}
	if c.PhaseRad != 0 {
		add("phase", g(c.PhaseRad))
	}
	if c.HasPhaseNoise {
		add("phnoise", g(c.PhaseNoiseDBc))
	}
	if c.PPM != 0 {
		add("ppm", g(c.PPM))
	}
	if c.DriftPPMPerS != 0 {
		add("drift", g(c.DriftPPMPerS))
	}
	if c.IQGainDB != 0 {
		add("iqgain", g(c.IQGainDB))
	}
	if c.IQPhaseDeg != 0 {
		add("iqphase", g(c.IQPhaseDeg))
	}
	if c.DCOffsetI != 0 || c.DCOffsetQ != 0 {
		add("dc", g(c.DCOffsetI)+":"+g(c.DCOffsetQ))
	}
	if c.QuantBits != 0 {
		add("quant", strconv.Itoa(c.QuantBits))
	}
	if c.ClipAmp != 0 {
		add("clip", g(c.ClipAmp))
	}
	if c.DropProb != 0 {
		add("drop", g(c.DropProb)+":"+g(c.DropMeanLen))
	}
	if c.HasSeed {
		add("seed", strconv.FormatUint(c.Seed, 10))
	}
	return b.String()
}

// Enabled reports whether any stage would be built.
func (c SpecConfig) Enabled() bool {
	return c.CFOHz != 0 || c.PhaseRad != 0 || c.HasPhaseNoise ||
		c.PPM != 0 || c.DriftPPMPerS != 0 ||
		c.IQGainDB != 0 || c.IQPhaseDeg != 0 ||
		c.DCOffsetI != 0 || c.DCOffsetQ != 0 ||
		c.QuantBits != 0 || len(c.Mpath) > 0 || c.DropProb != 0
}

// Chain builds the seeded stage chain for a front end running at
// sampleRateMHz (the repo's convention: 20 = 20 MS/s). The spec's seed=
// key, when present, overrides the seed argument. Stage order is fixed:
// multipath → CFO → phase noise → sample clock → IQ imbalance → DC offset
// → quantizer → dropouts (medium first, then the analog front end, the
// ADC, and transport loss).
func (c SpecConfig) Chain(sampleRateMHz float64, seed uint64) (*Chain, error) {
	if sampleRateMHz <= 0 || math.IsNaN(sampleRateMHz) || math.IsInf(sampleRateMHz, 0) {
		return nil, fmt.Errorf("impair: sample rate %v MHz must be positive and finite", sampleRateMHz)
	}
	fsHz := sampleRateMHz * 1e6
	if c.HasSeed {
		seed = c.Seed
	}
	// Per-stage sub-seeds drawn in fixed order so adding one stage never
	// changes another stage's noise.
	seeds := prng.New(seed)
	phnoiseSeed := seeds.Uint64()
	dropSeed := seeds.Uint64()

	var stages []Stage
	if len(c.Mpath) > 0 {
		maxDelay := 0
		for _, tap := range c.Mpath {
			if tap.Delay > maxDelay {
				maxDelay = tap.Delay
			}
		}
		taps := make([]complex128, maxDelay+1)
		explicitDirect := false
		for _, tap := range c.Mpath {
			if tap.Delay == 0 {
				explicitDirect = true
			}
			amp := math.Pow(10, tap.GainDB/20)
			ph := tap.PhaseDeg * math.Pi / 180
			taps[tap.Delay] += complex(amp*math.Cos(ph), amp*math.Sin(ph))
		}
		if !explicitDirect {
			taps[0] += 1
		}
		stages = append(stages, newMultipath(taps))
	}
	if c.CFOHz != 0 || c.PhaseRad != 0 {
		stages = append(stages, newCFO(c.CFOHz/fsHz, c.PhaseRad))
	}
	if c.HasPhaseNoise {
		// Wiener phase noise with per-sample variance sigma²: the phase
		// PSD is S_phi(f) = sigma²·fs/(2πf)², and L(f) ≈ S_phi(f) for
		// small phase deviations, so pinning L at the reference offset
		// gives sigma² = 10^(L/10)·(2π·f_ref)²/fs.
		lin := math.Pow(10, c.PhaseNoiseDBc/10)
		sigma := math.Sqrt(lin * (2 * math.Pi * phaseNoiseRefHz) * (2 * math.Pi * phaseNoiseRefHz) / fsHz)
		stages = append(stages, newPhaseNoise(sigma, phnoiseSeed))
	}
	if c.PPM != 0 || c.DriftPPMPerS != 0 {
		stages = append(stages, newClock(c.PPM, c.DriftPPMPerS, fsHz))
	}
	if c.IQGainDB != 0 || c.IQPhaseDeg != 0 {
		stages = append(stages, newIQImbalance(c.IQGainDB, c.IQPhaseDeg*math.Pi/180))
	}
	if c.DCOffsetI != 0 || c.DCOffsetQ != 0 {
		stages = append(stages, newDCOffset(c.DCOffsetI, c.DCOffsetQ))
	}
	if c.QuantBits != 0 {
		clip := c.ClipAmp
		if clip == 0 {
			clip = DefaultClip
		}
		stages = append(stages, newQuantizer(c.QuantBits, clip))
	}
	if c.DropProb != 0 {
		stages = append(stages, newDropout(c.DropProb, c.DropMeanLen, dropSeed))
	}
	return NewChain(stages...), nil
}

// NewFromSpec parses spec and builds the chain in one step; the common
// entry point for the cmd tools' -impair flags. An empty spec returns an
// empty (transparent, non-nil) chain.
func NewFromSpec(spec string, sampleRateMHz float64, seed uint64) (*Chain, error) {
	cfg, err := ParseSpec(spec)
	if err != nil {
		return nil, err
	}
	return cfg.Chain(sampleRateMHz, seed)
}
