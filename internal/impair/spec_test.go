package impair

import (
	"strings"
	"testing"
)

// TestParseSpecRoundTrip: canonical String() output must re-parse to the
// identical config.
func TestParseSpecRoundTrip(t *testing.T) {
	specs := []string{
		"",
		"cfo=2e3",
		"cfo=2e3,ppm=20,phnoise=-80,quant=8",
		"cfo=-1500.5,phase=1.2,ppm=-20,drift=0.5,phnoise=-75,iqgain=0.5,iqphase=2,dc=0.01:-0.02,quant=10,clip=1.2,mpath=0:0:0+7:-6:45,drop=0.001:30,seed=42",
		"mpath=3:-10:90",
		"drop=0.5:1",
		"phnoise=0",
		" cfo = 100 , ppm = 5 ", // whitespace tolerated
	}
	for _, spec := range specs {
		c1, err := ParseSpec(spec)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", spec, err)
		}
		s1 := c1.String()
		c2, err := ParseSpec(s1)
		if err != nil {
			t.Fatalf("ParseSpec(String(%q) = %q): %v", spec, s1, err)
		}
		if s2 := c2.String(); s2 != s1 {
			t.Errorf("spec %q: canonical form not a fixed point: %q -> %q", spec, s1, s2)
		}
	}
}

// TestParseSpecValues spot-checks parsed fields.
func TestParseSpecValues(t *testing.T) {
	c, err := ParseSpec("cfo=2e3,phase=0.5,ppm=20,drift=-1,phnoise=-80,iqgain=1,iqphase=-3,dc=0.1:0.2,quant=8,clip=2,mpath=5:-6:90,drop=0.01:25,seed=7")
	if err != nil {
		t.Fatal(err)
	}
	if c.CFOHz != 2e3 || c.PhaseRad != 0.5 || c.PPM != 20 || c.DriftPPMPerS != -1 {
		t.Errorf("carrier/clock fields wrong: %+v", c)
	}
	if !c.HasPhaseNoise || c.PhaseNoiseDBc != -80 {
		t.Errorf("phnoise wrong: %+v", c)
	}
	if c.IQGainDB != 1 || c.IQPhaseDeg != -3 || c.DCOffsetI != 0.1 || c.DCOffsetQ != 0.2 {
		t.Errorf("analog fields wrong: %+v", c)
	}
	if c.QuantBits != 8 || c.ClipAmp != 2 {
		t.Errorf("quantizer fields wrong: %+v", c)
	}
	if len(c.Mpath) != 1 || c.Mpath[0] != (MpathTap{Delay: 5, GainDB: -6, PhaseDeg: 90}) {
		t.Errorf("mpath wrong: %+v", c.Mpath)
	}
	if c.DropProb != 0.01 || c.DropMeanLen != 25 {
		t.Errorf("drop wrong: %+v", c)
	}
	if !c.HasSeed || c.Seed != 7 {
		t.Errorf("seed wrong: %+v", c)
	}
	if !c.Enabled() {
		t.Error("Enabled() = false for a fully-populated spec")
	}
	var zero SpecConfig
	if zero.Enabled() {
		t.Error("Enabled() = true for the zero config")
	}
}

// TestParseSpecErrors: malformed and out-of-range specs must error (never
// panic) and report the offending entry.
func TestParseSpecErrors(t *testing.T) {
	bad := []string{
		"cfo",            // no value
		"cfo=",           // empty value
		"cfo=abc",        // not a number
		"cfo=NaN",        // non-finite
		"cfo=+Inf",       // non-finite
		"bogus=1",        // unknown key
		"cfo=1,,ppm=2",   // empty entry
		"ppm=2000",       // over clamp
		"drift=2e6",      // over clamp
		"iqgain=100",     // absurd imbalance
		"iqphase=120",    // over 90 degrees
		"quant=-1",       // negative bits
		"quant=33",       // too many bits
		"quant=8.5",      // not an integer
		"clip=0",         // non-positive full scale
		"clip=-1",        //
		"mpath=1:0",      // missing field
		"mpath=-1:0:0",   // negative delay
		"mpath=9999:0:0", // delay over cap
		"mpath=1:50:0",   // gain over +40 dB
		"drop=1.5:10",    // probability >= 1
		"drop=0.1:0.5",   // mean length < 1
		"drop=0.1:2e9",   // mean length over cap
		"seed=abc",       // not a uint64
		"seed=-1",        //
		"dc=1:2:3",       // extra pair field -> "2:3" not a number
	}
	for _, spec := range bad {
		if _, err := ParseSpec(spec); err == nil {
			t.Errorf("ParseSpec(%q): expected error, got nil", spec)
		} else if !strings.Contains(err.Error(), "impair:") {
			t.Errorf("ParseSpec(%q): error %q lacks package prefix", spec, err)
		}
	}
}

// TestSpecChainStageOrder: the built chain must follow the canonical
// physical order regardless of key order in the spec.
func TestSpecChainStageOrder(t *testing.T) {
	c, err := NewFromSpec("drop=0.1:5,quant=8,dc=0.1:0,iqgain=1,ppm=10,phnoise=-80,phase=0.1,cfo=100,mpath=1:-3:0", 20, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := []Kind{KindMultipath, KindCFO, KindPhaseNoise, KindClock, KindIQImbalance, KindDCOffset, KindQuantizer, KindDropout}
	stages := c.Stages()
	if len(stages) != len(want) {
		t.Fatalf("chain has %d stages, want %d", len(stages), len(want))
	}
	for i, st := range stages {
		if st.Kind() != want[i] {
			t.Errorf("stage %d is %v, want %v", i, st.Kind(), want[i])
		}
	}
}

// TestSpecChainIdentityEmpty: zero-valued keys build no stages, so the
// all-identity spec is bit-transparent by construction.
func TestSpecChainIdentityEmpty(t *testing.T) {
	c, err := NewFromSpec("cfo=0,phase=0,ppm=0,drift=0,iqgain=0,iqphase=0,dc=0:0,quant=0,drop=0:10", 20, 1)
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 0 {
		t.Fatalf("all-identity spec built %d stages, want 0", c.Len())
	}
	sig := testSignal(256, 11)
	out := c.ProcessAppend(nil, sig)
	for i := range sig {
		if out[i] != sig[i] {
			t.Fatalf("identity spec chain not transparent at sample %d", i)
		}
	}
}

// TestSpecChainSeedOverride: the seed= key overrides the seed argument, and
// different chain seeds give different noise.
func TestSpecChainSeedOverride(t *testing.T) {
	sig := testSignal(2048, 12)
	build := func(spec string, seed uint64) []complex128 {
		c, err := NewFromSpec(spec, 20, seed)
		if err != nil {
			t.Fatal(err)
		}
		return c.ProcessAppend(nil, sig)
	}
	a := build("phnoise=-70", 1)
	b := build("phnoise=-70", 2)
	c := build("phnoise=-70,seed=1", 99) // seed= wins over the argument
	d := build("phnoise=-70", 1)

	differs := func(x, y []complex128) bool {
		for i := range x {
			if x[i] != y[i] {
				return true
			}
		}
		return false
	}
	if !differs(a, b) {
		t.Error("different seeds produced identical phase noise")
	}
	if differs(a, c) {
		t.Error("seed= key did not override the seed argument")
	}
	if differs(a, d) {
		t.Error("same seed not reproducible")
	}
}

// TestSpecChainBadRate: non-positive or non-finite sample rates error.
func TestSpecChainBadRate(t *testing.T) {
	for _, rate := range []float64{0, -1} {
		if _, err := NewFromSpec("cfo=1", rate, 1); err == nil {
			t.Errorf("rate %v: expected error", rate)
		}
	}
}

// TestSpecChainMpathDirect: an explicit 0-delay tap replaces the implicit
// unit direct path instead of stacking on it.
func TestSpecChainMpathDirect(t *testing.T) {
	sig := []complex128{1, 0, 0, 0}

	c1, err := NewFromSpec("mpath=0:-6:0", 20, 1) // direct path at -6 dB only
	if err != nil {
		t.Fatal(err)
	}
	out := c1.ProcessAppend(nil, sig)
	if g := real(out[0]); g > 0.51 || g < 0.49 { // 10^(-6/20) ≈ 0.501
		t.Errorf("explicit direct tap gain %v, want ≈0.501 (implicit unit tap must not stack)", g)
	}

	c2, err := NewFromSpec("mpath=2:-6:0", 20, 1) // echo only: implicit direct
	if err != nil {
		t.Fatal(err)
	}
	out2 := c2.ProcessAppend(nil, sig)
	if out2[0] != 1 {
		t.Errorf("implicit direct path gain %v, want exactly 1", out2[0])
	}
	if g := real(out2[2]); g > 0.51 || g < 0.49 {
		t.Errorf("echo gain %v, want ≈0.501", g)
	}
}
