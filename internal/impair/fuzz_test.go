package impair

import (
	"testing"
)

// FuzzParseSpec throws arbitrary strings at the spec parser: it must never
// panic, only return errors. Whenever it accepts a spec, the canonical form
// must be a fixed point (Parse ∘ String ≡ id on canonical forms) and the
// chain must build and process a block without panicking — the runtime
// evidence behind the panicpolicy contract.
func FuzzParseSpec(f *testing.F) {
	f.Add("")
	f.Add("cfo=2e3,ppm=20,phnoise=-80,quant=8")
	f.Add("mpath=0:0:0+7:-6:45,drop=0.001:30,seed=42")
	f.Add("cfo=-1.5e3,phase=0.7,drift=0.25,iqgain=0.5,iqphase=-2,dc=0.01:-0.02,clip=1.2")
	f.Add("cfo=NaN")
	f.Add("quant=99,ppm=1e9")
	f.Add("=,=,=")
	f.Add("mpath=1:2:3+4:5:6+7:8:9+10:11:12")
	f.Fuzz(func(t *testing.T, spec string) {
		cfg, err := ParseSpec(spec)
		if err != nil {
			return
		}
		canon := cfg.String()
		cfg2, err := ParseSpec(canon)
		if err != nil {
			t.Fatalf("canonical form %q of accepted spec %q does not re-parse: %v", canon, spec, err)
		}
		if canon2 := cfg2.String(); canon2 != canon {
			t.Fatalf("canonical form not a fixed point: %q -> %q", canon, canon2)
		}
		chain, err := cfg.Chain(20, 1)
		if err != nil {
			t.Fatalf("accepted spec %q does not build a chain: %v", spec, err)
		}
		sig := make([]complex128, 64)
		for i := range sig {
			sig[i] = complex(float64(i%7)*0.1, -float64(i%5)*0.1)
		}
		chain.ProcessAppend(nil, sig)
	})
}
