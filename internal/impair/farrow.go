package impair

// clockStage models the sample-clock offset and drift between the
// transmitter's DAC and the receiver's ADC: the stream is resampled by a
// rate that starts at 1 + ppm·1e-6 and drifts linearly (ppm/s at the
// configured sample rate), using a cubic-Lagrange fractional-delay
// interpolator in Farrow structure — the standard software-radio resampler
// (e.g. GNU Radio's fractional resampler), here with 4 taps.
//
// The stage is streaming: leftover input samples that the interpolator
// still needs (it looks one sample ahead and two behind) are carried to the
// next block, so block boundaries never appear in the output. A positive
// ppm means the receiver's clock runs fast, so the signal appears
// stretched: the stage emits slightly more samples than it consumes.
type clockStage struct {
	step0  float64 // initial input step per output sample (1/(1+ppm·1e-6))
	drift  float64 // step increment per output sample (clock drift)
	minStep, maxStep float64

	step float64 // current step
	// pos is the absolute fractional read position in input-stream units
	// and base the absolute input index of work[0]. Keeping both absolute
	// (instead of renormalizing pos when carrying samples) makes the
	// arithmetic — and therefore the output — bit-identical for any block
	// partitioning of the stream.
	pos  float64
	base int64
	//bhss:scratch
	work []complex128 // carried history + current block
}

// newClock returns a resampler for the given static offset (ppm) and drift
// rate (ppm per second at fsHz samples per second).
func newClock(ppm, driftPPMPerSec, fsHz float64) *clockStage {
	s := &clockStage{
		step0: 1 / (1 + ppm*1e-6),
		// d(ppm)/dt = drift  =>  per output sample the rate changes by
		// drift·1e-6/fs; fold it into the step directly (first-order).
		drift: -driftPPMPerSec * 1e-6 / fsHz,
		// Clamp the accumulated drift to ±1000 ppm so a long stream cannot
		// run the resampler to a standstill or a runaway.
		minStep: 1 / (1 + 1000e-6),
		maxStep: 1 / (1 - 1000e-6),
	}
	s.Reset()
	return s
}

func (s *clockStage) Kind() Kind { return KindClock }

func (s *clockStage) Reset() {
	s.step = s.step0
	// The cubic interpolator reads work[i-1 .. i+2] around i = floor(pos).
	// Seed the history with one zero sample (the silence before the
	// stream) and start at pos = 1: the first output lands on the first
	// real input sample.
	s.work = append(s.work[:0], 0)
	s.pos = 1
	s.base = 0
}

// lagrange4 interpolates x(-1..2) at fractional offset mu in [0,1) between
// x0 and x1 with the 4-point, 3rd-order Lagrange polynomial.
func lagrange4(xm1, x0, x1, x2 complex128, mu float64) complex128 {
	// Farrow coefficients of the cubic Lagrange interpolator.
	c0 := x0
	c1 := x1 - xm1/3 - x0/2 - x2/6
	c2 := (xm1+x1)/2 - x0
	c3 := (x2-xm1)/6 + (x0-x1)/2
	m := complex(mu, 0)
	return ((c3*m+c2)*m+c1)*m + c0
}

//bhss:hotpath
func (s *clockStage) ProcessAppend(dst, src []complex128) []complex128 {
	work := s.work
	work = append(work, src...)
	pos, step, base := s.pos, s.step, s.base
	for {
		ip := int64(pos) // pos >= 0 always, so truncation == floor
		i := int(ip - base)
		if i < 1 || i+2 >= len(work) {
			break
		}
		mu := pos - float64(ip)
		dst = append(dst, lagrange4(work[i-1], work[i], work[i+1], work[i+2], mu))
		pos += step
		step += s.drift
		if step < s.minStep {
			step = s.minStep
		} else if step > s.maxStep {
			step = s.maxStep
		}
	}
	// Carry the samples the interpolator may still need: everything from
	// floor(pos)-1 onward.
	discard := int64(pos) - 1 - base
	if discard < 0 {
		discard = 0
	}
	if discard > int64(len(work)) {
		discard = int64(len(work))
	}
	n := copy(work, work[discard:])
	s.work = work[:n]
	s.pos = pos
	s.base = base + discard
	s.step = step
	return dst
}
