package impair_test

import (
	"bytes"
	"fmt"
	"runtime"
	"testing"

	"bhss/internal/core"
	"bhss/internal/impair"
	"bhss/internal/prng"
)

// mildSpecs are impairment levels a real receiver is expected to ride
// through: CFO well inside the Costas pull-in range, clock offsets the
// Gardner loop absorbs within a burst, quantization above the noise floor.
var mildSpecs = []string{
	"cfo=100",
	"ppm=2",
	"phnoise=-100",
	"quant=12",
	"iqgain=0.1,iqphase=0.5",
	"dc=0.001:0.001",
	"cfo=100,phnoise=-100,quant=12,iqgain=0.1",
	"mpath=0:0:0+3:-25:40,cfo=100",
}

// TestPropertyMildImpairmentRoundTrip is the headline property: for random
// payloads and every mild impairment level, encode → impair → decode
// recovers the exact payload. This pins the claim that the impairment
// layer models *recoverable* hardware, not a lossy channel, at these
// settings.
func TestPropertyMildImpairmentRoundTrip(t *testing.T) {
	cfg := core.DefaultConfig(7)
	tx, err := core.NewTransmitter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	src := prng.New(0xfeed)
	for trial := 0; trial < 4; trial++ {
		payload := make([]byte, 8+int(src.Uint64()%24))
		for i := range payload {
			payload[i] = byte(src.Uint64())
		}
		burst, err := tx.EncodeFrame(payload)
		if err != nil {
			t.Fatal(err)
		}
		// A real capture window extends past the burst; the tail pad keeps
		// the resampler's interpolator lookahead from clipping the final
		// symbol.
		capture := append(append([]complex128(nil), burst.Samples...), make([]complex128, 64)...)
		for _, spec := range mildSpecs {
			chain, err := impair.NewFromSpec(spec, cfg.SampleRate, 0x1234+uint64(trial))
			if err != nil {
				t.Fatalf("spec %q: %v", spec, err)
			}
			impaired := chain.ProcessAppend(nil, capture)
			rx, err := core.NewReceiver(cfg)
			if err != nil {
				t.Fatal(err)
			}
			// The transmitter's frame counter has advanced past this
			// burst; replay the receiver to the matching frame.
			for rx.FrameCounter() < tx.FrameCounter()-1 {
				rx.SkipFrame()
			}
			got, _, err := rx.DecodeBurst(impaired)
			if err != nil {
				t.Fatalf("trial %d spec %q: decode: %v", trial, spec, err)
			}
			if !bytes.Equal(got, payload) {
				t.Fatalf("trial %d spec %q: payload corrupted: got %x want %x",
					trial, spec, got, payload)
			}
		}
	}
}

// TestPropertySeedDeterminism: two chains built from the same spec and
// seed produce bit-identical output, for every stochastic stage kind.
func TestPropertySeedDeterminism(t *testing.T) {
	specs := []string{
		"phnoise=-80",
		"drop=0.001:200",
		"cfo=2e3,ppm=20,phnoise=-80,quant=8,drop=0.0005:100",
	}
	sig := testBurst(t, 8192)
	for _, spec := range specs {
		a, err := impair.NewFromSpec(spec, 20, 42)
		if err != nil {
			t.Fatal(err)
		}
		b, err := impair.NewFromSpec(spec, 20, 42)
		if err != nil {
			t.Fatal(err)
		}
		outA := a.ProcessAppend(nil, sig)
		outB := b.ProcessAppend(nil, sig)
		if len(outA) != len(outB) {
			t.Fatalf("spec %q: lengths differ: %d vs %d", spec, len(outA), len(outB))
		}
		for i := range outA {
			if outA[i] != outB[i] {
				t.Fatalf("spec %q: outputs diverge at %d", spec, i)
			}
		}
	}
}

// TestPropertyGOMAXPROCSInvariance: chain output must not depend on the
// scheduler. The chain is documented single-goroutine; this test fails
// loudly if parallelism (and with it nondeterministic float reduction
// order) ever sneaks into a stage.
func TestPropertyGOMAXPROCSInvariance(t *testing.T) {
	const spec = "cfo=2e3,ppm=20,phnoise=-80,iqgain=0.5,iqphase=2,dc=0.01:0.02,quant=8,drop=0.001:100,mpath=0:0:0+5:-20:30"
	sig := testBurst(t, 16384)
	run := func(procs int) []complex128 {
		prev := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(prev)
		chain, err := impair.NewFromSpec(spec, 20, 99)
		if err != nil {
			t.Fatal(err)
		}
		return chain.ProcessAppend(nil, sig)
	}
	ref := run(1)
	for _, procs := range []int{2, 4, runtime.NumCPU()} {
		got := run(procs)
		if len(got) != len(ref) {
			t.Fatalf("GOMAXPROCS=%d: length %d, want %d", procs, len(got), len(ref))
		}
		for i := range got {
			if got[i] != ref[i] {
				t.Fatalf("GOMAXPROCS=%d: diverges at sample %d", procs, i)
			}
		}
	}
}

// TestPropertyIdentityEndToEnd: a chain with every stage present but
// parameterized to identity must be bit-transparent through the full
// encode path (not just on synthetic noise).
func TestPropertyIdentityEndToEnd(t *testing.T) {
	cfg := core.DefaultConfig(3)
	tx, err := core.NewTransmitter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	burst, err := tx.EncodeFrame([]byte("identity must be exact"))
	if err != nil {
		t.Fatal(err)
	}
	chain, err := impair.NewFromSpec("cfo=0,phase=0,ppm=0,drift=0,iqgain=0,iqphase=0,dc=0:0,quant=0,drop=0:0", cfg.SampleRate, 1)
	if err != nil {
		t.Fatal(err)
	}
	if chain.Len() != 0 {
		t.Fatalf("all-identity spec built %d stages, want 0", chain.Len())
	}
	out := chain.ProcessAppend(nil, burst.Samples)
	for i := range out {
		if out[i] != burst.Samples[i] {
			t.Fatalf("identity chain altered sample %d", i)
		}
	}
}

func testBurst(t *testing.T, n int) []complex128 {
	t.Helper()
	src := prng.New(0xabcd)
	sig := make([]complex128, n)
	for i := range sig {
		sig[i] = complex(src.NormFloat64(), src.NormFloat64())
	}
	return sig
}

// TestPropertyRepeatedProcessAfterReset: Reset must replay the exact
// same realization — the contract experiment points rely on for
// reproducible per-point impairments.
func TestPropertyRepeatedProcessAfterReset(t *testing.T) {
	chain, err := impair.NewFromSpec("phnoise=-75,drop=0.002:50,ppm=30", 20, 5)
	if err != nil {
		t.Fatal(err)
	}
	sig := testBurst(t, 4096)
	first := append([]complex128(nil), chain.ProcessAppend(nil, sig)...)
	chain.Reset()
	second := chain.ProcessAppend(nil, sig)
	if len(first) != len(second) {
		t.Fatalf("lengths differ after Reset: %d vs %d", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatal(fmt.Sprintf("replay diverges at sample %d", i))
		}
	}
}
