package impair

import (
	"math"
	"math/cmplx"
	"testing"

	"bhss/internal/alloctest"
	"bhss/internal/obs"
	"bhss/internal/prng"
)

// testSignal returns a deterministic pseudo-random complex tone-ish signal.
func testSignal(n int, seed uint64) []complex128 {
	src := prng.New(seed)
	out := make([]complex128, n)
	for i := range out {
		out[i] = complex(src.NormFloat64(), src.NormFloat64()) * 0.5
	}
	return out
}

// allStages builds one of every stage with non-trivial parameters.
func allStages() []Stage {
	return []Stage{
		newMultipath([]complex128{1, 0, complex(0.2, -0.1)}),
		newCFO(1e-4, 0.3),
		newPhaseNoise(0.01, 42),
		newClock(50, 10, 20e6),
		newIQImbalance(0.5, 2*math.Pi/180),
		newDCOffset(0.01, -0.02),
		newQuantizer(10, 1.5),
		newDropout(0.001, 20, 7),
	}
}

// TestKindNamesMatchObs pins the obs snapshot naming to the impair Kind
// enum: the two packages declare the stage list independently (an import
// would be cyclic), so this test is the contract.
func TestKindNamesMatchObs(t *testing.T) {
	if obs.NumImpairStages != NumKinds {
		t.Fatalf("obs.NumImpairStages = %d, impair.NumKinds = %d", obs.NumImpairStages, NumKinds)
	}
	for k := 0; k < NumKinds; k++ {
		if got, want := obs.ImpairStageName(k), Kind(k).String(); got != want {
			t.Errorf("stage %d: obs name %q, impair name %q", k, got, want)
		}
	}
}

// TestStageKinds checks every constructed stage reports its own kind and
// that all kinds are covered.
func TestStageKinds(t *testing.T) {
	seen := make(map[Kind]bool)
	for _, st := range allStages() {
		seen[st.Kind()] = true
	}
	for k := 0; k < NumKinds; k++ {
		if !seen[Kind(k)] {
			t.Errorf("allStages covers no stage of kind %v", Kind(k))
		}
	}
}

// TestBlockSizeInvariance is the core streaming property: processing a
// stream in arbitrary block sizes must produce bit-identical output to
// processing it in one call, for every stage and for a full chain.
func TestBlockSizeInvariance(t *testing.T) {
	sig := testSignal(4096, 1)
	blockings := [][]int{{4096}, {1024, 1024, 1024, 1024}, {1, 4095}, {37, 1000, 3, 3056}}

	run := func(st Stage, blocks []int) []complex128 {
		st.Reset()
		var out []complex128
		off := 0
		for _, b := range blocks {
			out = st.ProcessAppend(out, sig[off:off+b])
			off += b
		}
		return out
	}

	for _, st := range allStages() {
		ref := run(st, blockings[0])
		for _, blocks := range blockings[1:] {
			got := run(st, blocks)
			if len(got) != len(ref) {
				t.Fatalf("%v: blocks %v: %d samples, want %d", st.Kind(), blocks, len(got), len(ref))
			}
			for i := range got {
				if got[i] != ref[i] {
					t.Fatalf("%v: blocks %v: sample %d = %v, want %v", st.Kind(), blocks, i, got[i], ref[i])
				}
			}
		}
	}

	// Same property for a whole chain.
	chain := NewChain(allStages()...)
	runChain := func(blocks []int) []complex128 {
		chain.Reset()
		var out []complex128
		off := 0
		for _, b := range blocks {
			out = chain.ProcessAppend(out, sig[off:off+b])
			off += b
		}
		return out
	}
	ref := runChain(blockings[0])
	for _, blocks := range blockings[1:] {
		got := runChain(blocks)
		if len(got) != len(ref) {
			t.Fatalf("chain: blocks %v: %d samples, want %d", blocks, len(got), len(ref))
		}
		for i := range got {
			if got[i] != ref[i] {
				t.Fatalf("chain: blocks %v: sample %d differs", blocks, i)
			}
		}
	}
}

// TestChainMatchesSequentialStages verifies the ping/pong buffering inside
// Chain.ProcessAppend against naive stage-by-stage application.
func TestChainMatchesSequentialStages(t *testing.T) {
	sig := testSignal(2000, 2)

	ref := append([]complex128(nil), sig...)
	for _, st := range allStages() {
		ref = st.ProcessAppend(nil, ref)
	}

	chain := NewChain(allStages()...)
	got := chain.ProcessAppend(nil, sig)

	if len(got) != len(ref) {
		t.Fatalf("chain emitted %d samples, sequential %d", len(got), len(ref))
	}
	for i := range got {
		if got[i] != ref[i] {
			t.Fatalf("sample %d: chain %v, sequential %v", i, got[i], ref[i])
		}
	}
}

// TestEmptyChainTransparent: nil chains, empty chains and identity-parameter
// stages must be bit-transparent.
func TestEmptyChainTransparent(t *testing.T) {
	sig := testSignal(512, 3)
	check := func(name string, out []complex128) {
		t.Helper()
		if len(out) != len(sig) {
			t.Fatalf("%s: %d samples, want %d", name, len(out), len(sig))
		}
		for i := range out {
			if out[i] != sig[i] {
				t.Fatalf("%s: sample %d = %v, want %v (not bit-transparent)", name, i, out[i], sig[i])
			}
		}
	}

	var nilChain *Chain
	check("nil chain", nilChain.ProcessAppend(nil, sig))
	check("empty chain", NewChain().ProcessAppend(nil, sig))

	// Identity-parameter stages: zero CFO/phase rotates by exactly 1+0i,
	// zero IQ imbalance and DC offset are exact no-ops, and a
	// zero-probability dropout never fires. (A zero-ppm clock stage is
	// sample-exact too but trails the stream by its 2-sample lookahead,
	// so it is checked separately below; ParseSpec builds no clock stage
	// for ppm=0, so spec-built identity chains are fully transparent.)
	identity := NewChain(
		newCFO(0, 0),
		newIQImbalance(0, 0),
		newDCOffset(0, 0),
		newDropout(0, 10, 1),
	)
	check("identity chain", identity.ProcessAppend(nil, sig))

	// Zero-ppm clock: every emitted sample hits an input sample with
	// mu = 0 exactly, so the output is a bit-exact copy minus the
	// interpolator's pending lookahead tail.
	clk := newClock(0, 0, 20e6)
	out := clk.ProcessAppend(nil, sig)
	if len(out) != len(sig)-2 {
		t.Fatalf("zero-ppm clock emitted %d samples, want %d", len(out), len(sig)-2)
	}
	for i := range out {
		if out[i] != sig[i] {
			t.Fatalf("zero-ppm clock: sample %d = %v, want %v", i, out[i], sig[i])
		}
	}
}

// TestCFOStage checks the oscillator against the closed form e^{j(2πfn+φ)}.
func TestCFOStage(t *testing.T) {
	const f, phi = 3.7e-4, 0.9
	st := newCFO(f, phi)
	n := 3000
	sig := make([]complex128, n)
	for i := range sig {
		sig[i] = 1
	}
	out := st.ProcessAppend(nil, sig)
	for i := range out {
		want := cmplx.Exp(complex(0, 2*math.Pi*f*float64(i)+phi))
		if cmplx.Abs(out[i]-want) > 1e-9 {
			t.Fatalf("sample %d: %v, want %v", i, out[i], want)
		}
	}
}

// TestClockStageResamplingRate: a +ppm receiver clock must emit ~(1+ppm·1e-6)
// samples per input sample.
func TestClockStageResamplingRate(t *testing.T) {
	const ppm = 200.0
	st := newClock(ppm, 0, 20e6)
	n := 100000
	sig := testSignal(n, 4)
	out := st.ProcessAppend(nil, sig)
	want := float64(n) * (1 + ppm*1e-6)
	if math.Abs(float64(len(out))-want) > 4 {
		t.Fatalf("emitted %d samples for %d inputs, want ~%.0f", len(out), n, want)
	}
}

// TestClockStageInterpolation: resampling a pure complex exponential must
// reproduce the delayed exponential to cubic-interpolator accuracy.
func TestClockStageInterpolation(t *testing.T) {
	const ppm = 100.0
	const f = 0.01 // cycles/sample, well below Nyquist for cubic accuracy
	st := newClock(ppm, 0, 20e6)
	n := 20000
	sig := make([]complex128, n)
	for i := range sig {
		sig[i] = cmplx.Exp(complex(0, 2*math.Pi*f*float64(i)))
	}
	out := st.ProcessAppend(nil, sig)
	step := 1 / (1 + ppm*1e-6)
	for i := 0; i < len(out); i++ {
		// Output sample i reads input position i·step (pos starts at 1
		// with one zero history sample prepended, so input index i·step).
		pos := float64(i) * step
		want := cmplx.Exp(complex(0, 2*math.Pi*f*pos))
		if cmplx.Abs(out[i]-want) > 1e-4 {
			t.Fatalf("sample %d: %v, want %v (|err| %g)", i, out[i], want, cmplx.Abs(out[i]-want))
		}
	}
}

// TestQuantizer covers rounding, clipping and NaN handling.
func TestQuantizer(t *testing.T) {
	st := newQuantizer(3, 1.0) // delta = 0.25
	cases := []struct{ in, want float64 }{
		{0, 0},
		{0.13, 0.25},
		{0.12, 0},
		{-0.88, -1.0}, // rounds to -0.75? -0.88/0.25 = -3.52 → -4 → -1.0
		{2.5, 1.0},    // clipped
		{-3, -1.0},
		{math.NaN(), 0},
		{math.Inf(1), 1.0},
		{math.Inf(-1), -1.0},
	}
	for _, c := range cases {
		out := st.ProcessAppend(nil, []complex128{complex(c.in, c.in)})
		if real(out[0]) != c.want || imag(out[0]) != c.want {
			t.Errorf("quant(%v) = %v, want %v", c.in, out[0], complex(c.want, c.want))
		}
	}
}

// TestMultipathAgainstNaiveConvolution cross-checks the delay line against
// direct convolution.
func TestMultipathAgainstNaiveConvolution(t *testing.T) {
	taps := []complex128{complex(0.9, 0.1), 0, complex(-0.3, 0.2), complex(0.1, 0)}
	st := newMultipath(taps)
	sig := testSignal(300, 5)
	out := st.ProcessAppend(nil, sig)
	for n := range sig {
		var want complex128
		for d, g := range taps {
			if n-d >= 0 {
				want += g * sig[n-d]
			}
		}
		if cmplx.Abs(out[n]-want) > 1e-12 {
			t.Fatalf("sample %d: %v, want %v", n, out[n], want)
		}
	}
}

// TestDropoutDeterminismAndCounter: same seed ⇒ same zeroed positions, and
// the dropped counter matches the number of zeroed samples.
func TestDropoutDeterminismAndCounter(t *testing.T) {
	sig := testSignal(50000, 6)
	a := newDropout(0.002, 30, 99)
	b := newDropout(0.002, 30, 99)
	outA := a.ProcessAppend(nil, sig)
	outB := b.ProcessAppend(nil, sig)
	zeroed := 0
	for i := range outA {
		if outA[i] != outB[i] {
			t.Fatalf("same seed diverged at sample %d", i)
		}
		if outA[i] == 0 && sig[i] != 0 {
			zeroed++
		}
	}
	if a.dropped == 0 {
		t.Fatal("dropout with p=0.002 over 50k samples zeroed nothing")
	}
	if a.dropped != int64(zeroed) {
		t.Fatalf("dropped counter %d, observed %d zeroed samples", a.dropped, zeroed)
	}
	// Reset must reproduce the identical stream.
	a.Reset()
	outR := a.ProcessAppend(nil, sig)
	for i := range outR {
		if outR[i] != outA[i] {
			t.Fatalf("after Reset, sample %d diverged", i)
		}
	}
}

// TestPhaseNoiseSeedDeterminism: same seed ⇒ bit-identical output; different
// seed ⇒ different output.
func TestPhaseNoiseSeedDeterminism(t *testing.T) {
	sig := testSignal(4096, 7)
	a := newPhaseNoise(0.02, 5).ProcessAppend(nil, sig)
	b := newPhaseNoise(0.02, 5).ProcessAppend(nil, sig)
	c := newPhaseNoise(0.02, 6).ProcessAppend(nil, sig)
	same := true
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d", i)
		}
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical phase noise")
	}
}

// TestIQImbalancePower: gain imbalance must split symmetrically — the I rail
// gains what the Q rail loses.
func TestIQImbalance(t *testing.T) {
	st := newIQImbalance(1.0, 0) // 1 dB imbalance, no phase error
	out := st.ProcessAppend(nil, []complex128{complex(1, 1)})
	gi, gq := real(out[0]), imag(out[0])
	if math.Abs(20*math.Log10(gi/gq)-1.0) > 1e-9 {
		t.Fatalf("I/Q gain ratio %.6f dB, want 1.0", 20*math.Log10(gi/gq))
	}
	if math.Abs(gi*gq-1) > 1e-12 {
		t.Fatalf("gain split not symmetric: gi·gq = %v", gi*gq)
	}
}

// TestChainObsRecording: metrics must see the samples without perturbing
// the output stream.
func TestChainObsRecording(t *testing.T) {
	sig := testSignal(2048, 8)
	plain := NewChain(allStages()...)
	want := plain.ProcessAppend(nil, sig)

	p := obs.NewPipeline()
	observed := NewChain(allStages()...)
	observed.SetObserver(&p.Impair)
	got := observed.ProcessAppend(nil, sig)

	if len(got) != len(want) {
		t.Fatalf("observed chain emitted %d samples, plain %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("observation changed sample %d", i)
		}
	}
	if p.Impair.In.Load() != int64(len(sig)) {
		t.Errorf("impair.in = %d, want %d", p.Impair.In.Load(), len(sig))
	}
	if p.Impair.Out.Load() != int64(len(got)) {
		t.Errorf("impair.out = %d, want %d", p.Impair.Out.Load(), len(got))
	}
	if p.Impair.Stage[KindCFO].Load() == 0 {
		t.Error("impair.stage.cfo counter did not advance")
	}
	if p.Impair.ChainNS.Count() != 1 {
		t.Errorf("impair.chain_ns count = %d, want 1", p.Impair.ChainNS.Count())
	}
	// Snapshot must expose the per-stage counters under the documented names.
	snap := p.Snapshot()
	found := false
	for _, c := range snap.Counters {
		if c.Name == "impair.stage.cfo" && c.Value > 0 {
			found = true
		}
	}
	if !found {
		t.Error("snapshot has no positive impair.stage.cfo counter")
	}
}

// TestChainZeroAlloc: every stage and the whole chain must be allocation-free
// in steady state, with and without an observer attached.
func TestChainZeroAlloc(t *testing.T) {
	sig := testSignal(1024, 9)
	// dst sized generously: the clock stage emits a fraction more samples.
	dst := make([]complex128, 0, 2*len(sig))

	for _, st := range allStages() {
		st := st
		alloctest.AssertZero(t, st.Kind().String(), func() {
			dst = st.ProcessAppend(dst[:0], sig)
		})
	}

	chain := NewChain(allStages()...)
	alloctest.AssertZero(t, "chain", func() {
		dst = chain.ProcessAppend(dst[:0], sig)
	})

	p := obs.NewPipeline()
	chain.SetObserver(&p.Impair)
	alloctest.AssertZero(t, "chain+obs", func() {
		dst = chain.ProcessAppend(dst[:0], sig)
	})

	alloctest.AssertZero(t, "chain.Process", func() {
		_ = chain.Process(sig)
	})
}
