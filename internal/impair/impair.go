// Package impair is a composable, seeded, deterministic chain of
// sample-domain RF impairments: the difference between the paper's real
// USRP N210 front ends and this repository's ideal AWGN medium. The
// prototype's receiver loops (internal/tracking) were constantly fighting
// carrier frequency offset, sample-clock drift, oscillator phase noise, IQ
// imbalance, DC offset and ADC quantization; the virtual testbed models
// none of them, so those loops are never truly exercised end-to-end. This
// package closes that gap.
//
// Each impairment is a streaming Stage: it consumes one block of complex
// baseband samples, appends the impaired samples to a caller-provided
// buffer, and carries its state (oscillator phase, resampler position,
// delay-line history, dropout run length) across blocks, so a long capture
// processed in arbitrary block sizes is bit-identical to the same capture
// processed at once. All randomness (phase noise, dropouts) comes from
// internal/prng seeded at construction: the same seed always produces the
// same impaired waveform, which is what makes golden-vector and property
// testing of the receiver possible at all.
//
// Stages are assembled into a Chain, usually via the spec-string parser in
// spec.go (e.g. "cfo=2e3,ppm=20,phnoise=-80,quant=8" — see ParseSpec for
// the grammar). A nil or empty chain is bit-transparent. Steady-state
// processing performs zero heap allocations (//bhss:hotpath, enforced by
// the hotpathalloc analyzer and the AllocsPerRun tests).
package impair

import (
	"math"

	"bhss/internal/prng"
)

// Stage is one streaming sample-domain impairment.
type Stage interface {
	// Kind identifies the stage for spec strings and obs counters.
	Kind() Kind
	// ProcessAppend consumes src, appends the impaired samples to dst and
	// returns the extended slice. Output length may differ from the input
	// length (resampling, never by more than a few samples per block).
	// State persists across calls; processing a stream in blocks of any
	// size yields the same samples as processing it at once.
	ProcessAppend(dst, src []complex128) []complex128
	// Reset restores the freshly-constructed (seeded) state.
	Reset()
}

// Kind enumerates the impairment stages in their fixed chain order: the
// physical path runs multipath (the medium), then the receiver front end —
// LO offset, LO phase noise, ADC clock, analog IQ path, DC, quantization —
// and finally transport dropouts.
type Kind int

const (
	KindMultipath Kind = iota
	KindCFO
	KindPhaseNoise
	KindClock
	KindIQImbalance
	KindDCOffset
	KindQuantizer
	KindDropout
	numKinds
)

// NumKinds is the number of defined impairment kinds.
const NumKinds = int(numKinds)

var kindNames = [numKinds]string{
	"mpath", "cfo", "phnoise", "clock", "iq", "dc", "quant", "drop",
}

// String returns the stage's spec key ("cfo", "quant", ...).
func (k Kind) String() string {
	if k >= 0 && int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// cfoStage rotates the stream by a fixed carrier frequency/phase offset,
// the LO mismatch between free-running oscillators. Same recurrence as
// dsp.Mix (periodically renormalized complex oscillator) but with the
// oscillator state persisted across blocks.
type cfoStage struct {
	step  complex128 // e^{j2πf}
	init  complex128 // e^{jφ0}
	osc   complex128 // current oscillator value
	renorm int
}

func newCFO(cyclesPerSample, phase float64) *cfoStage {
	s := &cfoStage{
		step: complex(math.Cos(2*math.Pi*cyclesPerSample), math.Sin(2*math.Pi*cyclesPerSample)),
		init: complex(math.Cos(phase), math.Sin(phase)),
	}
	s.Reset()
	return s
}

func (s *cfoStage) Kind() Kind { return KindCFO }

func (s *cfoStage) Reset() { s.osc = s.init; s.renorm = 0 }

//bhss:hotpath
func (s *cfoStage) ProcessAppend(dst, src []complex128) []complex128 {
	osc, step := s.osc, s.step
	n := s.renorm
	for _, v := range src {
		dst = append(dst, v*osc)
		osc *= step
		n++
		if n&1023 == 0 {
			mag := math.Hypot(real(osc), imag(osc))
			osc = complex(real(osc)/mag, imag(osc)/mag)
		}
	}
	s.osc, s.renorm = osc, n
	return dst
}

// phaseNoiseStage applies Wiener (random-walk) phase noise: the discrete
// model of a free-running oscillator's 1/f² phase-noise skirt. The
// per-sample increment is a zero-mean Gaussian of standard deviation sigma
// radians; see SpecConfig.PhaseNoiseDBc for the dBc/Hz mapping.
type phaseNoiseStage struct {
	sigma float64
	seed  uint64
	src   *prng.Source
	phase float64
}

func newPhaseNoise(sigma float64, seed uint64) *phaseNoiseStage {
	return &phaseNoiseStage{sigma: sigma, seed: seed, src: prng.New(seed)}
}

func (s *phaseNoiseStage) Kind() Kind { return KindPhaseNoise }

func (s *phaseNoiseStage) Reset() { s.src.Reseed(s.seed); s.phase = 0 }

//bhss:hotpath
func (s *phaseNoiseStage) ProcessAppend(dst, src []complex128) []complex128 {
	phase := s.phase
	for _, v := range src {
		phase += s.sigma * s.src.NormFloat64()
		if phase > math.Pi {
			phase -= 2 * math.Pi
		} else if phase < -math.Pi {
			phase += 2 * math.Pi
		}
		rot := complex(math.Cos(phase), math.Sin(phase))
		dst = append(dst, v*rot)
	}
	s.phase = phase
	return dst
}

// iqImbalanceStage models the receiver's analog IQ demodulator: a gain
// mismatch between the I and Q rails plus a quadrature phase error.
// I' = gI·I, Q' = gQ·(Q·cosφ + I·sinφ) with gI/gQ split symmetrically
// around unity.
type iqImbalanceStage struct {
	gi, gq, cosP, sinP float64
}

func newIQImbalance(gainDB, phaseRad float64) *iqImbalanceStage {
	return &iqImbalanceStage{
		gi:   math.Pow(10, gainDB/40),
		gq:   math.Pow(10, -gainDB/40),
		cosP: math.Cos(phaseRad),
		sinP: math.Sin(phaseRad),
	}
}

func (s *iqImbalanceStage) Kind() Kind { return KindIQImbalance }

func (s *iqImbalanceStage) Reset() {}

//bhss:hotpath
func (s *iqImbalanceStage) ProcessAppend(dst, src []complex128) []complex128 {
	for _, v := range src {
		i, q := real(v), imag(v)
		dst = append(dst, complex(s.gi*i, s.gq*(q*s.cosP+i*s.sinP)))
	}
	return dst
}

// dcOffsetStage adds a constant complex offset (LO leakage / ADC bias).
type dcOffsetStage struct {
	dc complex128
}

func newDCOffset(re, im float64) *dcOffsetStage {
	return &dcOffsetStage{dc: complex(re, im)}
}

func (s *dcOffsetStage) Kind() Kind { return KindDCOffset }

func (s *dcOffsetStage) Reset() {}

//bhss:hotpath
func (s *dcOffsetStage) ProcessAppend(dst, src []complex128) []complex128 {
	for _, v := range src {
		dst = append(dst, v+s.dc)
	}
	return dst
}

// quantizerStage is a mid-tread uniform ADC model: each rail is rounded to
// the nearest of 2^bits levels spanning [-clip, +clip] and clipped at full
// scale, reproducing both quantization noise and front-end saturation.
type quantizerStage struct {
	delta float64 // one LSB
	clip  float64 // full-scale amplitude
}

func newQuantizer(bits int, clip float64) *quantizerStage {
	return &quantizerStage{delta: clip * math.Pow(2, -float64(bits-1)), clip: clip}
}

func (s *quantizerStage) Kind() Kind { return KindQuantizer }

func (s *quantizerStage) Reset() {}

func (s *quantizerStage) quant(v float64) float64 {
	if math.IsNaN(v) {
		return 0 // a real ADC emits some code; zero keeps downstream finite
	}
	if v > s.clip {
		return s.clip
	}
	if v < -s.clip {
		return -s.clip
	}
	return math.Round(v/s.delta) * s.delta
}

//bhss:hotpath
func (s *quantizerStage) ProcessAppend(dst, src []complex128) []complex128 {
	for _, v := range src {
		dst = append(dst, complex(s.quant(real(v)), s.quant(imag(v))))
	}
	return dst
}

// multipathStage is a static FIR channel: a direct-form delay line with
// sparse complex taps (delay in samples, complex gain). The direct path is
// tap 0 unless the profile overrides it.
type multipathStage struct {
	taps []complex128 // dense impulse response, taps[0] = direct path
	//bhss:scratch
	hist []complex128 // last len(taps)-1 input samples, newest last
}

// newMultipath builds the stage from a dense impulse response (taps[d] is
// the gain at delay d). The caller guarantees len(taps) >= 1.
func newMultipath(taps []complex128) *multipathStage {
	return &multipathStage{taps: taps, hist: make([]complex128, len(taps)-1)}
}

func (s *multipathStage) Kind() Kind { return KindMultipath }

func (s *multipathStage) Reset() {
	for i := range s.hist {
		s.hist[i] = 0
	}
}

//bhss:hotpath
func (s *multipathStage) ProcessAppend(dst, src []complex128) []complex128 {
	h := len(s.hist)
	for n := range src {
		var acc complex128
		for d, g := range s.taps {
			if g == 0 {
				continue
			}
			j := n - d
			var x complex128
			if j >= 0 {
				x = src[j]
			} else if h+j >= 0 {
				x = s.hist[h+j]
			}
			acc += g * x
		}
		dst = append(dst, acc)
	}
	// Slide the history: keep the last h input samples.
	if len(src) >= h {
		copy(s.hist, src[len(src)-h:])
	} else {
		copy(s.hist, s.hist[len(src):])
		copy(s.hist[h-len(src):], src)
	}
	return dst
}

// dropoutStage zeroes bursts of samples: receiver overflow, AGC recovery
// after a blocker, or transport loss. Dropout starts are a per-sample
// Bernoulli trial; lengths are drawn from an exponential of the given mean
// (minimum one sample). Both draws come from the seeded source, so dropout
// positions are reproducible.
type dropoutStage struct {
	prob    float64 // per-sample probability of starting a dropout
	meanLen float64 // mean dropout length in samples
	seed    uint64
	src     *prng.Source
	left    int   // samples remaining in the current dropout
	dropped int64 // total samples zeroed since construction/Reset
}

func newDropout(prob, meanLen float64, seed uint64) *dropoutStage {
	return &dropoutStage{prob: prob, meanLen: meanLen, seed: seed, src: prng.New(seed)}
}

func (s *dropoutStage) Kind() Kind { return KindDropout }

func (s *dropoutStage) Reset() { s.src.Reseed(s.seed); s.left = 0; s.dropped = 0 }

//bhss:hotpath
func (s *dropoutStage) ProcessAppend(dst, src []complex128) []complex128 {
	for _, v := range src {
		if s.left == 0 && s.src.Float64() < s.prob {
			u := s.src.Float64()
			n := int(-s.meanLen * math.Log(1-u))
			if n < 1 {
				n = 1
			}
			s.left = n
		}
		if s.left > 0 {
			s.left--
			s.dropped++
			dst = append(dst, 0)
			continue
		}
		dst = append(dst, v)
	}
	return dst
}
