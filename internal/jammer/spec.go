package jammer

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"bhss/internal/hop"
)

// Spec grammar (documented in README.md and EXPERIMENTS.md), in the
// internal/impair ParseSpec style: one comma-separated key=value list names
// any adversary in the zoo, so every jammer is reachable from the
// bhssjam/bhssbench command lines and the arms-race sweep.
//
//	spec    := entry { "," entry }
//	entry   := key "=" value
//	key     := jam | bw | freq | span | period | pattern | dwell
//	         | delay | sense | tones | memory | duty | power | seed
//
//	jam=<kind>       required: bandlimited | tone | sweep | hopping
//	                 | reactive | multitone | adaptive
//	bw=<MHz>         two-sided bandwidth (bandlimited; default 2.5)
//	freq=<MHz>       tone center frequency (tone; default 0)
//	span=<MHz>       chirp span (sweep; default 10)
//	period=<samples> chirp period (sweep; default 4096)
//	pattern=<name>   hop distribution over the paper's bandwidth set:
//	                 linear | exponential | parabolic (hopping;
//	                 default parabolic)
//	dwell=<samples>  samples per hop (hopping; default 4096)
//	delay=<samples>  reaction delay τ (followers; default 512)
//	sense=<samples>  sense window, power of two >= 64 (followers;
//	                 default 512)
//	tones=<n>        tone count (multitone; default 4, max sense/8)
//	memory=<0|1>     carry tuning across bursts (followers; default 0,
//	                 except adaptive: 1)
//	duty=<p>[:<len>] duty cycle: on-fraction p in (0,1] over a period of
//	                 len samples (default 4096). Non-follower kinds only —
//	                 gating a sensing adversary would break its Jam
//	                 alignment. duty=1 is identity and omitted.
//	power=<linear>   average transmit power (default 1)
//	seed=<uint64>    seed override (default: the seed passed to Build)
//
// Frequencies and bandwidths are in the same unit as Build's sample rate
// (MHz against 20 MS/s, the repo convention). Unknown keys, keys that do
// not apply to the kind, malformed numbers and out-of-range values are
// errors. String renders the canonical form — fixed key order, defaults
// omitted — and ParseSpec(String()) reproduces the config exactly (the
// round-trip property FuzzParseJamSpec pins).

// Spec limits: a hostile spec must not make Build allocate unbounded
// memory or spin a degenerate emitter.
const (
	maxSpecSamples = 1 << 24 // delay, dwell, period, sense
	maxSpecPower   = 1e12
	maxSpecMHz     = 1e6
	minSenseWindow = 64
)

// Kind defaults, shared by ParseSpec (filling) and String (omitting).
const (
	defaultBWMHz   = 2.5
	defaultSpanMHz = 10.0
	defaultPeriod  = 4096
	defaultDwell   = 4096
	defaultDelay   = 512
	defaultSense   = 512
	defaultTones   = 4
	defaultPattern = "parabolic"
)

// SpecConfig is the parsed form of a jammer spec string.
type SpecConfig struct {
	// Kind names the adversary: bandlimited, tone, sweep, hopping,
	// reactive, multitone or adaptive.
	Kind string

	BWMHz   float64 // bandlimited
	FreqMHz float64 // tone
	SpanMHz float64 // sweep
	Period  int     // sweep
	Pattern string  // hopping
	Dwell   int     // hopping

	Delay  int  // followers
	Sense  int  // followers
	Tones  int  // multitone
	Memory bool // followers

	// Duty gates the emitter: on-fraction DutyOn over DutyPeriod samples.
	// DutyOn == 1 means no gating.
	DutyOn     float64
	DutyPeriod int

	Power float64

	Seed    uint64
	HasSeed bool
}

// followerKind reports whether the kind is a sensing (TxAware) adversary.
func followerKind(kind string) bool {
	return kind == "reactive" || kind == "multitone" || kind == "adaptive"
}

// defaultMemory is the kind's Memory default: the adaptive jammer keeps its
// learned mixture across bursts by construction.
func defaultMemory(kind string) bool { return kind == "adaptive" }

// specKeyAllowed lists which keys apply to which kind (jam, duty, power and
// seed apply everywhere except duty on followers).
func specKeyAllowed(kind, key string) bool {
	switch key {
	case "jam", "power", "seed":
		return true
	case "duty":
		return !followerKind(kind)
	case "bw":
		return kind == "bandlimited"
	case "freq":
		return kind == "tone"
	case "span", "period":
		return kind == "sweep"
	case "pattern", "dwell":
		return kind == "hopping"
	case "delay", "sense", "memory":
		return followerKind(kind)
	case "tones":
		return kind == "multitone"
	}
	return false
}

// ParseSpec parses a jammer spec string, filling kind defaults so the
// returned config is fully resolved. It never panics, whatever the input.
func ParseSpec(spec string) (SpecConfig, error) {
	var c SpecConfig
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return c, fmt.Errorf("jammer: empty spec (need jam=<kind>)")
	}
	entries := strings.Split(spec, ",")
	// The kind gates which keys are legal, so resolve it first wherever it
	// appears in the list.
	seenJam := false
	for _, entry := range entries {
		key, val, ok := strings.Cut(entry, "=")
		if ok && strings.TrimSpace(key) == "jam" {
			if seenJam {
				return c, fmt.Errorf("jammer: duplicate jam= key")
			}
			seenJam = true
			c.Kind = strings.TrimSpace(val)
		}
	}
	switch c.Kind {
	case "bandlimited", "tone", "sweep", "hopping", "reactive", "multitone", "adaptive":
	case "":
		if !seenJam {
			return c, fmt.Errorf("jammer: spec %q missing jam=<kind>", spec)
		}
		return c, fmt.Errorf("jammer: empty jam= kind")
	default:
		return c, fmt.Errorf("jammer: unknown kind %q", c.Kind)
	}
	// Kind defaults; explicit entries below overwrite them.
	c.BWMHz = defaultBWMHz
	c.SpanMHz = defaultSpanMHz
	c.Period = defaultPeriod
	c.Pattern = defaultPattern
	c.Dwell = defaultDwell
	c.Delay = defaultDelay
	c.Sense = defaultSense
	c.Tones = defaultTones
	c.Memory = defaultMemory(c.Kind)
	c.DutyOn = 1
	c.DutyPeriod = defaultPeriod
	c.Power = 1

	seen := map[string]bool{}
	for _, entry := range entries {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			return SpecConfig{}, fmt.Errorf("jammer: empty entry in spec %q", spec)
		}
		key, val, ok := strings.Cut(entry, "=")
		if !ok {
			return SpecConfig{}, fmt.Errorf("jammer: entry %q is not key=value", entry)
		}
		key = strings.TrimSpace(key)
		val = strings.TrimSpace(val)
		if key != "jam" {
			if !specKeyAllowed(c.Kind, key) {
				if specKeyAllowed("bandlimited", key) || specKeyAllowed("sweep", key) ||
					specKeyAllowed("tone", key) || specKeyAllowed("hopping", key) ||
					specKeyAllowed("multitone", key) {
					return SpecConfig{}, fmt.Errorf("jammer: key %q does not apply to kind %q", key, c.Kind)
				}
				return SpecConfig{}, fmt.Errorf("jammer: unknown key %q", key)
			}
			if seen[key] {
				return SpecConfig{}, fmt.Errorf("jammer: duplicate key %q", key)
			}
			seen[key] = true
		}
		var err error
		switch key {
		case "jam": // already resolved
		case "bw":
			c.BWMHz, err = parsePositiveMHz(key, val)
		case "freq":
			c.FreqMHz, err = parseFiniteMHz(key, val)
		case "span":
			c.SpanMHz, err = parsePositiveMHz(key, val)
		case "period":
			c.Period, err = parseSamples(key, val, 2)
		case "pattern":
			switch val {
			case "linear", "exponential", "parabolic":
				c.Pattern = val
			default:
				err = fmt.Errorf("jammer: pattern=%q is not linear, exponential or parabolic", val)
			}
		case "dwell":
			c.Dwell, err = parseSamples(key, val, 1)
		case "delay":
			c.Delay, err = parseSamples(key, val, 0)
		case "sense":
			c.Sense, err = parseSamples(key, val, minSenseWindow)
			if err == nil && c.Sense&(c.Sense-1) != 0 {
				err = fmt.Errorf("jammer: sense=%d must be a power of two", c.Sense)
			}
		case "tones":
			c.Tones, err = parseSamples(key, val, 1)
		case "memory":
			c.Memory, err = strconv.ParseBool(val)
			if err != nil {
				err = fmt.Errorf("jammer: memory=%q is not a boolean", val)
			}
		case "duty":
			c.DutyOn, c.DutyPeriod, err = parseDuty(val)
			if err == nil && c.DutyOn == 1 {
				// duty=1 is identity: normalize the period away so the
				// canonical form (which omits the key) round-trips.
				c.DutyPeriod = defaultPeriod
			}
		case "power":
			var p float64
			p, err = strconv.ParseFloat(val, 64)
			if err != nil || math.IsNaN(p) || math.IsInf(p, 0) || p < 0 || p > maxSpecPower {
				err = fmt.Errorf("jammer: power=%q out of [0, %g]", val, maxSpecPower)
			} else {
				c.Power = p
			}
		case "seed":
			c.Seed, err = strconv.ParseUint(val, 10, 64)
			if err != nil {
				err = fmt.Errorf("jammer: seed=%q is not a uint64", val)
			} else {
				c.HasSeed = true
			}
		}
		if err != nil {
			return SpecConfig{}, err
		}
	}
	if c.Kind == "multitone" && c.Tones > c.Sense/8 {
		return SpecConfig{}, fmt.Errorf("jammer: tones=%d exceeds sense resolution (max %d for sense=%d)",
			c.Tones, c.Sense/8, c.Sense)
	}
	return c, nil
}

func parsePositiveMHz(key, val string) (float64, error) {
	f, err := strconv.ParseFloat(val, 64)
	if err != nil || math.IsNaN(f) || math.IsInf(f, 0) || f <= 0 || f > maxSpecMHz {
		return 0, fmt.Errorf("jammer: %s=%q out of (0, %g]", key, val, maxSpecMHz)
	}
	return f, nil
}

func parseFiniteMHz(key, val string) (float64, error) {
	f, err := strconv.ParseFloat(val, 64)
	if err != nil || math.IsNaN(f) || math.IsInf(f, 0) || math.Abs(f) > maxSpecMHz {
		return 0, fmt.Errorf("jammer: %s=%q exceeds ±%g", key, val, maxSpecMHz)
	}
	return f, nil
}

func parseSamples(key, val string, min int) (int, error) {
	n, err := strconv.ParseInt(val, 10, 64)
	if err != nil || n < int64(min) || n > maxSpecSamples {
		return 0, fmt.Errorf("jammer: %s=%q out of [%d, %d]", key, val, min, maxSpecSamples)
	}
	return int(n), nil
}

// parseDuty parses "p" or "p:period": on-fraction in (0, 1], period >= 2.
func parseDuty(val string) (on float64, period int, err error) {
	first, second, has := strings.Cut(val, ":")
	on, err = strconv.ParseFloat(first, 64)
	if err != nil || math.IsNaN(on) || on <= 0 || on > 1 {
		return 0, 0, fmt.Errorf("jammer: duty=%q on-fraction out of (0, 1]", val)
	}
	period = defaultPeriod
	if has {
		period, err = parseSamples("duty period", second, 2)
		if err != nil {
			return 0, 0, err
		}
	}
	return on, period, nil
}

// String renders the config in canonical spec form: jam= first, fixed key
// order, kind defaults omitted. ParseSpec(String()) reproduces the config.
func (c SpecConfig) String() string {
	var b strings.Builder
	add := func(key, val string) {
		if b.Len() > 0 {
			b.WriteByte(',')
		}
		b.WriteString(key)
		b.WriteByte('=')
		b.WriteString(val)
	}
	g := func(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }
	add("jam", c.Kind)
	switch c.Kind {
	case "bandlimited":
		if c.BWMHz != defaultBWMHz {
			add("bw", g(c.BWMHz))
		}
	case "tone":
		if c.FreqMHz != 0 {
			add("freq", g(c.FreqMHz))
		}
	case "sweep":
		if c.SpanMHz != defaultSpanMHz {
			add("span", g(c.SpanMHz))
		}
		if c.Period != defaultPeriod {
			add("period", strconv.Itoa(c.Period))
		}
	case "hopping":
		if c.Pattern != defaultPattern {
			add("pattern", c.Pattern)
		}
		if c.Dwell != defaultDwell {
			add("dwell", strconv.Itoa(c.Dwell))
		}
	}
	if followerKind(c.Kind) {
		if c.Delay != defaultDelay {
			add("delay", strconv.Itoa(c.Delay))
		}
		if c.Sense != defaultSense {
			add("sense", strconv.Itoa(c.Sense))
		}
		if c.Kind == "multitone" && c.Tones != defaultTones {
			add("tones", strconv.Itoa(c.Tones))
		}
		if c.Memory != defaultMemory(c.Kind) {
			if c.Memory {
				add("memory", "1")
			} else {
				add("memory", "0")
			}
		}
	} else if c.DutyOn != 1 {
		if c.DutyPeriod != defaultPeriod {
			add("duty", g(c.DutyOn)+":"+strconv.Itoa(c.DutyPeriod))
		} else {
			add("duty", g(c.DutyOn))
		}
	}
	if c.Power != 1 {
		add("power", g(c.Power))
	}
	if c.HasSeed {
		add("seed", strconv.FormatUint(c.Seed, 10))
	}
	return b.String()
}

// Build constructs the configured jammer for a medium running at
// sampleRateMHz (the repo convention: 20 = 20 MS/s). The spec's seed= key,
// when present, overrides the seed argument. Follower kinds return a
// TxAware adversary; callers that only Emit get its hears-silence behavior.
func (c SpecConfig) Build(sampleRateMHz float64, seed uint64) (Source, error) {
	if sampleRateMHz <= 0 || math.IsNaN(sampleRateMHz) || math.IsInf(sampleRateMHz, 0) {
		return nil, fmt.Errorf("jammer: sample rate %v MHz must be positive and finite", sampleRateMHz)
	}
	if c.HasSeed {
		seed = c.Seed
	}
	var src Source
	var err error
	switch c.Kind {
	case "bandlimited":
		if c.BWMHz > sampleRateMHz {
			return nil, fmt.Errorf("jammer: bw=%g MHz exceeds sample rate %g", c.BWMHz, sampleRateMHz)
		}
		src, err = NewBandlimited(c.BWMHz/sampleRateMHz, c.Power, seed)
	case "tone":
		src, err = NewTone(c.FreqMHz/sampleRateMHz, c.Power)
	case "sweep":
		if c.SpanMHz > sampleRateMHz {
			return nil, fmt.Errorf("jammer: span=%g MHz exceeds sample rate %g", c.SpanMHz, sampleRateMHz)
		}
		src, err = NewSweep(c.SpanMHz/sampleRateMHz, c.Period, c.Power)
	case "hopping":
		var p hop.Pattern
		switch c.Pattern {
		case "linear":
			p = hop.Linear
		case "exponential":
			p = hop.Exponential
		case "parabolic":
			p = hop.Parabolic
		}
		var dist hop.Distribution
		dist, err = hop.NewDistribution(p, hop.DefaultBandwidths())
		if err != nil {
			return nil, err
		}
		src, err = NewHopping(dist, sampleRateMHz, c.Dwell, c.Power, seed)
	case "reactive":
		var r *Reactive
		r, err = NewReactive(c.Delay, c.Sense, c.Power, seed)
		if err == nil {
			r.Memory = c.Memory
			src = r
		}
	case "multitone":
		var m *Multitone
		m, err = NewMultitone(c.Tones, c.Delay, c.Sense, c.Power, seed)
		if err == nil {
			m.Memory = c.Memory
			src = m
		}
	case "adaptive":
		var a *Adaptive
		a, err = NewAdaptive(c.Delay, c.Sense, c.Power, seed)
		if err == nil {
			a.Memory = c.Memory
			src = a
		}
	default:
		return nil, fmt.Errorf("jammer: spec has no kind (use ParseSpec)")
	}
	if err != nil {
		return nil, err
	}
	if c.DutyOn < 1 && !followerKind(c.Kind) {
		return NewPulsed(src, c.DutyOn, c.DutyPeriod)
	}
	return src, nil
}

// NewFromSpec parses spec and builds the jammer in one step; the common
// entry point for the cmd tools' -jam flags.
func NewFromSpec(spec string, sampleRateMHz float64, seed uint64) (Source, error) {
	cfg, err := ParseSpec(spec)
	if err != nil {
		return nil, err
	}
	return cfg.Build(sampleRateMHz, seed)
}
