// Package jammer implements the attacker models of §2 of the paper: an
// energy-unconstrained but power-budgeted adversary that emits additive
// white Gaussian noise of an arbitrary bandwidth. Included are the
// fixed-bandwidth AWGN jammer used for Figures 13/14, the bandwidth-hopping
// jammer of Table 2 (reusing the defender's hop distributions), tone, sweep
// and pulsed jammers as auxiliary interferers, and the reactive jammer that
// senses the transmitted bandwidth and answers with a matched waveform after
// a bounded reaction time τ — the threat BHSS is designed to defeat.
//
// All frequencies and bandwidths are normalized to the sampling rate
// (cycles per sample; two-sided band [−bw/2, +bw/2]).
package jammer

import (
	"fmt"
	"math"

	"bhss/internal/dsp"
	"bhss/internal/hop"
	"bhss/internal/prng"
)

// Source produces jamming samples with a fixed average power budget.
// Implementations are streaming: consecutive Emit calls produce a
// continuous waveform.
type Source interface {
	// Emit returns the next n jamming samples.
	Emit(n int) []complex128
	// Power returns the configured average transmit power.
	Power() float64
	// Reset rewinds the jammer to its exact construction state, so a
	// replayed call sequence reproduces the output stream bit-for-bit.
	Reset()
}

// Bandlimited is the paper's canonical jammer: white Gaussian noise
// band-limited to a configurable bandwidth at a configured total power.
type Bandlimited struct {
	bw    float64
	power float64
	seed0 uint64
	src   *prng.Source
	fir   *dsp.FIR
	scale float64
}

// filterTapsForBW returns a low-pass FIR selecting the two-sided bandwidth
// bw. For bw >= 1 the noise is already full-band and no filter is needed.
func filterTapsForBW(bw float64) *dsp.FIR {
	if bw >= 1 {
		return nil
	}
	cutoff := bw / 2
	if cutoff < 1e-4 {
		cutoff = 1e-4
	}
	taps := 129
	// Very narrow bands need more taps to be realized at all.
	if cutoff < 0.01 {
		taps = 513
	}
	return dsp.LowPassFIR(cutoff, taps, dsp.Blackman, 0)
}

// NewBandlimited returns a band-limited AWGN jammer with the given
// two-sided bandwidth (0 < bw <= 1, in cycles/sample) and average power.
func NewBandlimited(bw, power float64, seed uint64) (*Bandlimited, error) {
	if bw <= 0 || bw > 1 {
		return nil, fmt.Errorf("jammer: bandwidth %v out of (0, 1]", bw)
	}
	if power < 0 {
		return nil, fmt.Errorf("jammer: negative power %v", power)
	}
	b := &Bandlimited{bw: bw, power: power, seed0: seed, src: prng.New(seed), fir: filterTapsForBW(bw)}
	b.calibrate()
	b.warm()
	return b, nil
}

// warm primes the filter's delay line so the first emitted samples already
// carry full power — the jammer transmits continuously; the capture window
// just opens somewhere in its stream.
func (b *Bandlimited) warm() {
	if b.fir == nil || b.power == 0 {
		return
	}
	warm := make([]complex128, b.fir.Len())
	for i := range warm {
		warm[i] = b.src.ComplexNorm()
	}
	b.fir.Process(warm)
}

// Reseed rewinds the jammer to the exact state of a freshly constructed
// NewBandlimited(bw, power, seed): the noise source is re-seeded, the
// filter's delay line cleared and the warm-up re-run, so the emitted stream
// is bit-identical to a new jammer's. It lets Hopping reuse one Bandlimited
// per distribution entry instead of redesigning the band-selection filter
// every hop.
func (b *Bandlimited) Reseed(seed uint64) {
	b.src.Reseed(seed)
	if b.fir != nil {
		b.fir.Reset()
	}
	b.warm()
}

// Reset rewinds to the construction seed (Reseed with the original seed).
func (b *Bandlimited) Reset() { b.Reseed(b.seed0) }

// calibrate computes the filter's noise power gain so the emitted power
// hits the budget regardless of bandwidth: white noise of unit variance
// through an FIR h has output variance sum(|h|^2).
func (b *Bandlimited) calibrate() {
	if b.power == 0 {
		b.scale = 0
		return
	}
	if b.fir == nil {
		b.scale = math.Sqrt(b.power)
		return
	}
	var gain float64
	for _, tap := range b.fir.Taps() {
		gain += real(tap)*real(tap) + imag(tap)*imag(tap)
	}
	if gain <= 0 {
		b.scale = 0
		return
	}
	b.scale = math.Sqrt(b.power / gain)
}

// Bandwidth returns the jammer's two-sided bandwidth.
func (b *Bandlimited) Bandwidth() float64 { return b.bw }

// Power returns the jammer's average power.
func (b *Bandlimited) Power() float64 { return b.power }

// Emit returns the next n samples of band-limited noise.
func (b *Bandlimited) Emit(n int) []complex128 {
	out := make([]complex128, n)
	if b.scale == 0 {
		return out
	}
	for i := range out {
		out[i] = b.src.ComplexNorm()
	}
	if b.fir != nil {
		out = b.fir.Process(out)
	}
	g := complex(b.scale, 0)
	for i := range out {
		out[i] *= g
	}
	return out
}

// Tone is a continuous-wave jammer at a single frequency.
type Tone struct {
	freq  float64
	power float64
	phase float64
}

// NewTone returns a CW jammer at the given normalized frequency and power.
func NewTone(freq, power float64) (*Tone, error) {
	if freq < -0.5 || freq >= 0.5 {
		return nil, fmt.Errorf("jammer: tone frequency %v out of [-0.5, 0.5)", freq)
	}
	if power < 0 {
		return nil, fmt.Errorf("jammer: negative power %v", power)
	}
	return &Tone{freq: freq, power: power}, nil
}

// Power returns the tone power.
func (t *Tone) Power() float64 { return t.power }

// Reset rewinds the tone to phase zero.
func (t *Tone) Reset() { t.phase = 0 }

// Emit returns the next n samples of the tone, phase-continuous. The phase
// accumulates without modular reduction so the stream is bit-identical
// under any chunking of Emit calls (the zoo determinism property).
func (t *Tone) Emit(n int) []complex128 {
	out := make([]complex128, n)
	amp := math.Sqrt(t.power)
	step := 2 * math.Pi * t.freq
	ph := t.phase
	for i := range out {
		out[i] = complex(amp*math.Cos(ph), amp*math.Sin(ph))
		ph += step
	}
	t.phase = ph
	return out
}

// Sweep is a linear chirp jammer scanning [-span/2, span/2] over period
// samples, a classic follower-jammer approximation.
type Sweep struct {
	span   float64
	period int
	power  float64
	pos    int
	phase  float64
}

// NewSweep returns a chirp jammer sweeping the given two-sided span
// every period samples.
func NewSweep(span float64, period int, power float64) (*Sweep, error) {
	if span <= 0 || span > 1 {
		return nil, fmt.Errorf("jammer: sweep span %v out of (0, 1]", span)
	}
	if period < 2 {
		return nil, fmt.Errorf("jammer: sweep period %d too short", period)
	}
	if power < 0 {
		return nil, fmt.Errorf("jammer: negative power %v", power)
	}
	return &Sweep{span: span, period: period, power: power}, nil
}

// Power returns the sweep power.
func (s *Sweep) Power() float64 { return s.power }

// Reset rewinds the chirp to the start of its sweep.
func (s *Sweep) Reset() { s.pos, s.phase = 0, 0 }

// Emit returns the next n chirp samples.
func (s *Sweep) Emit(n int) []complex128 {
	out := make([]complex128, n)
	amp := math.Sqrt(s.power)
	for i := range out {
		frac := float64(s.pos) / float64(s.period)
		freq := -s.span/2 + s.span*frac
		s.phase += 2 * math.Pi * freq
		out[i] = complex(amp*math.Cos(s.phase), amp*math.Sin(s.phase))
		s.pos++
		if s.pos == s.period {
			s.pos = 0
		}
	}
	return out
}

// Pulsed gates an inner jammer on and off, emitting during the first
// onFraction of every period (a duty-cycled jammer).
type Pulsed struct {
	inner  Source
	period int
	on     int
	pos    int
}

// NewPulsed wraps a jammer with an on/off duty cycle.
func NewPulsed(inner Source, onFraction float64, period int) (*Pulsed, error) {
	if onFraction < 0 || onFraction > 1 {
		return nil, fmt.Errorf("jammer: duty cycle %v out of [0, 1]", onFraction)
	}
	if period < 1 {
		return nil, fmt.Errorf("jammer: period %d must be >= 1", period)
	}
	return &Pulsed{inner: inner, period: period, on: int(onFraction * float64(period))}, nil
}

// Power returns the duty-cycle-weighted average power.
func (p *Pulsed) Power() float64 {
	return p.inner.Power() * float64(p.on) / float64(p.period)
}

// Reset rewinds the gate and the inner jammer.
func (p *Pulsed) Reset() {
	p.pos = 0
	p.inner.Reset()
}

// Emit returns the next n samples, zero while gated off.
func (p *Pulsed) Emit(n int) []complex128 {
	out := p.inner.Emit(n)
	for i := range out {
		if p.pos >= p.on {
			out[i] = 0
		}
		p.pos++
		if p.pos == p.period {
			p.pos = 0
		}
	}
	return out
}

// Hopping re-draws its bandwidth from a hop distribution every
// samplesPerHop samples — the adversary of Table 2 that answers bandwidth
// hopping with bandwidth hopping. Bandwidths in the distribution are
// expressed in the same units as sampleRate (e.g. MHz against 20 MS/s).
type Hopping struct {
	dist          hop.Distribution
	sampleRate    float64
	samplesPerHop int
	power         float64
	seed0         uint64
	src           *prng.Source
	seedBase      uint64
	remaining     int
	cur           *Bandlimited
	// pool holds one pre-built Bandlimited per distribution entry; each hop
	// Reseeds the matching jammer instead of designing a fresh band filter,
	// so construction errors surface in NewHopping and Emit stays total.
	pool []*Bandlimited
}

// NewHopping returns a bandwidth-hopping jammer.
func NewHopping(dist hop.Distribution, sampleRate float64, samplesPerHop int, power float64, seed uint64) (*Hopping, error) {
	if err := dist.Validate(); err != nil {
		return nil, err
	}
	if sampleRate <= 0 {
		return nil, fmt.Errorf("jammer: sample rate %v must be positive", sampleRate)
	}
	if samplesPerHop < 1 {
		return nil, fmt.Errorf("jammer: samplesPerHop %d must be >= 1", samplesPerHop)
	}
	pool := make([]*Bandlimited, len(dist.Bandwidths))
	for i, b := range dist.Bandwidths {
		if b > sampleRate {
			return nil, fmt.Errorf("jammer: bandwidth %v exceeds sample rate %v", b, sampleRate)
		}
		j, err := NewBandlimited(b/sampleRate, power, seed)
		if err != nil {
			return nil, fmt.Errorf("jammer: bandwidth %v: %w", b, err)
		}
		pool[i] = j
	}
	return &Hopping{
		dist: dist, sampleRate: sampleRate, samplesPerHop: samplesPerHop,
		power: power, seed0: seed, src: prng.New(seed), seedBase: seed, pool: pool,
	}, nil
}

// Power returns the jammer's average power.
func (h *Hopping) Power() float64 { return h.power }

// Reset rewinds the hop sequence and the seed chain to construction state.
func (h *Hopping) Reset() {
	h.src.Reseed(h.seed0)
	h.seedBase = h.seed0
	h.remaining = 0
	h.cur = nil
}

// Emit returns the next n samples, hopping bandwidth as it goes.
func (h *Hopping) Emit(n int) []complex128 {
	out := make([]complex128, 0, n)
	for len(out) < n {
		if h.remaining == 0 {
			idx := h.src.Choose(h.dist.Probs)
			h.seedBase = h.seedBase*0x9e3779b97f4a7c15 + 1
			// Reseed produces the exact sample stream a fresh
			// NewBandlimited(bw, power, seedBase) would emit, without the
			// per-hop filter design (and without a fallible call in the
			// streaming path).
			h.cur = h.pool[idx]
			h.cur.Reseed(h.seedBase)
			h.remaining = h.samplesPerHop
		}
		take := n - len(out)
		if take > h.remaining {
			take = h.remaining
		}
		out = append(out, h.cur.Emit(take)...)
		h.remaining -= take
	}
	return out
}

// The reactive, multitone and adaptive estimator-follower jammers live in
// follower.go; they share the streaming Welch sensing core defined there.
