package jammer

import (
	"strings"
	"testing"
)

func TestParseSpecRoundTrip(t *testing.T) {
	// Each spec must re-render canonically and re-parse to the same config.
	cases := []struct {
		in    string
		canon string
	}{
		{"jam=bandlimited", "jam=bandlimited"},
		{"jam=bandlimited,bw=2.5,power=1", "jam=bandlimited"},
		{"jam=bandlimited,bw=0.625,power=100", "jam=bandlimited,bw=0.625,power=100"},
		{"jam=tone,freq=-3.5", "jam=tone,freq=-3.5"},
		{"jam=sweep,span=5,period=8192", "jam=sweep,span=5,period=8192"},
		{"jam=hopping,pattern=linear,dwell=2048", "jam=hopping,pattern=linear,dwell=2048"},
		{"jam=reactive,delay=256,sense=1024,power=2", "jam=reactive,delay=256,sense=1024,power=2"},
		{"jam=reactive,memory=true", "jam=reactive,memory=1"},
		{"jam=multitone,tones=8,sense=1024", "jam=multitone,sense=1024,tones=8"},
		{"jam=adaptive,memory=0,delay=0", "jam=adaptive,delay=0,memory=0"},
		{"jam=adaptive", "jam=adaptive"},
		{"power=2 , jam=bandlimited , duty=0.5:2048", "jam=bandlimited,duty=0.5:2048,power=2"},
		{"jam=bandlimited,duty=0.5", "jam=bandlimited,duty=0.5"},
		{"jam=bandlimited,seed=42", "jam=bandlimited,seed=42"},
	}
	for _, tc := range cases {
		c, err := ParseSpec(tc.in)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", tc.in, err)
		}
		if got := c.String(); got != tc.canon {
			t.Fatalf("ParseSpec(%q).String() = %q, want %q", tc.in, got, tc.canon)
		}
		c2, err := ParseSpec(c.String())
		if err != nil {
			t.Fatalf("re-parse of %q: %v", c.String(), err)
		}
		if c2 != c {
			t.Fatalf("round trip of %q: %+v != %+v", tc.in, c2, c)
		}
	}
}

func TestParseSpecDefaults(t *testing.T) {
	c, err := ParseSpec("jam=reactive")
	if err != nil {
		t.Fatal(err)
	}
	if c.Delay != 512 || c.Sense != 512 || c.Power != 1 || c.Memory {
		t.Fatalf("reactive defaults wrong: %+v", c)
	}
	a, err := ParseSpec("jam=adaptive")
	if err != nil {
		t.Fatal(err)
	}
	if !a.Memory {
		t.Fatal("adaptive must default to memory=1")
	}
}

func TestParseSpecErrors(t *testing.T) {
	bad := []string{
		"",                                 // no kind
		"delay=3",                          // missing jam=
		"jam=",                             // empty kind
		"jam=laser",                        // unknown kind
		"jam=reactive,jam=tone",            // duplicate jam
		"jam=reactive,delay=1,delay=2",     // duplicate key
		"jam=reactive,bw=5",                // key for another kind
		"jam=bandlimited,delay=5",          // follower key on static kind
		"jam=reactive,duty=0.5",            // duty on a follower
		"jam=bandlimited,zap=1",            // unknown key
		"jam=bandlimited,bw",               // not key=value
		"jam=bandlimited,bw=",              // empty value
		"jam=bandlimited,bw=NaN",           // non-finite
		"jam=bandlimited,bw=-1",            // non-positive
		"jam=bandlimited,power=-2",         // negative power
		"jam=reactive,sense=100",           // not a power of two
		"jam=reactive,sense=32",            // too small
		"jam=reactive,delay=-1",            // negative delay
		"jam=multitone,tones=0",            // no tones
		"jam=multitone,tones=999,sense=64", // beyond resolution
		"jam=hopping,pattern=zigzag",       // unknown pattern
		"jam=hopping,dwell=0",              // dwell too short
		"jam=sweep,period=1",               // period too short
		"jam=bandlimited,duty=0",           // zero duty
		"jam=bandlimited,duty=1.5",         // duty > 1
		"jam=bandlimited,duty=0.5:1",       // duty period too short
		"jam=bandlimited,seed=-1",          // negative seed
		"jam=bandlimited,,power=2",         // empty entry
		"jam=reactive,memory=maybe",        // non-boolean
	}
	for _, spec := range bad {
		if _, err := ParseSpec(spec); err == nil {
			t.Fatalf("ParseSpec(%q) accepted", spec)
		}
	}
}

func TestSpecBuildKinds(t *testing.T) {
	cases := []struct {
		spec    string
		txAware bool
		power   float64
	}{
		{"jam=bandlimited,bw=2.5,power=100", false, 100},
		{"jam=tone,freq=1.25,power=2", false, 2},
		{"jam=sweep", false, 1},
		{"jam=hopping,pattern=exponential", false, 1},
		{"jam=bandlimited,duty=0.5", false, 0.5}, // duty-weighted
		{"jam=reactive,delay=256,sense=1024,power=2", true, 2},
		{"jam=multitone,tones=3", true, 1},
		{"jam=adaptive,power=4", true, 4},
	}
	for _, tc := range cases {
		src, err := NewFromSpec(tc.spec, 20, 7)
		if err != nil {
			t.Fatalf("NewFromSpec(%q): %v", tc.spec, err)
		}
		if _, ok := src.(TxAware); ok != tc.txAware {
			t.Fatalf("%q: TxAware = %v, want %v", tc.spec, ok, tc.txAware)
		}
		if src.Power() != tc.power {
			t.Fatalf("%q: power %v, want %v", tc.spec, src.Power(), tc.power)
		}
		if out := src.Emit(256); len(out) != 256 {
			t.Fatalf("%q: Emit returned %d samples", tc.spec, len(out))
		}
	}
}

func TestSpecBuildValidatesRates(t *testing.T) {
	if _, err := NewFromSpec("jam=bandlimited,bw=30", 20, 1); err == nil {
		t.Fatal("bw above the sample rate should fail at build")
	}
	if _, err := NewFromSpec("jam=sweep,span=30", 20, 1); err == nil {
		t.Fatal("span above the sample rate should fail at build")
	}
	if _, err := NewFromSpec("jam=tone,freq=11", 20, 1); err == nil {
		t.Fatal("tone outside Nyquist should fail at build")
	}
	if _, err := NewFromSpec("jam=bandlimited", 0, 1); err == nil {
		t.Fatal("zero sample rate should fail")
	}
	if _, err := (SpecConfig{}).Build(20, 1); err == nil {
		t.Fatal("zero config (no kind) should fail")
	}
}

func TestSpecSeedOverride(t *testing.T) {
	// seed= pins the stream regardless of the Build seed argument.
	a, err := NewFromSpec("jam=bandlimited,seed=5", 20, 111)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewFromSpec("jam=bandlimited,seed=5", 20, 222)
	if err != nil {
		t.Fatal(err)
	}
	xa, xb := a.Emit(512), b.Emit(512)
	for i := range xa {
		if xa[i] != xb[i] {
			t.Fatal("seed= did not override the build seed")
		}
	}
}

func TestSpecCanonicalFormIsStable(t *testing.T) {
	// The README example must stay parseable and canonical-stable: this is
	// the public grammar contract.
	const example = "jam=reactive,delay=256,sense=1024,power=2"
	c, err := ParseSpec(example)
	if err != nil {
		t.Fatal(err)
	}
	if c.String() != example {
		t.Fatalf("canonical form of the documented example drifted: %q", c.String())
	}
	if !strings.Contains(c.String(), "jam=reactive") {
		t.Fatal("canonical form must lead with the kind")
	}
}
