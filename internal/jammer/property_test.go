package jammer

import (
	"math"
	"math/cmplx"
	"runtime"
	"testing"

	"bhss/internal/dsp"
	"bhss/internal/hop"
)

// The zoo property campaign: every jammer kind must (1) hit its configured
// power budget, (2) emit a bit-identical stream for the same seed regardless
// of how the stream is chunked or how many Ps the scheduler has, and
// (3) reproduce the stream exactly after Reset. Table-driven so the next
// adversary added to the zoo inherits the whole campaign by adding a row.

type zooEntry struct {
	name  string
	build func(t *testing.T) Source
	// powerTol is the relative tolerance on the measured mean |x|²; 0
	// skips the power check (not meaningful for the kind).
	powerTol float64
	// warmup samples skipped before the power measurement (filter warm-up
	// and, for followers, the sense+delay lead-in before the first tune).
	warmup int
}

// zoo builds one representative of every jammer kind at a fixed seed.
func zoo() []zooEntry {
	mustDist := func() hop.Distribution {
		d, err := hop.NewDistribution(hop.Linear, []float64{10, 2.5, 0.625})
		if err != nil {
			panic(err)
		}
		return d
	}
	return []zooEntry{
		{
			name: "bandlimited",
			build: func(t *testing.T) Source {
				j, err := NewBandlimited(0.2, 3, 11)
				if err != nil {
					t.Fatal(err)
				}
				return j
			},
			powerTol: 0.15,
			warmup:   2048,
		},
		{
			name: "tone",
			build: func(t *testing.T) Source {
				j, err := NewTone(0.125, 3)
				if err != nil {
					t.Fatal(err)
				}
				return j
			},
			powerTol: 1e-9,
		},
		{
			name: "sweep",
			build: func(t *testing.T) Source {
				j, err := NewSweep(0.8, 4096, 3)
				if err != nil {
					t.Fatal(err)
				}
				return j
			},
			powerTol: 1e-9,
		},
		{
			name: "pulsed",
			build: func(t *testing.T) Source {
				inner, err := NewBandlimited(0.5, 3, 12)
				if err != nil {
					t.Fatal(err)
				}
				j, err := NewPulsed(inner, 0.25, 1024)
				if err != nil {
					t.Fatal(err)
				}
				return j
			},
			powerTol: 0.15,
			warmup:   2048,
		},
		{
			name: "hopping",
			build: func(t *testing.T) Source {
				j, err := NewHopping(mustDist(), 20, 2048, 3, 13)
				if err != nil {
					t.Fatal(err)
				}
				return j
			},
			powerTol: 0.15,
			warmup:   2048,
		},
		{
			name: "reactive",
			build: func(t *testing.T) Source {
				j, err := NewReactive(256, 512, 3, 14)
				if err != nil {
					t.Fatal(err)
				}
				return j
			},
			powerTol: 0.15,
			warmup:   2048,
		},
		{
			name: "multitone",
			build: func(t *testing.T) Source {
				j, err := NewMultitone(4, 256, 512, 3, 15)
				if err != nil {
					t.Fatal(err)
				}
				return j
			},
			powerTol: 0.05,
			warmup:   2048,
		},
		{
			name: "adaptive",
			build: func(t *testing.T) Source {
				j, err := NewAdaptive(256, 512, 3, 16)
				if err != nil {
					t.Fatal(err)
				}
				return j
			},
			powerTol: 0.2,
			warmup:   4096,
		},
	}
}

// overheard builds the deterministic transmit stream the TxAware jammers
// sense in these tests: narrow-band noise that hops its bandwidth halfway
// through, so followers tune, retune and converge.
func overheard(t *testing.T, n int) []complex128 {
	t.Helper()
	a, err := NewBandlimited(0.4, 1, 4242)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewBandlimited(0.05, 1, 4243)
	if err != nil {
		t.Fatal(err)
	}
	tx := a.Emit(n / 2)
	return append(tx, b.Emit(n-n/2)...)
}

// drive runs the jammer over the tx stream in the given chunk sizes
// (cycled) and concatenates the output. Plain sources Emit; TxAware
// sources Jam the corresponding tx chunk.
func drive(j Source, tx []complex128, chunks []int) []complex128 {
	out := make([]complex128, 0, len(tx))
	pos, ci := 0, 0
	for pos < len(tx) {
		n := chunks[ci%len(chunks)]
		ci++
		if pos+n > len(tx) {
			n = len(tx) - pos
		}
		if ta, ok := j.(TxAware); ok {
			out = append(out, ta.Jam(tx[pos:pos+n])...)
		} else {
			out = append(out, j.Emit(n)...)
		}
		pos += n
	}
	return out
}

func TestZooPowerBudget(t *testing.T) {
	const n = 1 << 15
	for _, e := range zoo() {
		t.Run(e.name, func(t *testing.T) {
			j := e.build(t)
			out := drive(j, overheard(t, n), []int{n})
			if e.powerTol == 0 {
				return
			}
			got := dsp.Power(out[e.warmup:])
			want := j.Power()
			if math.Abs(got-want)/want > e.powerTol {
				t.Fatalf("measured power %v, want %v ±%v%%", got, want, e.powerTol*100)
			}
		})
	}
}

func TestZooSeedDeterminismAcrossChunkings(t *testing.T) {
	const n = 1 << 14
	chunkings := [][]int{{n}, {997}, {64}, {1, 511, 64, 4096}}
	for _, e := range zoo() {
		t.Run(e.name, func(t *testing.T) {
			tx := overheard(t, n)
			ref := drive(e.build(t), tx, chunkings[0])
			for _, chunks := range chunkings[1:] {
				got := drive(e.build(t), tx, chunks)
				for i := range ref {
					if got[i] != ref[i] {
						t.Fatalf("chunking %v diverges at sample %d: %v != %v",
							chunks, i, got[i], ref[i])
					}
				}
			}
		})
	}
}

func TestZooSeedDeterminismAcrossGOMAXPROCS(t *testing.T) {
	const n = 1 << 13
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	for _, e := range zoo() {
		t.Run(e.name, func(t *testing.T) {
			tx := overheard(t, n)
			runtime.GOMAXPROCS(1)
			one := drive(e.build(t), tx, []int{768})
			runtime.GOMAXPROCS(runtime.NumCPU())
			many := drive(e.build(t), tx, []int{768})
			for i := range one {
				if one[i] != many[i] {
					t.Fatalf("GOMAXPROCS changes the stream at sample %d", i)
				}
			}
		})
	}
}

func TestZooResetReplayInvariance(t *testing.T) {
	const n = 1 << 13
	for _, e := range zoo() {
		t.Run(e.name, func(t *testing.T) {
			tx := overheard(t, n)
			j := e.build(t)
			replay := func() []complex128 {
				var out []complex128
				half := len(tx) / 2
				if ta, ok := j.(TxAware); ok {
					out = append(out, ta.Jam(tx[:half])...)
					ta.NewBurst()
					out = append(out, ta.Jam(tx[half:])...)
				} else {
					out = append(out, j.Emit(half)...)
					out = append(out, j.Emit(len(tx)-half)...)
				}
				return out
			}
			first := replay()
			j.Reset()
			second := replay()
			for i := range first {
				if first[i] != second[i] {
					t.Fatalf("replay diverges at sample %d: %v != %v", i, first[i], second[i])
				}
			}
		})
	}
}

// TestZooNoNaN pins that no jammer ever emits a non-finite sample, even
// when sensing pure silence (the degenerate follower input).
func TestZooNoNaN(t *testing.T) {
	const n = 1 << 13
	for _, e := range zoo() {
		t.Run(e.name, func(t *testing.T) {
			j := e.build(t)
			for _, stream := range [][]complex128{
				drive(j, overheard(t, n), []int{513}),
				j.Emit(n), // hears silence from here on
			} {
				for i, v := range stream {
					if cmplx.IsNaN(v) || cmplx.IsInf(v) {
						t.Fatalf("non-finite sample at %d: %v", i, v)
					}
				}
			}
		})
	}
}
