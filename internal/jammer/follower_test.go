package jammer

import (
	"math"
	"math/cmplx"
	"testing"

	"bhss/internal/dsp"
	"bhss/internal/obs"
)

// narrowband returns n samples of band-limited noise at the given two-sided
// bandwidth — the synthetic transmit stream the convergence tests sense.
func narrowband(t *testing.T, bw float64, n int, seed uint64) []complex128 {
	t.Helper()
	src, err := NewBandlimited(bw, 1, seed)
	if err != nil {
		t.Fatal(err)
	}
	return src.Emit(n)
}

// TestReactiveConvergesWithinSensePlusDelay pins the arms-race contract:
// after the target hops its bandwidth at a sense-window boundary, the
// follower transmits the retuned waveform no later than senseWindow +
// reactionDelay samples past the hop — and not a sample earlier than the
// delay allows (no retune mid-delay).
func TestReactiveConvergesWithinSensePlusDelay(t *testing.T) {
	const (
		sense = 512
		delay = 768
		hopAt = 4 * sense // hop on a window boundary
	)
	r, err := NewReactive(delay, sense, 4, 21)
	if err != nil {
		t.Fatal(err)
	}
	var met obs.JamMetrics
	r.SetObserver(&met)

	tx := narrowband(t, 0.5, hopAt, 777)
	tx = append(tx, narrowband(t, 0.04, 6*sense, 778)...)

	// Phase 1: feed everything up to the hop. The initial tune applies at
	// sense+delay; estimator jitter inside the deadband must not retune.
	r.Jam(tx[:hopAt])
	if got := met.Retunes.Load(); got != 1 {
		t.Fatalf("retunes before the hop = %d, want exactly 1 (initial tune)", got)
	}
	if got := met.Estimates.Load(); got != hopAt/sense {
		t.Fatalf("estimates = %d, want %d", got, hopAt/sense)
	}

	// Phase 2: feed the post-hop stream one sample at a time; the first
	// retuned sample is exactly the one at hop + sense + delay (window
	// maturity + τ), with no waveform change anywhere mid-delay.
	deadline := sense + delay
	for i := 0; i < 6*sense; i++ {
		r.Jam(tx[hopAt+i : hopAt+i+1])
		retunes := met.Retunes.Load()
		switch {
		case i < deadline && retunes != 1:
			t.Fatalf("retuned at sample %d after the hop, before sense+delay=%d", i, deadline)
		case i >= deadline && retunes != 2:
			t.Fatalf("still %d retunes at sample %d after the hop, want retune at %d",
				retunes, i, deadline)
		}
	}
	if got := met.LastBW.Load(); got <= 0 || got > 0.12 {
		t.Fatalf("converged bandwidth estimate %v, want near 0.04", got)
	}
}

// TestReactiveHoldsThroughSilence pins the degenerate no-energy case: a
// window with nothing in it must hold the previous tuning — counted as a
// hold, never a retune, never a NaN — and the jammer keeps transmitting.
func TestReactiveHoldsThroughSilence(t *testing.T) {
	const sense = 512
	r, err := NewReactive(0, sense, 4, 22)
	if err != nil {
		t.Fatal(err)
	}
	var met obs.JamMetrics
	r.SetObserver(&met)

	r.Jam(narrowband(t, 0.3, 4*sense, 91))
	tuned := met.Retunes.Load()
	if tuned == 0 {
		t.Fatal("follower never tuned on an active target")
	}

	out := r.Jam(make([]complex128, 3*sense))
	if got := met.Holds.Load(); got != 3 {
		t.Fatalf("holds = %d, want 3 (one per silent window)", got)
	}
	if got := met.Retunes.Load(); got != tuned {
		t.Fatalf("silence caused %d retunes", got-tuned)
	}
	for i, v := range out {
		if cmplx.IsNaN(v) || cmplx.IsInf(v) {
			t.Fatalf("non-finite sample at %d during silence: %v", i, v)
		}
	}
	// The jammer holds its last estimate and keeps transmitting at budget.
	if p := dsp.Power(out); math.Abs(p-4)/4 > 0.3 {
		t.Fatalf("held-tuning power %v, want ~4", p)
	}
}

// TestReactiveSilentFromScratch: a follower that has only ever heard
// silence must stay silent (every window is a hold, nothing to remember).
func TestReactiveSilentFromScratch(t *testing.T) {
	r, err := NewReactive(16, 256, 4, 23)
	if err != nil {
		t.Fatal(err)
	}
	var met obs.JamMetrics
	r.SetObserver(&met)
	out := r.Jam(make([]complex128, 2048))
	for i, v := range out {
		if v != 0 {
			t.Fatalf("jammed at %d with no signal ever sensed", i)
		}
	}
	if got := met.Holds.Load(); got != 8 {
		t.Fatalf("holds = %d, want 8", got)
	}
	if met.Retunes.Load() != 0 || met.LastBW.Load() != 0 {
		t.Fatal("silence must not tune the follower")
	}
}

// TestMultitoneSitsOnSpectralPeaks: the multitone follower's tones must
// land inside the sensed signal's occupied band.
func TestMultitoneSitsOnSpectralPeaks(t *testing.T) {
	const sense = 512
	m, err := NewMultitone(4, 0, sense, 4, 24)
	if err != nil {
		t.Fatal(err)
	}
	tx := narrowband(t, 0.1, 16*sense, 92)
	jam := m.Jam(tx)
	active := jam[2*sense:]
	if p := dsp.Power(active); math.Abs(p-4)/4 > 0.05 {
		t.Fatalf("multitone power %v, want 4 (exact budget split)", p)
	}
	// All jam energy concentrated where the signal is: the occupied band
	// of the jam must be no wider than the target's.
	bw := measureBW(active, t)
	if bw > 0.2 {
		t.Fatalf("multitone occupied bandwidth %v, want inside the 0.1 target band", bw)
	}
}

// TestAdaptiveLearnsHopDistribution: after observing a target that spends
// 3/4 of its airtime narrow and 1/4 wide, the adaptive jammer's mixture
// must allocate most of its budget to the narrow octave.
func TestAdaptiveLearnsHopDistribution(t *testing.T) {
	const sense = 512
	a, err := NewAdaptive(0, sense, 4, 25)
	if err != nil {
		t.Fatal(err)
	}
	var met obs.JamMetrics
	a.SetObserver(&met)
	// 12 narrow windows, 4 wide windows, alternating in bursts.
	for i := 0; i < 4; i++ {
		a.Jam(narrowband(t, 0.04, 3*sense, uint64(100+i)))
		a.Jam(narrowband(t, 0.5, sense, uint64(200+i)))
	}
	counts := a.d.counts
	narrowBin := adaptiveBinFor(0.04)
	wideBin := adaptiveBinFor(0.5)
	if counts[narrowBin] <= counts[wideBin] {
		t.Fatalf("learned histogram %v: narrow bin %d not dominant over wide bin %d",
			counts, narrowBin, wideBin)
	}
	var total int64
	for _, c := range counts {
		total += c
	}
	if total != met.Estimates.Load()-met.Holds.Load() {
		t.Fatalf("histogram total %d != energetic estimates %d",
			total, met.Estimates.Load()-met.Holds.Load())
	}
	// The emitted waveform carries the full budget once tuned.
	out := a.Emit(8 * sense)
	if p := dsp.Power(out); math.Abs(p-4)/4 > 0.25 {
		t.Fatalf("adaptive mixture power %v, want ~4", p)
	}
}

// TestFollowerBurstBoundarySemantics: NewBurst drops pending reactions and,
// without Memory, silences the jammer until a fresh estimate matures.
func TestFollowerBurstBoundarySemantics(t *testing.T) {
	const sense, delay = 512, 256
	r, err := NewReactive(delay, sense, 4, 26)
	if err != nil {
		t.Fatal(err)
	}
	tx := narrowband(t, 0.2, 4*sense, 93)
	r.Jam(tx)
	r.NewBurst()
	head := r.Jam(tx[:sense+delay-1])
	for i, v := range head {
		if v != 0 {
			t.Fatalf("memoryless follower jammed at %d after a burst boundary", i)
		}
	}
}
