package jammer

import (
	"math"
	"testing"

	"bhss/internal/dsp"
	"bhss/internal/hop"
	"bhss/internal/prng"
	"bhss/internal/pulse"
	"bhss/internal/spectral"
)

func measureBW(x []complex128, t *testing.T) float64 {
	t.Helper()
	psd, err := spectral.Welch(256).PSD(x)
	if err != nil {
		t.Fatal(err)
	}
	return spectral.OccupiedBandwidth(psd, 0.95)
}

func TestBandlimitedPowerBudget(t *testing.T) {
	for _, bw := range []float64{0.01, 0.1, 0.5, 1.0} {
		j, err := NewBandlimited(bw, 4, 1)
		if err != nil {
			t.Fatal(err)
		}
		x := j.Emit(1 << 15)
		if p := dsp.Power(x[2048:]); math.Abs(p-4)/4 > 0.15 {
			t.Fatalf("bw=%v: power %v, want ~4", bw, p)
		}
		if j.Power() != 4 || j.Bandwidth() != bw {
			t.Fatal("accessors wrong")
		}
	}
}

func TestBandlimitedOccupiedBandwidth(t *testing.T) {
	for _, bw := range []float64{0.05, 0.25, 0.5} {
		j, err := NewBandlimited(bw, 1, 2)
		if err != nil {
			t.Fatal(err)
		}
		x := j.Emit(1 << 15)
		got := measureBW(x[2048:], t)
		if got < bw*0.6 || got > bw*1.6 {
			t.Fatalf("configured bw %v, measured %v", bw, got)
		}
	}
}

func TestBandlimitedStreamingContinuity(t *testing.T) {
	a, _ := NewBandlimited(0.2, 1, 9)
	b, _ := NewBandlimited(0.2, 1, 9)
	whole := a.Emit(1000)
	part := append(b.Emit(300), b.Emit(700)...)
	for i := range whole {
		if whole[i] != part[i] {
			t.Fatalf("streaming emission not continuous at %d", i)
		}
	}
}

func TestBandlimitedErrors(t *testing.T) {
	if _, err := NewBandlimited(0, 1, 0); err == nil {
		t.Fatal("bw 0 should error")
	}
	if _, err := NewBandlimited(1.5, 1, 0); err == nil {
		t.Fatal("bw > 1 should error")
	}
	if _, err := NewBandlimited(0.5, -1, 0); err == nil {
		t.Fatal("negative power should error")
	}
}

func TestBandlimitedZeroPower(t *testing.T) {
	j, _ := NewBandlimited(0.5, 0, 0)
	for _, v := range j.Emit(100) {
		if v != 0 {
			t.Fatal("zero-power jammer must be silent")
		}
	}
}

func TestTone(t *testing.T) {
	j, err := NewTone(0.125, 2)
	if err != nil {
		t.Fatal(err)
	}
	x := j.Emit(1 << 12)
	if p := dsp.Power(x); math.Abs(p-2)/2 > 1e-9 {
		t.Fatalf("tone power %v, want 2", p)
	}
	// Spectral peak at the right bin.
	spec := dsp.FFT(append([]complex128(nil), x[:1024]...))
	if peak := dsp.ArgMaxAbs(spec); peak != 128 {
		t.Fatalf("tone peak at bin %d, want 128", peak)
	}
	if _, err := NewTone(0.7, 1); err == nil {
		t.Fatal("out-of-range frequency should error")
	}
	if _, err := NewTone(0, -1); err == nil {
		t.Fatal("negative power should error")
	}
}

func TestTonePhaseContinuity(t *testing.T) {
	a, _ := NewTone(0.01, 1)
	b, _ := NewTone(0.01, 1)
	whole := a.Emit(200)
	part := append(b.Emit(77), b.Emit(123)...)
	for i := range whole {
		if d := whole[i] - part[i]; math.Hypot(real(d), imag(d)) > 1e-9 {
			t.Fatalf("tone discontinuity at %d", i)
		}
	}
}

func TestSweepCoversBand(t *testing.T) {
	j, err := NewSweep(0.8, 4096, 1)
	if err != nil {
		t.Fatal(err)
	}
	x := j.Emit(1 << 14)
	if p := dsp.Power(x); math.Abs(p-1) > 1e-9 {
		t.Fatalf("sweep power %v, want 1", p)
	}
	bw := measureBW(x, t)
	if bw < 0.5 {
		t.Fatalf("sweep occupied bandwidth %v, want ~0.8", bw)
	}
	if _, err := NewSweep(0, 100, 1); err == nil {
		t.Fatal("zero span should error")
	}
	if _, err := NewSweep(0.5, 1, 1); err == nil {
		t.Fatal("period 1 should error")
	}
	if _, err := NewSweep(0.5, 100, -1); err == nil {
		t.Fatal("negative power should error")
	}
}

func TestPulsedDutyCycle(t *testing.T) {
	inner, _ := NewBandlimited(1, 2, 3)
	j, err := NewPulsed(inner, 0.25, 1000)
	if err != nil {
		t.Fatal(err)
	}
	x := j.Emit(100000)
	zero := 0
	for _, v := range x {
		if v == 0 {
			zero++
		}
	}
	frac := float64(zero) / float64(len(x))
	if math.Abs(frac-0.75) > 0.01 {
		t.Fatalf("off fraction %v, want 0.75", frac)
	}
	if math.Abs(j.Power()-0.5) > 1e-9 {
		t.Fatalf("average power %v, want 0.5", j.Power())
	}
	if _, err := NewPulsed(inner, 2, 10); err == nil {
		t.Fatal("duty > 1 should error")
	}
	if _, err := NewPulsed(inner, 0.5, 0); err == nil {
		t.Fatal("period 0 should error")
	}
}

func TestHoppingJammerChangesBandwidth(t *testing.T) {
	dist, err := hop.NewDistribution(hop.Linear, []float64{10, 0.15625})
	if err != nil {
		t.Fatal(err)
	}
	j, err := NewHopping(dist, 20, 4096, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Over several hops we should observe both wide and narrow windows.
	sawWide, sawNarrow := false, false
	for k := 0; k < 16; k++ {
		x := j.Emit(4096)
		bw := measureBW(x, t)
		if bw > 0.25 {
			sawWide = true
		}
		if bw < 0.1 {
			sawNarrow = true
		}
	}
	if !sawWide || !sawNarrow {
		t.Fatalf("hopping jammer did not visit both bandwidths (wide=%v narrow=%v)", sawWide, sawNarrow)
	}
	if j.Power() != 1 {
		t.Fatal("power accessor wrong")
	}
}

func TestHoppingJammerErrors(t *testing.T) {
	dist, _ := hop.NewDistribution(hop.Linear, hop.DefaultBandwidths())
	if _, err := NewHopping(dist, 0, 100, 1, 1); err == nil {
		t.Fatal("zero sample rate should error")
	}
	if _, err := NewHopping(dist, 20, 0, 1, 1); err == nil {
		t.Fatal("zero samplesPerHop should error")
	}
	if _, err := NewHopping(dist, 5, 100, 1, 1); err == nil {
		t.Fatal("bandwidth above sample rate should error")
	}
	bad := hop.Distribution{Bandwidths: []float64{1}, Probs: []float64{0.2}}
	if _, err := NewHopping(bad, 20, 100, 1, 1); err == nil {
		t.Fatal("invalid distribution should error")
	}
}

func TestReactiveJammerMatchesBandwidthAfterDelay(t *testing.T) {
	// Transmit a narrow-band signal (random chips at 16 samples/chip);
	// the reactive jammer should answer with noise of comparable (narrow)
	// bandwidth, delayed by τ.
	src := prng.New(31)
	chips := make([]complex128, 4096)
	for i := range chips {
		chips[i] = complex(src.ChipBit()*0.7, src.ChipBit()*0.7)
	}
	tx := pulse.Modulate(chips, pulse.Taps(pulse.HalfSine, 16)) // bw ~ 1/16
	r, err := NewReactive(512, 1024, 9, 4)
	if err != nil {
		t.Fatal(err)
	}
	jam := r.Jam(tx)
	if len(jam) != len(tx) {
		t.Fatalf("jam length %d, want %d", len(jam), len(tx))
	}
	// Silent before the first reaction matures.
	for i := 0; i < 1024+512-1; i++ {
		if jam[i] != 0 {
			t.Fatalf("jammer emitted at %d before first estimate + delay", i)
		}
	}
	active := jam[2048:]
	if p := dsp.Power(active); math.Abs(p-9)/9 > 0.3 {
		t.Fatalf("reactive jam power %v, want ~9", p)
	}
	bw := measureBW(active, t)
	if bw > 0.3 {
		t.Fatalf("reactive jam bandwidth %v, want narrow (~0.06)", bw)
	}
}

func TestReactiveJammerSilentOnShortInput(t *testing.T) {
	r, _ := NewReactive(10, 256, 1, 1)
	jam := r.Jam(make([]complex128, 100))
	for _, v := range jam {
		if v != 0 {
			t.Fatal("short input should produce silence")
		}
	}
}

func TestReactiveErrors(t *testing.T) {
	if _, err := NewReactive(-1, 256, 1, 0); err == nil {
		t.Fatal("negative delay should error")
	}
	if _, err := NewReactive(0, 100, 1, 0); err == nil {
		t.Fatal("non-power-of-two window should error")
	}
	if _, err := NewReactive(0, 256, -1, 0); err == nil {
		t.Fatal("negative power should error")
	}
}

func BenchmarkBandlimitedEmit(b *testing.B) {
	j, _ := NewBandlimited(0.1, 1, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		j.Emit(4096)
	}
}

func TestReactiveMemoryJamsFromFirstSample(t *testing.T) {
	src := prng.New(77)
	chips := make([]complex128, 2048)
	for i := range chips {
		chips[i] = complex(src.ChipBit()*0.7, src.ChipBit()*0.7)
	}
	tx := pulse.Modulate(chips, pulse.Taps(pulse.HalfSine, 8))
	r, err := NewReactive(256, 1024, 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	r.Memory = true
	// First burst: head silent (nothing remembered yet).
	first := r.Jam(tx)
	for i := 0; i < 1024+256-1; i++ {
		if first[i] != 0 {
			t.Fatalf("first burst jammed at %d before any estimate", i)
		}
	}
	// Second burst: the remembered tuning covers the head immediately.
	r.NewBurst()
	second := r.Jam(tx)
	head := second[:1024]
	if p := dsp.Power(head); math.Abs(p-4)/4 > 0.4 {
		t.Fatalf("remembered-bandwidth head power %v, want ~4", p)
	}
}

func TestReactiveWithoutMemoryStaysSilentAtHead(t *testing.T) {
	src := prng.New(78)
	chips := make([]complex128, 2048)
	for i := range chips {
		chips[i] = complex(src.ChipBit()*0.7, src.ChipBit()*0.7)
	}
	tx := pulse.Modulate(chips, pulse.Taps(pulse.HalfSine, 8))
	r, _ := NewReactive(256, 1024, 4, 9)
	r.Jam(tx)
	r.NewBurst()
	second := r.Jam(tx)
	for i := 0; i < 1024+256-1; i++ {
		if second[i] != 0 {
			t.Fatalf("memoryless jammer emitted at %d", i)
		}
	}
}
