// Estimator-follower jammers: adversaries that overhear the transmitted
// waveform, estimate its instantaneous occupied bandwidth with the same
// Welch machinery the receiver uses, and answer with a matched waveform
// after a bounded reaction delay τ. The delay is the knob of the arms race
// (experiment.ArmsRaceSweep): at τ→0 a follower tracks every hop and
// randomized bandwidth hopping buys nothing — the KTH claim for frequency
// hopping (arXiv:1512.06645) — while at large τ every jam lands on a stale
// bandwidth and the receiver's filters remove it.
//
// The sensing core (follower) is shared by three adversaries that differ in
// what they synthesize from an estimate:
//
//   - Reactive: matched band-limited AWGN at the estimated bandwidth — the
//     classic reactive jammer of §2 (Wilhelm et al.).
//   - Multitone: K constant-envelope tones placed on the strongest bins of
//     the estimated chip spectrum, total power split evenly — the optimal
//     tone-placement adversary of arXiv:2602.06816 under a power budget.
//   - Adaptive: learns the defender's hop-bandwidth distribution from its
//     observation history and transmits a mixture of band-limited noise
//     components with power allocated proportionally to the learned
//     occupancy — a budget-constrained Bayes responder.
//
// All three are streaming and bit-deterministic: the output depends only on
// the construction parameters, the seed and the absolute sample positions of
// what they overheard — never on how the stream was chunked into Jam calls.
package jammer

import (
	"fmt"
	"math"
	"sort"

	"bhss/internal/obs"
	"bhss/internal/spectral"
)

// occupiedFraction is the power fraction used for the follower's occupied-
// bandwidth estimate, matching the receiver's own sensing convention.
const occupiedFraction = 0.95

// TxAware is a jammer that overhears the transmitted signal. Jam consumes
// the clean over-the-air samples (what the adversary's antenna picks up,
// before the victim receiver's noise) and returns the time-aligned jamming
// waveform. NewBurst marks an off-air gap between bursts: sensing state is
// realigned to the next burst's first sample, and unless the jammer keeps
// Memory of its tuning it falls silent until a fresh estimate matures.
type TxAware interface {
	Source
	// Jam returns len(tx) jamming samples aligned to tx.
	Jam(tx []complex128) []complex128
	// NewBurst marks a burst boundary in the overheard stream.
	NewBurst()
	// SetObserver attaches follower metrics (nil detaches).
	SetObserver(m *obs.JamMetrics)
}

// tuning is one waveform design decision produced by a matured sense window.
type tuning struct {
	// bw is the occupied-bandwidth estimate behind the decision.
	bw float64
	// freqs are the multitone placements (normalized, sorted ascending).
	freqs []float64
	// mix is the adaptive power allocation over bandwidth bins.
	mix []mixComponent
}

// designer is the per-adversary policy plugged into the follower core: how
// an estimate becomes a waveform.
type designer interface {
	// observe folds a matured window's PSD and occupied bandwidth into the
	// policy state and returns the new tuning, or false when the current
	// waveform should stand (no retune scheduled).
	observe(psd []float64, bw float64) (tuning, bool)
	// build constructs the emitter for a tuning; seed makes it
	// deterministic. It must not disturb the currently transmitting
	// emitter before the caller swaps it in.
	build(t tuning, power float64, seed uint64) Source
	// clearTuning forgets the current waveform target (burst boundary
	// without memory) so the next estimate schedules a fresh retune.
	clearTuning()
	// resetState additionally clears learned history (full rewind).
	resetState()
}

// pendingRetune is a scheduled waveform change: the estimate matured at
// applyAt−ReactionDelay and causality delays its effect until applyAt.
type pendingRetune struct {
	applyAt int64
	tun     tuning
	seed    uint64
}

// follower is the shared sensing core: it slices the overheard stream into
// non-overlapping sense windows on an absolute sample clock, estimates each
// window's PSD and occupied bandwidth, and swaps the transmit waveform
// ReactionDelay samples after a window that changed the policy's mind. The
// absolute clock makes every state transition independent of how callers
// chunk the stream.
type follower struct {
	// ReactionDelay τ in samples: the jam answering the window observed up
	// to time t starts at t + τ. Read-only after construction.
	ReactionDelay int
	// SenseWindow is how many samples the jammer integrates per bandwidth
	// estimate (a power of two ≥ 64). Read-only after construction.
	SenseWindow int
	// PowerBudget is the jammer's average transmit power once tuned.
	// Read-only after construction.
	PowerBudget float64
	// Memory carries the tuned waveform across NewBurst boundaries: a
	// returning target that never changed its bandwidth is jammed from the
	// first sample of its next burst, with no reaction lag. Against a
	// hopping target the remembered tuning is stale and the receiver's
	// filters remove it.
	Memory bool

	des     designer
	est     *spectral.Reusable
	psd     []float64
	seed0   uint64
	seedCur uint64

	clock    int64 // absolute index of the next overheard sample
	winStart int64 // absolute index of buf[0]
	buf      []complex128
	bufLen   int

	cur     Source // transmitting emitter; nil = silent
	pending []pendingRetune

	met *obs.JamMetrics
}

func (f *follower) init(des designer, reactionDelay, senseWindow int, power float64, seed uint64) error {
	if reactionDelay < 0 {
		return fmt.Errorf("jammer: negative reaction delay")
	}
	if senseWindow < 64 || senseWindow&(senseWindow-1) != 0 {
		return fmt.Errorf("jammer: sense window %d must be a power of two >= 64", senseWindow)
	}
	if power < 0 {
		return fmt.Errorf("jammer: negative power")
	}
	est, err := spectral.Welch(senseWindow / 2).Reusable()
	if err != nil {
		return err
	}
	f.ReactionDelay = reactionDelay
	f.SenseWindow = senseWindow
	f.PowerBudget = power
	f.des = des
	f.est = est
	f.psd = make([]float64, senseWindow/2)
	f.seed0 = seed
	f.seedCur = seed
	f.buf = make([]complex128, senseWindow)
	return nil
}

// SetObserver attaches follower metrics (nil detaches). Recording never
// alters the emitted waveform.
func (f *follower) SetObserver(m *obs.JamMetrics) { f.met = m }

// Power returns the configured transmit power budget.
func (f *follower) Power() float64 { return f.PowerBudget }

// Emit produces n samples with nothing overheard — the jammer senses
// silence (holds its tuning) and keeps transmitting its current waveform.
func (f *follower) Emit(n int) []complex128 {
	return f.Jam(make([]complex128, n))
}

// Jam consumes the next chunk of the overheard transmit stream and returns
// the time-aligned jamming waveform. Output is bit-identical for any
// chunking of the same stream.
func (f *follower) Jam(tx []complex128) []complex128 {
	out := make([]complex128, len(tx))
	pos := 0
	for pos < len(tx) {
		abs := f.clock + int64(pos)
		for len(f.pending) > 0 && f.pending[0].applyAt <= abs {
			f.applyRetune(f.pending[0])
			f.pending = f.pending[1:]
		}
		// The segment ends at the earliest upcoming event: chunk end,
		// current sense window completing, or a pending retune applying.
		end := len(tx)
		if fill := pos + (f.SenseWindow - f.bufLen); fill < end {
			end = fill
		}
		if len(f.pending) > 0 {
			if next := int(f.pending[0].applyAt - f.clock); next < end {
				end = next
			}
		}
		if f.cur != nil {
			copy(out[pos:end], f.cur.Emit(end-pos))
		}
		f.bufLen += copy(f.buf[f.bufLen:], tx[pos:end])
		if f.bufLen == f.SenseWindow {
			f.mature(f.winStart + int64(f.SenseWindow))
			f.bufLen = 0
			f.winStart += int64(f.SenseWindow)
		}
		pos = end
	}
	f.clock += int64(len(tx))
	return out
}

// mature estimates one full sense window and, when the policy changes its
// mind, schedules a retune at winEnd + ReactionDelay.
func (f *follower) mature(winEnd int64) {
	if err := f.est.PSDInto(f.psd, f.buf); err != nil {
		return
	}
	if f.met != nil {
		f.met.Estimates.Inc()
	}
	var total float64
	for _, p := range f.psd {
		total += p
	}
	bw := spectral.OccupiedBandwidth(f.psd, occupiedFraction)
	// A window with no energy (the target is off the air) holds the last
	// tuning: there is nothing to estimate and retuning to a zero-power
	// phantom would only reveal the jammer's sensing cadence.
	if bw <= 0 || total/float64(len(f.psd)) < 1e-30 {
		if f.met != nil {
			f.met.Holds.Inc()
		}
		return
	}
	if bw > 1 {
		bw = 1
	}
	if f.met != nil {
		f.met.LastBW.Store(bw)
	}
	tun, changed := f.des.observe(f.psd, bw)
	if !changed {
		return
	}
	f.seedCur = f.seedCur*0x9e3779b97f4a7c15 + 0xbf58476d1ce4e5b9
	f.pending = append(f.pending, pendingRetune{
		applyAt: winEnd + int64(f.ReactionDelay),
		tun:     tun,
		seed:    f.seedCur,
	})
}

func (f *follower) applyRetune(p pendingRetune) {
	if src := f.des.build(p.tun, f.PowerBudget, p.seed); src != nil {
		f.cur = src
		if f.met != nil {
			f.met.Retunes.Inc()
		}
	}
}

// NewBurst marks an off-air gap: the partial sense window is discarded (it
// would straddle the gap), pending retunes are dropped (their estimates
// describe a transmission that has ended), and without Memory the jammer
// falls silent until a fresh estimate matures in the next burst.
func (f *follower) NewBurst() {
	f.bufLen = 0
	f.winStart = f.clock
	f.pending = f.pending[:0]
	if !f.Memory {
		f.cur = nil
		f.des.clearTuning()
	}
}

// Reset rewinds the jammer to its exact construction state: clock, sensing
// buffers, pending retunes, seed chain and all learned policy state. A
// replay of the same Jam/NewBurst sequence reproduces the output stream
// bit-for-bit.
func (f *follower) Reset() {
	f.clock = 0
	f.winStart = 0
	f.bufLen = 0
	f.pending = f.pending[:0]
	f.cur = nil
	f.seedCur = f.seed0
	f.des.resetState()
}

// Reactive senses the transmitted signal's occupied bandwidth and answers
// with matched band-limited noise after a reaction delay τ — the strong
// attacker of §2 (Wilhelm et al.'s reactive jammer). A retune is scheduled
// only when the estimate actually changes, so the waveform is stable while
// the target sits still and the obs Retunes counter counts real follows.
type Reactive struct {
	follower
	d reactiveDesign
}

type reactiveDesign struct {
	targetBW float64
}

// retuneDeadband is the relative estimate change below which Reactive keeps
// its waveform: Welch estimates of a noisy window jitter by a bin or two,
// and the paper's hop set is octave-spaced, so a ±25% deadband suppresses
// estimator noise while catching every real bandwidth hop.
const retuneDeadband = 1.25

func (d *reactiveDesign) observe(_ []float64, bw float64) (tuning, bool) {
	if d.targetBW > 0 {
		ratio := bw / d.targetBW
		if ratio < retuneDeadband && ratio > 1/retuneDeadband {
			return tuning{}, false
		}
	}
	d.targetBW = bw
	return tuning{bw: bw}, true
}

func (d *reactiveDesign) build(t tuning, power float64, seed uint64) Source {
	src, err := NewBandlimited(t.bw, power, seed)
	if err != nil {
		return nil
	}
	return src
}

func (d *reactiveDesign) clearTuning() { d.targetBW = 0 }
func (d *reactiveDesign) resetState()  { d.targetBW = 0 }

// NewReactive returns a reactive jammer. senseWindow must be a power of two
// >= 64 (half of it is the PSD segment length).
func NewReactive(reactionDelay, senseWindow int, power float64, seed uint64) (*Reactive, error) {
	r := &Reactive{}
	if err := r.follower.init(&r.d, reactionDelay, senseWindow, power, seed); err != nil {
		return nil, err
	}
	return r, nil
}

// Multitone places K constant-envelope tones on the strongest bins of the
// estimated chip spectrum, splitting its power budget evenly — the optimal
// power-constrained tone placement against a matched-filter receiver when
// the spectrum is known (arXiv:2602.06816). Tones are retuned like
// Reactive's noise: only when the estimated placement changes, applied one
// reaction delay after the estimate matured.
type Multitone struct {
	follower
	d multitoneDesign
}

type multitoneDesign struct {
	tones  int
	target []float64
}

func (d *multitoneDesign) observe(psd []float64, bw float64) (tuning, bool) {
	freqs := peakFreqs(psd, d.tones)
	if len(freqs) == 0 {
		return tuning{}, false
	}
	if equalFloat64s(freqs, d.target) {
		return tuning{}, false
	}
	d.target = append(d.target[:0], freqs...)
	return tuning{bw: bw, freqs: freqs}, true
}

func (d *multitoneDesign) build(t tuning, power float64, _ uint64) Source {
	return newToneSet(t.freqs, power)
}

func (d *multitoneDesign) clearTuning() { d.target = d.target[:0] }
func (d *multitoneDesign) resetState()  { d.target = d.target[:0] }

// NewMultitone returns a K-tone follower jammer. tones must be >= 1 and at
// most a quarter of the PSD resolution (senseWindow/8), so the greedy peak
// picker always has distinct bins to place on.
func NewMultitone(tones, reactionDelay, senseWindow int, power float64, seed uint64) (*Multitone, error) {
	if tones < 1 {
		return nil, fmt.Errorf("jammer: tone count %d must be >= 1", tones)
	}
	m := &Multitone{d: multitoneDesign{tones: tones}}
	if err := m.follower.init(&m.d, reactionDelay, senseWindow, power, seed); err != nil {
		return nil, err
	}
	if tones > senseWindow/8 {
		return nil, fmt.Errorf("jammer: tone count %d exceeds sense resolution (max %d for window %d)",
			tones, senseWindow/8, senseWindow)
	}
	return m, nil
}

// peakFreqs greedily picks the n strongest PSD bins with a ±1-bin exclusion
// zone around each pick (so tones spread over the occupied band instead of
// stacking on one lobe) and returns their center frequencies, sorted
// ascending. Bins with no power are never picked, so fewer than n tones may
// return. The PSD is in un-shifted order.
func peakFreqs(psd []float64, n int) []float64 {
	k := len(psd)
	blocked := make([]bool, k)
	freqs := make([]float64, 0, n)
	for len(freqs) < n {
		best, bestV := -1, 0.0
		for i, p := range psd {
			if !blocked[i] && p > bestV {
				best, bestV = i, p
			}
		}
		if best < 0 {
			break
		}
		blocked[best] = true
		blocked[(best+1)%k] = true
		blocked[(best-1+k)%k] = true
		f := float64(best) / float64(k)
		if f >= 0.5 {
			f -= 1
		}
		freqs = append(freqs, f)
	}
	sort.Float64s(freqs)
	return freqs
}

func equalFloat64s(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		//bhss:allow(floateq) exact bin frequencies (best/k): both sides come from the same integer-ratio construction, so change detection must be exact, not tolerant
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// toneSet is the multitone emitter: len(freqs) phase-continuous tones at
// equal power summing to the budget. Phases accumulate without reduction so
// the stream is bit-identical under any chunking.
type toneSet struct {
	freqs  []float64
	phases []float64
	amp    float64
	power  float64
}

func newToneSet(freqs []float64, power float64) *toneSet {
	ts := &toneSet{
		freqs:  append([]float64(nil), freqs...),
		phases: make([]float64, len(freqs)),
		power:  power,
	}
	if len(freqs) > 0 && power > 0 {
		ts.amp = math.Sqrt(power / float64(len(freqs)))
	}
	return ts
}

func (ts *toneSet) Power() float64 { return ts.power }

func (ts *toneSet) Reset() {
	for i := range ts.phases {
		ts.phases[i] = 0
	}
}

func (ts *toneSet) Emit(n int) []complex128 {
	out := make([]complex128, n)
	if ts.amp == 0 {
		return out
	}
	for k, fq := range ts.freqs {
		ph := ts.phases[k]
		step := 2 * math.Pi * fq
		for i := range out {
			out[i] += complex(ts.amp*math.Cos(ph), ts.amp*math.Sin(ph))
			ph += step
		}
		ts.phases[k] = ph
	}
	return out
}

// adaptiveBins is the number of octave bandwidth bins the adaptive jammer
// learns over: bin i covers two-sided bandwidths in (2^-(i+1), 2^-i], which
// spans the paper's whole hop set (10 MHz → bw 0.5 lands in bin 1,
// 0.15625 MHz → bw 0.0078 in the last bin) at 20 MS/s.
const adaptiveBins = 7

// adaptiveBinFor maps an occupied-bandwidth estimate to its octave bin.
func adaptiveBinFor(bw float64) int {
	idx := int(math.Floor(-math.Log2(bw)))
	if idx < 0 {
		idx = 0
	}
	if idx >= adaptiveBins {
		idx = adaptiveBins - 1
	}
	return idx
}

// adaptiveBinBW is the bin's representative bandwidth (geometric center).
func adaptiveBinBW(i int) float64 { return math.Exp2(-(float64(i) + 0.5)) }

// Adaptive learns the defender's hop-bandwidth distribution: every matured
// sense window increments an octave-bandwidth histogram (the observation
// history persists across bursts — that is the learning), and the transmit
// waveform is a mixture of band-limited noise components, one per observed
// bin, with the power budget allocated proportionally to the learned
// occupancy. Memory defaults to true: the learned mixture keeps jamming
// across burst gaps, which is the whole point of having learned it.
type Adaptive struct {
	follower
	d adaptiveDesign
}

type mixComponent struct {
	bin    int
	weight float64
}

type adaptiveDesign struct {
	counts [adaptiveBins]int64
	pool   [adaptiveBins]*Bandlimited // unit-power components, reseeded per build
}

func (d *adaptiveDesign) observe(_ []float64, bw float64) (tuning, bool) {
	d.counts[adaptiveBinFor(bw)]++
	var total int64
	for _, c := range d.counts {
		total += c
	}
	mix := make([]mixComponent, 0, adaptiveBins)
	for i, c := range d.counts {
		if c > 0 {
			mix = append(mix, mixComponent{bin: i, weight: float64(c) / float64(total)})
		}
	}
	// Every observation shifts the allocation, so the mixture always
	// retunes — the adaptive jammer converges instead of locking on.
	return tuning{bw: bw, mix: mix}, true
}

func (d *adaptiveDesign) build(t tuning, power float64, seed uint64) Source {
	m := &mixture{
		comps:  make([]*Bandlimited, 0, len(t.mix)),
		scales: make([]complex128, 0, len(t.mix)),
		power:  power,
	}
	for _, mc := range t.mix {
		if d.pool[mc.bin] == nil {
			// Representative bandwidths are always in (0, 1], so this
			// cannot fail; a unit-power component is scaled per mixture.
			b, err := NewBandlimited(adaptiveBinBW(mc.bin), 1, 0)
			if err != nil {
				return nil
			}
			d.pool[mc.bin] = b
		}
		comp := d.pool[mc.bin]
		comp.Reseed(seed + uint64(mc.bin+1)*0xbf58476d1ce4e5b9)
		m.comps = append(m.comps, comp)
		m.scales = append(m.scales, complex(math.Sqrt(power*mc.weight), 0))
	}
	return m
}

func (d *adaptiveDesign) clearTuning() {}

func (d *adaptiveDesign) resetState() {
	d.counts = [adaptiveBins]int64{}
	// Pool entries are reseeded on every build, so their stream state
	// needs no rewind here.
}

// NewAdaptive returns a power-budgeted adaptive jammer with Memory enabled.
func NewAdaptive(reactionDelay, senseWindow int, power float64, seed uint64) (*Adaptive, error) {
	a := &Adaptive{}
	if err := a.follower.init(&a.d, reactionDelay, senseWindow, power, seed); err != nil {
		return nil, err
	}
	a.Memory = true
	return a, nil
}

// mixture sums independently seeded unit-power band-limited components,
// each scaled so the total average power equals the learned allocation.
type mixture struct {
	comps  []*Bandlimited
	scales []complex128
	power  float64
}

func (m *mixture) Power() float64 { return m.power }

func (m *mixture) Reset() {}

func (m *mixture) Emit(n int) []complex128 {
	out := make([]complex128, n)
	for i, c := range m.comps {
		s := m.scales[i]
		for k, v := range c.Emit(n) {
			out[k] += s * v
		}
	}
	return out
}
