package jammer

import (
	"math/cmplx"
	"testing"
)

// FuzzParseJamSpec pins the spec grammar contract: ParseSpec never panics,
// and for every accepted spec the canonical form is a fixed point —
// ParseSpec(c.String()) reproduces c exactly and String is stable across the
// round trip. Accepted configs must also Build into a jammer that emits only
// finite samples (or fail Build with a clean error). Run locally with
//
//	go test ./internal/jammer -run=FuzzParseJamSpec -fuzz=FuzzParseJamSpec -fuzztime=30s
//
// CI runs it in the fuzz-smoke job with -fuzzminimizetime 10x so crashers
// shrink to readable reproducers before they are reported.
func FuzzParseJamSpec(f *testing.F) {
	seeds := []string{
		"jam=bandlimited",
		"jam=bandlimited,bw=0.625,power=100",
		"jam=bandlimited,duty=0.25:1024,seed=42",
		"jam=tone,freq=-3.5,power=2",
		"jam=sweep,span=5,period=8192",
		"jam=hopping,pattern=linear,dwell=2048",
		"jam=reactive,delay=256,sense=1024,power=2",
		"jam=reactive,memory=1",
		"jam=multitone,tones=8,sense=1024",
		"jam=adaptive,delay=0,memory=0",
		"jam=,bw=",
		"jam=reactive,duty=0.5",
		"power=2,,jam=tone",
		"jam=bandlimited,bw=1e309",
		"jam=multitone,tones=99,sense=64",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		c, err := ParseSpec(spec)
		if err != nil {
			return // rejected specs only need to not panic
		}
		canon := c.String()
		c2, err := ParseSpec(canon)
		if err != nil {
			t.Fatalf("canonical form %q of accepted spec %q does not re-parse: %v",
				canon, spec, err)
		}
		if c2 != c {
			t.Fatalf("round trip of %q: %+v != %+v", spec, c2, c)
		}
		if again := c2.String(); again != canon {
			t.Fatalf("String not stable: %q then %q", canon, again)
		}
		src, err := c.Build(20, 1)
		if err != nil {
			return // out-of-band configs may fail Build, but cleanly
		}
		for i, v := range src.Emit(256) {
			if cmplx.IsNaN(v) || cmplx.IsInf(v) {
				t.Fatalf("spec %q emits non-finite sample at %d: %v", spec, i, v)
			}
		}
	})
}
