// Package golden pins end-to-end IQ vectors — a clean transmit burst, the
// same burst through the canonical testbed impairment chain, the burst
// under band-limited jamming, and each follower jammer's waveform over the
// burst at two seeds — as byte-exact files with SHA-256 checksums. Any
// change to the modulator, the impairment stages, the jammer noise
// shaping, the follower estimator, or the PRNG alters a hash and fails here:
// the test distinguishes "intentional waveform change" (regenerate with
// -update and review the diff) from "accidental numerical drift".
//
// Vectors are serialized as little-endian float32 I/Q pairs (the iqstream
// wire format), which also quantizes away the last float64 bits so the
// pins hold on any IEEE-754 platform whose float32 rounding agrees.
package golden

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"bhss/internal/core"
	"bhss/internal/impair"
	"bhss/internal/jammer"
	"bhss/internal/stats"
)

var update = flag.Bool("update", false, "regenerate golden IQ vectors and testdata/golden.sum")

const (
	goldenSeed    = 42
	goldenPayload = "bandwidth hopping golden vector"
	// The fidelity sweep's "testbed" level; changing that spec is a
	// waveform change and must regenerate these vectors.
	goldenImpairSpec = "cfo=1e3,ppm=10,phnoise=-85,quant=10"
)

// vectors defines the pinned captures. Generation must be fully
// deterministic: fixed seeds, no wall clock, single goroutine.
func vectors(t *testing.T) []struct {
	name string
	iq   []complex128
} {
	t.Helper()
	cfg := core.DefaultConfig(goldenSeed)
	tx, err := core.NewTransmitter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	burst, err := tx.EncodeFrame([]byte(goldenPayload))
	if err != nil {
		t.Fatal(err)
	}

	chain, err := impair.NewFromSpec(goldenImpairSpec, cfg.SampleRate, goldenSeed)
	if err != nil {
		t.Fatal(err)
	}
	impaired := chain.ProcessAppend(nil, burst.Samples)

	jam, err := jammer.NewBandlimited(2.5/cfg.SampleRate, stats.FromDB(10), goldenSeed)
	if err != nil {
		t.Fatal(err)
	}
	noise := jam.Emit(len(burst.Samples))
	jammed := make([]complex128, len(burst.Samples))
	for i := range jammed {
		jammed[i] = burst.Samples[i] + noise[i]
	}

	vecs := []struct {
		name string
		iq   []complex128
	}{
		{"tx_burst", burst.Samples},
		{"impaired_burst", impaired},
		{"jammed_burst", jammed},
	}

	// The follower zoo: each sensing adversary overhears the same pinned
	// burst and its jamming waveform is pinned at two seeds. Built through
	// the spec grammar, so these hashes also pin ParseSpec→Build end to end.
	for _, spec := range []string{
		"jam=reactive,delay=256,sense=512,power=10",
		"jam=multitone,tones=4,delay=256,sense=512,power=10",
		"jam=adaptive,delay=256,sense=512,power=10",
	} {
		kind := strings.TrimPrefix(strings.SplitN(spec, ",", 2)[0], "jam=")
		for _, seed := range []uint64{goldenSeed, goldenSeed + 1000} {
			src, err := jammer.NewFromSpec(spec, cfg.SampleRate, seed)
			if err != nil {
				t.Fatal(err)
			}
			follower, ok := src.(jammer.TxAware)
			if !ok {
				t.Fatalf("%s did not build a TxAware jammer", spec)
			}
			vecs = append(vecs, struct {
				name string
				iq   []complex128
			}{
				fmt.Sprintf("follower_%s_s%d", kind, seed),
				follower.Jam(burst.Samples),
			})
		}
	}
	return vecs
}

func serialize(iq []complex128) []byte {
	var buf bytes.Buffer
	for _, v := range iq {
		binary.Write(&buf, binary.LittleEndian, float32(real(v)))
		binary.Write(&buf, binary.LittleEndian, float32(imag(v)))
	}
	return buf.Bytes()
}

func readSums(t *testing.T) map[string]string {
	t.Helper()
	raw, err := os.ReadFile(filepath.Join("testdata", "golden.sum"))
	if err != nil {
		t.Fatalf("read golden.sum (run with -update to create): %v", err)
	}
	sums := map[string]string{}
	for _, line := range strings.Split(strings.TrimSpace(string(raw)), "\n") {
		name, sum, ok := strings.Cut(line, "  ")
		if !ok {
			t.Fatalf("malformed golden.sum line %q", line)
		}
		sums[name] = sum
	}
	return sums
}

// TestGoldenVectors regenerates each vector from scratch and requires it
// to match both the checked-in .iq file (byte-exact) and the SHA-256 pin
// in golden.sum.
func TestGoldenVectors(t *testing.T) {
	vecs := vectors(t)

	if *update {
		var lines []string
		for _, v := range vecs {
			raw := serialize(v.iq)
			path := filepath.Join("testdata", v.name+".iq")
			if err := os.MkdirAll("testdata", 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, raw, 0o644); err != nil {
				t.Fatal(err)
			}
			sum := sha256.Sum256(raw)
			lines = append(lines, fmt.Sprintf("%s  %s", v.name, hex.EncodeToString(sum[:])))
		}
		sort.Strings(lines)
		if err := os.WriteFile(filepath.Join("testdata", "golden.sum"),
			[]byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Log("golden vectors regenerated; review the diff before committing")
		return
	}

	sums := readSums(t)
	for _, v := range vecs {
		t.Run(v.name, func(t *testing.T) {
			raw := serialize(v.iq)
			sum := sha256.Sum256(raw)
			want, ok := sums[v.name]
			if !ok {
				t.Fatalf("no pin for %s in golden.sum (run -update)", v.name)
			}
			if got := hex.EncodeToString(sum[:]); got != want {
				t.Errorf("regenerated %s hash %s != pinned %s\n"+
					"the waveform changed; if intentional: go test ./internal/golden/ -run TestGoldenVectors -update",
					v.name, got, want)
			}
			disk, err := os.ReadFile(filepath.Join("testdata", v.name+".iq"))
			if err != nil {
				t.Fatalf("read golden file: %v", err)
			}
			if !bytes.Equal(disk, raw) {
				t.Errorf("%s.iq on disk differs from regenerated vector", v.name)
			}
		})
	}
}

// TestGoldenImpairedDiffers is a sanity check on the campaign itself: the
// impaired and jammed vectors must actually differ from the clean burst
// (a silently disabled chain would otherwise pin three identical files).
func TestGoldenImpairedDiffers(t *testing.T) {
	vecs := vectors(t)
	clean := serialize(vecs[0].iq)
	for _, v := range vecs[1:] {
		if bytes.Equal(clean, serialize(v.iq)) {
			t.Errorf("%s is byte-identical to the clean burst", v.name)
		}
	}
}

// TestGoldenFinite: golden vectors must be finite everywhere — a NaN in a
// pinned file would poison every downstream consumer invisibly.
func TestGoldenFinite(t *testing.T) {
	for _, v := range vectors(t) {
		for i, s := range v.iq {
			if math.IsNaN(real(s)) || math.IsNaN(imag(s)) ||
				math.IsInf(real(s), 0) || math.IsInf(imag(s), 0) {
				t.Fatalf("%s: non-finite sample at %d", v.name, i)
			}
		}
	}
}
