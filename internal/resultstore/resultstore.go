// Package resultstore is the experiment-campaign datastore: an append-only,
// crash-safe record log holding one entry per measured experiment run —
// keyed by (git rev, experiment id, scale, seed, impair spec, chaos spec) —
// with the run's canonical scalar metrics (power advantage, packet loss,
// mean carrier lock, throughput) and a full obs.Snapshot for drill-down.
//
// The store deliberately avoids any database dependency (the repo's go.mod
// is empty and stays that way): records are length-prefixed JSON frames
// with a per-record CRC32, and Open recovers from a torn final write by
// truncating the file back to the last intact frame. An in-memory index
// rebuilt on Open serves all reads; appends go straight to disk and are
// fsynced before Append returns, so a crash never loses an acknowledged
// record and never corrupts an earlier one.
//
// Two record kinds share the log: results carry measurements; anchors mark
// one prior result as the regression baseline of its series (the key minus
// the git rev). Compare diffs a fresh result against the last anchored
// record of the same series, and NewDashboard renders per-series metric
// trajectories across revisions. DESIGN.md §15 documents the format, the
// key schema and the anchor/compare workflow.
//
// The package never reads the wall clock or any other ambient state
// (bhsslint's detrand/dettaint contracts): timestamps and git revisions are
// supplied by the caller, so the stored bytes are a pure function of the
// appended records.
package resultstore

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"bhss/internal/obs"
)

// Schema is the record-format version stamped into every record. Decoders
// reject records from a newer schema instead of misreading them.
const Schema = 1

// logName is the record log's file name inside the store directory.
const logName = "records.bhss"

// frameHeaderSize is the per-record framing overhead: a uint32 little-endian
// payload length followed by a uint32 little-endian CRC32 (IEEE) of the
// payload bytes.
const frameHeaderSize = 8

// maxRecordSize bounds a single record's JSON payload (64 MiB). The largest
// legitimate record — a full-sweep obs snapshot — is under a megabyte; the
// bound keeps a corrupt length prefix from driving a giant allocation.
const maxRecordSize = 64 << 20

// Kind discriminates the two record types sharing the log.
type Kind string

const (
	// KindResult is a measurement record.
	KindResult Kind = "result"
	// KindAnchor marks a prior result (AnchorSeq) as the comparison
	// baseline of its series.
	KindAnchor Kind = "anchor"
)

// Key identifies one stored measurement: the revision the code was built
// from plus everything that parameterizes the run. Two records with equal
// keys are replicates of the same measurement.
type Key struct {
	GitRev     string `json:"git_rev"`
	Experiment string `json:"experiment"`
	Scale      string `json:"scale"`
	Seed       uint64 `json:"seed"`
	Impair     string `json:"impair,omitempty"`
	Chaos      string `json:"chaos,omitempty"`
}

// Series is the canonical key-minus-rev identity: records of one series are
// the same measurement repeated across revisions, which is exactly what the
// regression gate diffs and the dashboard plots.
func (k Key) Series() string {
	return fmt.Sprintf("%s/%s/seed=%d/impair=%s/chaos=%s",
		k.Experiment, k.Scale, k.Seed, k.Impair, k.Chaos)
}

// String renders the full key including the (shortened) revision.
func (k Key) String() string { return k.Series() + "@" + ShortRev(k.GitRev) }

// ShortRev abbreviates a 40-hex git revision to 12 characters for display;
// shorter or non-hex values ("unknown", dirty-suffixed revs) pass through.
func ShortRev(rev string) string {
	if len(rev) > 12 {
		return rev[:12]
	}
	return rev
}

// Metric is one canonical scalar result of a run. HigherIsBetter orients
// the regression gate: an advantage or throughput regresses downward, a
// packet-loss rate regresses upward.
type Metric struct {
	Name           string  `json:"name"`
	Value          float64 `json:"value"`
	Unit           string  `json:"unit,omitempty"`
	HigherIsBetter bool    `json:"higher_is_better"`
}

// Record is one log entry. For KindResult, Metrics and (optionally) Obs
// carry the measurement; for KindAnchor, AnchorSeq names the result being
// marked as its series' baseline and Key is copied from that result so the
// index never needs to chase pointers.
type Record struct {
	Schema int  `json:"schema"`
	Kind   Kind `json:"kind"`
	// Seq is the store-assigned, strictly increasing record number.
	Seq uint64 `json:"seq"`
	// UnixMS is a caller-supplied wall-clock stamp (milliseconds). The
	// store never reads the clock itself; a zero stamp is legal.
	UnixMS    int64         `json:"unix_ms,omitempty"`
	Key       Key           `json:"key"`
	Metrics   []Metric      `json:"metrics,omitempty"`
	Obs       *obs.Snapshot `json:"obs,omitempty"`
	AnchorSeq uint64        `json:"anchor_seq,omitempty"`
}

// Metric returns the named metric and whether the record carries it.
func (r Record) Metric(name string) (Metric, bool) {
	for _, m := range r.Metrics {
		if m.Name == name {
			return m, true
		}
	}
	return Metric{}, false
}

// Store is an open record log plus its in-memory index. All methods are
// safe for concurrent use; reads never touch the disk after Open.
type Store struct {
	mu   sync.Mutex
	f    *os.File
	path string

	recs    []Record
	bySeq   map[uint64]int
	nextSeq uint64
}

// Open opens (creating if needed) the store in dir. A torn final record —
// the remains of a crash mid-append — is detected by its CRC/length frame
// and cut off by truncating the log back to the last intact frame; every
// earlier record is preserved bit-for-bit.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("resultstore: %w", err)
	}
	path := filepath.Join(dir, logName)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("resultstore: %w", err)
	}
	s := &Store{f: f, path: path, bySeq: make(map[uint64]int), nextSeq: 1}
	if err := s.load(); err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

// load scans the log, indexes every intact record and truncates a torn
// tail. Called once from Open, before the store is shared.
func (s *Store) load() error {
	data, err := io.ReadAll(s.f)
	if err != nil {
		return fmt.Errorf("resultstore: read %s: %w", s.path, err)
	}
	good := 0 // byte offset of the end of the last intact frame
	for off := 0; off < len(data); {
		rest := data[off:]
		if len(rest) < frameHeaderSize {
			break // torn header
		}
		n := binary.LittleEndian.Uint32(rest)
		sum := binary.LittleEndian.Uint32(rest[4:])
		if n == 0 || n > maxRecordSize || int(n) > len(rest)-frameHeaderSize {
			break // torn or corrupt payload length
		}
		payload := rest[frameHeaderSize : frameHeaderSize+int(n)]
		if crc32.ChecksumIEEE(payload) != sum {
			break // torn payload
		}
		var rec Record
		if err := json.Unmarshal(payload, &rec); err != nil {
			break // CRC-intact but undecodable: treat as end of log
		}
		if rec.Schema > Schema {
			return fmt.Errorf("resultstore: %s record %d has schema %d, this build reads ≤ %d",
				s.path, rec.Seq, rec.Schema, Schema)
		}
		s.index(rec)
		off += frameHeaderSize + int(n)
		good = off
	}
	if good < len(data) {
		// Torn tail: cut the log back to the last intact frame so the next
		// append starts on a clean boundary.
		if err := s.f.Truncate(int64(good)); err != nil {
			return fmt.Errorf("resultstore: truncate torn tail of %s: %w", s.path, err)
		}
	}
	if _, err := s.f.Seek(int64(good), io.SeekStart); err != nil {
		return fmt.Errorf("resultstore: %w", err)
	}
	return nil
}

// index registers one decoded record in the in-memory maps.
func (s *Store) index(rec Record) {
	s.bySeq[rec.Seq] = len(s.recs)
	s.recs = append(s.recs, rec)
	if rec.Seq >= s.nextSeq {
		s.nextSeq = rec.Seq + 1
	}
}

// Close releases the log file. The store must not be used afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.f.Close()
}

// Append writes rec to the log and returns the stored form. The store
// assigns Seq and stamps Schema; a zero Kind defaults to KindResult. The
// frame is written in a single Write and fsynced before Append returns.
func (s *Store) Append(rec Record) (Record, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if rec.Kind == "" {
		rec.Kind = KindResult
	}
	rec.Schema = Schema
	rec.Seq = s.nextSeq
	if err := s.appendLocked(rec); err != nil {
		return Record{}, err
	}
	return rec, nil
}

func (s *Store) appendLocked(rec Record) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("resultstore: encode record: %w", err)
	}
	if len(payload) > maxRecordSize {
		return fmt.Errorf("resultstore: record of %d bytes exceeds the %d-byte frame bound", len(payload), maxRecordSize)
	}
	frame := make([]byte, frameHeaderSize+len(payload))
	putFrame(frame, payload)
	if _, err := s.f.Write(frame); err != nil {
		return fmt.Errorf("resultstore: append: %w", err)
	}
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("resultstore: sync: %w", err)
	}
	s.index(rec)
	s.nextSeq = rec.Seq + 1
	return nil
}

// putFrame fills frame — which must be frameHeaderSize+len(payload) long —
// with the length prefix, payload CRC and payload bytes.
func putFrame(frame, payload []byte) {
	binary.LittleEndian.PutUint32(frame, uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.ChecksumIEEE(payload))
	copy(frame[frameHeaderSize:], payload)
}

// Anchor appends an anchor record marking the result with the given Seq as
// the comparison baseline of its series. Later anchors for the same series
// supersede earlier ones.
func (s *Store) Anchor(seq uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	i, ok := s.bySeq[seq]
	if !ok {
		return fmt.Errorf("resultstore: anchor target seq %d not in store", seq)
	}
	target := s.recs[i]
	if target.Kind != KindResult {
		return fmt.Errorf("resultstore: anchor target seq %d is a %s record, not a result", seq, target.Kind)
	}
	return s.appendLocked(Record{
		Schema:    Schema,
		Kind:      KindAnchor,
		Seq:       s.nextSeq,
		Key:       target.Key,
		AnchorSeq: seq,
	})
}

// Len returns the total record count, both kinds.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.recs)
}

// Records returns a copy of every record in append order.
func (s *Store) Records() []Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Record, len(s.recs))
	copy(out, s.recs)
	return out
}

// Get returns the record with the given Seq.
func (s *Store) Get(seq uint64) (Record, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	i, ok := s.bySeq[seq]
	if !ok {
		return Record{}, false
	}
	return s.recs[i], true
}

// SeriesRecords returns the result records of one series in append order —
// the trajectory the dashboard plots.
func (s *Store) SeriesRecords(series string) []Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []Record
	for _, r := range s.recs {
		if r.Kind == KindResult && r.Key.Series() == series {
			out = append(out, r)
		}
	}
	return out
}

// SeriesList returns every distinct result series in the store, sorted.
func (s *Store) SeriesList() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	seen := make(map[string]bool)
	var out []string
	for _, r := range s.recs {
		if r.Kind != KindResult {
			continue
		}
		id := r.Key.Series()
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}

// LastAnchored resolves the newest anchor of the series to its result
// record: the baseline Compare diffs against. An anchor whose target has
// vanished (possible only under external log surgery) is skipped in favor
// of the next older one.
func (s *Store) LastAnchored(series string) (Record, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := len(s.recs) - 1; i >= 0; i-- {
		r := s.recs[i]
		if r.Kind != KindAnchor || r.Key.Series() != series {
			continue
		}
		if j, ok := s.bySeq[r.AnchorSeq]; ok && s.recs[j].Kind == KindResult {
			return s.recs[j], true
		}
	}
	return Record{}, false
}
