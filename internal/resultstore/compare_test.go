package resultstore

import (
	"bytes"
	"strings"
	"testing"
)

// fig13Record mimics what bhssbench stores for a fig13-quick run: the
// headline advantage plus the sweep-wide loss and lock observables.
func fig13Record(rev string, adv, worst, plr, lock float64) Record {
	return Record{
		Key: testKey(rev),
		Metrics: []Metric{
			{Name: "adv_db", Value: adv, Unit: "dB", HigherIsBetter: true},
			{Name: "adv_db_worst", Value: worst, Unit: "dB", HigherIsBetter: true},
			{Name: "packet_loss", Value: plr, HigherIsBetter: false},
			{Name: "carrier_lock", Value: lock, HigherIsBetter: true},
		},
	}
}

func TestCompareWithinToleranceOK(t *testing.T) {
	base := fig13Record("rev0", 15.47, -0.12, 0.31, 0.91)
	cur := fig13Record("rev1", 15.33, -0.12, 0.31, 0.89) // −0.14 dB: inside 0.2
	d := Compare(cur, base, nil)
	if d.Regressed() {
		t.Fatalf("within-tolerance diff regressed: %+v", d.Rows)
	}
}

// TestCompareInjectedRegression is the acceptance check's harness form: a
// "jammer power bump" shows up as a dropped advantage and grown packet
// loss, and the gate must fail with a readable per-metric table.
func TestCompareInjectedRegression(t *testing.T) {
	base := fig13Record("rev0", 15.47, -0.12, 0.31, 0.91)
	cur := fig13Record("rev1", 14.90, -0.12, 0.35, 0.91) // adv −0.57 dB, loss +0.04
	d := Compare(cur, base, nil)
	if !d.Regressed() {
		t.Fatal("injected regression not detected")
	}
	var buf bytes.Buffer
	if err := d.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"adv_db", "packet_loss", "REGRESSED", "baseline", "-0.57", "+0.04"} {
		if !strings.Contains(out, want) {
			t.Fatalf("diff table missing %q:\n%s", want, out)
		}
	}
	// Exactly the two injured metrics must be named in the verdict line.
	if !strings.Contains(out, "REGRESSED: adv_db, packet_loss") {
		t.Fatalf("summary line wrong:\n%s", out)
	}
}

func TestComparePacketLossGateIsZeroTolerance(t *testing.T) {
	base := fig13Record("rev0", 15.47, -0.12, 0.31, 0.91)
	cur := fig13Record("rev1", 15.47, -0.12, 0.310001, 0.91)
	if d := Compare(cur, base, nil); !d.Regressed() {
		t.Fatal("any packet-loss growth must gate")
	}
	// Shrinking loss is an improvement, never a regression.
	better := fig13Record("rev1", 15.47, -0.12, 0.25, 0.91)
	if d := Compare(better, base, nil); d.Regressed() {
		t.Fatal("packet-loss improvement flagged as regression")
	}
}

func TestCompareMissingGatedMetricRegresses(t *testing.T) {
	base := fig13Record("rev0", 15.47, -0.12, 0.31, 0.91)
	cur := Record{Key: testKey("rev1"), Metrics: []Metric{
		{Name: "adv_db", Value: 15.47, Unit: "dB", HigherIsBetter: true},
	}}
	d := Compare(cur, base, nil)
	if !d.Regressed() {
		t.Fatal("vanished gated metric must regress")
	}
	var buf bytes.Buffer
	if err := d.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "MISSING") {
		t.Fatalf("missing metric not marked:\n%s", buf.String())
	}
}

func TestCompareUngatedMetricsAreInformational(t *testing.T) {
	base := Record{Key: testKey("rev0"), Metrics: []Metric{
		{Name: "serial_msps", Value: 64.5, Unit: "MS/s", HigherIsBetter: true},
	}}
	cur := Record{Key: testKey("rev1"), Metrics: []Metric{
		{Name: "serial_msps", Value: 12.0, Unit: "MS/s", HigherIsBetter: true},
		{Name: "pipelined_msps", Value: 11.0, Unit: "MS/s", HigherIsBetter: true},
	}}
	d := Compare(cur, base, nil)
	if d.Regressed() {
		t.Fatal("ungated throughput drop must not gate (CI bench job owns it)")
	}
	var buf bytes.Buffer
	if err := d.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "(info)") {
		t.Fatalf("ungated rows not marked informational:\n%s", buf.String())
	}
}

func TestCompareCustomTolerances(t *testing.T) {
	base := fig13Record("rev0", 15.47, -0.12, 0.31, 0.91)
	cur := fig13Record("rev1", 14.90, -0.12, 0.31, 0.91)
	if d := Compare(cur, base, Tolerances{"adv_db": 1.0}); d.Regressed() {
		t.Fatal("custom 1.0 dB tolerance should forgive a 0.57 dB drop")
	}
}
