package resultstore

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"bhss/internal/obs"
)

func testKey(rev string) Key {
	return Key{
		GitRev:     rev,
		Experiment: "fig13",
		Scale:      "quick",
		Seed:       1,
	}
}

func testRecord(rev string, adv float64) Record {
	return Record{
		Key:    testKey(rev),
		UnixMS: 1754600000000,
		Metrics: []Metric{
			{Name: "adv_db", Value: adv, Unit: "dB", HigherIsBetter: true},
			{Name: "packet_loss", Value: 0.31, HigherIsBetter: false},
		},
	}
}

func TestAppendReopenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]Record, 0, 3)
	for i := 0; i < 3; i++ {
		rec, err := s.Append(testRecord(fmt.Sprintf("rev%d", i), 15.0+float64(i)))
		if err != nil {
			t.Fatal(err)
		}
		if rec.Seq != uint64(i+1) {
			t.Fatalf("seq = %d, want %d", rec.Seq, i+1)
		}
		want = append(want, rec)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got := s2.Records()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("reopen mismatch:\ngot  %+v\nwant %+v", got, want)
	}
	// Appends must continue the sequence after reopen.
	rec, err := s2.Append(testRecord("rev3", 18))
	if err != nil {
		t.Fatal(err)
	}
	if rec.Seq != 4 {
		t.Fatalf("post-reopen seq = %d, want 4", rec.Seq)
	}
}

// TestTornTailRecovery is the durability property test: whatever byte
// offset a crash tears the final record at, reopening recovers every prior
// record bit-identically and the torn bytes are cut off so the next append
// lands on a clean frame boundary.
func TestTornTailRecovery(t *testing.T) {
	// Build a reference log with three records, remember the file length
	// after the second: everything past it belongs to the torn record.
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	var want []Record
	for i := 0; i < 2; i++ {
		rec, err := s.Append(testRecord(fmt.Sprintf("rev%d", i), 15.0+float64(i)))
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, rec)
	}
	logPath := filepath.Join(dir, logName)
	intact, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append(testRecord("rev2", 17)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(full) <= len(intact) {
		t.Fatalf("third append did not grow the log (%d -> %d bytes)", len(intact), len(full))
	}

	for cut := len(intact); cut < len(full); cut++ {
		dir2 := t.TempDir()
		torn := append([]byte(nil), full[:cut]...)
		if err := os.WriteFile(filepath.Join(dir2, logName), torn, 0o644); err != nil {
			t.Fatal(err)
		}
		s2, err := Open(dir2)
		if err != nil {
			t.Fatalf("cut at %d: reopen: %v", cut, err)
		}
		if got := s2.Records(); !reflect.DeepEqual(got, want) {
			t.Fatalf("cut at %d: recovered %d records, want the 2 intact ones", cut, len(got))
		}
		// The torn bytes must be gone from disk so the next append starts a
		// valid frame.
		onDisk, err := os.ReadFile(filepath.Join(dir2, logName))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(onDisk, intact) {
			t.Fatalf("cut at %d: log not truncated to last intact frame (%d bytes, want %d)",
				cut, len(onDisk), len(intact))
		}
		rec, err := s2.Append(testRecord("rev2b", 17.5))
		if err != nil {
			t.Fatalf("cut at %d: append after recovery: %v", cut, err)
		}
		if rec.Seq != 3 {
			t.Fatalf("cut at %d: post-recovery seq = %d, want 3", cut, rec.Seq)
		}
		if err := s2.Close(); err != nil {
			t.Fatal(err)
		}
		s3, err := Open(dir2)
		if err != nil {
			t.Fatalf("cut at %d: second reopen: %v", cut, err)
		}
		if got := s3.Len(); got != 3 {
			t.Fatalf("cut at %d: after recovery append, %d records, want 3", cut, got)
		}
		s3.Close()
	}
}

// TestCorruptMidFrameStopsAtFlip guards the recovery rule's scope: a flipped
// byte inside an earlier record (not a torn tail) still truncates at the
// first bad frame rather than decoding garbage.
func TestCorruptMidFrameStopsAtFlip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	first, err := s.Append(testRecord("rev0", 15))
	if err != nil {
		t.Fatal(err)
	}
	firstLen, err := s.f.Seek(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append(testRecord("rev1", 16)); err != nil {
		t.Fatal(err)
	}
	s.Close()

	logPath := filepath.Join(dir, logName)
	data, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	data[firstLen+frameHeaderSize+3] ^= 0xff // flip a payload byte of record 2
	if err := os.WriteFile(logPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got := s2.Records()
	if len(got) != 1 || !reflect.DeepEqual(got[0], first) {
		t.Fatalf("recovered %+v, want only the first record", got)
	}
}

// TestObsSnapshotRoundTrip pins the storage contract for drill-down data: a
// stored obs.Snapshot decodes bit-identically — every counter, gauge,
// histogram quantile and the schema stamp — through the full frame encode/
// decode path, not just through encoding/json in isolation.
func TestObsSnapshotRoundTrip(t *testing.T) {
	p := obs.NewPipeline()
	p.Tx.Frames.Add(17)
	p.Rx.Decoded.Add(13)
	p.Exp.LastPLR.Store(0.4375)
	p.Exp.LastSNRdB.Store(-3.21e-7) // exercise float round-trip off the easy path
	p.Exp.PointNS.Observe(12345)
	p.Exp.PointNS.Observe(999999999)
	// SnapshotLight is the stored form (bhssbench drops the transient span
	// trace); a full Snapshot's empty-but-non-nil Spans slice would not
	// survive the omitempty round trip, and has no business being durable.
	snap := p.SnapshotLight()
	if snap.Schema != obs.SnapshotSchema {
		t.Fatalf("snapshot schema = %d, want %d", snap.Schema, obs.SnapshotSchema)
	}

	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	rec := testRecord("rev0", 15)
	rec.Obs = &snap
	if _, err := s.Append(rec); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got, ok := s2.Get(1)
	if !ok || got.Obs == nil {
		t.Fatal("stored snapshot missing after reopen")
	}
	if !reflect.DeepEqual(*got.Obs, snap) {
		t.Fatalf("snapshot round trip not bit-identical:\ngot  %+v\nwant %+v", *got.Obs, snap)
	}
	// Belt and braces: the JSON re-encoding of the decoded snapshot must be
	// byte-identical to the original encoding (no float drift).
	a, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(*got.Obs)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("snapshot JSON encoding drifted across the round trip")
	}
}

func TestAnchorAndLastAnchored(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	r1, err := s.Append(testRecord("rev0", 15))
	if err != nil {
		t.Fatal(err)
	}
	series := r1.Key.Series()
	if _, ok := s.LastAnchored(series); ok {
		t.Fatal("anchor reported before any was set")
	}
	if err := s.Anchor(r1.Seq); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.LastAnchored(series); !ok || got.Seq != r1.Seq {
		t.Fatalf("LastAnchored = %+v, %v; want seq %d", got, ok, r1.Seq)
	}
	// A newer anchor supersedes; records from other series don't interfere.
	r2, err := s.Append(testRecord("rev1", 16))
	if err != nil {
		t.Fatal(err)
	}
	other := testRecord("rev1", 3)
	other.Key.Experiment = "fig14"
	if _, err := s.Append(other); err != nil {
		t.Fatal(err)
	}
	if err := s.Anchor(r2.Seq); err != nil {
		t.Fatal(err)
	}
	if got, _ := s.LastAnchored(series); got.Seq != r2.Seq {
		t.Fatalf("newest anchor seq = %d, want %d", got.Seq, r2.Seq)
	}
	// Anchoring an anchor or a missing seq is an error.
	if err := s.Anchor(9999); err == nil {
		t.Fatal("anchored a missing seq")
	}
	recs := s.Records()
	if err := s.Anchor(recs[1].Seq); err == nil { // recs[1] is the first anchor record
		t.Fatal("anchored an anchor record")
	}
	if got := len(s.SeriesList()); got != 2 {
		t.Fatalf("series count = %d, want 2", got)
	}
	if got := len(s.SeriesRecords(series)); got != 2 {
		t.Fatalf("series records = %d, want 2", got)
	}
}

func TestSchemaFromTheFutureRejected(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	rec := testRecord("rev0", 15)
	if _, err := s.Append(rec); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Hand-craft a future-schema frame and append it to the log.
	future := testRecord("rev1", 16)
	future.Schema = Schema + 1
	future.Seq = 2
	payload, err := json.Marshal(future)
	if err != nil {
		t.Fatal(err)
	}
	logPath := filepath.Join(dir, logName)
	f, err := os.OpenFile(logPath, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	frame := make([]byte, frameHeaderSize+len(payload))
	putFrame(frame, payload)
	if _, err := f.Write(frame); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := Open(dir); err == nil {
		t.Fatal("future-schema record accepted")
	}
}
