package resultstore

import (
	"fmt"
	"html/template"
	"net/http"
	"strconv"
	"strings"
)

// NewDashboard returns the trajectory dashboard over a store, a pure
// stdlib net/http + html/template handler with three routes:
//
//	/                  — every series: record counts, latest metrics, sparkline
//	/series?id=<series> — one series' metric trajectories across revisions
//	/record?seq=<n>     — one record in full, including the obs snapshot
//
// The handler reads the store's in-memory index on every request, so a
// long-running `bhssbench -serve` picks up records appended by the same
// process; records appended by another process require a restart (the log
// is read once at Open).
func NewDashboard(s *Store) (http.Handler, error) {
	t, err := template.New("dash").Funcs(template.FuncMap{
		"short":  ShortRev,
		"spark":  sparkline,
		"numf":   num,
		"signf":  signed,
		"msTime": msTime,
	}).Parse(dashTemplates)
	if err != nil {
		return nil, fmt.Errorf("resultstore: dashboard templates: %w", err)
	}
	d := &dashboard{store: s, tmpl: t}
	mux := http.NewServeMux()
	mux.HandleFunc("/", d.index)
	mux.HandleFunc("/series", d.series)
	mux.HandleFunc("/record", d.record)
	return mux, nil
}

type dashboard struct {
	store *Store
	tmpl  *template.Template
}

// seriesView is one row of the index page and the header of a series page.
type seriesView struct {
	ID       string
	Records  []Record
	Latest   Record
	Anchored Record
	HasAnch  bool
	// Trajectories is one named value-track per metric, in first-seen
	// order, aligned with Records.
	Trajectories []trajectory
}

type trajectory struct {
	Metric Metric // name/unit/orientation from the newest occurrence
	Values []float64
	Have   []bool
}

func (d *dashboard) seriesView(id string) (seriesView, bool) {
	recs := d.store.SeriesRecords(id)
	if len(recs) == 0 {
		return seriesView{}, false
	}
	v := seriesView{ID: id, Records: recs, Latest: recs[len(recs)-1]}
	v.Anchored, v.HasAnch = d.store.LastAnchored(id)
	order := []string{}
	byName := map[string]*trajectory{}
	for _, r := range recs {
		for _, m := range r.Metrics {
			if byName[m.Name] == nil {
				byName[m.Name] = &trajectory{
					Values: make([]float64, len(recs)),
					Have:   make([]bool, len(recs)),
				}
				order = append(order, m.Name)
			}
			byName[m.Name].Metric = m
		}
	}
	for i, r := range recs {
		for _, m := range r.Metrics {
			tr := byName[m.Name]
			tr.Values[i] = m.Value
			tr.Have[i] = true
		}
	}
	for _, name := range order {
		v.Trajectories = append(v.Trajectories, *byName[name])
	}
	return v, true
}

func (d *dashboard) index(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	ids := d.store.SeriesList()
	views := make([]seriesView, 0, len(ids))
	for _, id := range ids {
		if v, ok := d.seriesView(id); ok {
			views = append(views, v)
		}
	}
	d.render(w, "index", struct {
		Total  int
		Series []seriesView
	}{Total: d.store.Len(), Series: views})
}

func (d *dashboard) series(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("id")
	v, ok := d.seriesView(id)
	if !ok {
		http.Error(w, "unknown series "+id, http.StatusNotFound)
		return
	}
	d.render(w, "series", v)
}

func (d *dashboard) record(w http.ResponseWriter, r *http.Request) {
	seq, err := strconv.ParseUint(r.URL.Query().Get("seq"), 10, 64)
	if err != nil {
		http.Error(w, "bad seq", http.StatusBadRequest)
		return
	}
	rec, ok := d.store.Get(seq)
	if !ok {
		http.Error(w, fmt.Sprintf("no record with seq %d", seq), http.StatusNotFound)
		return
	}
	d.render(w, "record", rec)
}

func (d *dashboard) render(w http.ResponseWriter, name string, data any) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if err := d.tmpl.ExecuteTemplate(w, name, data); err != nil {
		// Headers are already out; all we can do is log the truncation
		// into the body where a human will see it.
		fmt.Fprintf(w, "<!-- template error: %v -->", err)
	}
}

// sparkline renders a value track as a small inline SVG polyline. The
// vertical range is padded so a flat trajectory draws mid-height rather
// than hugging an edge; missing points break the line.
func sparkline(tr trajectory) template.HTML {
	const width, height, pad = 220, 44, 4
	lo, hi, n := 0.0, 0.0, 0
	for i, have := range tr.Have {
		if !have {
			continue
		}
		v := tr.Values[i]
		if n == 0 || v < lo {
			lo = v
		}
		if n == 0 || v > hi {
			hi = v
		}
		n++
	}
	if n == 0 {
		return ""
	}
	span := hi - lo
	if span < 1e-12 {
		span = 1
		lo -= 0.5
	}
	step := float64(width-2*pad) / float64(maxInt(len(tr.Have)-1, 1))
	var b strings.Builder
	fmt.Fprintf(&b, `<svg class="spark" width="%d" height="%d" viewBox="0 0 %d %d">`, width, height, width, height)
	var seg []string
	flush := func() {
		if len(seg) > 1 {
			fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="#2a6" stroke-width="1.5"/>`, strings.Join(seg, " "))
		}
		seg = seg[:0]
	}
	for i, have := range tr.Have {
		if !have {
			flush()
			continue
		}
		x := pad + float64(i)*step
		y := float64(height-pad) - (tr.Values[i]-lo)/span*float64(height-2*pad)
		seg = append(seg, fmt.Sprintf("%.1f,%.1f", x, y))
		// Dot the last point so single-record series are still visible.
		if i == len(tr.Have)-1 {
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="2.5" fill="#2a6"/>`, x, y)
		}
	}
	flush()
	b.WriteString(`</svg>`)
	// The SVG is assembled entirely from numerals and fixed markup above —
	// no store-controlled strings — so marking it trusted is sound.
	return template.HTML(b.String())
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// msTime renders a caller-supplied UnixMS stamp, or a dash when the record
// was stored without one.
func msTime(ms int64) string {
	if ms == 0 {
		return "—"
	}
	// Render as raw epoch milliseconds: the store has no clock and takes no
	// timezone dependency; the stamp is for ordering, not for prose.
	return strconv.FormatInt(ms, 10) + " ms"
}

const dashTemplates = `
{{define "style"}}<style>
body { font: 14px/1.5 system-ui, sans-serif; margin: 2rem; color: #123; }
h1, h2 { font-weight: 600; }
table { border-collapse: collapse; margin: 1rem 0; }
th, td { border: 1px solid #cdd; padding: .3rem .7rem; text-align: left; }
th { background: #eef3f3; }
code { background: #f2f5f5; padding: 0 .2rem; }
.spark { vertical-align: middle; background: #fafcfc; border: 1px solid #e0e8e8; }
.anchor { color: #a60; font-weight: 600; }
a { color: #167; }
</style>{{end}}

{{define "index"}}<!doctype html><html><head><title>bhss result store</title>{{template "style"}}</head><body>
<h1>bhss result store</h1>
<p>{{.Total}} records, {{len .Series}} series. A series is one experiment key minus the git revision;
its trajectory is the same measurement repeated across revisions.</p>
<table>
<tr><th>series</th><th>records</th><th>latest rev</th><th>anchor</th><th>headline</th><th>trajectory</th></tr>
{{range .Series}}<tr>
<td><a href="/series?id={{.ID}}">{{.ID}}</a></td>
<td>{{len .Records}}</td>
<td><code>{{short .Latest.Key.GitRev}}</code></td>
<td>{{if .HasAnch}}<span class="anchor">seq {{.Anchored.Seq}} @ {{short .Anchored.Key.GitRev}}</span>{{else}}—{{end}}</td>
<td>{{if .Latest.Metrics}}{{with index .Latest.Metrics 0}}{{.Name}} = {{numf .Value}} {{.Unit}}{{end}}{{end}}</td>
<td>{{if .Trajectories}}{{with index .Trajectories 0}}{{spark .}}{{end}}{{end}}</td>
</tr>{{end}}
</table>
</body></html>{{end}}

{{define "series"}}<!doctype html><html><head><title>{{.ID}}</title>{{template "style"}}</head><body>
<p><a href="/">← all series</a></p>
<h1>{{.ID}}</h1>
{{if .HasAnch}}<p>anchored baseline: <span class="anchor">seq {{.Anchored.Seq}} @ <code>{{short .Anchored.Key.GitRev}}</code></span></p>
{{else}}<p>no anchored baseline — mark one with <code>bhssbench -store &lt;dir&gt; -store-anchor</code></p>{{end}}
<h2>metric trajectories</h2>
<table>
<tr><th>metric</th><th>latest</th><th>trajectory (append order)</th></tr>
{{range .Trajectories}}<tr>
<td>{{.Metric.Name}}{{with .Metric.Unit}} [{{.}}]{{end}}</td>
<td>{{numf .Metric.Value}}</td>
<td>{{spark .}}</td>
</tr>{{end}}
</table>
<h2>records</h2>
<table>
<tr><th>seq</th><th>rev</th><th>stored</th>{{range .Trajectories}}<th>{{.Metric.Name}}</th>{{end}}</tr>
{{$t := .Trajectories}}{{$anch := .Anchored}}{{$hasAnch := .HasAnch}}
{{range $i, $r := .Records}}<tr>
<td><a href="/record?seq={{$r.Seq}}">{{$r.Seq}}</a>{{if and $hasAnch (eq $r.Seq $anch.Seq)}} <span class="anchor">⚓</span>{{end}}</td>
<td><code>{{short $r.Key.GitRev}}</code></td>
<td>{{msTime $r.UnixMS}}</td>
{{range $t}}<td>{{if index .Have $i}}{{numf (index .Values $i)}}{{else}}—{{end}}</td>{{end}}
</tr>{{end}}
</table>
</body></html>{{end}}

{{define "record"}}<!doctype html><html><head><title>record {{.Seq}}</title>{{template "style"}}</head><body>
<p><a href="/series?id={{.Key.Series}}">← series {{.Key.Series}}</a></p>
<h1>record {{.Seq}} <code>{{short .Key.GitRev}}</code></h1>
<table>
<tr><th>experiment</th><td>{{.Key.Experiment}}</td></tr>
<tr><th>scale</th><td>{{.Key.Scale}}</td></tr>
<tr><th>seed</th><td>{{.Key.Seed}}</td></tr>
<tr><th>impair</th><td>{{if .Key.Impair}}<code>{{.Key.Impair}}</code>{{else}}—{{end}}</td></tr>
<tr><th>chaos</th><td>{{if .Key.Chaos}}<code>{{.Key.Chaos}}</code>{{else}}—{{end}}</td></tr>
<tr><th>stored</th><td>{{msTime .UnixMS}}</td></tr>
<tr><th>schema</th><td>{{.Schema}}</td></tr>
</table>
<h2>metrics</h2>
<table>
<tr><th>name</th><th>value</th><th>unit</th><th>orientation</th></tr>
{{range .Metrics}}<tr><td>{{.Name}}</td><td>{{numf .Value}}</td><td>{{.Unit}}</td>
<td>{{if .HigherIsBetter}}higher is better{{else}}lower is better{{end}}</td></tr>{{end}}
</table>
{{with .Obs}}
<h2>obs snapshot</h2>
<p>uptime {{.UptimeNS}} ns · schema {{.Schema}}</p>
<h3>counters</h3>
<table><tr><th>name</th><th>value</th></tr>
{{range .Counters}}<tr><td><code>{{.Name}}</code></td><td>{{.Value}}</td></tr>{{end}}</table>
<h3>gauges</h3>
<table><tr><th>name</th><th>value</th></tr>
{{range .Gauges}}<tr><td><code>{{.Name}}</code></td><td>{{numf .Value}}</td></tr>{{end}}</table>
<h3>histograms</h3>
<table><tr><th>name</th><th>count</th><th>mean</th><th>p50</th><th>p90</th><th>p99</th><th>max</th></tr>
{{range .Histograms}}<tr><td><code>{{.Name}}</code></td><td>{{.Count}}</td><td>{{numf .Mean}}</td>
<td>{{.P50}}</td><td>{{.P90}}</td><td>{{.P99}}</td><td>{{.Max}}</td></tr>{{end}}</table>
{{else}}<p>no obs snapshot stored.</p>{{end}}
</body></html>{{end}}
`
