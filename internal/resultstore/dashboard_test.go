package resultstore

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"bhss/internal/obs"
)

// openDashboard builds a store with a three-revision fig13 trajectory (the
// newest record anchored) plus one throughput record, and returns the
// handler over it.
func openDashboard(t *testing.T) http.Handler {
	t.Helper()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	var last Record
	for i, adv := range []float64{15.21, 15.47, 15.47} {
		rec := fig13Record("rev"+strings.Repeat("f", i+1), adv, -0.12, 0.31, 0.91)
		rec.UnixMS = 1754600000000 + int64(i)
		if i == 1 {
			p := obs.NewPipeline()
			p.Exp.Frames.Add(4116)
			p.Exp.FramesLost.Add(1276)
			snap := p.Snapshot()
			rec.Obs = &snap
		}
		last, err = s.Append(rec)
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Anchor(last.Seq); err != nil {
		t.Fatal(err)
	}
	tp := Record{
		Key: Key{GitRev: "revff", Experiment: "throughput", Scale: "quick", Seed: 1},
		Metrics: []Metric{
			{Name: "serial_msps", Value: 64.5, Unit: "MS/s", HigherIsBetter: true},
		},
	}
	if _, err := s.Append(tp); err != nil {
		t.Fatal(err)
	}
	h, err := NewDashboard(s)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func get(t *testing.T, h http.Handler, url string) (int, string) {
	t.Helper()
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", url, nil))
	return rr.Code, rr.Body.String()
}

func TestDashboardIndex(t *testing.T) {
	h := openDashboard(t)
	code, body := get(t, h, "/")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	for _, want := range []string{
		"fig13/quick/seed=1", "throughput/quick/seed=1",
		"<svg", "seq 3", // sparkline and the anchor marker
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("index missing %q:\n%s", want, body)
		}
	}
	if code, _ := get(t, h, "/nope"); code != http.StatusNotFound {
		t.Fatalf("unknown path status = %d", code)
	}
}

func TestDashboardSeriesTrajectory(t *testing.T) {
	h := openDashboard(t)
	code, body := get(t, h, "/series?id=fig13/quick/seed=1/impair=/chaos=")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	for _, want := range []string{
		"adv_db", "packet_loss", "carrier_lock", // metric trajectories
		"15.21", "15.47", // values across revs
		"<svg", "⚓", // sparkline, anchored row marker
		`/record?seq=1`, `/record?seq=2`, `/record?seq=3`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("series page missing %q:\n%s", want, body)
		}
	}
	if code, _ := get(t, h, "/series?id=unknown"); code != http.StatusNotFound {
		t.Fatalf("unknown series status = %d", code)
	}
}

func TestDashboardRecordDrilldown(t *testing.T) {
	h := openDashboard(t)
	code, body := get(t, h, "/record?seq=2")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	for _, want := range []string{
		"record 2", "fig13", "quick",
		"obs snapshot", "exp.frames", "4116", // drill-down into the stored snapshot
		"higher is better",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("record page missing %q:\n%s", want, body)
		}
	}
	// A record stored without a snapshot renders the placeholder.
	if _, body := get(t, h, "/record?seq=1"); !strings.Contains(body, "no obs snapshot") {
		t.Fatal("snapshot placeholder missing")
	}
	if code, _ := get(t, h, "/record?seq=99"); code != http.StatusNotFound {
		t.Fatalf("missing record status = %d", code)
	}
	if code, _ := get(t, h, "/record?seq=x"); code != http.StatusBadRequest {
		t.Fatalf("bad seq status = %d", code)
	}
}
