package resultstore

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Tolerances maps canonical metric names to the regression the gate
// forgives, in the metric's own unit and in its bad direction: an
// "adv_db" tolerance of 0.2 fails a drop of more than 0.2 dB, a
// "packet_loss" tolerance of 0 fails any growth at all. Metrics without an
// entry are reported in the diff but never gate — the right setting for
// machine-dependent numbers like wall-clock throughput, which CI's
// bench-regression job polices with its own noise-aware fold.
type Tolerances map[string]float64

// DefaultTolerances is the CI regression gate: the headline power
// advantage may not drop more than 0.2 dB, packet loss may not grow at
// all, mean carrier lock may not sag more than 0.05, and the hub's
// verified concurrent-link capacity may not shrink at all. The measured
// experiments are bit-deterministic for a fixed (rev, key), so these
// tolerances are headroom for intentional small shifts, not for noise.
func DefaultTolerances() Tolerances {
	return Tolerances{
		"adv_db":         0.2,
		"adv_db_worst":   0.2,
		"packet_loss":    0,
		"carrier_lock":   0.05,
		"capacity_links": 0,
	}
}

// DiffRow is one metric's comparison between the current record and the
// anchored baseline. Delta is cur − base; Regressed is set when the metric
// is gated and Delta exceeds Tol in the bad direction.
type DiffRow struct {
	Name           string
	Unit           string
	Base, Cur      float64
	Delta          float64
	Tol            float64
	Gated          bool
	HigherIsBetter bool
	Regressed      bool
	// Missing marks a gated metric the baseline carries but the current
	// record does not — itself a regression (the measurement vanished).
	Missing bool
}

// Diff is the full comparison of one record pair.
type Diff struct {
	Base, Cur Record
	Rows      []DiffRow
}

// Compare diffs cur against base metric by metric. Baseline metrics drive
// the row set (a metric the baseline never had cannot regress); current-
// only metrics are appended as informational rows. nil tol uses
// DefaultTolerances.
func Compare(cur, base Record, tol Tolerances) Diff {
	if tol == nil {
		tol = DefaultTolerances()
	}
	d := Diff{Base: base, Cur: cur}
	for _, bm := range base.Metrics {
		t, gated := tol[bm.Name]
		row := DiffRow{
			Name:           bm.Name,
			Unit:           bm.Unit,
			Base:           bm.Value,
			Tol:            t,
			Gated:          gated,
			HigherIsBetter: bm.HigherIsBetter,
		}
		cm, ok := cur.Metric(bm.Name)
		if !ok {
			row.Missing = true
			row.Regressed = gated
			row.Cur = math.NaN()
			row.Delta = math.NaN()
			d.Rows = append(d.Rows, row)
			continue
		}
		row.Cur = cm.Value
		row.Delta = cm.Value - bm.Value
		if gated {
			if bm.HigherIsBetter {
				row.Regressed = row.Delta < -t
			} else {
				row.Regressed = row.Delta > t
			}
		}
		d.Rows = append(d.Rows, row)
	}
	for _, cm := range cur.Metrics {
		if _, ok := base.Metric(cm.Name); ok {
			continue
		}
		d.Rows = append(d.Rows, DiffRow{
			Name:           cm.Name,
			Unit:           cm.Unit,
			Base:           math.NaN(),
			Cur:            cm.Value,
			Delta:          math.NaN(),
			HigherIsBetter: cm.HigherIsBetter,
		})
	}
	return d
}

// Regressed reports whether any gated metric exceeded its tolerance.
func (d Diff) Regressed() bool {
	for _, r := range d.Rows {
		if r.Regressed {
			return true
		}
	}
	return false
}

// Render writes the human diff table: one row per metric with baseline,
// current, delta, tolerance and verdict, preceded by the record pair being
// compared and followed by a one-line summary.
func (d Diff) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "result diff: %s\n  baseline seq %d @ %s\n  current  %s\n",
		d.Cur.Key.Series(), d.Base.Seq, ShortRev(d.Base.Key.GitRev), revOf(d.Cur)); err != nil {
		return err
	}
	rows := [][]string{{"metric", "baseline", "current", "delta", "tolerance", "verdict"}}
	for _, r := range d.Rows {
		rows = append(rows, []string{
			metricLabel(r.Name, r.Unit),
			num(r.Base), num(r.Cur), signed(r.Delta),
			tolLabel(r), verdict(r),
		})
	}
	widths := make([]int, len(rows[0]))
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for ri, row := range rows {
		var b strings.Builder
		b.WriteString(" ")
		for i, cell := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
		}
		if _, err := fmt.Fprintln(w, strings.TrimRight(b.String(), " ")); err != nil {
			return err
		}
		if ri == 0 {
			sep := make([]string, len(widths))
			for i := range sep {
				sep[i] = strings.Repeat("-", widths[i])
			}
			if _, err := fmt.Fprintln(w, " "+strings.Join(sep, "  ")); err != nil {
				return err
			}
		}
	}
	summary := "OK: every gated metric within tolerance"
	if d.Regressed() {
		var bad []string
		for _, r := range d.Rows {
			if r.Regressed {
				bad = append(bad, r.Name)
			}
		}
		summary = "REGRESSED: " + strings.Join(bad, ", ")
	}
	_, err := fmt.Fprintln(w, " "+summary)
	return err
}

func revOf(r Record) string {
	if r.Seq != 0 {
		return fmt.Sprintf("seq %d @ %s", r.Seq, ShortRev(r.Key.GitRev))
	}
	return "unstored @ " + ShortRev(r.Key.GitRev)
}

func metricLabel(name, unit string) string {
	if unit == "" {
		return name
	}
	return name + " [" + unit + "]"
}

func num(v float64) string {
	if math.IsNaN(v) {
		return "—"
	}
	return fmt.Sprintf("%.4g", v)
}

func signed(v float64) string {
	if math.IsNaN(v) {
		return "—"
	}
	return fmt.Sprintf("%+.4g", v)
}

func tolLabel(r DiffRow) string {
	if !r.Gated {
		return "(info)"
	}
	dir := "-"
	if !r.HigherIsBetter {
		dir = "+"
	}
	return fmt.Sprintf("%s%.4g", dir, r.Tol)
}

func verdict(r DiffRow) string {
	switch {
	case r.Missing:
		return "MISSING"
	case r.Regressed:
		return "REGRESSED"
	case !r.Gated:
		return "info"
	default:
		return "ok"
	}
}
