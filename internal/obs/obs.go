// Package obs is the pipeline's zero-allocation observability layer:
// atomic counters and gauges, lock-free power-of-two-bucket histograms, and
// a ring-buffer span tracer with monotonic-clock stage timing. It exists so
// the performance work of PR 1 (plan/notch caches, zero-alloc hot paths) and
// the per-hop control decisions of §4.2 are visible at runtime — which
// filter branch fired, how long each stage took, how often the caches hit —
// without perturbing the DSP: recording never touches sample data, and every
// recording primitive is allocation-free and safe for concurrent use, so
// //bhss:hotpath functions stay at 0 allocs/op with metrics enabled and the
// reproduced figures are bit-identical with the observer on or off.
//
// The layer is opt-in at every level: transmitters, receivers and channels
// carry a nil observer by default and skip all recording. Attach a
// *Pipeline (see NewPipeline) to turn it on, then read it three ways:
//
//   - Pipeline.Snapshot for programmatic consumption (the experiment
//     harness's live progress reporting);
//   - SnapshotWriter for periodic JSONL/CSV export (bhssbench sweeps);
//   - ServeDebug for an expvar-compatible JSON endpoint plus net/http/pprof
//     behind the cmd tools' -debug-addr flag.
//
// Metric naming follows "<subsystem>.<metric>[.<variant>]" with _ns suffixes
// on duration histograms; DESIGN.md §10 documents the full scheme.
//
// Time: all timestamps are monotonic nanoseconds since process start
// (Now/Start/Stopwatch). Wall-clock time never enters a metric, so the
// determinism contract (bhsslint's detrand) is preserved: observability
// readings vary run to run, but they only describe the computation — they
// never feed it.
package obs

import (
	"math"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"
)

// epoch anchors the package's monotonic clock at process start.
//
//bhss:allow(detrand) observability clock anchor: readings time stages and never feed the simulation
var epoch = time.Now()

// Now returns monotonic nanoseconds since process start. It never goes
// backwards (time.Since reads the monotonic clock) and performs no
// allocation.
func Now() int64 { return int64(time.Since(epoch)) }

// Stopwatch marks one start instant on the monotonic clock.
type Stopwatch int64

// Start returns a stopwatch started now.
func Start() Stopwatch { return Stopwatch(Now()) }

// ElapsedNS returns the nanoseconds elapsed since Start.
func (s Stopwatch) ElapsedNS() int64 { return Now() - int64(s) }

// Counter is a monotonically increasing metric. The zero value is ready to
// use; all methods are allocation-free and safe for concurrent use.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative n is a caller bug; the counter is monotone by
// convention, not enforcement).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Load returns the current count.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is a last-value float metric (packet-loss rate of the most recent
// sweep point, current SNR under test). The zero value reads 0.
type Gauge struct{ bits atomic.Uint64 }

// Store records v as the current value.
func (g *Gauge) Store(v float64) { g.bits.Store(math.Float64bits(v)) }

// Load returns the most recently stored value.
func (g *Gauge) Load() float64 { return math.Float64frombits(g.bits.Load()) }

// histBuckets is the fixed bucket count of Histogram: bucket i counts the
// values whose bit length is i, i.e. bucket 0 holds exact zeros and bucket
// i>0 holds [2^(i-1), 2^i). 64 buckets cover the full non-negative int64
// range, so no observation is ever dropped or clamped into a catch-all.
const histBuckets = 64

// Histogram is a lock-free histogram over non-negative int64 values
// (typically nanoseconds) with power-of-two bucket boundaries. Recording is
// three atomic adds plus a bounded CAS loop for the max — no locks, no
// allocation — so hot paths can observe durations freely. Quantiles are
// upper bounds with factor-two resolution, which is exactly the fidelity
// stage-latency monitoring needs (is despread 2µs or 2ms?) at none of the
// cost of exact percentile sketches.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// Observe records one value. Negative values are clamped to zero (durations
// from a monotonic clock cannot be negative; the clamp keeps a buggy caller
// from corrupting bucket indexing).
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(v)
	for {
		m := h.max.Load()
		if v <= m || h.max.CompareAndSwap(m, v) {
			break
		}
	}
	h.buckets[bits.Len64(uint64(v))&(histBuckets-1)].Add(1)
}

// ObserveSince records the elapsed nanoseconds of a stopwatch started with
// Start. It is the canonical deferred-timing form:
//
//	defer h.ObserveSince(obs.Start())
func (h *Histogram) ObserveSince(s Stopwatch) { h.Observe(s.ElapsedNS()) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Max returns the largest observed value (0 when empty).
func (h *Histogram) Max() int64 { return h.max.Load() }

// Mean returns the average observed value (0 when empty).
func (h *Histogram) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Quantile returns an upper bound on the q-quantile (q in [0,1]): the upper
// edge of the first bucket whose cumulative count reaches q, capped at the
// observed max. Resolution is a factor of two, by construction.
func (h *Histogram) Quantile(q float64) int64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := int64(math.Ceil(q * float64(total)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		if cum >= target {
			if i == 0 {
				return 0
			}
			ub := int64(1)<<uint(i) - 1
			if m := h.max.Load(); ub > m {
				ub = m
			}
			return ub
		}
	}
	return h.max.Load()
}

// ---- global metric registry ----
//
// Package-level caches (the dsp FFT-plan cache) live below any single link
// pipeline; they register read-only accessors here once, at init, and every
// Pipeline snapshot includes them under their registered names.

var (
	globalsMu sync.Mutex
	globals   []globalMetric
)

type globalMetric struct {
	name string
	fn   func() int64
}

// RegisterGlobal registers a process-wide counter accessor included in every
// Snapshot (names should follow the "<pkg>.<metric>" scheme). The first
// registration of a name wins; re-registration is ignored so tests and
// multiple inits stay safe.
func RegisterGlobal(name string, fn func() int64) {
	globalsMu.Lock()
	defer globalsMu.Unlock()
	for _, g := range globals {
		if g.name == name {
			return
		}
	}
	globals = append(globals, globalMetric{name: name, fn: fn})
}

// globalCounters reads every registered global, in registration order
// (inits run in deterministic import order, so the column layout of CSV
// snapshots is stable within a build).
func globalCounters() []CounterStat {
	globalsMu.Lock()
	defer globalsMu.Unlock()
	out := make([]CounterStat, len(globals))
	for i, g := range globals {
		out[i] = CounterStat{Name: g.name, Value: g.fn()}
	}
	return out
}
