package obs

import "sync/atomic"

// Stage identifies one pipeline stage in span traces and per-stage latency
// histograms. The numbering is stable export surface: snapshots report the
// String form, but the ring buffer stores the raw value.
type Stage uint8

const (
	// StageTxEncode is the transmitter's whole EncodeFrame call.
	StageTxEncode Stage = iota
	// StageTxSpread is one hop's DSSS spreading + scrambling.
	StageTxSpread
	// StageTxModulate is one hop's chip pulse modulation.
	StageTxModulate
	// StageRxAcquire is preamble acquisition (PreambleSync only).
	StageRxAcquire
	// StageRxEstimate is one hop's spectral analysis + filter decision
	// (Welch PSD, band powers, shape-normalized indicator — §4.2).
	StageRxEstimate
	// StageRxFilterDesign is one excision-filter design (notch-cache miss).
	StageRxFilterDesign
	// StageRxFilter is one hop's suppression-filter application.
	StageRxFilter
	// StageRxTrack is one hop's carrier-loop pass.
	StageRxTrack
	// StageRxDemod is one hop's matched-filter chip demodulation.
	StageRxDemod
	// StageRxDespread is the burst's correlation despreading.
	StageRxDespread
	// StageRxDecode is the receiver's whole DecodeBurst call.
	StageRxDecode
	numStages
)

// NumStages is the number of defined pipeline stages.
const NumStages = int(numStages)

var stageNames = [numStages]string{
	"tx.encode",
	"tx.spread",
	"tx.modulate",
	"rx.acquire",
	"rx.estimate",
	"rx.filter_design",
	"rx.filter",
	"rx.track",
	"rx.demod",
	"rx.despread",
	"rx.decode",
}

// String names the stage ("rx.estimate").
func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return "unknown"
}

// span is one ring slot. Fields are individually atomic so concurrent
// recorders and snapshot readers never race; a reader overlapping a writer
// may observe a torn span (fields from two different recordings), which is
// acceptable for diagnostics and documented on Tracer.
type span struct {
	stage atomic.Int64
	start atomic.Int64
	dur   atomic.Int64
}

// Tracer is a fixed-capacity ring buffer of stage spans. Recording claims a
// slot with one atomic increment and stores three words — no locks, no
// allocation — so it is safe to call from //bhss:hotpath functions and from
// many goroutines at once. The ring keeps the most recent spans; older ones
// are overwritten. Snapshot reads are race-free but best-effort: a span
// being overwritten concurrently may read torn. Use the per-stage histograms
// for exact aggregates; the tracer answers "what did the last N stage
// executions look like, in order".
type Tracer struct {
	next  atomic.Uint64
	mask  uint64
	slots []span
}

// NewTracer returns a tracer holding the most recent capacity spans
// (rounded up to a power of two, minimum 16).
func NewTracer(capacity int) *Tracer {
	n := 16
	for n < capacity {
		n <<= 1
	}
	return &Tracer{mask: uint64(n - 1), slots: make([]span, n)}
}

// Record stores one completed span: the stage, the stopwatch's start
// instant, and the elapsed time up to now.
func (t *Tracer) Record(stage Stage, sw Stopwatch) {
	if t == nil || len(t.slots) == 0 {
		return
	}
	end := Now()
	i := t.next.Add(1) - 1
	sl := &t.slots[i&t.mask]
	sl.stage.Store(int64(stage))
	sl.start.Store(int64(sw))
	sl.dur.Store(end - int64(sw))
}

// SpanStat is one traced span as reported in snapshots.
type SpanStat struct {
	Stage   string `json:"stage"`
	StartNS int64  `json:"start_ns"`
	DurNS   int64  `json:"dur_ns"`
}

// Spans returns the buffered spans, oldest first.
func (t *Tracer) Spans() []SpanStat {
	if t == nil {
		return nil
	}
	n := t.next.Load()
	count := uint64(len(t.slots))
	if n < count {
		count = n
	}
	out := make([]SpanStat, 0, count)
	for i := n - count; i < n; i++ {
		sl := &t.slots[i&t.mask]
		out = append(out, SpanStat{
			Stage:   Stage(sl.stage.Load()).String(),
			StartNS: sl.start.Load(),
			DurNS:   sl.dur.Load(),
		})
	}
	return out
}
