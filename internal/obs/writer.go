package obs

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Format selects the snapshot writer's on-disk encoding.
type Format int

const (
	// FormatJSONL writes one JSON snapshot per line (SnapshotLight layout).
	FormatJSONL Format = iota
	// FormatCSV writes a header row of metric names, then one value row per
	// snapshot. The column set is fixed at the first write.
	FormatCSV
)

// ParseFormat maps the -obs-format flag values "jsonl" and "csv".
func ParseFormat(s string) (Format, error) {
	switch s {
	case "jsonl":
		return FormatJSONL, nil
	case "csv":
		return FormatCSV, nil
	}
	return 0, fmt.Errorf("obs: unknown snapshot format %q (want jsonl or csv)", s)
}

// Header is the one-time self-description record stamped ahead of a
// snapshot stream: the build and run identity a reader needs to interpret
// stored or streamed snapshots without the producing shell session. It is
// written once, lazily, before the first snapshot (SetHeader), so the
// periodic hot path stays untouched.
type Header struct {
	// Schema is the snapshot layout version (SnapshotSchema).
	Schema int `json:"schema"`
	// GitRev is the source revision, "-dirty"-suffixed for modified trees
	// and "unknown" when the binary carries no VCS stamp.
	GitRev    string `json:"git_rev"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	// SIMD names the active vector-kernel mode; the caller supplies it
	// (obs cannot import internal/dsp/simd without inverting the layering).
	SIMD string `json:"simd,omitempty"`
	// Seed is the experiment seed of the run the stream observes.
	Seed uint64 `json:"seed"`
}

// NewHeader fills a Header from the running binary: the VCS revision via
// runtime/debug.ReadBuildInfo (a `go build` of a clean checkout stamps it;
// `go run` builds carry none and yield "unknown" — callers with a stronger
// rev source may overwrite GitRev), the Go version, and GOOS/GOARCH.
func NewHeader(seed uint64, simdMode string) Header {
	h := Header{
		Schema:    SnapshotSchema,
		GitRev:    "unknown",
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		SIMD:      simdMode,
		Seed:      seed,
	}
	if info, ok := debug.ReadBuildInfo(); ok {
		rev, dirty := "", false
		for _, s := range info.Settings {
			switch s.Key {
			case "vcs.revision":
				rev = s.Value
			case "vcs.modified":
				dirty = s.Value == "true"
			}
		}
		if rev != "" {
			if dirty {
				rev += "-dirty"
			}
			h.GitRev = rev
		}
	}
	return h
}

// SnapshotWriter periodically serializes a pipeline's SnapshotLight to an
// io.Writer as JSONL or CSV. It is a reporting component: it allocates
// freely and must not be called from hot paths. Write/Start/Stop are safe
// for concurrent use with each other and with metric recording.
type SnapshotWriter struct {
	mu       sync.Mutex
	w        io.Writer
	format   Format
	pipeline *Pipeline

	// csvCols pins the CSV column names after the header row is emitted so
	// later rows stay aligned even if global metrics register mid-run.
	csvCols []string

	// header, when set, is written once ahead of the first snapshot.
	header    *Header
	headerOut bool

	stop chan struct{}
	done chan struct{}
}

// SetHeader arranges for h to be written once before the first snapshot:
// as a {"header": {...}} line in JSONL mode, and as a `# key=value ...`
// comment line (encoding/csv readers skip it with Comment = '#') ahead of
// the column row in CSV mode. Call before Start or the first Write; a
// header set after output began is ignored.
func (s *SnapshotWriter) SetHeader(h Header) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.headerOut {
		return
	}
	s.header = &h
}

// NewSnapshotWriter returns a writer emitting p's snapshots to w.
func NewSnapshotWriter(w io.Writer, format Format, p *Pipeline) *SnapshotWriter {
	return &SnapshotWriter{w: w, format: format, pipeline: p}
}

// Write serializes one snapshot now.
func (s *SnapshotWriter) Write() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.write(s.pipeline.SnapshotLight())
}

func (s *SnapshotWriter) write(snap Snapshot) error {
	if err := s.writeHeader(); err != nil {
		return err
	}
	switch s.format {
	case FormatCSV:
		return s.writeCSV(snap)
	default:
		enc := json.NewEncoder(s.w)
		return enc.Encode(snap)
	}
}

// writeHeader emits the pending one-time header record, if any.
func (s *SnapshotWriter) writeHeader() error {
	if s.header == nil || s.headerOut {
		return nil
	}
	s.headerOut = true
	switch s.format {
	case FormatCSV:
		_, err := fmt.Fprintf(s.w,
			"# bhss-obs schema=%d git_rev=%s go=%s goos=%s goarch=%s simd=%s seed=%d\n",
			s.header.Schema, csvHeaderField(s.header.GitRev), csvHeaderField(s.header.GoVersion),
			csvHeaderField(s.header.GOOS), csvHeaderField(s.header.GOARCH),
			csvHeaderField(s.header.SIMD), s.header.Seed)
		return err
	default:
		return json.NewEncoder(s.w).Encode(struct {
			Header *Header `json:"header"`
		}{Header: s.header})
	}
}

// csvHeaderField keeps the comment line single-line and space-delimited
// whatever the build info contains.
func csvHeaderField(v string) string {
	return strings.Map(func(r rune) rune {
		switch r {
		case ' ', '\n', '\r', '\t':
			return '_'
		}
		return r
	}, v)
}

func (s *SnapshotWriter) writeCSV(snap Snapshot) error {
	cw := csv.NewWriter(s.w)
	if s.csvCols == nil {
		s.csvCols = append(s.csvCols, "uptime_ns")
		for _, c := range snap.Counters {
			s.csvCols = append(s.csvCols, c.Name)
		}
		for _, g := range snap.Gauges {
			s.csvCols = append(s.csvCols, g.Name)
		}
		for _, h := range snap.Histograms {
			s.csvCols = append(s.csvCols,
				h.Name+".count", h.Name+".mean", h.Name+".p50", h.Name+".p90", h.Name+".p99", h.Name+".max")
		}
		if err := cw.Write(s.csvCols); err != nil {
			return err
		}
	}
	// Values are matched to the pinned columns by name so a snapshot with
	// extra late-registered metrics still writes an aligned row.
	vals := make(map[string]string, len(s.csvCols))
	vals["uptime_ns"] = strconv.FormatInt(snap.UptimeNS, 10)
	for _, c := range snap.Counters {
		vals[c.Name] = strconv.FormatInt(c.Value, 10)
	}
	for _, g := range snap.Gauges {
		vals[g.Name] = strconv.FormatFloat(g.Value, 'g', -1, 64)
	}
	for _, h := range snap.Histograms {
		vals[h.Name+".count"] = strconv.FormatInt(h.Count, 10)
		vals[h.Name+".mean"] = strconv.FormatFloat(h.Mean, 'g', -1, 64)
		vals[h.Name+".p50"] = strconv.FormatInt(h.P50, 10)
		vals[h.Name+".p90"] = strconv.FormatInt(h.P90, 10)
		vals[h.Name+".p99"] = strconv.FormatInt(h.P99, 10)
		vals[h.Name+".max"] = strconv.FormatInt(h.Max, 10)
	}
	row := make([]string, len(s.csvCols))
	for i, col := range s.csvCols {
		row[i] = vals[col]
	}
	if err := cw.Write(row); err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}

// Start launches a goroutine writing one snapshot every interval until Stop.
// Start may be called at most once.
func (s *SnapshotWriter) Start(interval time.Duration) {
	s.stop = make(chan struct{})
	s.done = make(chan struct{})
	go func() {
		defer close(s.done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				// Periodic write errors are not fatal to the run; the
				// final Stop write returns any persistent error.
				_ = s.Write()
			case <-s.stop:
				return
			}
		}
	}()
}

// Stop halts the periodic goroutine (if started) and writes one final
// snapshot so the output always ends with the run's complete totals.
func (s *SnapshotWriter) Stop() error {
	if s.stop != nil {
		close(s.stop)
		<-s.done
	}
	return s.Write()
}
