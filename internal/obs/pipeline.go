package obs

// TxMetrics counts the transmitter's work.
type TxMetrics struct {
	// Frames is the number of EncodeFrame calls.
	Frames Counter
	// Symbols and Samples total the encoded DSSS symbols and emitted
	// samples.
	Symbols, Samples Counter
}

// RxMetrics counts the receiver's work and the §4.2 control decisions.
type RxMetrics struct {
	// Bursts is the number of DecodeBurst calls; Decoded and Errors split
	// them by outcome.
	Bursts, Decoded, Errors Counter
	// Hops counts processed hop segments; Samples the consumed samples.
	Hops, Samples Counter
	// Decision counts hops per filter branch, indexed by the receiver's
	// FilterDecision values: 0 none (eq. (10) threshold), 1 low-pass
	// (eq. (4)), 2 excision/whitening (eq. (3)).
	Decision [3]Counter
}

// CacheMetrics counts hits, misses and evictions on the receiver's design
// caches (the PR 1 performance substrate this layer makes visible).
type CacheMetrics struct {
	// WelchHit/WelchMiss cover the per-segment-length reusable Welch
	// estimator cache.
	WelchHit, WelchMiss Counter
	// NotchHit/NotchMiss cover the fingerprinted excision-design cache;
	// NotchEvict counts designs dropped when the cache is cleared.
	NotchHit, NotchMiss, NotchEvict Counter
	// LowPassHit/LowPassMiss cover the per-bandwidth channel-select FIRs.
	LowPassHit, LowPassMiss Counter
	// ShapeHit/ShapeMiss cover the pulse-spectrum |G(f)|² tables.
	ShapeHit, ShapeMiss Counter
}

// NumImpairStages is the number of impairment stage kinds; it must match
// impair.NumKinds (pinned by a test in internal/impair, which cannot be
// imported here without a cycle).
const NumImpairStages = 8

// impairStageNames mirrors the impair package's Kind spec keys, in Kind
// order (also pinned by the internal/impair test).
var impairStageNames = [NumImpairStages]string{
	"mpath", "cfo", "phnoise", "clock", "iq", "dc", "quant", "drop",
}

// ImpairStageName returns the snapshot name suffix for impairment stage
// kind i ("" when out of range); internal/impair's tests pin these against
// its Kind.String values.
func ImpairStageName(i int) string {
	if i < 0 || i >= NumImpairStages {
		return ""
	}
	return impairStageNames[i]
}

// ImpairMetrics counts RF-impairment chain work (internal/impair).
type ImpairMetrics struct {
	// In and Out total the samples entering and leaving the chain; they
	// differ when a clock-skew stage resamples.
	In, Out Counter
	// Dropped counts samples zeroed by dropout stages.
	Dropped Counter
	// Stage counts samples entering each stage kind, indexed by
	// impair.Kind.
	Stage [NumImpairStages]Counter
	// ChainNS times whole-chain block processing.
	ChainNS Histogram
}

// HubMetrics counts the virtual-air hub's transport work
// (internal/iqstream.Hub): connection lifecycle, queue pressure and the
// resilience-layer decisions (overflow drops, backpressure waits,
// slow-receiver evictions).
type HubMetrics struct {
	// TxAccepted and RxAccepted count completed handshakes by role;
	// HandshakeRejects counts connections refused with an ERR reply.
	TxAccepted, RxAccepted, HandshakeRejects Counter
	// MixedBlocks and MixedSamples total the mixer's output.
	MixedBlocks, MixedSamples Counter
	// TxOverflowDrops counts pending samples discarded by the drop-oldest
	// overflow policy; TxOverflowWaits counts backpressure stalls under the
	// block policy; TxOverflowKills counts transmitters disconnected when
	// the block policy's deadline expired.
	TxOverflowDrops, TxOverflowWaits, TxOverflowKills Counter
	// RxQueueDrops counts mixed blocks not delivered to a receiver whose
	// outbound queue was full; RxEvictions counts receivers disconnected
	// after a full stall budget.
	RxQueueDrops, RxEvictions Counter
	// LinksAdmitted and LinksEvicted count link-registry lifecycle
	// transitions; LinksShed is the subset of evictions decided by the
	// load-shedding supervisor under sustained overflow.
	LinksAdmitted, LinksEvicted, LinksShed Counter
	// LinkRejectsFull counts handshakes refused with "ERR hub full" by the
	// admission-control caps.
	LinkRejectsFull Counter
	// RecoveredPanics counts panics contained by the per-link fault
	// isolation (a crashing mix hook or handler tears down only its own
	// session).
	RecoveredPanics Counter
	// ShardRestarts counts wedged mixer shards the supervisor watchdog
	// detected via frozen heartbeats and restarted with link re-homing.
	ShardRestarts Counter
	// QueueHighWater is the largest per-transmitter pending queue depth
	// observed, in samples.
	QueueHighWater Gauge
	// ActiveLinks is the current link-registry size.
	ActiveLinks Gauge
}

// NetMetrics counts client-side transport resilience events
// (internal/iqstream.ReconnectingClient and its cmd-tool callers).
type NetMetrics struct {
	// DialAttempts counts every dial (including the first); DialFailures
	// the ones that did not yield a usable link (refused, handshake error).
	DialAttempts, DialFailures Counter
	// Reconnects counts successful re-establishments after a link fault.
	Reconnects Counter
	// StreamGaps counts receive-side discontinuities reported to the
	// caller (ErrStreamGap); Reacquired counts the post-gap burst
	// re-acquisitions the caller completed.
	StreamGaps, Reacquired Counter
}

// ChanMetrics counts simulated-medium work.
type ChanMetrics struct {
	// NoiseSamples counts samples that received AWGN; JamSamples counts
	// jammer samples mixed into the medium.
	NoiseSamples, JamSamples Counter
	// MixNS times AWGN application per burst.
	MixNS Histogram
}

// PSDMetrics counts spectral estimation work (attached to the reusable
// Welch estimators).
type PSDMetrics struct {
	// Calls counts PSDInto invocations; Segments the averaged periodogram
	// segments across them.
	Calls, Segments Counter
	// EstimateNS times each PSDInto call.
	EstimateNS Histogram
}

// JamMetrics counts the estimator-follower jammers' sensing work
// (internal/jammer Reactive/Multitone/Adaptive): how often the adversary
// produced a bandwidth estimate, how often that estimate changed its
// waveform, and how often it had to hold a stale tuning because the
// sensed window carried no energy.
type JamMetrics struct {
	// Estimates counts matured sense windows (one PSD + occupied-bandwidth
	// measurement each); Retunes counts the estimates that scheduled a new
	// jamming waveform; Holds counts silent windows where the follower kept
	// its previous tuning instead.
	Estimates, Retunes, Holds Counter
	// LastBW is the most recent bandwidth estimate, in cycles/sample.
	LastBW Gauge
}

// ExpMetrics tracks experiment-harness progress: sweep cells, measurement
// points and per-point packet-loss results.
type ExpMetrics struct {
	// Cells is the total cell count of the running sweep; CellsDone the
	// completed cells — together the live progress fraction.
	Cells, CellsDone Counter
	// Points counts packet-loss measurement points; Frames and FramesLost
	// total the frames behind them.
	Points, Frames, FramesLost Counter
	// LockMicroSum accumulates each point's mean carrier-lock quality in
	// fixed-point millionths (lock ∈ [0,1], so int64 microlocks sum exactly
	// and order-independently across worker goroutines — a float
	// accumulator would make the total schedule-dependent). The derived
	// gauge exp.mean_carrier_lock reads LockMicroSum/1e6/Points.
	LockMicroSum Counter
	// LastPLR and LastSNRdB describe the most recent measurement point.
	LastPLR, LastSNRdB Gauge
	// PointNS times whole packet-loss measurement points.
	PointNS Histogram
}

// Pipeline bundles every metric of one transmitter/channel/receiver chain
// (or one experiment sweep). Construct with NewPipeline and attach via the
// SetObserver hooks; a single pipeline may be shared by many components and
// goroutines — all recording is atomic.
type Pipeline struct {
	Tx     TxMetrics
	Rx     RxMetrics
	Cache  CacheMetrics
	Chan   ChanMetrics
	Impair ImpairMetrics
	PSD    PSDMetrics
	Jam    JamMetrics
	Exp    ExpMetrics
	Hub    HubMetrics
	Net    NetMetrics
	// StageNS holds one latency histogram per pipeline stage.
	StageNS [NumStages]Histogram
	// Trace is the ring-buffer span tracer behind the stage histograms.
	Trace *Tracer

	start int64
}

// NewPipeline returns an empty pipeline with a 1024-span tracer.
func NewPipeline() *Pipeline {
	return &Pipeline{Trace: NewTracer(1024), start: Now()}
}

// RecordStage observes one completed stage execution into both the
// per-stage latency histogram and the span ring. It is allocation-free and
// nil-safe on the tracer; callers on hot paths use the deferred form:
//
//	defer p.RecordStage(obs.StageRxEstimate, obs.Start())
func (p *Pipeline) RecordStage(stage Stage, sw Stopwatch) {
	p.StageNS[stage].Observe(sw.ElapsedNS())
	p.Trace.Record(stage, sw)
}

// CounterStat is one named counter value in a snapshot.
type CounterStat struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// GaugeStat is one named gauge value in a snapshot.
type GaugeStat struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// HistogramStat summarizes one histogram in a snapshot. Quantiles are
// factor-of-two upper bounds (see Histogram.Quantile).
type HistogramStat struct {
	Name  string  `json:"name"`
	Count int64   `json:"count"`
	Sum   int64   `json:"sum"`
	Mean  float64 `json:"mean"`
	P50   int64   `json:"p50"`
	P90   int64   `json:"p90"`
	P99   int64   `json:"p99"`
	Max   int64   `json:"max"`
}

// SnapshotSchema is the version stamped into every Snapshot. It guards the
// stored form: resultstore records and -obs streams carry snapshots across
// revisions, and a decoder can tell a layout change from data corruption.
// Bump it when a Snapshot field changes meaning or encoding — adding
// metrics under the existing lists is not a schema change.
const SnapshotSchema = 1

// Snapshot is one point-in-time reading of a pipeline: every counter, gauge
// and histogram under its documented name, the registered process globals,
// and the recent span trace. The field order is fixed, so CSV columns and
// JSON layouts are stable across snapshots of the same build, and the
// schema stamp versions the layout for durable storage (resultstore).
type Snapshot struct {
	Schema     int             `json:"schema"`
	UptimeNS   int64           `json:"uptime_ns"`
	Counters   []CounterStat   `json:"counters"`
	Gauges     []GaugeStat     `json:"gauges"`
	Histograms []HistogramStat `json:"histograms"`
	Spans      []SpanStat      `json:"spans,omitempty"`
}

// Snapshot reads the pipeline. It allocates (it is a reporting call, not a
// recording call) and may run concurrently with recording; counters are read
// one by one, so a snapshot is not a single atomic cut across metrics.
func (p *Pipeline) Snapshot() Snapshot {
	return p.snapshot(true)
}

// SnapshotLight is Snapshot without the span trace — the form the periodic
// writers use, where per-span detail would dwarf the aggregate row.
func (p *Pipeline) SnapshotLight() Snapshot {
	return p.snapshot(false)
}

func (p *Pipeline) snapshot(withSpans bool) Snapshot {
	s := Snapshot{Schema: SnapshotSchema, UptimeNS: Now() - p.start}
	c := func(name string, ctr *Counter) {
		s.Counters = append(s.Counters, CounterStat{Name: name, Value: ctr.Load()})
	}
	c("tx.frames", &p.Tx.Frames)
	c("tx.symbols", &p.Tx.Symbols)
	c("tx.samples", &p.Tx.Samples)
	c("rx.bursts", &p.Rx.Bursts)
	c("rx.decoded", &p.Rx.Decoded)
	c("rx.errors", &p.Rx.Errors)
	c("rx.hops", &p.Rx.Hops)
	c("rx.samples", &p.Rx.Samples)
	c("rx.decision.none", &p.Rx.Decision[0])
	c("rx.decision.lowpass", &p.Rx.Decision[1])
	c("rx.decision.excision", &p.Rx.Decision[2])
	c("cache.welch.hit", &p.Cache.WelchHit)
	c("cache.welch.miss", &p.Cache.WelchMiss)
	c("cache.notch.hit", &p.Cache.NotchHit)
	c("cache.notch.miss", &p.Cache.NotchMiss)
	c("cache.notch.evict", &p.Cache.NotchEvict)
	c("cache.lowpass.hit", &p.Cache.LowPassHit)
	c("cache.lowpass.miss", &p.Cache.LowPassMiss)
	c("cache.shape.hit", &p.Cache.ShapeHit)
	c("cache.shape.miss", &p.Cache.ShapeMiss)
	c("chan.noise_samples", &p.Chan.NoiseSamples)
	c("chan.jam_samples", &p.Chan.JamSamples)
	c("impair.in", &p.Impair.In)
	c("impair.out", &p.Impair.Out)
	c("impair.dropped", &p.Impair.Dropped)
	for i := range p.Impair.Stage {
		c("impair.stage."+impairStageNames[i], &p.Impair.Stage[i])
	}
	c("psd.calls", &p.PSD.Calls)
	c("psd.segments", &p.PSD.Segments)
	c("jam.estimates", &p.Jam.Estimates)
	c("jam.retunes", &p.Jam.Retunes)
	c("jam.holds", &p.Jam.Holds)
	c("hub.tx_accepted", &p.Hub.TxAccepted)
	c("hub.rx_accepted", &p.Hub.RxAccepted)
	c("hub.handshake_rejects", &p.Hub.HandshakeRejects)
	c("hub.mixed_blocks", &p.Hub.MixedBlocks)
	c("hub.mixed_samples", &p.Hub.MixedSamples)
	c("hub.tx_overflow_drops", &p.Hub.TxOverflowDrops)
	c("hub.tx_overflow_waits", &p.Hub.TxOverflowWaits)
	c("hub.tx_overflow_kills", &p.Hub.TxOverflowKills)
	c("hub.rx_queue_drops", &p.Hub.RxQueueDrops)
	c("hub.rx_evictions", &p.Hub.RxEvictions)
	c("hub.links_admitted", &p.Hub.LinksAdmitted)
	c("hub.links_evicted", &p.Hub.LinksEvicted)
	c("hub.links_shed", &p.Hub.LinksShed)
	c("hub.link_rejects_full", &p.Hub.LinkRejectsFull)
	c("hub.recovered_panics", &p.Hub.RecoveredPanics)
	c("hub.shard_restarts", &p.Hub.ShardRestarts)
	c("net.dial_attempts", &p.Net.DialAttempts)
	c("net.dial_failures", &p.Net.DialFailures)
	c("net.reconnects", &p.Net.Reconnects)
	c("net.stream_gaps", &p.Net.StreamGaps)
	c("net.reacquired", &p.Net.Reacquired)
	c("exp.cells", &p.Exp.Cells)
	c("exp.cells_done", &p.Exp.CellsDone)
	c("exp.points", &p.Exp.Points)
	c("exp.frames", &p.Exp.Frames)
	c("exp.frames_lost", &p.Exp.FramesLost)
	c("exp.lock_micro_sum", &p.Exp.LockMicroSum)
	s.Counters = append(s.Counters, globalCounters()...)

	s.Gauges = append(s.Gauges,
		GaugeStat{Name: "exp.last_plr", Value: p.Exp.LastPLR.Load()},
		GaugeStat{Name: "exp.last_snr_db", Value: p.Exp.LastSNRdB.Load()},
		GaugeStat{Name: "hub.queue_high_water", Value: p.Hub.QueueHighWater.Load()},
		GaugeStat{Name: "hub.active_links", Value: p.Hub.ActiveLinks.Load()},
		GaugeStat{Name: "jam.last_bw", Value: p.Jam.LastBW.Load()},
	)
	// Derived mean carrier lock across every measurement point so far.
	if pts := p.Exp.Points.Load(); pts > 0 {
		s.Gauges = append(s.Gauges, GaugeStat{
			Name:  "exp.mean_carrier_lock",
			Value: float64(p.Exp.LockMicroSum.Load()) / 1e6 / float64(pts),
		})
	} else {
		s.Gauges = append(s.Gauges, GaugeStat{Name: "exp.mean_carrier_lock"})
	}
	// Derived throughput gauges: decoded bursts and experiment frames per
	// second of pipeline uptime.
	if secs := float64(s.UptimeNS) / 1e9; secs > 0 {
		s.Gauges = append(s.Gauges,
			GaugeStat{Name: "rx.decoded_per_sec", Value: float64(p.Rx.Decoded.Load()) / secs},
			GaugeStat{Name: "exp.frames_per_sec", Value: float64(p.Exp.Frames.Load()) / secs},
		)
	} else {
		s.Gauges = append(s.Gauges,
			GaugeStat{Name: "rx.decoded_per_sec"},
			GaugeStat{Name: "exp.frames_per_sec"},
		)
	}

	h := func(name string, hist *Histogram) {
		s.Histograms = append(s.Histograms, HistogramStat{
			Name:  name,
			Count: hist.Count(),
			Sum:   hist.Sum(),
			Mean:  hist.Mean(),
			P50:   hist.Quantile(0.50),
			P90:   hist.Quantile(0.90),
			P99:   hist.Quantile(0.99),
			Max:   hist.Max(),
		})
	}
	for i := range p.StageNS {
		h("stage."+Stage(i).String()+"_ns", &p.StageNS[i])
	}
	h("chan.mix_ns", &p.Chan.MixNS)
	h("impair.chain_ns", &p.Impair.ChainNS)
	h("psd.estimate_ns", &p.PSD.EstimateNS)
	h("exp.point_ns", &p.Exp.PointNS)

	if withSpans {
		s.Spans = p.Trace.Spans()
	}
	return s
}
