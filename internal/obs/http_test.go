package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"testing"
)

func TestServeDebug(t *testing.T) {
	p := NewPipeline()
	p.Rx.Decoded.Add(9)
	srv, addr, err := ServeDebug("127.0.0.1:0", p)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + addr.String()

	get := func(path string) []byte {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return body
	}

	var snap Snapshot
	if err := json.Unmarshal(get("/debug/bhss"), &snap); err != nil {
		t.Fatalf("/debug/bhss not JSON: %v", err)
	}
	found := false
	for _, c := range snap.Counters {
		if c.Name == "rx.decoded" && c.Value == 9 {
			found = true
		}
	}
	if !found {
		t.Fatal("/debug/bhss missing rx.decoded=9")
	}

	var vars map[string]json.RawMessage
	if err := json.Unmarshal(get("/debug/vars"), &vars); err != nil {
		t.Fatalf("/debug/vars not JSON: %v", err)
	}
	if _, ok := vars["bhss"]; !ok {
		t.Fatal("/debug/vars missing bhss key")
	}

	if len(get("/debug/pprof/")) == 0 {
		t.Fatal("/debug/pprof/ empty")
	}
}
