package obs

import (
	"sync"
	"testing"
)

// TestConcurrentRecording hammers every recording primitive from many
// goroutines while snapshots are taken concurrently. Run under -race (CI
// does) this proves the lock-free claims; run without it still checks the
// counter totals.
func TestConcurrentRecording(t *testing.T) {
	p := NewPipeline()
	const (
		workers = 8
		iters   = 2000
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				p.Rx.Hops.Inc()
				p.Rx.Decision[w%3].Inc()
				p.Exp.LastPLR.Store(float64(i) / iters)
				p.StageNS[StageRxDemod].Observe(int64(i))
				p.RecordStage(StageRxEstimate, Start())
			}
		}(w)
	}
	// Concurrent readers: snapshots and span dumps while recording runs.
	readDone := make(chan struct{})
	go func() {
		defer close(readDone)
		for i := 0; i < 50; i++ {
			s := p.Snapshot()
			if len(s.Counters) == 0 {
				t.Error("snapshot lost its counters")
				return
			}
			_ = p.Trace.Spans()
		}
	}()
	wg.Wait()
	<-readDone

	if got := p.Rx.Hops.Load(); got != workers*iters {
		t.Fatalf("rx.hops = %d, want %d", got, workers*iters)
	}
	var decisions int64
	for i := range p.Rx.Decision {
		decisions += p.Rx.Decision[i].Load()
	}
	if decisions != workers*iters {
		t.Fatalf("decision total = %d, want %d", decisions, workers*iters)
	}
	if got := p.StageNS[StageRxDemod].Count(); got != workers*iters {
		t.Fatalf("stage histogram count = %d, want %d", got, workers*iters)
	}
	if got := p.StageNS[StageRxDemod].Max(); got != iters-1 {
		t.Fatalf("stage histogram max = %d, want %d", got, iters-1)
	}
}
