package obs

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"
)

func TestParseFormat(t *testing.T) {
	if f, err := ParseFormat("jsonl"); err != nil || f != FormatJSONL {
		t.Fatalf("jsonl -> %v, %v", f, err)
	}
	if f, err := ParseFormat("csv"); err != nil || f != FormatCSV {
		t.Fatalf("csv -> %v, %v", f, err)
	}
	if _, err := ParseFormat("xml"); err == nil {
		t.Fatal("xml accepted")
	}
}

func TestSnapshotWriterJSONL(t *testing.T) {
	p := NewPipeline()
	p.Tx.Frames.Add(5)
	var buf bytes.Buffer
	w := NewSnapshotWriter(&buf, FormatJSONL, p)
	if err := w.Write(); err != nil {
		t.Fatal(err)
	}
	p.Tx.Frames.Add(2)
	if err := w.Write(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d, want 2", len(lines))
	}
	for i, want := range []int64{5, 7} {
		var snap Snapshot
		if err := json.Unmarshal([]byte(lines[i]), &snap); err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		var got int64 = -1
		for _, c := range snap.Counters {
			if c.Name == "tx.frames" {
				got = c.Value
			}
		}
		if got != want {
			t.Fatalf("line %d tx.frames = %d, want %d", i, got, want)
		}
		if snap.Spans != nil {
			t.Fatalf("line %d carries spans; writer must use SnapshotLight", i)
		}
	}
}

func TestSnapshotWriterCSV(t *testing.T) {
	p := NewPipeline()
	p.Rx.Bursts.Inc()
	var buf bytes.Buffer
	w := NewSnapshotWriter(&buf, FormatCSV, p)
	if err := w.Write(); err != nil {
		t.Fatal(err)
	}
	p.Rx.Bursts.Inc()
	if err := w.Write(); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3 (header + 2 snapshots)", len(rows))
	}
	header := rows[0]
	if header[0] != "uptime_ns" {
		t.Fatalf("first column = %q, want uptime_ns", header[0])
	}
	col := -1
	for i, name := range header {
		if name == "rx.bursts" {
			col = i
		}
	}
	if col < 0 {
		t.Fatal("rx.bursts column missing")
	}
	if rows[1][col] != "1" || rows[2][col] != "2" {
		t.Fatalf("rx.bursts rows = %q, %q; want 1, 2", rows[1][col], rows[2][col])
	}
	for i := 1; i < len(rows); i++ {
		if len(rows[i]) != len(header) {
			t.Fatalf("row %d width %d != header width %d", i, len(rows[i]), len(header))
		}
	}
}

func TestSnapshotWriterJSONLHeader(t *testing.T) {
	p := NewPipeline()
	var buf bytes.Buffer
	w := NewSnapshotWriter(&buf, FormatJSONL, p)
	w.SetHeader(Header{Schema: SnapshotSchema, GitRev: "abc123", GoVersion: "go1.22",
		GOOS: "linux", GOARCH: "amd64", SIMD: "avx2", Seed: 7})
	if err := w.Write(); err != nil {
		t.Fatal(err)
	}
	if err := w.Write(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d, want header + 2 snapshots", len(lines))
	}
	var hdr struct {
		Header *Header `json:"header"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &hdr); err != nil || hdr.Header == nil {
		t.Fatalf("first line is not a header record: %q (%v)", lines[0], err)
	}
	if hdr.Header.GitRev != "abc123" || hdr.Header.Seed != 7 || hdr.Header.SIMD != "avx2" {
		t.Fatalf("header round trip = %+v", hdr.Header)
	}
	// The header must appear exactly once, and snapshot lines must still
	// parse as snapshots.
	var snap Snapshot
	if err := json.Unmarshal([]byte(lines[1]), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Schema != SnapshotSchema {
		t.Fatalf("snapshot schema = %d, want %d", snap.Schema, SnapshotSchema)
	}
	if strings.Count(buf.String(), "header") != 1 {
		t.Fatal("header written more than once")
	}
}

func TestSnapshotWriterCSVHeader(t *testing.T) {
	p := NewPipeline()
	var buf bytes.Buffer
	w := NewSnapshotWriter(&buf, FormatCSV, p)
	w.SetHeader(NewHeader(42, "off"))
	if err := w.Write(); err != nil {
		t.Fatal(err)
	}
	first, _, _ := strings.Cut(buf.String(), "\n")
	if !strings.HasPrefix(first, "# bhss-obs schema=1 ") {
		t.Fatalf("comment header = %q", first)
	}
	for _, want := range []string{"git_rev=", "go=go", "goarch=", "simd=off", "seed=42"} {
		if !strings.Contains(first, want) {
			t.Fatalf("comment header missing %q: %q", want, first)
		}
	}
	// A '#'-aware CSV reader must still parse the stream cleanly.
	r := csv.NewReader(&buf)
	r.Comment = '#'
	rows, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0][0] != "uptime_ns" {
		t.Fatalf("rows = %d, first col %q; want column header + 1 snapshot", len(rows), rows[0][0])
	}
}

func TestNewHeaderFillsBuildIdentity(t *testing.T) {
	h := NewHeader(3, "avx2")
	if h.Schema != SnapshotSchema || h.Seed != 3 || h.SIMD != "avx2" {
		t.Fatalf("header = %+v", h)
	}
	if h.GoVersion == "" || h.GOOS == "" || h.GOARCH == "" || h.GitRev == "" {
		t.Fatalf("build identity incomplete: %+v", h)
	}
}

func TestSnapshotWriterStop(t *testing.T) {
	p := NewPipeline()
	var buf bytes.Buffer
	w := NewSnapshotWriter(&buf, FormatJSONL, p)
	// Stop without Start still emits the final snapshot.
	if err := w.Stop(); err != nil {
		t.Fatal(err)
	}
	if strings.Count(buf.String(), "\n") != 1 {
		t.Fatalf("Stop wrote %q, want exactly one snapshot line", buf.String())
	}
}
