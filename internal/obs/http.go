package obs

import (
	"encoding/json"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// publishOnce guards the process-wide expvar name: expvar.Publish panics on
// duplicates, and tests (or a tool serving two pipelines) may call
// ServeDebug more than once. The expvar view reads whichever pipeline was
// registered first; the /debug/bhss endpoint of each server always reads
// its own pipeline.
var publishOnce sync.Once

// ServeDebug starts an HTTP debug server on addr exposing:
//
//	/debug/bhss   — the pipeline's Snapshot as JSON
//	/debug/vars   — expvar (includes the snapshot under the "bhss" key)
//	/debug/pprof/ — net/http/pprof profiles
//
// It returns the running server (shut down with srv.Close) and the bound
// address, useful when addr has port 0. The handlers are on a private mux so
// enabling -debug-addr never touches http.DefaultServeMux.
func ServeDebug(addr string, p *Pipeline) (*http.Server, net.Addr, error) {
	publishOnce.Do(func() {
		expvar.Publish("bhss", expvar.Func(func() any { return p.Snapshot() }))
	})

	mux := http.NewServeMux()
	mux.HandleFunc("/debug/bhss", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(p.Snapshot())
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(ln) }()
	return srv, ln.Addr(), nil
}
