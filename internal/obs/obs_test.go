package obs

import (
	"strings"
	"testing"

	"bhss/internal/alloctest"
)

func TestCounter(t *testing.T) {
	var c Counter
	if c.Load() != 0 {
		t.Fatalf("zero value = %d, want 0", c.Load())
	}
	c.Inc()
	c.Add(41)
	if got := c.Load(); got != 42 {
		t.Fatalf("Load = %d, want 42", got)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	if g.Load() != 0 {
		t.Fatalf("zero value = %v, want 0", g.Load())
	}
	g.Store(0.15625)
	if got := g.Load(); got != 0.15625 {
		t.Fatalf("Load = %v, want 0.15625", got)
	}
	g.Store(-3)
	if got := g.Load(); got != -3 {
		t.Fatalf("Load = %v, want -3", got)
	}
}

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Sum() != 0 || h.Max() != 0 || h.Mean() != 0 {
		t.Fatal("zero-value histogram not empty")
	}
	if h.Quantile(0.5) != 0 {
		t.Fatal("quantile of empty histogram not 0")
	}
	for _, v := range []int64{0, 1, 2, 3, 100, 1000} {
		h.Observe(v)
	}
	if got := h.Count(); got != 6 {
		t.Fatalf("Count = %d, want 6", got)
	}
	if got := h.Sum(); got != 1106 {
		t.Fatalf("Sum = %d, want 1106", got)
	}
	if got := h.Max(); got != 1000 {
		t.Fatalf("Max = %d, want 1000", got)
	}
	if got := h.Mean(); got != 1106.0/6 {
		t.Fatalf("Mean = %v, want %v", got, 1106.0/6)
	}
}

func TestHistogramQuantileBounds(t *testing.T) {
	var h Histogram
	// 100 values of 5 (bucket [4,8), upper bound 7) and one of 1000.
	for i := 0; i < 100; i++ {
		h.Observe(5)
	}
	h.Observe(1000)
	if q := h.Quantile(0.5); q != 7 {
		t.Fatalf("p50 = %d, want 7 (upper bound of [4,8))", q)
	}
	// p100 must cap at the observed max, not the bucket's upper edge.
	if q := h.Quantile(1); q != 1000 {
		t.Fatalf("p100 = %d, want 1000", q)
	}
	var single Histogram
	single.Observe(0)
	if q := single.Quantile(0.99); q != 0 {
		t.Fatalf("p99 of {0} = %d, want 0", q)
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	var h Histogram
	h.Observe(-5)
	if h.Count() != 1 || h.Sum() != 0 || h.Max() != 0 {
		t.Fatalf("negative observation not clamped: count=%d sum=%d max=%d",
			h.Count(), h.Sum(), h.Max())
	}
}

func TestStageString(t *testing.T) {
	if got := StageRxEstimate.String(); got != "rx.estimate" {
		t.Fatalf("StageRxEstimate = %q", got)
	}
	if got := Stage(200).String(); got != "unknown" {
		t.Fatalf("out-of-range stage = %q", got)
	}
	for i := 0; i < NumStages; i++ {
		if Stage(i).String() == "unknown" || Stage(i).String() == "" {
			t.Fatalf("stage %d unnamed", i)
		}
	}
}

func TestTracerRing(t *testing.T) {
	tr := NewTracer(4) // rounds up to 16
	if len(tr.slots) != 16 {
		t.Fatalf("capacity = %d, want 16", len(tr.slots))
	}
	for i := 0; i < 20; i++ {
		tr.Record(StageRxDemod, Start())
	}
	spans := tr.Spans()
	if len(spans) != 16 {
		t.Fatalf("Spans = %d, want 16 (ring keeps most recent)", len(spans))
	}
	for i := 1; i < len(spans); i++ {
		if spans[i].StartNS < spans[i-1].StartNS {
			t.Fatalf("spans not oldest-first at %d", i)
		}
	}
	if spans[0].Stage != "rx.demod" {
		t.Fatalf("stage = %q, want rx.demod", spans[0].Stage)
	}

	var nilT *Tracer
	nilT.Record(StageRxDemod, Start()) // must not panic
	if nilT.Spans() != nil {
		t.Fatal("nil tracer Spans != nil")
	}
}

func TestSnapshotShape(t *testing.T) {
	p := NewPipeline()
	p.Tx.Frames.Add(3)
	p.Rx.Decision[2].Inc()
	p.Exp.LastPLR.Store(0.25)
	p.RecordStage(StageRxEstimate, Start())

	s := p.Snapshot()
	counters := map[string]int64{}
	for _, c := range s.Counters {
		counters[c.Name] = c.Value
	}
	if counters["tx.frames"] != 3 {
		t.Fatalf("tx.frames = %d, want 3", counters["tx.frames"])
	}
	if counters["rx.decision.excision"] != 1 {
		t.Fatalf("rx.decision.excision = %d, want 1", counters["rx.decision.excision"])
	}
	var sawPLR bool
	for _, g := range s.Gauges {
		if g.Name == "exp.last_plr" {
			sawPLR = true
			if g.Value != 0.25 {
				t.Fatalf("exp.last_plr = %v, want 0.25", g.Value)
			}
		}
	}
	if !sawPLR {
		t.Fatal("exp.last_plr gauge missing")
	}
	var sawStage bool
	for _, h := range s.Histograms {
		if !strings.HasSuffix(h.Name, "_ns") && !strings.Contains(h.Name, ".") {
			t.Fatalf("histogram %q violates naming scheme", h.Name)
		}
		if h.Name == "stage.rx.estimate_ns" {
			sawStage = true
			if h.Count != 1 {
				t.Fatalf("stage.rx.estimate_ns count = %d, want 1", h.Count)
			}
		}
	}
	if !sawStage {
		t.Fatal("stage.rx.estimate_ns histogram missing")
	}
	if len(s.Spans) != 1 {
		t.Fatalf("Spans = %d, want 1", len(s.Spans))
	}
	if light := p.SnapshotLight(); light.Spans != nil {
		t.Fatal("SnapshotLight carries spans")
	}

	// Two snapshots of the same pipeline must enumerate identical names in
	// identical order — the CSV column-stability contract.
	s2 := p.Snapshot()
	if len(s2.Counters) != len(s.Counters) {
		t.Fatal("counter set unstable across snapshots")
	}
	for i := range s.Counters {
		if s.Counters[i].Name != s2.Counters[i].Name {
			t.Fatalf("counter order unstable at %d: %q vs %q",
				i, s.Counters[i].Name, s2.Counters[i].Name)
		}
	}
}

func TestRegisterGlobal(t *testing.T) {
	RegisterGlobal("obstest.metric", func() int64 { return 7 })
	// Re-registration with a different accessor is ignored (first wins).
	RegisterGlobal("obstest.metric", func() int64 { return 99 })
	s := NewPipeline().Snapshot()
	for _, c := range s.Counters {
		if c.Name == "obstest.metric" {
			if c.Value != 7 {
				t.Fatalf("obstest.metric = %d, want 7 (first registration wins)", c.Value)
			}
			return
		}
	}
	t.Fatal("registered global missing from snapshot")
}

// TestRecordingZeroAlloc asserts the package's core contract: every
// recording primitive allocates nothing, so //bhss:hotpath functions can
// call them freely.
func TestRecordingZeroAlloc(t *testing.T) {
	p := NewPipeline()
	var (
		c Counter
		g Gauge
		h Histogram
	)
	alloctest.AssertZero(t, "Counter.Inc", func() { c.Inc() })
	alloctest.AssertZero(t, "Counter.Add", func() { c.Add(3) })
	alloctest.AssertZero(t, "Gauge.Store", func() { g.Store(1.5) })
	alloctest.AssertZero(t, "Histogram.Observe", func() { h.Observe(1234) })
	alloctest.AssertZero(t, "Histogram.ObserveSince", func() { h.ObserveSince(Start()) })
	alloctest.AssertZero(t, "Tracer.Record", func() { p.Trace.Record(StageRxDemod, Start()) })
	alloctest.AssertZero(t, "Pipeline.RecordStage", func() { p.RecordStage(StageRxDemod, Start()) })
	alloctest.AssertZero(t, "deferred RecordStage", func() {
		func() {
			defer p.RecordStage(StageRxEstimate, Start())
		}()
	})
}
