// Package prng provides a small, deterministic, allocation-free pseudo-random
// number generator used throughout the BHSS system.
//
// Both the transmitter and the receiver of a spread spectrum link must derive
// the same pseudo-random decisions (chip sequences, hop schedules) from a
// pre-shared seed, exactly as the "Random seed" blocks in Figures 4 and 6 of
// the paper. The standard library generators do not guarantee a stable stream
// across Go releases, so we implement xoshiro256** seeded by splitmix64: the
// stream is fully specified here and will never change underneath a deployed
// link.
//
// The generator is NOT cryptographically secure. The paper assumes a
// pre-shared random source whose output is unpredictable to the jammer; in a
// hardened deployment the Source below would be replaced by a keyed PRF
// (e.g. AES-CTR). The interface is deliberately tiny so that swap is a
// one-type change.
package prng

import "math"

// Source is a deterministic xoshiro256** generator. The zero value is not
// usable; construct with New. Source is not safe for concurrent use; give
// each goroutine its own Source (use Split).
type Source struct {
	s0, s1, s2, s3 uint64

	// Box-Muller cache for NormFloat64.
	haveGauss bool
	gauss     float64
}

// New returns a Source seeded from the given 64-bit seed via splitmix64,
// following the reference xoshiro seeding procedure.
func New(seed uint64) *Source {
	var s Source
	s.Reseed(seed)
	return &s
}

// Reseed re-initializes the generator state from seed, discarding any cached
// Gaussian value.
func (s *Source) Reseed(seed uint64) {
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	s.s0, s.s1, s.s2, s.s3 = next(), next(), next(), next()
	// xoshiro must not start at the all-zero state; splitmix64 of any seed
	// cannot produce four zero words, but guard anyway.
	if s.s0|s.s1|s.s2|s.s3 == 0 {
		s.s0 = 0x9e3779b97f4a7c15
	}
	s.haveGauss = false
	s.gauss = 0
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (s *Source) Uint64() uint64 {
	result := rotl(s.s1*5, 7) * 9
	t := s.s1 << 17
	s.s2 ^= s.s0
	s.s3 ^= s.s1
	s.s1 ^= s.s2
	s.s0 ^= s.s3
	s.s2 ^= t
	s.s3 = rotl(s.s3, 45)
	return result
}

// Split derives an independent child generator. The child stream is a pure
// function of the parent state at the time of the call, so transmitter and
// receiver that Split in the same order obtain identical children.
func (s *Source) Split() *Source {
	return New(s.Uint64())
}

// Intn returns a uniformly distributed integer in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		//bhss:allow(panicpolicy) stdlib contract: math/rand.Intn panics identically on n <= 0
		panic("prng: Intn called with n <= 0")
	}
	// Lemire's multiply-shift rejection method, unbiased.
	un := uint64(n)
	hi, lo := mul64(s.Uint64(), un)
	if lo < un {
		thresh := (-un) % un
		for lo < thresh {
			hi, lo = mul64(s.Uint64(), un)
		}
	}
	return int(hi)
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	a0, a1 := a&mask32, a>>32
	b0, b1 := b&mask32, b>>32
	w0 := a0 * b0
	t := a1*b0 + w0>>32
	w1 := t & mask32
	w2 := t >> 32
	w1 += a0 * b1
	hi = a1*b1 + w2 + w1>>32
	lo = a * b
	return hi, lo
}

// Float64 returns a uniformly distributed float64 in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a standard normal deviate using the Box-Muller
// transform with caching of the second deviate.
func (s *Source) NormFloat64() float64 {
	if s.haveGauss {
		s.haveGauss = false
		return s.gauss
	}
	var u float64
	for u == 0 {
		u = s.Float64()
	}
	v := s.Float64()
	r := math.Sqrt(-2 * math.Log(u))
	s.gauss = r * math.Sin(2*math.Pi*v)
	s.haveGauss = true
	return r * math.Cos(2*math.Pi*v)
}

// ComplexNorm returns a circularly symmetric complex Gaussian sample with
// total variance 1 (0.5 per rail).
func (s *Source) ComplexNorm() complex128 {
	const invSqrt2 = 0.7071067811865476
	return complex(s.NormFloat64()*invSqrt2, s.NormFloat64()*invSqrt2)
}

// Bit returns a single uniformly distributed bit.
func (s *Source) Bit() int {
	return int(s.Uint64() >> 63)
}

// ChipBit returns ±1 with equal probability.
func (s *Source) ChipBit() float64 {
	if s.Bit() == 1 {
		return 1
	}
	return -1
}

// Perm fills dst with a uniformly random permutation of 0..len(dst)-1.
func (s *Source) Perm(dst []int) {
	for i := range dst {
		dst[i] = i
	}
	for i := len(dst) - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		dst[i], dst[j] = dst[j], dst[i]
	}
}

// Choose returns an index in [0, len(weights)) drawn according to the given
// non-negative weights. It panics if the weights are empty or sum to zero.
func (s *Source) Choose(weights []float64) int {
	var total float64
	for _, w := range weights {
		if w < 0 || math.IsNaN(w) {
			//bhss:allow(panicpolicy) weights are validated plan-time config; a bad weight is a programming error
			panic("prng: negative or NaN weight")
		}
		total += w
	}
	if len(weights) == 0 || total == 0 {
		//bhss:allow(panicpolicy) weights are validated plan-time config; a bad weight is a programming error
		panic("prng: Choose requires positive total weight")
	}
	x := s.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}
