package prng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestReseedRestartsStream(t *testing.T) {
	a := New(7)
	first := make([]uint64, 16)
	for i := range first {
		first[i] = a.Uint64()
	}
	a.Reseed(7)
	for i := range first {
		if got := a.Uint64(); got != first[i] {
			t.Fatalf("step %d: got %d want %d after reseed", i, got, first[i])
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d/64 identical words", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent1 := New(99)
	parent2 := New(99)
	c1 := parent1.Split()
	c2 := parent2.Split()
	for i := 0; i < 100; i++ {
		if c1.Uint64() != c2.Uint64() {
			t.Fatalf("children of identical parents diverged at %d", i)
		}
	}
	// Child differs from parent continuation.
	p := New(99)
	c := p.Split()
	if p.Uint64() == c.Uint64() {
		t.Fatal("child stream should not mirror parent stream")
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(3)
	for i := 0; i < 100000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(11)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	s := New(5)
	for n := 1; n <= 17; n++ {
		for i := 0; i < 1000; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnUniform(t *testing.T) {
	s := New(6)
	const n, trials = 7, 140000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[s.Intn(n)]++
	}
	want := float64(trials) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("bucket %d: count %d deviates from %v", i, c, want)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) should panic")
		}
	}()
	New(1).Intn(0)
}

func TestNormFloat64Moments(t *testing.T) {
	s := New(8)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := s.NormFloat64()
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Fatalf("normal variance = %v, want ~1", variance)
	}
}

func TestComplexNormPower(t *testing.T) {
	s := New(9)
	const n = 100000
	var p float64
	for i := 0; i < n; i++ {
		z := s.ComplexNorm()
		p += real(z)*real(z) + imag(z)*imag(z)
	}
	p /= n
	if math.Abs(p-1) > 0.02 {
		t.Fatalf("complex normal power = %v, want ~1", p)
	}
}

func TestChipBitBalance(t *testing.T) {
	s := New(10)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		c := s.ChipBit()
		if c != 1 && c != -1 {
			t.Fatalf("ChipBit returned %v", c)
		}
		sum += c
	}
	if math.Abs(sum)/n > 0.01 {
		t.Fatalf("chip bias %v too large", sum/n)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(12)
	p := make([]int, 40)
	s.Perm(p)
	seen := make([]bool, len(p))
	for _, v := range p {
		if v < 0 || v >= len(p) || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestChooseRespectsWeights(t *testing.T) {
	s := New(13)
	weights := []float64{0.5, 0, 0.25, 0.25}
	counts := make([]int, len(weights))
	const n = 100000
	for i := 0; i < n; i++ {
		counts[s.Choose(weights)]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight bucket chosen %d times", counts[1])
	}
	if math.Abs(float64(counts[0])/n-0.5) > 0.01 {
		t.Fatalf("bucket 0 frequency %v, want ~0.5", float64(counts[0])/n)
	}
}

func TestChoosePanicsOnZeroTotal(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Choose with zero total weight should panic")
		}
	}()
	New(1).Choose([]float64{0, 0})
}

// Property: Intn stays in range for arbitrary seeds and bounds.
func TestQuickIntnRange(t *testing.T) {
	f := func(seed uint64, nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		s := New(seed)
		for i := 0; i < 50; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: identical seeds yield identical hop-relevant decision streams.
func TestQuickDeterministicDecisions(t *testing.T) {
	f := func(seed uint64) bool {
		a, b := New(seed), New(seed)
		for i := 0; i < 32; i++ {
			if a.Intn(7) != b.Intn(7) || a.Float64() != b.Float64() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= s.Uint64()
	}
	_ = sink
}

func BenchmarkNormFloat64(b *testing.B) {
	s := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += s.NormFloat64()
	}
	_ = sink
}
