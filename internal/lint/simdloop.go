package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// SIMDLoop flags hand-rolled loops in //bhss:hotpath functions that
// re-implement a primitive the internal/dsp/simd layer already dispatches:
// element-wise complex multiply/add/scale/window/mag²-accumulate and the
// sum/dot-conjugate/correlation reductions. Such loops silently forfeit the
// AVX2/NEON speedup on the paths the 20 MS/s budget depends on, and a
// hand-rolled reduction can also diverge bit-wise from the kernels'
// canonical lane-accumulation order, breaking the golden-vector contract.
//
// The package bhss/internal/dsp/simd itself is exempt: its generic.go
// scalar loops ARE the canonical definitions the assembly is verified
// against.
//
// To stay precise the analyzer only fires on loops whose body is a single
// assignment matching a shape a kernel actually covers:
//
//   - element-wise over []complex128 (CMulTo, AddTo, ScaleReal, WindowInto,
//     Pow4Into): dst[i] op= ... or dst[i] = ... reading only slice elements
//     and loop-invariant scalars
//   - []float64 accumulation of complex magnitudes (Mag2Accum):
//     dst[i] += f(x[i]) with a complex element read on the right
//   - reductions into a loop-invariant scalar: a plain float sum
//     (SumFloats) or any reduction reading complex elements (DotConj,
//     CorrReal)
//
// Loop-carried recurrences (Costas tracking), strided polyphase loops,
// multi-statement bodies and float-only shapes with no kernel (x[i] *= g
// over []float64, Σv²) are never flagged; a deliberate scalar loop is
// suppressed in place with //bhss:allow(simdloop) and a reason.
var SIMDLoop = &Analyzer{
	Name: "simdloop",
	Doc:  "flags hotpath loops duplicating internal/dsp/simd kernels",
	Run:  runSIMDLoop,
}

func runSIMDLoop(pass *Pass) error {
	if pass.Path == "bhss/internal/dsp/simd" {
		return nil
	}
	eachFuncDecl(pass.SrcFiles(), func(fn *ast.FuncDecl) {
		if !funcHasDirective(fn, "hotpath") {
			return
		}
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			var body *ast.BlockStmt
			var rangeVal types.Object
			var rangeComplex bool
			switch s := n.(type) {
			case *ast.ForStmt:
				body = s.Body
			case *ast.RangeStmt:
				body = s.Body
				// `for _, v := range x` reads one element per iteration;
				// treat v as an element access of x below.
				if id, ok := s.Value.(*ast.Ident); ok {
					if t := pass.Info.TypeOf(s.X); kernelSlice(t) {
						rangeVal = pass.Info.Defs[id]
						rangeComplex = complexSlice(t)
					}
				}
			default:
				return true
			}
			if len(body.List) != 1 {
				return true
			}
			assign, ok := body.List[0].(*ast.AssignStmt)
			if !ok || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
				return true
			}
			checkKernelLoop(pass, n, assign, rangeVal, rangeComplex)
			return true
		})
	})
	return nil
}

// checkKernelLoop reports the assignment if it matches an element-wise or
// reduction kernel shape. loop is the enclosing for/range statement;
// rangeVal is the range value variable when it reads a kernel-typed slice.
func checkKernelLoop(pass *Pass, loop ast.Node, assign *ast.AssignStmt, rangeVal types.Object, rangeComplex bool) {
	locals := map[types.Object]bool{}
	ast.Inspect(loop, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := pass.Info.Defs[id]; obj != nil {
				locals[obj] = true
			}
		}
		return true
	})
	st := &loopScan{pass: pass, locals: locals, rangeVal: rangeVal, rangeComplex: rangeComplex}

	switch lhs := ast.Unparen(assign.Lhs[0]).(type) {
	case *ast.IndexExpr:
		// dst[i] op= ... / dst[i] = ... over a kernel-typed slice.
		lhsType := pass.Info.TypeOf(lhs.X)
		if !kernelSlice(lhsType) || !st.invariantBase(lhs.X) {
			return
		}
		switch assign.Tok {
		case token.ASSIGN, token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN:
		default:
			return
		}
		if !st.pure(assign.Rhs[0]) {
			return
		}
		if complexSlice(lhsType) {
			// `dst[i] *= g` reads the element through the compound token
			// itself (the ScaleReal shape); every other form must read an
			// element on the right to be a kernel.
			if assign.Tok != token.MUL_ASSIGN && !st.readsElement {
				return
			}
		} else {
			// The only float64-destination kernel is Mag2Accum:
			// dst[i] += |x[i]|². Float-only element-wise shapes (x[i] *= g)
			// have no kernel and stay silent.
			if assign.Tok != token.ADD_ASSIGN || !st.readsComplex {
				return
			}
		}
		pass.Reportf(assign.Pos(),
			"hotpath loop re-implements an element-wise simd kernel; call the dispatched internal/dsp/simd primitive (CMulTo, AddTo, ScaleReal, WindowInto, Mag2Accum, Pow4Into) so amd64/arm64 builds keep the vector speedup")
	case *ast.Ident:
		// acc += ... into a loop-invariant scalar accumulator: a plain
		// float sum (SumFloats) or a reduction over complex elements
		// (DotConj, CorrReal). Float-only products (Σv²) have no kernel.
		if assign.Tok != token.ADD_ASSIGN {
			return
		}
		obj := pass.Info.Uses[lhs]
		if obj == nil || locals[obj] || !kernelScalar(obj.Type()) {
			return
		}
		if !st.pure(assign.Rhs[0]) || !st.readsElement {
			return
		}
		if !st.readsComplex && !st.plainElementRead(assign.Rhs[0]) {
			return
		}
		pass.Reportf(assign.Pos(),
			"hotpath loop re-implements a simd reduction into %s; call internal/dsp/simd (SumFloats, DotConj, CorrReal) — the kernels also pin the canonical accumulation order the golden vectors depend on", lhs.Name)
	}
}

// loopScan walks a candidate kernel expression, tracking whether it stays
// within the kernel vocabulary (slice-element reads, loop-invariant scalars,
// real/imag/complex builtins, cmplx.Conj, math.Abs, arithmetic), whether it
// reads at least one slice element, and whether any read is complex.
type loopScan struct {
	pass         *Pass
	locals       map[types.Object]bool
	rangeVal     types.Object
	rangeComplex bool
	readsElement bool
	readsComplex bool
}

func (s *loopScan) pure(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.BasicLit:
		return true
	case *ast.BinaryExpr:
		return s.pure(e.X) && s.pure(e.Y)
	case *ast.UnaryExpr:
		return (e.Op == token.SUB || e.Op == token.ADD) && s.pure(e.X)
	case *ast.IndexExpr:
		t := s.pass.Info.TypeOf(e.X)
		if !kernelSlice(t) || !s.invariantBase(e.X) {
			return false
		}
		s.readsElement = true
		if complexSlice(t) {
			s.readsComplex = true
		}
		return true
	case *ast.Ident:
		obj := s.pass.Info.Uses[e]
		if obj == nil {
			return false
		}
		if obj == s.rangeVal {
			s.readsElement = true
			if s.rangeComplex {
				s.readsComplex = true
			}
			return true
		}
		if s.locals[obj] {
			return false
		}
		return kernelScalar(obj.Type())
	case *ast.SelectorExpr:
		return s.invariantBase(e) && kernelScalar(s.pass.Info.TypeOf(e))
	case *ast.CallExpr:
		if !s.kernelCall(e) {
			return false
		}
		for _, arg := range e.Args {
			if !s.pure(arg) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// plainElementRead reports whether e is exactly one slice-element read (the
// SumFloats shape), allowing parentheses.
func (s *loopScan) plainElementRead(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.IndexExpr:
		return true
	case *ast.Ident:
		return s.pass.Info.Uses[e] == s.rangeVal && s.rangeVal != nil
	}
	return false
}

// kernelCall reports whether the call is part of the kernel vocabulary:
// the real/imag/complex builtins, cmplx.Conj, cmplx.Abs or math.Abs.
func (s *loopScan) kernelCall(call *ast.CallExpr) bool {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := s.pass.Info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "real", "imag", "complex":
				return true
			}
		}
		return false
	}
	return isPkgFuncCall(s.pass.Info, call, "math/cmplx", "Conj") ||
		isPkgFuncCall(s.pass.Info, call, "math/cmplx", "Abs") ||
		isPkgFuncCall(s.pass.Info, call, "math", "Abs")
}

// invariantBase reports whether the expression's root identifier is declared
// outside the loop — indexing a slice the loop body itself produced is not a
// kernel shape.
func (s *loopScan) invariantBase(e ast.Expr) bool {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			e = x.X
			continue
		case *ast.IndexExpr:
			e = x.X
			continue
		case *ast.Ident:
			obj := s.pass.Info.Uses[x]
			return obj != nil && !s.locals[obj]
		default:
			return false
		}
	}
}

// kernelSlice reports whether t is []float64 or []complex128 — the two
// element types the simd layer covers.
func kernelSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	sl, ok := t.Underlying().(*types.Slice)
	return ok && kernelScalar(sl.Elem())
}

// complexSlice reports whether t is []complex128.
func complexSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Complex128
}

// kernelScalar reports whether t is float64 or complex128.
func kernelScalar(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Float64 || b.Kind() == types.Complex128)
}
