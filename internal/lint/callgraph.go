package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// This file builds the whole-program view the cross-package analyzers run
// on: a call graph over every function declared in the analyzed packages,
// annotated with per-function facts (hot-path directive, direct-allocation
// sites, static call edges) and two program-wide indexes (channels that are
// closed anywhere, for goroleak; the merged //bhss:allow table). In
// standalone mode the graph spans every package named on the command line;
// under `go vet -vettool` it spans the one package being vetted plus the
// facts imported from its dependencies' .vetx files (see facts.go).

// CallEdge is one static call site: the callee, where the call appears, and
// the call expression itself (goroleak inspects arguments to follow a closed
// channel through a parameter).
type CallEdge struct {
	Callee *types.Func
	Pos    token.Pos
	Call   *ast.CallExpr
}

// AllocSite is one direct allocation inside a function body, as classified
// by the hotpathalloc rules (vetted Append forms and the obs-defer idiom are
// already exempted).
type AllocSite struct {
	Pos  token.Pos
	What string
}

// FuncInfo is everything the program analyzers know about one declared
// function.
type FuncInfo struct {
	Obj     *types.Func
	Decl    *ast.FuncDecl
	Pkg     *Package
	Hotpath bool // carries the //bhss:hotpath directive
	Test    bool // declared in a _test.go file
	Allocs  []AllocSite
	Calls   []CallEdge
}

// CallGraph is the whole-program fact base.
type CallGraph struct {
	Fset  *token.FileSet
	Funcs map[*types.Func]*FuncInfo
	// ClosedChans holds every channel-valued object (struct field or
	// variable) that appears as the argument of a close() call anywhere in
	// the program. goroleak treats a receive on one of these as a shutdown
	// edge.
	ClosedChans map[types.Object]bool
	// AddrTaken marks functions whose identifier is used outside a call
	// position — passed or stored as a value. Such functions have callers
	// the static edges cannot see, so hotpathfacts never calls their
	// annotations redundant.
	AddrTaken map[*types.Func]bool
	// Imported holds dependency facts keyed by symbol (types.Func.FullName)
	// when running under the vet facts protocol; empty in standalone mode,
	// where dependencies are themselves part of the graph.
	Imported map[string]FuncFacts
}

// buildCallGraph constructs the program fact base over pkgs.
func buildCallGraph(pkgs []*Package, imported map[string]FuncFacts) *CallGraph {
	g := &CallGraph{
		Funcs:       map[*types.Func]*FuncInfo{},
		ClosedChans: map[types.Object]bool{},
		AddrTaken:   map[*types.Func]bool{},
		Imported:    imported,
	}
	if g.Imported == nil {
		g.Imported = map[string]FuncFacts{}
	}
	for _, pkg := range pkgs {
		if g.Fset == nil {
			g.Fset = pkg.Fset
		}
		for _, f := range pkg.Files {
			isTest := strings.HasSuffix(pkg.Fset.Position(f.Pos()).Filename, "_test.go")
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if obj == nil {
					continue
				}
				fi := &FuncInfo{
					Obj:     obj,
					Decl:    fd,
					Pkg:     pkg,
					Hotpath: funcHasDirective(fd, "hotpath"),
					Test:    isTest,
				}
				walkAllocs(pkg.Fset, pkg.Info, fd, func(pos token.Pos, msg string) {
					fi.Allocs = append(fi.Allocs, AllocSite{Pos: pos, What: msg})
				})
				collectCallsAndCloses(pkg.Info, fd.Body, fi, g.ClosedChans)
				g.Funcs[obj] = fi
			}
		}
		markAddrTaken(pkg, g.AddrTaken)
	}
	return g
}

// markAddrTaken records every function whose identifier appears outside the
// Fun position of a call: stored in a variable, passed as an argument,
// registered as a callback. Those functions gain dynamic callers the static
// edges never see.
func markAddrTaken(pkg *Package, out map[*types.Func]bool) {
	for _, f := range pkg.Files {
		calleeIdents := map[*ast.Ident]bool{}
		ast.Inspect(f, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				switch fun := ast.Unparen(call.Fun).(type) {
				case *ast.Ident:
					calleeIdents[fun] = true
				case *ast.SelectorExpr:
					calleeIdents[fun.Sel] = true
				}
			}
			return true
		})
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || calleeIdents[id] {
				return true
			}
			if fn, ok := pkg.Info.Uses[id].(*types.Func); ok {
				out[fn] = true
			}
			return true
		})
	}
}

// collectCallsAndCloses records fi's static call edges and feeds the
// program-wide closed-channel index.
func collectCallsAndCloses(info *types.Info, body *ast.BlockStmt, fi *FuncInfo, closed map[types.Object]bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isBuiltinCall(info, call, "close") && len(call.Args) == 1 {
			if obj := rootSelectableObject(info, call.Args[0]); obj != nil {
				closed[obj] = true
			}
			return true
		}
		if callee := staticCallee(info, call); callee != nil {
			fi.Calls = append(fi.Calls, CallEdge{Callee: callee, Pos: call.Pos(), Call: call})
		}
		return true
	})
}

// staticCallee resolves a call expression to the *types.Func it statically
// invokes: a package-level function, a method (value or pointer receiver),
// or a local function value is not resolvable and yields nil. Interface
// method calls resolve to the interface method object, which has no body in
// the graph — callers treat that as opaque.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// rootSelectableObject resolves an expression to the stable object the
// program analyzers key channel identity on: for `s.out` the field object,
// for a plain identifier its variable object, recursing through parens and
// index expressions (`shards[i].done` keys on the `done` field).
func rootSelectableObject(info *types.Info, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return info.Uses[e]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok {
			return sel.Obj()
		}
		return info.Uses[e.Sel]
	case *ast.IndexExpr:
		return rootSelectableObject(info, e.X)
	}
	return nil
}

// isBuiltinCall reports whether call invokes the named builtin.
func isBuiltinCall(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}

// isChanType reports whether t's underlying type is a channel.
func isChanType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

// hasCloseMethod reports whether t (or *t) has a method named Close,
// Shutdown or Stop — the shape goroleak accepts as "another goroutine can
// sever whatever this one blocks on".
func hasCloseMethod(t types.Type) bool {
	if t == nil {
		return false
	}
	for _, name := range [...]string{"Close", "Shutdown", "Stop"} {
		if m, _, _ := types.LookupFieldOrMethod(t, true, nil, name); m != nil {
			if _, ok := m.(*types.Func); ok {
				return true
			}
		}
	}
	return false
}
