package lint_test

import (
	"testing"

	"bhss/internal/lint"
	"bhss/internal/lint/linttest"
)

// Each analyzer is exercised against a flagged fixture (every rule fires
// where a want comment says it should, and nowhere else) and a clean fixture
// (the sanctioned idioms stay silent). Fixtures live under testdata/src,
// which the go tool's ./... wildcard never descends into, so the
// deliberately-broken packages cannot leak into repo-wide builds.

func TestHotPathAlloc(t *testing.T) {
	linttest.Run(t, lint.HotPathAlloc, "hotpathalloc/flagged", "hotpathalloc/clean")
}

func TestSIMDLoop(t *testing.T) {
	linttest.Run(t, lint.SIMDLoop, "simdloop/flagged", "simdloop/clean")
}

func TestDetRand(t *testing.T) {
	linttest.Run(t, lint.DetRand, "detrand/flagged", "detrand/clean")
}

func TestFloatEq(t *testing.T) {
	linttest.Run(t, lint.FloatEq, "floateq/flagged", "floateq/clean")
}

func TestScratchAlias(t *testing.T) {
	linttest.Run(t, lint.ScratchAlias, "scratchalias/flagged", "scratchalias/clean")
}

func TestPanicPolicy(t *testing.T) {
	linttest.Run(t, lint.PanicPolicy, "panicpolicy/flagged", "panicpolicy/clean")
}

func TestHotPathFacts(t *testing.T) {
	linttest.Run(t, lint.HotPathFacts, "hotpathfacts/flagged", "hotpathfacts/clean")
}

func TestGoroLeak(t *testing.T) {
	linttest.Run(t, lint.GoroLeak, "goroleak/flagged", "goroleak/clean")
}

func TestAtomicMix(t *testing.T) {
	linttest.Run(t, lint.AtomicMix, "atomicmix/flagged", "atomicmix/clean")
}

func TestChanDiscipline(t *testing.T) {
	linttest.Run(t, lint.ChanDiscipline, "chandiscipline/flagged", "chandiscipline/clean")
}

func TestDetTaint(t *testing.T) {
	linttest.Run(t, lint.DetTaint, "dettaint/flagged", "dettaint/clean")
}

// TestAllowEdgeCases runs two analyzers at once over a fixture that
// exercises the //bhss:allow directive forms: multi-analyzer suppression on
// one line, allow-on-the-line-above, a reasonless directive (reported
// itself), and a directive naming an analyzer with no finding on the line.
func TestAllowEdgeCases(t *testing.T) {
	linttest.RunMulti(t, []*lint.Analyzer{lint.FloatEq, lint.DetRand}, "allow/cases")
}

func TestByName(t *testing.T) {
	as, err := lint.ByName("detrand,floateq")
	if err != nil {
		t.Fatal(err)
	}
	if len(as) != 2 || as[0].Name != "detrand" || as[1].Name != "floateq" {
		t.Fatalf("ByName returned %v", as)
	}
	if _, err := lint.ByName("nosuchanalyzer"); err == nil {
		t.Fatal("ByName accepted an unknown analyzer name")
	}
}

func TestAllNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range lint.All() {
		if seen[a.Name] {
			t.Fatalf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
	if len(seen) != 11 {
		t.Fatalf("expected 11 analyzers, got %d", len(seen))
	}
}
