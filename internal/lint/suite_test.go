package lint_test

import (
	"testing"

	"bhss/internal/lint"
	"bhss/internal/lint/linttest"
)

// Each analyzer is exercised against a flagged fixture (every rule fires
// where a want comment says it should, and nowhere else) and a clean fixture
// (the sanctioned idioms stay silent). Fixtures live under testdata/src,
// which the go tool's ./... wildcard never descends into, so the
// deliberately-broken packages cannot leak into repo-wide builds.

func TestHotPathAlloc(t *testing.T) {
	linttest.Run(t, lint.HotPathAlloc, "hotpathalloc/flagged", "hotpathalloc/clean")
}

func TestSIMDLoop(t *testing.T) {
	linttest.Run(t, lint.SIMDLoop, "simdloop/flagged", "simdloop/clean")
}

func TestDetRand(t *testing.T) {
	linttest.Run(t, lint.DetRand, "detrand/flagged", "detrand/clean")
}

func TestFloatEq(t *testing.T) {
	linttest.Run(t, lint.FloatEq, "floateq/flagged", "floateq/clean")
}

func TestScratchAlias(t *testing.T) {
	linttest.Run(t, lint.ScratchAlias, "scratchalias/flagged", "scratchalias/clean")
}

func TestPanicPolicy(t *testing.T) {
	linttest.Run(t, lint.PanicPolicy, "panicpolicy/flagged", "panicpolicy/clean")
}

func TestByName(t *testing.T) {
	as, err := lint.ByName("detrand,floateq")
	if err != nil {
		t.Fatal(err)
	}
	if len(as) != 2 || as[0].Name != "detrand" || as[1].Name != "floateq" {
		t.Fatalf("ByName returned %v", as)
	}
	if _, err := lint.ByName("nosuchanalyzer"); err == nil {
		t.Fatal("ByName accepted an unknown analyzer name")
	}
}

func TestAllNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range lint.All() {
		if seen[a.Name] {
			t.Fatalf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
	if len(seen) != 6 {
		t.Fatalf("expected 6 analyzers, got %d", len(seen))
	}
}
