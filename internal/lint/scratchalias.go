package lint

import (
	"go/ast"
	"go/types"
)

// ScratchAlias polices the lifetime of reusable scratch buffers. Struct
// fields marked //bhss:scratch (the receiver's rxScratch slices, the
// transmitter chip buffer, overlap-save history) are overwritten on the next
// call, so any view of them that escapes the current call — returned,
// stored into another object or a global, sent on a channel, packed into a
// composite literal — silently goes stale.
//
// A scratch value is: a selector chain that passes through a marked field
// (r.scratch.raw), a slice of one (r.scratch.raw[:n]), or a single-level
// local alias of one (raw := r.scratch.raw). Flagged escapes:
//
//   - return statements whose result is scratch, unless the function is
//     annotated //bhss:scratchview (callers of those functions accept the
//     documented until-next-call lifetime);
//   - assignments of scratch into anything other than a local variable or
//     another scratch location (struct fields of other values, globals,
//     map/slice elements reached through non-scratch bases);
//   - scratch inside composite literals (the literal outlives the call as
//     soon as it is returned or stored — conservatively flagged at the
//     literal, except in //bhss:scratchview functions);
//   - channel sends of scratch.
//
// Passing scratch to a callee is allowed: a call finishes before the next
// overwrite, and the callee's own contract is checked at its declaration.
var ScratchAlias = &Analyzer{
	Name: "scratchalias",
	Doc:  "detects scratch-buffer views escaping a call's lifetime",
	Run:  runScratchAlias,
}

func runScratchAlias(pass *Pass) error {
	scratchFields := collectScratchFields(pass)
	if len(scratchFields) == 0 {
		return nil
	}
	eachFuncDecl(pass.SrcFiles(), func(fn *ast.FuncDecl) {
		view := funcHasDirective(fn, "scratchview")
		w := &scratchWalker{pass: pass, fields: scratchFields, aliases: map[types.Object]bool{}, view: view}
		// Pass 1: collect single-level local aliases (raw := r.scratch.raw).
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			assign, ok := n.(*ast.AssignStmt)
			if !ok || len(assign.Lhs) != len(assign.Rhs) {
				return true
			}
			for i, rhs := range assign.Rhs {
				if !w.isScratchExpr(rhs) {
					continue
				}
				if id, ok := ast.Unparen(assign.Lhs[i]).(*ast.Ident); ok {
					if obj := pass.Info.Defs[id]; obj != nil {
						w.aliases[obj] = true
					} else if obj := pass.Info.Uses[id]; obj != nil && isLocalVar(obj) {
						w.aliases[obj] = true
					}
				}
			}
			return true
		})
		// Pass 2: find escapes.
		ast.Inspect(fn.Body, w.visit)
	})
	return nil
}

// collectScratchFields gathers the types.Var for every //bhss:scratch field
// declared in this package.
func collectScratchFields(pass *Pass) map[types.Object]bool {
	fields := map[types.Object]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				if !fieldHasDirective(field, "scratch") {
					continue
				}
				for _, name := range field.Names {
					if obj := pass.Info.Defs[name]; obj != nil {
						fields[obj] = true
					}
				}
			}
			return true
		})
	}
	return fields
}

type scratchWalker struct {
	pass    *Pass
	fields  map[types.Object]bool
	aliases map[types.Object]bool
	view    bool
}

// isScratchExpr reports whether e denotes (a view of) a scratch buffer.
func (w *scratchWalker) isScratchExpr(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := w.pass.Info.Uses[e]
		return obj != nil && w.aliases[obj]
	case *ast.SelectorExpr:
		if sel, ok := w.pass.Info.Selections[e]; ok && w.fields[sel.Obj()] {
			return true
		}
		// r.scratch.raw: the chain passes through a scratch field higher up
		// (scratch itself marked) even when the leaf field is not.
		return w.isScratchExpr(e.X)
	case *ast.SliceExpr:
		return w.isScratchExpr(e.X)
	case *ast.IndexExpr:
		// scratch[i] of a slice-of-slices would still alias; element reads of
		// numeric scratch do not escape anything. Only treat as scratch when
		// the element itself has reference type.
		if !w.isScratchExpr(e.X) {
			return false
		}
		return isRefType(w.pass.Info.TypeOf(e))
	}
	return false
}

func (w *scratchWalker) visit(n ast.Node) bool {
	switch n := n.(type) {
	case *ast.ReturnStmt:
		if w.view {
			return true
		}
		for _, res := range n.Results {
			if w.isScratchExpr(res) {
				w.pass.Reportf(res.Pos(), "returning a view of a //bhss:scratch buffer; it is overwritten on the next call (annotate //bhss:scratchview if intentional)")
			}
		}
	case *ast.AssignStmt:
		if len(n.Lhs) != len(n.Rhs) {
			return true
		}
		for i, rhs := range n.Rhs {
			if !w.isScratchExpr(rhs) {
				continue
			}
			lhs := ast.Unparen(n.Lhs[i])
			if w.storeEscapes(lhs) {
				w.pass.Reportf(n.Pos(), "storing a view of a //bhss:scratch buffer outside the call (it goes stale on the next call)")
			}
		}
	case *ast.CompositeLit:
		if w.view {
			return true
		}
		for _, elt := range n.Elts {
			v := elt
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				v = kv.Value
			}
			if w.isScratchExpr(v) {
				w.pass.Reportf(v.Pos(), "scratch buffer captured in a composite literal may outlive the call")
			}
		}
	case *ast.SendStmt:
		if w.isScratchExpr(n.Value) {
			w.pass.Reportf(n.Value.Pos(), "sending a view of a //bhss:scratch buffer on a channel; the receiver races the next overwrite")
		}
	}
	return true
}

// storeEscapes reports whether assigning into lhs moves a value beyond the
// current call: anything that is not a local variable, the blank identifier,
// or a scratch location itself.
func (w *scratchWalker) storeEscapes(lhs ast.Expr) bool {
	switch lhs := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if lhs.Name == "_" {
			return false
		}
		if obj := w.pass.Info.Defs[lhs]; obj != nil {
			return false // fresh local
		}
		obj := w.pass.Info.Uses[lhs]
		if obj == nil {
			return false
		}
		return !isLocalVar(obj) // package-level var
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		// Writing into a field, element or pointee: fine only if the target
		// is itself scratch (scratch-to-scratch rotation, self-store of a
		// grown buffer).
		return !w.isScratchStoreTarget(lhs)
	}
	return true
}

// isScratchStoreTarget is like isScratchExpr but for lvalues: storing into
// a scratch field (or an element/subslice of one) keeps the value inside the
// scratch lifetime discipline.
func (w *scratchWalker) isScratchStoreTarget(lhs ast.Expr) bool {
	switch lhs := ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr:
		if sel, ok := w.pass.Info.Selections[lhs]; ok && w.fields[sel.Obj()] {
			return true
		}
		return w.isScratchStoreTarget(lhs.X)
	case *ast.IndexExpr:
		return w.isScratchStoreTarget(lhs.X)
	case *ast.SliceExpr:
		return w.isScratchStoreTarget(lhs.X)
	case *ast.Ident:
		obj := w.pass.Info.Uses[lhs]
		return obj != nil && w.aliases[obj]
	}
	return false
}

// isLocalVar reports whether obj is a function-scoped variable.
func isLocalVar(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok {
		return false
	}
	// Package-level variables have the package scope as parent.
	return v.Parent() == nil || v.Parent() != v.Pkg().Scope()
}

// isRefType reports whether values of t alias underlying storage.
func isRefType(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Slice, *types.Pointer, *types.Map, *types.Chan:
		return true
	}
	return false
}
