package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// ChanDiscipline enforces three channel-usage contracts the transport and
// pipeline layers rely on:
//
//  1. close-by-sender: a channel that has senders must be closed from a
//     function that also sends on it. Closing from the receive side (or
//     from a third party) races every in-flight send into a panic. Signal
//     channels that are only ever closed (quit/done) have no senders and
//     are exempt.
//  2. no send-after-close: within one statement list, a send on a channel
//     after a close() of the same channel always panics.
//  3. no mutex held across a blocking channel op: a send, receive, range
//     or default-less select reached while a sync.Mutex/RWMutex is locked
//     stalls every other goroutine contending for the lock — the exact
//     deadlock shape the Hub's enqueueTx carefully unlocks around. A
//     select with a default is non-blocking and fine.
//
// Rules 2 and 3 use a linear source-order scan per function (deferred
// unlocks hold to the end of the function; a lock in a conditional branch
// counts until its unlock is seen), which can over-approximate on
// early-return branches — suppress such findings with
// //bhss:allow(chandiscipline) and the branch invariant as the reason.
var ChanDiscipline = &Analyzer{
	Name: "chandiscipline",
	Doc:  "channels: close on the sender side, never send after close, never block on a channel while holding a mutex",
	Run:  runChanDiscipline,
}

func runChanDiscipline(pass *Pass) error {
	info := pass.Info
	// Rule 1 needs a package-wide view of who sends and who closes.
	senders := map[types.Object]map[*ast.FuncDecl]bool{}
	type closeSite struct {
		fn   *ast.FuncDecl
		pos  token.Pos
		name string
		obj  types.Object
	}
	var closes []closeSite

	eachFuncDecl(pass.SrcFiles(), func(fn *ast.FuncDecl) {
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SendStmt:
				if obj := rootSelectableObject(info, n.Chan); obj != nil {
					if senders[obj] == nil {
						senders[obj] = map[*ast.FuncDecl]bool{}
					}
					senders[obj][fn] = true
				}
			case *ast.CallExpr:
				if isBuiltinCall(info, n, "close") && len(n.Args) == 1 {
					if obj := rootSelectableObject(info, n.Args[0]); obj != nil {
						closes = append(closes, closeSite{fn, n.Pos(), renderExpr(n.Args[0]), obj})
					}
				}
			}
			return true
		})
		checkSendAfterClose(pass, fn)
		checkMutexAcrossBlocking(pass, fn)
	})

	for _, c := range closes {
		if s := senders[c.obj]; len(s) > 0 && !s[c.fn] {
			pass.Reportf(c.pos,
				"%s is closed in %s but sent on elsewhere (%s): close channels from the sending side so no in-flight send can hit a closed channel",
				c.name, c.fn.Name.Name, someSenderName(s))
		}
	}
	return nil
}

func someSenderName(s map[*ast.FuncDecl]bool) string {
	names := make([]string, 0, len(s))
	for fn := range s {
		names = append(names, fn.Name.Name)
	}
	sort.Strings(names)
	return names[0]
}

// renderExpr prints a channel expression compactly for diagnostics.
func renderExpr(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return renderExpr(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return renderExpr(e.X) + "[...]"
	}
	return "channel"
}

// checkSendAfterClose flags a send that follows a close of the same channel
// within the same statement list — the one ordering the runtime always
// punishes.
func checkSendAfterClose(pass *Pass, fn *ast.FuncDecl) {
	info := pass.Info
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		block, ok := n.(*ast.BlockStmt)
		if !ok {
			return true
		}
		closedAt := map[types.Object]token.Pos{}
		for _, stmt := range block.List {
			switch s := stmt.(type) {
			case *ast.ExprStmt:
				if call, ok := s.X.(*ast.CallExpr); ok && isBuiltinCall(info, call, "close") && len(call.Args) == 1 {
					if obj := rootSelectableObject(info, call.Args[0]); obj != nil {
						closedAt[obj] = call.Pos()
					}
				}
			case *ast.SendStmt:
				if obj := rootSelectableObject(info, s.Chan); obj != nil {
					if cpos, ok := closedAt[obj]; ok {
						pass.Reportf(s.Pos(),
							"send on %s after it was closed at %s: this always panics",
							renderExpr(s.Chan), shortPos(pass.Fset, cpos))
					}
				}
			}
		}
		return true
	})
}

// lockEvent is one entry in a function's linear lock/blocking-op timeline.
type lockEvent struct {
	pos  token.Pos
	kind int // +1 lock, -1 unlock, 0 blocking op
	obj  types.Object
	what string
}

// checkMutexAcrossBlocking runs the rule-3 linear scan over fn's body and
// each function literal inside it, as separate scopes.
func checkMutexAcrossBlocking(pass *Pass, fn *ast.FuncDecl) {
	scanLockScope(pass, fn.Body)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			scanLockScope(pass, lit.Body)
		}
		return true
	})
}

func scanLockScope(pass *Pass, body *ast.BlockStmt) {
	info := pass.Info
	var events []lockEvent
	// Comm statements of select cases never block by themselves — the
	// select blocks (handled as one op) — so skip them individually.
	commRanges := map[ast.Node]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // separate scope, scanned on its own
		case *ast.DeferStmt:
			// A deferred Unlock releases at return: the lock stays held
			// for the rest of the scan, so record nothing.
			return false
		case *ast.SelectStmt:
			hasDefault := false
			for _, c := range n.Body.List {
				cc := c.(*ast.CommClause)
				if cc.Comm == nil {
					hasDefault = true
				} else {
					commRanges[cc.Comm] = true
				}
			}
			if !hasDefault {
				events = append(events, lockEvent{pos: n.Pos(), kind: 0, what: "select without default"})
			}
		case *ast.SendStmt:
			if !commRanges[n] {
				events = append(events, lockEvent{pos: n.Pos(), kind: 0, what: "channel send"})
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && !insideComm(commRanges, n) {
				events = append(events, lockEvent{pos: n.Pos(), kind: 0, what: "channel receive"})
			}
		case *ast.RangeStmt:
			if isChanType(info.TypeOf(n.X)) {
				events = append(events, lockEvent{pos: n.X.Pos(), kind: 0, what: "range over channel"})
			}
		case *ast.CallExpr:
			obj, dir := mutexOp(info, n)
			if obj != nil {
				events = append(events, lockEvent{pos: n.Pos(), kind: dir, obj: obj})
			}
		}
		return true
	})
	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })
	held := map[types.Object]int{}
	heldSince := map[types.Object]token.Pos{}
	for _, ev := range events {
		switch ev.kind {
		case +1:
			if held[ev.obj] == 0 {
				heldSince[ev.obj] = ev.pos
			}
			held[ev.obj]++
		case -1:
			if held[ev.obj] > 0 {
				held[ev.obj]--
			}
		default:
			for obj, n := range held {
				if n > 0 {
					pass.Reportf(ev.pos,
						"%s while holding %s (locked at %s): unlock around blocking channel operations or they stall every contender",
						ev.what, obj.Name(), shortPos(pass.Fset, heldSince[obj]))
					break
				}
			}
		}
	}
}

// insideComm reports whether the receive expression is (part of) a select
// comm statement: `case v := <-ch:` wraps the UnaryExpr in an AssignStmt or
// ExprStmt that is the registered comm node.
func insideComm(comm map[ast.Node]bool, recv *ast.UnaryExpr) bool {
	for node := range comm {
		if node.Pos() <= recv.Pos() && recv.End() <= node.End() {
			return true
		}
	}
	return false
}

// mutexOp classifies a call as a mutex lock (+1) or unlock (-1) on the
// receiver's root object, or (nil, 0).
func mutexOp(info *types.Info, call *ast.CallExpr) (types.Object, int) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, 0
	}
	fn, _ := info.Uses[sel.Sel].(*types.Func)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return nil, 0
	}
	obj := rootSelectableObject(info, sel.X)
	if obj == nil {
		return nil, 0
	}
	switch fn.Name() {
	case "Lock", "RLock":
		return obj, +1
	case "Unlock", "RUnlock":
		return obj, -1
	}
	return nil, 0
}
