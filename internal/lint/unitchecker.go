package lint

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"runtime"
	"strings"
)

// This file implements the `go vet -vettool` side of the driver. cmd/go
// probes the tool with -V=full (for build caching), then invokes it once per
// package with a single argument: the path to a JSON .cfg file describing
// the compiled package — source files, the import→package-path map, the
// export-data file for every dependency, and each dependency's .vetx facts
// file. The tool type-checks from export data (no source reloading), decodes
// the dependencies' function-facts summaries, runs the analyzers with those
// facts (so hotpathfacts can follow call chains across the per-package
// compilation boundary), writes this package's own facts to the .vetx output
// file for its dependents, and reports findings on stderr with exit
// status 2.

// unitConfig mirrors the subset of cmd/go's vet config the driver consumes.
type unitConfig struct {
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// isBhssImportPath reports whether the unit belongs to this module — the
// only packages whose facts are worth computing. Test variants
// ("bhss/internal/core [bhss/internal/core.test]") share the prefix.
func isBhssImportPath(path string) bool {
	return path == "bhss" || strings.HasPrefix(path, "bhss/")
}

// PrintVersion answers the -V=full probe. cmd/go keys its action cache on
// this line, so it must change whenever the tool binary changes: the format
// is "<progname> version <anything> buildID=<hash of the executable>".
func PrintVersion(w io.Writer) {
	progname, err := os.Executable()
	if err != nil {
		fmt.Fprintf(w, "bhsslint version devel\n")
		return
	}
	f, err := os.Open(progname)
	if err != nil {
		fmt.Fprintf(w, "%s version devel\n", progname)
		return
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		fmt.Fprintf(w, "%s version devel\n", progname)
		return
	}
	fmt.Fprintf(w, "%s version devel buildID=%x\n", progname, h.Sum(nil))
}

// RunUnitchecker analyzes the single package described by cfgPath and
// returns the process exit code: 0 clean, 1 on internal failure, 2 on
// findings (the vet convention).
func RunUnitchecker(cfgPath string, analyzers []*Analyzer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bhsslint:", err)
		return 1
	}
	cfg := new(unitConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		fmt.Fprintf(os.Stderr, "bhsslint: parsing %s: %v\n", cfgPath, err)
		return 1
	}

	// Non-module packages carry no facts we care about, but the output file
	// must exist even when empty, or cmd/go's cache layer fails the build.
	// DecodeFacts treats the zero-byte file as "callee opaque".
	if !isBhssImportPath(cfg.ImportPath) {
		if cfg.VetxOutput != "" {
			if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
				fmt.Fprintln(os.Stderr, "bhsslint:", err)
				return 1
			}
		}
		if cfg.VetxOnly {
			return 0
		}
	}

	fset := token.NewFileSet()
	files := make([]*ast.File, 0, len(cfg.GoFiles))
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintln(os.Stderr, "bhsslint:", err)
			return 1
		}
		files = append(files, f)
	}

	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		path := importPath
		if mapped, ok := cfg.ImportMap[importPath]; ok {
			path = mapped // vendoring / module rewrites
		}
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return compilerImporter.Import(path)
	})

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	tconf := types.Config{
		Importer:  imp,
		Sizes:     types.SizesFor(cfg.Compiler, runtime.GOARCH),
		GoVersion: cfg.GoVersion,
	}
	tpkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, "bhsslint:", err)
		return 1
	}

	pkg := &Package{
		ImportPath: cfg.ImportPath,
		Dir:        cfg.Dir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}

	// Decode every dependency's facts; missing or empty files just leave
	// their functions opaque to the transitive walks.
	imported := map[string]FuncFacts{}
	for _, vetx := range cfg.PackageVetx {
		if data, err := os.ReadFile(vetx); err == nil {
			DecodeFacts(data, imported)
		}
	}

	// Export this unit's own function summaries for its dependents.
	if isBhssImportPath(cfg.ImportPath) && cfg.VetxOutput != "" {
		facts, err := ExportFacts(buildCallGraph([]*Package{pkg}, imported))
		if err != nil {
			fmt.Fprintln(os.Stderr, "bhsslint:", err)
			return 1
		}
		if err := os.WriteFile(cfg.VetxOutput, facts, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "bhsslint:", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		// The unit was scheduled only so dependents could read its facts.
		return 0
	}

	diags, err := RunAnalyzersWithFacts([]*Package{pkg}, analyzers, imported)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bhsslint:", err)
		return 1
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s (%s)\n", d.Pos, d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
