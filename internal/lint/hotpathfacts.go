package lint

import (
	"go/types"
	"strings"
)

// HotPathFacts closes the hotpathalloc blind spot: hotpathalloc checks only
// the bodies of functions annotated //bhss:hotpath, so an annotated entry
// point calling an unannotated helper that allocates passed clean. This
// analyzer propagates the hot-path contract transitively over the
// cross-package call graph — every statically-resolved call chain from an
// annotated entry point is walked through unannotated callees, and the
// first reachable direct allocation is reported at the entry's call site
// with the full chain in the diagnostic.
//
// Rules:
//
//   - An annotated function calling (transitively, through unannotated
//     same-module functions) a function with a direct allocation is flagged
//     at the outgoing call site. Annotated callees stop the walk: their own
//     bodies are hotpathalloc's business and their own outgoing edges are
//     walked from their own declaration sites.
//   - An *unexported*, never-address-taken annotated function whose body is
//     already reachable from another annotated function through unannotated
//     nodes is flagged as redundant: the transitive walk protects it, so
//     the annotation is noise to keep in sync. Exported functions are never
//     flagged — their annotation documents the API contract to external
//     callers.
//
// Functions outside the analyzed program (standard library, packages not in
// the load) are opaque unless dependency facts were imported through the
// vet facts protocol (see facts.go). Calls into internal/obs are exempt by
// the same contract hotpathalloc applies to the obs-defer idiom: the
// recording API is alloc-free and covered by its own AllocsPerRun tests.
var HotPathFacts = &Analyzer{
	Name:       "hotpathfacts",
	Doc:        "propagates //bhss:hotpath transitively: flags call chains from annotated entries into allocating helpers, and redundant annotations",
	RunProgram: runHotPathFacts,
}

// allocChain is the memoized result of searching a function's transitive
// callees for a direct allocation: the chain of symbols leading to it and a
// description of the first allocation site found.
type allocChain struct {
	links []string
	site  string
}

type hotpathProp struct {
	pass *ProgramPass
	g    *CallGraph
	// memo caches the allocation search per function; the in-progress
	// sentinel (nil value present) breaks recursion cycles.
	memo    map[*types.Func]*allocChain
	impMemo map[string]*allocChain
}

func runHotPathFacts(pass *ProgramPass) error {
	p := &hotpathProp{
		pass:    pass,
		g:       pass.Graph,
		memo:    map[*types.Func]*allocChain{},
		impMemo: map[string]*allocChain{},
	}
	anchored := map[*types.Func]bool{}
	for fn, fi := range p.g.Funcs {
		if !fi.Hotpath || fi.Test {
			continue
		}
		reported := map[*types.Func]bool{}
		for _, edge := range fi.Calls {
			if reported[edge.Callee] || edge.Callee == fn {
				continue
			}
			if chain := p.search(edge.Callee); chain != nil {
				reported[edge.Callee] = true
				anchored[fn] = true
				p.pass.Reportf(edge.Pos,
					"hot path escapes into allocating call: %s → %s (%s); fix or annotate the chain //bhss:hotpath, or hoist the allocation",
					shortSym(fn), strings.Join(chain.links, " → "), chain.site)
			}
		}
	}
	p.reportRedundant(anchored)
	return nil
}

// search looks for a direct allocation reachable from fn through
// unannotated functions, fn itself included. Annotated callees terminate
// the walk (their contract is enforced at their own declaration); functions
// outside both the graph and the imported facts are opaque.
func (p *hotpathProp) search(fn *types.Func) *allocChain {
	if isObsFunc(fn) {
		return nil
	}
	if c, ok := p.memo[fn]; ok {
		return c // includes the in-progress nil sentinel for cycles
	}
	fi, ok := p.g.Funcs[fn]
	if !ok {
		return p.searchImported(fn.FullName())
	}
	if fi.Hotpath {
		return nil // contract enforced at its own declaration
	}
	p.memo[fn] = nil
	var result *allocChain
	if len(fi.Allocs) > 0 {
		a := fi.Allocs[0]
		result = &allocChain{
			links: []string{shortSym(fn)},
			site:  a.What + " at " + shortPos(p.g.Fset, a.Pos),
		}
	} else {
		for _, edge := range fi.Calls {
			if sub := p.search(edge.Callee); sub != nil {
				result = &allocChain{
					links: append([]string{shortSym(fn)}, sub.links...),
					site:  sub.site,
				}
				break
			}
		}
	}
	p.memo[fn] = result
	return result
}

// searchImported is search over the facts imported from dependency .vetx
// files, where callees are symbols rather than objects.
func (p *hotpathProp) searchImported(sym string) *allocChain {
	if c, ok := p.impMemo[sym]; ok {
		return c
	}
	f, ok := p.g.Imported[sym]
	if !ok || f.Hotpath {
		p.impMemo[sym] = nil
		return nil
	}
	p.impMemo[sym] = nil
	var result *allocChain
	if len(f.Allocs) > 0 {
		result = &allocChain{links: []string{shortImported(sym)}, site: f.Allocs[0]}
	} else {
		for _, callee := range f.Calls {
			if sub := p.searchImported(callee); sub != nil {
				result = &allocChain{
					links: append([]string{shortImported(sym)}, sub.links...),
					site:  sub.site,
				}
				break
			}
		}
	}
	p.impMemo[sym] = result
	return result
}

// reportRedundant flags unexported annotated functions whose bodies the
// transitive walk already covers from another annotated entry. Annotations
// that anchor chain findings (or their //bhss:allow suppressions) are
// load-bearing — deleting them would scatter the same diagnostics across
// every caller — so anchored entries are never called redundant.
func (p *hotpathProp) reportRedundant(anchored map[*types.Func]bool) {
	// covered = every callee reachable from an annotated function through
	// unannotated intermediate nodes. Reaching an annotated function marks
	// it covered but does not descend into it: its own edges are walked
	// from its own declaration.
	covered := map[*types.Func]bool{}
	visited := map[*types.Func]bool{}
	var walk func(fi *FuncInfo)
	walk = func(fi *FuncInfo) {
		for _, edge := range fi.Calls {
			callee := edge.Callee
			ci, inGraph := p.g.Funcs[callee]
			if !inGraph {
				continue
			}
			if !covered[callee] {
				covered[callee] = true
			}
			if ci.Hotpath || visited[callee] {
				continue
			}
			visited[callee] = true
			walk(ci)
		}
	}
	for _, fi := range p.g.Funcs {
		if fi.Hotpath && !fi.Test {
			walk(fi)
		}
	}
	for fn, fi := range p.g.Funcs {
		if !fi.Hotpath || fi.Test || fn.Exported() || p.g.AddrTaken[fn] || anchored[fn] {
			continue
		}
		if covered[fn] {
			p.pass.Reportf(fi.Decl.Pos(),
				"redundant //bhss:hotpath on %s: already reachable from an annotated entry point, so the transitive walk enforces it; drop the annotation",
				shortSym(fn))
		}
	}
}

// shortSym renders a function symbol without the module-path noise:
// "core.(*Receiver).DecodeBurst" instead of the FullName.
func shortSym(fn *types.Func) string {
	return shortImported(fn.FullName())
}

func shortImported(sym string) string {
	// FullName forms: "pkg/path.Func" and "(pkg/path.Recv).Method".
	trim := func(s string) string {
		if i := strings.LastIndex(s, "/"); i >= 0 {
			return s[i+1:]
		}
		return s
	}
	if strings.HasPrefix(sym, "(") {
		if i := strings.Index(sym, ")"); i > 0 {
			return "(" + trim(sym[1:i]) + sym[i:]
		}
	}
	return trim(sym)
}

// isObsFunc reports whether fn belongs to the internal/obs recording API.
func isObsFunc(fn *types.Func) bool {
	return fn.Pkg() != nil && strings.HasSuffix(fn.Pkg().Path(), obsPkgSuffix)
}
