package lint

import (
	"encoding/json"
	"go/types"
	"sort"
)

// The facts protocol: when bhsslint runs as a `go vet -vettool`, each
// package is analyzed in isolation, so cross-package analyzers cannot see
// dependency bodies. Instead every bhss package run exports a summary of
// its functions — hot-path directive, direct-allocation sites, static call
// edges — into its .vetx output file, and dependent packages import those
// summaries through cmd/go's PackageVetx map. hotpathfacts then walks
// chains across package boundaries symbolically: a callee that is not in
// the local graph is looked up by its FullName in the imported facts.
//
// Standalone mode does not need any of this (the whole program is loaded at
// once), but uses the same FuncFacts shape internally so the propagation
// logic is written once.

// FuncFacts is the serialized per-function summary.
type FuncFacts struct {
	// Sym is the function's stable symbol: types.Func.FullName, e.g.
	// "bhss/internal/core.(*Receiver).DecodeBurst".
	Sym string `json:"sym"`
	// Hotpath records the //bhss:hotpath directive.
	Hotpath bool `json:"hotpath,omitempty"`
	// Allocs holds one human-readable entry per direct-allocation site,
	// "what at file.go:line".
	Allocs []string `json:"allocs,omitempty"`
	// Calls holds the symbols of statically-resolved callees.
	Calls []string `json:"calls,omitempty"`
}

// factsFile is the .vetx payload.
type factsFile struct {
	Version int         `json:"version"`
	Funcs   []FuncFacts `json:"funcs"`
}

const factsVersion = 1

// ExportFacts serializes the graph's per-function summaries for the .vetx
// file of the package(s) it covers.
func ExportFacts(g *CallGraph) ([]byte, error) {
	ff := factsFile{Version: factsVersion}
	for obj, fi := range g.Funcs {
		if fi.Test {
			continue // test functions are not part of any dependent's API
		}
		f := FuncFacts{Sym: obj.FullName(), Hotpath: fi.Hotpath}
		for _, a := range fi.Allocs {
			// shortPos, not the full position: these strings end up inside
			// dependents' diagnostic messages, which the baseline matches on.
			f.Allocs = append(f.Allocs, a.What+" at "+shortPos(g.Fset, a.Pos))
		}
		for _, c := range fi.Calls {
			f.Calls = append(f.Calls, c.Callee.FullName())
		}
		ff.Funcs = append(ff.Funcs, f)
	}
	sort.Slice(ff.Funcs, func(i, j int) bool { return ff.Funcs[i].Sym < ff.Funcs[j].Sym })
	return json.Marshal(ff)
}

// DecodeFacts parses one dependency's .vetx payload into dst. Unknown or
// empty payloads (including the zero-byte files written for non-bhss
// packages) decode to nothing, not an error: facts are an acceleration, and
// a missing summary just makes the callee opaque.
func DecodeFacts(data []byte, dst map[string]FuncFacts) {
	if len(data) == 0 {
		return
	}
	var ff factsFile
	if err := json.Unmarshal(data, &ff); err != nil || ff.Version != factsVersion {
		return
	}
	for _, f := range ff.Funcs {
		dst[f.Sym] = f
	}
}

// lookupImported returns the imported facts for a callee that is not part
// of the local graph.
func (g *CallGraph) lookupImported(fn *types.Func) (FuncFacts, bool) {
	f, ok := g.Imported[fn.FullName()]
	return f, ok
}
