package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
)

// FloatEq flags == and != between floating-point or complex operands.
// Exact float comparison is almost always a latent bug in DSP code — two
// mathematically equal pipelines differ in the last ulp — so equality tests
// belong in epsilon helpers.
//
// Deliberately not flagged:
//
//   - comparisons where either side is a compile-time constant (x == 0,
//     rotation != 1): sentinel and exact-zero checks are well-defined;
//   - the x != x NaN idiom;
//   - comparisons inside functions whose names mark them as approximate
//     comparison helpers (approx/eps/epsilon/close/near/within).
var FloatEq = &Analyzer{
	Name: "floateq",
	Doc:  "flags ==/!= on float64/complex128 outside approved epsilon helpers",
	Run:  runFloatEq,
}

var epsilonHelperRE = regexp.MustCompile(`(?i)(approx|eps|epsilon|close|near|within)`)

func runFloatEq(pass *Pass) error {
	eachFuncDecl(pass.SrcFiles(), func(fn *ast.FuncDecl) {
		if epsilonHelperRE.MatchString(fn.Name.Name) {
			return
		}
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if !isFloatOrComplex(pass.Info.TypeOf(be.X)) || !isFloatOrComplex(pass.Info.TypeOf(be.Y)) {
				return true
			}
			// Constant on either side: exact sentinel comparison is fine.
			if isConstExpr(pass.Info, be.X) || isConstExpr(pass.Info, be.Y) {
				return true
			}
			// x != x is the NaN test.
			if exprString(pass.Fset, ast.Unparen(be.X)) == exprString(pass.Fset, ast.Unparen(be.Y)) {
				return true
			}
			pass.Reportf(be.Pos(), "floating-point %s comparison; use an epsilon helper (math.Abs(a-b) <= tol)", be.Op)
			return true
		})
	})
	return nil
}

func isFloatOrComplex(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}

func isConstExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Value != nil
}
