// Package flagged exercises the detrand rules: forbidden PRNG imports,
// wall-clock reads in simulation code, and order-sensitive accumulation
// while ranging over a map.
package flagged

import (
	"math/rand"           // want "import of math/rand is forbidden"
	randv2 "math/rand/v2" // want "import of math/rand/v2 is forbidden"
	"time"
)

func seedFromClock() int64 {
	return time.Now().UnixNano() // want "time.Now"
}

func drift() float64 {
	return rand.Float64() + randv2.Float64()
}

func sumGains(gains map[int]float64) float64 {
	total := 0.0
	for _, g := range gains {
		total += g // want "accumulating into total"
	}
	return total
}

var _ = seedFromClock
var _ = drift
var _ = sumGains
