// Package clean shows the deterministic idioms detrand requires: collect
// map keys, sort, then accumulate; order-insensitive counting is fine.
package clean

import "sort"

func sumGains(gains map[int]float64) float64 {
	ids := make([]int, 0, len(gains))
	for id := range gains {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	total := 0.0
	for _, id := range ids {
		total += gains[id]
	}
	return total
}

func countKeys(gains map[int]float64) int {
	n := 0
	for range gains {
		n++ // counting is order-insensitive; only compound float accumulation is flagged
	}
	return n
}

var _ = sumGains
var _ = countKeys
