// Package flagged exercises the hotpathfacts transitive walk: the annotated
// entry points below allocate only through unannotated helpers — one of
// them across a package boundary — so hotpathalloc alone would pass all of
// them.
package flagged

import "bhss/internal/lint/testdata/src/hotpathfacts/flagged/sub"

var sink []float64

// Entry is the hot path; helper hides the allocation one level down,
// inside another package.
//
//bhss:hotpath
func Entry(dst []complex128) {
	helper(dst) // want "hot path escapes into allocating call"
}

func helper(dst []complex128) {
	sink = sub.Fill(dst)
}

// Outer covers inner, making inner's own annotation redundant.
//
//bhss:hotpath
func Outer(dst []complex128) {
	inner(dst)
}

// inner is reachable from Outer through no unannotated intermediary, so
// the transitive walk already enforces it.
//
//bhss:hotpath
func inner(dst []complex128) { // want "redundant //bhss:hotpath"
	for i := range dst {
		dst[i] = 0
	}
}
