// Package sub is the cross-package tail of the flagged chain.
package sub

// Fill allocates; it is not annotated, so only the transitive walk from
// flagged.Entry sees it run on the hot path.
func Fill(dst []complex128) []float64 {
	out := make([]float64, len(dst))
	for i, v := range dst {
		out[i] = real(v)
	}
	return out
}
