// Package clean holds the hotpathfacts idioms that must stay silent:
// alloc-free helper chains, annotated callees as chain boundaries, and
// suppressed memoized construction.
package clean

var total float64

// Entry's whole transitive closure is alloc-free.
//
//bhss:hotpath
func Entry(dst []complex128) {
	accumulate(dst)
}

func accumulate(dst []complex128) {
	for _, v := range dst {
		total += real(v)
	}
}

// Boundary calls an annotated helper: the walk stops there — the helper's
// body is hotpathalloc's business at its own declaration, and its edges are
// walked from there.
//
//bhss:hotpath
func Boundary(dst []complex128) {
	Scale(dst, 2)
}

// Scale is its own hot-path contract (and exported, so never redundant).
//
//bhss:hotpath
func Scale(dst []complex128, g float64) {
	for i := range dst {
		dst[i] *= complex(g, 0)
	}
}

var cache map[int][]float64

// Memoized allocates only on cache miss; the suppression documents it.
//
//bhss:hotpath
func Memoized(k int) []float64 {
	if s, ok := cache[k]; ok {
		return s
	}
	//bhss:allow(hotpathfacts) memoized: the build runs once per k, then every hop hits the cache
	return build(k)
}

func build(k int) []float64 {
	s := make([]float64, k)
	cache[k] = s
	return s
}
