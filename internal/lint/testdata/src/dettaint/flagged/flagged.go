// Package flagged routes nondeterminism into every dettaint sink: a hop
// seed, complex128 sample buffers (element write and append), and a
// receiver-diagnostics field.
package flagged

import (
	"time"

	"bhss/internal/lint/testdata/src/dettaint/flagged/hop"
)

// SeedFromClock derives the hop seed from the wall clock: two runs of the
// same scenario would hop differently.
func SeedFromClock() *hop.Schedule {
	seed := time.Now().UnixNano()
	return hop.Seed(seed) // want "flows into hop decision Seed"
}

// Jitter writes a clock-derived value into the IQ stream.
func Jitter(buf []complex128) {
	t := time.Now()
	jitter := float64(t.Nanosecond())
	buf[0] = complex(jitter, 0) // want "flows into a complex128 sample buffer"
}

// Mix accumulates map values into samples in iteration order.
func Mix(gains map[int]float64, buf []complex128) {
	i := 0
	for _, g := range gains {
		buf[i] = complex(g, 0) // want "map iteration order flows into"
		i++
	}
}

// RxStats mirrors the receiver-diagnostics type the determinism suite
// compares across runs; dettaint matches it by name.
type RxStats struct {
	DecodeTime float64
}

// Report stores a measured duration in a diffed diagnostic field.
func Report(stats *RxStats, start time.Time) {
	stats.DecodeTime = time.Since(start).Seconds() // want "RxStats diagnostic field"
}

// Extend appends a clock-skewed sample.
func Extend(buf []complex128) []complex128 {
	skew := float64(time.Now().Unix())
	return append(buf, complex(skew, 0)) // want "via append"
}
