// Package hop stands in for the real hop package: dettaint matches it by
// import-path suffix, so arguments to these functions are hop-decision sinks.
package hop

// Schedule is a stub hop schedule.
type Schedule struct {
	seed int64
}

// Seed builds a schedule from an explicit seed.
func Seed(seed int64) *Schedule {
	return &Schedule{seed: seed}
}
