// Package clean shows the sanctioned shapes: map iteration laundered
// through sorting, timings kept out of the diffed sinks, and an intentional
// flow suppressed with a reason.
package clean

import (
	"sort"
	"time"
)

// MixSorted is the codebase's own idiom: collect the keys, sort them, then
// index the map deterministically. sort.Ints sanitizes keys.
func MixSorted(gains map[int]float64, buf []complex128) {
	keys := make([]int, 0, len(gains))
	for k := range gains {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for i, k := range keys {
		buf[i] = complex(gains[k], 0)
	}
}

// meter is not RxStats/HopReport: timing ordinary telemetry is fine.
type meter struct {
	elapsed float64
}

// Time stores a duration somewhere the determinism suite never diffs.
func Time(m *meter, start time.Time) {
	m.elapsed = time.Since(start).Seconds()
}

// RxStats mirrors the diagnostics type so the suppression below has a
// genuine finding to suppress.
type RxStats struct {
	CapturedAt int64
}

// Stamp records when the capture happened — explicitly excluded from the
// determinism diff, so the flow is suppressed with that reason.
func Stamp(s *RxStats) {
	//bhss:allow(dettaint) capture timestamp is excluded from the determinism diff; it labels the run rather than feeding it
	s.CapturedAt = time.Now().Unix()
}
