// Package flagged exercises every hotpathalloc rule: each line below
// allocates in a way the zero-alloc hot-path contract forbids.
package flagged

import "bhss/internal/obs"

var sink []complex128

type point struct{ x, y float64 }

// process is the hot path under test.
//
//bhss:hotpath
func process(dst, src []complex128) []complex128 {
	buf := make([]complex128, len(src)) // want "make allocates"
	_ = buf
	p := new(int) // want "new allocates"
	_ = p
	s := []float64{1, 2} // want "slice literal allocates"
	_ = s
	m := map[int]int{} // want "map literal allocates"
	_ = m
	q := &point{1, 2} // want "&composite literal allocates"
	_ = q
	f := func() {} // want "func literal allocates"
	f()
	go helper()    // want "go statement allocates"
	defer helper() // want "defer in hot path"
	var local []complex128
	sink = append(local, src...) // want "append may grow"
	copy(dst, src)
	return dst
}

// format exercises the string rules.
//
//bhss:hotpath
func format(a, b string) int {
	c := a + b       // want "string concatenation allocates"
	bs := []byte(a)  // want "conversion allocates"
	s2 := string(bs) // want "conversion allocates"
	return len(c) + len(s2)
}

// timedLoop defers an obs recording call inside a loop: the exemption for
// open-coded obs defers does not apply because the compiler heap-allocates
// one defer record per iteration.
//
//bhss:hotpath
func timedLoop(h *obs.Histogram, n int) {
	for i := 0; i < n; i++ {
		defer h.ObserveSince(obs.Start()) // want "deferred obs call inside a loop"
	}
}

var _ = timedLoop

func helper() {}
