// Package clean shows hot-path code that satisfies the zero-alloc contract:
// self-assigned appends, dst-parameter appends, deferred obs recording and
// unannotated functions are all silent.
package clean

import "bhss/internal/obs"

//bhss:hotpath
func accumulate(dst []complex128, src []complex128) []complex128 {
	for _, v := range src {
		dst = append(dst, v) // self-assignment: amortized growth is vetted
	}
	return dst
}

//bhss:hotpath
func appendTo(dst []float64, v float64) []float64 {
	return append(dst[:0], v) // dst is a parameter: the caller amortizes growth
}

type buffer struct {
	scratch []complex128
}

//bhss:hotpath
func (b *buffer) fill(n int) {
	b.scratch = append(b.scratch, complex(float64(n), 0))
}

func notHot() []int {
	return make([]int, 4) // no //bhss:hotpath directive: unconstrained
}

// timed uses the sanctioned instrumentation idiom: a defer of an obs
// recording call outside any loop is open-coded and alloc-free by contract.
//
//bhss:hotpath
func timed(h *obs.Histogram, met *obs.Pipeline) {
	defer h.ObserveSince(obs.Start())
	if met != nil {
		defer met.RecordStage(obs.StageRxEstimate, obs.Start())
	}
}

var _ = accumulate
var _ = appendTo
var _ = (*buffer).fill
var _ = notHot
var _ = timed
