// Package cases exercises the //bhss:allow directive edge cases: one
// directive naming two analyzers on the flagged line, a directive on the
// line above, a reasonless directive (suppresses, but is itself reported),
// and a directive naming the wrong analyzer (suppresses nothing relevant).
package cases

import "time"

// SameLine trips floateq and detrand on one line; a single directive naming
// both silences both.
func SameLine(x float64) bool {
	return float64(time.Now().Second()) == x //bhss:allow(floateq,detrand) fixture: exercising same-line multi-analyzer suppression
}

// LineAbove is suppressed from the line directly above the finding.
func LineAbove(y float64) bool {
	//bhss:allow(floateq) fixture: exercising allow-on-the-line-above
	return y == 1.5
}

// MissingReason still suppresses floateq, but the bare directive is itself
// reported: a silenced finding with no why does not survive review.
func MissingReason(z float64) bool {
	return z == 2.5 //bhss:allow(floateq) // want "without a reason"
}

// WrongAnalyzer names only floateq, so the detrand finding on the same line
// still fires.
func WrongAnalyzer() int {
	t := time.Now() //bhss:allow(floateq) fixture: directive names an analyzer with no finding here // want "deterministic replay"
	return t.Second()
}
