// Package flagged breaks each channel contract: close on the receive side,
// send after close, and blocking channel ops under a held mutex.
package flagged

import "sync"

type hub struct {
	out chan int
}

func (h *hub) send(v int) {
	h.out <- v
}

// shutdown closes a channel that send (another function) feeds: an
// in-flight send would panic.
func (h *hub) shutdown() {
	close(h.out) // want "close channels from the sending side"
}

// SendAfterClose orders the two fatally within one block.
func SendAfterClose(ch chan int) {
	close(ch)
	ch <- 1 // want "after it was closed"
}

type guarded struct {
	mu sync.Mutex
	ch chan int
}

func (g *guarded) Blocked() {
	g.mu.Lock()
	g.ch <- 1 // want "channel send while holding mu"
	g.mu.Unlock()
}

func (g *guarded) DeferBlocked() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return <-g.ch // want "channel receive while holding mu"
}

func (g *guarded) SelectBlocked() {
	g.mu.Lock()
	defer g.mu.Unlock()
	select { // want "select without default while holding mu"
	case v := <-g.ch:
		_ = v
	case g.ch <- 2:
	}
}
