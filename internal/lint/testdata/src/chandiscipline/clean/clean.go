// Package clean holds the sanctioned channel shapes: producer-side close,
// never-sent signal channels, non-blocking sends under a lock, and
// unlocking before blocking.
package clean

import "sync"

// Produce sends and closes from the same function: the canonical
// close-by-sender shape.
func Produce(n int) chan int {
	ch := make(chan int, n)
	go func() {
		defer close(ch)
		for i := 0; i < n; i++ {
			ch <- i
		}
	}()
	return ch
}

type server struct {
	mu      sync.Mutex
	quit    chan struct{}
	out     chan int
	pending int
}

// Close closes a pure signal channel: nobody sends on quit, so there is no
// sender to race.
func (s *server) Close() {
	close(s.quit)
}

// TryNotify sends under the lock, but non-blockingly: select-with-default
// cannot stall a contender.
func (s *server) TryNotify(v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case s.out <- v:
	default:
	}
}

// Handoff unlocks before the blocking send.
func (s *server) Handoff() {
	s.mu.Lock()
	v := s.pending
	s.pending = 0
	s.mu.Unlock()
	s.out <- v
}
