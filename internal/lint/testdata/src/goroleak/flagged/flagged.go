// Package flagged spawns goroutines whose loops have no shutdown edge:
// nothing the rest of the program can do makes them return.
package flagged

type worker struct {
	jobs chan int
	tick chan struct{}
}

var n int

func step() { n++ }

// Spin busy-loops with no exit of any kind.
func Spin() {
	go func() {
		for { // want "loops forever with no shutdown edge"
			step()
		}
	}()
}

// RangeLeak ranges over a channel nobody ever closes.
func RangeLeak(w *worker) {
	go func() {
		for range w.jobs { // want "loops forever with no shutdown edge"
			step()
		}
	}()
}

// DeepLeak hides the loop one call level below the go statement.
func DeepLeak(w *worker) {
	go w.run()
}

func (w *worker) run() {
	w.pump()
}

func (w *worker) pump() {
	for { // want "loops forever with no shutdown edge"
		<-w.tick // never closed, and w has no Close/Shutdown/Stop
		step()
	}
}
