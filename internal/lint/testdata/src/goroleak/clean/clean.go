// Package clean holds every sanctioned goroutine-shutdown shape: quit
// channels the program closes, channels closed by their producer (directly
// or through a parameter), closeable resources, ctx.Done, and local
// CAS-style retry loops that are not goroleak's business.
package clean

import "context"

type server struct {
	quit chan struct{}
	jobs chan int
}

func (s *server) Close() { close(s.quit) }

// Start's worker selects on the quit channel Close closes.
func (s *server) Start() {
	go func() {
		for {
			select {
			case <-s.quit:
				return
			case j := <-s.jobs:
				consume(j)
			}
		}
	}()
}

var total int

func consume(j int) { total += j }

// Pipeline closes the channel it feeds; the consumer's range ends with it,
// even though the consumer sees it only as a parameter.
func Pipeline() {
	jobs := make(chan int)
	go drain(jobs)
	for i := 0; i < 8; i++ {
		jobs <- i
	}
	close(jobs)
}

func drain(jobs chan int) {
	for j := range jobs {
		consume(j)
	}
}

type conn struct{}

func (c *conn) Read(p []byte) (int, error) { return 0, nil }
func (c *conn) Close() error               { return nil }

// Reader blocks on a closeable resource: closing the conn is the
// documented way to unblock and stop it.
func Reader(c *conn) {
	go func() {
		buf := make([]byte, 64)
		for {
			if _, err := c.Read(buf); err != nil {
				return
			}
		}
	}()
}

// Watcher exits through ctx.Done.
func Watcher(ctx context.Context, events chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case e := <-events:
				consume(e)
			}
		}
	}()
}

// Retry is a CAS-shaped local loop: no channel ops, bounded by local state.
func Retry(try func() bool) {
	go func() {
		for {
			if try() {
				break
			}
		}
	}()
}
