// Package clean uses atomics consistently: typed atomics (immune by
// construction), all-atomic legacy fields, and unrelated plain variables.
package clean

import "sync/atomic"

type counter struct {
	typed atomic.Int64
	n     int64
	plain int64
}

func (c *counter) IncTyped() {
	c.typed.Add(1)
}

func (c *counter) ReadTyped() int64 {
	return c.typed.Load()
}

func (c *counter) IncLegacy() {
	atomic.AddInt64(&c.n, 1)
}

func (c *counter) ReadLegacy() int64 {
	return atomic.LoadInt64(&c.n)
}

// plain is never touched by sync/atomic, so plain access is fine.
func (c *counter) Bump() {
	c.plain++
}
