// Package flagged mixes sync/atomic and plain access to the same memory:
// each plain access races against the atomic ones.
package flagged

import "sync/atomic"

type counter struct {
	n int64
}

func (c *counter) Inc() {
	atomic.AddInt64(&c.n, 1)
}

func (c *counter) Read() int64 {
	return c.n // want "accessed atomically"
}

func (c *counter) Reset() {
	c.n = 0 // want "accessed atomically"
}

var hits int64

func Touch() {
	atomic.AddInt64(&hits, 1)
}

func Racy() int64 {
	return hits // want "accessed atomically"
}

// Mixed reads the variable plainly inside the value argument of the very
// call that stores it atomically.
func Mixed() {
	atomic.StoreInt64(&hits, hits+1) // want "accessed atomically"
}
