// Package flagged exercises floateq: exact ==/!= between non-constant
// floating-point or complex operands.
package flagged

func sameGain(a, b float64) bool {
	return a == b // want "floating-point == comparison"
}

func changed(prev, cur complex128) bool {
	return prev != cur // want "floating-point != comparison"
}

var _ = sameGain
var _ = changed
