// Package clean shows the float comparisons floateq deliberately permits:
// constant sentinels, the NaN idiom, and named epsilon helpers.
package clean

import "math"

func approxEqual(a, b float64) bool {
	return a == b // inside a named epsilon helper: exempt
}

func isNaN(x float64) bool {
	return x != x // the NaN idiom
}

func isZero(x float64) bool {
	return x == 0 // constant operand: exact sentinel comparison
}

func withinTol(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

var _ = approxEqual
var _ = isNaN
var _ = isZero
var _ = withinTol
