// Package clean holds the loop shapes simdloop must stay silent on: kernels
// outside hotpaths, loop-carried recurrences, multi-statement bodies,
// strided state machines, non-kernel element types, constant fills, and an
// explicitly allowed scalar loop.
package clean

// sumUnmarked is the SumFloats shape without the hotpath directive: cold
// code may loop however it likes.
func sumUnmarked(x []float64) float64 {
	var total float64
	for _, v := range x {
		total += v
	}
	return total
}

// track is a loop-carried recurrence (the Costas shape): the rotation each
// iteration depends on the previous one, so no data-parallel kernel exists.
//
//bhss:hotpath
func track(x []complex128, freq float64) {
	phase := 0.0
	for i := range x {
		x[i] *= complex(1, -phase)
		phase += freq
	}
}

// interleave writes through a computed stride with loop-local state — a
// multi-statement body, never a kernel.
//
//bhss:hotpath
func interleave(dst, src []complex128, stride int) {
	for i := range src {
		j := (i * stride) % len(dst)
		dst[j] = src[i]
	}
}

// packBits loops over bytes: not a kernel element type.
//
//bhss:hotpath
func packBits(dst []byte, bits []byte) {
	for i := range dst {
		dst[i] |= bits[i]
	}
}

// zeroFill assigns a constant: no element is read, so there is nothing to
// vectorize against another operand.
//
//bhss:hotpath
func zeroFill(x []complex128) {
	for i := range x {
		x[i] = 0
	}
}

// lastChip keeps only the final element the loop sees — the accumulator is
// overwritten, not reduced.
//
//bhss:hotpath
func lastChip(x []complex128) complex128 {
	var last complex128
	for _, v := range x {
		last = v
	}
	return last
}

// edgeTaps reads a loop-produced slice: the base is loop-local, so it is not
// the kernel shape.
//
//bhss:hotpath
func edgeTaps(blocks [][]float64) float64 {
	var total float64
	for _, blk := range blocks {
		total += blk[0]
	}
	return total
}

// floatScale scales a float slice: the simd layer has no []float64
// element-wise kernel (ScaleReal is complex), so there is nothing to call.
//
//bhss:hotpath
func floatScale(x []float64, g float64) {
	for i := range x {
		x[i] *= g
	}
}

// tapEnergy is Σv² — a float-only product reduction with no kernel
// (SumFloats is a plain sum, CorrReal reads complex).
//
//bhss:hotpath
func tapEnergy(g []float64) float64 {
	var energy float64
	for _, v := range g {
		energy += v * v
	}
	return energy
}

// deliberateScalar documents a sanctioned exception in place.
//
//bhss:hotpath
func deliberateScalar(x []complex128, g complex128) {
	for i := range x {
		//bhss:allow(simdloop) three-element edge case, shorter than the dispatch overhead
		x[i] *= g
	}
}

var (
	_ = sumUnmarked
	_ = track
	_ = interleave
	_ = packBits
	_ = zeroFill
	_ = lastChip
	_ = edgeTaps
	_ = floatScale
	_ = tapEnergy
	_ = deliberateScalar
)
