// Package flagged exercises the simdloop rules: hotpath loops whose single
// statement re-implements an element-wise or reduction kernel the
// internal/dsp/simd layer dispatches.
package flagged

import "math/cmplx"

// scale hand-rolls simd.ScaleReal.
//
//bhss:hotpath
func scale(x []complex128, g float64) {
	for i := range x {
		x[i] *= complex(g, 0) // want "element-wise simd kernel"
	}
}

// cmul hand-rolls simd.CMulTo with a classic indexed for loop.
//
//bhss:hotpath
func cmul(dst, src []complex128) {
	for i := 0; i < len(dst); i++ {
		dst[i] *= src[i] // want "element-wise simd kernel"
	}
}

// window hand-rolls simd.WindowInto (plain-assign form).
//
//bhss:hotpath
func window(dst, x []complex128, w []float64) {
	for i := range dst {
		dst[i] = x[i] * complex(w[i], 0) // want "element-wise simd kernel"
	}
}

// mag2 hand-rolls simd.Mag2Accum.
//
//bhss:hotpath
func mag2(dst []float64, x []complex128) {
	for i := range dst {
		dst[i] += real(x[i])*real(x[i]) + imag(x[i])*imag(x[i]) // want "element-wise simd kernel"
	}
}

// sum hand-rolls simd.SumFloats through the range value variable.
//
//bhss:hotpath
func sum(x []float64) float64 {
	var total float64
	for _, v := range x {
		total += v // want "simd reduction into total"
	}
	return total
}

// dot hand-rolls simd.DotConj.
//
//bhss:hotpath
func dot(a, b []complex128) complex128 {
	var acc complex128
	for i := range a {
		acc += a[i] * cmplx.Conj(b[i]) // want "simd reduction into acc"
	}
	return acc
}

// corr hand-rolls simd.CorrReal into an accumulator that lives one loop
// level out — the despreader shape before it was converted to the kernel.
//
//bhss:hotpath
func corr(a, b []complex128, chips int) float64 {
	var worst float64
	for s := 0; s+chips <= len(a); s += chips {
		metric := 0.0
		for i := s; i < s+chips; i++ {
			metric += real(a[i])*real(b[i]) + imag(a[i])*imag(b[i]) // want "simd reduction into metric"
		}
		if metric < worst {
			worst = metric
		}
	}
	return worst
}

var (
	_ = scale
	_ = cmul
	_ = window
	_ = mag2
	_ = sum
	_ = dot
	_ = corr
)
