// Package clean shows the scratch-buffer uses scratchalias permits:
// //bhss:scratchview returns, call-local aliases, scratch-to-scratch
// stores, and passing scratch to callees.
package clean

type worker struct {
	//bhss:scratch
	buf []complex128
}

// view returns the current block; the result is valid until the next call.
//
//bhss:scratchview
func (w *worker) view(n int) []complex128 {
	return w.buf[:n]
}

func (w *worker) process(src []complex128) float64 {
	local := w.buf[:len(src)] // alias that never leaves the call
	copy(local, src)
	sum := 0.0
	for _, v := range local {
		sum += real(v)
	}
	return sum
}

func (w *worker) grow(n int) {
	if cap(w.buf) < n {
		w.buf = make([]complex128, n) // storing into the scratch field itself
	}
}

func consume(x []complex128) float64 { return real(x[0]) }

func (w *worker) callWith() float64 {
	return consume(w.buf) // a call completes before the next overwrite
}
