// Package flagged exercises scratchalias: every way a //bhss:scratch view
// can escape the call that produced it.
package flagged

type worker struct {
	//bhss:scratch
	buf []complex128
	out []complex128
}

var global []complex128

func (w *worker) snapshot() []complex128 {
	return w.buf // want "returning a view"
}

func (w *worker) leakGlobal() {
	global = w.buf[:4] // want "storing a view"
}

func (w *worker) leakField() {
	w.out = w.buf // want "storing a view"
}

func (w *worker) pack() [][]complex128 {
	views := [][]complex128{w.buf} // want "captured in a composite literal"
	return views
}

func (w *worker) send(ch chan []complex128) {
	ch <- w.buf // want "sending a view"
}

func (w *worker) aliasEscape() []complex128 {
	v := w.buf[:8]
	return v // want "returning a view"
}
