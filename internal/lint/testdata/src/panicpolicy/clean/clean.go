// Package clean shows every sanctioned panic site: constructors and Must
// helpers by name, init, //bhss:planphase functions, and //bhss:allow sites.
package clean

type filter struct{ taps []float64 }

func NewFilter(n int) *filter {
	if n <= 0 {
		panic("filter: non-positive length") // constructor: allowed by convention
	}
	return &filter{taps: make([]float64, n)}
}

func MustParse(s string) int {
	if s == "" {
		panic("empty input")
	}
	return len(s)
}

// planTaps runs at plan/construction time despite its name.
//
//bhss:planphase
func planTaps(n int) []float64 {
	if n < 0 {
		panic("negative order")
	}
	return make([]float64, n)
}

func stream(x []float64) float64 {
	if len(x) == 0 {
		//bhss:allow(panicpolicy) documented caller-bug contract, like copy() with bad bounds
		panic("empty block")
	}
	return x[0]
}

func init() {
	if len(NewFilter(1).taps) != 1 {
		panic("unreachable")
	}
}

var _ = MustParse
var _ = planTaps
var _ = stream
