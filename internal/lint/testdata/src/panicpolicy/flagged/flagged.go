// Package flagged exercises panicpolicy: a panic in streaming code with no
// construction-time name, no //bhss:planphase, and no //bhss:allow.
package flagged

func processBlock(x []float64) {
	if len(x) == 0 {
		panic("empty block") // want "panic outside construction"
	}
	x[0] = 0
}

var _ = processBlock
