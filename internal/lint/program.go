package lint

import (
	"fmt"
	"go/token"
)

// A ProgramPass connects one whole-program analyzer run to the full set of
// loaded packages and the call graph built over them. Unlike Pass, which
// sees one package at a time, a ProgramPass sees every package named on the
// command line at once — this is what lets hotpathfacts follow a call chain
// from a //bhss:hotpath entry point in internal/core into an allocating
// helper in internal/dsp, and goroleak match a goroutine's channel receive
// in one file against the close() in another.
type ProgramPass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Pkgs     []*Package
	Graph    *CallGraph

	report func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *ProgramPass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// inTestFile reports whether pos lies in a _test.go file. Program analyzers
// skip reporting there: tests spawn scaffolding goroutines and touch
// internals deliberately, and the per-package analyzers already apply the
// same exemption via SrcFiles.
func (p *ProgramPass) inTestFile(pos token.Pos) bool {
	return isTestFilename(p.Fset.Position(pos).Filename)
}

// runProgramAnalyzers builds the call graph once and applies every
// whole-program analyzer to it, filtering findings through the merged
// //bhss:allow index.
func runProgramAnalyzers(pkgs []*Package, analyzers []*Analyzer, imported map[string]FuncFacts, allow allowIndex) ([]Diagnostic, error) {
	if len(analyzers) == 0 || len(pkgs) == 0 {
		return nil, nil
	}
	g := buildCallGraph(pkgs, imported)
	fset := pkgs[0].Fset
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &ProgramPass{
			Analyzer: a,
			Fset:     fset,
			Pkgs:     pkgs,
			Graph:    g,
			report: func(d Diagnostic) {
				if !allow.allows(d.Pos, d.Analyzer) {
					diags = append(diags, d)
				}
			},
		}
		if err := a.RunProgram(pass); err != nil {
			return nil, fmt.Errorf("lint: %s: %v", a.Name, err)
		}
	}
	return diags, nil
}
