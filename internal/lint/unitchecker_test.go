package lint_test

import (
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

// TestVettoolProtocol round-trips a real `go vet -vettool` invocation: it
// builds the bhsslint binary, points go vet at a fixture whose hot-path
// chain crosses a package boundary, and checks that the findings come back
// with vet's failure exit status. The cross-package chain is the point — in
// unit mode the dependency's body is never loaded, so the finding can only
// appear if the facts round-trip through the .vetx files cmd/go shuttles
// between invocations.
func TestVettoolProtocol(t *testing.T) {
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("no go binary in PATH")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}

	tool := filepath.Join(t.TempDir(), "bhsslint")
	if runtime.GOOS == "windows" {
		tool += ".exe"
	}
	build := exec.Command(goBin, "build", "-o", tool, "./cmd/bhsslint")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building vettool: %v\n%s", err, out)
	}

	vet := func(pkg string) (string, error) {
		cmd := exec.Command(goBin, "vet", "-vettool="+tool, pkg)
		cmd.Dir = root
		out, err := cmd.CombinedOutput()
		return string(out), err
	}

	out, err := vet("./internal/lint/testdata/src/hotpathfacts/flagged")
	if err == nil {
		t.Fatalf("vet on the flagged fixture reported nothing; output:\n%s", out)
	}
	for _, wantSub := range []string{
		"hot path escapes into allocating call", // needs sub's facts from its .vetx
		"redundant //bhss:hotpath",              // purely local
	} {
		if !strings.Contains(out, wantSub) {
			t.Errorf("vet output missing %q:\n%s", wantSub, out)
		}
	}

	out, err = vet("./internal/lint/testdata/src/atomicmix/clean")
	if err != nil {
		t.Fatalf("vet on the clean fixture failed: %v\n%s", err, out)
	}
}
