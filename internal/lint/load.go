package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
)

// Package is one type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// listPackage mirrors the subset of `go list -json` output the loader reads.
type listPackage struct {
	Dir        string
	ImportPath string
	Name       string
	GoFiles    []string
	CgoFiles   []string
	Imports    []string
	ImportMap  map[string]string
	Standard   bool
	DepOnly    bool
	Error      *listError
}

type listError struct {
	Err string
}

// Load enumerates the packages matching patterns with `go list` and
// type-checks them — together with their entire dependency graph — from
// source. Only the root packages (the ones the patterns name) are returned,
// with full syntax trees and type information; dependencies are checked just
// deeply enough to supply their exported API.
//
// The loader forces CGO_ENABLED=0 so every dependency, including the
// standard library, resolves to a pure-Go file set that go/types can check
// without a C toolchain. Nothing outside the standard library is required:
// this is a from-scratch reimplementation of the part of go/packages the
// analyzers need, because the build environment vendors no external modules.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-e", "-deps",
		"-json=Dir,ImportPath,Name,GoFiles,CgoFiles,Imports,ImportMap,Standard,DepOnly,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}

	var pkgs []*listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		lp := new(listPackage)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		pkgs = append(pkgs, lp)
	}

	fset := token.NewFileSet()
	checked := map[string]*types.Package{"unsafe": types.Unsafe}
	sizes := types.SizesFor("gc", runtime.GOARCH)
	var roots []*Package

	// `go list -deps` emits dependencies before dependents, so a single
	// forward pass sees every import already checked.
	for _, lp := range pkgs {
		if lp.ImportPath == "unsafe" {
			continue
		}
		if lp.Error != nil {
			if lp.DepOnly {
				continue // tolerated unless a root actually imports it
			}
			return nil, fmt.Errorf("lint: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if len(lp.CgoFiles) > 0 {
			return nil, fmt.Errorf("lint: %s uses cgo, which the source loader cannot check", lp.ImportPath)
		}
		files := make([]*ast.File, 0, len(lp.GoFiles))
		for _, name := range lp.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, fmt.Errorf("lint: %v", err)
			}
			files = append(files, f)
		}
		var info *types.Info
		if !lp.DepOnly {
			info = &types.Info{
				Types:      map[ast.Expr]types.TypeAndValue{},
				Defs:       map[*ast.Ident]types.Object{},
				Uses:       map[*ast.Ident]types.Object{},
				Selections: map[*ast.SelectorExpr]*types.Selection{},
				Implicits:  map[ast.Node]types.Object{},
				Instances:  map[*ast.Ident]types.Instance{},
			}
		}
		conf := types.Config{
			Importer: mapImporter{resolved: checked, importMap: lp.ImportMap},
			Sizes:    sizes,
			Error:    func(error) {}, // collect everything, report the first below
		}
		tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
		if err != nil {
			if lp.DepOnly {
				// A dependency that fails to check only matters if a root
				// imports it, at which point the root's own check fails
				// with a clear message.
				continue
			}
			return nil, fmt.Errorf("lint: type-checking %s: %v", lp.ImportPath, err)
		}
		checked[lp.ImportPath] = tpkg
		if !lp.DepOnly {
			roots = append(roots, &Package{
				ImportPath: lp.ImportPath,
				Dir:        lp.Dir,
				Fset:       fset,
				Files:      files,
				Types:      tpkg,
				Info:       info,
			})
		}
	}
	return roots, nil
}

// mapImporter resolves imports against the already-checked package set,
// applying the package's ImportMap (vendoring / module rewrites) first.
type mapImporter struct {
	resolved  map[string]*types.Package
	importMap map[string]string
}

func (m mapImporter) Import(path string) (*types.Package, error) {
	if mapped, ok := m.importMap[path]; ok {
		path = mapped
	}
	if pkg, ok := m.resolved[path]; ok {
		return pkg, nil
	}
	return nil, fmt.Errorf("package %q not in dependency graph", path)
}
