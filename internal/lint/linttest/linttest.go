// Package linttest runs lint analyzers over golden-file fixtures, in the
// style of golang.org/x/tools/go/analysis/analysistest: fixture packages
// live under internal/lint/testdata/src/ (which the go tool's ./... wildcard
// never matches, so deliberately-broken fixtures cannot pollute repo-wide
// builds or lint runs), and expectations are written in the fixture source
// as comments of the form
//
//	total += v // want "accumulating into"
//
// Each `want` takes one or more double-quoted regular expressions that must
// each match a diagnostic reported on that line. Diagnostics with no
// matching expectation, and expectations with no matching diagnostic, both
// fail the test. A fixture with no want comments asserts the analyzer is
// silent on it (the "clean" fixture).
package linttest

import (
	"path/filepath"
	"regexp"
	"strconv"
	"testing"

	"bhss/internal/lint"
)

var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)
var quotedRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// expectation is one `// want "re"` clause.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// Run loads each fixture directory (relative to testdata/src in the calling
// test's working directory) and checks the analyzer's diagnostics against
// the fixtures' want comments. A fixture may be a package tree: every
// package under the directory is loaded (the whole-program analyzers need
// cross-package fixtures — a hot-path entry in one package reaching an
// allocation in another), and every loaded file may carry expectations.
func Run(t *testing.T, a *lint.Analyzer, fixtures ...string) {
	t.Helper()
	RunMulti(t, []*lint.Analyzer{a}, fixtures...)
}

// RunMulti is Run with several analyzers applied at once, for fixtures that
// exercise //bhss:allow directives naming more than one analyzer on a line.
func RunMulti(t *testing.T, analyzers []*lint.Analyzer, fixtures ...string) {
	t.Helper()
	for _, fixture := range fixtures {
		fixture := fixture
		t.Run(fixture, func(t *testing.T) {
			t.Helper()
			dir := filepath.Join("testdata", "src", fixture)
			abs, err := filepath.Abs(dir)
			if err != nil {
				t.Fatal(err)
			}
			pkgs, err := lint.Load(abs, "./...")
			if err != nil {
				t.Fatalf("loading fixture %s: %v", fixture, err)
			}
			if len(pkgs) == 0 {
				t.Fatalf("fixture %s: loaded no packages", fixture)
			}
			diags, err := lint.RunAnalyzers(pkgs, analyzers)
			if err != nil {
				t.Fatal(err)
			}
			checkExpectations(t, pkgs, diags)
		})
	}
}

func checkExpectations(t *testing.T, pkgs []*lint.Package, diags []lint.Diagnostic) {
	t.Helper()
	var wants []*expectation
	for _, pkg := range pkgs {
		collectWants(t, pkg, &wants)
	}
	for _, d := range diags {
		if w := matchWant(wants, d); w != nil {
			w.matched = true
			continue
		}
		t.Errorf("unexpected diagnostic: %v", d)
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

func collectWants(t *testing.T, pkg *lint.Package, wants *[]*expectation) {
	t.Helper()
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				quoted := quotedRE.FindAllStringSubmatch(m[1], -1)
				if len(quoted) == 0 {
					t.Errorf("%s: want comment with no quoted pattern", pos)
					continue
				}
				for _, q := range quoted {
					pat, err := strconv.Unquote(`"` + q[1] + `"`)
					if err != nil {
						t.Errorf("%s: bad want pattern %q: %v", pos, q[1], err)
						continue
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Errorf("%s: bad want regexp %q: %v", pos, pat, err)
						continue
					}
					*wants = append(*wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
}

func matchWant(wants []*expectation, d lint.Diagnostic) *expectation {
	for _, w := range wants {
		if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
			return w
		}
	}
	return nil
}
