package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// DetRand enforces the repo's determinism contract: every random draw in the
// simulation flows through internal/prng's explicitly-seeded xoshiro256**
// source, so a (seed, config) pair reproduces every figure bit-exactly.
//
// Three rules:
//
//  1. Importing math/rand or math/rand/v2 is forbidden everywhere. The
//     global top-level functions carry process-wide mutable state seeded
//     per-run, and even the seeded forms use a different generator than the
//     one the paper-reproduction experiments are calibrated against.
//
//  2. Calling time.Now() inside simulation packages (bhss/internal/...,
//     except internal/lint itself) is forbidden — wall-clock values leak into
//     seeds or measurements and break replay. cmd/ tools may timestamp logs.
//
//  3. Ranging over a map while compound-accumulating (+=, -=, *=, /=) into a
//     numeric variable declared outside the loop is forbidden in simulation
//     packages: map iteration order is randomized, and float accumulation is
//     order-sensitive, so the same inputs can produce different sums on
//     different runs. Collect keys, sort, then accumulate (the
//     figures_measured.go idiom).
var DetRand = &Analyzer{
	Name: "detrand",
	Doc:  "forbids math/rand, time.Now in simulation code, and order-sensitive map-range accumulation",
	Run:  runDetRand,
}

// simulationPackage reports whether rules 2 and 3 apply to the package. The
// lint framework itself is exempt (it shells out to the go tool and may
// reasonably timestamp); its testdata fixtures are not, so the rules stay
// testable.
func simulationPackage(path string) bool {
	switch path {
	case "bhss/internal/lint", "bhss/internal/lint/linttest":
		return false
	}
	return strings.HasPrefix(path, "bhss/internal/") || path == "bhss"
}

func runDetRand(pass *Pass) error {
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "math/rand" || path == "math/rand/v2" {
				pass.Reportf(imp.Pos(), "import of %s is forbidden: use bhss/internal/prng with an explicit seed", path)
			}
		}
	}
	if !simulationPackage(pass.Path) {
		return nil
	}
	// Rules 2 and 3 exempt test files: tests reasonably read the clock for
	// deadlines, and their map-range sums don't feed published figures.
	for _, f := range pass.SrcFiles() {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if isPkgFuncCall(pass.Info, n, "time", "Now") {
					pass.Reportf(n.Pos(), "time.Now() in simulation code breaks deterministic replay; derive values from the experiment seed")
				}
			case *ast.RangeStmt:
				checkMapRangeAccum(pass, n)
			}
			return true
		})
	}
	return nil
}

// isPkgFuncCall reports whether call is pkg.fn(...) resolving to the named
// package-level function.
func isPkgFuncCall(info *types.Info, call *ast.CallExpr, pkgPath, fn string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != fn {
		return false
	}
	obj, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || obj.Pkg() == nil {
		return false
	}
	return obj.Pkg().Path() == pkgPath
}

// checkMapRangeAccum flags `for k := range m { total += ... }` where m is a
// map and total is numeric and declared outside the range body.
func checkMapRangeAccum(pass *Pass, rng *ast.RangeStmt) {
	t := pass.Info.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	// Objects declared inside the range statement (including the loop
	// variables) don't count as outer accumulators.
	inside := map[types.Object]bool{}
	ast.Inspect(rng, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := pass.Info.Defs[id]; obj != nil {
				inside[obj] = true
			}
		}
		return true
	})
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		switch assign.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		default:
			return true
		}
		for _, lhs := range assign.Lhs {
			base := lhs
			// total += x, m2[k].sum += x, acc.sum += x — resolve to the root
			// identifier.
			for {
				switch e := ast.Unparen(base).(type) {
				case *ast.SelectorExpr:
					base = e.X
					continue
				case *ast.IndexExpr:
					base = e.X
					continue
				}
				break
			}
			id, ok := ast.Unparen(base).(*ast.Ident)
			if !ok {
				continue
			}
			obj := pass.Info.Uses[id]
			if obj == nil || inside[obj] {
				continue
			}
			if !isNumericLvalue(pass.Info.TypeOf(lhs)) {
				continue
			}
			pass.Reportf(assign.Pos(), "accumulating into %s while ranging over a map: iteration order is randomized, so the result is nondeterministic; collect keys and sort first", id.Name)
		}
		return true
	})
}

func isNumericLvalue(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsNumeric) != 0
}
