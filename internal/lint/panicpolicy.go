package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// PanicPolicy restricts panic to plan/construction-time code. The streaming
// paths — per-hop filtering, demodulation, the experiment grid — must return
// errors so a single malformed burst cannot take down a long sweep; panics
// are reserved for programmer errors caught at construction.
//
// A panic call is allowed when:
//
//   - the enclosing function's name starts with New or Must, or is init
//     (constructors and must-helpers panic by Go convention);
//   - the enclosing function is annotated //bhss:planphase (it runs at
//     plan/construction time even though its name says otherwise);
//   - the call site carries //bhss:allow(panicpolicy) with a reason (an
//     invariant the type system cannot express, e.g. a size mismatch that is
//     a caller bug by documented contract).
var PanicPolicy = &Analyzer{
	Name: "panicpolicy",
	Doc:  "restricts panic to construction/plan-time code",
	Run:  runPanicPolicy,
}

func runPanicPolicy(pass *Pass) error {
	eachFuncDecl(pass.SrcFiles(), func(fn *ast.FuncDecl) {
		name := fn.Name.Name
		if name == "init" || strings.HasPrefix(name, "New") || strings.HasPrefix(name, "Must") {
			return
		}
		if funcHasDirective(fn, "planphase") {
			return
		}
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := ast.Unparen(call.Fun).(*ast.Ident)
			if !ok || id.Name != "panic" {
				return true
			}
			if b, ok := pass.Info.Uses[id].(*types.Builtin); !ok || b.Name() != "panic" {
				return true
			}
			pass.Reportf(call.Pos(), "panic outside construction/plan-time code; return an error, or annotate the function //bhss:planphase / the site //bhss:allow(panicpolicy) with a reason")
			return true
		})
	})
	return nil
}
