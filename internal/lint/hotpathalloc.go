package lint

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"strings"
)

// HotPathAlloc flags direct heap allocations inside functions annotated
// //bhss:hotpath. The PR-1 zero-alloc contract says the steady-state DSP
// loops (SpreadAppend, ModulateAppend, PSDInto, FFT execution, overlap-save
// processing, the receiver's per-hop excision) run entirely out of
// caller-provided or cached buffers; this analyzer keeps that true at review
// time, and the AllocsPerRun regression tests keep it true at run time.
//
// Flagged inside a hotpath body:
//
//   - make(...) and new(...)
//   - slice, map and &struct composite literals
//   - func literals (the closure header itself allocates; the literal's body
//     is not descended into)
//   - string concatenation and string<->[]byte conversions
//   - go and defer statements — except a defer of an internal/obs recording
//     call outside any loop: the obs package's recording API is alloc-free by
//     contract, and a defer that is not in a loop is open-coded by the
//     compiler (Go >= 1.14), so the instrumentation idiom
//     `defer met.RecordStage(stage, obs.Start())` costs no heap allocation
//   - append(...) growth, unless it follows the caller-amortized Append
//     contract: either a self-assignment x = append(x, ...) or appending to
//     a slice that is a parameter of the hotpath function (the dst-first
//     convention, where amortized growth is the caller's business)
//
// Function calls are deliberately out of scope — callee contracts are
// checked at their own declarations, and the runtime AllocsPerRun tests
// cross-validate whole call trees.
var HotPathAlloc = &Analyzer{
	Name: "hotpathalloc",
	Doc:  "flags direct heap allocations in //bhss:hotpath functions",
	Run:  runHotPathAlloc,
}

func runHotPathAlloc(pass *Pass) error {
	eachFuncDecl(pass.SrcFiles(), func(fn *ast.FuncDecl) {
		if !funcHasDirective(fn, "hotpath") {
			return
		}
		walkAllocs(pass.Fset, pass.Info, fn, func(pos token.Pos, msg string) {
			pass.Reportf(pos, "%s", msg)
		})
	})
	return nil
}

// walkAllocs reports every direct-allocation site in fn's body through
// report, applying the same vetted-idiom exemptions as the hotpathalloc
// analyzer. It is shared between hotpathalloc (which reports on annotated
// functions) and the call-graph facts collector (which records alloc sites
// for every function so hotpathfacts can flag them transitively).
func walkAllocs(fset *token.FileSet, info *types.Info, fn *ast.FuncDecl, report func(token.Pos, string)) {
	params := map[types.Object]bool{}
	if fn.Type.Params != nil {
		for _, field := range fn.Type.Params.List {
			for _, name := range field.Names {
				if obj := info.Defs[name]; obj != nil {
					params[obj] = true
				}
			}
		}
	}
	// Record the source ranges of every loop in the body up front: a
	// defer that sits inside one is heap-allocated per iteration, so
	// even the sanctioned obs-recording defer is forbidden there.
	var loops []posRange
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			loops = append(loops, posRange{n.Pos(), n.End()})
		case *ast.FuncLit:
			return false // runs under its own contract
		}
		return true
	})
	w := &hotpathWalker{fset: fset, info: info, report: report, params: params, loops: loops}
	ast.Inspect(fn.Body, w.visit)
}

type hotpathWalker struct {
	fset   *token.FileSet
	info   *types.Info
	report func(token.Pos, string)
	params map[types.Object]bool
	loops  []posRange
}

func (w *hotpathWalker) reportf(pos token.Pos, format string, args ...any) {
	w.report(pos, fmt.Sprintf(format, args...))
}

// posRange is a half-open source span [pos, end).
type posRange struct {
	pos, end token.Pos
}

func (w *hotpathWalker) inLoop(pos token.Pos) bool {
	for _, l := range w.loops {
		if l.pos <= pos && pos < l.end {
			return true
		}
	}
	return false
}

func (w *hotpathWalker) visit(n ast.Node) bool {
	switch n := n.(type) {
	case *ast.FuncLit:
		w.reportf(n.Pos(), "func literal allocates a closure in hot path")
		return false // the literal's body runs under its own contract
	case *ast.GoStmt:
		w.reportf(n.Pos(), "go statement allocates a goroutine in hot path")
	case *ast.DeferStmt:
		// Deferring an internal/obs recording call is the sanctioned
		// instrumentation idiom: the obs API is alloc-free by contract and
		// a defer outside any loop is open-coded (no heap allocation).
		// Inside a loop the compiler falls back to heap-allocated defer
		// records, one per iteration, so the exemption does not apply.
		if w.isObsCall(n.Call) {
			if !w.inLoop(n.Pos()) {
				return true // still walk the call's arguments
			}
			w.reportf(n.Pos(), "deferred obs call inside a loop in hot path (per-iteration defer records allocate; record explicitly instead)")
			return true
		}
		w.reportf(n.Pos(), "defer in hot path (allocates and delays cleanup)")
	case *ast.CompositeLit:
		switch w.info.TypeOf(n).Underlying().(type) {
		case *types.Slice:
			w.reportf(n.Pos(), "slice literal allocates in hot path")
		case *types.Map:
			w.reportf(n.Pos(), "map literal allocates in hot path")
		}
	case *ast.UnaryExpr:
		if n.Op == token.AND {
			if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
				w.reportf(n.Pos(), "&composite literal allocates in hot path")
				return false
			}
		}
	case *ast.BinaryExpr:
		if n.Op == token.ADD && isStringType(w.info.TypeOf(n)) {
			w.reportf(n.Pos(), "string concatenation allocates in hot path")
		}
	case *ast.AssignStmt:
		// Handled expression-by-expression below; but catch the vetted
		// append form here so visitCall can tell self-assign from growth.
		for i, rhs := range n.Rhs {
			if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok && w.isBuiltin(call, "append") {
				var lhs ast.Expr
				if len(n.Lhs) == len(n.Rhs) {
					lhs = n.Lhs[i]
				}
				w.checkAppend(call, lhs)
				// Walk append's non-dst arguments for nested allocations.
				for _, arg := range call.Args[1:] {
					ast.Inspect(arg, w.visit)
				}
				return false
			}
		}
	case *ast.CallExpr:
		return w.visitCall(n)
	}
	return true
}

func (w *hotpathWalker) visitCall(call *ast.CallExpr) bool {
	switch {
	case w.isBuiltin(call, "make"):
		w.reportf(call.Pos(), "make allocates in hot path")
	case w.isBuiltin(call, "new"):
		w.reportf(call.Pos(), "new allocates in hot path")
	case w.isBuiltin(call, "append"):
		// An append reached here is not the x = append(x, ...) statement form
		// (that is intercepted at the AssignStmt); it is used as a bare value,
		// so the vetted-destination rule is all that can save it.
		w.checkAppend(call, nil)
	default:
		if tv, ok := w.info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
			to := w.info.TypeOf(call)
			from := w.info.TypeOf(call.Args[0])
			if stringBytesConversion(from, to) {
				w.reportf(call.Pos(), "string/[]byte conversion allocates in hot path")
			}
		}
	}
	return true
}

// checkAppend applies the caller-amortized Append contract. lhs is the
// assignment target when the append appears as stmt `lhs = append(dst, ...)`,
// nil otherwise.
func (w *hotpathWalker) checkAppend(call *ast.CallExpr, lhs ast.Expr) {
	if len(call.Args) == 0 {
		return
	}
	dst := ast.Unparen(call.Args[0])
	// Vetted form 1: self-assignment x = append(x, ...) — amortized growth
	// on a buffer the function owns or was handed; structural equality via
	// printed form.
	if lhs != nil && exprString(w.fset, ast.Unparen(lhs)) == exprString(w.fset, dst) {
		return
	}
	// Vetted form 2: appending to (a slice derived from) a function
	// parameter — the dst-first Append convention, growth amortized by the
	// caller.
	if base, ok := ast.Unparen(sliceBase(dst)).(*ast.Ident); ok {
		if obj := w.info.Uses[base]; obj != nil && w.params[obj] {
			return
		}
	}
	w.reportf(call.Pos(), "append may grow and allocate in hot path (use the dst-param or x = append(x, ...) form)")
}

// sliceBase strips slice expressions: scratch[:0] -> scratch.
func sliceBase(e ast.Expr) ast.Expr {
	for {
		s, ok := ast.Unparen(e).(*ast.SliceExpr)
		if !ok {
			return e
		}
		e = s.X
	}
}

// obsPkgSuffix identifies the observability package whose recording API
// (Counter.Inc, Histogram.ObserveSince, Pipeline.RecordStage, ...) is
// covered by its own AllocsPerRun regression tests.
const obsPkgSuffix = "/internal/obs"

// isObsCall reports whether the call's callee resolves to a function or
// method of the internal/obs package.
func (w *hotpathWalker) isObsCall(call *ast.CallExpr) bool {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return false
	}
	fn, ok := w.info.Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	return strings.HasSuffix(fn.Pkg().Path(), obsPkgSuffix)
}

func (w *hotpathWalker) isBuiltin(call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	b, ok := w.info.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune)
}

func stringBytesConversion(from, to types.Type) bool {
	return (isStringType(from) && isByteSlice(to)) || (isByteSlice(from) && isStringType(to))
}

// exprString renders an expression for structural comparison.
func exprString(fset *token.FileSet, e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, e); err != nil {
		return ""
	}
	return buf.String()
}
