// Package lint is a self-contained static-analysis suite that enforces the
// BHSS codebase's domain contracts: allocation-free hot paths, bit-exact
// deterministic simulation, epsilon-safe float comparisons, scratch-buffer
// lifetime discipline and a construction-time-only panic policy.
//
// The framework mirrors the shape of golang.org/x/tools/go/analysis — an
// Analyzer owns a Run function over a Pass carrying syntax and type
// information — but is built on the standard library alone (go/ast, go/types
// and `go list`), because this build environment vendors no external
// modules. cmd/bhsslint is the multichecker driver; it also speaks the
// `go vet -vettool` unitchecker protocol.
//
// # Annotations
//
// Contracts are declared in source with //bhss: comment directives:
//
//	//bhss:hotpath    — function doc: body must perform no direct allocation
//	//bhss:planphase  — function doc: runs at construction/plan time only,
//	                    panics on invalid input are acceptable here
//	//bhss:scratchview— function doc: returned slices intentionally alias
//	                    receiver scratch with a documented lifetime
//	//bhss:scratch    — struct field: reusable scratch whose aliases must not
//	                    outlive a call (see the scratchalias analyzer)
//
// A finding that is intentional is suppressed in place with
//
//	//bhss:allow(analyzer1,analyzer2) reason...
//
// on the flagged line or the line directly above it. The reason is free
// text but mandatory by convention: a suppression without a why does not
// survive review.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// An Analyzer describes one static check. Exactly one of Run (per-package)
// and RunProgram (whole-program, over the cross-package call graph) is set.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and allow() directives.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// Run performs a per-package check, reporting findings through the Pass.
	Run func(*Pass) error
	// RunProgram performs a whole-program check over every loaded package
	// at once; see ProgramPass.
	RunProgram func(*ProgramPass) error
}

// A Pass connects one Analyzer run to one package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Path     string // import path
	Pkg      *types.Package
	Info     *types.Info

	report func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// SrcFiles returns the pass's non-test files. Under `go vet -vettool` a
// package's test variant includes _test.go files, which are exempt from most
// checks: determinism tests compare floats bit-exactly on purpose, Example
// functions panic on mismatch, and timeout helpers read the wall clock. An
// analyzer whose rule must hold even in tests (detrand's math/rand import
// ban) iterates Files directly.
func (p *Pass) SrcFiles() []*ast.File {
	var out []*ast.File
	for _, f := range p.Files {
		if !isTestFilename(p.Fset.Position(f.Pos()).Filename) {
			out = append(out, f)
		}
	}
	return out
}

// shortPos renders a position as "file.go:12" with the directory stripped:
// positions embedded in diagnostic *messages* (as opposed to the Diagnostic's
// own Pos) must not vary between machines, or they poison the findings
// baseline, which matches on message text.
func shortPos(fset *token.FileSet, pos token.Pos) string {
	p := fset.Position(pos)
	return fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
}

// A Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// All returns the full analyzer suite in reporting order: the six
// per-package analyzers, then the five whole-program ones.
func All() []*Analyzer {
	return []*Analyzer{
		HotPathAlloc,
		SIMDLoop,
		DetRand,
		FloatEq,
		ScratchAlias,
		PanicPolicy,
		HotPathFacts,
		GoroLeak,
		AtomicMix,
		ChanDiscipline,
		DetTaint,
	}
}

// ByName resolves a comma-separated analyzer selection ("hotpathalloc,floateq").
func ByName(names string) ([]*Analyzer, error) {
	var out []*Analyzer
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		found := false
		for _, a := range All() {
			if a.Name == name {
				out = append(out, a)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("lint: unknown analyzer %q", name)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("lint: empty analyzer selection")
	}
	return out, nil
}

// RunAnalyzers applies the analyzers to every package, filters findings
// through the //bhss:allow suppression index, and returns them sorted by
// position. Per-package analyzers run on each package in turn; whole-program
// analyzers run once over all of them (see ProgramPass). Suppression
// directives without a reason are themselves reported (analyzer name
// "allow"): a finding silenced without a why does not survive review.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	return RunAnalyzersWithFacts(pkgs, analyzers, nil)
}

// RunAnalyzersWithFacts is RunAnalyzers with dependency facts imported from
// .vetx files, used by the unitchecker driver where the "program" is a
// single package plus its dependencies' summaries.
func RunAnalyzersWithFacts(pkgs []*Package, analyzers []*Analyzer, imported map[string]FuncFacts) ([]Diagnostic, error) {
	var perPkg, prog []*Analyzer
	for _, a := range analyzers {
		if a.RunProgram != nil {
			prog = append(prog, a)
		} else {
			perPkg = append(perPkg, a)
		}
	}
	var diags []Diagnostic
	merged := allowIndex{}
	for _, pkg := range pkgs {
		allow, reasonless := buildAllowIndex(pkg.Fset, pkg.Files)
		diags = append(diags, reasonless...)
		for file, lines := range allow {
			merged[file] = lines
		}
		pd, err := runOnPackage(pkg, allow, perPkg)
		if err != nil {
			return nil, err
		}
		diags = append(diags, pd...)
	}
	pd, err := runProgramAnalyzers(pkgs, prog, imported, merged)
	if err != nil {
		return nil, err
	}
	diags = append(diags, pd...)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

func runOnPackage(pkg *Package, allow allowIndex, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Path:     pkg.ImportPath,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			report: func(d Diagnostic) {
				if !allow.allows(d.Pos, d.Analyzer) {
					diags = append(diags, d)
				}
			},
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("lint: %s on %s: %v", a.Name, pkg.ImportPath, err)
		}
	}
	return diags, nil
}

// ---- //bhss: directive parsing ----

var allowRE = regexp.MustCompile(`//bhss:allow\(([^)]+)\)(.*)$`)

// wantClauseRE strips a linttest `// want "..."` expectation trailing a
// directive, so fixture scaffolding is never mistaken for a reason.
var wantClauseRE = regexp.MustCompile(`//\s*want\s+".*$`)

// allowIndex records, per file and line, which analyzers are suppressed.
// A directive suppresses findings on its own line and on the line directly
// below it (the standalone-comment-above-the-statement form).
type allowIndex map[string]map[int]map[string]bool

// buildAllowIndex indexes every //bhss:allow directive and returns, as
// ready-made diagnostics, the directives that carry no reason text: the
// suppression still applies (so a missing reason never un-suppresses a
// vetted finding into CI noise), but is itself a finding.
func buildAllowIndex(fset *token.FileSet, files []*ast.File) (allowIndex, []Diagnostic) {
	idx := allowIndex{}
	var reasonless []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := allowRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				if strings.TrimSpace(wantClauseRE.ReplaceAllString(m[2], "")) == "" {
					reasonless = append(reasonless, Diagnostic{
						Analyzer: "allow",
						Pos:      pos,
						Message:  fmt.Sprintf("//bhss:allow(%s) without a reason: say why the finding is intentional", m[1]),
					})
				}
				lines := idx[pos.Filename]
				if lines == nil {
					lines = map[int]map[string]bool{}
					idx[pos.Filename] = lines
				}
				for _, name := range strings.Split(m[1], ",") {
					name = strings.TrimSpace(name)
					for _, line := range []int{pos.Line, pos.Line + 1} {
						if lines[line] == nil {
							lines[line] = map[string]bool{}
						}
						lines[line][name] = true
					}
				}
			}
		}
	}
	return idx, reasonless
}

// isTestFilename reports whether a source filename is a _test.go file.
func isTestFilename(name string) bool {
	return strings.HasSuffix(name, "_test.go")
}

func (idx allowIndex) allows(pos token.Position, analyzer string) bool {
	return idx[pos.Filename][pos.Line][analyzer]
}

// funcHasDirective reports whether the function's doc comment carries the
// //bhss:<name> directive (as its own comment line, optionally followed by
// free text).
func funcHasDirective(fn *ast.FuncDecl, name string) bool {
	if fn.Doc == nil {
		return false
	}
	want := "//bhss:" + name
	for _, c := range fn.Doc.List {
		if c.Text == want || strings.HasPrefix(c.Text, want+" ") {
			return true
		}
	}
	return false
}

// fieldHasDirective reports whether a struct field's doc or trailing comment
// carries //bhss:<name>.
func fieldHasDirective(field *ast.Field, name string) bool {
	want := "//bhss:" + name
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if c.Text == want || strings.HasPrefix(c.Text, want+" ") {
				return true
			}
		}
	}
	return false
}

// eachFuncDecl invokes fn for every function declaration with a body.
func eachFuncDecl(files []*ast.File, fn func(*ast.FuncDecl)) {
	for _, f := range files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				fn(fd)
			}
		}
	}
}
