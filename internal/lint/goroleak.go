package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoroLeak checks that every goroutine spawned in non-test code has a
// shutdown edge: some way for the rest of the program to make it return.
// The long-lived types in this codebase (iqstream.Hub, core.rxPipeline,
// obs.SnapshotWriter, the soak harness) all follow the same discipline — a
// worker loop selects on a quit/done channel that Close/Shutdown closes, or
// blocks on an operation that closing the underlying resource unblocks.
// This analyzer enforces that discipline over the whole program: the close()
// may live in a different package than the loop.
//
// For each `go` statement it resolves the goroutine body (function literal
// or statically-resolved callee) and walks the call graph a few levels deep.
// Every unbounded loop found there — `for {}` / `for` with no condition, or
// `range` over a channel — must contain at least one shutdown edge:
//
//   - a receive, range or select case on a channel that is close()d
//     somewhere in the program (including a channel passed in as an
//     argument whose caller-side variable is closed);
//   - a receive on ctx.Done() (any method named Done);
//   - a receive through a selector whose base value's type has a
//     Close/Shutdown/Stop method (time.Ticker's t.C);
//   - a call to a method on a value whose type has Close/Shutdown/Stop —
//     the "blocking on a closeable resource" escape hatch that covers
//     conn.Read loops and accept loops, where closing the resource is the
//     documented way to unblock the goroutine.
//
// Bounded loops (three-clause `for` with a condition) are exempt. Findings
// are reported at the loop with the spawn site in the message; suppress at
// the loop with //bhss:allow(goroleak) and the reason the goroutine's
// lifetime is actually bounded.
var GoroLeak = &Analyzer{
	Name:       "goroleak",
	Doc:        "every goroutine's unbounded loops must have a shutdown edge (closed channel, ctx.Done, or a closeable resource)",
	RunProgram: runGoroLeak,
}

// goroleakDepth bounds the call-graph walk from a `go` statement. The
// codebase's deepest real chain (go h.handle → serveTx → enqueueTx) is three
// levels; anything deeper is out of the goroutine's own control.
const goroleakDepth = 5

func runGoroLeak(pass *ProgramPass) error {
	reported := map[token.Pos]bool{}
	for _, fi := range pass.Graph.Funcs {
		if fi.Test {
			continue
		}
		info := fi.Pkg.Info
		ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
			if gs, ok := n.(*ast.GoStmt); ok {
				checkGoroutine(pass, info, gs, reported)
			}
			return true
		})
	}
	return nil
}

// goBody is one function body the goroutine can execute, queued by the
// call-graph walk.
type goBody struct {
	body  *ast.BlockStmt
	info  *types.Info
	depth int
}

func checkGoroutine(pass *ProgramPass, info *types.Info, gs *ast.GoStmt, reported map[token.Pos]bool) {
	g := pass.Graph
	// localClosed extends the program-wide closed-channel index with
	// parameter aliases: for `go worker(jobs)` where the caller closes
	// jobs, worker's own parameter object is a closed channel too.
	localClosed := map[types.Object]bool{}
	seen := map[*types.Func]bool{}
	var work []goBody
	enqueue := func(callee *types.Func, call *ast.CallExpr, callerInfo *types.Info, depth int) {
		fi, ok := g.Funcs[callee]
		if !ok || seen[callee] || depth > goroleakDepth {
			return
		}
		seen[callee] = true
		if call != nil {
			params := signatureParams(callee)
			for i, arg := range call.Args {
				if i >= len(params) {
					break
				}
				obj := rootSelectableObject(callerInfo, arg)
				if obj != nil && isChanType(obj.Type()) && (g.ClosedChans[obj] || localClosed[obj]) {
					localClosed[params[i]] = true
				}
			}
		}
		work = append(work, goBody{fi.Decl.Body, fi.Pkg.Info, depth})
	}
	if lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit); ok {
		work = append(work, goBody{lit.Body, info, 0})
	} else if callee := staticCallee(info, gs.Call); callee != nil {
		enqueue(callee, gs.Call, info, 0)
	}
	for i := 0; i < len(work); i++ {
		it := work[i]
		ast.Inspect(it.body, func(n ast.Node) bool {
			if _, ok := n.(*ast.GoStmt); ok {
				return false // a sub-goroutine is its own check
			}
			if call, ok := n.(*ast.CallExpr); ok {
				if callee := staticCallee(it.info, call); callee != nil {
					enqueue(callee, call, it.info, it.depth+1)
				}
			}
			return true
		})
		findSuspectLoops(pass, it.info, it.body, gs, localClosed, reported)
	}
}

func findSuspectLoops(pass *ProgramPass, info *types.Info, body *ast.BlockStmt, gs *ast.GoStmt, localClosed map[types.Object]bool, reported map[token.Pos]bool) {
	g := pass.Graph
	isClosed := func(e ast.Expr) bool {
		obj := rootSelectableObject(info, e)
		return obj != nil && (g.ClosedChans[obj] || localClosed[obj])
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.GoStmt); ok {
			return false
		}
		var loop ast.Node
		switch l := n.(type) {
		case *ast.ForStmt:
			if l.Cond != nil {
				return true // bounded by its condition
			}
			if isLocalRetryLoop(info, l) {
				return true // CAS-retry style: no channel ops, local exits
			}
			loop = l
		case *ast.RangeStmt:
			if !isChanType(info.TypeOf(l.X)) || isClosed(l.X) {
				return true // not a channel loop, or ends when the chan closes
			}
			loop = l
		default:
			return true
		}
		if reported[loop.Pos()] {
			return true
		}
		if !loopHasShutdownEdge(info, loop, isClosed) {
			reported[loop.Pos()] = true
			pass.Reportf(loop.Pos(),
				"goroutine spawned at %s loops forever with no shutdown edge: no receive on a channel the program closes, no ctx.Done, no call on a closeable resource; give it a quit path",
				shortPos(pass.Fset, gs.Pos()))
		}
		return true
	})
}

// isLocalRetryLoop reports whether a condition-less for loop performs no
// channel operation at all and contains a break or return: the CAS-retry
// shape (`for { if cas() { break } }`), terminated by local state that
// channel-shutdown analysis has no business judging. A loop with any
// channel op stays suspect — its exits are part of the shutdown contract.
func isLocalRetryLoop(info *types.Info, loop *ast.ForStmt) bool {
	hasChanOp := false
	hasLocalExit := false
	ast.Inspect(loop.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SendStmt, *ast.SelectStmt:
			hasChanOp = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				hasChanOp = true
			}
		case *ast.RangeStmt:
			if isChanType(info.TypeOf(n.X)) {
				hasChanOp = true
			}
		case *ast.BranchStmt:
			if n.Tok == token.BREAK {
				hasLocalExit = true
			}
		case *ast.ReturnStmt:
			hasLocalExit = true
		}
		return !hasChanOp
	})
	return !hasChanOp && hasLocalExit
}

// loopHasShutdownEdge scans one unbounded loop for any of the accepted
// shutdown edges.
func loopHasShutdownEdge(info *types.Info, loop ast.Node, isClosed func(ast.Expr) bool) bool {
	found := false
	ast.Inspect(loop, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && receiveIsShutdownEdge(info, n.X, isClosed) {
				found = true
			}
		case *ast.RangeStmt:
			if isChanType(info.TypeOf(n.X)) && isClosed(n.X) {
				found = true
			}
		case *ast.CallExpr:
			// A blocking call on a closeable resource: closing it is the
			// documented way to unblock the goroutine (net.Conn.Read,
			// Listener.Accept, Client.Recv, ...).
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
				if t := info.TypeOf(sel.X); t != nil && hasCloseMethod(t) {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// receiveIsShutdownEdge reports whether `<-e` counts as a shutdown edge: a
// closed channel, ctx.Done(), or a channel field of a closeable value.
func receiveIsShutdownEdge(info *types.Info, e ast.Expr, isClosed func(ast.Expr) bool) bool {
	e = ast.Unparen(e)
	if isClosed(e) {
		return true
	}
	if call, ok := e.(*ast.CallExpr); ok {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
			return true // <-ctx.Done() and equivalents
		}
	}
	if sel, ok := e.(*ast.SelectorExpr); ok {
		if t := info.TypeOf(sel.X); t != nil && hasCloseMethod(t) {
			return true // <-t.C where t is a *time.Ticker or similar
		}
	}
	return false
}

// signatureParams flattens a function's declared parameters to positional
// objects.
func signatureParams(fn *types.Func) []*types.Var {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	params := make([]*types.Var, 0, sig.Params().Len())
	for i := 0; i < sig.Params().Len(); i++ {
		params = append(params, sig.Params().At(i))
	}
	return params
}
