package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// DetTaint tracks nondeterminism as a taint, complementing detrand's ban
// list. detrand forbids the *sources* syntactically (math/rand imports,
// time.Now in simulation packages, map-range accumulation); dettaint follows
// the *values*: a wall-clock reading or a map-iteration variable that flows —
// through assignments, arithmetic, conversions or call arguments — into one
// of the places that must stay bit-exactly reproducible:
//
//   - sample buffers: an element write or append into a complex128 slice or
//     array (the IQ domain — everything the golden vectors hash);
//   - receiver diagnostics: a field write on core.RxStats or core.HopReport
//     (compared across runs by the determinism suite);
//   - hop decisions: an argument to any function of the hop package
//     (seeds, schedule lengths — anything steering the hopping sequence).
//
// The analysis is intraprocedural with a fixed-point over assignments:
// `t := time.Now(); x := f(t.Nanosecond()); samples[i] = complex(x, 0)` is
// reported at the sample write. Taint does not cross function boundaries —
// cross-function flows are detrand's coarser job — which keeps findings
// cheap to confirm by eye. Test files are exempt (they time things on
// purpose); internal/lint and its fixtures are excluded like every
// self-analysis. Suppress intentional flows in place with
// //bhss:allow(dettaint) and the reason the value cannot actually vary.
var DetTaint = &Analyzer{
	Name: "dettaint",
	Doc:  "wall-clock and map-order values must not flow into sample buffers, RxStats/HopReport fields, or hop-package arguments",
	Run:  runDetTaint,
}

// dettaintScope reports whether the package's import path is subject to the
// taint check: everything in the module except the lint tooling itself.
// Unlike detrand's simulationPackage this includes cmd/ — a tool that seeds
// a hop schedule from the clock breaks reproduction scripts just as surely.
func dettaintScope(path string) bool {
	return path != "bhss/internal/lint" && path != "bhss/internal/lint/linttest"
}

func runDetTaint(pass *Pass) error {
	if !dettaintScope(pass.Path) {
		return nil
	}
	eachFuncDecl(pass.SrcFiles(), func(fn *ast.FuncDecl) {
		checkTaintFlow(pass, fn)
	})
	return nil
}

const dettaintFixpointCap = 10

func checkTaintFlow(pass *Pass, fn *ast.FuncDecl) {
	info := pass.Info
	tainted := map[types.Object]string{} // object → what the taint is

	// Sorting launders map-order taint: collecting map keys and sorting
	// them is the codebase's own documented idiom for deterministic
	// iteration (the Hub's mixer), so any object passed to a sort or
	// slices function is sanitized everywhere in this function.
	sanitized := map[types.Object]bool{}
	ast.Inspect(fn, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := staticCallee(info, call)
		if callee == nil || callee.Pkg() == nil {
			return true
		}
		if p := callee.Pkg().Path(); p == "sort" || p == "slices" {
			for _, arg := range call.Args {
				if obj := rootSelectableObject(info, arg); obj != nil {
					sanitized[obj] = true
				}
			}
		}
		return true
	})

	// exprTaint reports why e is tainted, or "". Subtree containment does
	// the propagation: a call with a tainted argument, arithmetic on a
	// tainted operand and a composite literal holding one are all tainted
	// because the tainted identifier or source call sits inside them.
	exprTaint := func(e ast.Expr) string {
		why := ""
		ast.Inspect(e, func(n ast.Node) bool {
			if why != "" {
				return false
			}
			switch n := n.(type) {
			case *ast.Ident:
				if obj := info.Uses[n]; obj != nil && !sanitized[obj] {
					if w, ok := tainted[obj]; ok {
						why = w
					}
				}
			case *ast.CallExpr:
				if w := clockSource(info, n); w != "" {
					why = w
				}
			}
			return why == ""
		})
		return why
	}
	taintObj := func(id *ast.Ident, why string) bool {
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		if obj == nil || why == "" {
			return false
		}
		if _, ok := tainted[obj]; ok {
			return false
		}
		tainted[obj] = why
		return true
	}

	// Fixed point: seed map-range variables, then propagate through
	// assignments until no new object gains taint.
	for round := 0; round < dettaintFixpointCap; round++ {
		changed := false
		ast.Inspect(fn, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				why := ""
				if t := info.TypeOf(n.X); t != nil {
					if _, isMap := t.Underlying().(*types.Map); isMap {
						why = "map iteration order"
					}
				}
				if why == "" {
					why = exprTaint(n.X) // ranging over an already-tainted value
				}
				for _, e := range []ast.Expr{n.Key, n.Value} {
					if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
						if taintObj(id, why) {
							changed = true
						}
					}
				}
			case *ast.AssignStmt:
				for i, lhs := range n.Lhs {
					id, ok := ast.Unparen(lhs).(*ast.Ident)
					if !ok || id.Name == "_" {
						continue
					}
					var why string
					if len(n.Rhs) == len(n.Lhs) {
						why = exprTaint(n.Rhs[i])
					} else if len(n.Rhs) == 1 {
						why = exprTaint(n.Rhs[0]) // multi-value call form
					}
					if taintObj(id, why) {
						changed = true
					}
				}
			case *ast.ValueSpec:
				for i, id := range n.Names {
					var why string
					if len(n.Values) == len(n.Names) {
						why = exprTaint(n.Values[i])
					} else if len(n.Values) == 1 {
						why = exprTaint(n.Values[0])
					}
					if taintObj(id, why) {
						changed = true
					}
				}
			}
			return true
		})
		if !changed {
			break
		}
	}

	// Sink pass.
	ast.Inspect(fn, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				why := exprTaint(n.Rhs[i])
				if why == "" {
					continue
				}
				if sink := sampleOrStatsSink(info, lhs); sink != "" {
					pass.Reportf(n.Pos(), "%s flows into %s: derive it from the simulation's own state or PRNG stream, or //bhss:allow(dettaint) with a reason", why, sink)
				}
			}
		case *ast.CallExpr:
			if fn := staticCallee(info, n); fn != nil && fn.Pkg() != nil && strings.HasSuffix(fn.Pkg().Path(), "/hop") {
				for _, arg := range n.Args {
					if why := exprTaint(arg); why != "" {
						pass.Reportf(arg.Pos(), "%s flows into hop decision %s: hop sequences must be reproducible from explicit seeds, or //bhss:allow(dettaint) with a reason", why, fn.Name())
						break
					}
				}
			}
			// A tainted append into a sample buffer.
			if isBuiltinCall(info, n, "append") && len(n.Args) >= 2 && isComplexSliceType(info.TypeOf(n.Args[0])) {
				for _, arg := range n.Args[1:] {
					if why := exprTaint(arg); why != "" {
						pass.Reportf(arg.Pos(), "%s flows into a complex128 sample buffer via append: sample streams must be bit-exact across runs, or //bhss:allow(dettaint) with a reason", why)
						break
					}
				}
			}
		}
		return true
	})
}

// clockSource reports why a call expression is a nondeterminism source: a
// direct wall-clock reading. obs.Now (the sanctioned monotonic telemetry
// clock) is not a source — its readings feed metrics, never simulation
// state, and the obs package itself has no sinks.
func clockSource(info *types.Info, call *ast.CallExpr) string {
	fn := staticCallee(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
		return ""
	}
	switch fn.Name() {
	case "Now", "Since", "Until":
		return "wall-clock value (time." + fn.Name() + ")"
	}
	return ""
}

// sampleOrStatsSink classifies an assignment target: a complex128
// slice/array element or slice variable (sample buffer), or a field of
// core.RxStats / core.HopReport.
func sampleOrStatsSink(info *types.Info, lhs ast.Expr) string {
	switch l := ast.Unparen(lhs).(type) {
	case *ast.IndexExpr:
		if t := info.TypeOf(l.X); isComplexSliceType(t) || isComplexArrayType(t) {
			return "a complex128 sample buffer"
		}
	case *ast.Ident:
		if isComplexSliceType(info.TypeOf(l)) {
			return "a complex128 sample buffer"
		}
	case *ast.SelectorExpr:
		if isComplexSliceType(info.TypeOf(l)) {
			return "a complex128 sample buffer"
		}
		if t := info.TypeOf(l.X); t != nil {
			if name := statsTypeName(t); name != "" {
				return "a " + name + " diagnostic field"
			}
		}
	}
	return ""
}

// statsTypeName matches the receiver-diagnostics types the determinism
// suite compares across runs. Matched by name so fixtures can declare their
// own; the module has exactly one of each.
func statsTypeName(t types.Type) string {
	for {
		ptr, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	switch named.Obj().Name() {
	case "RxStats", "HopReport":
		return named.Obj().Name()
	}
	return ""
}

func isComplexSliceType(t types.Type) bool {
	if t == nil {
		return false
	}
	s, ok := t.Underlying().(*types.Slice)
	return ok && isComplex128(s.Elem())
}

func isComplexArrayType(t types.Type) bool {
	if t == nil {
		return false
	}
	a, ok := t.Underlying().(*types.Array)
	return ok && isComplex128(a.Elem())
}

func isComplex128(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Complex128
}
