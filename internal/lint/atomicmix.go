package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
)

// AtomicMix enforces the first rule of sync/atomic: a memory location
// accessed atomically anywhere must be accessed atomically everywhere. The
// analyzer indexes every variable or struct field whose address is passed to
// a sync/atomic function (`atomic.AddInt64(&s.n, 1)`), then flags every
// other appearance of that object — a plain read, a plain write, or an
// address-taking that escapes the atomic API — as a data race in waiting.
//
// Typed atomics (atomic.Int64 and friends) cannot mix by construction and
// are the recommended fix; the codebase's own counters (rxPipeline's
// totalSymbols) already use them, so any finding here is legacy-style usage
// leaking in. The object index is per package and instance-insensitive: the
// field object is shared by every instance of the struct, which is exactly
// the granularity the race detector's happens-before model cares about.
// Test files are exempt via SrcFiles (the experiment package's race
// reproductions mix on purpose).
var AtomicMix = &Analyzer{
	Name: "atomicmix",
	Doc:  "a variable accessed through sync/atomic must never be accessed plainly",
	Run:  runAtomicMix,
}

func runAtomicMix(pass *Pass) error {
	files := pass.SrcFiles()
	// Pass 1: index the objects used atomically and the identifiers that
	// appear inside sanctioned &x arguments.
	atomicObjs := map[types.Object]token.Position{}
	sanctioned := map[*ast.Ident]bool{}
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := staticCallee(pass.Info, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
				return true
			}
			for _, arg := range call.Args {
				u, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || u.Op != token.AND {
					continue
				}
				obj := rootSelectableObject(pass.Info, u.X)
				if obj == nil {
					continue
				}
				if _, seen := atomicObjs[obj]; !seen {
					atomicObjs[obj] = pass.Fset.Position(call.Pos())
				}
				ast.Inspect(u, func(m ast.Node) bool {
					if id, ok := m.(*ast.Ident); ok {
						sanctioned[id] = true
					}
					return true
				})
			}
			return true
		})
	}
	if len(atomicObjs) == 0 {
		return nil
	}
	// Pass 2: any other use of an atomic object is a plain access. Note
	// that value arguments of the atomic calls themselves are NOT
	// sanctioned: atomic.StoreInt64(&s.n, s.n+1) reads s.n plainly.
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || sanctioned[id] {
				return true
			}
			obj := pass.Info.Uses[id]
			if obj == nil {
				return true
			}
			if first, ok := atomicObjs[obj]; ok {
				// Base filename only: the full path would differ between
				// machines and poison the findings baseline.
				pass.Reportf(id.Pos(),
					"%s is accessed atomically (e.g. %s:%d) but plainly here: every access must go through sync/atomic, or migrate the field to a typed atomic",
					id.Name, filepath.Base(first.Filename), first.Line)
			}
			return true
		})
	}
	return nil
}
