// Package stats provides the small statistical and unit-conversion toolbox
// shared by the theory and experiment layers: decibel conversions, moment
// estimators, binomial confidence intervals for packet-loss measurements and
// a monotone threshold search used to locate the minimal SNR that achieves a
// target packet-loss rate (the paper's "power advantage" measurements).
package stats

import (
	"errors"
	"math"
	"sort"
)

// DB converts a linear power ratio to decibels.
func DB(linear float64) float64 {
	return 10 * math.Log10(linear)
}

// FromDB converts decibels to a linear power ratio.
func FromDB(db float64) float64 {
	return math.Pow(10, db/10)
}

// AmplitudeFromDB converts a power ratio in dB to the corresponding amplitude
// scale factor (sqrt of the linear power ratio).
func AmplitudeFromDB(db float64) float64 {
	return math.Pow(10, db/20)
}

// Mean returns the arithmetic mean of xs. It returns 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs. It returns 0 when
// fewer than two samples are available.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(n-1)
}

// StdDev returns the unbiased sample standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// Median returns the median of xs without modifying it.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	n := len(cp)
	if n%2 == 1 {
		return cp[n/2]
	}
	return 0.5 * (cp[n/2-1] + cp[n/2])
}

// MeanCI returns the mean of xs together with the half-width of an
// approximate 95% confidence interval (normal approximation).
func MeanCI(xs []float64) (mean, halfWidth float64) {
	mean = Mean(xs)
	if len(xs) < 2 {
		return mean, math.Inf(1)
	}
	halfWidth = 1.96 * StdDev(xs) / math.Sqrt(float64(len(xs)))
	return mean, halfWidth
}

// WilsonInterval returns the 95% Wilson score interval for a binomial
// proportion with k successes out of n trials. It is well behaved near 0 and
// 1, which matters for low packet-loss measurements.
func WilsonInterval(k, n int) (lo, hi float64) {
	if n == 0 {
		return 0, 1
	}
	const z = 1.96
	p := float64(k) / float64(n)
	nf := float64(n)
	denom := 1 + z*z/nf
	center := (p + z*z/(2*nf)) / denom
	margin := z * math.Sqrt(p*(1-p)/nf+z*z/(4*nf*nf)) / denom
	lo = center - margin
	hi = center + margin
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// ErrNoThreshold is returned by FindThreshold when the predicate never
// becomes true on the search interval.
var ErrNoThreshold = errors.New("stats: predicate false over entire interval")

// FindThreshold locates the smallest x in [lo, hi] (within tol) such that
// ok(x) is true, assuming ok is monotone non-decreasing in x (false below
// some threshold, true above). It is used to find the minimal SNR achieving
// a packet-loss target. The predicate is first checked at hi; if even hi
// fails, ErrNoThreshold is returned.
func FindThreshold(lo, hi, tol float64, ok func(x float64) bool) (float64, error) {
	if lo > hi {
		lo, hi = hi, lo
	}
	if !ok(hi) {
		return 0, ErrNoThreshold
	}
	if ok(lo) {
		return lo, nil
	}
	for hi-lo > tol {
		mid := 0.5 * (lo + hi)
		if ok(mid) {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, nil
}

// Histogram bins xs into nbins equal-width bins over [min, max] and returns
// the counts. Samples outside the range are clamped into the edge bins.
func Histogram(xs []float64, min, max float64, nbins int) []int {
	counts := make([]int, nbins)
	if nbins == 0 || max <= min {
		return counts
	}
	w := (max - min) / float64(nbins)
	for _, x := range xs {
		i := int((x - min) / w)
		if i < 0 {
			i = 0
		}
		if i >= nbins {
			i = nbins - 1
		}
		counts[i]++
	}
	return counts
}

// Linspace returns n evenly spaced points from start to stop inclusive.
func Linspace(start, stop float64, n int) []float64 {
	if n <= 0 {
		return nil
	}
	if n == 1 {
		return []float64{start}
	}
	out := make([]float64, n)
	step := (stop - start) / float64(n-1)
	for i := range out {
		out[i] = start + float64(i)*step
	}
	return out
}

// Logspace returns n logarithmically spaced points from 10^startExp to
// 10^stopExp inclusive.
func Logspace(startExp, stopExp float64, n int) []float64 {
	lin := Linspace(startExp, stopExp, n)
	for i, v := range lin {
		lin[i] = math.Pow(10, v)
	}
	return lin
}

// Erfc is math.Erfc re-exported for call-site symmetry with the paper's
// equation (16).
func Erfc(x float64) float64 { return math.Erfc(x) }

// QFunc is the Gaussian tail probability Q(x) = 0.5 erfc(x/sqrt2).
func QFunc(x float64) float64 {
	return 0.5 * math.Erfc(x/math.Sqrt2)
}
