package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestDBRoundTrip(t *testing.T) {
	for _, db := range []float64{-30, -3, 0, 3, 10, 20, 25.4} {
		if got := DB(FromDB(db)); !almostEq(got, db, 1e-12) {
			t.Fatalf("DB(FromDB(%v)) = %v", db, got)
		}
	}
}

func TestDBKnownValues(t *testing.T) {
	if !almostEq(DB(100), 20, 1e-12) {
		t.Fatalf("DB(100) = %v, want 20", DB(100))
	}
	if !almostEq(FromDB(30), 1000, 1e-9) {
		t.Fatalf("FromDB(30) = %v, want 1000", FromDB(30))
	}
	if !almostEq(AmplitudeFromDB(20), 10, 1e-12) {
		t.Fatalf("AmplitudeFromDB(20) = %v, want 10", AmplitudeFromDB(20))
	}
}

func TestQuickDBInverse(t *testing.T) {
	f := func(raw float64) bool {
		db := math.Mod(raw, 60)
		if math.IsNaN(db) {
			return true
		}
		return almostEq(DB(FromDB(db)), db, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); !almostEq(m, 5, 1e-12) {
		t.Fatalf("mean = %v", m)
	}
	// Population variance is 4; unbiased sample variance = 32/7.
	if v := Variance(xs); !almostEq(v, 32.0/7.0, 1e-12) {
		t.Fatalf("variance = %v", v)
	}
}

func TestMeanEmpty(t *testing.T) {
	if Mean(nil) != 0 || Variance(nil) != 0 || StdDev([]float64{1}) != 0 {
		t.Fatal("degenerate inputs should return 0")
	}
}

func TestMedian(t *testing.T) {
	if m := Median([]float64{3, 1, 2}); m != 2 {
		t.Fatalf("odd median = %v", m)
	}
	if m := Median([]float64{4, 1, 3, 2}); m != 2.5 {
		t.Fatalf("even median = %v", m)
	}
	// Median must not mutate its input.
	xs := []float64{5, 1, 3}
	Median(xs)
	if xs[0] != 5 || xs[1] != 1 || xs[2] != 3 {
		t.Fatal("Median mutated input")
	}
}

func TestWilsonInterval(t *testing.T) {
	lo, hi := WilsonInterval(0, 100)
	if lo != 0 || hi <= 0 || hi > 0.1 {
		t.Fatalf("Wilson(0/100) = [%v, %v]", lo, hi)
	}
	lo, hi = WilsonInterval(50, 100)
	if !(lo < 0.5 && hi > 0.5) {
		t.Fatalf("Wilson(50/100) = [%v, %v] should bracket 0.5", lo, hi)
	}
	lo, hi = WilsonInterval(0, 0)
	if lo != 0 || hi != 1 {
		t.Fatalf("Wilson(0/0) = [%v, %v], want [0,1]", lo, hi)
	}
}

func TestFindThreshold(t *testing.T) {
	target := 13.37
	x, err := FindThreshold(0, 100, 1e-6, func(x float64) bool { return x >= target })
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(x, target, 1e-5) {
		t.Fatalf("threshold = %v, want %v", x, target)
	}
}

func TestFindThresholdAtLowEdge(t *testing.T) {
	x, err := FindThreshold(5, 10, 1e-6, func(x float64) bool { return true })
	if err != nil || x != 5 {
		t.Fatalf("got (%v, %v), want (5, nil)", x, err)
	}
}

func TestFindThresholdNoSolution(t *testing.T) {
	_, err := FindThreshold(0, 10, 1e-6, func(x float64) bool { return false })
	if err != ErrNoThreshold {
		t.Fatalf("err = %v, want ErrNoThreshold", err)
	}
}

func TestFindThresholdSwappedBounds(t *testing.T) {
	x, err := FindThreshold(10, 0, 1e-6, func(x float64) bool { return x >= 4 })
	if err != nil || !almostEq(x, 4, 1e-5) {
		t.Fatalf("got (%v, %v)", x, err)
	}
}

func TestQuickFindThresholdMonotone(t *testing.T) {
	f := func(raw float64) bool {
		target := math.Mod(math.Abs(raw), 50)
		x, err := FindThreshold(0, 50, 1e-7, func(v float64) bool { return v >= target })
		return err == nil && almostEq(x, target, 1e-5)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogram(t *testing.T) {
	xs := []float64{0.1, 0.2, 0.9, -5, 99}
	h := Histogram(xs, 0, 1, 2)
	if h[0] != 3 || h[1] != 2 {
		t.Fatalf("histogram = %v", h)
	}
	if got := Histogram(xs, 1, 0, 2); got[0] != 0 || got[1] != 0 {
		t.Fatal("inverted range should yield empty histogram")
	}
}

func TestLinspace(t *testing.T) {
	xs := Linspace(0, 1, 5)
	want := []float64{0, 0.25, 0.5, 0.75, 1}
	for i := range want {
		if !almostEq(xs[i], want[i], 1e-12) {
			t.Fatalf("linspace[%d] = %v, want %v", i, xs[i], want[i])
		}
	}
	if Linspace(0, 1, 0) != nil {
		t.Fatal("n=0 should return nil")
	}
	if one := Linspace(3, 9, 1); len(one) != 1 || one[0] != 3 {
		t.Fatalf("n=1 linspace = %v", one)
	}
}

func TestLogspace(t *testing.T) {
	xs := Logspace(-2, 2, 5)
	want := []float64{0.01, 0.1, 1, 10, 100}
	for i := range want {
		if !almostEq(xs[i], want[i], 1e-9*want[i]+1e-12) {
			t.Fatalf("logspace[%d] = %v, want %v", i, xs[i], want[i])
		}
	}
}

func TestQFunc(t *testing.T) {
	// Q(0) = 0.5 exactly; Q(1.96) ≈ 0.025.
	if !almostEq(QFunc(0), 0.5, 1e-12) {
		t.Fatalf("Q(0) = %v", QFunc(0))
	}
	if !almostEq(QFunc(1.959964), 0.025, 1e-6) {
		t.Fatalf("Q(1.96) = %v", QFunc(1.959964))
	}
}
