package channel

import (
	"math"
	"math/cmplx"
	"testing"

	"bhss/internal/dsp"
)

func constSignal(n int, v complex128) []complex128 {
	x := make([]complex128, n)
	for i := range x {
		x[i] = v
	}
	return x
}

func TestAWGNVariance(t *testing.T) {
	a := NewAWGN(2.5, 1)
	x := make([]complex128, 100000)
	a.Add(x)
	if p := dsp.Power(x); math.Abs(p-2.5)/2.5 > 0.03 {
		t.Fatalf("noise power %v, want 2.5", p)
	}
	if a.Variance() != 2.5 {
		t.Fatal("Variance accessor wrong")
	}
}

func TestAWGNZeroVarianceIsNoop(t *testing.T) {
	a := NewAWGN(0, 1)
	x := constSignal(16, 1+1i)
	a.Add(x)
	for _, v := range x {
		if v != 1+1i {
			t.Fatal("zero-variance noise changed the signal")
		}
	}
	if a.Sample() != 0 {
		t.Fatal("zero-variance sample should be 0")
	}
}

func TestAWGNDeterministic(t *testing.T) {
	a, b := NewAWGN(1, 7), NewAWGN(1, 7)
	for i := 0; i < 100; i++ {
		if a.Sample() != b.Sample() {
			t.Fatal("same-seed noise sources diverged")
		}
	}
}

func TestAWGNPanicsOnNegativeVariance(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative variance should panic")
		}
	}()
	NewAWGN(-1, 0)
}

func TestAttenuateAndGain(t *testing.T) {
	x := constSignal(10, 1)
	Attenuate(x, 20) // -20 dB -> amplitude 0.1
	if math.Abs(real(x[0])-0.1) > 1e-12 {
		t.Fatalf("attenuated amplitude %v, want 0.1", x[0])
	}
	Gain(x, 20)
	if math.Abs(real(x[0])-1) > 1e-12 {
		t.Fatalf("gain did not undo attenuation: %v", x[0])
	}
}

func TestImpairmentsDelayAndCFO(t *testing.T) {
	im := Impairments{CFO: 0.25, Phase: 0, Delay: 2}
	x := []complex128{1, 1, 1, 1, 1, 1}
	y := im.Apply(x)
	if y[0] != 0 || y[1] != 0 {
		t.Fatalf("delay not applied: %v", y[:2])
	}
	// After the delay, samples rotate by 2π*0.25 per sample.
	r3 := y[3] / y[2]
	if cmplx.Abs(r3-cmplx.Exp(complex(0, math.Pi/2))) > 1e-9 {
		t.Fatalf("CFO rotation per sample = %v, want e^{jπ/2}", r3)
	}
	// Original slice untouched.
	if x[0] != 1 {
		t.Fatal("Apply must not mutate its input")
	}
}

func TestImpairmentsIdentity(t *testing.T) {
	x := []complex128{1 + 2i, 3, -1i}
	y := Impairments{}.Apply(x)
	for i := range x {
		if y[i] != x[i] {
			t.Fatal("zero impairments must be identity")
		}
	}
}

func TestCombine(t *testing.T) {
	a := []complex128{1, 2, 3}
	b := []complex128{10, 20}
	got := Combine(a, b)
	want := []complex128{11, 22, 3}
	if len(got) != 3 {
		t.Fatalf("combined length %d", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("combine = %v", got)
		}
	}
	if len(Combine()) != 0 {
		t.Fatal("combining nothing should be empty")
	}
}

func TestLinkTransmit(t *testing.T) {
	l := Link{AttenuationDB: 6.0206} // ~ amplitude / 2
	x := constSignal(8, 2)
	y := l.Transmit(x)
	if math.Abs(real(y[0])-1) > 1e-3 {
		t.Fatalf("6 dB attenuated amplitude %v, want ~1", y[0])
	}
}

func TestNoiseVarForSNR(t *testing.T) {
	v := NoiseVarForSNR(1, 20)
	if math.Abs(v-0.01) > 1e-12 {
		t.Fatalf("noise var %v, want 0.01", v)
	}
	// End-to-end: signal power 4 at 3 dB SNR -> noise ~2.
	if v := NoiseVarForSNR(4, 3.0102999566); math.Abs(v-2) > 1e-6 {
		t.Fatalf("noise var %v, want 2", v)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("negative power should panic")
		}
	}()
	NoiseVarForSNR(-1, 0)
}

func TestEndToEndSNR(t *testing.T) {
	// A unit-power signal over a link with 10 dB SNR: measured SNR within
	// tolerance.
	x := make([]complex128, 50000)
	for i := range x {
		x[i] = cmplx.Exp(complex(0, 0.3*float64(i)))
	}
	p := dsp.Power(x)
	noise := NewAWGN(NoiseVarForSNR(p, 10), 3)
	y := append([]complex128(nil), x...)
	noise.Add(y)
	diff := make([]complex128, len(x))
	for i := range diff {
		diff[i] = y[i] - x[i]
	}
	snr := 10 * math.Log10(dsp.Power(x)/dsp.Power(diff))
	if math.Abs(snr-10) > 0.3 {
		t.Fatalf("realized SNR %v dB, want 10", snr)
	}
}

func TestResampleIdentityAtUnitRate(t *testing.T) {
	x := []complex128{1, 2, 3, 4}
	y := Impairments{ClockSkewPPM: 0}.Apply(x)
	for i := range x {
		if y[i] != x[i] {
			t.Fatal("zero skew must be identity")
		}
	}
}

func TestResampleStretches(t *testing.T) {
	// A huge artificial skew for visibility: 1e5 ppm = 10% stretch.
	x := make([]complex128, 100)
	for i := range x {
		x[i] = complex(float64(i), 0)
	}
	y := Impairments{ClockSkewPPM: 1e5}.Apply(x)
	// Sample i of the output reads position i/1.1 of the input.
	if math.Abs(real(y[11])-10) > 0.01 {
		t.Fatalf("y[11] = %v, want ~10", y[11])
	}
}

// The justification for the receiver's ideal chip-timing model: at the
// testbed's few-ppm clock skews, the accumulated timing drift over a whole
// burst stays far below one sample, so the matched-filter demodulator's
// metric is essentially untouched.
func TestRealisticSkewIsSubChipPerBurst(t *testing.T) {
	const burstSamples = 65536 // the longest frames in the experiments
	const skewPPM = 2.5        // USRP N210-class TCXO
	drift := burstSamples * skewPPM * 1e-6
	if drift > 0.5 {
		t.Fatalf("accumulated drift %v samples; the ideal-timing model would be invalid", drift)
	}
}
