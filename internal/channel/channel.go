// Package channel models the paper's experimental medium. The authors
// connected transmitter, jammer and receiver over SMA coax, attenuators and
// a T-connector (Figure 12) and argue the result "can be modeled as additive
// white Gaussian noise (AWGN) channels"; this package implements exactly
// that: per-port attenuation, signal summation, AWGN, and — because the
// SDRs ran on free, unsynchronized oscillators — optional carrier frequency,
// phase and sampling-time offsets.
package channel

import (
	"fmt"
	"math"

	"bhss/internal/dsp"
	"bhss/internal/impair"
	"bhss/internal/obs"
	"bhss/internal/prng"
)

// AWGN is an additive white Gaussian noise source of the given total
// (complex) variance per sample.
type AWGN struct {
	src      *prng.Source
	variance float64
	amp      float64
	met      *obs.ChanMetrics
}

// NewAWGN returns a noise source with the given per-sample variance,
// deterministic in seed.
func NewAWGN(variance float64, seed uint64) *AWGN {
	if variance < 0 {
		panic(fmt.Sprintf("channel: negative noise variance %v", variance))
	}
	return &AWGN{src: prng.New(seed), variance: variance, amp: math.Sqrt(variance)}
}

// Variance returns the configured per-sample noise variance.
func (a *AWGN) Variance() float64 { return a.variance }

// SetObserver attaches channel metrics (nil detaches). Recording never
// touches the sample stream or the noise source's PRNG state.
func (a *AWGN) SetObserver(m *obs.ChanMetrics) { a.met = m }

// Add adds noise to x in place.
func (a *AWGN) Add(x []complex128) {
	var sw obs.Stopwatch
	if a.met != nil {
		sw = obs.Start()
	}
	if a.variance != 0 {
		g := complex(a.amp, 0)
		for i := range x {
			x[i] += a.src.ComplexNorm() * g
		}
	}
	if a.met != nil {
		a.met.NoiseSamples.Add(int64(len(x)))
		a.met.MixNS.ObserveSince(sw)
	}
}

// Sample returns one noise sample (used by streaming paths).
func (a *AWGN) Sample() complex128 {
	if a.variance == 0 {
		return 0
	}
	return a.src.ComplexNorm() * complex(a.amp, 0)
}

// Attenuate scales x in place by the given attenuation in dB (positive
// values reduce power), modeling the inline attenuators of the testbed.
func Attenuate(x []complex128, dB float64) {
	dsp.Scale(x, math.Pow(10, -dB/20))
}

// Gain scales x in place by the given gain in dB (positive values increase
// power), modeling the SDR transmit gain setting.
func Gain(x []complex128, dB float64) {
	dsp.Scale(x, math.Pow(10, dB/20))
}

// Impairments models the front-end offsets between two free-running SDRs.
type Impairments struct {
	// CFO is the carrier frequency offset in cycles per sample.
	CFO float64
	// Phase is the initial carrier phase offset in radians.
	Phase float64
	// Delay is a possibly fractional sample delay (>= 0).
	Delay float64
	// ClockSkewPPM is the sample-clock rate mismatch in parts per million
	// (positive: the receiver's clock runs fast, so the signal appears
	// stretched). The testbed's TCXOs are a few ppm, which accumulates to
	// well under one sample over a burst — the receiver's ideal chip
	// timing model depends on exactly this property (see the package
	// test TestRealisticSkewIsSubChipPerBurst).
	ClockSkewPPM float64
}

// Apply returns a new slice with the impairments applied to x
// (resampling and delay first, then the frequency/phase rotation).
func (im Impairments) Apply(x []complex128) []complex128 {
	out := append([]complex128(nil), x...)
	if im.ClockSkewPPM != 0 {
		out = resample(out, 1+im.ClockSkewPPM*1e-6)
	}
	if im.Delay != 0 {
		out = dsp.FractionalDelay(out, im.Delay)
	}
	if im.CFO != 0 || im.Phase != 0 {
		dsp.Mix(out, im.CFO, im.Phase)
	}
	return out
}

// resample stretches x by the given rate factor using linear interpolation,
// keeping the output length equal to the input (the tail repeats the last
// sample if the stretched signal runs out early).
func resample(x []complex128, rate float64) []complex128 {
	out := make([]complex128, len(x))
	if len(x) == 0 {
		return out
	}
	for i := range out {
		t := float64(i) / rate
		j := int(t)
		if j >= len(x)-1 {
			out[i] = x[len(x)-1]
			continue
		}
		frac := t - float64(j)
		out[i] = x[j]*complex(1-frac, 0) + x[j+1]*complex(frac, 0)
	}
	return out
}

// Combine sums any number of sample streams (the T-connector). The output
// length is the longest input; shorter inputs are treated as silent after
// they end.
func Combine(streams ...[]complex128) []complex128 {
	var n int
	for _, s := range streams {
		if len(s) > n {
			n = len(s)
		}
	}
	out := make([]complex128, n)
	for _, s := range streams {
		for i, v := range s {
			out[i] += v
		}
	}
	return out
}

// Link bundles the full path from one transmitter port to the receiver:
// attenuation, impairments, then (at the receiver) noise is added once for
// the combined signal — use Combine plus AWGN.Add for multi-port setups.
type Link struct {
	AttenuationDB float64
	Impairments   Impairments
	// Front, when non-nil, is the receiver front-end impairment chain
	// (internal/impair) applied after attenuation. For multi-port setups
	// apply one chain to the combined signal with ApplyFront instead, so
	// the front end distorts jammer and signal alike, as hardware does.
	Front *impair.Chain
}

// Transmit pushes a burst through the link and returns the received
// samples (no noise; add it after combining).
func (l Link) Transmit(x []complex128) []complex128 {
	out := l.Impairments.Apply(x)
	Attenuate(out, l.AttenuationDB)
	return ApplyFront(l.Front, out)
}

// ApplyFront passes x through the receiver front-end chain and returns the
// impaired samples (a new slice; the chain may change the length when a
// clock-skew stage resamples). A nil or empty chain returns x unchanged.
func ApplyFront(front *impair.Chain, x []complex128) []complex128 {
	if front.Len() == 0 {
		return x
	}
	return front.ProcessAppend(make([]complex128, 0, len(x)+len(x)/128+8), x)
}

// NoiseVarForSNR returns the AWGN variance that realizes the given SNR (dB)
// for a signal of the given average power.
//
//bhss:planphase scenario configuration; runs before any sample flows
func NoiseVarForSNR(signalPower, snrDB float64) float64 {
	if signalPower < 0 {
		panic("channel: negative signal power")
	}
	return signalPower / math.Pow(10, snrDB/10)
}
