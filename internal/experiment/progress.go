package experiment

import (
	"fmt"

	"bhss/internal/obs"
)

// Progress renders a one-line live status from an experiment pipeline: cell
// completion, frame totals, the latest packet-loss reading, and the receive
// decode rate. Intended for periodic stderr reporting while a sweep runs.
func Progress(p *obs.Pipeline) string {
	s := p.SnapshotLight()
	var (
		cells, done, frames, lost int64
		plr, snr, rate            float64
	)
	for _, c := range s.Counters {
		switch c.Name {
		case "exp.cells":
			cells = c.Value
		case "exp.cells_done":
			done = c.Value
		case "exp.frames":
			frames = c.Value
		case "exp.frames_lost":
			lost = c.Value
		}
	}
	for _, g := range s.Gauges {
		switch g.Name {
		case "exp.last_plr":
			plr = g.Value
		case "exp.last_snr_db":
			snr = g.Value
		case "exp.frames_per_sec":
			rate = g.Value
		}
	}
	return fmt.Sprintf("cells %d/%d · frames %d (lost %d) · last point PLR %.2f @ %.1f dB · %.0f frames/s",
		done, cells, frames, lost, plr, snr, rate)
}
