package experiment

import (
	"reflect"
	"runtime"
	"sync"
	"testing"

	"bhss/internal/obs"
)

// TestFigureObserverParity asserts the tentpole observability contract at the
// experiment level: attaching a metrics pipeline to a measured figure must
// leave every number bit-identical. The observer only reads the signal path;
// it never feeds back into it.
func TestFigureObserverParity(t *testing.T) {
	if testing.Short() {
		t.Skip("measured experiment")
	}
	ratios := []float64{10, 0.625}

	plain := tinyScale()
	base, err := Fig13(plain, ratios)
	if err != nil {
		t.Fatal(err)
	}

	watched := tinyScale()
	watched.Obs = obs.NewPipeline()
	observed, err := Fig13(watched, ratios)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(base, observed) {
		t.Fatalf("observer perturbed the figure:\nplain:    %+v\nobserved: %+v", base, observed)
	}

	// The pipeline must have seen the sweep it watched: Fig13 runs one cell
	// per signal/jammer bandwidth pair.
	cells := int64(len(ratios) * len(ratios))
	if got := watched.Obs.Exp.Cells.Load(); got != cells {
		t.Fatalf("exp.cells = %d, want %d", got, cells)
	}
	if got := watched.Obs.Exp.CellsDone.Load(); got != cells {
		t.Fatalf("exp.cells_done = %d, want %d", got, cells)
	}
	if watched.Obs.Exp.Points.Load() == 0 {
		t.Fatal("exp.points never incremented")
	}
	if watched.Obs.Rx.Bursts.Load() == 0 {
		t.Fatal("rx.bursts never incremented")
	}
	if Progress(watched.Obs) == "" {
		t.Fatal("Progress returned an empty summary")
	}
}

// TestFigureObserverRace hammers one shared pipeline from the experiment
// worker pool under elevated parallelism; run with -race this is the
// concurrency proof for the recording paths wired into Trial.PacketLoss.
func TestFigureObserverRace(t *testing.T) {
	if testing.Short() {
		t.Skip("measured experiment")
	}
	old := runtime.GOMAXPROCS(4 * runtime.NumCPU())
	defer runtime.GOMAXPROCS(old)

	sc := tinyScale()
	sc.Obs = obs.NewPipeline()

	// A concurrent reader polls full snapshots while the workers write.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				sc.Obs.SnapshotLight()
				sc.Obs.Trace.Spans()
			}
		}
	}()
	bws := []float64{10, 2.5, 0.625}
	if _, err := Fig13(sc, bws); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()

	if got, want := sc.Obs.Exp.CellsDone.Load(), int64(len(bws)*len(bws)); got != want {
		t.Fatalf("exp.cells_done = %d, want %d", got, want)
	}
}
