package experiment

import (
	"testing"
)

// TestArmsRaceSmoke runs a reduced arms-race grid end to end and pins the
// trend the sweep exists to measure: a follower reacting within the hop
// dwell erases more of the hopping advantage than one that is a whole frame
// behind. The exact dB values are anchored at quick scale in BENCH_arms.json
// (CI's results-regression job); this test only asserts shape so it stays
// robust at tiny averaging depth.
func TestArmsRaceSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("arms-race sweep drives full packet-loss bisections")
	}
	sc := tinyScale()
	delays := []int{0, 16384}
	kinds := []string{"reactive"}
	res, err := ArmsRaceSweep(sc, delays, kinds)
	if err != nil {
		t.Fatal(err)
	}
	if res.ID != "arms" {
		t.Fatalf("ID = %q", res.ID)
	}
	// Series: static + one per kind; table rows: one per delay.
	if len(res.Series) != 2 || len(res.Tables) != 1 || len(res.Tables[0].Rows) != len(delays) {
		t.Fatalf("unexpected result shape: %d series, %d tables", len(res.Series), len(res.Tables))
	}
	reactive := res.Series[1]
	if reactive.Name != "reactive" || len(reactive.Y) != len(delays) {
		t.Fatalf("reactive series malformed: %+v", reactive)
	}
	atZero, atFrame := reactive.Y[0], reactive.Y[1]
	// The arms-race trend: a zero-delay follower retunes within one sense
	// window of each burst, so hopping buys clearly less against it than
	// against a follower lagging nearly a full frame.
	if atZero >= atFrame {
		t.Fatalf("advantage vs zero-delay follower (%v dB) should be below the full-frame-lag cell (%v dB)",
			atZero, atFrame)
	}
	// And the slow follower must leave a solidly positive advantage — the
	// headline survives when the adversary cannot keep up.
	if atFrame < 2 {
		t.Fatalf("advantage vs slow follower = %v dB, want clearly positive", atFrame)
	}
	// Canonical + context metrics, in stable order for the store gate.
	names := []string{"adv_db", "adv_db_worst", "adv_db_static", "adv_db_fastest", "adv_db_slowest"}
	if len(res.Metrics) != len(names) {
		t.Fatalf("metrics = %+v", res.Metrics)
	}
	for i, want := range names {
		if res.Metrics[i].Name != want {
			t.Fatalf("metric[%d] = %q, want %q", i, res.Metrics[i].Name, want)
		}
	}
}

// TestArmsRaceRejectsBadAxes: a misspelled kind must fail in the spec
// pre-pass, before any bisection runs.
func TestArmsRaceRejectsBadAxes(t *testing.T) {
	sc := tinyScale()
	if _, err := ArmsRaceSweep(sc, []int{0}, []string{"psychic"}); err == nil {
		t.Fatal("unknown jammer kind accepted")
	}
	if _, err := ArmsRaceSweep(sc, []int{}, nil); err == nil {
		t.Fatal("empty delay axis accepted")
	}
	if _, err := ArmsRaceSweep(sc, []int{-5}, []string{"reactive"}); err == nil {
		t.Fatal("negative delay accepted")
	}
}
