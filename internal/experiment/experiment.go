// Package experiment reproduces the paper's evaluation: it provides the
// measurement primitives (packet-loss rate at a given SNR, the minimal SNR
// reaching the 50% packet-loss threshold, and the power advantage defined
// in §6.3/§6.4) plus one driver per table and figure. The theoretical
// figures (7–11) evaluate internal/theory; the measured figures (13, 14)
// and tables (1, 2) drive the full sample-level transmitter/channel/jammer/
// receiver pipeline, exactly as the SDR testbed did but on the simulated
// AWGN medium described in DESIGN.md.
package experiment

import (
	"fmt"
	"math"

	"bhss/internal/channel"
	"bhss/internal/core"
	"bhss/internal/dsp"
	"bhss/internal/impair"
	"bhss/internal/jammer"
	"bhss/internal/obs"
	"bhss/internal/prng"
	"bhss/internal/stats"
)

// Scale bundles the knobs that trade fidelity for runtime. The paper
// averaged 10,000 packets per point on real hardware; the default scale
// uses far fewer, which shifts individual dB readings by a little scatter
// but preserves every comparison the paper draws.
type Scale struct {
	// Frames per packet-loss measurement point.
	Frames int
	// PayloadBytes per frame.
	PayloadBytes int
	// SNRLoDB and SNRHiDB bound the minimal-SNR search; SNRTolDB is the
	// bisection resolution.
	SNRLoDB, SNRHiDB, SNRTolDB float64
	// JammerPower is the jammer's power relative to the unit-power chip
	// sequence (100 = the paper's −20 dB signal-to-jamming ratio).
	JammerPower float64
	// NoiseVar is the receiver noise floor per sample.
	NoiseVar float64
	// FilterTaps bounds the receiver's suppression filters.
	FilterTaps int
	// Seed makes the whole experiment deterministic.
	Seed uint64
	// Impair is an RF front-end impairment spec (impair.ParseSpec grammar,
	// e.g. "cfo=2e3,ppm=20,phnoise=-80,quant=8") applied to the composite
	// received signal — after gain, jammer and noise — of every trial
	// built from this scale, so the front end distorts signal and jammer
	// alike, as the testbed's shared receiver chain did. Empty keeps the
	// medium pristine; the headline figures (Fig13's 15.47 dB) are pinned
	// with it empty.
	Impair string
	// Obs, when non-nil, receives metrics from every link the experiment
	// builds (a single pipeline shared across worker goroutines — recording
	// is atomic). It never influences results: seeds, decisions and samples
	// are identical with Obs set or nil.
	Obs *obs.Pipeline
}

// QuickScale returns the reduced scale used by the benchmarks: enough
// frames for stable 50% threshold estimates, coarse SNR resolution.
func QuickScale() Scale {
	return Scale{
		Frames:       24,
		PayloadBytes: 8,
		SNRLoDB:      -5,
		SNRHiDB:      50,
		SNRTolDB:     1.5,
		JammerPower:  100,
		NoiseVar:     0.01,
		FilterTaps:   1025,
		Seed:         1,
	}
}

// FullScale returns a configuration closer to the paper's averaging depth.
// Expect runtimes in tens of minutes.
func FullScale() Scale {
	s := QuickScale()
	s.Frames = 200
	s.SNRTolDB = 0.75
	s.FilterTaps = 2049
	return s
}

// NewJammerFunc builds a fresh jammer for one measurement point; seed
// varies per point so jamming noise is independent across points.
type NewJammerFunc func(seed uint64) (jammer.Source, error)

// FixedJammer returns a NewJammerFunc emitting band-limited noise of the
// given two-sided normalized bandwidth and power.
func FixedJammer(bw, power float64) NewJammerFunc {
	return func(seed uint64) (jammer.Source, error) {
		return jammer.NewBandlimited(bw, power, seed)
	}
}

// Trial describes one link-versus-jammer measurement setup.
type Trial struct {
	// Config is the BHSS link configuration (both ends).
	Config core.Config
	// NewJammer creates the interferer; nil runs unjammed.
	NewJammer NewJammerFunc
	// RandomPhase applies an unknown uniform carrier phase per frame
	// (free-running oscillators, as in the testbed). Requires the
	// receiver's tracking loops or PreambleSync to matter.
	RandomPhase bool
	// CFO applies a quasi-static carrier frequency offset of this
	// magnitude in cycles/sample (sign randomized per frame) — the
	// oscillator mismatch between unsynchronized SDRs. The receiver's
	// carrier loop must then actively track; strong unsuppressed jamming
	// collapses the loop's decision-directed gain and it falls out of
	// lock, which is the mechanism behind the paper's measured low-pass
	// filtering gains.
	CFO float64
	// Scale supplies frames, payload, noise and seeds.
	Scale Scale
}

// PacketLoss measures the packet-loss rate at the given SNR
// (signal power over the noise floor, dB). Frames whose decode fails for
// any reason — CRC, SFD, truncation — count as lost, mirroring the paper's
// CRC-based loss definition.
func (t Trial) PacketLoss(snrDB float64, pointSeed uint64) (float64, error) {
	plr, _, err := t.PacketLossDetail(snrDB, pointSeed)
	return plr, err
}

// PacketLossDetail is PacketLoss plus the mean carrier-lock quality the
// receiver reported across the point's frames (0 when tracking loops are
// disabled) — the observable behind the hardware-fidelity sweep's
// "where do the loops lose lock" question.
func (t Trial) PacketLossDetail(snrDB float64, pointSeed uint64) (plr, meanLock float64, err error) {
	met := t.Scale.Obs
	var psw obs.Stopwatch
	if met != nil {
		psw = obs.Start()
	}
	cfg := t.Config
	cfg.FilterTaps = t.Scale.FilterTaps
	tx, err := core.NewTransmitter(cfg)
	if err != nil {
		return 0, 0, err
	}
	rx, err := core.NewReceiver(cfg)
	if err != nil {
		return 0, 0, err
	}
	tx.SetObserver(met)
	rx.SetObserver(met)
	var jam jammer.Source
	var sensing jammer.TxAware
	if t.NewJammer != nil {
		jam, err = t.NewJammer(pointSeed ^ 0xa5a5a5a5)
		if err != nil {
			return 0, 0, err
		}
		// Sensing adversaries (the reactive/multitone/adaptive followers)
		// overhear the over-the-air burst — gain, phase and CFO applied,
		// before noise — and jam sample-aligned with it, exactly the
		// estimator-follower threat model of DESIGN.md §16.
		if ta, ok := jam.(jammer.TxAware); ok {
			sensing = ta
			if met != nil {
				ta.SetObserver(&met.Jam)
			}
		}
	}
	noise := channel.NewAWGN(t.Scale.NoiseVar, pointSeed^0x5a5a5a5a)
	if met != nil {
		noise.SetObserver(&met.Chan)
	}
	// The receiver front-end impairment chain, applied to the composite
	// signal just before decoding. Stage state (oscillator phase, clock
	// drift, dropout runs) persists across the point's frames, as it
	// would on hardware; the point seed keeps it deterministic.
	var front *impair.Chain
	if t.Scale.Impair != "" {
		front, err = impair.NewFromSpec(t.Scale.Impair, cfg.SampleRate, pointSeed^0x3c3c3c3c)
		if err != nil {
			return 0, 0, err
		}
		if met != nil {
			front.SetObserver(&met.Impair)
		}
	}
	src := prng.New(pointSeed)
	payload := make([]byte, t.Scale.PayloadBytes)

	gain := math.Sqrt(t.Scale.NoiseVar) * stats.AmplitudeFromDB(snrDB)
	lost := 0
	lockSum := 0.0
	// The receive buffer is reused across frames: each frame copies the
	// burst in and applies channel effects in place, so the trial loop
	// stays off the allocator in steady state.
	var rxSamples, impaired []complex128
	for i := 0; i < t.Scale.Frames; i++ {
		for b := range payload {
			payload[b] = byte(src.Uint64())
		}
		burst, err := tx.EncodeFrame(payload)
		if err != nil {
			return 0, 0, err
		}
		rxSamples = append(rxSamples[:0], burst.Samples...)
		if gain != 1 {
			for k := range rxSamples {
				rxSamples[k] *= complex(gain, 0)
			}
		}
		if t.RandomPhase || t.CFO > 0 {
			// Phase/CFO-only impairments rotate in place on the private
			// copy (channel.Impairments.Apply would copy again).
			phase := 0.0
			if t.RandomPhase {
				phase = 2 * math.Pi * src.Float64()
			}
			cfo := 0.0
			if t.CFO > 0 {
				cfo = t.CFO
				if src.Bit() == 1 {
					cfo = -cfo
				}
			}
			dsp.Mix(rxSamples, cfo, phase)
		}
		if jam != nil {
			var j []complex128
			if sensing != nil {
				sensing.NewBurst()
				j = sensing.Jam(rxSamples)
			} else {
				j = jam.Emit(len(rxSamples))
			}
			for k := range rxSamples {
				rxSamples[k] += j[k]
			}
			if met != nil {
				met.Chan.JamSamples.Add(int64(len(j)))
			}
		}
		noise.Add(rxSamples)
		decodeIn := rxSamples
		if front.Len() > 0 {
			impaired = front.ProcessAppend(impaired[:0], rxSamples)
			decodeIn = impaired
		}
		got, st, err := rx.DecodeBurst(decodeIn)
		lockSum += st.CarrierLock
		if err != nil || len(got) != len(payload) {
			lost++
			continue
		}
		for b := range payload {
			if got[b] != payload[b] {
				lost++
				break
			}
		}
	}
	plr = float64(lost) / float64(t.Scale.Frames)
	meanLock = lockSum / float64(t.Scale.Frames)
	if met != nil {
		met.Exp.Points.Inc()
		met.Exp.Frames.Add(int64(t.Scale.Frames))
		met.Exp.FramesLost.Add(int64(lost))
		// Fixed-point millionths: integer adds commute across worker
		// goroutines, so the sweep-wide mean lock is schedule-independent.
		met.Exp.LockMicroSum.Add(int64(math.Round(meanLock * 1e6)))
		met.Exp.LastPLR.Store(plr)
		met.Exp.LastSNRdB.Store(snrDB)
		met.Exp.PointNS.ObserveSince(psw)
	}
	return plr, meanLock, nil
}

// MinSNR returns the smallest SNR (dB) at which the packet-loss rate stays
// below 50% (the paper's error-performance threshold), found by monotone
// bisection over the scale's SNR range. It returns stats.ErrNoThreshold
// when even the top of the range loses half the packets.
func (t Trial) MinSNR() (float64, error) {
	seedCounter := t.Scale.Seed
	return stats.FindThreshold(t.Scale.SNRLoDB, t.Scale.SNRHiDB, t.Scale.SNRTolDB,
		func(snrDB float64) bool {
			// Derive a per-point seed from the SNR so repeated probes of
			// the same point reuse identical noise (keeps the predicate
			// deterministic and near-monotone).
			bits := math.Float64bits(snrDB)
			plr, err := t.PacketLoss(snrDB, seedCounter^bits*0x9e3779b97f4a7c15)
			if err != nil {
				return false
			}
			return plr < 0.5
		})
}

// PowerAdvantage returns minSNR(reference) − minSNR(test) in dB: how much
// more signal power the reference link needs to reach the same 50%
// packet-loss performance. Either trial failing to reach the threshold
// anywhere in the search range yields an error naming the side.
func PowerAdvantage(test, reference Trial) (float64, error) {
	testSNR, err := test.MinSNR()
	if err != nil {
		return 0, fmt.Errorf("experiment: test link: %w", err)
	}
	refSNR, err := reference.MinSNR()
	if err != nil {
		return 0, fmt.Errorf("experiment: reference link: %w", err)
	}
	return refSNR - testSNR, nil
}
